(* soak — randomised cross-engine self-check, for long runs.

   Every iteration generates a random rule program and requires:
     - naive and semi-naive bottom-up produce the same model;
     - the model satisfies every rule (brute-force Definition 4/5 check);
     - goal-directed tabling agrees with the materialised answers;
     - the store passes its internal-consistency audit.

   dune exec bin/soak.exe -- [iterations] [base-seed] *)

module Program = Pathlog.Program
module Fixpoint = Pathlog.Fixpoint

let model_facts p =
  Format.asprintf "%a" Pathlog.Store.pp (Program.store p)
  |> String.split_on_char '\n'
  |> List.sort_uniq compare

let load_mode mode text =
  let config = { Fixpoint.default_config with mode } in
  let p = Program.of_string ~config text in
  ignore (Program.run p);
  p

type outcome = Checked | Conflicted

let check_one seed =
  let text =
    Pathlog.Randprog.generate { Pathlog.Randprog.default with seed }
  in
  let fail stage detail =
    Printf.printf "FAILURE at seed %d (%s)\n%s\n--- program ---\n%s\n" seed
      stage detail text;
    exit 1
  in
  match load_mode Fixpoint.Naive text with
  | exception Pathlog.Err.Functional_conflict _ -> Conflicted
  | exception e -> fail "load" (Printexc.to_string e)
  | p_naive -> (
    let p_semi = load_mode Fixpoint.Seminaive text in
    if model_facts p_naive <> model_facts p_semi then
      fail "modes" "naive and semi-naive models differ";
    (match Program.verify_model p_semi with
    | Ok () -> ()
    | Error (rule, witness) ->
      fail "model-check"
        (Format.asprintf "rule %a violated at %s" Pathlog.Pretty.pp_rule rule
           witness));
    (match Pathlog.Store.check_invariants (Program.store p_semi) with
    | [] -> ()
    | problems -> fail "invariants" (String.concat "\n" problems));
    let q = "o1[r ->> {Z}]" in
    let full =
      List.sort compare
        (List.map
           (Program.row_to_string p_semi)
           (Program.query_string p_semi q).rows)
    in
    let p_top = Program.of_string text in
    match Program.query_topdown p_top (Pathlog.Parser.literals q) with
    | Some (answer, _) ->
      let top =
        List.sort compare
          (List.map (Program.row_to_string p_top) answer.rows)
      in
      if top <> full then fail "topdown" "tabled answers differ";
      Checked
    | None -> fail "topdown" "fragment unexpectedly inapplicable")

let () =
  let iterations =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 500
  in
  let base = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 0 in
  let checked = ref 0 in
  let conflicted = ref 0 in
  for i = 1 to iterations do
    match check_one (base + i) with
    | Checked -> incr checked
    | Conflicted -> incr conflicted
  done;
  Printf.printf
    "soak: %d iterations ok (%d fully cross-checked, %d rejected as \
     inconsistent programs)\n"
    iterations !checked !conflicted
