(* Three ways to answer the same query, and proofs of the answers.

   1. Full materialisation: bottom-up fixpoint of the whole program, then
      solve (the paper's implicit execution model, section 6).
   2. Demand-focused: run only the rules transitively relevant to the
      query's relations.
   3. Goal-directed tabling: push the query's constants into recursion and
      memoise sub-goals — no materialisation at all.

   Plus: provenance proof trees for derived facts (pathlog why).

   dune exec examples/query_strategies.exe *)

module Program = Pathlog.Program

let program_text =
  {|
  % genealogy with a long chain grafted on
  peter[kids ->> {tim, mary}].
  tim[kids ->> {sally}].
  mary[kids ->> {tom, paul}].
  sally[kids ->> {gen0}].
  gen0[kids ->> {gen1}]. gen1[kids ->> {gen2}]. gen2[kids ->> {gen3}].

  X[desc ->> {Y}] <- X[kids ->> {Y}].
  X[desc ->> {Y}] <- X..desc[kids ->> {Y}].

  % an unrelated rule family the focused strategies can skip
  e1 : emp[base -> 100].
  X[pay -> B] <- X : emp[base -> B].
  |}

let q = "gen1[desc ->> {X}]"

let () =
  Printf.printf "query: ?- %s.\n\n" q;
  let lits = Pathlog.Parser.literals q in

  (* 1. full materialisation *)
  let p1 = Program.of_string program_text in
  let stats = Program.run p1 in
  let full = Program.query p1 lits in
  Printf.printf "full materialisation:  %d answers, %d firings, %d facts\n"
    (List.length full.rows) stats.firings
    (let s = Pathlog.Store.stats (Program.store p1) in
     s.scalar_tuples + s.set_tuples + s.isa_edges);

  (* 2. demand-focused *)
  let p2 = Program.of_string program_text in
  let focused, fstats, considered = Program.query_focused p2 lits in
  Printf.printf
    "demand-focused:        %d answers, %d firings, %d of %d rules\n"
    (List.length focused.rows)
    fstats.firings considered
    (List.length (Program.rules p2));

  (* 3. goal-directed tabling *)
  let p3 = Program.of_string program_text in
  (match Program.query_topdown p3 lits with
  | Some (answer, tstats) ->
    Printf.printf
      "goal-directed tabling: %d answers, %d goals, %d tabled tuples\n"
      (List.length answer.rows)
      tstats.goals tstats.answers
  | None -> print_endline "goal-directed tabling: not applicable");

  Printf.printf "\nanswers: %s\n"
    (String.concat ", "
       (List.sort compare (List.map (Program.row_to_string p1) full.rows)));

  (* why is gen3 a descendant of gen1? *)
  print_endline "\nproof tree (pathlog why):";
  match Program.why_string p1 "gen1[desc ->> {gen3}]" with
  | Some proof ->
    Format.printf "%a@."
      (Pathlog.Provenance.pp_proof (Program.universe p1))
      proof
  | None -> print_endline "fact not found"
