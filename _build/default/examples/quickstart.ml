(* Quickstart: load a small object base, run rules, ask queries.

   dune exec examples/quickstart.exe *)

let () =
  (* A program is facts + rules + optional signatures and queries. [:]
     asserts class membership, [::] a subclass edge, [->] a scalar method,
     [->>] a set-valued method. *)
  let program =
    Pathlog.load
      {|
      % schema-ish declarations
      automobile :: vehicle.
      manager :: employee.
      employee[age => integer].

      % objects
      ann : manager[age -> 44; city -> newYork].
      bob : employee[age -> 30; city -> newYork; boss -> ann].
      bob[vehicles ->> {car1, bike1}].
      car1 : automobile[cylinders -> 4; color -> red].
      bike1 : vehicle[color -> blue].

      % an intensional method: derived, not stored (section 6 style);
      % set valued, since an employee may share a city with many others
      X[commutesWith ->> {Y}] <- X : employee[city -> C], Y : employee[city -> C].
      |}
  in

  (* The headline feature: a single two-dimensional path expression. The
     first dimension walks into depth (vehicles -> color); the second
     dimension constrains objects along the way (age, class, cylinders). *)
  let q =
    "X : employee[age -> 30]..vehicles : automobile[cylinders -> 4].color[Z]"
  in
  Printf.printf "?- %s.\n" q;
  List.iter
    (fun row -> Printf.printf "   %s\n" (String.concat ", " row))
    (Pathlog.answers program q);

  (* Nested paths inside filters: employees living where their boss lives. *)
  let q = "X : employee[city -> X.boss.city]" in
  Printf.printf "?- %s.\n" q;
  List.iter
    (fun row -> Printf.printf "   %s\n" (String.concat ", " row))
    (Pathlog.answers program q);

  (* Derived methods are queried like stored ones. *)
  let q = "bob[commutesWith ->> {Y}]" in
  Printf.printf "?- %s.\n" q;
  List.iter
    (fun row -> Printf.printf "   %s\n" (String.concat ", " row))
    (Pathlog.answers program q);

  (* Ground queries answer yes/no. *)
  Printf.printf "?- car1 : vehicle.  ->  %b\n"
    (Pathlog.holds program "car1 : vehicle");

  (* Signature checking (the typing the paper gets from [KLW93]). *)
  match Pathlog.Program.check_types program ~mode:`Lenient with
  | [] -> print_endline "types: ok"
  | vs -> Printf.printf "types: %d violations\n" (List.length vs)
