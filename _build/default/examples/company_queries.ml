(* The paper's section 1-2 queries, side by side in all four languages —
   O2SQL (1.1), XSQL (1.2/1.4), PathLog (2.1/2.2) and the manager query —
   evaluated against one generated company database, answers cross-checked.

   dune exec examples/company_queries.exe *)

let header title = Printf.printf "\n== %s ==\n" title

let print_rows u rows =
  List.iter
    (fun row ->
      Printf.printf "   %s\n"
        (String.concat ", " (List.map (Pathlog.Universe.to_string u) row)))
    rows;
  Printf.printf "   (%d answers)\n" (List.length rows)

let () =
  let cfg = Pathlog.Company.scaled 60 in
  let program = Pathlog.Program.create (Pathlog.Company.statements cfg) in
  ignore (Pathlog.Program.run program);
  let store = Pathlog.Program.store program in
  let u = Pathlog.Store.universe store in

  (* ---------------- Query 1.1 (O2SQL): colors of employees' automobiles *)
  header "Query (1.1): O2SQL";
  let o2 =
    {
      Pathlog.O2sql.select = [ "Z" ];
      ranges =
        [
          In_class ("X", "employee");
          In_path ("Y", { root = "X"; steps = [ "vehicles" ] });
        ];
      conds =
        [ Member ("Y", "automobile"); Eq ({ root = "Y"; steps = [ "color" ] }, Pvar "Z") ];
    }
  in
  Format.printf "%a@." Pathlog.O2sql.pp o2;
  let o2_rows = Pathlog.O2sql.eval store o2 in
  print_rows u o2_rows;

  (* ---------------- Query 1.2 (XSQL with selectors) *)
  header "Query (1.2): XSQL";
  let xs =
    {
      Pathlog.Xsql.select = [ "Z" ];
      ranges = [ ("employee", "X"); ("automobile", "Y") ];
      paths =
        [
          {
            root = Rvar "X";
            steps =
              [
                { meth = "vehicles"; selector = Some (Svar "Y") };
                { meth = "color"; selector = Some (Svar "Z") };
              ];
          };
        ];
    }
  in
  Format.printf "%a@." Pathlog.Xsql.pp xs;
  let xs_rows = Pathlog.Xsql.eval store xs in
  print_rows u xs_rows;

  (* ---------------- The PathLog equivalent: one reference *)
  header "PathLog: one 2-D reference";
  let pl = "X : employee..vehicles : automobile.color[Z]" in
  Printf.printf "?- %s.\n" pl;
  let answer = Pathlog.Program.query_string program pl in
  let pl_rows = List.map (fun r -> [ List.nth r 1 ]) answer.rows in
  let dedup rows =
    List.sort_uniq compare rows
  in
  print_rows u (dedup pl_rows);

  let same =
    dedup (List.map (fun r -> r) o2_rows) = dedup xs_rows
    && dedup xs_rows = dedup pl_rows
  in
  Printf.printf "answer sets agree across languages: %b\n" same;

  (* ---------------- Query 1.4 vs 2.1: the second dimension *)
  header "Query (1.4) vs (2.1): 4-cylinder restriction";
  Printf.printf "XSQL needs a conjunction of two paths:\n";
  let xs4 =
    {
      Pathlog.Xsql.select = [ "Z" ];
      ranges = [ ("employee", "X"); ("automobile", "Y") ];
      paths =
        [
          {
            root = Rvar "X";
            steps =
              [
                { meth = "vehicles"; selector = Some (Svar "Y") };
                { meth = "color"; selector = Some (Svar "Z") };
              ];
          };
          {
            root = Rvar "Y";
            steps = [ { meth = "cylinders"; selector = Some (Sint 4) } ];
          };
        ];
    }
  in
  Format.printf "%a@." Pathlog.Xsql.pp xs4;
  Printf.printf "PathLog needs one reference:\n?- %s.\n"
    "X : employee..vehicles : automobile[cylinders -> 4].color[Z]";
  let xs4_rows = Pathlog.Xsql.eval store xs4 in
  let pl4 =
    Pathlog.Program.query_string program
      "X : employee..vehicles : automobile[cylinders -> 4].color[Z]"
  in
  let pl4_rows = List.map (fun r -> [ List.nth r 1 ]) pl4.rows in
  Printf.printf "agreement: %b (XSQL %d rows, PathLog %d rows)\n"
    (dedup xs4_rows = dedup pl4_rows)
    (List.length (dedup xs4_rows))
    (List.length (dedup pl4_rows));

  (* And the automatic 2-D -> 1-D translation. *)
  header "Automatic translation of (2.1) back to 1-D conditions";
  let r =
    Pathlog.Parser.reference
      "X : employee..vehicles : automobile[cylinders -> 4].color[Z]"
  in
  Printf.printf "%s\n" (Pathlog.Translate.to_xsql_text store ~select:[ "Z" ] r);
  Printf.printf "1 PathLog reference = %d one-dimensional conditions\n"
    (Pathlog.Translate.conjunct_count store r);

  (* ---------------- The manager query of section 2 *)
  header "Manager query (section 2): one reference, no explicit flattening";
  let mq =
    "X : manager..vehicles[color -> red].producedBy[city -> city1; president \
     -> X]"
  in
  Printf.printf "?- %s.\n" mq;
  let manager_answer = Pathlog.Program.query_string program mq in
  print_rows u manager_answer.rows;
  let o2_mq =
    {
      Pathlog.O2sql.select = [ "X" ];
      ranges =
        [
          In_class ("X", "manager");
          In_path ("Y", { root = "X"; steps = [ "vehicles" ] });
        ];
      conds =
        [
          Eq ({ root = "Y"; steps = [ "color" ] }, Const "red");
          Eq ({ root = "Y"; steps = [ "producedBy"; "city" ] }, Const "city1");
          Eq ({ root = "Y"; steps = [ "producedBy"; "president" ] }, Pvar "X");
        ];
    }
  in
  Format.printf "O2SQL equivalent:@.%a@." Pathlog.O2sql.pp o2_mq;
  let o2_mq_rows = Pathlog.O2sql.eval store o2_mq in
  Printf.printf "agreement: %b\n"
    (List.sort_uniq compare o2_mq_rows
    = List.sort_uniq compare manager_answer.rows)
