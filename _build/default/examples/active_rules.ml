(* Production rules over PathLog references — the paper's orthogonality
   claim (sections 2 and 7): "the techniques we shall propose are
   applicable for different kinds of rule languages, e.g. deductive,
   production or active rules".

   Scenario: a small HR system. Conditions are ordinary PathLog references;
   actions assert facts (virtual objects included) or emit notifications;
   control is a recognise-act cycle with priorities and refractoriness
   instead of fixpoint saturation.

   dune exec examples/active_rules.exe *)

module Production = Pathlog.Production

let lits = Pathlog.Parser.literals
let reference = Pathlog.Parser.reference

let () =
  let program =
    Pathlog.load
      {|
      manager :: employee.
      ann : manager[salary -> 9000; worksFor -> research].
      bob : employee[salary -> 4500; worksFor -> research; boss -> ann].
      cleo : employee[salary -> 800; worksFor -> sales; boss -> ann].
      research[budget -> 100].
      |}
  in
  let store = Pathlog.Program.store program in
  let engine =
    Production.create store
      [
        (* high priority: flag underpaid employees *)
        {
          p_name = "flag-underpaid";
          condition = lits "X : employee[salary -> 800]";
          actions =
            [
              Assert (reference "X : underpaid");
              Message "salary review needed";
            ];
          priority = 10;
        };
        (* the same virtual-object technique as deductive rule (2.4): give
           every flagged employee a case file referenced by X.casefile *)
        {
          p_name = "open-case";
          condition = lits "X : underpaid";
          actions =
            [
              Assert
                (reference "X.casefile[subject -> X; status -> open]");
              Message "case file opened";
            ];
          priority = 5;
        };
        (* low priority bookkeeping: record each employee as reviewed *)
        {
          p_name = "mark-reviewed";
          condition = lits "X : employee";
          actions = [ Assert (reference "X : reviewed") ];
          priority = 0;
        };
      ]
  in
  let firings = Production.run engine in
  Printf.printf "quiescence after %d firings\n\n" firings;

  Printf.printf "event log:\n";
  List.iter
    (fun (e : Production.event) ->
      match e.e_message with
      | Some m ->
        Printf.printf "  [%s] %s (%s)\n" e.e_rule m
          (String.concat ", "
             (List.map
                (fun (v, o) ->
                  Printf.sprintf "%s = %s" v
                    (Pathlog.Universe.to_string
                       (Pathlog.Program.universe program)
                       o))
                e.e_bindings))
      | None -> ())
    (Production.log engine);

  (* the asserted facts are ordinary objects afterwards: query them with
     path expressions as usual *)
  print_endline "\nresulting case files:";
  List.iter
    (fun row -> Printf.printf "  %s\n" (String.concat ", " row))
    (Pathlog.answers program "X.casefile[status -> open; subject -> X]");

  print_endline "\nreviewed employees:";
  List.iter
    (fun row -> Printf.printf "  %s\n" (String.concat ", " row))
    (Pathlog.answers program "X : reviewed")
