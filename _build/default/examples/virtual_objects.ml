(* Virtual objects by methods — rules (2.4), (6.1), (6.2) of the paper —
   plus signatures applying to virtual objects.

   dune exec examples/virtual_objects.exe *)

let show p q =
  Printf.printf "?- %s.\n" q;
  match Pathlog.answers p q with
  | [] -> print_endline "   no"
  | rows ->
    List.iter
      (fun row -> Printf.printf "   %s\n" (String.concat ", " row))
      rows

let () =
  (* Rule (2.4): restructure the address-related attributes of persons into
     one new address object per person. The virtual object is referenced by
     an ordinary method (X.address) — no function symbols, no view-class
     names. *)
  print_endline "== Rule (2.4): virtual address objects ==";
  let p =
    Pathlog.load
      {|
      alice : person[street -> mainSt;  city -> springfield].
      bert  : person[street -> elmSt;   city -> springfield].
      carla : person[street -> oakSt;   city -> shelbyville].

      X.address[street -> X.street; city -> X.city] <- X : person.

      % virtual objects are typed through signatures like any object:
      person[address => address].
      |}
  in
  show p "alice.address[street -> S; city -> C]";
  show p "X.address[city -> springfield]";
  (* The skolem objects print as the paths that denote them. *)
  let u = Pathlog.Program.universe p in
  Printf.printf "virtual objects created: %s\n"
    (String.concat ", "
       (List.map (Pathlog.Universe.to_string u) (Pathlog.Universe.skolems u)));

  (* Rules (6.1) vs (6.2): employees and their bosses work for the same
     department. With a path in the head (6.1), an undefined boss becomes a
     virtual object; with the path in the body (6.2), only existing bosses
     qualify. *)
  print_endline "\n== Rule (6.1): the head path creates a virtual boss ==";
  let p61 =
    Pathlog.load
      {|
      p1 : employee[worksFor -> cs1].
      p2 : employee[worksFor -> cs2; boss -> b2].
      X.boss[worksFor -> D] <- X : employee[worksFor -> D].
      |}
  in
  show p61 "Z[worksFor -> D]";
  show p61 "p1.boss[worksFor -> D]";

  print_endline "\n== Rule (6.2): only existing bosses ==";
  let p62 =
    Pathlog.load
      {|
      p1 : employee[worksFor -> cs1].
      p2 : employee[worksFor -> cs2; boss -> b2].
      Z[worksFor -> D] <- X : employee[worksFor -> D].boss[Z].
      |}
  in
  show p62 "Z[worksFor -> D]";
  Printf.printf "p1.boss defined under (6.2)? %b\n"
    (Pathlog.holds p62 "p1.boss[worksFor -> D]");

  (* Intensional methods on existing objects (the power rule of section
     6): no virtual objects involved. *)
  print_endline "\n== Intensional method: power from the engine ==";
  let p_power =
    Pathlog.load
      {|
      car9 : automobile[engine -> eng9].
      eng9[power -> 200].
      X[power -> Y] <- X : automobile.engine[power -> Y].
      |}
  in
  show p_power "car9[power -> P]";

  (* Typing: check that address objects satisfy their signature (they are
     skolems, but signatures see them through the class edges the rule
     asserts — here we add the class edge too). *)
  print_endline "\n== Signatures over virtual objects ==";
  let p_typed =
    Pathlog.load
      {|
      alice : person[street -> mainSt; city -> springfield].
      person[address => address].
      X.address : address <- X : person.
      X.address[street -> X.street; city -> X.city] <- X : person.
      |}
  in
  (match Pathlog.Program.check_types p_typed ~mode:`Lenient with
  | [] -> print_endline "types: ok (alice.address : address)"
  | vs -> Printf.printf "types: %d violations\n" (List.length vs));
  show p_typed "X : address"
