examples/active_rules.ml: List Pathlog Printf String
