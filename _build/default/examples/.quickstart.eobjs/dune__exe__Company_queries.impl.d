examples/company_queries.ml: Format List Pathlog Printf String
