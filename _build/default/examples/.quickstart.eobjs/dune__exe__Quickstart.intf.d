examples/quickstart.mli:
