examples/transitive_closure.ml: List Pathlog Printf String
