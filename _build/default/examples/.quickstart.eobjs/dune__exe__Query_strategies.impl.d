examples/query_strategies.ml: Format List Pathlog Printf String
