examples/company_queries.mli:
