examples/query_strategies.mli:
