examples/quickstart.ml: List Pathlog Printf String
