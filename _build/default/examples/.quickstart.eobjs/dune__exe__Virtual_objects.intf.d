examples/virtual_objects.mli:
