examples/virtual_objects.ml: List Pathlog Printf String
