(* Transitive closure — program (6.4) and the generic higher-order [tc] —
   checked against a reference graph algorithm, with naive vs semi-naive
   evaluation statistics.

   dune exec examples/transitive_closure.exe *)

let statements_text stmts = Pathlog.Pretty.program_to_string stmts

let () =
  (* The paper's literal example. *)
  print_endline "== Program (6.4) on the paper's peter/tim/mary facts ==";
  let program =
    Pathlog.Program.create
      (Pathlog.Genealogy.paper_example @ Pathlog.Genealogy.desc_rules)
  in
  ignore (Pathlog.Program.run program);
  let answer = Pathlog.Program.query_string program "peter[desc ->> {X}]" in
  Printf.printf "peter's descendants: %s\n"
    (String.concat ", "
       (List.map (Pathlog.Program.row_to_string program) answer.rows));

  print_endline "\n== Generic tc: peter[(kids.tc) ->> {X}] ==";
  let generic =
    Pathlog.Program.create
      (Pathlog.Genealogy.paper_example @ Pathlog.Genealogy.generic_tc_rules)
  in
  Printf.printf "%s"
    (statements_text Pathlog.Genealogy.generic_tc_rules);
  ignore (Pathlog.Program.run generic);
  let answer =
    Pathlog.Program.query_string generic "peter[(kids.tc) ->> {X}]"
  in
  Printf.printf "peter.(kids.tc): %s\n"
    (String.concat ", "
       (List.map (Pathlog.Program.row_to_string generic) answer.rows));

  (* Cross-check against the reference closure on a random forest, and
     compare naive vs semi-naive effort. *)
  print_endline "\n== Scaling: desc vs reference closure, naive vs semi-naive ==";
  Printf.printf "%-28s %14s %14s %10s\n" "shape" "naive firings"
    "semi-naive" "answers ok";
  List.iter
    (fun shape ->
      let stmts =
        Pathlog.Genealogy.statements shape @ Pathlog.Genealogy.desc_rules
      in
      let run mode =
        let config = { Pathlog.Fixpoint.default_config with mode } in
        let p = Pathlog.Program.create ~config stmts in
        let stats = Pathlog.Program.run p in
        (p, stats)
      in
      let p_naive, s_naive = run Pathlog.Fixpoint.Naive in
      let p_semi, s_semi = run Pathlog.Fixpoint.Seminaive in
      (* check against the reference closure *)
      let reference = Pathlog.Genealogy.closure shape in
      let ok p =
        List.for_all
          (fun (i, descs) ->
            let q =
              Printf.sprintf "p%d[desc ->> {X}]" i
            in
            let got =
              List.sort compare
                (List.concat (Pathlog.answers p q))
            in
            let want =
              List.sort compare
                (List.map (fun d -> Printf.sprintf "p%d" d) descs)
            in
            got = want)
          reference
      in
      let shape_name =
        match shape with
        | Pathlog.Genealogy.Chain n -> Printf.sprintf "chain(%d)" n
        | Binary_tree d -> Printf.sprintf "binary_tree(depth %d)" d
        | Random_forest { people; _ } -> Printf.sprintf "forest(%d)" people
      in
      Printf.printf "%-28s %14d %14d %10b\n" shape_name s_naive.firings
        s_semi.firings
        (ok p_naive && ok p_semi))
    [
      Pathlog.Genealogy.Chain 30;
      Pathlog.Genealogy.Binary_tree 5;
      Pathlog.Genealogy.Random_forest { people = 60; max_kids = 3; seed = 7 };
    ];

  (* The divergence guard on the literal higher-order semantics. *)
  print_endline "\n== Literal HiLog semantics (--hilog-virtual) diverges ==";
  let config =
    {
      Pathlog.Fixpoint.default_config with
      hilog_virtual = true;
      max_objects = 200;
    }
  in
  let p =
    Pathlog.Program.create ~config
      (Pathlog.Genealogy.paper_example @ Pathlog.Genealogy.generic_tc_rules)
  in
  (try ignore (Pathlog.Program.run p)
   with Pathlog.Err.Diverged msg ->
     Printf.printf
       "as predicted, the generic tc under literal semantics diverged: %s\n"
       msg)
