(* Valuation (Definition 4), entailment (Definition 5), flattening and the
   solver — including differential tests of the three evaluators. *)

open Helpers
module Ir = Pathlog.Ir
module Valuation = Pathlog.Valuation
module Entail = Pathlog.Entail
module Flatten = Pathlog.Flatten
module Solve = Pathlog.Solve
module Conjunctive = Pathlog.Conjunctive
module Set = Pathlog.Obj_id.Set

(* A small world shared by the valuation tests (facts only). *)
let world () =
  load
    {|
    automobile :: vehicle.
    john : employee[age -> 30; city -> newYork].
    john[vehicles ->> {a1, v1}].
    a1 : automobile[cylinders -> 4; color -> red].
    v1 : vehicle[color -> blue].
    mary : employee[age -> 25; spouse -> john].
    p1[assistants ->> {x1, x2}].
    x1[salary -> 1000]. x2[salary -> 900].
    x1[projects ->> {prA}]. x2[projects ->> {prA, prB}].
    john[salary@(1994) -> 100].
    |}

let eval_strings p env_list src =
  let store = Pathlog.Program.store p in
  let u = Pathlog.Store.universe store in
  let env =
    Valuation.env_of_list
      (List.map (fun (v, name) -> (v, Pathlog.Store.name store name)) env_list)
  in
  Valuation.eval store env (Pathlog.Parser.reference src)
  |> Set.elements
  |> List.map (Pathlog.Universe.to_string u)
  |> List.sort compare

let check_eval p ?(env = []) src expected =
  Alcotest.(check (list string))
    src
    (List.sort compare expected)
    (eval_strings p env src)

(* ------------------------------------------------------------------ *)

let test_valuation_simple () =
  let p = world () in
  check_eval p "john" [ "john" ];
  check_eval p "john.age" [ "30" ];
  check_eval p "john.spouse" [];  (* undefined: empty, hence false *)
  check_eval p "mary.spouse.age" [ "30" ];
  check_eval p "john..vehicles" [ "a1"; "v1" ]

let test_valuation_sets () =
  let p = world () in
  (* scalar method mapped over a set (section 4.2) *)
  check_eval p "p1..assistants.salary" [ "1000"; "900" ];
  (* set method over a set: union, no nested sets *)
  check_eval p "p1..assistants..projects" [ "prA"; "prB" ];
  (* filter restricting a set *)
  check_eval p "p1..assistants[salary -> 1000]" [ "x1" ]

let test_valuation_molecules () =
  let p = world () in
  check_eval p "john[age -> 30]" [ "john" ];
  check_eval p "john[age -> 31]" [];
  check_eval p "john[age -> mary.spouse.age]" [ "john" ];
  check_eval p "a1 : automobile" [ "a1" ];
  check_eval p "a1 : vehicle" [ "a1" ];  (* inheritance *)
  check_eval p "v1 : automobile" [];
  check_eval p "john[vehicles ->> {a1}]" [ "john" ];
  check_eval p "john[vehicles ->> {a1, v1}]" [ "john" ];
  check_eval p "john[vehicles ->> {mary}]" [];
  (* set-reference rhs: subset semantics *)
  check_eval p "john[vehicles ->> john..vehicles]" [ "john" ]

let test_valuation_self () =
  let p = world () in
  check_eval p "john.self" [ "john" ];
  check_eval p "john.self.age" [ "30" ];
  check_eval p "john.age[self -> 30]" [ "30" ];
  check_eval p "john..vehicles.self" [ "a1"; "v1" ]

let test_valuation_args () =
  let p = world () in
  check_eval p "john.salary@(1994)" [ "100" ];
  check_eval p "john.salary@(1995)" []

let test_valuation_two_dim () =
  let p = world () in
  check_eval p
    "john : employee[age -> 30]..vehicles : automobile[cylinders -> 4].color"
    [ "red" ];
  check_eval p
    "john : employee[age -> 31]..vehicles : automobile[cylinders -> 4].color"
    []

let test_valuation_env () =
  let p = world () in
  check_eval p ~env:[ ("X", "john") ] "X.age" [ "30" ];
  check_eval p ~env:[ ("X", "mary") ] "X.age" [ "25" ];
  match eval_strings p [] "X.age" with
  | exception Valuation.Unbound_variable "X" -> ()
  | _ -> Alcotest.fail "expected unbound variable"

let test_entailment () =
  let p = world () in
  let store = Pathlog.Program.store p in
  let env = Valuation.Env.empty in
  let e src = Entail.reference store env (Pathlog.Parser.reference src) in
  Alcotest.(check bool) "john.age entailed" true (e "john.age");
  Alcotest.(check bool) "bachelor spouse false" false (e "john.spouse");
  Alcotest.(check bool)
    "set ref true if nonempty" true
    (e "p1..assistants[salary -> 1000]");
  Alcotest.(check bool)
    "negation" true
    (Entail.literal store env
       (Syntax.Ast.Neg (Pathlog.Parser.reference "john.spouse")))

let test_rule_holds () =
  let p = world () in
  let store = Pathlog.Program.store p in
  let rule src =
    match Pathlog.Parser.statement src with
    | Syntax.Ast.Rule r -> r
    | Syntax.Ast.Query _ -> assert false
  in
  Alcotest.(check bool)
    "tautology holds" true
    (Entail.rule_holds store (rule "X[age -> A] <- X[age -> A]."));
  Alcotest.(check bool)
    "false rule violated" false
    (Entail.rule_holds store (rule "X[age -> 31] <- X[age -> 30]."));
  match Entail.find_violation store (rule "X[age -> 31] <- X[age -> 30].") with
  | Some (("X", o) :: _) ->
    Alcotest.(check string)
      "witness is john" "john"
      (Pathlog.Universe.to_string (Pathlog.Program.universe p) o)
  | _ -> Alcotest.fail "expected a violation witness"

(* ------------------------------------------------------------------ *)
(* Flattening *)

let test_flatten_shapes () =
  let p = world () in
  let store = Pathlog.Program.store p in
  let flat src =
    let q, _ = Flatten.reference store (Pathlog.Parser.reference src) in
    q
  in
  let atoms src = List.length (flat src).atoms in
  Alcotest.(check int) "name has no atoms" 0 (atoms "john");
  Alcotest.(check int) "path" 1 (atoms "john.age");
  (* isa + age + vehicles + isa + color + the selector equality *)
  Alcotest.(check int) "2-dim reference" 6
    (atoms "X : employee[age -> 30]..vehicles : automobile.color[Z]");
  (* self is compiled away *)
  Alcotest.(check int) "self path free" 0 (atoms "john.self");
  Alcotest.(check int) "self filter is eq" 1 (atoms "john[self -> X]");
  (* subset atom carries a sub-query *)
  let q = flat "p2[friends ->> p1..assistants]" in
  (match q.atoms with
  | [ Ir.A_subset s ] ->
    Alcotest.(check int) "sub atoms" 1 (List.length s.sub_atoms)
  | _ -> Alcotest.fail "expected one subset atom");
  (* named variables keep first-occurrence order *)
  let q = flat "X[a -> Y].b[Z -> X]" in
  Alcotest.(check (list string))
    "named order" [ "X"; "Y"; "Z" ]
    (List.map fst q.named)

let test_flatten_counts_match_paper () =
  (* the paper's query 1.4 needs 2 XSQL paths = 6 flat conditions; the
     PathLog reference 2.1 flattens to exactly those *)
  let p = world () in
  let store = Pathlog.Program.store p in
  Alcotest.(check int)
    "2.1 flattens to 6 conjuncts" 6
    (Pathlog.Translate.conjunct_count store
       (Pathlog.Parser.reference
          "X : employee..vehicles : automobile[cylinders -> 4].color[Z]"))

(* ------------------------------------------------------------------ *)
(* Solver vs valuation vs naive conjunctive: differential testing *)

let query_via_solve p lits =
  let store = Pathlog.Program.store p in
  let q = Flatten.literals store lits in
  sorted_rows (Solve.named_solutions store q)

let query_via_conjunctive p lits =
  let store = Pathlog.Program.store p in
  let q = Flatten.literals store lits in
  sorted_rows (Conjunctive.named_solutions store q)

let query_via_source_order p lits =
  let store = Pathlog.Program.store p in
  let q = Flatten.literals store lits in
  sorted_rows (Solve.named_solutions ~order:Solve.Source store q)

let catalogue_queries =
  [
    "X : employee";
    "X : vehicle";
    "X.age[Y]";
    "X[age -> 30]";
    "X..vehicles[color -> red]";
    "X : employee..vehicles : automobile[cylinders -> 4].color[Z]";
    "X[salary -> 1000]";
    "p1[assistants ->> {X[salary -> 1000]}]";
    "p2[friends ->> p1..assistants]";
    "X[vehicles ->> {Y}], Y[color -> C]";
    "not john.spouse, john.age[A]";
    "X[M ->> {Y}]";
    "X.age[A], not X[city -> newYork]";
  ]

let test_differential_catalogue () =
  let p = world () in
  List.iter
    (fun src ->
      let lits = Pathlog.Parser.literals src in
      let a = query_via_solve p lits in
      let b = query_via_conjunctive p lits in
      let c = query_via_source_order p lits in
      Alcotest.(check (list (list int))) ("solve=conj: " ^ src) b a;
      Alcotest.(check (list (list int))) ("greedy=source: " ^ src) c a)
    catalogue_queries

(* On random fact bases and random ground references, the solver agrees
   with the direct valuation of Definition 4. *)
let solver_matches_valuation =
  QCheck.Test.make ~name:"solver result set = Definition 4 valuation"
    ~count:100
    QCheck.(pair arbitrary_loadable_base (arbitrary_reference ~allow_vars:false))
    (fun (p, r) ->
      match Pathlog.Wellformed.check_reference r with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        let store = Pathlog.Program.store p in
        let expected =
          Valuation.eval store Valuation.Env.empty r |> Set.elements
        in
        let q, result = Flatten.reference store r in
        let got = ref Set.empty in
        Solve.iter store q ~f:(fun binding ->
            match result with
            | Ir.Const o -> got := Set.add o !got
            | Ir.V i -> got := Set.add binding.(i) !got);
        Set.elements !got = expected)

(* Random queries with variables: greedy solver = naive conjunctive. *)
let solver_matches_conjunctive =
  QCheck.Test.make ~name:"greedy solver = naive conjunctive evaluator"
    ~count:60
    QCheck.(pair arbitrary_loadable_base (arbitrary_reference ~allow_vars:true))
    (fun (p, r) ->
      match Pathlog.Wellformed.check_reference r with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        let store = Pathlog.Program.store p in
        let q = Flatten.literals store [ Syntax.Ast.Pos r ] in
        (* keep the search bounded *)
        QCheck.assume (q.nvars <= 5);
        sorted_rows (Solve.named_solutions store q)
        = sorted_rows (Conjunctive.named_solutions store q))

let test_solve_limit () =
  let p = world () in
  let store = Pathlog.Program.store p in
  let q = Flatten.literals store (Pathlog.Parser.literals "X.age[A]") in
  Alcotest.(check int)
    "limit 1" 1
    (List.length (Solve.named_solutions ~limit:1 store q));
  Alcotest.(check bool) "satisfiable" true (Solve.satisfiable store q);
  Alcotest.(check int) "count" 2 (Solve.count store q)

let test_solve_unconstrained_variable () =
  let p = load "a[m -> b]." in
  let store = Pathlog.Program.store p in
  let q = Flatten.literals store (Pathlog.Parser.literals "X") in
  (* a bare variable ranges over the whole universe *)
  Alcotest.(check int)
    "universe enumeration"
    (Pathlog.Universe.cardinality (Pathlog.Store.universe store))
    (List.length (Solve.named_solutions store q))

let test_seeded_solve () =
  (* seeds restrict the first atom to the bucket suffix *)
  let p = load "a[m -> r1]. b[m -> r2]. c[m -> r3]." in
  let store = Pathlog.Program.store p in
  let q = Flatten.literals store (Pathlog.Parser.literals "X[m -> Y]") in
  let all = Solve.named_solutions store q in
  Alcotest.(check int) "all three" 3 (List.length all);
  let seeded = ref [] in
  Solve.iter ~seed:{ seed_atom = 0; seed_from = 2 } store q ~f:(fun b ->
      seeded := Array.to_list b :: !seeded);
  Alcotest.(check int) "suffix only" 1 (List.length !seeded)

let suite =
  [
    Alcotest.test_case "valuation simple" `Quick test_valuation_simple;
    Alcotest.test_case "valuation sets" `Quick test_valuation_sets;
    Alcotest.test_case "valuation molecules" `Quick test_valuation_molecules;
    Alcotest.test_case "valuation self" `Quick test_valuation_self;
    Alcotest.test_case "valuation args" `Quick test_valuation_args;
    Alcotest.test_case "valuation two dimensions" `Quick test_valuation_two_dim;
    Alcotest.test_case "valuation env" `Quick test_valuation_env;
    Alcotest.test_case "entailment (Definition 5)" `Quick test_entailment;
    Alcotest.test_case "rule_holds model check" `Quick test_rule_holds;
    Alcotest.test_case "flatten shapes" `Quick test_flatten_shapes;
    Alcotest.test_case "flatten counts (paper 1.4)" `Quick
      test_flatten_counts_match_paper;
    Alcotest.test_case "differential catalogue" `Quick
      test_differential_catalogue;
    qtest solver_matches_valuation;
    qtest solver_matches_conjunctive;
    Alcotest.test_case "solve limit/count" `Quick test_solve_limit;
    Alcotest.test_case "solve unconstrained var" `Quick
      test_solve_unconstrained_variable;
    Alcotest.test_case "seeded solve" `Quick test_seeded_solve;
  ]
