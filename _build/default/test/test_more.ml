(* Additional edge cases across the system: argument methods, string and
   integer objects, mutual recursion, multi-strata programs, solver
   options, head corner cases. *)

open Helpers
module Program = Pathlog.Program
module Fixpoint = Pathlog.Fixpoint

(* ------------------------------------------------------------------ *)
(* Values and argument methods *)

let test_salary_by_year () =
  let p =
    load
      {|
      john[salary@(1994) -> 100].
      john[salary@(1995) -> 120].
      mary[salary@(1994) -> 150].
      |}
  in
  check_answers "by year" p "X[salary@(1994) -> S]"
    [ "john, 100"; "mary, 150" ];
  check_answers "by person" p "john[salary@(Y) -> S]"
    [ "1994, 100"; "1995, 120" ];
  check_answers "fully open" p "X[salary@(Y) -> S]"
    [ "john, 1994, 100"; "john, 1995, 120"; "mary, 1994, 150" ]

let test_multi_arity_same_method () =
  (* the same method name with different arities coexists *)
  let p = load "x[m -> a]. x[m@(k) -> b]." in
  check_answers "nullary" p "x[m -> R]" [ "a" ];
  check_answers "unary" p "x[m@(k) -> R]" [ "b" ]

let test_string_objects () =
  let p = load {|doc1[title -> "A \"quoted\" title"]. doc1 : document.|} in
  check_answers "string result" p {|doc1[title -> T]|}
    [ {|"A \"quoted\" title"|} ];
  check_holds "string equality" p {|doc1[title -> "A \"quoted\" title"]|};
  check_fails "different string" p {|doc1[title -> "other"]|}

let test_negative_integers () =
  let p = load "acct[balance -> -250]." in
  check_answers "negative int" p "acct[balance -> B]" [ "-250" ];
  check_holds "matches" p "acct[balance -> -250]"

let test_int_vs_name_distinct () =
  let p = load {|x[a -> 5]. y[a -> "5"].|} in
  check_fails "int is not string" p {|x[a -> "5"]|};
  check_fails "string is not int" p "y[a -> 5]"

let test_rule_with_arg_methods () =
  let p =
    load
      {|
      john[salary@(1994) -> 100]. john[salary@(1995) -> 120].
      X[gotRaise@(Y1, Y2) -> yes] <-
        X[salary@(Y1) -> 100], X[salary@(Y2) -> 120].
      |}
  in
  check_holds "derived arg method" p "john[gotRaise@(1994, 1995) -> yes]"

(* ------------------------------------------------------------------ *)
(* Recursion shapes *)

let test_mutual_recursion () =
  let p =
    load
      {|
      n0[next -> n1]. n1[next -> n2]. n2[next -> n3]. n3[next -> n4].
      n0[evenFrom -> yes].
      X[oddFrom -> yes]  <- Y[evenFrom -> yes], Y[next -> X].
      X[evenFrom -> yes] <- Y[oddFrom -> yes],  Y[next -> X].
      |}
  in
  check_answers "even nodes" p "X[evenFrom -> yes]" [ "n0"; "n2"; "n4" ];
  check_answers "odd nodes" p "X[oddFrom -> yes]" [ "n1"; "n3" ]

let test_mutual_recursion_topdown () =
  let text =
    {|
    n0[next -> n1]. n1[next -> n2]. n2[next -> n3]. n3[next -> n4].
    n0[evenFrom -> yes].
    X[oddFrom -> yes]  <- Y[evenFrom -> yes], Y[next -> X].
    X[evenFrom -> yes] <- Y[oddFrom -> yes],  Y[next -> X].
    |}
  in
  let p = Program.of_string text in
  match Program.query_topdown p (Pathlog.Parser.literals "n4[evenFrom -> R]") with
  | Some (answer, _) ->
    Alcotest.(check int) "n4 is even-reachable" 1 (List.length answer.rows)
  | None -> Alcotest.fail "mutual recursion is flat-headed"

let test_same_generation () =
  (* the classic non-linear recursion *)
  let p =
    load
      {|
      root[par -> top]. a[par -> root]. b[par -> root].
      a1[par -> a]. b1[par -> b].
      X[sg ->> {X}] <- X[par -> P].
      X[sg ->> {Y}] <- X[par -> XP], XP[sg ->> {YP}], Y[par -> YP].
      |}
  in
  check_holds "siblings same generation" p "a[sg ->> {b}]";
  check_holds "cousins same generation" p "a1[sg ->> {b1}]";
  check_fails "different generations" p "a[sg ->> {b1}]"

let test_diamond_derivation_no_duplicates () =
  (* two derivation paths for the same fact: set semantics, single tuple *)
  let p =
    load
      {|
      x : a. x : b.
      x : c <- x : a.
      x : c <- x : b.
      |}
  in
  let st = Pathlog.Store.stats (Program.store p) in
  Alcotest.(check int) "isa edges" 3 st.isa_edges

(* ------------------------------------------------------------------ *)
(* Strata and evaluation options *)

let test_three_strata () =
  (* s2 waits for the completion of s1; done waits for s2 *)
  let p =
    Program.of_string
      {|
      a[s1 ->> {m}].
      c[h ->> {m}].
      b[s2 ->> {Y}] <- c[h ->> a..s1], a[s1 ->> {Y}].
      e[h2 ->> {m}].
      d[done -> yes] <- e[h2 ->> b..s2].
      |}
  in
  ignore (Program.run p);
  Alcotest.(check int) "exactly 3 strata" 3 (Array.length (Program.strata p));
  check_holds "cascaded inclusions" p "d[done -> yes]"

let test_source_order_program () =
  let config =
    { Fixpoint.default_config with order = Pathlog.Solve.Source }
  in
  let p =
    Program.of_string ~config
      {|
      peter[kids ->> {tim}]. tim[kids ->> {sally}].
      X[desc ->> {Y}] <- X[kids ->> {Y}].
      X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
      |}
  in
  ignore (Program.run p);
  check_answers "source order agrees" p "peter[desc ->> {X}]"
    [ "tim"; "sally" ]

let test_naive_with_negation () =
  let config = { Fixpoint.default_config with mode = Fixpoint.Naive } in
  let p =
    Program.of_string ~config
      {|
      a : emp[sal -> 10]. b : emp[sal -> 20].
      X : poor <- X : emp, not X[sal -> 20].
      |}
  in
  ignore (Program.run p);
  check_answers "naive + negation" p "X : poor" [ "a" ]

let test_hilog_virtual_flag () =
  (* with the flag on, a variable method ranges over skolems too *)
  let config =
    { Fixpoint.default_config with hilog_virtual = true; max_objects = 500 }
  in
  let p =
    Program.of_string ~config
      {|
      a : person[city -> c].
      X.address[city -> X.city] <- X : person.
      found[m -> M] <- a.address[M -> c].
      |}
  in
  ignore (Program.run p);
  check_answers "skolem-valued method found" p "found[m -> M]" [ "city" ]

let test_max_rounds_exact_boundary () =
  (* terminates in exactly 3 rounds: budget 3 must be enough *)
  let config = { Fixpoint.default_config with max_rounds = 5 } in
  let p =
    Program.of_string ~config
      {|
      a[kids ->> {b}]. b[kids ->> {c}].
      X[desc ->> {Y}] <- X[kids ->> {Y}].
      X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
      |}
  in
  ignore (Program.run p);
  check_answers "fits the budget" p "a[desc ->> {X}]" [ "b"; "c" ]

(* ------------------------------------------------------------------ *)
(* Head corner cases *)

let test_deep_head_path () =
  (* chained skolems: X.a.b creates two objects *)
  let p = load "root.a.b[mark -> yes]." in
  check_holds "nested skolems" p "root.a.b[mark -> yes]";
  Alcotest.(check int) "two skolems" 2
    (List.length (Pathlog.Universe.skolems (Program.universe p)))

let test_head_args_path () =
  let p = load "conf.room@(2026)[floor -> 3]." in
  check_answers "skolem with argument" p "conf.room@(2026)[floor -> F]"
    [ "3" ];
  check_fails "different argument, different object" p
    "conf.room@(2027)[floor -> F]"

let test_head_isa_chain () =
  let p = load "x : a : b." in
  (* (x : a) : b asserts both memberships of x *)
  check_holds "x : a" p "x : a";
  check_holds "x : b" p "x : b"

let test_conflicting_rules_raise () =
  match
    load
      {|
      a[v -> 1]. b[v -> 2].
      out[r -> V] <- X[v -> V].
      |}
  with
  | exception Pathlog.Err.Functional_conflict _ -> ()
  | _ -> Alcotest.fail "expected conflict: out.r gets two values"

let test_isa_head_via_variable_class () =
  let p =
    load
      {|
      a[kind -> vip].
      X : C <- X[kind -> C].
      |}
  in
  check_holds "derived membership with variable class" p "a : vip"

(* ------------------------------------------------------------------ *)
(* Query/answer API details *)

let test_query_column_order () =
  let p = load "x[a -> 1; b -> 2]." in
  let answer = Program.query_string p "x[b -> B], x[a -> A]" in
  Alcotest.(check (list string)) "first-occurrence order" [ "B"; "A" ]
    answer.columns

let test_query_duplicate_elimination () =
  let p = load "x[a -> 1]. y[a -> 1]." in
  let answer = Program.query_string p "X[a -> V], Y[a -> V]" in
  (* 2 x 2 combinations, all distinct rows *)
  Alcotest.(check int) "distinct rows" 4 (List.length answer.rows)

let test_embedded_query_order () =
  let p = load "a : c. ?- a : c. ?- X : c." in
  Alcotest.(check int) "two embedded" 2
    (List.length (Program.embedded_queries p))

let test_pp_answer () =
  let p = load "a : c." in
  let yes = Program.query_string p "a : c" in
  Alcotest.(check string) "ground yes" "yes"
    (Format.asprintf "%a" (Program.pp_answer p) yes);
  let no = Program.query_string p "b : c" in
  Alcotest.(check string) "ground no" "no"
    (Format.asprintf "%a" (Program.pp_answer p) no)

let test_store_dump_is_loadable_program () =
  let p = load "x : c[color -> red]. x[tags ->> {a, b}]." in
  let dumped = Program.dump_model p in
  (* every dumped line is itself a parsable statement *)
  let reparsed = Pathlog.Parser.program dumped in
  Alcotest.(check int) "four facts dumped" 4 (List.length reparsed)

(* ------------------------------------------------------------------ *)
(* O2SQL extras *)

let test_o2sql_path_operand () =
  let p =
    load
      {|
      y1[producedBy -> acme]. acme[president -> boss1].
      y1[owner -> boss1].
      y1 : widget.
      |}
  in
  let store = Program.store p in
  let q =
    {
      Pathlog.O2sql.select = [ "Y" ];
      ranges = [ In_class ("Y", "widget") ];
      conds =
        [
          Eq
            ( { root = "Y"; steps = [ "owner" ] },
              Ppath { root = "Y"; steps = [ "producedBy"; "president" ] } );
        ];
    }
  in
  Alcotest.(check int) "path = path condition" 1
    (List.length (Pathlog.O2sql.eval store q))

let test_o2sql_int_operand () =
  let p = load "w : widget[size -> 5]." in
  let store = Program.store p in
  let q =
    {
      Pathlog.O2sql.select = [ "W" ];
      ranges = [ In_class ("W", "widget") ];
      conds = [ Eq ({ root = "W"; steps = [ "size" ] }, Const_int 5) ];
    }
  in
  Alcotest.(check int) "int operand" 1 (List.length (Pathlog.O2sql.eval store q))

let test_o2sql_empty_class () =
  let p = load "x : other." in
  let store = Program.store p in
  let q =
    {
      Pathlog.O2sql.select = [ "W" ];
      ranges = [ In_class ("W", "widget") ];
      conds = [];
    }
  in
  Alcotest.(check int) "empty range" 0 (List.length (Pathlog.O2sql.eval store q))

(* ------------------------------------------------------------------ *)
(* Genealogy oracle cross-check *)

let desc_count_matches_closure =
  QCheck.Test.make ~name:"derived desc tuples = oracle closure size" ~count:15
    QCheck.(int_range 1 200)
    (fun seed ->
      let shape =
        Pathlog.Genealogy.Random_forest { people = 14; max_kids = 3; seed }
      in
      let p =
        Program.create
          (Pathlog.Genealogy.statements shape @ Pathlog.Genealogy.desc_rules)
      in
      ignore (Program.run p);
      let derived =
        List.length (Program.query_string p "X[desc ->> {Y}]").rows
      in
      let oracle =
        List.fold_left
          (fun acc (_, d) -> acc + List.length d)
          0
          (Pathlog.Genealogy.closure shape)
      in
      derived = oracle)

let suite =
  [
    Alcotest.test_case "salary by year" `Quick test_salary_by_year;
    Alcotest.test_case "multi-arity method" `Quick
      test_multi_arity_same_method;
    Alcotest.test_case "string objects" `Quick test_string_objects;
    Alcotest.test_case "negative integers" `Quick test_negative_integers;
    Alcotest.test_case "int vs name distinct" `Quick test_int_vs_name_distinct;
    Alcotest.test_case "rule with arg methods" `Quick
      test_rule_with_arg_methods;
    Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
    Alcotest.test_case "mutual recursion topdown" `Quick
      test_mutual_recursion_topdown;
    Alcotest.test_case "same generation" `Quick test_same_generation;
    Alcotest.test_case "diamond derivation dedup" `Quick
      test_diamond_derivation_no_duplicates;
    Alcotest.test_case "three strata" `Quick test_three_strata;
    Alcotest.test_case "source order program" `Quick test_source_order_program;
    Alcotest.test_case "naive with negation" `Quick test_naive_with_negation;
    Alcotest.test_case "hilog virtual flag" `Quick test_hilog_virtual_flag;
    Alcotest.test_case "max rounds boundary" `Quick
      test_max_rounds_exact_boundary;
    Alcotest.test_case "deep head path" `Quick test_deep_head_path;
    Alcotest.test_case "head args path" `Quick test_head_args_path;
    Alcotest.test_case "head isa chain" `Quick test_head_isa_chain;
    Alcotest.test_case "conflicting rules raise" `Quick
      test_conflicting_rules_raise;
    Alcotest.test_case "isa head variable class" `Quick
      test_isa_head_via_variable_class;
    Alcotest.test_case "query column order" `Quick test_query_column_order;
    Alcotest.test_case "query duplicate elimination" `Quick
      test_query_duplicate_elimination;
    Alcotest.test_case "embedded query order" `Quick test_embedded_query_order;
    Alcotest.test_case "pp answer" `Quick test_pp_answer;
    Alcotest.test_case "dump is loadable" `Quick
      test_store_dump_is_loadable_program;
    Alcotest.test_case "o2sql path operand" `Quick test_o2sql_path_operand;
    Alcotest.test_case "o2sql int operand" `Quick test_o2sql_int_operand;
    Alcotest.test_case "o2sql empty class" `Quick test_o2sql_empty_class;
    qtest desc_count_matches_closure;
  ]

(* appended: parts-explosion workload *)

let test_parts_closure_matches_oracle () =
  let cfg = { Pathlog.Parts.default with parts = 40 } in
  let p =
    Program.create (Pathlog.Parts.statements cfg @ Pathlog.Parts.contains_rules)
  in
  ignore (Program.run p);
  List.iter
    (fun (i, contained) ->
      let got =
        answers p (Printf.sprintf "%s[contains ->> {X}]" (Pathlog.Parts.part i))
      in
      let want =
        List.sort compare (List.map Pathlog.Parts.part contained)
      in
      Alcotest.(check (list string))
        (Printf.sprintf "contains of part%d" i)
        want got)
    (Pathlog.Parts.closure cfg)

let test_parts_quantities () =
  let cfg = { Pathlog.Parts.default with parts = 30 } in
  let p = Program.create (Pathlog.Parts.statements cfg) in
  ignore (Program.run p);
  (* every sub edge has exactly one quantity, and it is an integer 1..9 *)
  let pairs = (Program.query_string p "X[sub ->> {Y}]").rows in
  List.iter
    (fun row ->
      match row with
      | [ x; y ] ->
        let u = Program.universe p in
        let q =
          Program.query_string p
            (Printf.sprintf "%s[qty@(%s) -> Q]"
               (Pathlog.Universe.to_string u x)
               (Pathlog.Universe.to_string u y))
        in
        Alcotest.(check int) "one quantity" 1 (List.length q.rows);
        (match q.rows with
        | [ [ qv ] ] -> (
          match Pathlog.Universe.descriptor u qv with
          | Pathlog.Universe.Int n ->
            Alcotest.(check bool) "1..9" true (n >= 1 && n <= 9)
          | _ -> Alcotest.fail "quantity should be an integer")
        | _ -> Alcotest.fail "unexpected rows")
      | _ -> Alcotest.fail "two columns")
    pairs

let suite =
  suite
  @ [
      Alcotest.test_case "parts closure vs oracle" `Quick
        test_parts_closure_matches_oracle;
      Alcotest.test_case "parts quantities" `Quick test_parts_quantities;
    ]
