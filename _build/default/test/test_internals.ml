(* White-box tests of internal structures: flattening details, rule
   dependency analysis, stratification, IR printing, plan explanation and
   the AST builders. *)

open Helpers
module Ir = Pathlog.Ir
module Flatten = Pathlog.Flatten
module Rule = Pathlog.Rule
module Program = Pathlog.Program

let store_of p = Program.store p

let compile p src =
  match Pathlog.Parser.statement src with
  | Syntax.Ast.Rule r -> Rule.compile (store_of p) r
  | Syntax.Ast.Query _ -> Alcotest.fail "expected a rule"

(* ------------------------------------------------------------------ *)
(* Flatten internals *)

let test_subset_outer_and_locals () =
  let p = load "x[m -> y]." in
  let q =
    Flatten.literals (store_of p)
      (Pathlog.Parser.literals "W[friends ->> V..assistants]")
  in
  match q.atoms with
  | [ Ir.A_subset s ] ->
    (* V is named (outer); the member slot is local *)
    let v_slot = List.assoc "V" q.named in
    Alcotest.(check bool) "V is outer" true (List.mem v_slot s.s_outer);
    (match s.member with
    | Ir.V m -> Alcotest.(check bool) "member is local" true (List.mem m s.s_locals)
    | Ir.Const _ -> Alcotest.fail "member should be a variable");
    Alcotest.(check int) "one sub atom" 1 (List.length s.sub_atoms)
  | _ -> Alcotest.fail "expected a single subset atom"

let test_negation_outer () =
  let p = load "x[m -> y]." in
  let q =
    Flatten.literals (store_of p)
      (Pathlog.Parser.literals "X[m -> R], not X[m -> y]")
  in
  match q.atoms with
  | [ Ir.A_scalar _; Ir.A_neg n ] ->
    let x_slot = List.assoc "X" q.named in
    Alcotest.(check bool) "X outer in negation" true
      (List.mem x_slot n.n_outer)
  | _ -> Alcotest.fail "expected scalar + negation"

let test_shared_slots_across_literals () =
  let p = load "x[m -> y]." in
  let q =
    Flatten.literals (store_of p)
      (Pathlog.Parser.literals "X[a -> Y], Y[b -> Z], Z[c -> X]")
  in
  Alcotest.(check int) "three named vars" 3 (List.length q.named);
  Alcotest.(check int) "three atoms" 3 (List.length q.atoms)

(* ------------------------------------------------------------------ *)
(* Rule dependency analysis *)

let test_rule_defines_and_reads () =
  let p = load "x[m -> y]." in
  let r = compile p "X[power -> Y] <- X : automobile.engine[power -> Y]." in
  let store = store_of p in
  let power = Pathlog.Store.name store "power" in
  let engine = Pathlog.Store.name store "engine" in
  let automobile = Pathlog.Store.name store "automobile" in
  Alcotest.(check bool) "defines power" true
    (List.mem (Ir.R_scalar power) r.defines);
  Alcotest.(check bool) "reads engine" true
    (List.mem (Ir.R_scalar engine) r.reads);
  Alcotest.(check bool) "reads isa automobile" true
    (List.mem (Ir.R_isa_c automobile) r.reads);
  Alcotest.(check bool) "reads power (its own relation)" true
    (List.mem (Ir.R_scalar power) r.reads);
  Alcotest.(check (list string)) "no completion reads" []
    (List.map (fun _ -> "x") r.completion_reads);
  Alcotest.(check bool) "not any-reading" false r.reads_any

let test_rule_head_path_defines () =
  let p = load "x[m -> y]." in
  let r = compile p "X.boss[worksFor -> D] <- X : emp[worksFor -> D]." in
  let store = store_of p in
  let boss = Pathlog.Store.name store "boss" in
  let works = Pathlog.Store.name store "worksFor" in
  Alcotest.(check bool) "defines boss (skolemisable)" true
    (List.mem (Ir.R_scalar boss) r.defines);
  Alcotest.(check bool) "defines worksFor" true
    (List.mem (Ir.R_scalar works) r.defines)

let test_rule_higher_order_reads_any () =
  let p = load "x[m -> y]." in
  let r = compile p "X[(M.tc) ->> {Y}] <- X[M ->> {Y}]." in
  Alcotest.(check bool) "reads any" true r.reads_any;
  Alcotest.(check bool) "defines any" true (List.mem Ir.R_any r.defines)

let test_rule_completion_reads () =
  let p = load "x[m -> y]." in
  let r = compile p "ok[is -> yes] <- p2[friends ->> p1..assistants]." in
  let store = store_of p in
  let assistants = Pathlog.Store.name store "assistants" in
  let friends = Pathlog.Store.name store "friends" in
  Alcotest.(check bool) "completion-reads assistants" true
    (List.mem (Ir.R_set assistants) r.completion_reads);
  Alcotest.(check bool) "reads friends (monotone)" true
    (List.mem (Ir.R_set friends) r.reads);
  Alcotest.(check bool) "friends is not a completion read" false
    (List.mem (Ir.R_set friends) r.completion_reads)

let test_rule_class_edges () =
  let p = load "x[m -> y]." in
  let r = compile p "manager :: employee." in
  Alcotest.(check int) "one static class edge" 1 (List.length r.class_edges)

let test_seedable_atoms () =
  let p = load "x[m -> y]." in
  let r = compile p "X[d ->> {Y}] <- X[k ->> {Y}], X : c, not X[z -> w]." in
  (* member and isa atoms are seedable; the negation is not *)
  Alcotest.(check int) "two seedable" 2 (List.length r.seedable)

(* ------------------------------------------------------------------ *)
(* IR printing (debug surface) *)

let test_ir_pp () =
  let p = load "x[m -> y]." in
  let store = store_of p in
  let q =
    Flatten.literals store
      (Pathlog.Parser.literals "X : c, X[m -> Y], not X[z -> w]")
  in
  let u = Pathlog.Store.universe store in
  let text = Format.asprintf "%a" (Ir.pp_query u) q in
  Alcotest.(check bool) "shows isa" true (contains ~sub:"isa(" text);
  Alcotest.(check bool) "shows scalar" true (contains ~sub:"scalar(" text);
  Alcotest.(check bool) "shows negation" true (contains ~sub:"not (" text);
  Alcotest.(check bool) "shows named vars" true (contains ~sub:"X=_" text)

(* ------------------------------------------------------------------ *)
(* Plan explanation *)

let test_explain_source_order_is_literal () =
  let p = load "m1 : manager. m1[vehicles ->> {v1}]. v1[color -> red]." in
  let store = store_of p in
  let q =
    Flatten.literals store
      (Pathlog.Parser.literals "X : manager..vehicles[color -> red]")
  in
  let plan = Pathlog.Solve.explain ~order:Pathlog.Solve.Source store q in
  (* source order: first atom is the membership, as written *)
  match plan with
  | first :: _ ->
    Alcotest.(check bool) "isa first" true (contains ~sub:"isa(" first)
  | [] -> Alcotest.fail "empty plan"

let test_explain_covers_all_atoms () =
  let p = load "a[kids ->> {b}]." in
  let store = store_of p in
  let q =
    Flatten.literals store
      (Pathlog.Parser.literals
         "X[kids ->> {Y}], not Y[kids ->> {X}], X[friends ->> a..kids]")
  in
  Alcotest.(check int) "one line per atom" (List.length q.atoms)
    (List.length (Pathlog.Solve.explain store q))

(* ------------------------------------------------------------------ *)
(* AST builders mirror the parser *)

let test_builders_equal_parser () =
  let open Syntax.Build in
  let built =
    rule
      (var "X" |->> ("desc", [ var "Y" ]))
      [ pos (dotdot (var "X") "desc" |->> ("kids", [ var "Y" ])) ]
  in
  let parsed =
    Pathlog.Parser.statement "X[desc ->> {Y}] <- X..desc[kids ->> {Y}]."
  in
  Alcotest.(check bool) "rule equal" true
    (Syntax.Ast.equal_statement built parsed);
  let built_fact =
    fact (obj "e1" @: "employee" |-> ("age", int 30) |-> ("city", obj "ny"))
  in
  let parsed_fact =
    Pathlog.Parser.statement "e1 : employee[age -> 30; city -> ny]."
  in
  Alcotest.(check bool) "fact equal" true
    (Syntax.Ast.equal_statement built_fact parsed_fact);
  let built_sig = scalar_sig "employee" "age" "integer" in
  let parsed_sig = Pathlog.Parser.statement "employee[age => integer]." in
  Alcotest.(check bool) "signature equal" true
    (Syntax.Ast.equal_statement built_sig parsed_sig)

let test_builder_set_sig_and_paren () =
  let open Syntax.Build in
  let built = set_sig "employee" "vehicles" "vehicle" in
  let parsed =
    Pathlog.Parser.statement "employee[vehicles =>> vehicle]."
  in
  Alcotest.(check bool) "set signature equal" true
    (Syntax.Ast.equal_statement built parsed);
  let built_ho =
    fact
      (Syntax.Ast.Filter
         {
           f_recv = var "X";
           f_meth = paren (dot (var "M") "tc");
           f_args = [];
           f_rhs = Rset_enum [ var "Y" ];
         })
  in
  ignore built_ho  (* just type-checks the higher-order shape *)

(* ------------------------------------------------------------------ *)
(* Fixpoint statistics *)

let test_fixpoint_stats_fields () =
  let p =
    Program.of_string
      {|
      a[kids ->> {b}]. b[kids ->> {c}].
      X[desc ->> {Y}] <- X[kids ->> {Y}].
      X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
      |}
  in
  let s = Program.run p in
  Alcotest.(check int) "one stratum" 1 s.strata;
  Alcotest.(check bool) "some rounds" true (s.rounds >= 2);
  Alcotest.(check bool) "firings >= insertions" true
    (s.firings >= s.insertions);
  Alcotest.(check int) "insertions = model tuples" 5 s.insertions;
  let text = Format.asprintf "%a" Pathlog.Fixpoint.pp_stats s in
  Alcotest.(check bool) "stats printable" true (contains ~sub:"rounds" text)

let suite =
  [
    Alcotest.test_case "subset outer/locals" `Quick test_subset_outer_and_locals;
    Alcotest.test_case "negation outer" `Quick test_negation_outer;
    Alcotest.test_case "shared slots" `Quick test_shared_slots_across_literals;
    Alcotest.test_case "rule defines/reads" `Quick test_rule_defines_and_reads;
    Alcotest.test_case "head path defines" `Quick test_rule_head_path_defines;
    Alcotest.test_case "higher-order reads any" `Quick
      test_rule_higher_order_reads_any;
    Alcotest.test_case "completion reads" `Quick test_rule_completion_reads;
    Alcotest.test_case "class edges" `Quick test_rule_class_edges;
    Alcotest.test_case "seedable atoms" `Quick test_seedable_atoms;
    Alcotest.test_case "ir pp" `Quick test_ir_pp;
    Alcotest.test_case "explain source order" `Quick
      test_explain_source_order_is_literal;
    Alcotest.test_case "explain covers atoms" `Quick
      test_explain_covers_all_atoms;
    Alcotest.test_case "builders equal parser" `Quick
      test_builders_equal_parser;
    Alcotest.test_case "builder set sig / paren" `Quick
      test_builder_set_sig_and_paren;
    Alcotest.test_case "fixpoint stats" `Quick test_fixpoint_stats_fields;
  ]
