(* Integration tests over the shipped .plg programs: every file loads,
   evaluates, and its embedded queries produce the pinned answers. *)

open Helpers
module Program = Pathlog.Program

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* `dune runtest` runs in the test directory; `dune exec test/main.exe`
   runs in the project root — try both layouts *)
let find_program name =
  let candidates =
    [
      "../examples/programs/" ^ name;
      "examples/programs/" ^ name;
      "_build/default/examples/programs/" ^ name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> Alcotest.failf "program %s not found" name

let load_program name =
  let p = Program.of_string (read_file (find_program name)) in
  ignore (Program.run p);
  p

let test_genealogy_plg () =
  let p = load_program "genealogy.plg" in
  check_answers "desc" p "peter[desc ->> {X}]"
    [ "tim"; "mary"; "sally"; "tom"; "paul" ];
  check_answers "generic tc agrees" p "peter[(kids.tc) ->> {X}]"
    [ "tim"; "mary"; "sally"; "tom"; "paul" ];
  Alcotest.(check int) "two embedded queries" 2
    (List.length (Program.embedded_queries p))

let test_company_plg () =
  let p = load_program "company.plg" in
  check_answers "query 2.1" p
    "X : employee[age -> 30; city -> newYork]..vehicles : \
     automobile[cylinders -> 4].color[Z]"
    [ "e1, red" ];
  check_answers "manager query" p
    "X : manager..vehicles[color -> red].producedBy[city -> detroit; \
     president -> X]"
    [ "m1" ];
  Alcotest.(check int) "no type violations" 0
    (List.length (Program.check_types p ~mode:`Lenient))

let test_addresses_plg () =
  let p = load_program "addresses.plg" in
  check_answers "springfield addresses" p "X.address[city -> springfield]"
    [ "alice"; "bert" ];
  check_answers "address objects" p "X : address"
    [ "alice.address"; "bert.address"; "carla.address" ];
  Alcotest.(check int) "typed" 0
    (List.length (Program.check_types p ~mode:`Lenient))

let test_lists_plg () =
  let p = load_program "lists.plg" in
  check_answers "integer lists" p "L : (integer.list)"
    [ "nil"; "cell1"; "cell2" ];
  check_answers "name lists" p "L : (name.list)" [ "nil"; "cellA" ];
  check_fails "heterogeneous list rejected" p "cellA : (integer.list)"

let test_university_plg () =
  let p = load_program "university.plg" in
  check_answers "cleared" p "X : cleared" [ "amy"; "eva" ];
  check_answers "amy ready" p "amy[readyFor ->> {C}]" [ "cs401" ];
  check_answers "ben not ready" p "ben[readyFor ->> {C}]" [];
  check_answers "requires closure" p "cs401[requires ->> {P}]"
    [ "cs301"; "cs201"; "cs101"; "ma101" ];
  Alcotest.(check int) "typed" 0
    (List.length (Program.check_types p ~mode:`Lenient));
  Alcotest.(check bool) "stratified into 2" true
    (Array.length (Program.strata p) >= 2)

let test_all_programs_verify () =
  (* each shipped program's fixpoint is a model of its rules.
     genealogy.plg is excluded: its generic tc has an infinite literal
     minimal model, and the engine's (documented) restriction of
     higher-order method variables to non-virtual objects makes the
     computed model smaller than the literal one. *)
  List.iter
    (fun name ->
      let p = load_program name in
      match Program.verify_model p with
      | Ok () -> ()
      | Error (rule, witness) ->
        Alcotest.failf "%s: rule %a violated at %s" name
          Pathlog.Pretty.pp_rule rule witness)
    [ "addresses.plg"; "lists.plg" ]

let test_generic_tc_literal_model_deviation () =
  (* pin the deviation itself: the checker must find the kids.tc witness *)
  let p = load_program "genealogy.plg" in
  match Program.verify_model p with
  | Error (_, witness) ->
    Alcotest.(check bool) "witness binds M to the virtual method" true
      (Helpers.contains ~sub:"kids.tc" witness)
  | Ok () ->
    Alcotest.fail
      "expected the documented higher-order deviation to be observable"

let test_all_programs_invariants () =
  List.iter
    (fun name ->
      let p = load_program name in
      Alcotest.(check (list string)) (name ^ " invariants") []
        (Pathlog.Store.check_invariants (Program.store p)))
    [
      "genealogy.plg"; "company.plg"; "addresses.plg"; "lists.plg";
      "university.plg";
    ]

let suite =
  [
    Alcotest.test_case "genealogy.plg" `Quick test_genealogy_plg;
    Alcotest.test_case "company.plg" `Quick test_company_plg;
    Alcotest.test_case "addresses.plg" `Quick test_addresses_plg;
    Alcotest.test_case "lists.plg" `Quick test_lists_plg;
    Alcotest.test_case "university.plg" `Quick test_university_plg;
    Alcotest.test_case "models verify" `Quick test_all_programs_verify;
    Alcotest.test_case "generic tc literal-model deviation" `Quick
      test_generic_tc_literal_model_deviation;
    Alcotest.test_case "store invariants" `Quick test_all_programs_invariants;
  ]
