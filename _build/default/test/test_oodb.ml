(* Unit and property tests for the object-store substrate. *)

open Helpers
module Store = Pathlog.Store
module Universe = Pathlog.Universe
module Obj_id = Pathlog.Obj_id
module Vec = Oodb.Vec

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_basic () =
  let v = Vec.create () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Alcotest.(check (list int)) "to_list" (List.init 100 Fun.id) (Vec.to_list v);
  let seen = ref [] in
  Vec.iter_from (fun x -> seen := x :: !seen) v 97;
  Alcotest.(check (list int)) "iter_from suffix" [ 99; 98; 97 ] !seen;
  Alcotest.(check int) "fold" 4950 (Vec.fold ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 7) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x < 0) v)

let test_vec_get_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "negative" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v (-1)));
  Alcotest.check_raises "past end" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 3))

let vec_roundtrip =
  QCheck.Test.make ~name:"Vec.of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun xs -> Vec.to_list (Vec.of_list xs) = xs)

let vec_stable_indices =
  QCheck.Test.make ~name:"Vec push keeps earlier indices stable" ~count:100
    QCheck.(list small_nat)
    (fun xs ->
      let v = Vec.create () in
      List.for_all
        (fun x ->
          let i = Vec.length v in
          Vec.push v x;
          Vec.get v i = x)
        xs)

(* ------------------------------------------------------------------ *)
(* Universe *)

let test_interning () =
  let u = Universe.create () in
  let a = Universe.name u "alpha" in
  let a' = Universe.name u "alpha" in
  let b = Universe.name u "beta" in
  Alcotest.(check bool) "idempotent" true (Obj_id.equal a a');
  Alcotest.(check bool) "distinct names distinct" false (Obj_id.equal a b);
  let i = Universe.int u 42 in
  let i' = Universe.int u 42 in
  Alcotest.(check bool) "ints interned" true (Obj_id.equal i i');
  let s = Universe.str u "42" in
  Alcotest.(check bool) "string 42 distinct from int 42" false
    (Obj_id.equal i s);
  Alcotest.(check int) "cardinality" 4 (Universe.cardinality u)

let test_skolems () =
  let u = Universe.create () in
  let boss = Universe.name u "boss" in
  let p1 = Universe.name u "p1" in
  let sk = Universe.skolem u ~meth:boss ~recv:p1 ~args:[] in
  let sk' = Universe.skolem u ~meth:boss ~recv:p1 ~args:[] in
  Alcotest.(check bool) "deterministic" true (Obj_id.equal sk sk');
  Alcotest.(check bool) "is_skolem" true (Universe.is_skolem u sk);
  Alcotest.(check bool) "name not skolem" false (Universe.is_skolem u p1);
  Alcotest.(check string) "prints as path" "p1.boss" (Universe.to_string u sk);
  let arg = Universe.int u 1994 in
  let sk2 = Universe.skolem u ~meth:boss ~recv:p1 ~args:[ arg ] in
  Alcotest.(check bool) "args distinguish" false (Obj_id.equal sk sk2);
  Alcotest.(check string)
    "prints with args" "p1.boss@(1994)"
    (Universe.to_string u sk2);
  Alcotest.(check (list int)) "skolems in order" [ sk; sk2 ] (Universe.skolems u)

let test_string_printing () =
  let u = Universe.create () in
  let s = Universe.str u "hi there" in
  Alcotest.(check string) "quoted" "\"hi there\"" (Universe.to_string u s)

(* ------------------------------------------------------------------ *)
(* Store: class hierarchy *)

let test_isa_closure () =
  let st = Store.create () in
  let n = Store.name st in
  Alcotest.(check bool)
    "add edge" true
    (Store.add_isa st (n "automobile") (n "vehicle") = Store.IAdded);
  Alcotest.(check bool)
    "duplicate" true
    (Store.add_isa st (n "automobile") (n "vehicle") = Store.IDuplicate);
  ignore (Store.add_isa st (n "a1") (n "automobile"));
  Alcotest.(check bool)
    "transitive member" true
    (Store.is_member st (n "a1") (n "vehicle"));
  Alcotest.(check bool)
    "strict: not a member of itself" false
    (Store.is_member st (n "vehicle") (n "vehicle"));
  Alcotest.(check bool)
    "no reverse" false
    (Store.is_member st (n "vehicle") (n "a1"));
  Alcotest.(check int)
    "members closure" 2
    (Obj_id.Set.cardinal (Store.members st (n "vehicle")));
  Alcotest.(check int)
    "classes closure" 2
    (Obj_id.Set.cardinal (Store.classes_of st (n "a1")))

let test_isa_cycle_rejected () =
  let st = Store.create () in
  let n = Store.name st in
  ignore (Store.add_isa st (n "a") (n "b"));
  ignore (Store.add_isa st (n "b") (n "c"));
  Alcotest.(check bool)
    "cycle detected" true
    (Store.add_isa st (n "c") (n "a") = Store.ICycle);
  Alcotest.(check bool)
    "self loop is duplicate" true
    (Store.add_isa st (n "a") (n "a") = Store.IDuplicate)

let test_isa_diamond () =
  let st = Store.create () in
  let n = Store.name st in
  ignore (Store.add_isa st (n "d") (n "b"));
  ignore (Store.add_isa st (n "d") (n "c"));
  ignore (Store.add_isa st (n "b") (n "a"));
  ignore (Store.add_isa st (n "c") (n "a"));
  Alcotest.(check int)
    "diamond ancestors" 3
    (Obj_id.Set.cardinal (Store.classes_of st (n "d")));
  Alcotest.(check int)
    "diamond members" 3
    (Obj_id.Set.cardinal (Store.members st (n "a")))

let test_cache_invalidation () =
  let st = Store.create () in
  let n = Store.name st in
  ignore (Store.add_isa st (n "x") (n "mid"));
  Alcotest.(check int)
    "before" 1
    (Obj_id.Set.cardinal (Store.classes_of st (n "x")));
  ignore (Store.add_isa st (n "mid") (n "top"));
  Alcotest.(check int)
    "after new edge above" 2
    (Obj_id.Set.cardinal (Store.classes_of st (n "x")))

let test_builtin_value_classes () =
  let st = Store.create () in
  let i42 = Store.int st 42 in
  let s = Store.str st "hello" in
  let integer = Store.name st "integer" in
  let string_ = Store.name st "string" in
  Alcotest.(check bool) "42 : integer" true (Store.is_member st i42 integer);
  Alcotest.(check bool) "42 not string" false (Store.is_member st i42 string_);
  Alcotest.(check bool) "str : string" true (Store.is_member st s string_);
  let nm = Store.name st "someobj" in
  Alcotest.(check bool) "name not integer" false (Store.is_member st nm integer)

(* ------------------------------------------------------------------ *)
(* Store: method tables *)

let test_scalar_methods () =
  let st = Store.create () in
  let n = Store.name st in
  let add r = Store.add_scalar st ~meth:(n "age") ~recv:(n r) ~args:[] in
  Alcotest.(check bool) "added" true (add "bob" ~res:(Store.int st 30) = Added);
  Alcotest.(check bool)
    "duplicate" true
    (add "bob" ~res:(Store.int st 30) = Duplicate);
  (match add "bob" ~res:(Store.int st 31) with
  | Conflict existing ->
    Alcotest.(check bool)
      "conflict carries existing" true
      (Obj_id.equal existing (Store.int st 30))
  | Added | Duplicate -> Alcotest.fail "expected conflict");
  Alcotest.(check (option int))
    "lookup" (Some (Store.int st 30))
    (Store.scalar_lookup st ~meth:(n "age") ~recv:(n "bob") ~args:[]);
  Alcotest.(check (option int))
    "lookup miss" None
    (Store.scalar_lookup st ~meth:(n "age") ~recv:(n "eve") ~args:[]);
  Alcotest.(check int) "bucket" 1 (Vec.length (Store.scalar_bucket st (n "age")));
  Alcotest.(check int)
    "inverse" 1
    (Vec.length (Store.scalar_inverse st ~meth:(n "age") ~res:(Store.int st 30)));
  Alcotest.(check (list int)) "meths" [ n "age" ] (Store.scalar_meths st)

let test_scalar_args () =
  let st = Store.create () in
  let n = Store.name st in
  let y1994 = Store.int st 1994 in
  let y1995 = Store.int st 1995 in
  ignore
    (Store.add_scalar st ~meth:(n "salary") ~recv:(n "john") ~args:[ y1994 ]
       ~res:(Store.int st 100));
  ignore
    (Store.add_scalar st ~meth:(n "salary") ~recv:(n "john") ~args:[ y1995 ]
       ~res:(Store.int st 120));
  Alcotest.(check (option int))
    "args distinguish" (Some (Store.int st 100))
    (Store.scalar_lookup st ~meth:(n "salary") ~recv:(n "john") ~args:[ y1994 ]);
  Alcotest.(check int)
    "two entries one bucket" 2
    (Vec.length (Store.scalar_bucket st (n "salary")))

let test_set_methods () =
  let st = Store.create () in
  let n = Store.name st in
  let add r = Store.add_set st ~meth:(n "kids") ~recv:(n "peter") ~args:[] ~res:(n r) in
  Alcotest.(check bool) "added" true (add "tim" = SAdded);
  Alcotest.(check bool) "dup" true (add "tim" = SDuplicate);
  Alcotest.(check bool) "second" true (add "mary" = SAdded);
  Alcotest.(check int)
    "set lookup" 2
    (Obj_id.Set.cardinal
       (Store.set_lookup st ~meth:(n "kids") ~recv:(n "peter") ~args:[]));
  Alcotest.(check int)
    "empty set elsewhere" 0
    (Obj_id.Set.cardinal
       (Store.set_lookup st ~meth:(n "kids") ~recv:(n "tim") ~args:[]));
  Alcotest.(check int) "bucket len" 2 (Vec.length (Store.set_bucket st (n "kids")))

let test_stats_and_pp () =
  let st = Store.create () in
  let n = Store.name st in
  ignore (Store.add_isa st (n "a") (n "b"));
  ignore
    (Store.add_scalar st ~meth:(n "m") ~recv:(n "a") ~args:[] ~res:(n "b"));
  ignore (Store.add_set st ~meth:(n "s") ~recv:(n "a") ~args:[] ~res:(n "b"));
  let s = Store.stats st in
  Alcotest.(check int) "isa" 1 s.isa_edges;
  Alcotest.(check int) "scalar" 1 s.scalar_tuples;
  Alcotest.(check int) "set" 1 s.set_tuples;
  let text = Format.asprintf "%a" Store.pp st in
  Alcotest.(check bool) "pp has isa" true (contains ~sub:"a : b." text);
  Alcotest.(check bool) "pp has scalar" true (contains ~sub:"a[m -> b]." text);
  Alcotest.(check bool) "pp has set" true (contains ~sub:"a[s ->> {b}]." text)

(* ------------------------------------------------------------------ *)
(* Signatures *)

let test_signature_check () =
  let st = Store.create () in
  let n = Store.name st in
  ignore (Store.add_isa st (n "bob") (n "employee"));
  ignore
    (Store.add_scalar st ~meth:(n "age") ~recv:(n "bob") ~args:[]
       ~res:(Store.int st 30));
  let sigs = Pathlog.Signature.create () in
  Pathlog.Signature.add sigs
    {
      cls = n "employee";
      meth = n "age";
      arg_classes = [];
      result_class = n "integer";
      scalarity = Scalar;
    };
  Alcotest.(check int)
    "ok" 0
    (List.length (Pathlog.Signature.check st sigs ~mode:`Lenient));
  (* violate: a non-integer age *)
  ignore (Store.add_isa st (n "eve") (n "employee"));
  ignore
    (Store.add_scalar st ~meth:(n "age") ~recv:(n "eve") ~args:[]
       ~res:(n "notanumber"));
  Alcotest.(check int)
    "violation found" 1
    (List.length (Pathlog.Signature.check st sigs ~mode:`Lenient))

let test_signature_inheritance () =
  let st = Store.create () in
  let n = Store.name st in
  ignore (Store.add_isa st (n "manager") (n "employee"));
  ignore (Store.add_isa st (n "ann") (n "manager"));
  ignore
    (Store.add_scalar st ~meth:(n "age") ~recv:(n "ann") ~args:[]
       ~res:(n "old"));
  let sigs = Pathlog.Signature.create () in
  Pathlog.Signature.add sigs
    {
      cls = n "employee";
      meth = n "age";
      arg_classes = [];
      result_class = n "integer";
      scalarity = Scalar;
    };
  (* ann is a manager, manager :: employee, so the signature applies *)
  Alcotest.(check int)
    "inherited signature catches" 1
    (List.length (Pathlog.Signature.check st sigs ~mode:`Lenient))

let test_signature_strict_mode () =
  let st = Store.create () in
  let n = Store.name st in
  ignore
    (Store.add_scalar st ~meth:(n "whatever") ~recv:(n "x") ~args:[]
       ~res:(n "y"));
  let sigs = Pathlog.Signature.create () in
  Alcotest.(check int)
    "lenient ignores uncovered" 0
    (List.length (Pathlog.Signature.check st sigs ~mode:`Lenient));
  Alcotest.(check int)
    "strict flags uncovered" 1
    (List.length (Pathlog.Signature.check st sigs ~mode:`Strict))

(* ------------------------------------------------------------------ *)

let isa_closure_transitivity =
  QCheck.Test.make ~name:"isa closure is transitive" ~count:50
    arbitrary_loadable_base (fun p ->
      let st = Pathlog.Program.store p in
      let u = Pathlog.Store.universe st in
      let card = Universe.cardinality u in
      let ok = ref true in
      for o = 0 to card - 1 do
        Obj_id.Set.iter
          (fun c ->
            Obj_id.Set.iter
              (fun c' -> if not (Store.is_member st o c') then ok := false)
              (Store.classes_of st c))
          (Store.classes_of st o)
      done;
      !ok)

let members_vs_classes_duality =
  QCheck.Test.make ~name:"o in members(c) iff c in classes_of(o)" ~count:50
    arbitrary_loadable_base (fun p ->
      let st = Pathlog.Program.store p in
      let card = Universe.cardinality (Pathlog.Store.universe st) in
      let ok = ref true in
      for o = 0 to card - 1 do
        for c = 0 to card - 1 do
          let down = Obj_id.Set.mem o (Store.members st c) in
          let up = Obj_id.Set.mem c (Store.classes_of st o) in
          if down <> up then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "vec basics" `Quick test_vec_basic;
    Alcotest.test_case "vec bounds" `Quick test_vec_get_bounds;
    qtest vec_roundtrip;
    qtest vec_stable_indices;
    Alcotest.test_case "interning" `Quick test_interning;
    Alcotest.test_case "skolems" `Quick test_skolems;
    Alcotest.test_case "string printing" `Quick test_string_printing;
    Alcotest.test_case "isa closure" `Quick test_isa_closure;
    Alcotest.test_case "isa cycles" `Quick test_isa_cycle_rejected;
    Alcotest.test_case "isa diamond" `Quick test_isa_diamond;
    Alcotest.test_case "cache invalidation" `Quick test_cache_invalidation;
    Alcotest.test_case "builtin value classes" `Quick test_builtin_value_classes;
    Alcotest.test_case "scalar methods" `Quick test_scalar_methods;
    Alcotest.test_case "scalar args" `Quick test_scalar_args;
    Alcotest.test_case "set methods" `Quick test_set_methods;
    Alcotest.test_case "stats and pp" `Quick test_stats_and_pp;
    Alcotest.test_case "signature check" `Quick test_signature_check;
    Alcotest.test_case "signature inheritance" `Quick test_signature_inheritance;
    Alcotest.test_case "signature strict" `Quick test_signature_strict_mode;
    qtest isa_closure_transitivity;
    qtest members_vs_classes_duality;
  ]
