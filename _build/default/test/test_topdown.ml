(* Goal-directed tabled evaluation. *)

open Helpers
module Program = Pathlog.Program

let tc_text =
  {|
  peter[kids ->> {tim, mary}]. tim[kids ->> {sally}].
  mary[kids ->> {tom, paul}].
  X[desc ->> {Y}] <- X[kids ->> {Y}].
  X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
  |}

let topdown p q =
  Program.query_topdown p (Pathlog.Parser.literals q)

let rows p (answer : Program.answer) =
  List.sort compare (List.map (Program.row_to_string p) answer.rows)

let test_point_query () =
  let p = Program.of_string tc_text in
  match topdown p "tim[desc ->> {X}]" with
  | Some (answer, stats) ->
    Alcotest.(check (list string)) "tim's descendants" [ "sally" ]
      (rows p answer);
    (* only tim's cone is tabled, not the full closure *)
    Alcotest.(check bool) "few goals" true (stats.goals <= 3)
  | None -> Alcotest.fail "fragment should apply"

let test_full_query () =
  let p = Program.of_string tc_text in
  match topdown p "peter[desc ->> {X}]" with
  | Some (answer, _) ->
    Alcotest.(check (list string)) "peter's descendants"
      [ "mary"; "paul"; "sally"; "tim"; "tom" ]
      (rows p answer)
  | None -> Alcotest.fail "fragment should apply"

let test_open_query () =
  let p = Program.of_string tc_text in
  match topdown p "X[desc ->> {Y}]" with
  | Some (answer, _) ->
    Alcotest.(check int) "whole closure" 8 (List.length answer.rows)
  | None -> Alcotest.fail "fragment should apply"

let test_scalar_chain_rules () =
  let p =
    Program.of_string
      {|
      e1 : emp[base -> 100]. e2 : emp[base -> 200].
      X[scaled -> B] <- X : emp[base -> B].
      X[pay -> B] <- X[scaled -> B].
      |}
  in
  match topdown p "e1[pay -> B]" with
  | Some (answer, _) ->
    Alcotest.(check (list string)) "pay" [ "100" ] (rows p answer)
  | None -> Alcotest.fail "fragment should apply"

let test_no_materialisation () =
  let p = Program.of_string tc_text in
  ignore (topdown p "tim[desc ->> {X}]");
  (* the store holds only the facts: desc tuples stay in the tables *)
  let stats = Pathlog.Store.stats (Program.store p) in
  Alcotest.(check int) "only extensional tuples" 5 stats.set_tuples

let test_fallback_on_virtual_objects () =
  let p =
    Program.of_string
      {|
      a : person[city -> c1].
      X.address[city -> X.city] <- X : person.
      |}
  in
  Alcotest.(check bool) "head path not flat" true
    (topdown p "X.address[city -> C]" = None)

let test_fallback_on_negation () =
  let p =
    Program.of_string
      {|
      a : emp[sal -> 10].
      X : poor <- X : emp, not X[sal -> 20].
      |}
  in
  Alcotest.(check bool) "negation not supported" true
    (topdown p "X : poor" = None)

let test_fallback_on_unconstrained_query () =
  let p = Program.of_string tc_text in
  Alcotest.(check bool) "bare variable query" true (topdown p "X" = None)

let test_args_methods () =
  let p =
    Program.of_string
      {|
      john[salary@(1994) -> 100]. john[salary@(1995) -> 120].
      X[raise@(Y1, Y2) -> S] <- X[salary@(Y1) -> B], X[salary@(Y2) -> S].
      |}
  in
  match topdown p "john[raise@(1994, 1995) -> S]" with
  | Some (answer, _) ->
    Alcotest.(check (list string)) "raise" [ "120" ] (rows p answer)
  | None -> Alcotest.fail "argument methods should be flat"

let topdown_equals_bottomup =
  QCheck.Test.make ~name:"topdown point query = bottom-up model" ~count:20
    QCheck.(pair (int_range 1 100) (int_range 0 14))
    (fun (seed, person) ->
      let stmts =
        Pathlog.Genealogy.statements
          (Pathlog.Genealogy.Random_forest { people = 15; max_kids = 3; seed })
        @ Pathlog.Genealogy.desc_rules
      in
      let q = Printf.sprintf "p%d[desc ->> {X}]" person in
      let p1 = Program.create stmts in
      let top =
        match Program.query_topdown p1 (Pathlog.Parser.literals q) with
        | Some (a, _) -> rows p1 a
        | None -> [ "N/A" ]
      in
      let p2 = Program.create stmts in
      ignore (Program.run p2);
      let bottom = rows p2 (Program.query_string p2 q) in
      top = bottom)

let test_topdown_tables_fewer_than_model () =
  (* point query on a long chain: goal-directed work is proportional to
     the suffix, not the full quadratic closure *)
  let stmts =
    Pathlog.Genealogy.statements (Pathlog.Genealogy.Chain 100)
    @ Pathlog.Genealogy.desc_rules
  in
  let p = Program.create stmts in
  match Program.query_topdown p (Pathlog.Parser.literals "p95[desc ->> {X}]") with
  | Some (answer, stats) ->
    Alcotest.(check int) "five descendants" 5 (List.length answer.rows);
    (* full closure has 5050 tuples; the tables stay near the suffix *)
    Alcotest.(check bool) "answers bounded by suffix work" true
      (stats.answers < 300)
  | None -> Alcotest.fail "fragment should apply"

let suite =
  [
    Alcotest.test_case "point query" `Quick test_point_query;
    Alcotest.test_case "full query" `Quick test_full_query;
    Alcotest.test_case "open query" `Quick test_open_query;
    Alcotest.test_case "scalar chain rules" `Quick test_scalar_chain_rules;
    Alcotest.test_case "no materialisation" `Quick test_no_materialisation;
    Alcotest.test_case "fallback on virtual objects" `Quick
      test_fallback_on_virtual_objects;
    Alcotest.test_case "fallback on negation" `Quick test_fallback_on_negation;
    Alcotest.test_case "fallback on unconstrained query" `Quick
      test_fallback_on_unconstrained_query;
    Alcotest.test_case "argument methods" `Quick test_args_methods;
    qtest topdown_equals_bottomup;
    Alcotest.test_case "tables smaller than model" `Quick
      test_topdown_tables_fewer_than_model;
  ]
