(* Demand-focused query evaluation and store invariant audits. *)

open Helpers
module Program = Pathlog.Program

(* A program with two independent rule families: genealogy closure and a
   payroll derivation. A focused query over one family must not run the
   other. *)
let two_families =
  {|
  peter[kids ->> {tim, mary}]. tim[kids ->> {sally}].
  X[desc ->> {Y}] <- X[kids ->> {Y}].
  X[desc ->> {Y}] <- X..desc[kids ->> {Y}].

  e1 : emp[base -> 100; bonus -> 20].
  e2 : emp[base -> 200; bonus -> 0].
  X[pay -> B] <- X : emp[base -> B].
  |}

let test_focused_subset_of_rules () =
  let p = Program.of_string two_families in
  let answer, _, considered =
    Program.query_focused p (Pathlog.Parser.literals "peter[desc ->> {X}]")
  in
  Alcotest.(check int) "desc answers" 3 (List.length answer.rows);
  (* the two kid-fact statements + the two desc rules; the pay rule and
     emp facts are irrelevant *)
  Alcotest.(check int) "only relevant rules considered" 4 considered;
  (* pay has not been derived *)
  Alcotest.(check int) "pay not materialised" 0
    (List.length (Program.query_string p "X[pay -> B]").rows)

let test_focused_agrees_with_full () =
  (* object ids are store-specific: compare rendered rows *)
  let check_query q =
    let p1 = Program.of_string two_families in
    let focused, _, _ = Program.query_focused p1 (Pathlog.Parser.literals q) in
    let render p rows =
      List.sort compare (List.map (Program.row_to_string p) rows)
    in
    let p2 = Program.of_string two_families in
    ignore (Program.run p2);
    let full = Program.query_string p2 q in
    Alcotest.(check (list string)) ("agree: " ^ q)
      (render p2 full.rows)
      (render p1 focused.rows)
  in
  List.iter check_query
    [
      "peter[desc ->> {X}]";
      "X[pay -> B]";
      "X : emp";
      "tim[desc ->> {X}]";
    ]

let test_focused_pulls_dependencies () =
  (* pay depends on scale which depends on base: a pay query must run the
     whole chain *)
  let p =
    Program.of_string
      {|
      e1 : emp[base -> 100].
      X[scaled -> B] <- X : emp[base -> B].
      X[pay -> B] <- X[scaled -> B].
      |}
  in
  let answer, _, considered =
    Program.query_focused p (Pathlog.Parser.literals "e1[pay -> B]")
  in
  Alcotest.(check int) "answer" 1 (List.length answer.rows);
  Alcotest.(check int) "chain of rules pulled in" 3 considered

let test_focused_stratified () =
  let p =
    Program.of_string
      {|
      a : emp[sal -> 10]. b : emp[sal -> 20].
      X : poor <- X : emp, not X[sal -> 20].
      |}
  in
  let answer, _, _ =
    Program.query_focused p (Pathlog.Parser.literals "X : poor")
  in
  Alcotest.(check int) "stratified focused" 1 (List.length answer.rows)

let focused_equals_full_random =
  QCheck.Test.make ~name:"focused query = full materialisation" ~count:15
    QCheck.(int_range 1 100)
    (fun seed ->
      let stmts =
        Pathlog.Genealogy.statements
          (Pathlog.Genealogy.Random_forest { people = 12; max_kids = 2; seed })
        @ Pathlog.Genealogy.desc_rules
      in
      let q = "p0[desc ->> {X}]" in
      let p1 = Program.create stmts in
      let focused, _, _ =
        Program.query_focused p1 (Pathlog.Parser.literals q)
      in
      let p2 = Program.create stmts in
      ignore (Program.run p2);
      let full = Program.query_string p2 q in
      let render p rows =
        List.sort compare (List.map (Program.row_to_string p) rows)
      in
      render p1 focused.rows = render p2 full.rows)

(* ------------------------------------------------------------------ *)
(* Store invariants *)

let test_invariants_clean_store () =
  let p =
    load
      {|
      automobile :: vehicle.
      a1 : automobile[color -> red].
      a1[tags ->> {fast, loud}].
      |}
  in
  Alcotest.(check (list string)) "no violations" []
    (Pathlog.Store.check_invariants (Program.store p))

let invariants_after_random_runs =
  QCheck.Test.make ~name:"store invariants hold after random evaluations"
    ~count:25
    QCheck.(int_range 1 500)
    (fun seed ->
      let stmts =
        Pathlog.Genealogy.statements
          (Pathlog.Genealogy.Random_forest { people = 15; max_kids = 3; seed })
        @ Pathlog.Genealogy.desc_rules
        @ Pathlog.Company.statements { (Pathlog.Company.scaled 10) with seed }
      in
      let p = Program.create stmts in
      ignore (Program.run p);
      Pathlog.Store.check_invariants (Program.store p) = [])

let invariants_after_loadable_bases =
  QCheck.Test.make ~name:"store invariants hold on random fact bases"
    ~count:40 arbitrary_loadable_base (fun p ->
      Pathlog.Store.check_invariants (Program.store p) = [])

let suite =
  [
    Alcotest.test_case "focused runs a subset of rules" `Quick
      test_focused_subset_of_rules;
    Alcotest.test_case "focused agrees with full" `Quick
      test_focused_agrees_with_full;
    Alcotest.test_case "focused pulls dependencies" `Quick
      test_focused_pulls_dependencies;
    Alcotest.test_case "focused stratified" `Quick test_focused_stratified;
    qtest focused_equals_full_random;
    Alcotest.test_case "invariants clean store" `Quick
      test_invariants_clean_store;
    qtest invariants_after_random_runs;
    qtest invariants_after_loadable_bases;
  ]
