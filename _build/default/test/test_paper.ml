(* The paper's worked examples, one test per numbered query/program —
   the executable counterpart of the paper's "evaluation". Each test pins
   the exact answer set on a hand-built instance. *)

open Helpers

(* The instance used by sections 1-2 examples. *)
let company =
  {|
  automobile :: vehicle.
  manager :: employee.

  e1 : employee[age -> 30; city -> newYork; boss -> m1].
  e2 : employee[age -> 30; city -> boston;  boss -> m1].
  e3 : employee[age -> 45; city -> newYork; boss -> m2].
  m1 : manager[age -> 50; city -> newYork].
  m2 : manager[age -> 52; city -> detroit].

  e1[vehicles ->> {a1, v1}].
  e2[vehicles ->> {a2}].
  e3[vehicles ->> {a3}].
  m1[vehicles ->> {a4}].

  a1 : automobile[cylinders -> 4; color -> red;   producedBy -> acme].
  a2 : automobile[cylinders -> 6; color -> green; producedBy -> acme].
  a3 : automobile[cylinders -> 4; color -> blue;  producedBy -> bmc].
  a4 : automobile[cylinders -> 4; color -> red;   producedBy -> acme].
  v1 : vehicle[color -> blue].

  acme : company[city -> detroit; president -> m1].
  bmc  : company[city -> boston;  president -> m2].
  |}

let test_query_11 () =
  (* colors of the automobiles of employees (1.1/1.2/1.3) *)
  let p = load company in
  check_answers "colors" p "X : employee..vehicles : automobile.color[Z]"
    [
      "e1, red"; "e2, green"; "e3, blue"; "m1, red";
    ]

let test_query_14_21 () =
  (* restrict to 4 cylinders: XSQL needs two paths (1.4); PathLog one (2.1) *)
  let p = load company in
  check_answers "2.1 with age/city filters" p
    "X : employee[age -> 30; city -> newYork]..vehicles : \
     automobile[cylinders -> 4].color[Z]"
    [ "e1, red" ]

let test_query_23_boss_city () =
  (* nested path in a filter (2.3): same city as the boss *)
  let p = load company in
  check_answers "employees in the boss's city" p
    "X : employee[city -> X.boss.city]" [ "e1" ]

let test_manager_query () =
  (* the single-reference manager query of section 2 *)
  let p = load company in
  check_answers "manager with red acme car, president of producer" p
    "X : manager..vehicles[color -> red].producedBy[city -> detroit; \
     president -> X]"
    [ "m1" ]

let test_mary_spouse_nesting () =
  (* section 4.1 nesting: mary.spouse[boss -> mary].age *)
  let p =
    load
      {|
      mary[spouse -> john; age -> 25].
      john[boss -> mary; age -> 30].
      |}
  in
  check_answers "nested molecule in path" p "mary.spouse[boss -> mary].age[A]"
    [ "30" ];
  (* and with the inner molecule constraint (4.1 variant) *)
  check_answers "inner molecule constrains" p
    "mary.spouse[boss -> mary[age -> 25]].age[A]" [ "30" ];
  check_fails "failing inner constraint" p
    "mary.spouse[boss -> mary[age -> 26]].age[A]"

let test_section_42_sets () =
  (* (4.1)-(4.4) *)
  let p =
    load
      {|
      p1[assistants ->> {s1, s2, s3}].
      s1[salary -> 1000]. s2[salary -> 1000]. s3[salary -> 800].
      s1[projects ->> {prj1}]. s2[projects ->> {prj2}].
      p2[friends ->> {s1, s2, s3, other}].
      v1[price -> 10]. v2[price -> 20].
      p1[vehicles ->> {v1, v2}].
      p1[paidFor@(v1) -> 9]. p1[paidFor@(v2) -> 21].
      |}
  in
  check_answers "(4.1) assistants" p "p1..assistants[X]" [ "s1"; "s2"; "s3" ];
  check_answers "(4.2) restricted" p "p1..assistants[salary -> 1000][X]"
    [ "s1"; "s2" ];
  check_holds "(4.3)-style explicit set" p "p2[friends ->> {s1, s2}]";
  check_holds "(4.4) set-valued rhs" p "p2[friends ->> p1..assistants]";
  check_answers "salaries of assistants" p "p1..assistants.salary[X]"
    [ "1000"; "800" ];
  check_answers "projects of assistants" p "p1..assistants..projects[X]"
    [ "prj1"; "prj2" ];
  check_answers "paidFor over a set argument" p
    "p1.paidFor@(p1..vehicles)[X]" [ "9"; "21" ]

let test_wellformedness_45 () =
  (* (4.5): a set-valued reference as the result of a scalar method *)
  match Pathlog.Program.of_string "?- p2[boss -> p1..assistants]." with
  | exception Pathlog.Program.Invalid _ -> ()
  | _ -> Alcotest.fail "(4.5) must be rejected as ill-formed"

let test_binding_assistants () =
  (* section 5: "X ranges only over the universe of objects" *)
  let p =
    load
      {|
      p1[assistants ->> {s1, s2}].
      s1[salary -> 1000]. s2[salary -> 900].
      |}
  in
  check_answers "bind each assistant" p "p1[assistants ->> {X[salary -> 1000]}]"
    [ "s1" ]

let test_no_nested_sets () =
  (* john..kids..kids is the set of grandchildren, not a set of sets *)
  let p =
    load
      {|
      john[kids ->> {a, b}].
      a[kids ->> {c}]. b[kids ->> {d, e}].
      |}
  in
  check_answers "grandchildren" p "john..kids..kids[X]" [ "c"; "d"; "e" ]

let test_rule_24_addresses () =
  let p =
    load
      {|
      pA : person[street -> mainSt; city -> springfield].
      pB : person[street -> elmSt; city -> ogdenville].
      X.address[street -> X.street; city -> X.city] <- X : person.
      |}
  in
  check_answers "(2.4) virtual addresses" p "pA.address[street -> S; city -> C]"
    [ "mainSt, springfield" ];
  check_answers "addresses are objects" p "X.address[city -> ogdenville]"
    [ "pB" ]

let test_rule_power () =
  let p =
    load
      {|
      car1 : automobile[engine -> eng1]. eng1[power -> 150].
      car2 : automobile[engine -> eng2]. eng2[power -> 90].
      X[power -> Y] <- X : automobile.engine[power -> Y].
      |}
  in
  check_answers "intensional power" p "X : automobile[power -> P]"
    [ "car1, 150"; "car2, 90" ]

let test_rule_61_vs_62 () =
  let base =
    {|
    p1 : employee[worksFor -> cs1].
    p2 : employee[worksFor -> cs2; boss -> b2].
    |}
  in
  let p61 =
    load (base ^ "X.boss[worksFor -> D] <- X : employee[worksFor -> D].")
  in
  let p62 =
    load (base ^ "Z[worksFor -> D] <- X : employee[worksFor -> D].boss[Z].")
  in
  (* 6.1 invents p1's boss; 6.2 does not *)
  check_answers "(6.1)" p61 "Z[worksFor -> cs1]" [ "p1"; "p1.boss" ];
  check_answers "(6.2)" p62 "Z[worksFor -> cs1]" [ "p1" ];
  check_answers "(6.2) existing boss" p62 "Z[worksFor -> cs2]" [ "p2"; "b2" ]

let test_program_64_literal () =
  (* the exact facts and result from section 6 *)
  let p =
    load
      {|
      peter[kids ->> {tim, mary}].
      tim[kids ->> {sally}].
      mary[kids ->> {tom, paul}].
      X[desc ->> {Y}] <- X[kids ->> {Y}].
      X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
      |}
  in
  check_answers "peter[(desc) ->> {tim,mary,sally,tom,paul}]" p
    "peter[desc ->> {X}]"
    [ "tim"; "mary"; "sally"; "tom"; "paul" ]

let test_generic_tc_literal () =
  let p =
    load
      {|
      peter[kids ->> {tim, mary}].
      tim[kids ->> {sally}].
      mary[kids ->> {tom, paul}].
      X[(M.tc) ->> {Y}] <- X[M ->> {Y}].
      X[(M.tc) ->> {Y}] <- X..(M.tc)[M ->> {Y}].
      |}
  in
  check_answers "peter[(kids.tc) ->> ...] as printed in the paper" p
    "peter[(kids.tc) ->> {X}]"
    [ "tim"; "mary"; "sally"; "tom"; "paul" ];
  (* tc is generic: apply it to another method in the same program *)
  let p2 =
    load
      {|
      a[next ->> {b}]. b[next ->> {c}].
      X[(M.tc) ->> {Y}] <- X[M ->> {Y}].
      X[(M.tc) ->> {Y}] <- X..(M.tc)[M ->> {Y}].
      |}
  in
  check_answers "generic over next" p2 "a[(next.tc) ->> {X}]" [ "b"; "c" ]

let test_stratification_section6 () =
  (* "should only then be applied, if the set of p1's assistants is
     already defined" *)
  let p =
    load
      {|
      p1[helper ->> {x1, x2}].
      p1[assistants ->> {Y}] <- p1[helper ->> {Y}].
      p2[friends ->> {x1, x2, x3}].
      p2 : goodFriend <- p2[friends ->> p1..assistants].
      |}
  in
  check_holds "stratified inclusion over derived set" p "p2 : goodFriend";
  (* the engine really used two strata *)
  Alcotest.(check bool) "at least 2 strata" true
    (Array.length (Pathlog.Program.strata p) >= 2)

let test_view_63_emulation () =
  (* the XSQL view (6.3) — CREATE VIEW EmployeeBoss ... OID FUNCTION OF X —
     is exactly rule (6.1) in PathLog: no function symbol needed, the
     method boss references the virtual object *)
  let p =
    load
      {|
      p1 : employee[worksFor -> cs1].
      X.boss[worksFor -> D] <- X : employee[worksFor -> D].
      |}
  in
  (* the virtual object is addressed by p1.boss, not EmployeeBoss(p1) *)
  check_answers "view object via method" p "p1.boss[worksFor -> D]" [ "cs1" ];
  let u = Pathlog.Program.universe p in
  match Pathlog.Universe.skolems u with
  | [ sk ] ->
    Alcotest.(check string) "prints as the method path" "p1.boss"
      (Pathlog.Universe.to_string u sk)
  | _ -> Alcotest.fail "expected exactly one virtual object"

let test_typing_signatures () =
  (* section 2: "the usage of methods can be controlled by signatures" *)
  let p =
    load
      {|
      person[address => address].
      pA : person[street -> mainSt; city -> springfield].
      X.address : address <- X : person.
      X.address[street -> X.street; city -> X.city] <- X : person.
      |}
  in
  Alcotest.(check int) "virtual object well-typed" 0
    (List.length (Pathlog.Program.check_types p ~mode:`Lenient))

let suite =
  [
    Alcotest.test_case "query (1.1)-(1.3)" `Quick test_query_11;
    Alcotest.test_case "query (1.4)/(2.1)" `Quick test_query_14_21;
    Alcotest.test_case "nested filter path (2.3)" `Quick
      test_query_23_boss_city;
    Alcotest.test_case "manager query (section 2)" `Quick test_manager_query;
    Alcotest.test_case "nesting (section 4.1)" `Quick test_mary_spouse_nesting;
    Alcotest.test_case "sets (section 4.2)" `Quick test_section_42_sets;
    Alcotest.test_case "ill-formed (4.5)" `Quick test_wellformedness_45;
    Alcotest.test_case "binding assistants (section 5)" `Quick
      test_binding_assistants;
    Alcotest.test_case "no nested sets (section 5)" `Quick test_no_nested_sets;
    Alcotest.test_case "virtual addresses (2.4)" `Quick test_rule_24_addresses;
    Alcotest.test_case "power rule (section 6)" `Quick test_rule_power;
    Alcotest.test_case "rules (6.1) vs (6.2)" `Quick test_rule_61_vs_62;
    Alcotest.test_case "program (6.4) literal" `Quick test_program_64_literal;
    Alcotest.test_case "generic tc literal" `Quick test_generic_tc_literal;
    Alcotest.test_case "stratification (section 6)" `Quick
      test_stratification_section6;
    Alcotest.test_case "view (6.3) emulation" `Quick test_view_63_emulation;
    Alcotest.test_case "typing signatures" `Quick test_typing_signatures;
  ]
