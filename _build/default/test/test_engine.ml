(* Engine tests: head execution and virtual objects, stratification,
   fixpoint modes, divergence guards, negation, and model checking. *)

open Helpers
module Fixpoint = Pathlog.Fixpoint
module Program = Pathlog.Program
module Err = Pathlog.Err

let load_with mode text =
  let config = { Fixpoint.default_config with mode } in
  let p = Program.of_string ~config text in
  ignore (Program.run p);
  p

(* ------------------------------------------------------------------ *)
(* Facts and head execution *)

let test_fact_loading () =
  let p = load "a : c. x[m -> y]. x[s ->> {y, z}]. sub :: c." in
  check_holds "isa" p "a : c";
  check_holds "subclass merged relation" p "sub : c";
  check_holds "scalar" p "x[m -> y]";
  check_holds "set" p "x[s ->> {y, z}]";
  check_fails "no invention" p "x[m -> z]"

let test_nested_fact_molecule () =
  (* nested molecules in facts assert recursively *)
  let p = load "x[m -> y[age -> 25]]." in
  check_holds "outer" p "x[m -> y]";
  check_holds "inner asserted too" p "y[age -> 25]"

let test_fact_with_path_head_skolemizes () =
  let p = load "p1.boss[worksFor -> cs1]." in
  check_holds "skolem created and filtered" p "p1.boss[worksFor -> cs1]";
  let u = Program.universe p in
  Alcotest.(check int) "one skolem" 1 (List.length (Pathlog.Universe.skolems u))

let test_functional_conflict () =
  match load "x[m -> a]. x[m -> b]." with
  | exception Err.Functional_conflict c ->
    let u =
      Pathlog.Store.universe (Pathlog.Store.create ())
    in
    ignore u;
    Alcotest.(check bool) "has rule context" true (c.rule <> None)
  | _ -> Alcotest.fail "expected functional conflict"

let test_isa_cycle_error () =
  match load "a : b. b : c. c : a." with
  | exception Err.Isa_cycle _ -> ()
  | _ -> Alcotest.fail "expected isa cycle error"

let test_self_protected () =
  (match load "x[self -> y]." with
  | exception Err.Reserved_self -> ()
  | _ -> Alcotest.fail "expected reserved self (scalar)");
  (match load "x[self ->> {y}]." with
  | exception Err.Reserved_self -> ()
  | _ -> Alcotest.fail "expected reserved self (set)");
  (* self with the object itself is a harmless no-op *)
  check_holds "x[self -> x] ok" (load "x[self -> x]. x[m -> y].") "x[m -> y]"

(* ------------------------------------------------------------------ *)
(* Rules, recursion, virtual objects *)

let test_intensional_method () =
  let p =
    load
      {|
      car : automobile[engine -> e]. e[power -> 90].
      X[power -> Y] <- X : automobile.engine[power -> Y].
      |}
  in
  check_answers "derived power" p "car[power -> P]" [ "90" ]

let test_virtual_boss_61 () =
  let p =
    load
      {|
      p1 : employee[worksFor -> cs1].
      X.boss[worksFor -> D] <- X : employee[worksFor -> D].
      |}
  in
  check_answers "both real and virtual" p "Z[worksFor -> cs1]"
    [ "p1"; "p1.boss" ];
  (* the virtual boss is not an employee, so no boss-of-boss chain *)
  let u = Program.universe p in
  Alcotest.(check int) "exactly one skolem" 1
    (List.length (Pathlog.Universe.skolems u))

let test_existing_boss_62 () =
  let p =
    load
      {|
      p1 : employee[worksFor -> cs1].
      p2 : employee[worksFor -> cs2; boss -> b2].
      Z[worksFor -> D] <- X : employee[worksFor -> D].boss[Z].
      |}
  in
  check_answers "only existing bosses" p "Z[worksFor -> cs2]" [ "b2"; "p2" ];
  check_fails "p1.boss not invented" p "p1.boss[worksFor -> D]";
  Alcotest.(check int) "no skolems" 0
    (List.length (Pathlog.Universe.skolems (Program.universe p)))

let test_virtual_addresses_24 () =
  let p =
    load
      {|
      a : person[street -> s1; city -> c1].
      b : person[street -> s2; city -> c1].
      X.address[street -> X.street; city -> X.city] <- X : person.
      |}
  in
  check_answers "addresses per person" p "X.address[city -> c1]" [ "a"; "b" ];
  check_answers "attributes restructured" p "a.address[street -> S]" [ "s1" ];
  Alcotest.(check int) "two skolems" 2
    (List.length (Pathlog.Universe.skolems (Program.universe p)))

let test_skolem_determinism () =
  (* re-deriving the same head creates no second object *)
  let p =
    load
      {|
      a : person[city -> c1]. a : resident.
      X.address[city -> X.city] <- X : person.
      X.address[city -> X.city] <- X : resident.
      |}
  in
  Alcotest.(check int) "one skolem for both rules" 1
    (List.length (Pathlog.Universe.skolems (Program.universe p)))

let test_desc_recursion () =
  let p =
    load
      {|
      peter[kids ->> {tim, mary}]. tim[kids ->> {sally}].
      mary[kids ->> {tom, paul}].
      X[desc ->> {Y}] <- X[kids ->> {Y}].
      X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
      |}
  in
  check_answers "paper closure" p "peter[desc ->> {X}]"
    [ "tim"; "mary"; "sally"; "tom"; "paul" ];
  check_answers "inner node" p "mary[desc ->> {X}]" [ "tom"; "paul" ]

let test_generic_tc () =
  let p =
    Program.create
      (Pathlog.Genealogy.paper_example @ Pathlog.Genealogy.generic_tc_rules)
  in
  ignore (Program.run p);
  check_answers "kids.tc equals paper output" p "peter[(kids.tc) ->> {X}]"
    [ "tim"; "mary"; "sally"; "tom"; "paul" ]

let test_head_set_ref_44 () =
  (* formula 4.4 as a rule head: assistants become friends *)
  let p =
    load
      {|
      p1[assistants ->> {x1, x2}].
      p2[friends ->> p1..assistants] <- p1.
      |}
  in
  check_answers "members copied" p "p2[friends ->> {X}]" [ "x1"; "x2" ]

(* ------------------------------------------------------------------ *)
(* Stratification *)

let test_subset_body_stratified () =
  let p =
    load
      {|
      p1[assistants ->> {x1}].
      p2[friends ->> {x1, x3}].
      ok[is -> yes] <- p2[friends ->> p1..assistants].
      |}
  in
  check_holds "inclusion holds" p "ok[is -> yes]";
  Alcotest.(check int) "two strata"
    2
    (Array.length (Program.strata p))

let test_subset_waits_for_completion () =
  (* assistants is itself intensional; the inclusion must see the full
     set, so helper must be complete before the check rule runs *)
  let p =
    load
      {|
      p1[direct ->> {x1, x2}].
      p1[assistants ->> {Y}] <- p1[direct ->> {Y}].
      p2[friends ->> {x1, x2}].
      ok[is -> yes] <- p2[friends ->> p1..assistants].
      |}
  in
  check_holds "inclusion over intensional set" p "ok[is -> yes]"

let test_subset_fails_when_missing () =
  let p =
    load
      {|
      p1[assistants ->> {x1, x9}].
      p2[friends ->> {x1}].
      ok[is -> yes] <- p2[friends ->> p1..assistants].
      |}
  in
  check_fails "x9 not a friend" p "ok[is -> yes]"

let test_unstratifiable_rejected () =
  match
    load
      {|
      p1[assistants ->> {x1}].
      p1[assistants ->> {Y}] <- p1[friends ->> p1..assistants], p1[assistants ->> {Y}].
      p1[friends ->> {x1}].
      |}
  with
  | exception Err.Unstratifiable _ -> ()
  | _ -> Alcotest.fail "expected unstratifiable"

let test_negation_stratified () =
  let p =
    load
      {|
      a : emp[sal -> 10]. b : emp[sal -> 20].
      X : poor <- X : emp, not X[sal -> 20].
      |}
  in
  check_answers "negation" p "X : poor" [ "a" ]

let test_negation_through_recursion_rejected () =
  match
    load
      {|
      a[next -> b].
      X : odd <- a[next -> X], not X : odd.
      |}
  with
  | exception Err.Unstratifiable _ -> ()
  | _ -> Alcotest.fail "expected unstratifiable negation"

let test_negation_of_derived () =
  let p =
    load
      {|
      a[kids ->> {b}]. b[kids ->> {c}].
      X[desc ->> {Y}] <- X[kids ->> {Y}].
      X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
      X : hasKids <- X[kids ->> {Y}].
      X : leaf <- Y[desc ->> {X}], not X : hasKids.
      |}
  in
  (* b and c are descendants; only c has no kids *)
  check_answers "negation over completed desc" p "X : leaf" [ "c" ]

(* ------------------------------------------------------------------ *)
(* Divergence and budgets *)

let test_divergence_guard () =
  (* each ping creates a fresh virtual object which is a ping again *)
  let config = { Fixpoint.default_config with max_objects = 50 } in
  let text = "o1 : ping. X.next : ping <- X : ping." in
  match
    let p = Program.of_string ~config text in
    Program.run p
  with
  | exception Err.Diverged _ -> ()
  | _ -> Alcotest.fail "expected divergence"

let test_round_budget () =
  let config = { Fixpoint.default_config with max_rounds = 3 } in
  let text =
    "o1 : ping. X.next : ping <- X : ping."
  in
  match
    let p = Program.of_string ~config text in
    Program.run p
  with
  | exception Err.Diverged msg ->
    Alcotest.(check bool) "mentions rounds" true (contains ~sub:"rounds" msg)
  | _ -> Alcotest.fail "expected divergence by rounds"

(* ------------------------------------------------------------------ *)
(* Naive vs semi-naive equivalence *)

(* Models are compared as fact sets: insertion order differs between
   evaluation modes. *)
let model_facts p =
  Format.asprintf "%a" Pathlog.Store.pp (Program.store p)
  |> String.split_on_char '\n'
  |> List.sort_uniq compare

let same_model text =
  let dump mode = model_facts (load_with mode text) in
  dump Fixpoint.Naive = dump Fixpoint.Seminaive

let test_modes_agree_catalogue () =
  List.iter
    (fun text ->
      Alcotest.(check bool) ("modes agree: " ^ text) true (same_model text))
    [
      "a[kids ->> {b}]. b[kids ->> {c}]. c[kids ->> {d}].\n\
       X[desc ->> {Y}] <- X[kids ->> {Y}].\n\
       X[desc ->> {Y}] <- X..desc[kids ->> {Y}].";
      "a : person[street -> s; city -> c].\n\
       X.address[street -> X.street; city -> X.city] <- X : person.";
      "e1 : emp[boss -> e2]. e2 : emp[boss -> e3]. e3 : emp.\n\
       X[above ->> {Y}] <- Y : emp[boss -> X].\n\
       X[above ->> {Y}] <- Z[above ->> {Y}], X[above ->> {Z}].";
      "m :: e. x : m. y : e.\nX : staff <- X : e.";
    ]

let modes_agree_on_random_tc =
  QCheck.Test.make ~name:"naive = semi-naive on random genealogies" ~count:20
    QCheck.(int_range 1 60)
    (fun seed ->
      let stmts =
        Pathlog.Genealogy.statements
          (Pathlog.Genealogy.Random_forest { people = 25; max_kids = 3; seed })
        @ Pathlog.Genealogy.desc_rules
      in
      let dump mode =
        let config = { Fixpoint.default_config with mode } in
        let p = Program.create ~config stmts in
        ignore (Program.run p);
        model_facts p
      in
      dump Fixpoint.Naive = dump Fixpoint.Seminaive)

(* After the fixpoint the store is a model of every rule. *)
let fixpoint_is_model =
  QCheck.Test.make ~name:"fixpoint yields a model (random genealogies)"
    ~count:10
    QCheck.(int_range 1 40)
    (fun seed ->
      let stmts =
        Pathlog.Genealogy.statements
          (Pathlog.Genealogy.Random_forest { people = 8; max_kids = 2; seed })
        @ Pathlog.Genealogy.desc_rules
      in
      let p = Program.create stmts in
      ignore (Program.run p);
      Program.verify_model p = Ok ())

let test_desc_matches_reference_closure () =
  List.iter
    (fun shape ->
      let stmts =
        Pathlog.Genealogy.statements shape @ Pathlog.Genealogy.desc_rules
      in
      let p = Program.create stmts in
      ignore (Program.run p);
      List.iter
        (fun (i, descs) ->
          let got = answers p (Printf.sprintf "p%d[desc ->> {X}]" i) in
          let want =
            List.sort compare (List.map (Printf.sprintf "p%d") descs)
          in
          Alcotest.(check (list string))
            (Printf.sprintf "descendants of p%d" i)
            want got)
        (Pathlog.Genealogy.closure shape))
    [
      Pathlog.Genealogy.Chain 12;
      Pathlog.Genealogy.Binary_tree 3;
      Pathlog.Genealogy.Random_forest { people = 20; max_kids = 3; seed = 3 };
    ]

let test_run_idempotent () =
  let p =
    Program.of_string
      "a[kids ->> {b}]. X[desc ->> {Y}] <- X[kids ->> {Y}]."
  in
  let s1 = Program.run p in
  Alcotest.(check bool) "first run inserts" true (s1.insertions > 0);
  let s2 = Program.run p in
  Alcotest.(check int) "second run inserts nothing" 0 s2.insertions

(* ------------------------------------------------------------------ *)
(* Program API *)

let test_program_queries () =
  let p = load "a : c. b : c. ?- X : c." in
  match Program.run_queries p with
  | [ (_, answer) ] ->
    Alcotest.(check int) "embedded query rows" 2 (List.length answer.rows)
  | _ -> Alcotest.fail "expected one embedded query"

let test_ground_query_yes_no () =
  let p = load "a : c." in
  let yes = Program.query_string p "a : c" in
  Alcotest.(check int) "yes row" 1 (List.length yes.rows);
  let no = Program.query_string p "b : c" in
  Alcotest.(check int) "no rows" 0 (List.length no.rows)

let test_query_string_forms () =
  let p = load "a : c." in
  List.iter
    (fun q ->
      Alcotest.(check bool) ("form: " ^ q) true
        ((Program.query_string p q).rows <> []))
    [ "a : c"; "a : c."; "?- a : c."; "  ?- a : c.  " ]

let test_invalid_programs () =
  let expect_invalid text =
    match Program.of_string text with
    | exception Program.Invalid _ -> ()
    | _ -> Alcotest.fail ("accepted invalid: " ^ text)
  in
  expect_invalid "x[y -> .";
  expect_invalid "X[a -> 1] <- y.";  (* unsafe head var *)
  expect_invalid "X..k[a -> 1] <- X : c.";  (* set-valued head *)
  expect_invalid "ok <- not X : c.";  (* unsafe negation *)
  expect_invalid "c[m => X].";  (* non-ground signature *)
  expect_invalid "?- x[y => z]."  (* signature arrow in a query *)

let test_types_api () =
  let p =
    load
      {|
      employee[age => integer].
      bob : employee[age -> 30].
      eve : employee[age -> old].
      |}
  in
  Alcotest.(check int) "one violation" 1
    (List.length (Program.check_types p ~mode:`Lenient))

let suite =
  [
    Alcotest.test_case "fact loading" `Quick test_fact_loading;
    Alcotest.test_case "nested fact molecule" `Quick test_nested_fact_molecule;
    Alcotest.test_case "fact path head skolemizes" `Quick
      test_fact_with_path_head_skolemizes;
    Alcotest.test_case "functional conflict" `Quick test_functional_conflict;
    Alcotest.test_case "isa cycle error" `Quick test_isa_cycle_error;
    Alcotest.test_case "self protected" `Quick test_self_protected;
    Alcotest.test_case "intensional method (power)" `Quick
      test_intensional_method;
    Alcotest.test_case "virtual boss (6.1)" `Quick test_virtual_boss_61;
    Alcotest.test_case "existing boss (6.2)" `Quick test_existing_boss_62;
    Alcotest.test_case "virtual addresses (2.4)" `Quick
      test_virtual_addresses_24;
    Alcotest.test_case "skolem determinism" `Quick test_skolem_determinism;
    Alcotest.test_case "desc recursion (6.4)" `Quick test_desc_recursion;
    Alcotest.test_case "generic tc" `Quick test_generic_tc;
    Alcotest.test_case "head set-reference (4.4)" `Quick test_head_set_ref_44;
    Alcotest.test_case "subset body stratified" `Quick
      test_subset_body_stratified;
    Alcotest.test_case "subset waits for completion" `Quick
      test_subset_waits_for_completion;
    Alcotest.test_case "subset fails when missing" `Quick
      test_subset_fails_when_missing;
    Alcotest.test_case "unstratifiable rejected" `Quick
      test_unstratifiable_rejected;
    Alcotest.test_case "negation stratified" `Quick test_negation_stratified;
    Alcotest.test_case "negation through recursion rejected" `Quick
      test_negation_through_recursion_rejected;
    Alcotest.test_case "negation of derived" `Quick test_negation_of_derived;
    Alcotest.test_case "divergence guard" `Quick test_divergence_guard;
    Alcotest.test_case "round budget" `Quick test_round_budget;
    Alcotest.test_case "modes agree catalogue" `Quick
      test_modes_agree_catalogue;
    qtest modes_agree_on_random_tc;
    qtest fixpoint_is_model;
    Alcotest.test_case "desc matches reference closure" `Quick
      test_desc_matches_reference_closure;
    Alcotest.test_case "run idempotent" `Quick test_run_idempotent;
    Alcotest.test_case "program queries" `Quick test_program_queries;
    Alcotest.test_case "ground query yes/no" `Quick test_ground_query_yes_no;
    Alcotest.test_case "query string forms" `Quick test_query_string_forms;
    Alcotest.test_case "invalid programs" `Quick test_invalid_programs;
    Alcotest.test_case "types api" `Quick test_types_api;
  ]
