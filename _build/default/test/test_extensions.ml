(* Extensions beyond the core deductive language: production rules
   (section 2/7 orthogonality claim), the static type lint, model
   persistence, incremental facts and plan explanation. *)

open Helpers
module Program = Pathlog.Program
module Production = Pathlog.Production

(* ------------------------------------------------------------------ *)
(* Production rules *)

let lits = Pathlog.Parser.literals
let reference = Pathlog.Parser.reference

let test_production_basic () =
  let p = load "a : emp[sal -> 10]. b : emp[sal -> 20]." in
  let store = Program.store p in
  let eng =
    Production.create store
      [
        {
          p_name = "mark-rich";
          condition = lits "X : emp[sal -> 20]";
          actions = [ Assert (reference "X : rich") ];
          priority = 0;
        };
      ]
  in
  let fired = Production.run eng in
  Alcotest.(check int) "one firing" 1 fired;
  check_answers "asserted" p "X : rich" [ "b" ]

let test_production_refractoriness () =
  (* the same instantiation never fires twice, even though its condition
     stays true *)
  let p = load "a : emp." in
  let eng =
    Production.create (Program.store p)
      [
        {
          p_name = "noop";
          condition = lits "X : emp";
          actions = [ Assert (reference "X : seen") ];
          priority = 0;
        };
      ]
  in
  Alcotest.(check int) "fires once" 1 (Production.run eng);
  Alcotest.(check bool) "quiescent" false (Production.step eng)

let test_production_priority () =
  let p = load "t : trigger." in
  let eng =
    Production.create (Program.store p)
      [
        {
          p_name = "low";
          condition = lits "t : trigger";
          actions = [ Message "low" ];
          priority = 1;
        };
        {
          p_name = "high";
          condition = lits "t : trigger";
          actions = [ Message "high" ];
          priority = 5;
        };
      ]
  in
  ignore (Production.run eng);
  let messages =
    List.filter_map (fun (e : Production.event) -> e.e_message)
      (Production.log eng)
  in
  Alcotest.(check (list string)) "priority order" [ "high"; "low" ] messages

let test_production_chaining () =
  (* firings enable further firings: forward chaining to quiescence *)
  let p = load "n0[next -> n1]. n1[next -> n2]. n2[next -> n3]. n0 : reach." in
  let eng =
    Production.create (Program.store p)
      [
        {
          p_name = "step";
          condition = lits "X : reach, X[next -> Y]";
          actions = [ Assert (reference "Y : reach") ];
          priority = 0;
        };
      ]
  in
  ignore (Production.run eng);
  check_answers "chained" p "X : reach" [ "n0"; "n1"; "n2"; "n3" ]

let test_production_virtual_objects () =
  (* the assert action creates virtual objects exactly like rule heads *)
  let p = load "joe : person[city -> metropolis]." in
  let eng =
    Production.create (Program.store p)
      [
        {
          p_name = "make-address";
          condition = lits "X : person";
          actions = [ Assert (reference "X.address[city -> X.city]") ];
          priority = 0;
        };
      ]
  in
  ignore (Production.run eng);
  check_answers "virtual via production" p "joe.address[city -> C]"
    [ "metropolis" ]

let test_production_message_bindings () =
  let p = load "a : emp. b : emp." in
  let eng =
    Production.create (Program.store p)
      [
        {
          p_name = "notify";
          condition = lits "X : emp";
          actions = [ Message "seen" ];
          priority = 0;
        };
      ]
  in
  ignore (Production.run eng);
  let with_bindings =
    List.filter (fun (e : Production.event) -> e.e_message = Some "seen")
      (Production.log eng)
  in
  Alcotest.(check int) "two notifications" 2 (List.length with_bindings);
  List.iter
    (fun (e : Production.event) ->
      Alcotest.(check (list string)) "binds X" [ "X" ]
        (List.map fst e.e_bindings))
    with_bindings

let test_production_rejects_bad_rules () =
  let p = load "a : emp." in
  let bad () =
    Production.create (Program.store p)
      [
        {
          p_name = "bad";
          condition = lits "X : emp";
          actions = [ Assert (reference "Y : rich") ];
          (* Y unbound *)
          priority = 0;
        };
      ]
  in
  match bad () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of unsafe production rule"

let test_production_max_steps () =
  let p = load "a : emp. b : emp. c : emp." in
  let eng =
    Production.create (Program.store p)
      [
        {
          p_name = "r";
          condition = lits "X : emp";
          actions = [];
          priority = 0;
        };
      ]
  in
  Alcotest.(check int) "bounded" 2 (Production.run ~max_steps:2 eng)

(* the orthogonality claim: assert-only production rules reach the same
   model as the deductive engine *)
let production_equals_deductive =
  QCheck.Test.make ~name:"production fixpoint = deductive minimal model"
    ~count:15
    QCheck.(int_range 1 100)
    (fun seed ->
      let facts =
        Pathlog.Genealogy.statements
          (Pathlog.Genealogy.Random_forest { people = 10; max_kids = 2; seed })
      in
      (* deductive *)
      let p1 = Program.create (facts @ Pathlog.Genealogy.desc_rules) in
      ignore (Program.run p1);
      let deductive =
        Format.asprintf "%a" Pathlog.Store.pp (Program.store p1)
        |> String.split_on_char '\n'
        |> List.sort_uniq compare
      in
      (* production: same two rules as assert actions *)
      let p2 = Program.create facts in
      ignore (Program.run p2);
      let eng =
        Production.create (Program.store p2)
          [
            {
              p_name = "base";
              condition = lits "X[kids ->> {Y}]";
              actions = [ Assert (reference "X[desc ->> {Y}]") ];
              priority = 0;
            };
            {
              p_name = "step";
              condition = lits "X..desc[kids ->> {Y}]";
              actions = [ Assert (reference "X[desc ->> {Y}]") ];
              priority = 0;
            };
          ]
      in
      ignore (Production.run eng);
      let production =
        Format.asprintf "%a" Pathlog.Store.pp (Program.store p2)
        |> String.split_on_char '\n'
        |> List.sort_uniq compare
      in
      deductive = production)

(* ------------------------------------------------------------------ *)
(* Static type lint *)

let test_lint_flags_contradiction () =
  let p =
    Program.of_string
      {|
      employee[boss => employee].
      d1 : dept.
      X[boss -> Y] <- X : employee, Y : dept, X[managedBy -> Y].
      |}
  in
  Alcotest.(check int) "one warning" 1 (List.length (Program.lint_types p))

let test_lint_accepts_consistent () =
  let p =
    Program.of_string
      {|
      employee[boss => employee].
      X[boss -> Y] <- X : employee, Y : employee, X[managedBy -> Y].
      |}
  in
  Alcotest.(check int) "no warning" 0 (List.length (Program.lint_types p))

let test_lint_uses_static_hierarchy () =
  (* Y : manager and manager :: employee satisfies boss => employee *)
  let p =
    Program.of_string
      {|
      manager :: employee.
      employee[boss => employee].
      X[boss -> Y] <- X : employee, Y : manager, X[managedBy -> Y].
      |}
  in
  Alcotest.(check int) "hierarchy-closed" 0 (List.length (Program.lint_types p))

let test_lint_silent_when_unknown () =
  (* no class information about Y: the lint stays quiet *)
  let p =
    Program.of_string
      {|
      employee[boss => employee].
      X[boss -> Y] <- X : employee, X[managedBy -> Y].
      |}
  in
  Alcotest.(check int) "no info no warning" 0
    (List.length (Program.lint_types p))

(* ------------------------------------------------------------------ *)
(* Persistence: dump/reload round-trip *)

let fact_set dump =
  String.split_on_char '\n' dump |> List.sort_uniq compare

let test_dump_reload_roundtrip () =
  let p =
    load
      {|
      alice : person[street -> mainSt; city -> springfield].
      bob : person[street -> elmSt; city -> springfield].
      X.address[street -> X.street; city -> X.city] <- X : person.
      |}
  in
  let dump = Program.dump_model p in
  let p2 = load dump in
  Alcotest.(check (list string))
    "model fixpoint" (fact_set dump)
    (fact_set (Program.dump_model p2));
  (* skolems reload as the same path-denoted objects *)
  check_answers "virtual object survives" p2 "alice.address[street -> S]"
    [ "mainSt" ]

let dump_reload_random =
  QCheck.Test.make ~name:"dump/reload is a fixpoint (random genealogies)"
    ~count:15
    QCheck.(int_range 1 100)
    (fun seed ->
      let p =
        Program.create
          (Pathlog.Genealogy.statements
             (Pathlog.Genealogy.Random_forest
                { people = 12; max_kids = 3; seed })
          @ Pathlog.Genealogy.desc_rules)
      in
      ignore (Program.run p);
      let d1 = Program.dump_model p in
      let p2 = load d1 in
      fact_set (Program.dump_model p2) = fact_set d1)

(* ------------------------------------------------------------------ *)
(* Incremental facts *)

let test_add_fact_incremental () =
  let p =
    load
      {|
      a[kids ->> {b}].
      X[desc ->> {Y}] <- X[kids ->> {Y}].
      X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
      |}
  in
  check_answers "before" p "a[desc ->> {X}]" [ "b" ];
  let added = Program.add_fact_string p "b[kids ->> {c}]." in
  Alcotest.(check int) "one tuple" 1 added;
  ignore (Program.run p);
  check_answers "after re-run" p "a[desc ->> {X}]" [ "b"; "c" ];
  (* incremental = from scratch *)
  let fresh =
    load
      {|
      a[kids ->> {b}]. b[kids ->> {c}].
      X[desc ->> {Y}] <- X[kids ->> {Y}].
      X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
      |}
  in
  Alcotest.(check (list string))
    "same model"
    (fact_set (Program.dump_model fresh))
    (fact_set (Program.dump_model p))

let test_add_fact_rejects_nonground () =
  let p = load "a : c." in
  match Program.add_fact_string p "X : c." with
  | exception Program.Invalid _ -> ()
  | _ -> Alcotest.fail "expected rejection of non-ground fact"

(* ------------------------------------------------------------------ *)
(* Plan explanation *)

let test_explain_shapes () =
  let p =
    load
      {|
      m1 : manager. m1[vehicles ->> {v1}]. v1[color -> red].
      |}
  in
  let plan =
    Program.explain_string p "X : manager..vehicles[color -> red]"
  in
  Alcotest.(check int) "three steps" 3 (List.length plan);
  Alcotest.(check bool) "mentions an access path" true
    (List.for_all (fun line -> contains ~sub:"[" line) plan)

let test_explain_matches_query () =
  (* explain never changes answers; sanity on the manager query *)
  let p =
    Program.create (Pathlog.Company.statements (Pathlog.Company.scaled 30))
  in
  ignore (Program.run p);
  let q =
    "X : manager..vehicles[color -> red].producedBy[city -> city1; \
     president -> X]"
  in
  let before = answers p q in
  let _plan = Program.explain_string p q in
  Alcotest.(check (list string)) "unchanged" before (answers p q)

let suite =
  [
    Alcotest.test_case "production basic" `Quick test_production_basic;
    Alcotest.test_case "production refractoriness" `Quick
      test_production_refractoriness;
    Alcotest.test_case "production priority" `Quick test_production_priority;
    Alcotest.test_case "production chaining" `Quick test_production_chaining;
    Alcotest.test_case "production virtual objects" `Quick
      test_production_virtual_objects;
    Alcotest.test_case "production message bindings" `Quick
      test_production_message_bindings;
    Alcotest.test_case "production rejects bad rules" `Quick
      test_production_rejects_bad_rules;
    Alcotest.test_case "production max steps" `Quick test_production_max_steps;
    qtest production_equals_deductive;
    Alcotest.test_case "lint flags contradiction" `Quick
      test_lint_flags_contradiction;
    Alcotest.test_case "lint accepts consistent" `Quick
      test_lint_accepts_consistent;
    Alcotest.test_case "lint uses static hierarchy" `Quick
      test_lint_uses_static_hierarchy;
    Alcotest.test_case "lint silent when unknown" `Quick
      test_lint_silent_when_unknown;
    Alcotest.test_case "dump/reload roundtrip" `Quick
      test_dump_reload_roundtrip;
    qtest dump_reload_random;
    Alcotest.test_case "add_fact incremental" `Quick test_add_fact_incremental;
    Alcotest.test_case "add_fact rejects nonground" `Quick
      test_add_fact_rejects_nonground;
    Alcotest.test_case "explain shapes" `Quick test_explain_shapes;
    Alcotest.test_case "explain matches query" `Quick
      test_explain_matches_query;
  ]

(* ------------------------------------------------------------------ *)
(* What-if analysis (appended) *)

let tc_text =
  {|
  peter[kids ->> {tim, mary}]. tim[kids ->> {sally}].
  X[desc ->> {Y}] <- X[kids ->> {Y}].
  X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
  |}

let test_what_if_add () =
  let p = load tc_text in
  let added, removed =
    Program.what_if
      ~add:(Pathlog.Parser.program "sally[kids ->> {zoe}].")
      p
  in
  Alcotest.(check (list string)) "nothing removed" [] removed;
  (* new base fact + derived desc facts for sally, tim and peter *)
  Alcotest.(check bool) "kids fact added" true
    (List.mem "sally[kids ->> {zoe}]." added);
  Alcotest.(check bool) "peter's closure extended" true
    (List.mem "peter[desc ->> {zoe}]." added);
  Alcotest.(check int) "exactly 4 new facts" 4 (List.length added)

let test_what_if_retract () =
  let p = load tc_text in
  let retract stmt =
    Syntax.Ast.equal_statement stmt
      (Pathlog.Parser.statement "tim[kids ->> {sally}].")
  in
  let added, removed = Program.what_if ~retract p in
  Alcotest.(check (list string)) "nothing added" [] added;
  Alcotest.(check bool) "base fact gone" true
    (List.mem "tim[kids ->> {sally}]." removed);
  Alcotest.(check bool) "derived support gone" true
    (List.mem "peter[desc ->> {sally}]." removed);
  Alcotest.(check bool) "unrelated facts kept" false
    (List.mem "peter[desc ->> {tim}]." removed)

let test_what_if_does_not_mutate () =
  let p = load tc_text in
  let before = Program.dump_model p in
  ignore (Program.what_if ~add:(Pathlog.Parser.program "x[kids ->> {y}].") p);
  Alcotest.(check string) "base program untouched" before
    (Program.dump_model p)

let test_rebuild_composes () =
  let p = load tc_text in
  let p2 =
    Program.rebuild
      ~add:(Pathlog.Parser.program "sally[kids ->> {zoe}].")
      p
  in
  let p3 =
    Program.rebuild
      ~retract:(fun stmt ->
        Syntax.Ast.equal_statement stmt
          (Pathlog.Parser.statement "sally[kids ->> {zoe}]."))
      p2
  in
  let lines p =
    Program.dump_model p |> String.split_on_char '\n'
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "add then retract = identity"
    (lines p) (lines p3)

let suite =
  suite
  @ [
      Alcotest.test_case "what-if add" `Quick test_what_if_add;
      Alcotest.test_case "what-if retract" `Quick test_what_if_retract;
      Alcotest.test_case "what-if does not mutate" `Quick
        test_what_if_does_not_mutate;
      Alcotest.test_case "rebuild composes" `Quick test_rebuild_composes;
    ]
