(* Normalisation: canonical forms and valuation invariance. *)

open Helpers
module Normalize = Pathlog.Normalize
module Valuation = Pathlog.Valuation

let reference = Pathlog.Parser.reference

let norm src = Normalize.reference (reference src)

let test_paren_unwrapped () =
  Alcotest.(check bool) "((x)) = x" true
    (Syntax.Ast.equal_reference (norm "((x))") (reference "x"));
  Alcotest.(check bool) "(x.a).b = x.a.b" true
    (Syntax.Ast.equal_reference (norm "(x.a).b") (reference "x.a.b"))

let test_self_removed () =
  Alcotest.(check bool) "x.self = x" true
    (Syntax.Ast.equal_reference (norm "x.self") (reference "x"));
  Alcotest.(check bool) "x.self.self.a = x.a" true
    (Syntax.Ast.equal_reference (norm "x.self.self.a") (reference "x.a"));
  Alcotest.(check bool) "x..self = x" true
    (Syntax.Ast.equal_reference (norm "x..self") (reference "x"))

let test_filter_order_canonical () =
  Alcotest.(check bool) "filters commute" true
    (Normalize.equal
       (reference "x[a -> 1][b -> 2]")
       (reference "x[b -> 2][a -> 1]"));
  Alcotest.(check bool) "semicolon sugar too" true
    (Normalize.equal
       (reference "x[a -> 1; b -> 2]")
       (reference "x[b -> 2; a -> 1]"));
  Alcotest.(check bool) "isa commutes with filters" true
    (Normalize.equal
       (reference "x : c[a -> 1]")
       (reference "x[a -> 1] : c"))

let test_duplicate_restrictions_dropped () =
  Alcotest.(check bool) "duplicate filter" true
    (Syntax.Ast.equal_reference
       (norm "x[a -> 1][a -> 1]")
       (norm "x[a -> 1]"));
  Alcotest.(check bool) "duplicate set elements" true
    (Normalize.equal
       (reference "x[s ->> {a, a, b}]")
       (reference "x[s ->> {b, a}]"))

let test_paren_chain_merged () =
  (* the chains on both sides of the parens sort jointly *)
  Alcotest.(check bool) "(x[b -> 2])[a -> 1] = x[a -> 1][b -> 2]" true
    (Syntax.Ast.equal_reference
       (norm "(x[b -> 2])[a -> 1]")
       (norm "x[a -> 1][b -> 2]"))

let test_paths_not_reordered () =
  Alcotest.(check bool) "paths stay ordered" false
    (Normalize.equal (reference "x.a.b") (reference "x.b.a"))

let test_higher_order_meth_kept_usable () =
  let n = norm "X[(M.tc) ->> {Y}]" in
  (* printing re-parenthesises the computed method; round trip holds *)
  let printed = Pathlog.Pretty.reference_to_string n in
  match Pathlog.Parser.reference printed with
  | r -> Alcotest.(check bool) "roundtrip" true (Normalize.equal r n)
  | exception Pathlog.Parser.Error _ ->
    Alcotest.failf "unparsable normal form: %s" printed

(* valuation invariance on random ground references over random bases *)
let normalization_preserves_valuation =
  QCheck.Test.make ~name:"normalisation preserves the valuation" ~count:150
    QCheck.(
      pair arbitrary_loadable_base (arbitrary_reference ~allow_vars:false))
    (fun (p, r) ->
      match Pathlog.Wellformed.check_reference r with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        let store = Pathlog.Program.store p in
        let v t = Valuation.eval store Valuation.Env.empty t in
        Pathlog.Obj_id.Set.equal (v r) (v (Normalize.reference r)))

(* normalisation is idempotent *)
let normalization_idempotent =
  QCheck.Test.make ~name:"normalisation is idempotent" ~count:300
    (arbitrary_reference ~allow_vars:true)
    (fun r ->
      let n = Normalize.reference r in
      Syntax.Ast.equal_reference n (Normalize.reference n))

let suite =
  [
    Alcotest.test_case "paren unwrapped" `Quick test_paren_unwrapped;
    Alcotest.test_case "self removed" `Quick test_self_removed;
    Alcotest.test_case "filter order canonical" `Quick
      test_filter_order_canonical;
    Alcotest.test_case "duplicates dropped" `Quick
      test_duplicate_restrictions_dropped;
    Alcotest.test_case "paren chain merged" `Quick test_paren_chain_merged;
    Alcotest.test_case "paths not reordered" `Quick test_paths_not_reordered;
    Alcotest.test_case "higher-order meth usable" `Quick
      test_higher_order_meth_kept_usable;
    qtest normalization_preserves_valuation;
    qtest normalization_idempotent;
  ]
