(* Randomised rule programs evaluated by every engine we have — bottom-up
   naive, bottom-up semi-naive, goal-directed tabling — plus the model
   checker, all required to agree. This is the strongest single confidence
   argument for the evaluator stack. Also: the calculus baseline. *)

open Helpers
module Program = Pathlog.Program
module Fixpoint = Pathlog.Fixpoint

(* ------------------------------------------------------------------ *)
(* Random safe, positive, flat rule programs over a small vocabulary. *)

let gen_program : string QCheck.Gen.t =
  let open QCheck.Gen in
  let objs = [ "o1"; "o2"; "o3"; "o4"; "o5"; "o6" ] in
  let classes = [ "ca"; "cb" ] in
  let smeths = [ "f"; "g" ] in
  let mmeths = [ "r"; "s"; "t" ] in
  let gen_fact =
    frequency
      [
        ( 2,
          map3
            (fun m o r -> Printf.sprintf "%s[%s ->> {%s}]." o m r)
            (oneofl mmeths) (oneofl objs) (oneofl objs) );
        ( 1,
          map3
            (fun m o r -> Printf.sprintf "%s[%s -> %s]." o m r)
            (oneofl smeths) (oneofl objs) (oneofl objs) );
        ( 1,
          map2 (fun o c -> Printf.sprintf "%s : %s." o c) (oneofl objs)
            (oneofl classes) );
      ]
  in
  (* rules: head X[h ->> {Y}], body a chain binding X and Y positively;
     h drawn from mmeths so recursion arises naturally *)
  let gen_rule =
    let gen_body_atom bound =
      (* an atom over variables X, Y, possibly introducing Y *)
      frequency
        [
          ( 3,
            map
              (fun m ->
                if bound then Printf.sprintf "X[%s ->> {Y}]" m
                else Printf.sprintf "X[%s ->> {Y}]" m)
              (oneofl mmeths) );
          (1, map (fun c -> Printf.sprintf "X : %s" c) (oneofl classes));
        ]
    in
    let* h = oneofl mmeths in
    let* first = map (fun m -> Printf.sprintf "X[%s ->> {Y}]" m) (oneofl mmeths) in
    let* extra = frequency [ (2, return []); (1, map (fun a -> [ a ]) (gen_body_atom true)) ] in
    return
      (Printf.sprintf "X[%s ->> {Y}] <- %s." h
         (String.concat ", " (first :: extra)))
  in
  let* facts = list_size (int_range 4 10) gen_fact in
  let* rules = list_size (int_range 1 4) gen_rule in
  return (String.concat "\n" (facts @ rules))

let arbitrary_program =
  QCheck.make ~print:(fun s -> s) gen_program

let model_facts p =
  Format.asprintf "%a" Pathlog.Store.pp (Program.store p)
  |> String.split_on_char '\n'
  |> List.sort_uniq compare

let load_mode mode text =
  let config = { Fixpoint.default_config with mode } in
  let p = Program.of_string ~config text in
  ignore (Program.run p);
  p

let engines_agree =
  QCheck.Test.make ~name:"naive = semi-naive on random rule programs"
    ~count:60 arbitrary_program (fun text ->
      match load_mode Fixpoint.Naive text with
      | exception _ -> QCheck.assume_fail ()  (* e.g. scalar conflict *)
      | p_naive ->
        let p_semi = load_mode Fixpoint.Seminaive text in
        model_facts p_naive = model_facts p_semi)

let fixpoint_is_model_random =
  QCheck.Test.make ~name:"random-program fixpoint is a model" ~count:25
    arbitrary_program (fun text ->
      match load_mode Fixpoint.Seminaive text with
      | exception _ -> QCheck.assume_fail ()
      | p -> Program.verify_model p = Ok ())

let topdown_agrees_random =
  QCheck.Test.make ~name:"topdown = bottom-up on random rule programs"
    ~count:40 arbitrary_program (fun text ->
      match load_mode Fixpoint.Seminaive text with
      | exception _ -> QCheck.assume_fail ()
      | p_full -> (
        let q = "o1[r ->> {Z}]" in
        let full =
          List.sort compare
            (List.map (Program.row_to_string p_full)
               (Program.query_string p_full q).rows)
        in
        let p_top = Program.of_string text in
        match Program.query_topdown p_top (Pathlog.Parser.literals q) with
        | Some (answer, _) ->
          List.sort compare
            (List.map (Program.row_to_string p_top) answer.rows)
          = full
        | None -> QCheck.assume_fail ()))

let invariants_random_programs =
  QCheck.Test.make ~name:"store invariants on random rule programs"
    ~count:40 arbitrary_program (fun text ->
      match load_mode Fixpoint.Seminaive text with
      | exception _ -> QCheck.assume_fail ()
      | p -> Pathlog.Store.check_invariants (Program.store p) = [])

(* ------------------------------------------------------------------ *)
(* The calculus baseline (query 1.3) *)

let calculus_world () =
  load
    {|
    automobile :: vehicle.
    e1 : employee. e1[vehicles ->> {a1, v1}].
    e2 : employee. e2[vehicles ->> {a2}].
    a1 : automobile[color -> red].
    a2 : automobile[color -> green].
    v1 : vehicle[color -> blue].
    |}

let classes = [ "employee"; "automobile"; "vehicle" ]

let test_calculus_13 () =
  let p = calculus_world () in
  let store = Program.store p in
  let q =
    Pathlog.Calculus.of_string ~classes "employee.vehicles.automobile.color"
  in
  let got =
    List.map
      (Pathlog.Universe.to_string (Program.universe p))
      (Pathlog.Obj_id.Set.elements (Pathlog.Calculus.eval store q))
    |> List.sort compare
  in
  Alcotest.(check (list string)) "colors of automobiles" [ "green"; "red" ] got

let test_calculus_class_filter_midpath () =
  let p = calculus_world () in
  let store = Program.store p in
  let without =
    Pathlog.Calculus.eval store
      (Pathlog.Calculus.of_string ~classes "employee.vehicles.color")
  in
  (* without the automobile filter, blue appears too *)
  Alcotest.(check int) "all vehicle colors" 3
    (Pathlog.Obj_id.Set.cardinal without)

let test_calculus_from_object () =
  let p = calculus_world () in
  let store = Program.store p in
  let q = Pathlog.Calculus.of_string ~classes "e1.vehicles.color" in
  Alcotest.(check int) "e1's vehicle colors" 2
    (Pathlog.Obj_id.Set.cardinal (Pathlog.Calculus.eval store q))

let test_calculus_translation_agrees () =
  let p = calculus_world () in
  let store = Program.store p in
  let q =
    Pathlog.Calculus.of_string ~classes "employee.vehicles.automobile.color"
  in
  let native = Pathlog.Obj_id.Set.elements (Pathlog.Calculus.eval store q) in
  let lits = Pathlog.Calculus.to_pathlog store q in
  let flat = Pathlog.Flatten.literals store lits in
  let z_slot = List.assoc "Z" flat.named in
  let via_solver =
    Pathlog.Solve.named_solutions store flat
    |> List.filter_map (fun row ->
           List.nth_opt row
             (let rec idx i = function
                | [] -> -1
                | (_, s) :: rest -> if s = z_slot then i else idx (i + 1) rest
              in
              idx 0 flat.named))
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "translation agrees" native via_solver

let test_calculus_pp () =
  let q =
    Pathlog.Calculus.of_string ~classes "employee.vehicles.automobile.color"
  in
  Alcotest.(check string) "printed form"
    "{ Z | employee.vehicles.automobile.color[Z] }"
    (Format.asprintf "%a" Pathlog.Calculus.pp q)

let suite =
  [
    qtest engines_agree;
    qtest fixpoint_is_model_random;
    qtest topdown_agrees_random;
    qtest invariants_random_programs;
    Alcotest.test_case "calculus query 1.3" `Quick test_calculus_13;
    Alcotest.test_case "calculus class filter" `Quick
      test_calculus_class_filter_midpath;
    Alcotest.test_case "calculus from object" `Quick test_calculus_from_object;
    Alcotest.test_case "calculus translation agrees" `Quick
      test_calculus_translation_agrees;
    Alcotest.test_case "calculus pp" `Quick test_calculus_pp;
  ]
