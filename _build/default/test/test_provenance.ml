(* Provenance recording and proof trees. *)

open Helpers
module Program = Pathlog.Program
module Provenance = Pathlog.Provenance
module Fact = Pathlog.Fact

let tc_program () =
  load
    {|
    peter[kids ->> {tim, mary}].
    tim[kids ->> {sally}].
    X[desc ->> {Y}] <- X[kids ->> {Y}].
    X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
    |}

let test_extensional_leaf () =
  let p = tc_program () in
  match Program.why_string p "peter[kids ->> {tim}]" with
  | Some { source = Extensional; support = []; _ } -> ()
  | Some _ -> Alcotest.fail "expected an extensional leaf"
  | None -> Alcotest.fail "fact not recorded"

let test_derived_one_step () =
  let p = tc_program () in
  match Program.why_string p "peter[desc ->> {tim}]" with
  | Some { source = Derived { rule; env }; support = [ leaf ]; _ } ->
    Alcotest.(check bool) "base rule" true
      (contains ~sub:"X[kids ->> {Y}]"
         (Pathlog.Pretty.rule_to_string rule));
    Alcotest.(check (list string)) "env vars" [ "X"; "Y" ]
      (List.sort compare (List.map fst env));
    (match leaf.source with
    | Extensional -> ()
    | Derived _ -> Alcotest.fail "support should be the extensional fact")
  | Some _ -> Alcotest.fail "expected one support fact"
  | None -> Alcotest.fail "fact not recorded"

let test_derived_recursive_chain () =
  let p = tc_program () in
  match Program.why_string p "peter[desc ->> {sally}]" with
  | Some proof ->
    let rec depth (pr : Provenance.proof) =
      1 + List.fold_left (fun acc c -> max acc (depth c)) 0 pr.support
    in
    Alcotest.(check bool) "recursive proof at least 3 deep" true
      (depth proof >= 3);
    (* the printed tree mentions both rules and both base facts *)
    let text =
      Format.asprintf "%a"
        (Provenance.pp_proof (Program.universe p))
        proof
    in
    Alcotest.(check bool) "mentions recursive rule" true
      (contains ~sub:"X..desc[kids ->> {Y}]" text);
    Alcotest.(check bool) "mentions tim's kids" true
      (contains ~sub:"tim[kids ->> {sally}]   (fact)" text)
  | None -> Alcotest.fail "fact not recorded"

let test_isa_support_chain () =
  let p =
    load
      {|
      automobile :: vehicle.
      a1 : automobile.
      X : wheeled <- X : vehicle.
      |}
  in
  (* a1 : wheeled is derived via the transitive membership a1 : vehicle,
     whose support is the two direct edges *)
  match Program.why_string p "a1 : wheeled" with
  | Some proof ->
    let text =
      Format.asprintf "%a" (Provenance.pp_proof (Program.universe p)) proof
    in
    Alcotest.(check bool) "edge a1:automobile in support" true
      (contains ~sub:"a1 : automobile" text);
    Alcotest.(check bool) "edge automobile:vehicle in support" true
      (contains ~sub:"automobile : vehicle" text)
  | None -> Alcotest.fail "fact not recorded"

let test_skolem_provenance () =
  let p =
    load
      {|
      joe : person[city -> metropolis].
      X.address[city -> X.city] <- X : person.
      |}
  in
  match Program.why_string p "joe.address[city -> metropolis]" with
  | Some { source = Derived { rule; _ }; _ } ->
    Alcotest.(check bool) "derived by the address rule" true
      (contains ~sub:"X.address" (Pathlog.Pretty.rule_to_string rule))
  | Some { source = Extensional; _ } -> Alcotest.fail "should be derived"
  | None -> Alcotest.fail "fact not recorded"

let test_why_unknown_fact () =
  let p = tc_program () in
  Alcotest.(check bool) "unknown fact" true
    (Program.why_string p "mary[kids ->> {peter}]" = None)

let test_why_rejects_open_reference () =
  let p = tc_program () in
  match Program.why_string p "X[kids ->> {Y}]" with
  | exception Program.Invalid _ -> ()
  | _ -> Alcotest.fail "expected rejection of non-ground why"

let test_fact_of_reference () =
  let p = tc_program () in
  let store = Program.store p in
  let fact src = Fact.of_reference store (Pathlog.Parser.reference src) in
  (match fact "peter[kids ->> {tim}]" with
  | Some (Fact.F_set _) -> ()
  | _ -> Alcotest.fail "set fact");
  (match fact "a : c" with
  | Some (Fact.F_isa _) -> ()
  | _ -> Alcotest.fail "isa fact");
  (match fact "x[m -> y]" with
  | Some (Fact.F_scalar _) -> ()
  | _ -> Alcotest.fail "scalar fact");
  (* explicit sets with two elements are not a single fact *)
  (match fact "x[m ->> {a, b}]" with
  | None -> ()
  | Some _ -> Alcotest.fail "two-element set is not one fact");
  match fact "X : c" with
  | None -> ()
  | Some _ -> Alcotest.fail "variables are not ground"

let test_provenance_size () =
  let p = tc_program () in
  (* kids: 3 tuples, desc: 4 derived *)
  Alcotest.(check int) "all inserted tuples recorded" 7
    (Provenance.size (Program.provenance p))

let test_add_fact_provenance () =
  let p = load "a : c." in
  ignore (Program.add_fact_string p "b : c.");
  match Program.why_string p "b : c" with
  | Some { source = Extensional; _ } -> ()
  | _ -> Alcotest.fail "incrementally added fact should be extensional"

(* Every derived fact in a random-program model has a proof tree whose
   leaves are extensional. *)
let all_facts_explainable =
  QCheck.Test.make ~name:"every model fact has a well-founded proof"
    ~count:10
    QCheck.(int_range 1 50)
    (fun seed ->
      let p =
        Program.create
          (Pathlog.Genealogy.statements
             (Pathlog.Genealogy.Random_forest
                { people = 8; max_kids = 2; seed })
          @ Pathlog.Genealogy.desc_rules)
      in
      ignore (Program.run p);
      let store = Program.store p in
      let ok = ref true in
      let check_fact fact =
        match Provenance.explain store (Program.provenance p) fact with
        | None -> ok := false
        | Some proof ->
          let rec leaves_extensional (pr : Provenance.proof) =
            match (pr.source, pr.support) with
            | Provenance.Extensional, [] -> true
            | Provenance.Extensional, _ :: _ -> false
            | Provenance.Derived _, children ->
              children <> [] && List.for_all leaves_extensional children
          in
          if not (leaves_extensional proof) then ok := false
      in
      List.iter
        (fun m ->
          Oodb.Vec.iter
            (fun (e : Pathlog.Store.mentry) ->
              check_fact
                (Fact.F_set
                   { meth = m; recv = e.recv; args = e.args; res = e.res }))
            (Pathlog.Store.set_bucket store m))
        (Pathlog.Store.set_meths store);
      !ok)

let suite =
  [
    Alcotest.test_case "extensional leaf" `Quick test_extensional_leaf;
    Alcotest.test_case "derived one step" `Quick test_derived_one_step;
    Alcotest.test_case "derived recursive chain" `Quick
      test_derived_recursive_chain;
    Alcotest.test_case "isa support chain" `Quick test_isa_support_chain;
    Alcotest.test_case "skolem provenance" `Quick test_skolem_provenance;
    Alcotest.test_case "why unknown fact" `Quick test_why_unknown_fact;
    Alcotest.test_case "why rejects open reference" `Quick
      test_why_rejects_open_reference;
    Alcotest.test_case "fact of reference" `Quick test_fact_of_reference;
    Alcotest.test_case "provenance size" `Quick test_provenance_size;
    Alcotest.test_case "add_fact provenance" `Quick test_add_fact_provenance;
    qtest all_facts_explainable;
  ]
