(* End-to-end tests of the command-line driver: run the real binary on the
   shipped programs and check its output and exit codes. *)

let find_file candidates =
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> Alcotest.failf "not found: %s" (String.concat ", " candidates)

let cli () =
  find_file
    [ "../bin/pathlog_cli.exe"; "_build/default/bin/pathlog_cli.exe" ]

let plg name =
  find_file
    [ "../examples/programs/" ^ name;
      "examples/programs/" ^ name;
      "_build/default/examples/programs/" ^ name ]

(* Run the CLI, return (exit code, combined output). *)
let run_cli args =
  let out = Filename.temp_file "pathlog_cli" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote (cli ()))
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in_bin out in
  let text =
    Fun.protect
      ~finally:(fun () ->
        close_in_noerr ic;
        Sys.remove out)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, text)

let contains = Helpers.contains

let test_run_genealogy () =
  let code, out = run_cli [ "run"; plg "genealogy.plg"; "--stats" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "stats line" true (contains ~sub:"% strata" out);
  Alcotest.(check bool) "embedded query answered" true
    (contains ~sub:"(5 answers)" out);
  Alcotest.(check bool) "sally in closure" true (contains ~sub:"sally" out)

let test_run_query_flag () =
  let code, out =
    run_cli [ "run"; plg "genealogy.plg"; "-q"; "tim[desc ->> {X}]" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "answer" true (contains ~sub:"sally" out)

let test_run_types_flag () =
  let code, out = run_cli [ "run"; plg "university.plg"; "--types" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "types ok" true (contains ~sub:"types: ok" out)

let test_run_dump () =
  let code, out = run_cli [ "run"; plg "addresses.plg"; "--dump" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "dump has skolem fact" true
    (contains ~sub:"alice.address[street -> mainSt]." out)

let test_check_shows_strata () =
  let code, out = run_cli [ "check"; plg "university.plg" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "strata header" true (contains ~sub:"2 strata" out);
  Alcotest.(check bool) "stratum 1 rule shown" true
    (contains ~sub:"stratum 1" out)

let test_explain () =
  let code, out =
    run_cli [ "explain"; plg "genealogy.plg"; "-q"; "peter[desc ->> {X}]" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "plan step" true (contains ~sub:"1." out);
  Alcotest.(check bool) "access path" true (contains ~sub:"lookup" out)

let test_why () =
  let code, out =
    run_cli [ "why"; plg "genealogy.plg"; "-q"; "peter[desc ->> {sally}]" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "proof leaf" true
    (contains ~sub:"tim[kids ->> {sally}]   (fact)" out)

let test_error_exit_code () =
  let bad = Filename.temp_file "bad" ".plg" in
  let oc = open_out bad in
  output_string oc "X[a -> 1] <- y.\n";
  (* unsafe head var *)
  close_out oc;
  let code, out = run_cli [ "run"; bad ] in
  Sys.remove bad;
  Alcotest.(check int) "exit 1" 1 code;
  Alcotest.(check bool) "error message" true (contains ~sub:"error:" out)

let test_conflict_reported () =
  let bad = Filename.temp_file "bad" ".plg" in
  let oc = open_out bad in
  output_string oc "x[m -> a]. x[m -> b].\n";
  close_out oc;
  let code, out = run_cli [ "run"; bad ] in
  Sys.remove bad;
  Alcotest.(check int) "exit 1" 1 code;
  Alcotest.(check bool) "conflict message" true
    (contains ~sub:"already yields" out)

let suite =
  [
    Alcotest.test_case "run genealogy" `Quick test_run_genealogy;
    Alcotest.test_case "run -q" `Quick test_run_query_flag;
    Alcotest.test_case "run --types" `Quick test_run_types_flag;
    Alcotest.test_case "run --dump" `Quick test_run_dump;
    Alcotest.test_case "check strata" `Quick test_check_shows_strata;
    Alcotest.test_case "explain" `Quick test_explain;
    Alcotest.test_case "why proof" `Quick test_why;
    Alcotest.test_case "error exit code" `Quick test_error_exit_code;
    Alcotest.test_case "conflict reported" `Quick test_conflict_reported;
  ]

(* appended: the query subcommand strategies *)

let test_query_strategies () =
  List.iter
    (fun strategy ->
      let code, out =
        run_cli
          [ "query"; plg "genealogy.plg"; "-s"; strategy; "-q";
            "tim[desc ->> {X}]" ]
      in
      Alcotest.(check int) (strategy ^ " exit") 0 code;
      Alcotest.(check bool) (strategy ^ " answer") true
        (contains ~sub:"sally" out))
    [ "full"; "focused"; "topdown" ]

let test_query_bad_strategy () =
  let code, _ =
    run_cli [ "query"; plg "genealogy.plg"; "-s"; "quantum"; "-q"; "x" ]
  in
  Alcotest.(check int) "exit 1" 1 code

let suite =
  suite
  @ [
      Alcotest.test_case "query strategies" `Quick test_query_strategies;
      Alcotest.test_case "query bad strategy" `Quick test_query_bad_strategy;
    ]

(* appended: fmt subcommand *)

let test_fmt_roundtrip () =
  let code, out = run_cli [ "fmt"; plg "university.plg" ] in
  Alcotest.(check int) "exit 0" 0 code;
  (* formatted output reparses to the same statements *)
  let original =
    Pathlog.Parser.program
      (let ic = open_in_bin (plg "university.plg") in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () -> really_input_string ic (in_channel_length ic)))
  in
  let reparsed = Pathlog.Parser.program out in
  Alcotest.(check int) "same statement count" (List.length original)
    (List.length reparsed);
  Alcotest.(check bool) "same statements" true
    (List.for_all2 Syntax.Ast.equal_statement original reparsed)

let test_fmt_normalize_idempotent () =
  let _, once = run_cli [ "fmt"; plg "company.plg"; "--normalize" ] in
  let tmp = Filename.temp_file "fmt" ".plg" in
  let oc = open_out tmp in
  output_string oc once;
  close_out oc;
  let _, twice = run_cli [ "fmt"; tmp; "--normalize" ] in
  Sys.remove tmp;
  Alcotest.(check string) "fmt --normalize is idempotent" once twice

let suite =
  suite
  @ [
      Alcotest.test_case "fmt roundtrip" `Quick test_fmt_roundtrip;
      Alcotest.test_case "fmt normalize idempotent" `Quick
        test_fmt_normalize_idempotent;
    ]
