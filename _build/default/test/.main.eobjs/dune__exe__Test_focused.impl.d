test/test_focused.ml: Alcotest Helpers List Pathlog QCheck
