test/test_baseline.ml: Alcotest Format Helpers List Pathlog Printf QCheck
