test/test_cli.ml: Alcotest Filename Fun Helpers List Pathlog Printf String Syntax Sys
