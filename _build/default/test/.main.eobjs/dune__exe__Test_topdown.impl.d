test/test_topdown.ml: Alcotest Helpers List Pathlog Printf QCheck
