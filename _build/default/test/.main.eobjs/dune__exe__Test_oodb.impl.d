test/test_oodb.ml: Alcotest Format Fun Helpers List Oodb Pathlog QCheck
