test/test_engine.ml: Alcotest Array Format Helpers List Pathlog Printf QCheck String
