test/test_normalize.ml: Alcotest Helpers Pathlog QCheck Syntax
