test/test_more.ml: Alcotest Array Format Helpers List Pathlog Printf QCheck
