test/test_semantics.ml: Alcotest Array Helpers List Pathlog QCheck Syntax
