test/test_extensions.ml: Alcotest Format Helpers List Pathlog QCheck String Syntax
