test/test_syntax.ml: Alcotest Gen Helpers List Pathlog QCheck String Syntax
