test/test_provenance.ml: Alcotest Format Helpers List Oodb Pathlog QCheck
