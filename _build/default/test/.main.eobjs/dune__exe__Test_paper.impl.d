test/test_paper.ml: Alcotest Array Helpers List Pathlog
