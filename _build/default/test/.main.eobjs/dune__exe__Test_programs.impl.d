test/test_programs.ml: Alcotest Array Fun Helpers List Pathlog Sys
