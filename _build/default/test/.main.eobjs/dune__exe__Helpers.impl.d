test/helpers.ml: Alcotest Format List Pathlog Printf QCheck QCheck_alcotest String Syntax
