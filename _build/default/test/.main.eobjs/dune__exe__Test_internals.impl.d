test/test_internals.ml: Alcotest Format Helpers List Pathlog Syntax
