test/main.mli:
