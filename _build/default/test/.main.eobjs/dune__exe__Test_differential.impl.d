test/test_differential.ml: Alcotest Format Helpers List Pathlog Printf QCheck String
