test/test_coverage.ml: Alcotest Helpers List Pathlog String Syntax
