(* Shared helpers and QCheck generators for the PathLog test suite. *)

let check = Alcotest.check
let string_list = Alcotest.(list string)
let sorted_rows rows = List.sort_uniq compare rows

(* Load a program, evaluate, return it. *)
let load = Pathlog.load

(* Answers to a query, each row joined with ", ", sorted + deduplicated. *)
let answers p q =
  sorted_rows (List.map (String.concat ", ") (Pathlog.answers p q))

let check_answers msg p q expected =
  check string_list msg (List.sort_uniq compare expected) (answers p q)

let check_holds msg p q = Alcotest.(check bool) msg true (Pathlog.holds p q)

let check_fails msg p q = Alcotest.(check bool) msg false (Pathlog.holds p q)

let qtest = QCheck_alcotest.to_alcotest

(* naive substring test, sufficient for assertions on printed output *)
let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Random well-formed references.

   Generates names/vars/paths/filters/isa with scalar positions kept
   scalar, so every generated reference passes Definition 3. *)

let gen_name =
  QCheck.Gen.oneofl
    [ "a"; "b"; "c"; "kids"; "boss"; "color"; "age"; "city"; "emp"; "veh" ]

let gen_var = QCheck.Gen.oneofl [ "X"; "Y"; "Z"; "W" ]

let gen_reference ~allow_vars : Syntax.Ast.reference QCheck.Gen.t =
  let open QCheck.Gen in
  let base =
    if allow_vars then
      oneof
        [
          map (fun n -> Syntax.Ast.Name n) gen_name;
          map (fun v -> Syntax.Ast.Var v) gen_var;
          map (fun n -> Syntax.Ast.Int_lit n) (int_range 0 20);
        ]
    else
      oneof
        [
          map (fun n -> Syntax.Ast.Name n) gen_name;
          map (fun n -> Syntax.Ast.Int_lit n) (int_range 0 20);
        ]
  in
  (* scalar references only (set-valued ones are restricted by Definition 3;
     keeping everything scalar keeps generation simple and valid) *)
  let rec scalar n =
    if n <= 0 then base
    else
      frequency
        [
          (2, base);
          ( 2,
            map2
              (fun r m ->
                Syntax.Ast.Path
                  { p_recv = r; p_sep = Dot; p_meth = Name m; p_args = [] })
              (scalar (n - 1)) gen_name );
          ( 2,
            map3
              (fun r m rhs ->
                Syntax.Ast.Filter
                  {
                    f_recv = r;
                    f_meth = Name m;
                    f_args = [];
                    f_rhs = Rscalar rhs;
                  })
              (scalar (n - 1)) gen_name (scalar (n - 1)) );
          ( 1,
            map2
              (fun r c -> Syntax.Ast.Isa { recv = r; cls = Name c })
              (scalar (n - 1)) gen_name );
          ( 1,
            map2
              (fun r elems ->
                Syntax.Ast.Filter
                  {
                    f_recv = r;
                    f_meth = Name "kids";
                    f_args = [];
                    f_rhs = Rset_enum elems;
                  })
              (scalar (n - 1))
              (list_size (int_range 1 2) (scalar (n - 2))) );
          (1, map (fun r -> Syntax.Ast.Paren r) (scalar (n - 1)));
        ]
  in
  scalar 3

let arbitrary_reference ~allow_vars =
  QCheck.make
    ~print:(fun r -> Syntax.Pretty.reference_to_string r)
    (gen_reference ~allow_vars)

(* ------------------------------------------------------------------ *)
(* Random small fact bases over a fixed vocabulary, as program text. *)

let gen_fact_base : string QCheck.Gen.t =
  let open QCheck.Gen in
  let objs = [ "o1"; "o2"; "o3"; "o4"; "o5" ] in
  let classes = [ "ca"; "cb"; "cc" ] in
  let smeths = [ "boss"; "color"; "age" ] in
  let mmeths = [ "kids"; "friends" ] in
  let gen_stmt =
    frequency
      [
        ( 3,
          map3
            (fun m o r -> Printf.sprintf "%s[%s -> %s]." o m r)
            (oneofl smeths) (oneofl objs) (oneofl objs) );
        ( 3,
          map3
            (fun m o r -> Printf.sprintf "%s[%s ->> {%s}]." o m r)
            (oneofl mmeths) (oneofl objs) (oneofl objs) );
        ( 2,
          map2 (fun o c -> Printf.sprintf "%s : %s." o c) (oneofl objs)
            (oneofl classes) );
        ( 1,
          map2
            (fun c1 c2 -> Printf.sprintf "%s :: %s." c1 c2)
            (oneofl classes) (oneofl classes) );
      ]
  in
  map (String.concat "\n") (list_size (int_range 3 15) gen_stmt)

(* Scalar facts can conflict (same method, same receiver, two results) and
   class edges can form cycles; loading such a base raises. Generators
   filter those out by attempting the load. *)
let gen_loadable_base : Pathlog.program QCheck.Gen.t =
  let rec try_gen n st =
    let text = gen_fact_base st in
    match Pathlog.load text with
    | p -> p
    | exception _ -> if n <= 0 then Pathlog.load "" else try_gen (n - 1) st
  in
  fun st -> try_gen 10 st

let arbitrary_loadable_base =
  QCheck.make
    ~print:(fun p ->
      Format.asprintf "%a" Pathlog.Store.pp (Pathlog.Program.store p))
    gen_loadable_base
