(* Baseline languages (O2SQL, XSQL), the 2-D -> 1-D translation, and the
   workload generators. *)

open Helpers
module O2sql = Pathlog.O2sql
module Xsql = Pathlog.Xsql
module Translate = Pathlog.Translate
module Program = Pathlog.Program

let company_program ?(n = 40) () =
  let p = Program.create (Pathlog.Company.statements (Pathlog.Company.scaled n)) in
  ignore (Program.run p);
  p

(* paper query 1.1 *)
let q11 =
  {
    O2sql.select = [ "Z" ];
    ranges =
      [
        In_class ("X", "employee");
        In_path ("Y", { root = "X"; steps = [ "vehicles" ] });
      ];
    conds =
      [
        Member ("Y", "automobile");
        Eq ({ root = "Y"; steps = [ "color" ] }, Pvar "Z");
      ];
  }

(* paper query 1.4 *)
let q14 =
  {
    Xsql.select = [ "Z" ];
    ranges = [ ("employee", "X"); ("automobile", "Y") ];
    paths =
      [
        {
          root = Rvar "X";
          steps =
            [
              { meth = "vehicles"; selector = Some (Svar "Y") };
              { meth = "color"; selector = Some (Svar "Z") };
            ];
        };
        {
          root = Rvar "Y";
          steps = [ { meth = "cylinders"; selector = Some (Sint 4) } ];
        };
      ];
  }

let pathlog_colors p reference =
  let a = Program.query_string p reference in
  (* project the Z column *)
  let zi =
    match List.mapi (fun i c -> (c, i)) a.columns with
    | l -> List.assoc "Z" l
  in
  sorted_rows (List.map (fun row -> [ List.nth row zi ]) a.rows)

let test_o2sql_vs_pathlog () =
  let p = company_program () in
  let store = Program.store p in
  let o2 = sorted_rows (O2sql.eval store q11) in
  let pl = pathlog_colors p "X : employee..vehicles : automobile.color[Z]" in
  Alcotest.(check (list (list int))) "1.1: O2SQL = PathLog" pl o2

let test_o2sql_translation () =
  let p = company_program () in
  let store = Program.store p in
  let lits = O2sql.to_pathlog q11 in
  let q = Pathlog.Flatten.literals store lits in
  let via_translation =
    sorted_rows
      (List.map
         (fun row -> [ List.nth row 2 ])
         (Pathlog.Solve.named_solutions store q))
  in
  Alcotest.(check (list (list int)))
    "translated query agrees" via_translation
    (sorted_rows (O2sql.eval store q11))

let test_xsql_vs_pathlog () =
  let p = company_program () in
  let store = Program.store p in
  let xs = sorted_rows (Xsql.eval store q14) in
  let pl =
    pathlog_colors p
      "X : employee..vehicles : automobile[cylinders -> 4].color[Z]"
  in
  Alcotest.(check (list (list int))) "1.4 = 2.1" pl xs

let test_xsql_pp () =
  let text = Format.asprintf "%a" Xsql.pp q14 in
  Alcotest.(check bool) "mentions selector" true (contains ~sub:"[Y]" text);
  Alcotest.(check bool) "mentions ranges" true (contains ~sub:"employee X" text)

let test_o2sql_pp () =
  let text = Format.asprintf "%a" O2sql.pp q11 in
  Alcotest.(check bool) "select" true (contains ~sub:"SELECT Z" text);
  Alcotest.(check bool) "in-path range" true (contains ~sub:"X.vehicles" text)

let test_translation_text_and_count () =
  let p = company_program ~n:10 () in
  let store = Program.store p in
  let r =
    Pathlog.Parser.reference
      "X : employee..vehicles : automobile[cylinders -> 4].color[Z]"
  in
  Alcotest.(check int) "six conjuncts" 6 (Translate.conjunct_count store r);
  let text = Translate.to_xsql_text store ~select:[ "Z" ] r in
  Alcotest.(check bool) "mentions employee" true (contains ~sub:"IN employee" text);
  Alcotest.(check bool) "mentions cylinders" true (contains ~sub:"cylinders" text)

let test_conjunct_count_nested () =
  let p = load "x[m -> y]." in
  let store = Program.store p in
  let count src =
    Translate.conjunct_count store (Pathlog.Parser.reference src)
  in
  Alcotest.(check int) "plain name" 0 (count "x");
  Alcotest.(check int) "subset counts inner" 2
    (count "p2[friends ->> p1..assistants]")

(* differential: O2SQL evaluated natively = its PathLog translation, on
   random company databases *)
let o2sql_matches_translation =
  QCheck.Test.make ~name:"O2SQL native = PathLog translation" ~count:10
    QCheck.(int_range 1 1000)
    (fun seed ->
      let cfg = { (Pathlog.Company.scaled 25) with seed } in
      let p = Program.create (Pathlog.Company.statements cfg) in
      ignore (Program.run p);
      let store = Program.store p in
      let native = sorted_rows (O2sql.eval store q11) in
      let q = Pathlog.Flatten.literals store (O2sql.to_pathlog q11) in
      let translated =
        sorted_rows
          (List.map
             (fun row -> [ List.nth row 2 ])
             (Pathlog.Solve.named_solutions store q))
      in
      native = translated)

(* ------------------------------------------------------------------ *)
(* Workloads *)

let test_company_deterministic () =
  let a = Pathlog.Company.statements Pathlog.Company.default in
  let b = Pathlog.Company.statements Pathlog.Company.default in
  Alcotest.(check bool) "same statements" true (a = b);
  let c =
    Pathlog.Company.statements { Pathlog.Company.default with seed = 43 }
  in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_company_census () =
  let cfg = Pathlog.Company.scaled 50 in
  let census = Pathlog.Company.census cfg in
  Alcotest.(check int) "employees" 50 census.n_employees;
  Alcotest.(check bool) "vehicles exist" true (census.n_vehicles > 0);
  Alcotest.(check bool)
    "automobiles are a subset" true
    (census.n_automobiles <= census.n_vehicles);
  (* census matches the loaded store *)
  let p = Program.create (Pathlog.Company.statements cfg) in
  ignore (Program.run p);
  let members cls =
    List.length (answers p (Printf.sprintf "X : %s" cls))
  in
  Alcotest.(check int) "vehicles in store" census.n_vehicles
    (members "vehicle" - 1)
  (* minus the class object [automobile], which is a member of vehicle *)

let test_company_planted_witness () =
  let p = company_program () in
  check_answers "manager query has its witness" p
    "X : manager..vehicles[color -> red].producedBy[city -> city1; \
     president -> X]"
    [ "m1" ]

let test_genealogy_shapes () =
  Alcotest.(check int) "chain size" 11
    (Pathlog.Genealogy.size (Chain 10));
  Alcotest.(check int) "tree size" 15
    (Pathlog.Genealogy.size (Binary_tree 3));
  let closure = Pathlog.Genealogy.closure (Chain 3) in
  Alcotest.(check (list (list int)))
    "chain closure"
    [ [ 1; 2; 3 ]; [ 2; 3 ]; [ 3 ]; [] ]
    (List.map snd closure)

let test_genealogy_tree_closure () =
  let closure = Pathlog.Genealogy.closure (Binary_tree 2) in
  (* root of a depth-2 tree has all other 6 nodes as descendants *)
  Alcotest.(check (list int)) "root descendants" [ 1; 2; 3; 4; 5; 6 ]
    (List.assoc 0 closure)

let test_graph_chain () =
  let stmts = Pathlog.Graph.scalar_chain ~name:"n" ~length:5 in
  let p = Program.create stmts in
  ignore (Program.run p);
  check_answers "navigate chain" p "n0.next.next.next[X]" [ "n3" ]

let test_graph_dag () =
  let stmts = Pathlog.Graph.layered_dag ~layers:3 ~width:4 ~fanout:2 ~seed:5 in
  let p = Program.create stmts in
  ignore (Program.run p);
  Alcotest.(check bool) "dag navigable" true
    (answers p "node_0_0..to..to[X]" <> [])

let suite =
  [
    Alcotest.test_case "O2SQL vs PathLog (1.1)" `Quick test_o2sql_vs_pathlog;
    Alcotest.test_case "O2SQL translation" `Quick test_o2sql_translation;
    Alcotest.test_case "XSQL vs PathLog (1.4 = 2.1)" `Quick
      test_xsql_vs_pathlog;
    Alcotest.test_case "XSQL pp" `Quick test_xsql_pp;
    Alcotest.test_case "O2SQL pp" `Quick test_o2sql_pp;
    Alcotest.test_case "translation text and count" `Quick
      test_translation_text_and_count;
    Alcotest.test_case "conjunct count nested" `Quick
      test_conjunct_count_nested;
    qtest o2sql_matches_translation;
    Alcotest.test_case "company deterministic" `Quick
      test_company_deterministic;
    Alcotest.test_case "company census" `Quick test_company_census;
    Alcotest.test_case "company planted witness" `Quick
      test_company_planted_witness;
    Alcotest.test_case "genealogy shapes" `Quick test_genealogy_shapes;
    Alcotest.test_case "genealogy tree closure" `Quick
      test_genealogy_tree_closure;
    Alcotest.test_case "graph chain" `Quick test_graph_chain;
    Alcotest.test_case "graph dag" `Quick test_graph_dag;
  ]
