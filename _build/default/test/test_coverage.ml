(* Remaining behavioural corners: valuation cartesian products, the
   production engine under conflicts, topdown statistics, lexer line
   accounting, normalisation of rules, Entail conjunctions, Randprog
   determinism. *)

open Helpers
module Program = Pathlog.Program
module Valuation = Pathlog.Valuation
module Production = Pathlog.Production

(* ------------------------------------------------------------------ *)
(* Valuation: cartesian products over set-valued sub-references *)

let test_valuation_set_method_position () =
  (* the method position itself can be set valued in a path *)
  let p =
    load
      {|
      box[methods ->> {a, b}].
      x[a -> r1]. x[b -> r2].
      |}
  in
  (* x.(box..methods): apply every method in the set *)
  check_answers "set-valued method position" p "x.(box..methods)[R]"
    [ "r1"; "r2" ]

let test_valuation_multiple_set_args () =
  let p =
    load
      {|
      t[pair@(a, c) -> ac]. t[pair@(a, d) -> ad].
      t[pair@(b, c) -> bc]. t[pair@(b, d) -> bd].
      s1[members ->> {a, b}]. s2[members ->> {c, d}].
      |}
  in
  (* both argument positions range over sets: full cartesian product *)
  check_answers "cartesian product of arguments" p
    "t.pair@(s1..members, s2..members)[R]"
    [ "ac"; "ad"; "bc"; "bd" ]

let test_entail_literals_conjunction () =
  let p = load "x[a -> 1]. x[b -> 2]." in
  let store = Program.store p in
  let env = Valuation.Env.empty in
  Alcotest.(check bool) "both hold" true
    (Pathlog.Entail.literals store env
       (Pathlog.Parser.literals "x[a -> 1], x[b -> 2]"));
  Alcotest.(check bool) "one fails" false
    (Pathlog.Entail.literals store env
       (Pathlog.Parser.literals "x[a -> 1], x[b -> 3]"));
  Alcotest.(check bool) "negation flips" true
    (Pathlog.Entail.literals store env
       (Pathlog.Parser.literals "x[a -> 1], not x[b -> 3]"))

(* ------------------------------------------------------------------ *)
(* Production engine corners *)

let test_production_conflict_surfaces () =
  let p = load "a : t. b : t." in
  let eng =
    Production.create (Program.store p)
      [
        {
          p_name = "clash";
          condition = Pathlog.Parser.literals "X : t";
          actions = [ Assert (Pathlog.Parser.reference "out[v -> X]") ];
          priority = 0;
        };
      ]
  in
  (* first firing sets out.v; the second must conflict *)
  match Production.run eng with
  | exception Pathlog.Err.Functional_conflict _ -> ()
  | _ -> Alcotest.fail "expected a functional conflict from the second firing"

let test_production_multiple_actions () =
  let p = load "a : t." in
  let eng =
    Production.create (Program.store p)
      [
        {
          p_name = "multi";
          condition = Pathlog.Parser.literals "X : t";
          actions =
            [
              Assert (Pathlog.Parser.reference "X : seen");
              Assert (Pathlog.Parser.reference "X[count -> 1]");
              Message "done";
            ];
          priority = 0;
        };
      ]
  in
  Alcotest.(check int) "one firing" 1 (Production.run eng);
  check_holds "first action" p "a : seen";
  check_holds "second action" p "a[count -> 1]";
  Alcotest.(check int) "message + firing logged" 2
    (List.length (Production.log eng))

let test_production_declaration_order_tiebreak () =
  let p = load "t : trigger." in
  let eng =
    Production.create (Program.store p)
      [
        {
          p_name = "first";
          condition = Pathlog.Parser.literals "t : trigger";
          actions = [ Message "first" ];
          priority = 1;
        };
        {
          p_name = "second";
          condition = Pathlog.Parser.literals "t : trigger";
          actions = [ Message "second" ];
          priority = 1;
        };
      ]
  in
  ignore (Production.run eng);
  let messages =
    List.filter_map (fun (e : Production.event) -> e.e_message)
      (Production.log eng)
  in
  Alcotest.(check (list string)) "declaration order breaks ties"
    [ "first"; "second" ] messages

(* ------------------------------------------------------------------ *)
(* Topdown corners *)

let test_topdown_edb_only () =
  (* no rules at all: the query runs straight off the store *)
  let p = Program.of_string "a[r ->> {b}]. b[r ->> {c}]." in
  match Program.query_topdown p (Pathlog.Parser.literals "a[r ->> {X}]") with
  | Some (answer, stats) ->
    Alcotest.(check int) "one answer" 1 (List.length answer.rows);
    Alcotest.(check int) "no goals needed" 0 stats.goals
  | None -> Alcotest.fail "EDB query should be applicable"

let test_topdown_ground_query () =
  let p =
    Program.of_string
      {|
      a[kids ->> {b}]. b[kids ->> {c}].
      X[desc ->> {Y}] <- X[kids ->> {Y}].
      X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
      |}
  in
  (match Program.query_topdown p (Pathlog.Parser.literals "a[desc ->> {c}]") with
  | Some (answer, _) ->
    Alcotest.(check int) "ground yes" 1 (List.length answer.rows)
  | None -> Alcotest.fail "applicable");
  match Program.query_topdown p (Pathlog.Parser.literals "c[desc ->> {a}]") with
  | Some (answer, _) ->
    Alcotest.(check int) "ground no" 0 (List.length answer.rows)
  | None -> Alcotest.fail "applicable"

let test_topdown_result_bound_pattern () =
  (* query with the result bound and the receiver open: who contains c? *)
  let p =
    Program.of_string
      {|
      a[kids ->> {b}]. b[kids ->> {c}].
      X[desc ->> {Y}] <- X[kids ->> {Y}].
      X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
      |}
  in
  match Program.query_topdown p (Pathlog.Parser.literals "X[desc ->> {c}]") with
  | Some (answer, _) ->
    Alcotest.(check int) "two ancestors" 2 (List.length answer.rows)
  | None -> Alcotest.fail "applicable"

(* ------------------------------------------------------------------ *)
(* Lexer/parser positions *)

let test_lexer_lines_across_strings () =
  match Pathlog.Parser.program "x[a -> \"line\nbreak\"].\ny[b !" with
  | exception Pathlog.Parser.Error (pos, _) ->
    (* the error is on the line after the two-line string *)
    Alcotest.(check int) "line number" 3 pos.line
  | _ -> Alcotest.fail "expected a parse error"

let test_parser_error_position_column () =
  match Pathlog.Parser.statement "x[a -> ]." with
  | exception Pathlog.Parser.Error (pos, _) ->
    Alcotest.(check int) "column of ']'" 8 pos.col
  | _ -> Alcotest.fail "expected a parse error"

(* ------------------------------------------------------------------ *)
(* Normalisation of rules and statements *)

let test_normalize_rule () =
  let r src =
    match Pathlog.Parser.statement src with
    | Syntax.Ast.Rule r -> r
    | Syntax.Ast.Query _ -> Alcotest.fail "rule expected"
  in
  let n1 =
    Pathlog.Normalize.rule (r "X[d ->> {Y}] <- (X)[b -> 2][a -> 1].")
  in
  let n2 = Pathlog.Normalize.rule (r "X[d ->> {Y}] <- X[a -> 1; b -> 2].") in
  Alcotest.(check bool) "rule bodies normalise equal" true
    (n1 = n2)

let test_normalized_program_same_model () =
  (* normalising every rule preserves the computed model *)
  let text =
    {|
    peter[kids ->> {tim}]. tim[kids ->> {sally}].
    X[desc ->> {Y}] <- (X)[kids ->> {Y}].
    X[desc ->> {Y}] <- X..desc.self[kids ->> {Y}].
    |}
  in
  let p1 = load text in
  let statements = Program.statements p1 in
  let normalized =
    List.map
      (function
        | Syntax.Ast.Rule r -> Syntax.Ast.Rule (Pathlog.Normalize.rule r)
        | Syntax.Ast.Query q -> Syntax.Ast.Query q)
      statements
  in
  let p2 = Program.create normalized in
  ignore (Program.run p2);
  let lines p =
    Program.dump_model p |> String.split_on_char '\n'
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "same model" (lines p1) (lines p2)

(* ------------------------------------------------------------------ *)
(* Random program generator *)

let test_randprog_deterministic () =
  let a = Pathlog.Randprog.generate Pathlog.Randprog.default in
  let b = Pathlog.Randprog.generate Pathlog.Randprog.default in
  Alcotest.(check string) "same seed same program" a b;
  let c =
    Pathlog.Randprog.generate { Pathlog.Randprog.default with seed = 2 }
  in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_randprog_parses () =
  for seed = 1 to 50 do
    let text =
      Pathlog.Randprog.generate { Pathlog.Randprog.default with seed }
    in
    match Pathlog.Parser.program text with
    | _ -> ()
    | exception Pathlog.Parser.Error (pos, msg) ->
      Alcotest.failf "seed %d unparsable at %a: %s\n%s" seed
        Pathlog.Token.pp_pos pos msg text
  done

let suite =
  [
    Alcotest.test_case "set-valued method position" `Quick
      test_valuation_set_method_position;
    Alcotest.test_case "multiple set args" `Quick
      test_valuation_multiple_set_args;
    Alcotest.test_case "entail conjunction" `Quick
      test_entail_literals_conjunction;
    Alcotest.test_case "production conflict surfaces" `Quick
      test_production_conflict_surfaces;
    Alcotest.test_case "production multiple actions" `Quick
      test_production_multiple_actions;
    Alcotest.test_case "production declaration tiebreak" `Quick
      test_production_declaration_order_tiebreak;
    Alcotest.test_case "topdown EDB only" `Quick test_topdown_edb_only;
    Alcotest.test_case "topdown ground query" `Quick test_topdown_ground_query;
    Alcotest.test_case "topdown result-bound pattern" `Quick
      test_topdown_result_bound_pattern;
    Alcotest.test_case "lexer lines across strings" `Quick
      test_lexer_lines_across_strings;
    Alcotest.test_case "parser error column" `Quick
      test_parser_error_position_column;
    Alcotest.test_case "normalize rule" `Quick test_normalize_rule;
    Alcotest.test_case "normalized program same model" `Quick
      test_normalized_program_same_model;
    Alcotest.test_case "randprog deterministic" `Quick
      test_randprog_deterministic;
    Alcotest.test_case "randprog parses" `Quick test_randprog_parses;
  ]

(* appended: anonymous variables *)

let test_anonymous_variables () =
  let p =
    load
      {|
      a[kids ->> {b}]. b[kids ->> {c}]. lone : person.
      X : parent <- X[kids ->> {Y}].
      |}
  in
  (* each _ is independent; the query has one named column *)
  let answer =
    Program.query_string p "X[kids ->> {_}], _[kids ->> {c}]"
  in
  Alcotest.(check (list string)) "only X named" [ "X" ] answer.columns;
  (* X in {a, b} (has kids), second _ must be b: both a and b qualify *)
  Alcotest.(check int) "both parents" 2 (List.length answer.rows);
  (* with a SHARED variable instead, only b[kids->>{c}] and b[kids->>{..}]
     coincide *)
  let shared = Program.query_string p "X[kids ->> {W}], W[kids ->> {c}]" in
  Alcotest.(check int) "shared variable restricts" 1 (List.length shared.rows)

let test_anonymous_rejected_in_head () =
  (match Program.of_string "x[a -> _] <- x : c." with
  | exception Program.Invalid msg ->
    Alcotest.(check bool) "mentions anonymous" true
      (contains ~sub:"anonymous" msg)
  | _ -> Alcotest.fail "anonymous head must be rejected");
  match Program.of_string "ok : t <- x : c, not x[a -> _]." with
  | exception Program.Invalid _ -> ()
  | _ -> Alcotest.fail "anonymous under not must be rejected"

let test_anonymous_in_body_ok () =
  let p =
    load
      {|
      a[kids ->> {b}]. lone : person.
      X : parent <- X[kids ->> {_}].
      |}
  in
  check_answers "parent via anonymous" p "X : parent" [ "a" ]

let suite =
  suite
  @ [
      Alcotest.test_case "anonymous variables" `Quick
        test_anonymous_variables;
      Alcotest.test_case "anonymous rejected in head/not" `Quick
        test_anonymous_rejected_in_head;
      Alcotest.test_case "anonymous in body" `Quick test_anonymous_in_body_ok;
    ]
