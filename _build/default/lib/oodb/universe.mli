(** The universe [U] of objects and the naming function [I_N].

    Following section 3 of the paper, the set of names [N] contains symbolic
    names, integers and strings; [I_N : N -> U] maps each name to an object.
    We intern names so that [I_N] is injective on the extensional part —
    distinct names denote distinct objects — which yields the Herbrand-style
    structures the bottom-up evaluation computes. Virtual objects created by
    rules (section 6) are skolem objects: they carry the method application
    that denotes them but no name. *)

type t

type descriptor =
  | Name of string  (** symbolic name, e.g. [employee], [john] *)
  | Int of int  (** integer value-object *)
  | Str of string  (** string value-object *)
  | Skolem of skolem  (** virtual object (section 6) *)

and skolem = {
  meth : Obj_id.t;  (** the method whose application denotes the object *)
  recv : Obj_id.t;  (** the receiver *)
  args : Obj_id.t list;  (** the argument objects *)
  ordinal : int;  (** creation rank, for stable printing *)
}

val create : unit -> t

(** Number of objects allocated so far. Ids are dense in [0..card-1]. *)
val cardinality : t -> int

(** [name u s] interns the symbolic name [s]; idempotent. *)
val name : t -> string -> Obj_id.t

(** [int u n] interns the integer value-object [n]. *)
val int : t -> int -> Obj_id.t

(** [str u s] interns the string value-object [s]. *)
val str : t -> string -> Obj_id.t

(** [find_name u s] is the object named [s], if already interned. *)
val find_name : t -> string -> Obj_id.t option

(** [skolem u ~meth ~recv ~args] returns the virtual object denoted by the
    scalar method application [recv.meth@(args)], creating it on first use.
    Deterministic: the same application always yields the same object. *)
val skolem : t -> meth:Obj_id.t -> recv:Obj_id.t -> args:Obj_id.t list -> Obj_id.t

(** Objects created by {!skolem}, in creation order. *)
val skolems : t -> Obj_id.t list

val descriptor : t -> Obj_id.t -> descriptor

val is_skolem : t -> Obj_id.t -> bool

(** Print an object the way the paper writes it: names bare, strings quoted,
    skolems as the path that denotes them, e.g. [p1.boss]. *)
val pp_obj : t -> Format.formatter -> Obj_id.t -> unit

(** [to_string u o] is {!pp_obj} rendered to a string. *)
val to_string : t -> Obj_id.t -> string

(** Iterate over all objects in id order. *)
val iter : t -> (Obj_id.t -> descriptor -> unit) -> unit
