type mentry = { recv : Obj_id.t; args : Obj_id.t list; res : Obj_id.t }

type scalar_insert = Added | Duplicate | Conflict of Obj_id.t
type set_insert = SAdded | SDuplicate
type isa_insert = IAdded | IDuplicate | ICycle

type mkey = Obj_id.t * Obj_id.t * Obj_id.t list (* meth, recv, args *)

type t = {
  universe : Universe.t;
  (* class hierarchy: direct edges of the partial order, both directions *)
  parents : Obj_id.Set.t Obj_id.Tbl.t;
  children : Obj_id.Set.t Obj_id.Tbl.t;
  isa_log : (Obj_id.t * Obj_id.t) Vec.t;
  mutable class_list : Obj_id.t list;
  class_seen : unit Obj_id.Tbl.t;
  (* memoized closures, invalidated whenever an edge is added *)
  up_cache : Obj_id.Set.t Obj_id.Tbl.t;
  down_cache : Obj_id.Set.t Obj_id.Tbl.t;
  (* scalar methods *)
  scalar : (mkey, Obj_id.t) Hashtbl.t;
  scalar_buckets : mentry Vec.t Obj_id.Tbl.t;
  scalar_inv : ((Obj_id.t * Obj_id.t), mentry Vec.t) Hashtbl.t;
  mutable scalar_meth_list : Obj_id.t list;
  (* set-valued methods *)
  set_members : (mkey, Obj_id.Set.t ref) Hashtbl.t;
  set_buckets : mentry Vec.t Obj_id.Tbl.t;
  set_inv : ((Obj_id.t * Obj_id.t), mentry Vec.t) Hashtbl.t;
  mutable set_meth_list : Obj_id.t list;
}

let create () =
  {
    universe = Universe.create ();
    parents = Obj_id.Tbl.create 64;
    children = Obj_id.Tbl.create 64;
    isa_log = Vec.create ();
    class_list = [];
    class_seen = Obj_id.Tbl.create 16;
    up_cache = Obj_id.Tbl.create 64;
    down_cache = Obj_id.Tbl.create 64;
    scalar = Hashtbl.create 256;
    scalar_buckets = Obj_id.Tbl.create 32;
    scalar_inv = Hashtbl.create 256;
    scalar_meth_list = [];
    set_members = Hashtbl.create 256;
    set_buckets = Obj_id.Tbl.create 32;
    set_inv = Hashtbl.create 256;
    set_meth_list = [];
  }

let universe st = st.universe
let name st s = Universe.name st.universe s
let int st n = Universe.int st.universe n
let str st s = Universe.str st.universe s

(* ------------------------------------------------------------------ *)
(* Class hierarchy                                                     *)

let direct tbl o =
  match Obj_id.Tbl.find_opt tbl o with Some s -> s | None -> Obj_id.Set.empty

(* Reachability closure along [tbl] (parents for ancestors, children for
   descendants), excluding the start object itself unless reachable via a
   cycle — which add_isa prevents. *)
let closure cache tbl o =
  match Obj_id.Tbl.find_opt cache o with
  | Some s -> s
  | None ->
    let visited = ref Obj_id.Set.empty in
    let rec go x =
      let nexts = direct tbl x in
      Obj_id.Set.iter
        (fun n ->
          if not (Obj_id.Set.mem n !visited) then begin
            visited := Obj_id.Set.add n !visited;
            go n
          end)
        nexts
    in
    go o;
    let s = !visited in
    Obj_id.Tbl.add cache o s;
    s

let classes_of st o = closure st.up_cache st.parents o
let members st c = closure st.down_cache st.children c

(* The value classes [integer] and [string] are built in: every integer
   value-object is a member of [integer], every string value-object of
   [string]. They hold for membership tests but are not enumerable. *)
let builtin_member st o c =
  match Universe.descriptor st.universe c with
  | Name "integer" -> (
    match Universe.descriptor st.universe o with
    | Int _ -> true
    | Name _ | Str _ | Skolem _ -> false)
  | Name "string" -> (
    match Universe.descriptor st.universe o with
    | Str _ -> true
    | Name _ | Int _ | Skolem _ -> false)
  | Name _ | Int _ | Str _ | Skolem _ -> false

(* Strict: an object is not a member of itself. The paper's single
   hierarchy relation is formally a partial order (hence reflexive), but
   reflexive membership carries no information and would make every class
   a member of itself in query answers; we implement the strict part
   uniformly for tests and enumeration (see DESIGN.md). *)
let is_member st o c =
  builtin_member st o c || Obj_id.Set.mem c (classes_of st o)

let add_isa st o c =
  if Obj_id.equal o c then IDuplicate
  else if Obj_id.Set.mem c (direct st.parents o) then IDuplicate
  else if is_member st c o then ICycle
  else begin
    Obj_id.Tbl.replace st.parents o (Obj_id.Set.add c (direct st.parents o));
    Obj_id.Tbl.replace st.children c (Obj_id.Set.add o (direct st.children c));
    Vec.push st.isa_log (o, c);
    if not (Obj_id.Tbl.mem st.class_seen c) then begin
      Obj_id.Tbl.add st.class_seen c ();
      st.class_list <- c :: st.class_list
    end;
    Obj_id.Tbl.reset st.up_cache;
    Obj_id.Tbl.reset st.down_cache;
    IAdded
  end

let isa_log st = st.isa_log
let known_classes st = List.rev st.class_list

(* ------------------------------------------------------------------ *)
(* Method tables                                                       *)

let empty_bucket = Vec.create ()

let bucket tbl meth =
  match Obj_id.Tbl.find_opt tbl meth with
  | Some v -> v
  | None ->
    let v = Vec.create () in
    Obj_id.Tbl.add tbl meth v;
    v

let inv_bucket tbl key =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = Vec.create () in
    Hashtbl.add tbl key v;
    v

let add_scalar st ~meth ~recv ~args ~res =
  let key = (meth, recv, args) in
  match Hashtbl.find_opt st.scalar key with
  | Some existing ->
    if Obj_id.equal existing res then Duplicate else Conflict existing
  | None ->
    Hashtbl.add st.scalar key res;
    let entry = { recv; args; res } in
    let b = bucket st.scalar_buckets meth in
    if Vec.length b = 0 then st.scalar_meth_list <- meth :: st.scalar_meth_list;
    Vec.push b entry;
    Vec.push (inv_bucket st.scalar_inv (meth, res)) entry;
    Added

let scalar_lookup st ~meth ~recv ~args =
  Hashtbl.find_opt st.scalar (meth, recv, args)

let scalar_bucket st meth =
  match Obj_id.Tbl.find_opt st.scalar_buckets meth with
  | Some v -> v
  | None -> empty_bucket

let scalar_inverse st ~meth ~res =
  match Hashtbl.find_opt st.scalar_inv (meth, res) with
  | Some v -> v
  | None -> empty_bucket

let scalar_meths st = List.rev st.scalar_meth_list

let add_set st ~meth ~recv ~args ~res =
  let key = (meth, recv, args) in
  let set =
    match Hashtbl.find_opt st.set_members key with
    | Some r -> r
    | None ->
      let r = ref Obj_id.Set.empty in
      Hashtbl.add st.set_members key r;
      r
  in
  if Obj_id.Set.mem res !set then SDuplicate
  else begin
    set := Obj_id.Set.add res !set;
    let entry = { recv; args; res } in
    let b = bucket st.set_buckets meth in
    if Vec.length b = 0 then st.set_meth_list <- meth :: st.set_meth_list;
    Vec.push b entry;
    Vec.push (inv_bucket st.set_inv (meth, res)) entry;
    SAdded
  end

let set_lookup st ~meth ~recv ~args =
  match Hashtbl.find_opt st.set_members (meth, recv, args) with
  | Some r -> !r
  | None -> Obj_id.Set.empty

let set_bucket st meth =
  match Obj_id.Tbl.find_opt st.set_buckets meth with
  | Some v -> v
  | None -> empty_bucket

let set_inverse st ~meth ~res =
  match Hashtbl.find_opt st.set_inv (meth, res) with
  | Some v -> v
  | None -> empty_bucket

let set_meths st = List.rev st.set_meth_list

(* ------------------------------------------------------------------ *)
(* Statistics and printing                                             *)

type stats = {
  objects : int;
  isa_edges : int;
  scalar_tuples : int;
  set_tuples : int;
}

let stats st =
  let count_buckets tbl =
    Obj_id.Tbl.fold (fun _ v acc -> acc + Vec.length v) tbl 0
  in
  {
    objects = Universe.cardinality st.universe;
    isa_edges = Vec.length st.isa_log;
    scalar_tuples = count_buckets st.scalar_buckets;
    set_tuples = count_buckets st.set_buckets;
  }

let check_invariants st =
  let problems = ref [] in
  let problem fmt =
    Format.kasprintf (fun m -> problems := m :: !problems) fmt
  in
  let obj = Universe.to_string st.universe in
  (* scalar: primary table vs buckets, both directions, and inverse *)
  let scalar_bucket_count = ref 0 in
  List.iter
    (fun m ->
      Vec.iter
        (fun { recv; args; res } ->
          incr scalar_bucket_count;
          (match Hashtbl.find_opt st.scalar (m, recv, args) with
          | Some res' when Obj_id.equal res res' -> ()
          | Some _ ->
            problem "scalar bucket entry disagrees with primary: %s.%s"
              (obj recv) (obj m)
          | None ->
            problem "scalar bucket entry missing from primary: %s.%s"
              (obj recv) (obj m));
          let inv =
            match Hashtbl.find_opt st.scalar_inv (m, res) with
            | Some v -> v
            | None -> empty_bucket
          in
          if
            not
              (Vec.exists
                 (fun e ->
                   Obj_id.equal e.recv recv && e.args = args
                   && Obj_id.equal e.res res)
                 inv)
          then
            problem "scalar entry missing from inverse index: %s.%s"
              (obj recv) (obj m))
        (scalar_bucket st m))
    (scalar_meths st);
  if Hashtbl.length st.scalar <> !scalar_bucket_count then
    problem "scalar primary has %d entries but buckets have %d"
      (Hashtbl.length st.scalar) !scalar_bucket_count;
  (* set methods: buckets vs member sets *)
  let set_bucket_count = ref 0 in
  List.iter
    (fun m ->
      Vec.iter
        (fun { recv; args; res } ->
          incr set_bucket_count;
          if not (Obj_id.Set.mem res (set_lookup st ~meth:m ~recv ~args))
          then
            problem "set bucket entry missing from member set: %s..%s"
              (obj recv) (obj m))
        (set_bucket st m))
    (set_meths st);
  let member_total =
    Hashtbl.fold (fun _ s acc -> acc + Obj_id.Set.cardinal !s) st.set_members 0
  in
  if member_total <> !set_bucket_count then
    problem "set member sets hold %d elements but buckets have %d"
      member_total !set_bucket_count;
  (* hierarchy: log vs adjacency (both directions), acyclicity *)
  Vec.iter
    (fun (o, c) ->
      if not (Obj_id.Set.mem c (direct st.parents o)) then
        problem "isa log edge missing from parents: %s : %s" (obj o) (obj c);
      if not (Obj_id.Set.mem o (direct st.children c)) then
        problem "isa log edge missing from children: %s : %s" (obj o) (obj c))
    st.isa_log;
  let edge_count =
    Obj_id.Tbl.fold
      (fun _ s acc -> acc + Obj_id.Set.cardinal s)
      st.parents 0
  in
  if edge_count <> Vec.length st.isa_log then
    problem "parents adjacency has %d edges but the log has %d" edge_count
      (Vec.length st.isa_log);
  Obj_id.Tbl.iter
    (fun o _ ->
      if Obj_id.Set.mem o (classes_of st o) then
        problem "hierarchy cycle through %s" (obj o))
    st.parents;
  List.rev !problems

let pp ppf st =
  let u = st.universe in
  let obj = Universe.pp_obj u in
  Vec.iter
    (fun (o, c) -> Format.fprintf ppf "%a : %a.@." obj o obj c)
    st.isa_log;
  let pp_args ppf = function
    | [] -> ()
    | args ->
      Format.fprintf ppf "@(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           obj)
        args
  in
  List.iter
    (fun m ->
      Vec.iter
        (fun { recv; args; res } ->
          Format.fprintf ppf "%a[%a%a -> %a].@." obj recv obj m pp_args args
            obj res)
        (scalar_bucket st m))
    (scalar_meths st);
  List.iter
    (fun m ->
      Vec.iter
        (fun { recv; args; res } ->
          Format.fprintf ppf "%a[%a%a ->> {%a}].@." obj recv obj m pp_args args
            obj res)
        (set_bucket st m))
    (set_meths st)
