lib/oodb/obj_id.mli: Format Hashtbl Map Set
