lib/oodb/vec.ml: Array List
