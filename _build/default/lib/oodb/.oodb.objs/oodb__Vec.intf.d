lib/oodb/vec.mli:
