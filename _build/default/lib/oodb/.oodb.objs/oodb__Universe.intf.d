lib/oodb/universe.mli: Format Obj_id
