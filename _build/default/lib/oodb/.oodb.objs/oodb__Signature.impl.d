lib/oodb/signature.ml: Format List Obj_id Store Universe Vec
