lib/oodb/store.mli: Format Obj_id Universe Vec
