lib/oodb/store.ml: Format Hashtbl List Obj_id Universe Vec
