lib/oodb/obj_id.ml: Format Hashtbl Int Map Set
