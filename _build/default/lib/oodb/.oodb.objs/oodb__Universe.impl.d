lib/oodb/universe.ml: Format Hashtbl Obj_id Vec
