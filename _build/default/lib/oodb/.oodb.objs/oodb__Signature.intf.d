lib/oodb/signature.mli: Format Obj_id Store
