(** Object identities.

    Every element of the universe — named objects, integers, strings,
    classes, methods and skolem (virtual) objects alike — is referred to by a
    dense integer id allocated by {!Universe}. Classes and methods are
    ordinary objects, exactly as in the paper (section 3). *)

type t = int

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t

module Map : Map.S with type key = t

module Tbl : Hashtbl.S with type key = t
