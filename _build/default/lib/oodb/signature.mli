(** Method signatures and type checking.

    Section 2 of the paper argues that referencing virtual objects through
    methods (rather than function symbols) lets the signature-based typing of
    [KLW93] apply to them unchanged. A signature

    {v  employee[salary@(integer) => integer]    (scalar)
        employee[vehicles =>> vehicle]           (set valued) v}

    states that applying the method to a member of the class, with arguments
    that are members of the argument classes, yields a member of the result
    class. Signatures are inherited downwards along the class hierarchy. *)

type scalarity = Scalar | Set_valued

type entry = {
  cls : Obj_id.t;  (** receiver class *)
  meth : Obj_id.t;
  arg_classes : Obj_id.t list;
  result_class : Obj_id.t;
  scalarity : scalarity;
}

type t

val create : unit -> t

val add : t -> entry -> unit

val entries : t -> entry list

(** Signatures applicable to applying [meth] (with [arity] extra arguments,
    [scalarity]) to receiver [recv]: those whose class [recv] belongs to. *)
val applicable :
  Store.t -> t -> meth:Obj_id.t -> recv:Obj_id.t -> arity:int ->
  scalarity:scalarity -> entry list

type violation = {
  entry : entry;
  v_recv : Obj_id.t;
  v_args : Obj_id.t list;
  v_res : Obj_id.t;
  reason : string;
}

(** Check every method tuple of the store against the signatures.
    In [`Lenient] mode a tuple with no applicable signature is fine; in
    [`Strict] mode it is a violation (every fact must be covered). *)
val check : Store.t -> t -> mode:[ `Lenient | `Strict ] -> violation list

val pp_violation : Store.t -> Format.formatter -> violation -> unit
