(** Enumeration of the variable valuations satisfying a flattened query.

    Where {!Valuation} checks one given valuation, this module {e finds} all
    of them, driving the search from the store's indexes. It is the
    workhorse of both query answering and rule bodies in the fixpoint
    engine.

    Atom scheduling is greedy: at every depth the cheapest remaining atom is
    executed, where cost is the estimated number of matches under the
    current partial binding (1 for a fully keyed lookup, the bucket length
    for a method scan, and so on). [`Source] order — execute atoms
    left-to-right as written — is kept for the join-order ablation
    experiment (E10).

    Set-inclusion atoms ([A_subset]) and negation run as nested
    sub-enumerations once their outer variables are bound; any still-unbound
    variable (including an output variable constrained by no atom, as in the
    query [?- X.]) falls back to enumerating the whole universe, which keeps
    the solver total on well-formed input. *)

type order = Greedy | Source

(** Restrict one atom of the query to the delta suffix of its relation's
    bucket (tuples with index [>= from]); used by the semi-naive fixpoint.
    The seeded atom is executed first. For [A_isa] atoms the delta is the
    suffix of the direct-edge log, expanded through the hierarchy closure. *)
type seed = { seed_atom : int; seed_from : int }

exception Stopped

(** [iter store q ~f] calls [f] once per satisfying assignment, with a
    binding array of length [q.nvars] (fully bound). Raise {!Stopped} from
    [f] to stop early; [iter] catches it.

    @param limit stop after this many solutions. *)
val iter :
  ?order:order ->
  ?hilog_virtual:bool ->
  ?bindings:(int * Oodb.Obj_id.t) list ->
  ?seed:seed ->
  ?limit:int ->
  Oodb.Store.t ->
  Ir.query ->
  f:(Oodb.Obj_id.t array -> unit) ->
  unit
(** [bindings] pre-binds slots before the search starts (used to replay a
    rule body under a known variable valuation, e.g. for provenance).

    [hilog_virtual] (default [false]): when a {e method-position} variable
    is enumerated (HiLog-style higher-order atoms such as [X\[M ->> {Y}\]]),
    include virtual (skolem) objects among the candidate methods. Off by
    default: with it on, the generic transitive-closure program of section
    6 has an infinite minimal model — [tc] applies to [kids.tc], yielding
    [(kids.tc).tc], and so on — and bottom-up evaluation only stops at the
    divergence budget. All the paper's examples work with the restricted
    enumeration. Explicitly named virtual methods (e.g. the query
    [peter\[(kids.tc) ->> {X}\]]) are unaffected. *)

(** Distinct bindings of the query's named variables, in the order of
    [q.named]; answers are deduplicated. *)
val named_solutions :
  ?order:order -> ?limit:int -> Oodb.Store.t -> Ir.query ->
  Oodb.Obj_id.t list list

(** Is the query satisfiable? *)
val satisfiable : ?order:order -> Oodb.Store.t -> Ir.query -> bool

(** Number of distinct named-variable bindings (or of full bindings when the
    query names no variable, capped at 1 for a ground query). *)
val count : ?order:order -> Oodb.Store.t -> Ir.query -> int

(** A static simulation of the plan the solver would follow: the atom
    execution order and the access path chosen for each atom (lookup,
    inverse index, bucket scan, ...), one line per atom. The greedy
    simulation uses the store's current bucket sizes; the runtime order can
    differ when intermediate bindings change the cost ranking. *)
val explain : ?order:order -> Oodb.Store.t -> Ir.query -> string list
