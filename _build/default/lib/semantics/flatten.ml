open Syntax.Ast

type builder = {
  store : Oodb.Store.t;
  mutable nvars : int;
  mutable named : (string * int) list;
  mutable atoms : Ir.atom list;  (* reversed *)
}

let fresh b =
  let i = b.nvars in
  b.nvars <- b.nvars + 1;
  i

let slot b x =
  if x = "_" then fresh b  (* anonymous: fresh, unnamed slot *)
  else
    match List.assoc_opt x b.named with
    | Some i -> i
    | None ->
      let i = fresh b in
      b.named <- b.named @ [ (x, i) ];
      i

let emit b a = b.atoms <- a :: b.atoms

(* Capture the atoms emitted by [f] separately from the enclosing
   conjunction, together with the slots created while running it; used for
   the sub-queries of A_subset and A_neg. *)
let captured b f =
  let outer_atoms = b.atoms in
  let first_new = b.nvars in
  b.atoms <- [];
  let result = f () in
  let sub_atoms = List.rev b.atoms in
  b.atoms <- outer_atoms;
  let created = List.init (b.nvars - first_new) (fun i -> first_new + i) in
  let named_slots = List.map snd b.named in
  let locals = List.filter (fun i -> not (List.mem i named_slots)) created in
  let outer =
    List.concat_map Ir.atom_vars sub_atoms
    |> List.filter (fun i -> not (List.mem i locals))
    |> List.sort_uniq Int.compare
  in
  (result, sub_atoms, outer, locals)

let is_self meth args =
  match meth with Name "self" -> args = [] | _ -> false

let rec flatten b (t : reference) : Ir.term =
  match t with
  | Name n -> Const (Oodb.Store.name b.store n)
  | Int_lit n -> Const (Oodb.Store.int b.store n)
  | Str_lit s -> Const (Oodb.Store.str b.store s)
  | Var x -> V (slot b x)
  | Paren t' -> flatten b t'
  | Path { p_recv; p_sep; p_meth; p_args } ->
    let recv = flatten b p_recv in
    if is_self p_meth p_args then recv
    else begin
      let meth = flatten b p_meth in
      let args = List.map (flatten b) p_args in
      let res = Ir.V (fresh b) in
      let app = { Ir.meth; recv; args; res } in
      emit b
        (match p_sep with Dot -> A_scalar app | Dotdot -> A_member app);
      res
    end
  | Isa { recv; cls } ->
    let r = flatten b recv in
    let c = flatten b cls in
    emit b (A_isa (r, c));
    r
  | Filter { f_recv; f_meth; f_args; f_rhs } ->
    let recv = flatten b f_recv in
    (match f_rhs with
    | Rscalar rhs when is_self f_meth f_args ->
      let v = flatten b rhs in
      emit b (A_eq (recv, v))
    | Rscalar rhs ->
      let meth = flatten b f_meth in
      let args = List.map (flatten b) f_args in
      let res = flatten b rhs in
      emit b (A_scalar { meth; recv; args; res })
    | Rset_enum elems ->
      let meth = flatten b f_meth in
      let args = List.map (flatten b) f_args in
      List.iter
        (fun e ->
          let res = flatten b e in
          emit b (A_member { meth; recv; args; res }))
        elems
    | Rset_ref s ->
      let meth = flatten b f_meth in
      let args = List.map (flatten b) f_args in
      let member, sub_atoms, outer, locals =
        captured b (fun () -> flatten b s)
      in
      (* the member slot itself is quantified inside the set *)
      let locals =
        match member with
        | Ir.V i when not (List.mem i locals) -> i :: locals
        | Ir.V _ | Ir.Const _ -> locals
      in
      let outer =
        List.filter
          (fun i -> match member with Ir.V m -> i <> m | Const _ -> true)
          outer
      in
      emit b
        (A_subset
           {
             s_meth = meth;
             s_recv = recv;
             s_args = args;
             sub_atoms;
             member;
             s_outer = outer;
             s_locals = locals;
           })
    | Rsig_scalar _ | Rsig_set _ ->
      invalid_arg "Flatten: signature declaration used as a formula");
    recv

let literal b = function
  | Pos t -> ignore (flatten b t)
  | Neg t ->
    let (), sub_atoms, outer, locals = captured b (fun () -> ignore (flatten b t)) in
    emit b (A_neg { n_atoms = sub_atoms; n_outer = outer; n_locals = locals })

let make_builder store = { store; nvars = 0; named = []; atoms = [] }

let finish b : Ir.query =
  { atoms = List.rev b.atoms; nvars = b.nvars; named = b.named }

let reference store t =
  let b = make_builder store in
  let result = flatten b t in
  (finish b, result)

let literals store lits =
  let b = make_builder store in
  List.iter (literal b) lits;
  finish b
