(** Entailment — Definition 5 — on top of the valuation.

    [I |=_sigma t] iff [nu_I(t)] is non-empty; literals, conjunctions and
    rules follow the usual first-order scheme. Like {!Valuation}, this
    module is an executable specification used as ground truth in tests:
    {!rule_holds} checks a rule by brute-force enumeration of variable
    valuations and is only meant for small universes. *)

val reference :
  Oodb.Store.t -> Valuation.env -> Syntax.Ast.reference -> bool

val literal : Oodb.Store.t -> Valuation.env -> Syntax.Ast.literal -> bool

val literals :
  Oodb.Store.t -> Valuation.env -> Syntax.Ast.literal list -> bool

(** [rule_holds store rule] checks that every variable valuation over the
    current universe satisfying the body satisfies the head — i.e. the
    store is a model of the rule. Cost is [|U|^(#vars)]. *)
val rule_holds : Oodb.Store.t -> Syntax.Ast.rule -> bool

(** First counter-example valuation, for test diagnostics. *)
val find_violation :
  Oodb.Store.t -> Syntax.Ast.rule -> (string * Oodb.Obj_id.t) list option
