(** The valuation function of Definition 4 — the executable specification.

    [eval store env t] computes [nu_I(t)] for a well-formed reference [t]
    under the variable valuation [env], literally clause by clause:

    - names denote their interned object (clause 2), variables their binding
      (clause 1);
    - a scalar path collects the defined values of the interpreting partial
      function over all combinations of sub-reference denotations (clause
      3); a set-valued path unions the interpreting set function (clause 4);
    - molecules denote the sub-set of their first sub-reference's denotation
      whose objects satisfy the filter (clauses 5-8).

    For scalar references the result is a singleton or empty; a path such as
    [john.spouse] with [spouse] undefined evaluates to the empty set, which
    is exactly why the corresponding formula is false (Definition 5).

    The built-in [self] behaves as the identity method everywhere.

    This module is deliberately naive — no indexes, no planning — so the
    test suite can use it as ground truth against {!Solve}. *)

module Env : Map.S with type key = string

type env = Oodb.Obj_id.t Env.t

exception Unbound_variable of string

val env_of_list : (string * Oodb.Obj_id.t) list -> env

val eval : Oodb.Store.t -> env -> Syntax.Ast.reference -> Oodb.Obj_id.Set.t
