let reference store env t =
  not (Oodb.Obj_id.Set.is_empty (Valuation.eval store env t))

let literal store env = function
  | Syntax.Ast.Pos t -> reference store env t
  | Syntax.Ast.Neg t -> not (reference store env t)

let literals store env lits = List.for_all (literal store env) lits

exception Found of (string * Oodb.Obj_id.t) list

let find_violation store (rule : Syntax.Ast.rule) =
  let vars = Syntax.Ast.vars_of_rule rule in
  let card = Oodb.Universe.cardinality (Oodb.Store.universe store) in
  let rec assign env acc = function
    | [] ->
      if
        literals store env rule.body
        && not (reference store env rule.head)
      then raise (Found (List.rev acc))
    | v :: rest ->
      for o = 0 to card - 1 do
        assign (Valuation.Env.add v o env) ((v, o) :: acc) rest
      done
  in
  match assign Valuation.Env.empty [] vars with
  | () -> None
  | exception Found cex -> Some cex

let rule_holds store rule = find_violation store rule = None
