lib/semantics/valuation.ml: List Map Oodb String Syntax
