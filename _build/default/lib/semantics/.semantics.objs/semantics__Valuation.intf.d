lib/semantics/valuation.mli: Map Oodb Syntax
