lib/semantics/flatten.mli: Ir Oodb Syntax
