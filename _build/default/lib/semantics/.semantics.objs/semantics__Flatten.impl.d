lib/semantics/flatten.ml: Int Ir List Oodb Syntax
