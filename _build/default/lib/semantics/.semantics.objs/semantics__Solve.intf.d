lib/semantics/solve.mli: Ir Oodb
