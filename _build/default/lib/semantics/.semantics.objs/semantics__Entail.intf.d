lib/semantics/entail.mli: Oodb Syntax Valuation
