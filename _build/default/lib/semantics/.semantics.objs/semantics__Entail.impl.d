lib/semantics/entail.ml: List Oodb Syntax Valuation
