lib/semantics/ir.ml: Format List Oodb Stdlib
