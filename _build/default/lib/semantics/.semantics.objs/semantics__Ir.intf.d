lib/semantics/ir.mli: Format Oodb
