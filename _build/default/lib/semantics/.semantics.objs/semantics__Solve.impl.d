lib/semantics/solve.ml: Array Format Fun Hashtbl Ir List Oodb Option Printf
