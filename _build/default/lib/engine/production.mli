(** Production rules over PathLog references.

    Sections 2 and 7 of the paper claim the path-expression machinery is
    orthogonal to the rule-evaluation paradigm: "the techniques we shall
    propose are applicable for different kinds of rule languages, e.g.
    deductive, production or active rules". This module makes the claim
    executable: the same references serve as conditions, and the same
    head-execution (virtual objects included) serves as the assert action —
    only the control changes, from fixpoint saturation to a recognise-act
    cycle with conflict resolution and refractoriness.

    For assert-only rule sets the production engine reaches exactly the
    deductive minimal model (property-tested), firing one instantiation at
    a time. *)

type action =
  | Assert of Syntax.Ast.reference
      (** make a (scalar, well-formed) reference true, creating virtual
          objects as in rule heads *)
  | Message of string
      (** record ["msg"] with the triggering bindings in the event log *)

type prule = {
  p_name : string;
  condition : Syntax.Ast.literal list;
  actions : action list;
  priority : int;  (** higher fires first *)
}

type event = {
  e_rule : string;
  e_bindings : (string * Oodb.Obj_id.t) list;
  e_message : string option;  (** [Some _] for {!Message} actions *)
}

type t

(** The condition and any [Assert] head are checked like deductive rules
    (well-formedness, safety). @raise Invalid_argument on violations. *)
val create : Oodb.Store.t -> prule list -> t

val store : t -> Oodb.Store.t

(** One recognise-act cycle: build the conflict set (all satisfiable rule
    instantiations not fired before), pick the winner — highest priority,
    then rule declaration order, then first binding found — fire its
    actions. Returns [false] when the conflict set is empty. *)
val step : t -> bool

(** Run cycles until quiescence (or [max_steps]); returns the number of
    firings. *)
val run : ?max_steps:int -> t -> int

(** Events in firing order. *)
val log : t -> event list
