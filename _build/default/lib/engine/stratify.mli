(** Stratification (section 6 of the paper).

    A rule whose body contains a set-inclusion filter with a set-valued
    reference — [... <- X\[friends ->> p1..assistants\]] — or a negated
    literal must only run once the relations that sub-reference reads are
    fully computed. We build the dependency graph over relations (an edge
    [D -> R] whenever a rule defining [D] reads [R], marked {e completion}
    when the read needs the full extension), condense it into strongly
    connected components, and reject the program if a completion edge lies
    inside a component. Strata are numbered so that completion edges
    strictly descend.

    [R_any] (variable or computed method positions, e.g. the generic
    [kids.tc] rules) is handled conservatively: a rule defining [R_any] may
    define anything, a rule reading [R_any] may read anything, and a
    completion read of [R_any] is rejected outright.

    Class membership is refined per named class ([R_isa_c]): negating
    [X : hasKids] while deriving [X : leaf] is stratifiable. A membership
    insert into class [c] also feeds every class above [c]; the hierarchy
    used is the {e static} one — constant-to-constant class edges visible
    in rule heads. Class edges created at runtime between objects that are
    only bound by variables (meta-programming on the hierarchy) escape this
    approximation, as they do in every practical stratification. *)

type t = {
  strata : Rule.t list array;  (** rules grouped by stratum, ascending *)
  rule_stratum : (Rule.t * int) list;
}

val compute : Oodb.Store.t -> Rule.t list -> t
(** @raise Err.Unstratifiable *)
