module Ir = Semantics.Ir
module Store = Oodb.Store

type mode = Naive | Seminaive

type config = {
  mode : mode;
  order : Semantics.Solve.order;
  hilog_virtual : bool;
  max_rounds : int;
  max_objects : int;
}

let default_config =
  {
    mode = Seminaive;
    order = Semantics.Solve.Greedy;
    hilog_virtual = false;
    max_rounds = 10_000;
    max_objects = 1_000_000;
  }

type stats = {
  mutable rounds : int;
  mutable rule_evaluations : int;
  mutable firings : int;
  mutable insertions : int;
  strata : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "strata: %d, rounds: %d, rule evaluations: %d, firings: %d, insertions: \
     %d"
    s.strata s.rounds s.rule_evaluations s.firings s.insertions

module Rel_map = Map.Make (struct
  type t = Ir.rel

  let compare = Ir.compare_rel
end)

(* All class memberships share the isa edge log; the per-class refinement
   only matters to the stratifier, so deltas normalise R_isa_c to R_isa. *)
let norm_rel = function
  | Ir.R_isa_c _ -> Ir.R_isa
  | (Ir.R_isa | Ir.R_scalar _ | Ir.R_set _ | Ir.R_any) as r -> r

let rel_length store = function
  | Ir.R_isa | Ir.R_isa_c _ -> Oodb.Vec.length (Store.isa_log store)
  | Ir.R_scalar m -> Oodb.Vec.length (Store.scalar_bucket store m)
  | Ir.R_set m -> Oodb.Vec.length (Store.set_bucket store m)
  | Ir.R_any -> 0

(* Snapshot the length of every relation currently present in the store. *)
let snapshot store =
  let add acc r = Rel_map.add r (rel_length store r) acc in
  let acc = add Rel_map.empty Ir.R_isa in
  let acc =
    List.fold_left
      (fun acc m -> add acc (Ir.R_scalar m))
      acc (Store.scalar_meths store)
  in
  List.fold_left
    (fun acc m -> add acc (Ir.R_set m))
    acc (Store.set_meths store)

let changed_rels ~before ~after =
  Rel_map.fold
    (fun r len acc ->
      let old = Option.value ~default:0 (Rel_map.find_opt r before) in
      if len > old then r :: acc else acc)
    after []

let env_of_binding (body : Ir.query) binding =
  List.fold_left
    (fun env (name, slot) ->
      Semantics.Valuation.Env.add name binding.(slot) env)
    Semantics.Valuation.Env.empty body.named

(* Evaluate one rule, optionally seeded, executing the head on every body
   solution. *)
let evaluate ?provenance config stats store (rule : Rule.t) seed changes =
  stats.rule_evaluations <- stats.rule_evaluations + 1;
  Semantics.Solve.iter ~order:config.order ~hilog_virtual:config.hilog_virtual
    ?seed store rule.body
    ~f:(fun binding ->
      stats.firings <- stats.firings + 1;
      let env = env_of_binding rule.body binding in
      let on_insert =
        match provenance with
        | None -> fun _ -> ()
        | Some prov ->
          fun fact ->
            let source =
              if rule.source.body = [] then Provenance.Extensional
              else
                Provenance.Derived
                  {
                    rule = rule.source;
                    env =
                      List.map
                        (fun (name, slot) -> (name, binding.(slot)))
                        rule.body.named;
                  }
            in
            Provenance.record prov fact source
      in
      let before = !changes in
      ignore
        (Head.execute ~on_insert store ~env ~rule:rule.source ~changes
           rule.source.head);
      stats.insertions <- stats.insertions + (!changes - before))

let check_budget config store stratum_rounds =
  if stratum_rounds > config.max_rounds then
    raise
      (Err.Diverged
         (Printf.sprintf "stratum exceeded %d rounds" config.max_rounds));
  let card = Oodb.Universe.cardinality (Store.universe store) in
  if card > config.max_objects then
    raise
      (Err.Diverged
         (Printf.sprintf
            "universe grew past %d objects (likely unbounded virtual-object \
             creation)"
            config.max_objects))

let run_stratum ?provenance config stats store rules =
  (* marks at the start of the previous round: the delta a seeded atom
     scans starts there *)
  let prev_marks = ref (snapshot store) in
  let round = ref 0 in
  let continue = ref true in
  (* round 1: full evaluation of every rule *)
  let first_round () =
    incr round;
    stats.rounds <- stats.rounds + 1;
    let changes = ref 0 in
    List.iter
      (fun r -> evaluate ?provenance config stats store r None changes)
      rules;
    !changes > 0
  in
  let next_round () =
    incr round;
    stats.rounds <- stats.rounds + 1;
    check_budget config store !round;
    let now = snapshot store in
    let changed = changed_rels ~before:!prev_marks ~after:now in
    if changed = [] then false
    else begin
      let changes = ref 0 in
      (match config.mode with
      | Naive ->
        List.iter
          (fun r -> evaluate ?provenance config stats store r None changes)
          rules
      | Seminaive ->
        List.iter
          (fun (rule : Rule.t) ->
            let reads = List.map norm_rel rule.reads in
            let relevant =
              rule.reads_any || List.exists (fun r -> List.mem r reads) changed
            in
            if relevant then begin
              let seeds =
                if rule.reads_any then []
                else
                  List.filter_map
                    (fun (rel, idx) ->
                      let rel = norm_rel rel in
                      if List.mem rel changed then
                        Some
                          {
                            Semantics.Solve.seed_atom = idx;
                            seed_from =
                              Option.value ~default:0
                                (Rel_map.find_opt rel !prev_marks);
                          }
                      else None)
                    rule.seedable
              in
              let seeded_rels =
                List.filter_map
                  (fun (rel, _) ->
                    let rel = norm_rel rel in
                    if List.mem rel changed then Some rel else None)
                  rule.seedable
              in
              let unseedable_change =
                rule.reads_any
                || List.exists
                     (fun r ->
                       List.mem r reads && not (List.mem r seeded_rels))
                     changed
              in
              if unseedable_change then
                evaluate ?provenance config stats store rule None changes
              else
                List.iter
                  (fun seed ->
                    evaluate ?provenance config stats store rule (Some seed)
                      changes)
                  seeds
            end)
          rules);
      prev_marks := now;
      !changes > 0
    end
  in
  if rules <> [] then begin
    continue := first_round ();
    while !continue do
      continue := next_round ()
    done
  end

let run ?(config = default_config) ?provenance store (strat : Stratify.t) =
  let stats =
    {
      rounds = 0;
      rule_evaluations = 0;
      firings = 0;
      insertions = 0;
      strata = Array.length strat.strata;
    }
  in
  Array.iter
    (fun rules -> run_stratum ?provenance config stats store rules)
    strat.strata;
  stats
