(** Ground facts — the unit of provenance.

    Every tuple the engine inserts is one of these; {!Provenance} maps them
    to the rule and variable valuation that derived them. *)

type t =
  | F_isa of Oodb.Obj_id.t * Oodb.Obj_id.t
  | F_scalar of app
  | F_set of app

and app = {
  meth : Oodb.Obj_id.t;
  recv : Oodb.Obj_id.t;
  args : Oodb.Obj_id.t list;
  res : Oodb.Obj_id.t;
}

val equal : t -> t -> bool

val hash : t -> int

val pp : Oodb.Universe.t -> Format.formatter -> t -> unit

(** Recognise a ground fact-shaped reference: [o : c],
    [o\[m@(args) -> r\]], or [o\[m@(args) ->> {r}\]] with a single element,
    where every position is a name, literal, or an already-existing path
    (resolved against the store without creating anything). *)
val of_reference : Oodb.Store.t -> Syntax.Ast.reference -> t option
