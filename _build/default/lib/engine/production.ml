type action =
  | Assert of Syntax.Ast.reference
  | Message of string

type prule = {
  p_name : string;
  condition : Syntax.Ast.literal list;
  actions : action list;
  priority : int;
}

type event = {
  e_rule : string;
  e_bindings : (string * Oodb.Obj_id.t) list;
  e_message : string option;
}

type compiled = {
  rule : prule;
  order : int;  (* declaration order, for conflict resolution *)
  body : Semantics.Ir.query;
  as_ast : Syntax.Ast.rule;  (* for head execution error context *)
}

type t = {
  store : Oodb.Store.t;
  rules : compiled list;
  fired : (string * Oodb.Obj_id.t list, unit) Hashtbl.t;  (* refractoriness *)
  mutable events : event list;  (* reversed *)
}

let check_rule_syntax (r : prule) =
  let heads =
    List.filter_map
      (function Assert h -> Some h | Message _ -> None)
      r.actions
  in
  let as_deductive_head head =
    { Syntax.Ast.head; body = r.condition }
  in
  List.iter
    (fun head ->
      match Syntax.Wellformed.check_rule (as_deductive_head head) with
      | Ok () -> ()
      | Error e ->
        invalid_arg
          (Format.asprintf "production rule %s: %a" r.p_name
             Syntax.Wellformed.pp_error e))
    heads;
  match Syntax.Wellformed.check_query r.condition with
  | Ok () -> ()
  | Error e ->
    invalid_arg
      (Format.asprintf "production rule %s: %a" r.p_name
         Syntax.Wellformed.pp_error e)

let create store rules =
  let compiled =
    List.mapi
      (fun order rule ->
        check_rule_syntax rule;
        {
          rule;
          order;
          body = Semantics.Flatten.literals store rule.condition;
          as_ast =
            {
              Syntax.Ast.head =
                (match rule.actions with
                | Assert h :: _ -> h
                | _ -> Syntax.Ast.Name rule.p_name);
              body = rule.condition;
            };
        })
      rules
  in
  { store; rules = compiled; fired = Hashtbl.create 64; events = [] }

let store t = t.store

(* The conflict-set key of an instantiation: rule name + bindings of the
   condition's named variables. *)
let instantiation_key (c : compiled) binding =
  (c.rule.p_name, List.map (fun (_, slot) -> binding.(slot)) c.body.named)

(* Find the first unfired instantiation of [c], if any. *)
let find_instantiation t (c : compiled) =
  let found = ref None in
  (try
     Semantics.Solve.iter t.store c.body ~f:(fun binding ->
         let key = instantiation_key c binding in
         if not (Hashtbl.mem t.fired key) then begin
           found := Some (Array.copy binding, key);
           raise Semantics.Solve.Stopped
         end)
   with Semantics.Solve.Stopped -> ());
  !found

let fire t (c : compiled) binding key =
  Hashtbl.add t.fired key ();
  let env =
    List.fold_left
      (fun env (name, slot) ->
        Semantics.Valuation.Env.add name binding.(slot) env)
      Semantics.Valuation.Env.empty c.body.named
  in
  let bindings =
    List.map (fun (name, slot) -> (name, binding.(slot))) c.body.named
  in
  List.iter
    (fun action ->
      match action with
      | Assert head ->
        let changes = ref 0 in
        ignore (Head.execute t.store ~env ~rule:c.as_ast ~changes head)
      | Message m ->
        t.events <-
          { e_rule = c.rule.p_name; e_bindings = bindings; e_message = Some m }
          :: t.events)
    c.rule.actions;
  t.events <-
    { e_rule = c.rule.p_name; e_bindings = bindings; e_message = None }
    :: t.events

let step t =
  (* rules sorted by priority desc, then declaration order *)
  let ordered =
    List.sort
      (fun a b ->
        match compare b.rule.priority a.rule.priority with
        | 0 -> compare a.order b.order
        | c -> c)
      t.rules
  in
  let rec try_rules = function
    | [] -> false
    | c :: rest -> (
      match find_instantiation t c with
      | Some (binding, key) ->
        fire t c binding key;
        true
      | None -> try_rules rest)
  in
  try_rules ordered

let run ?(max_steps = 1_000_000) t =
  let rec go n =
    if n >= max_steps then n
    else if step t then go (n + 1)
    else n
  in
  go 0

let log t =
  List.rev t.events
