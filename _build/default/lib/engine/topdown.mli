(** Goal-directed (top-down, tabled) query evaluation.

    Bottom-up evaluation materialises the whole minimal model even when the
    query asks about one object ([tim\[desc ->> {X}\]]). This module
    answers such queries by {e tabling}: a goal is a relation plus a
    binding pattern; rules are run with the goal's constants pushed into
    their heads, recursive sub-goals are memoised, and the table set is
    iterated to a fixpoint. Constants thus propagate into recursion — the
    effect magic-set rewriting achieves — and only the relevant part of
    the model is ever computed.

    Scope: the {e flat-headed} fragment. Rules with a non-empty body
    qualify when their head is a single method filter or membership on a
    variable or constant receiver ([X\[desc ->> {Y}\]], [X\[pay -> B\]],
    [X : c]) with constant method/class and scalar argument positions, and
    their bodies contain no set-inclusion filters, no negation and no
    variable method positions. Heads with paths (virtual objects) are out:
    skolem inversion is full term unification, and bottom-up handles those.
    {!query} returns [None] when any rule with a non-empty body is outside
    the fragment — callers fall back to bottom-up. Fact statements are not
    restricted (the caller loads them into the store first).

    Termination: flat heads create no objects, so goals and answers range
    over the finite universe; tabling makes repeated sub-goals free.

    Correct by differential testing against the bottom-up engine. *)

type stats = {
  goals : int;  (** distinct sub-goals tabled *)
  answers : int;  (** answer tuples across all tables *)
  passes : int;  (** global fixpoint passes *)
}

(** [query store rules q] answers the flattened query [q] — distinct
    bindings of its named variables — against the fact store plus the
    given (compiled, non-fact) rules. [None] if some rule is outside the
    flat-headed fragment. *)
val query :
  Oodb.Store.t -> Rule.t list -> Semantics.Ir.query ->
  (Oodb.Obj_id.t list list * stats) option
