lib/engine/typecheck.mli: Format Oodb Rule Syntax
