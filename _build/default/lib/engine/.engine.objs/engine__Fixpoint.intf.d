lib/engine/fixpoint.mli: Format Oodb Provenance Semantics Stratify
