lib/engine/stratify.ml: Array Err Format Hashtbl List Map Oodb Option Rule Semantics Seq Syntax
