lib/engine/provenance.ml: Array Fact Format Hashtbl List Oodb Option Semantics Syntax
