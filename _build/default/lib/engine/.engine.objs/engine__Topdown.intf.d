lib/engine/topdown.mli: Oodb Rule Semantics
