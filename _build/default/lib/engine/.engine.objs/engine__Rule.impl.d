lib/engine/rule.ml: List Oodb Semantics Syntax
