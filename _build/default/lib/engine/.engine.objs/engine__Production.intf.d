lib/engine/production.mli: Oodb Syntax
