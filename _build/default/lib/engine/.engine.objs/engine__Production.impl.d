lib/engine/production.ml: Array Format Hashtbl Head List Oodb Semantics Syntax
