lib/engine/rule.mli: Oodb Semantics Syntax
