lib/engine/err.mli: Format Oodb Syntax
