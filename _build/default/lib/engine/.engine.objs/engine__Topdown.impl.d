lib/engine/topdown.ml: Array Hashtbl Int List Oodb Option Rule Semantics Syntax
