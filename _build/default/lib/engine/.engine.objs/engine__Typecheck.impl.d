lib/engine/typecheck.ml: Format Hashtbl List Oodb Option Rule String Syntax
