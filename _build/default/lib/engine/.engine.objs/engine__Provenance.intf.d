lib/engine/provenance.mli: Fact Format Oodb Syntax
