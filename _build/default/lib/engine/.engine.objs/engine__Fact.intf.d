lib/engine/fact.mli: Format Oodb Syntax
