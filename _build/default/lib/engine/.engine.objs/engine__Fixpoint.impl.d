lib/engine/fixpoint.ml: Array Err Format Head List Map Oodb Option Printf Provenance Rule Semantics Stratify
