lib/engine/program.mli: Fixpoint Format Oodb Provenance Rule Syntax Topdown Typecheck
