lib/engine/fact.ml: Format Hashtbl List Oodb Syntax
