lib/engine/stratify.mli: Oodb Rule
