lib/engine/err.ml: Format Oodb Syntax
