lib/engine/program.ml: Fact Fixpoint Format Head List Oodb Provenance Rule Semantics Stratify String Syntax Topdown Typecheck
