lib/engine/head.mli: Fact Oodb Semantics Syntax
