lib/engine/head.ml: Err Fact List Oodb Semantics Syntax
