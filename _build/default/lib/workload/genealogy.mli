(** Kid/descendant workloads for the transitive-closure experiments of
    section 6 (program 6.4 and the generic [tc]). *)

type shape =
  | Chain of int  (** [p0\[kids ->> {p1}\]], ..., depth [n] *)
  | Binary_tree of int  (** complete binary tree of given depth *)
  | Random_forest of { people : int; max_kids : int; seed : int }
      (** acyclic: person [i]'s kids are drawn among persons [> i] *)

(** The [kids] facts for a shape. Person names are [p0], [p1], ... *)
val statements : shape -> Syntax.Ast.statement list

(** The rules of program (6.4): [desc] as the transitive closure of
    [kids]. *)
val desc_rules : Syntax.Ast.statement list

(** The generic transitive-closure rules using the higher-order method
    [tc] (section 6). *)
val generic_tc_rules : Syntax.Ast.statement list

(** The paper's literal example: peter, tim, mary, sally, tom, paul. *)
val paper_example : Syntax.Ast.statement list

(** Number of people a shape generates. *)
val size : shape -> int

(** Reference transitive closure computed directly on the generated edges
    (no PathLog involved): [closure shape] maps person index [i] to the
    sorted list of descendant indexes. Ground truth for tests and
    experiment checks. *)
val closure : shape -> (int * int list) list
