open Syntax.Build

let scalar_chain ~name ~length =
  List.init length (fun i ->
      fact
        (obj (Printf.sprintf "%s%d" name i)
        |-> ("next", obj (Printf.sprintf "%s%d" name (i + 1)))))

let dag_node layer pos = Printf.sprintf "node_%d_%d" layer pos

let layered_dag ~layers ~width ~fanout ~seed =
  let rng = Random.State.make [| seed |] in
  List.concat
    (List.init (layers - 1) (fun l ->
         List.init width (fun p ->
             let targets =
               List.init fanout (fun _ ->
                   obj (dag_node (l + 1) (Random.State.int rng width)))
               |> List.sort_uniq compare
             in
             fact (obj (dag_node l p) |->> ("to", targets)))))
