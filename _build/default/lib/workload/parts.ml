open Syntax.Build

type config = {
  seed : int;
  parts : int;
  max_subparts : int;
  depth_layers : int;
}

let default = { seed = 17; parts = 120; max_subparts = 4; depth_layers = 6 }

let part i = Printf.sprintf "part%d" i

(* Edges (parent, child, qty): part i may use parts from strictly deeper
   layers, which keeps the DAG acyclic. *)
let edges cfg =
  let rng = Random.State.make [| cfg.seed |] in
  let layer_of i = i * cfg.depth_layers / max 1 cfg.parts in
  List.concat
    (List.init cfg.parts (fun i ->
         let deeper =
           List.filter
             (fun j -> layer_of j > layer_of i)
             (List.init cfg.parts Fun.id)
         in
         if deeper = [] then []
         else
           let n = Random.State.int rng (cfg.max_subparts + 1) in
           List.init n (fun _ ->
               let j = List.nth deeper (Random.State.int rng (List.length deeper)) in
               (i, j, 1 + Random.State.int rng 9))
           |> List.sort_uniq (fun (_, a, _) (_, b, _) -> compare a b)))

let statements cfg =
  let es = edges cfg in
  let by_parent = Hashtbl.create 64 in
  List.iter
    (fun (p, c, _) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_parent p) in
      Hashtbl.replace by_parent p (c :: cur))
    es;
  let parts =
    List.init cfg.parts (fun i -> fact (obj (part i) @: "part"))
  in
  let subs =
    Hashtbl.fold
      (fun p cs acc ->
        fact
          (obj (part p)
          |->> ("sub", List.map (fun c -> obj (part c)) (List.rev cs)))
        :: acc)
      by_parent []
    |> List.sort compare
  in
  let qtys =
    List.map
      (fun (p, c, q) ->
        fact
          (Syntax.Ast.Filter
             {
               f_recv = obj (part p);
               f_meth = Name "qty";
               f_args = [ obj (part c) ];
               f_rhs = Rscalar (int q);
             }))
      es
  in
  parts @ subs @ qtys

let contains_rules =
  let x = var "X" and y = var "Y" in
  [
    rule (x |->> ("contains", [ y ])) [ pos (x |->> ("sub", [ y ])) ];
    rule
      (x |->> ("contains", [ y ]))
      [ pos (dotdot x "contains" |->> ("sub", [ y ])) ];
  ]

let closure cfg =
  let es = edges cfg in
  let succs = Array.make cfg.parts [] in
  List.iter (fun (p, c, _) -> succs.(p) <- c :: succs.(p)) es;
  let module Iset = Set.Make (Int) in
  let memo = Array.make cfg.parts None in
  let rec down i =
    match memo.(i) with
    | Some s -> s
    | None ->
      memo.(i) <- Some Iset.empty;
      let s =
        List.fold_left
          (fun acc c -> Iset.add c (Iset.union acc (down c)))
          Iset.empty succs.(i)
      in
      memo.(i) <- Some s;
      s
  in
  List.init cfg.parts (fun i -> (i, Iset.elements (down i)))
