type config = {
  seed : int;
  facts : int;
  rules : int;
}

let default = { seed = 1; facts = 8; rules = 3 }

let objs = [| "o1"; "o2"; "o3"; "o4"; "o5"; "o6" |]
let classes = [| "ca"; "cb" |]
let smeths = [| "f"; "g" |]
let mmeths = [| "r"; "s"; "t" |]

let pick rng arr = arr.(Random.State.int rng (Array.length arr))

let gen_fact rng =
  match Random.State.int rng 4 with
  | 0 | 1 ->
    Printf.sprintf "%s[%s ->> {%s}]." (pick rng objs) (pick rng mmeths)
      (pick rng objs)
  | 2 ->
    Printf.sprintf "%s[%s -> %s]." (pick rng objs) (pick rng smeths)
      (pick rng objs)
  | _ -> Printf.sprintf "%s : %s." (pick rng objs) (pick rng classes)

let gen_rule rng =
  let head = pick rng mmeths in
  let first = Printf.sprintf "X[%s ->> {Y}]" (pick rng mmeths) in
  let extra =
    match Random.State.int rng 3 with
    | 0 -> [ Printf.sprintf "X[%s ->> {Y}]" (pick rng mmeths) ]
    | 1 -> [ Printf.sprintf "X : %s" (pick rng classes) ]
    | _ -> []
  in
  Printf.sprintf "X[%s ->> {Y}] <- %s." head
    (String.concat ", " (first :: extra))

let generate cfg =
  let rng = Random.State.make [| cfg.seed |] in
  let facts = List.init cfg.facts (fun _ -> gen_fact rng) in
  let rules = List.init cfg.rules (fun _ -> gen_rule rng) in
  String.concat "\n" (facts @ rules)
