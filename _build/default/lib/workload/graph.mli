(** Parametric object-link graphs: scalar-method chains and set-method DAGs
    for scaling the solver and the fixpoint independently of the company
    domain. *)

(** [scalar_chain ~name ~length] — objects [name0 .. name<length>] linked by
    the scalar method [next]: navigating [name0.next.next...] has exactly
    one answer. *)
val scalar_chain : name:string -> length:int -> Syntax.Ast.statement list

(** [layered_dag ~layers ~width ~fanout ~seed] — a DAG of [layers]×[width]
    objects where each object links (set method [to_]) to [fanout] random
    objects of the next layer. Good join-depth stress. *)
val layered_dag :
  layers:int -> width:int -> fanout:int -> seed:int ->
  Syntax.Ast.statement list

(** Name of the object at a layer/position, e.g. [node_2_13]. *)
val dag_node : int -> int -> string
