open Syntax.Build

type shape =
  | Chain of int
  | Binary_tree of int
  | Random_forest of { people : int; max_kids : int; seed : int }

let person i = Printf.sprintf "p%d" i

(* kid edges as (parent index, child index) pairs *)
let edges = function
  | Chain n -> List.init n (fun i -> (i, i + 1))
  | Binary_tree depth ->
    (* nodes 0 .. 2^(depth+1)-2, node i has kids 2i+1, 2i+2 *)
    let n_internal = (1 lsl depth) - 1 in
    List.concat
      (List.init n_internal (fun i -> [ (i, (2 * i) + 1); (i, (2 * i) + 2) ]))
  | Random_forest { people; max_kids; seed } ->
    let rng = Random.State.make [| seed |] in
    List.concat
      (List.init people (fun i ->
           if i >= people - 1 then []
           else
             let n = Random.State.int rng (max_kids + 1) in
             List.init n (fun _ ->
                 (i, i + 1 + Random.State.int rng (people - 1 - i)))))
    |> List.sort_uniq compare

let size = function
  | Chain n -> n + 1
  | Binary_tree depth -> (1 lsl (depth + 1)) - 1
  | Random_forest { people; _ } -> people

let statements shape =
  let by_parent = Hashtbl.create 64 in
  List.iter
    (fun (p, k) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_parent p) in
      Hashtbl.replace by_parent p (k :: cur))
    (edges shape);
  Hashtbl.fold
    (fun p kids acc ->
      fact
        (obj (person p)
        |->> ("kids", List.map (fun k -> obj (person k)) (List.rev kids)))
      :: acc)
    by_parent []
  |> List.sort compare

let desc_rules =
  let x = var "X" and y = var "Y" in
  [
    rule (x |->> ("desc", [ y ])) [ pos (x |->> ("kids", [ y ])) ];
    rule
      (x |->> ("desc", [ y ]))
      [ pos (dotdot x "desc" |->> ("kids", [ y ])) ];
  ]

let generic_tc_rules =
  let x = var "X" and y = var "Y" and m = var "M" in
  let m_tc = paren (dot m "tc") in
  let filter_set recv rhs =
    Syntax.Ast.Filter
      { f_recv = recv; f_meth = m_tc; f_args = []; f_rhs = Rset_enum [ rhs ] }
  in
  let body_filter recv =
    Syntax.Ast.Filter
      { f_recv = recv; f_meth = m; f_args = []; f_rhs = Rset_enum [ y ] }
  in
  [
    rule (filter_set x y) [ pos (body_filter x) ];
    rule (filter_set x y) [ pos (body_filter (dotdot_ref x m_tc)) ];
  ]

let paper_example =
  [
    fact (obj "peter" |->> ("kids", [ obj "tim"; obj "mary" ]));
    fact (obj "tim" |->> ("kids", [ obj "sally" ]));
    fact (obj "mary" |->> ("kids", [ obj "tom"; obj "paul" ]));
  ]

let closure shape =
  let es = edges shape in
  let n = size shape in
  let kids = Array.make n [] in
  List.iter (fun (p, k) -> kids.(p) <- k :: kids.(p)) es;
  let memo = Array.make n None in
  let module Iset = Set.Make (Int) in
  let rec desc i =
    match memo.(i) with
    | Some s -> s
    | None ->
      memo.(i) <- Some Iset.empty;
      (* edges are acyclic by construction *)
      let s =
        List.fold_left
          (fun acc k -> Iset.add k (Iset.union acc (desc k)))
          Iset.empty kids.(i)
      in
      memo.(i) <- Some s;
      s
  in
  List.init n (fun i -> (i, Iset.elements (desc i)))
