open Syntax.Build

type config = {
  seed : int;
  employees : int;
  managers : int;
  companies : int;
  cities : int;
  departments : int;
  max_vehicles : int;
  automobile_fraction : float;
}

let default =
  {
    seed = 42;
    employees = 100;
    managers = 10;
    companies = 5;
    cities = 8;
    departments = 6;
    max_vehicles = 3;
    automobile_fraction = 0.6;
  }

let scaled n =
  {
    default with
    employees = n;
    managers = max 1 (n / 10);
    companies = max 1 (n / 20);
    cities = max 2 (n / 12);
    departments = max 1 (n / 15);
  }

let colors = [| "red"; "blue"; "green"; "black"; "white"; "silver" |]
let cylinder_choices = [| 4; 6; 8 |]

type gen = {
  rng : Random.State.t;
  mutable acc : Syntax.Ast.statement list;  (* reversed *)
}

let emit g s = g.acc <- s :: g.acc
let pick g arr = arr.(Random.State.int g.rng (Array.length arr))
let idx g n = Random.State.int g.rng (max 1 n)

let employee_name i = Printf.sprintf "e%d" i
let manager_name i = Printf.sprintf "m%d" i
let vehicle_name i = Printf.sprintf "v%d" i
let company_name i = Printf.sprintf "comp%d" i
let city_name i = Printf.sprintf "city%d" i
let street_name i = Printf.sprintf "street%d" i
let department_name i = Printf.sprintf "dept%d" i

(* Employees e0..: e0..managers-1 are also managers (their own names; the
   class edge makes them employees too). *)
let generate g cfg =
  emit g (fact (obj "automobile" @: "vehicle"));
  emit g (fact (obj "manager" @: "employee"));
  let vehicle_count = ref 0 in
  let automobile_count = ref 0 in
  let person name cls =
    let boss = manager_name (idx g cfg.managers) in
    let head =
      obj name @: cls
      |-> ("age", int (20 + Random.State.int g.rng 45))
      |-> ("city", obj (city_name (idx g cfg.cities)))
      |-> ("street", obj (street_name (idx g (cfg.cities * 3))))
      |-> ("worksFor", obj (department_name (idx g cfg.departments)))
      |-> ("boss", obj boss)
    in
    emit g (fact head);
    let n_vehicles = Random.State.int g.rng (cfg.max_vehicles + 1) in
    let vehicles =
      List.init n_vehicles (fun _ ->
          let v = vehicle_name !vehicle_count in
          incr vehicle_count;
          let is_auto =
            Random.State.float g.rng 1.0 < cfg.automobile_fraction
          in
          let base =
            obj v
            @: (if is_auto then "automobile" else "vehicle")
            |-> ("color", obj (pick g colors))
            |-> ("producedBy", obj (company_name (idx g cfg.companies)))
          in
          let base =
            if is_auto then begin
              incr automobile_count;
              base |-> ("cylinders", int (pick g cylinder_choices))
            end
            else base
          in
          emit g (fact base);
          obj v)
    in
    if vehicles <> [] then emit g (fact (obj name |->> ("vehicles", vehicles)))
  in
  for i = 1 to cfg.managers do
    person (manager_name i) "manager"
  done;
  for i = 1 to cfg.employees - cfg.managers do
    person (employee_name i) "employee"
  done;
  for i = 1 to cfg.companies do
    emit g
      (fact
         (obj (company_name i)
         @: "company"
         |-> ("city", obj (city_name (idx g cfg.cities)))
         |-> ("president", obj (manager_name (idx g cfg.managers)))))
  done;
  (* One deterministic witness for the section-2 manager query: m1 owns a
     red automobile produced by a company located in city1 whose president
     is m1 itself. *)
  emit g
    (fact
       (obj "planted_car"
       @: "automobile"
       |-> ("color", obj "red")
       |-> ("cylinders", int 4)
       |-> ("producedBy", obj "planted_co")));
  emit g (fact (obj (manager_name 1) |->> ("vehicles", [ obj "planted_car" ])));
  emit g
    (fact
       (obj "planted_co"
       @: "company"
       |-> ("city", obj "city1")
       |-> ("president", obj (manager_name 1))));
  incr vehicle_count;
  incr automobile_count;
  (!vehicle_count, !automobile_count)

let statements cfg =
  let g = { rng = Random.State.make [| cfg.seed |]; acc = [] } in
  ignore (generate g cfg);
  List.rev g.acc

type census = {
  n_employees : int;
  n_vehicles : int;
  n_automobiles : int;
  n_companies : int;
}

let census cfg =
  let g = { rng = Random.State.make [| cfg.seed |]; acc = [] } in
  let n_vehicles, n_automobiles = generate g cfg in
  {
    n_employees = cfg.employees;
    n_vehicles;
    n_automobiles;
    n_companies = cfg.companies;
  }
