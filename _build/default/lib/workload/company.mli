(** Deterministic generator for the paper's running domain: employees,
    managers, vehicles, automobiles, companies and cities.

    Shape (matching the examples of sections 1, 2 and 6):

    - [automobile :: vehicle], [manager :: employee];
    - every employee has [age], [city], [street], [boss] (a manager) and a
      set [vehicles];
    - a fraction of vehicles are automobiles with [cylinders] (4, 6 or 8)
      and every vehicle has a [color] and [producedBy] (a company);
    - every company has a [city] and a [president] (a manager);
    - every employee [worksFor] a department.

    The same seed always yields the same statements, so experiments are
    reproducible. *)

type config = {
  seed : int;
  employees : int;
  managers : int;  (** also employees; bosses and presidents come from here *)
  companies : int;
  cities : int;
  departments : int;
  max_vehicles : int;  (** per employee, uniform in [0..max] *)
  automobile_fraction : float;  (** of vehicles *)
}

val default : config
(** 100 employees, 10 managers, 5 companies, 8 cities, 6 departments, up to
    3 vehicles each, 60% automobiles, seed 42. *)

(** [scaled n] is [default] with [n] employees and the other sizes scaled
    proportionally (at least 1 each). *)
val scaled : int -> config

(** The facts, as statements ready for [Engine.Program.create]. *)
val statements : config -> Syntax.Ast.statement list

(** Number of vehicles / automobiles the generated database contains
    (diagnostics for experiment tables). *)
type census = {
  n_employees : int;
  n_vehicles : int;
  n_automobiles : int;
  n_companies : int;
}

val census : config -> census
