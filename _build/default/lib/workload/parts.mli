(** Bill-of-materials (parts explosion) workload — the classic recursive
    aggregate-free benchmark for deductive engines, here exercising
    set-valued links and method {e arguments} ([uses@(Sub) -> Qty]).

    A BOM is a DAG of assemblies: each part uses a set of sub-parts, each
    with a per-edge quantity stored as an argument method. The closure
    program derives [contains] — which parts (transitively) contain
    which. *)

type config = {
  seed : int;
  parts : int;
  max_subparts : int;  (** per assembly *)
  depth_layers : int;  (** parts are layered to keep the DAG acyclic *)
}

val default : config

(** Facts: [p7 : part.], [p7\[sub ->> {p12, p15}\].],
    [p7\[qty@(p12) -> 3\].] ... *)
val statements : config -> Syntax.Ast.statement list

(** The closure rules: [contains] as the transitive closure of [sub]. *)
val contains_rules : Syntax.Ast.statement list

(** Part name of index [i]. *)
val part : int -> string

(** Reference closure on the generated DAG (oracle): part index to the
    sorted list of indexes it transitively contains. *)
val closure : config -> (int * int list) list
