lib/workload/graph.mli: Syntax
