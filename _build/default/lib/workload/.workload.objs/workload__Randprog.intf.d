lib/workload/randprog.mli:
