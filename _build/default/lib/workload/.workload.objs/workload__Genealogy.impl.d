lib/workload/genealogy.ml: Array Hashtbl Int List Option Printf Random Set Syntax
