lib/workload/genealogy.mli: Syntax
