lib/workload/randprog.ml: Array List Printf Random String
