lib/workload/graph.ml: List Printf Random Syntax
