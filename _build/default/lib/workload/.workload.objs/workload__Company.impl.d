lib/workload/company.ml: Array List Printf Random Syntax
