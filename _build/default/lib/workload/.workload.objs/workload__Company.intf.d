lib/workload/company.mli: Syntax
