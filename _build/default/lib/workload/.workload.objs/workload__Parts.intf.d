lib/workload/parts.mli: Syntax
