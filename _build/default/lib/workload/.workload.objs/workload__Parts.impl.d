lib/workload/parts.ml: Array Fun Hashtbl Int List Option Printf Random Set Syntax
