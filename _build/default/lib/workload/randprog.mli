(** Random safe, positive, flat rule programs over a small vocabulary —
    the fuel for differential testing and the soak driver.

    Programs combine membership/scalar/set facts with recursive set-valued
    rules; every rule is range-restricted by construction. Scalar facts
    can still conflict (two results for one application) and that is
    intentional: consumers treat [Functional_conflict] as an expected
    outcome, not a failure. *)

type config = {
  seed : int;
  facts : int;
  rules : int;
}

val default : config

val generate : config -> string
(** Deterministic in [seed]. *)
