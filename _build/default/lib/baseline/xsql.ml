module Store = Oodb.Store

type selector = Svar of string | Sname of string | Sint of int

type step = { meth : string; selector : selector option }

type root = Rvar of string | Rname of string

type spath = { root : root; steps : step list }

type query = {
  select : string list;
  ranges : (string * string) list;
  paths : spath list;
}

let pp_selector ppf = function
  | Svar v -> Format.fprintf ppf "[%s]" v
  | Sname n -> Format.fprintf ppf "[%s]" n
  | Sint n -> Format.fprintf ppf "[%d]" n

let pp_path ppf p =
  (match p.root with
  | Rvar v -> Format.pp_print_string ppf v
  | Rname n -> Format.pp_print_string ppf n);
  List.iter
    (fun s ->
      Format.fprintf ppf ".%s" s.meth;
      Option.iter (pp_selector ppf) s.selector)
    p.steps

let pp ppf q =
  Format.fprintf ppf "SELECT %s@ FROM %s"
    (String.concat ", " q.select)
    (String.concat ", "
       (List.map (fun (c, v) -> Printf.sprintf "%s %s" c v) q.ranges));
  List.iteri
    (fun i p ->
      Format.fprintf ppf "@ %s %a" (if i = 0 then "WHERE" else "AND") pp_path
        p)
    q.paths

let selector_ref = function
  | Svar v -> Syntax.Ast.Var v
  | Sname n -> Syntax.Ast.Name n
  | Sint n -> Syntax.Ast.Int_lit n

let to_pathlog store q =
  let open Syntax.Build in
  let set_valued m =
    Oodb.Vec.length (Store.set_bucket store (Store.name store m)) > 0
  in
  let path_ref p =
    let start =
      match p.root with Rvar v -> var v | Rname n -> obj n
    in
    List.fold_left
      (fun acc s ->
        let acc = if set_valued s.meth then dotdot acc s.meth else dot acc s.meth in
        match s.selector with
        | None -> acc
        | Some sel ->
          Syntax.Ast.Filter
            {
              f_recv = acc;
              f_meth = Name "self";
              f_args = [];
              f_rhs = Rscalar (selector_ref sel);
            })
      start p.steps
  in
  List.map (fun (c, v) -> pos (var v @: c)) q.ranges
  @ List.map (fun p -> pos (path_ref p)) q.paths

let eval store q =
  let lits = to_pathlog store q in
  let flat = Semantics.Flatten.literals store lits in
  let rows = Conjunctive.named_solutions store flat in
  (* project onto the SELECT variables *)
  let positions =
    List.map
      (fun v ->
        let rec find i = function
          | [] -> failwith ("XSQL: unknown select variable " ^ v)
          | (name, _) :: rest -> if name = v then i else find (i + 1) rest
        in
        find 0 flat.named)
      q.select
  in
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun row ->
      let arr = Array.of_list row in
      let projected = List.map (fun i -> arr.(i)) positions in
      if Hashtbl.mem seen projected then None
      else begin
        Hashtbl.add seen projected ();
        Some projected
      end)
    rows
