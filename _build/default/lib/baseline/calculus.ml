module Store = Oodb.Store
module Set = Oodb.Obj_id.Set

type step = Meth of string | Class of string

type query = { start : start; steps : step list }

and start = From_class of string | From_object of string

let pp ppf q =
  Format.fprintf ppf "{ Z | %s%s[Z] }"
    (match q.start with From_class c -> c | From_object o -> o)
    (String.concat ""
       (List.map (function Meth m -> "." ^ m | Class c -> "." ^ c) q.steps))

let eval store q =
  let start_set =
    match q.start with
    | From_class c -> Store.members store (Store.name store c)
    | From_object o -> Set.singleton (Store.name store o)
  in
  List.fold_left
    (fun cur step ->
      match step with
      | Class c ->
        let cls = Store.name store c in
        Set.filter (fun o -> Store.is_member store o cls) cur
      | Meth m ->
        let meth = Store.name store m in
        Set.fold
          (fun o acc ->
            let acc =
              match Store.scalar_lookup store ~meth ~recv:o ~args:[] with
              | Some r -> Set.add r acc
              | None -> acc
            in
            Set.union acc (Store.set_lookup store ~meth ~recv:o ~args:[]))
          cur Set.empty)
    start_set q.steps

let to_pathlog store q =
  let open Syntax.Build in
  (* the calculus traverses scalar and set-valued methods uniformly;
     PathLog distinguishes them, so pick the separator by which table the
     method has tuples in (same convention as Xsql.to_pathlog) *)
  let set_valued m =
    Oodb.Vec.length (Store.set_bucket store (Store.name store m)) > 0
  in
  let root, start_lit =
    match q.start with
    | From_class c -> (var "X0", Some (pos (var "X0" @: c)))
    | From_object o -> ((obj o : Syntax.Ast.reference), None)
  in
  let result_ref =
    List.fold_left
      (fun acc step ->
        match step with
        | Class c -> Syntax.Ast.Isa { recv = acc; cls = Name c }
        | Meth m -> if set_valued m then dotdot acc m else dot acc m)
      root q.steps
  in
  let selector =
    Syntax.Ast.Filter
      {
        f_recv = result_ref;
        f_meth = Name "self";
        f_args = [];
        f_rhs = Rscalar (var "Z");
      }
  in
  match start_lit with
  | Some l -> [ l; pos selector ]
  | None -> [ pos selector ]

let of_string ~classes text =
  match String.split_on_char '.' (String.trim text) with
  | [] | [ "" ] -> invalid_arg "Calculus.of_string: empty expression"
  | first :: rest ->
    let start =
      if List.mem first classes then From_class first else From_object first
    in
    let steps =
      List.map
        (fun name ->
          if List.mem name classes then Class name else Meth name)
        rest
    in
    { start; steps }
