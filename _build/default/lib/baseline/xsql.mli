(** A miniature XSQL — one-dimensional paths with {e selectors} (Kifer, Kim
    & Sagiv 1992), the closest prior language the paper compares against
    (queries 1.2 and 1.4).

    {[
      SELECT Z
      FROM employee X, automobile Y
      WHERE X.vehicles[Y].color[Z]
      AND Y.cylinders[4]
    ]}

    A selector [\[Y\]] names (or constrains) the intermediate result of a
    step. XSQL paths are one-dimensional: restricting a vehicle's
    cylinders {e and} continuing to its color requires two paths joined on
    the selector variable — the very limitation PathLog's second dimension
    removes (section 2). *)

type selector = Svar of string | Sname of string | Sint of int

type step = { meth : string; selector : selector option }

type root = Rvar of string | Rname of string

type spath = { root : root; steps : step list }

type query = {
  select : string list;
  ranges : (string * string) list;  (** class, variable *)
  paths : spath list;  (** conjunction of WHERE paths *)
}

val pp : Format.formatter -> query -> unit

(** Translate to PathLog literals. Steps are rendered as [..m] when the
    method has set-valued tuples in the store and [.m] otherwise (XSQL
    does not syntactically distinguish the two). *)
val to_pathlog : Oodb.Store.t -> query -> Syntax.Ast.literal list

(** Evaluate: translate, flatten, run the naive left-to-right conjunctive
    evaluator (XSQL's join-based execution model). Rows bind the SELECT
    variables. *)
val eval : Oodb.Store.t -> query -> Oodb.Obj_id.t list list
