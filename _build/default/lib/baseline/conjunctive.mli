(** Naive conjunctive-query evaluation — the one-dimensional baseline.

    This evaluator deliberately plays the role of the flat, join-based
    query processing the paper's introduction contrasts path expressions
    with: atoms are evaluated strictly {e left to right as written}, every
    method atom is answered by {e scanning the method's whole extent} (one
    flat relation per method, no indexes, no reordering), and intermediate
    bindings are carried through nested loops.

    It is also an independent implementation of the same semantics as
    {!Semantics.Solve}, which the test suite uses for differential
    testing: on every query both evaluators must produce the same answer
    set. *)

(** All satisfying assignments (full binding arrays). Order follows the
    nested-loop evaluation. *)
val solutions : Oodb.Store.t -> Semantics.Ir.query -> Oodb.Obj_id.t array list

(** Distinct named-variable rows, like {!Semantics.Solve.named_solutions}. *)
val named_solutions :
  Oodb.Store.t -> Semantics.Ir.query -> Oodb.Obj_id.t list list

val satisfiable : Oodb.Store.t -> Semantics.Ir.query -> bool
