lib/baseline/calculus.mli: Format Oodb Syntax
