lib/baseline/conjunctive.mli: Oodb Semantics
