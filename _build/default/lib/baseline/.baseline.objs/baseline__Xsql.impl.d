lib/baseline/xsql.ml: Array Conjunctive Format Hashtbl List Oodb Option Printf Semantics String Syntax
