lib/baseline/translate.ml: List Oodb Printf Semantics String
