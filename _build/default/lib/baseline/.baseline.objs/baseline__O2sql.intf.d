lib/baseline/o2sql.mli: Format Oodb Syntax
