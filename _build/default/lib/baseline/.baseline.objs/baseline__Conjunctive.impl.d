lib/baseline/conjunctive.ml: Array Fun Hashtbl List Oodb Option Semantics
