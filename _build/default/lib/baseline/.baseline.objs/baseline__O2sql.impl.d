lib/baseline/o2sql.ml: Format List Oodb String Syntax
