lib/baseline/calculus.ml: Format List Oodb String Syntax
