lib/baseline/translate.mli: Oodb Semantics Syntax
