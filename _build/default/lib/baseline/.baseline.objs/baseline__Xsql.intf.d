lib/baseline/xsql.mli: Format Oodb Syntax
