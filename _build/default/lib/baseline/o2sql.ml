module Store = Oodb.Store
module Set = Oodb.Obj_id.Set

type path = { root : string; steps : string list }

type operand =
  | Const of string
  | Const_int of int
  | Pvar of string
  | Ppath of path

type range = In_class of string * string | In_path of string * path

type condition = Eq of path * operand | Member of string * string

type query = {
  select : string list;
  ranges : range list;
  conds : condition list;
}

let pp_path ppf { root; steps } =
  Format.fprintf ppf "%s%s" root
    (String.concat "" (List.map (fun s -> "." ^ s) steps))

let pp_operand ppf = function
  | Const s -> Format.pp_print_string ppf s
  | Const_int n -> Format.pp_print_int ppf n
  | Pvar v -> Format.pp_print_string ppf v
  | Ppath p -> pp_path ppf p

let pp ppf q =
  Format.fprintf ppf "SELECT %s" (String.concat ", " q.select);
  List.iter
    (fun r ->
      match r with
      | In_class (v, c) -> Format.fprintf ppf "@ FROM %s IN %s" v c
      | In_path (v, p) -> Format.fprintf ppf "@ FROM %s IN %a" v pp_path p)
    q.ranges;
  List.iteri
    (fun i c ->
      let kw = if i = 0 then "WHERE" else "AND" in
      match c with
      | Eq (p, op) ->
        Format.fprintf ppf "@ %s %a = %a" kw pp_path p pp_operand op
      | Member (v, c) -> Format.fprintf ppf "@ %s %s IN %s" kw v c)
    q.conds

(* 1-D path evaluation: follow each step through the scalar function or the
   set-valued method (GEM-style uniform traversal). *)
let eval_path store env { root; steps } : Set.t =
  let start =
    match List.assoc_opt root env with
    | Some o -> Set.singleton o
    | None -> Set.empty
  in
  List.fold_left
    (fun cur step ->
      let meth = Store.name store step in
      Set.fold
        (fun o acc ->
          let acc =
            match Store.scalar_lookup store ~meth ~recv:o ~args:[] with
            | Some r -> Set.add r acc
            | None -> acc
          in
          Set.union acc (Store.set_lookup store ~meth ~recv:o ~args:[]))
        cur Set.empty)
    start steps

let eval_operand store env = function
  | Const s -> Set.singleton (Store.name store s)
  | Const_int n -> Set.singleton (Store.int store n)
  | Pvar v -> (
    match List.assoc_opt v env with
    | Some o -> Set.singleton o
    | None -> Set.empty)
  | Ppath p -> eval_path store env p

(* A condition is checked as soon as every variable it mentions is bound. *)
let condition_vars = function
  | Eq (p, op) -> (
    p.root :: (match op with Pvar v -> [ v ] | Ppath p' -> [ p'.root ]
              | Const _ | Const_int _ -> []))
  | Member (v, _) -> [ v ]

let check_condition store env = function
  | Eq (p, op) ->
    let left = eval_path store env p in
    let right = eval_operand store env op in
    not (Set.is_empty (Set.inter left right))
  | Member (v, c) -> (
    match List.assoc_opt v env with
    | Some o -> Store.is_member store o (Store.name store c)
    | None -> false)

let eval store q =
  let rows = ref [] in
  (* After the FROM loops, remaining conditions either check (fully bound)
     or bind: Eq(path, Pvar v) with [v] unbound enumerates the path's
     values, which is how "SELECT Z ... WHERE Y.color = Z" projects. *)
  let rec finish env = function
    | [] ->
      let row =
        List.map
          (fun v ->
            match List.assoc_opt v env with
            | Some o -> o
            | None -> failwith ("O2SQL: unbound select variable " ^ v))
          q.select
      in
      rows := row :: !rows
    | Eq (p, Pvar v) :: rest when List.assoc_opt v env = None ->
      Set.iter (fun o -> finish ((v, o) :: env) rest) (eval_path store env p)
    | cond :: rest -> if check_condition store env cond then finish env rest
  in
  let rec loop env remaining_ranges pending_conds =
    let bound = List.map fst env in
    let ready, pending =
      List.partition
        (fun c -> List.for_all (fun v -> List.mem v bound) (condition_vars c))
        pending_conds
    in
    if List.for_all (check_condition store env) ready then
      match remaining_ranges with
      | [] -> finish env pending
      | In_class (v, c) :: rest ->
        Set.iter
          (fun o -> loop ((v, o) :: env) rest pending)
          (Store.members store (Store.name store c))
      | In_path (v, p) :: rest ->
        Set.iter
          (fun o -> loop ((v, o) :: env) rest pending)
          (eval_path store env p)
  in
  loop [] q.ranges q.conds;
  List.rev !rows

(* Translation into PathLog: each range and condition becomes one literal —
   exactly the "conjunction of several paths" shape (query 1.4). *)
let to_pathlog q =
  let open Syntax.Build in
  let path_ref p =
    List.fold_left (fun acc m -> dot acc m) (var p.root) p.steps
  in
  let range_lit = function
    | In_class (v, c) -> pos (var v @: c)
    | In_path (v, p) ->
      (* v ranges over a set-valued 1-D path: the last step is set valued *)
      let rec build root = function
        | [] -> root
        | [ last ] -> dotdot root last
        | s :: rest -> build (dot root s) rest
      in
      pos
        (Syntax.Ast.Filter
           {
             f_recv = build (var p.root) p.steps;
             f_meth = Name "self";
             f_args = [];
             f_rhs = Rscalar (var v);
           })
  in
  let cond_lit = function
    | Eq (p, op) ->
      let rhs =
        match op with
        | Const s -> obj s
        | Const_int n -> int n
        | Pvar v -> var v
        | Ppath p' -> path_ref p'
      in
      pos
        (Syntax.Ast.Filter
           {
             f_recv = path_ref p;
             f_meth = Name "self";
             f_args = [];
             f_rhs = Rscalar rhs;
           })
    | Member (v, c) -> pos (var v @: c)
  in
  List.map range_lit q.ranges @ List.map cond_lit q.conds
