(** The 2-D -> 1-D translation: every PathLog reference is equivalent to a
    conjunction of one-dimensional paths over fresh intermediate variables.

    This module makes the paper's conciseness claim measurable: flatten the
    reference (shared with the solver) and render each core atom back as a
    one-dimensional XSQL-style condition. {!conjunct_count} is the number
    of 1-D conditions a one-dimensional language needs for the same
    reference — experiment E2 reports it next to "1 reference". *)

(** Flattened form (re-exported convenience). *)
val flatten :
  Oodb.Store.t -> Syntax.Ast.reference -> Semantics.Ir.query * Semantics.Ir.term

(** How many 1-D conditions the reference flattens to (nested sub-query
    atoms counted recursively). *)
val conjunct_count : Oodb.Store.t -> Syntax.Ast.reference -> int

(** Render the flattening as an XSQL-style query text, e.g.

    {v SELECT Z
       FROM employee X, automobile _2
       WHERE X.vehicles[_2] AND _2.cylinders[4] AND _2.color[Z] v} *)
val to_xsql_text :
  Oodb.Store.t -> select:string list -> Syntax.Ast.reference -> string
