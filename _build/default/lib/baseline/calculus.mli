(** The calculus-style path language of Van den Bussche & Vossen [VV93] —
    the paper's query (1.3):

    {v { Z | employee.vehicles.automobile.color[Z] } v}

    Paths are one-dimensional and variable-free except for the final
    selector: each step is either a {e method} application (scalar or set
    valued, traversed uniformly) or a {e class name}, which filters the
    current object set by membership. The expression denotes the set of
    objects reached.

    Like the other baselines this is both a comparison point for E1 and an
    independent implementation to differential-test the PathLog engine
    against. *)

type step =
  | Meth of string  (** apply a method, scalar or set valued *)
  | Class of string  (** keep only members of the class *)

type query = {
  start : start;
  steps : step list;
}

and start =
  | From_class of string  (** all members of a class, e.g. [employee] *)
  | From_object of string  (** a named object *)

val pp : Format.formatter -> query -> unit

(** Objects denoted by the expression. *)
val eval : Oodb.Store.t -> query -> Oodb.Obj_id.Set.t

(** The equivalent PathLog query: one reference, the result bound to [Z].
    The calculus traverses scalar and set-valued methods uniformly while
    PathLog distinguishes [.]/[..]; the separator is chosen by which table
    the method populates in [store] (same convention as
    {!Xsql.to_pathlog}). *)
val to_pathlog : Oodb.Store.t -> query -> Syntax.Ast.literal list

(** Parse the paper's concrete notation, e.g.
    ["employee.vehicles.automobile.color"] — dot-separated names. A name in
    [classes] becomes a class-filter step, any other name a method step. *)
val of_string : classes:string list -> string -> query
