(** A miniature O2SQL — the one-dimensional comparison language of the
    paper's introduction (queries 1.1 and the manager query of section 2).

    {[
      SELECT Z
      FROM X IN employee
      FROM Y IN X.vehicles
      WHERE Y IN automobile
      AND Y.color = Z
    ]}

    Range variables iterate over classes or over the value of a set-valued
    1-D path rooted at an earlier variable; WHERE conditions compare scalar
    1-D paths with constants, variables or other paths. Evaluation is the
    classic naive strategy: nested loops over the FROM clauses {e in the
    order written}, conditions checked once their variables are bound —
    no reordering, no indexes. *)

type path = {
  root : string;  (** range variable *)
  steps : string list;  (** method names, applied left to right *)
}

type operand =
  | Const of string  (** a name *)
  | Const_int of int
  | Pvar of string
  | Ppath of path

type range =
  | In_class of string * string  (** X IN employee *)
  | In_path of string * path  (** Y IN X.vehicles *)

type condition =
  | Eq of path * operand  (** Y.color = red *)
  | Member of string * string  (** Y IN automobile *)

type query = {
  select : string list;
  ranges : range list;
  conds : condition list;
}

val pp : Format.formatter -> query -> unit

(** Evaluate with naive nested loops over the store. Rows are the bindings
    of the SELECT variables. *)
val eval : Oodb.Store.t -> query -> Oodb.Obj_id.t list list

(** The equivalent PathLog query literals (used to check answer-set
    equality against the PathLog engine). Restriction: an [In_path] range
    must have scalar steps followed by one final set-valued step (which is
    how the paper's O2SQL examples always use them). *)
val to_pathlog : query -> Syntax.Ast.literal list
