(** Pretty-printing back to concrete PathLog syntax.

    The output reparses to the same AST ([Parser.reference (to_string t) =
    t] for parser-produced [t]); property-tested in the test suite.
    Method and class positions that are not simple references are
    defensively parenthesised, so printing is total even for hand-built
    ASTs. *)

val pp_reference : Format.formatter -> Ast.reference -> unit

val pp_literal : Format.formatter -> Ast.literal -> unit

val pp_rule : Format.formatter -> Ast.rule -> unit

val pp_statement : Format.formatter -> Ast.statement -> unit

val pp_program : Format.formatter -> Ast.program -> unit

val reference_to_string : Ast.reference -> string

val rule_to_string : Ast.rule -> string

val statement_to_string : Ast.statement -> string

val program_to_string : Ast.program -> string
