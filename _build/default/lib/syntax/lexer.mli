(** Hand-written lexer.

    The one interesting decision is the two readings of ['.']: it is a path
    separator when immediately followed by the start of a simple reference
    (letter, digit, underscore, ['('] or ['"']), and the statement
    terminator otherwise (whitespace, comment, end of input, or a closing
    delimiter). This matches how the paper writes programs: statements end
    in [". "] while paths never contain spaces around the dot. *)

exception Error of Token.pos * string

(** Tokenise a whole input. Comments run from ['%'] to end of line. *)
val tokenize : string -> (Token.t * Token.pos) list
