open Ast

let obj n = Name n
let var v = Var v
let int n = Int_lit n
let str s = Str_lit s
let paren t = Paren t

let ( @: ) t c = Isa { recv = t; cls = Name c }

let ( |-> ) t (m, r) =
  Filter { f_recv = t; f_meth = Name m; f_args = []; f_rhs = Rscalar r }

let ( |->> ) t (m, rs) =
  Filter { f_recv = t; f_meth = Name m; f_args = []; f_rhs = Rset_enum rs }

let ( |->>+ ) t (m, s) =
  Filter { f_recv = t; f_meth = Name m; f_args = []; f_rhs = Rset_ref s }

let dot ?(args = []) t m =
  Path { p_recv = t; p_sep = Dot; p_meth = Name m; p_args = args }

let dotdot ?(args = []) t m =
  Path { p_recv = t; p_sep = Dotdot; p_meth = Name m; p_args = args }

let dot_ref ?(args = []) t m =
  Path { p_recv = t; p_sep = Dot; p_meth = m; p_args = args }

let dotdot_ref ?(args = []) t m =
  Path { p_recv = t; p_sep = Dotdot; p_meth = m; p_args = args }

let fact head = Rule { head; body = [] }
let rule head body = Rule { head; body }
let query lits = Query lits
let pos t = Pos t
let neg t = Neg t

let signature rhs ?(args = []) cls meth =
  Rule
    {
      head =
        Filter
          {
            f_recv = Name cls;
            f_meth = Name meth;
            f_args = List.map (fun a -> Name a) args;
            f_rhs = rhs;
          };
      body = [];
    }

let scalar_sig ?args cls meth result =
  signature (Rsig_scalar (Name result)) ?args cls meth

let set_sig ?args cls meth result =
  signature (Rsig_set (Name result)) ?args cls meth
