lib/syntax/build.ml: Ast List
