lib/syntax/ast.mli:
