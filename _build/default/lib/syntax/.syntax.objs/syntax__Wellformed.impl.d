lib/syntax/wellformed.ml: Ast Format List Pretty Scalarity
