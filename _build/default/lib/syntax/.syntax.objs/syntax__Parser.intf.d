lib/syntax/parser.mli: Ast Token
