lib/syntax/scalarity.ml: Ast Format List
