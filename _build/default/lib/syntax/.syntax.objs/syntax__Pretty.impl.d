lib/syntax/pretty.ml: Ast Buffer Format List String
