lib/syntax/ast.ml: List Stdlib
