lib/syntax/pretty.mli: Ast Format
