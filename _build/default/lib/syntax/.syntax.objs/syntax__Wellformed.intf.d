lib/syntax/wellformed.mli: Ast Format Scalarity
