lib/syntax/build.mli: Ast
