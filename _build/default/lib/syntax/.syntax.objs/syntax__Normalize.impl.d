lib/syntax/normalize.ml: Ast List
