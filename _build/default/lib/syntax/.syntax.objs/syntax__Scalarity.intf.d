lib/syntax/scalarity.mli: Ast Format
