lib/syntax/parser.ml: Ast Format Lexer List Token
