lib/syntax/normalize.mli: Ast
