lib/syntax/token.ml: Format
