(** Scalarity of references — Definition 2 of the paper.

    A reference is set valued iff it is a [..]-path; or a [.]-path whose
    receiver, method or some argument is set valued; or a molecule or
    parenthesised reference whose first sub-reference is set valued.
    Otherwise it is scalar. *)

type t = Scalar | Set_valued

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val of_reference : Ast.reference -> t

val is_scalar : Ast.reference -> bool

val is_set_valued : Ast.reference -> bool
