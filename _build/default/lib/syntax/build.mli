(** Combinators for constructing PathLog ASTs programmatically — used by the
    workload generators, tests and examples instead of going through the
    parser.

    {[
      let open Syntax.Build in
      fact (obj "e1" @: "employee" |-> ("age", int 30) |-> ("city", obj "newYork"))
    ]} *)

open Ast

val obj : string -> reference  (** a name *)

val var : string -> reference

val int : int -> reference

val str : string -> reference

val paren : reference -> reference

(** [t @: c] is the molecule [t : c]. *)
val ( @: ) : reference -> string -> reference

(** [t |-> (m, r)] is the molecule [t\[m -> r\]]. *)
val ( |-> ) : reference -> string * reference -> reference

(** [t |->> (m, rs)] is the molecule [t\[m ->> {rs}\]]. *)
val ( |->> ) : reference -> string * reference list -> reference

(** [t |->>+ (m, s)] is the molecule [t\[m ->> s\]] with a set-valued
    reference right-hand side. *)
val ( |->>+ ) : reference -> string * reference -> reference

(** [dot t m] is the scalar path [t.m]; [dotdot t m] is [t..m]. *)
val dot : ?args:reference list -> reference -> string -> reference

val dotdot : ?args:reference list -> reference -> string -> reference

(** Path with a computed method, e.g. [dot_ref x (paren (dot m "tc"))]. *)
val dot_ref : ?args:reference list -> reference -> reference -> reference

val dotdot_ref : ?args:reference list -> reference -> reference -> reference

val fact : reference -> statement

val rule : reference -> literal list -> statement

val query : literal list -> statement

val pos : reference -> literal

val neg : reference -> literal

(** [scalar_sig c m r] is the declaration [c\[m => r\]]. *)
val scalar_sig : ?args:string list -> string -> string -> string -> statement

val set_sig : ?args:string list -> string -> string -> string -> statement
