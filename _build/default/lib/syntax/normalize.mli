(** Semantics-preserving normalisation of references.

    References admit many syntactic variants with the same valuation —
    redundant parentheses, [self] steps, duplicate filters, permuted
    restriction chains ([t\[a -> 1\]\[b -> 2\]] vs [t\[b -> 2\]\[a -> 1\]]
    vs [t\[a -> 1; b -> 2\]]). {!reference} rewrites to a canonical form:

    - [(t)] is unwrapped ([nu(Paren t) = nu(t)]);
    - [t.self] and [t..self] become [t] (the identity method);
    - enumerated sets drop duplicate elements;
    - maximal chains of {e restrictions} (filters and class memberships
      over the same base) are deduplicated and sorted canonically —
      restrictions intersect the base's denotation, so they commute.

    The induced equivalence {!equal} decides "syntactically different but
    trivially the same" — used by tests and available to users. The
    valuation-invariance of the rewrite is property-tested against
    Definition 4. *)

val reference : Ast.reference -> Ast.reference

val literal : Ast.literal -> Ast.literal

val rule : Ast.rule -> Ast.rule

(** Equality modulo normalisation. *)
val equal : Ast.reference -> Ast.reference -> bool
