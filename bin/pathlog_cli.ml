(* pathlog — command-line driver.

   pathlog run FILE [--query Q]... [--dump] [--stats] [--naive] [--types]
   pathlog check FILE [--json] [--deny LEVEL]   full static analysis
   pathlog repl [FILE]           interactive queries against a loaded program
   pathlog serve FILE            long-running concurrent query server
   pathlog connect               client for a running server

   Exit codes (see Err): 0 ok, 1 runtime error, 2 load error, 3 static
   analysis refused the program. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let config_of ~naive ~hilog ~max_rounds ~max_objects ~jobs =
  {
    Pathlog.Fixpoint.default_config with
    mode = (if naive then Pathlog.Fixpoint.Naive else Seminaive);
    hilog_virtual = hilog;
    max_rounds;
    max_objects;
    jobs;
  }

let with_errors store f =
  try f () with
  | Pathlog.Program.Invalid msg ->
    Printf.eprintf "error: %s\n" msg;
    exit Pathlog.Err.exit_load
  | e -> (
    match Option.bind store (fun st -> Pathlog.Err.message st e) with
    | Some msg ->
      Printf.eprintf "error: %s\n" msg;
      exit Pathlog.Err.exit_runtime
    | None -> raise e)

let print_answer p query answer =
  Printf.printf "?- %s\n" query;
  match (answer : Pathlog.Program.answer) with
  | { columns = []; rows } ->
    print_endline (if rows = [] then "no" else "yes")
  | { columns; rows } ->
    Printf.printf "%s\n" (String.concat "\t" columns);
    List.iter
      (fun row -> print_endline (Pathlog.Program.row_to_string p row))
      rows;
    Printf.printf "(%d answers)\n" (List.length rows)

(* ------------------------------------------------------------------ *)

let pp_query_lits ppf lits =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    Pathlog.Pretty.pp_literal ppf lits

(* run --demand: no up-front materialisation — each query (embedded or
   --query) runs the magic-sets transform and fixpoints only its demanded
   fragment (see DESIGN.md); unsound cases fall back to a full run with a
   notice. *)
let run_demand p ~budget ~stats queries =
  let answer name run =
    let a, (r : Pathlog.Program.demand_report) = run () in
    (match r.Pathlog.Program.d_fallback with
    | Some fb ->
      Printf.printf "%% demand fallback (%s): full materialisation ran\n"
        (Pathlog.Demand.fallback_to_string fb)
    | None ->
      if stats then
        Printf.printf
          "%% demand: %d seeds, %d magic rules, %d guarded, %d unguarded, \
           %d magic facts\n"
          r.d_seeds r.d_magic_rules r.d_guarded r.d_unguarded
          r.d_magic_facts);
    if stats then
      Format.printf "%% %a@." Pathlog.Fixpoint.pp_stats r.d_stats;
    print_answer p name a
  in
  List.iter
    (fun lits ->
      answer
        (Format.asprintf "%a" pp_query_lits lits)
        (fun () -> Pathlog.Program.query_demand ?budget p lits))
    (Pathlog.Program.embedded_queries p);
  List.iter
    (fun q ->
      answer q (fun () -> Pathlog.Program.query_demand_string ?budget p q))
    queries;
  match Pathlog.Program.degraded p with
  | Some reason ->
    Format.printf
      "%% degraded: evaluation stopped early (%a); answers above are a \
       sound subset@."
      Pathlog.Budget.pp_reason reason;
    exit Pathlog.Err.exit_runtime
  | None -> ()

let run_cmd file queries dump stats naive hilog max_rounds max_objects types
    prune_dead jobs deadline demand =
  let config = config_of ~naive ~hilog ~max_rounds ~max_objects ~jobs in
  let budget =
    Option.map
      (fun d -> Pathlog.Budget.create ~deadline_in:d ())
      deadline
  in
  let p =
    with_errors None (fun () ->
        Pathlog.Program.of_string ~config (read_file file))
  in
  let st = Pathlog.Program.store p in
  if demand then
    with_errors (Some st) (fun () ->
        run_demand p ~budget ~stats queries;
        if dump then Format.printf "%a" Pathlog.Store.pp st)
  else
  with_errors (Some st) (fun () ->
      let s =
        if prune_dead then begin
          let s, skipped = Pathlog.Program.run_live p in
          Printf.printf "%% pruned: %d dead rules skipped\n" skipped;
          s
        end
        else Pathlog.Program.run ?budget p
      in
      if stats then
        Format.printf "%% %a@." Pathlog.Fixpoint.pp_stats s;
      (match Pathlog.Program.degraded p with
      | Some reason ->
        (* the partial model is sound but incomplete; refuse to answer
           queries over it and exit nonzero so scripts notice *)
        Format.printf
          "%% degraded: evaluation stopped early (%a); the model is a \
           sound partial model, queries skipped@."
          Pathlog.Budget.pp_reason reason;
        exit Pathlog.Err.exit_runtime
      | None -> ());
      List.iter
        (fun (lits, answer) ->
          print_answer p
            (Format.asprintf "%a"
               (Format.pp_print_list
                  ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
                  Pathlog.Pretty.pp_literal)
               lits)
            answer)
        (Pathlog.Program.run_queries p);
      List.iter
        (fun q -> print_answer p q (Pathlog.Program.query_string p q))
        queries;
      if types then begin
        match Pathlog.Program.check_types p ~mode:`Lenient with
        | [] -> print_endline "% types: ok"
        | violations ->
          List.iter
            (fun v ->
              Format.printf "%% type violation: %a@."
                (Pathlog.Signature.pp_violation st)
                v)
            violations;
          exit Pathlog.Err.exit_analysis
      end;
      if dump then Format.printf "%a" Pathlog.Store.pp st)

let check_cmd file json deny estimates card_threshold =
  let text = read_file file in
  let result = Pathlog.Check.analyze ?card_threshold text in
  let denied =
    List.exists
      (fun (d : Pathlog.Diagnostic.t) ->
        Pathlog.Diagnostic.severity_rank d.severity
        >= Pathlog.Diagnostic.severity_rank deny)
      result.diagnostics
  in
  if json then print_endline (Pathlog.Check.to_json result)
  else begin
    List.iter
      (fun d -> print_endline (Pathlog.Diagnostic.to_string ~file d))
      result.diagnostics;
    (if estimates then
       match Pathlog.Check.program_of text with
       | Some (store, rules, _) ->
         let t = Pathlog.Absint.analyze store rules in
         List.iter print_endline (Pathlog.Absint.describe store t)
       | None -> ());
    if (not denied) && Pathlog.Check.ok result then begin
      Printf.printf "ok: %d rules, %d strata\n" result.n_rules
        result.n_strata;
      match Pathlog.Program.of_string text with
      | p ->
        Array.iteri
          (fun i rules ->
            List.iter
              (fun (r : Pathlog.Rule.t) ->
                Format.printf "  stratum %d: %a@." i Pathlog.Pretty.pp_rule
                  r.source)
              rules)
          (Pathlog.Program.strata p)
      | exception Pathlog.Program.Invalid _ -> ()
    end
  end;
  if denied then exit Pathlog.Err.exit_analysis

let explain_cmd file queries demand estimates =
  let p =
    with_errors None (fun () -> Pathlog.Program.of_string (read_file file))
  in
  let st = Pathlog.Program.store p in
  (* --estimates: rank joins from (and annotate plan nodes with) the
     abstract interpreter's predicted cardinalities *)
  if estimates then begin
    let t = Pathlog.Absint.analyze st (Pathlog.Program.rules p) in
    Pathlog.Program.set_estimates p (Some (Pathlog.Absint.estimator t st))
  end;
  with_errors (Some st) (fun () ->
      if demand then
        (* the adorned, magic-transformed program per query — no
           evaluation happens *)
        List.iter
          (fun q ->
            Printf.printf "?- %s\n" q;
            List.iter print_endline
              (Pathlog.Program.explain_demand_string p q))
          queries
      else begin
        ignore (Pathlog.Program.run p);
        List.iter
          (fun q ->
            Printf.printf "?- %s\n" q;
            List.iteri
              (fun i line -> Printf.printf "  %d. %s\n" (i + 1) line)
              (Pathlog.Program.explain_string p q))
          queries
      end)

let query_cmd file strategy queries =
  let p =
    with_errors None (fun () -> Pathlog.Program.of_string (read_file file))
  in
  let st = Pathlog.Program.store p in
  with_errors (Some st) (fun () ->
      List.iter
        (fun q ->
          let lits =
            match Pathlog.Parser.literals q with
            | lits -> lits
            | exception Pathlog.Parser.Error (pos, msg) ->
              Printf.eprintf "error: %s: %s\n"
                (Format.asprintf "%a" Pathlog.Token.pp_pos pos)
                msg;
              exit 1
          in
          match strategy with
          | "full" ->
            ignore (Pathlog.Program.run p);
            print_answer p q (Pathlog.Program.query p lits)
          | "focused" ->
            let answer, stats, considered =
              Pathlog.Program.query_focused p lits
            in
            Format.printf "%% focused: %d rules, %a@." considered
              Pathlog.Fixpoint.pp_stats stats;
            print_answer p q answer
          | "topdown" -> (
            match Pathlog.Program.query_topdown p lits with
            | Some (answer, stats) ->
              Printf.printf
                "%% topdown: %d goals, %d tabled tuples, %d passes\n"
                stats.goals stats.answers stats.passes;
              print_answer p q answer
            | None ->
              print_endline
                "% topdown: not applicable (falling back to full)";
              ignore (Pathlog.Program.run p);
              print_answer p q (Pathlog.Program.query p lits))
          | other ->
            Printf.eprintf "error: unknown strategy %s\n" other;
            exit 1)
        queries)

let why_cmd file queries =
  let p =
    with_errors None (fun () -> Pathlog.Program.of_string (read_file file))
  in
  let st = Pathlog.Program.store p in
  with_errors (Some st) (fun () ->
      ignore (Pathlog.Program.run p);
      let u = Pathlog.Program.universe p in
      List.iter
        (fun q ->
          match Pathlog.Program.why_string p q with
          | Some proof ->
            Format.printf "%a@." (Pathlog.Provenance.pp_proof u) proof
          | None -> Printf.printf "%s: not in the model\n" q)
        queries)

let lint_cmd file =
  let p =
    with_errors None (fun () -> Pathlog.Program.of_string (read_file file))
  in
  match Pathlog.Program.lint_types p with
  | [] -> print_endline "lint: no warnings"
  | warnings ->
    List.iter
      (fun w ->
        Format.printf "warning: %a@." Pathlog.Typecheck.pp_warning w)
      warnings;
    exit Pathlog.Err.exit_analysis

let fmt_cmd file normalize =
  let statements =
    match Pathlog.Parser.program (read_file file) with
    | stmts -> stmts
    | exception Pathlog.Parser.Error (pos, msg) ->
      Format.eprintf "error: %a: %s@." Pathlog.Token.pp_pos pos msg;
      exit 1
  in
  let statements =
    if not normalize then statements
    else
      List.map
        (function
          | Syntax.Ast.Rule r -> Syntax.Ast.Rule (Pathlog.Normalize.rule r)
          | Syntax.Ast.Query lits ->
            Syntax.Ast.Query (List.map Pathlog.Normalize.literal lits))
        statements
  in
  print_string (Pathlog.Pretty.program_to_string statements)

let repl_cmd file =
  let p =
    with_errors None (fun () ->
        match file with
        | Some f -> Pathlog.load (read_file f)
        | None -> Pathlog.load "")
  in
  let st = Pathlog.Program.store p in
  print_endline "PathLog interactive query shell. Enter queries, e.g.";
  print_endline "  ?- X : employee..vehicles.color[Z].";
  print_endline "Ctrl-D to exit.";
  let rec loop () =
    print_string "?- ";
    match read_line () with
    | exception End_of_file -> ()
    | "" -> loop ()
    | line ->
      (try
         let answer = Pathlog.Program.query_string p line in
         match answer with
         | { columns = []; rows } ->
           print_endline (if rows = [] then "no" else "yes")
         | { columns; rows } ->
           Printf.printf "%s\n" (String.concat "\t" columns);
           List.iter
             (fun row ->
               print_endline (Pathlog.Program.row_to_string p row))
             rows
       with
      | Pathlog.Program.Invalid msg -> Printf.eprintf "error: %s\n" msg
      | e -> (
        match Pathlog.Err.message st e with
        | Some msg -> Printf.eprintf "error: %s\n" msg
        | None -> raise e));
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* serve / connect — the concurrent query server and its client.       *)

let server_address ~host ~port ~unix_sock =
  match unix_sock with
  | Some path -> Pathlog.Server.Unix_path path
  | None -> Pathlog.Server.Tcp (host, port)

let serve_cmd file host port unix_sock workers queue max_request deadline jobs
    faults demand admit_cost data snapshot_every =
  (match faults with
  | None -> ()
  | Some spec -> (
    match Pathlog.Fault.configure_string spec with
    | Ok () ->
      Printf.eprintf "pathlog: fault injection armed: %s\n%!" spec
    | Error msg ->
      Printf.eprintf "error: bad --faults spec: %s\n" msg;
      exit Pathlog.Err.exit_load));
  let text = read_file file in
  (* Refuse to serve a program static analysis can already prove broken:
     a conflict or divergence found mid-flight would take the whole
     server down, not one request. *)
  (match Pathlog.Check.gate text with
  | Ok _ -> ()
  | Error msg ->
    Printf.eprintf "error: program refused by static analysis:\n%s\n" msg;
    exit Pathlog.Err.exit_analysis);
  (* --demand serves from the parsed program without materialising it:
     the first sight of each query fixpoints only its demanded
     fragment *)
  let p =
    with_errors None (fun () ->
        if demand then Pathlog.parse text else Pathlog.load text)
  in
  (* --jobs N with N > 1 turns on real parallelism end to end: the query
     pool is backed by N domains instead of threads (queries evaluate
     concurrently on the lock-free read path). *)
  let config =
    {
      Pathlog.Server.default_config with
      workers = (if jobs > 1 then jobs else workers);
      pool_domains = jobs > 1;
      queue_capacity = queue;
      max_request_bytes = max_request;
      deadline_s = deadline;
      demand;
      admit_cost;
      data_dir = data;
      snapshot_every;
    }
  in
  let srv =
    match
      Pathlog.Server.create ~config ~program:p
        (server_address ~host ~port ~unix_sock)
    with
    | srv -> srv
    | exception Failure msg ->
      (* a recovered snapshot refused by the analysis gate *)
      Printf.eprintf "error: %s\n" msg;
      exit Pathlog.Err.exit_analysis
  in
  Pathlog.Server.install_signal_handlers srv;
  (match data with
  | Some dir ->
    Format.printf
      "pathlog: durable under %s (WAL fsync'd per batch, snapshot every %d \
       batches); recovery replays behind the socket@."
      dir snapshot_every
  | None -> ());
  Format.printf
    "pathlog: serving %s%s on %a (%d %s workers, queue %d); SIGINT/SIGTERM \
     drains@."
    file
    (if demand then " demand-driven" else "")
    Pathlog.Server.pp_address
    (Pathlog.Server.address srv)
    config.workers
    (if config.pool_domains then "domain" else "thread")
    queue;
  Pathlog.Server.serve srv;
  print_endline "pathlog: drained, bye"

let print_reply = function
  | Ok (Pathlog.Protocol.Ok lines) -> List.iter print_endline lines
  | Ok Pathlog.Protocol.Pong -> print_endline "PONG"
  | Ok (Pathlog.Protocol.Degraded lines) ->
    print_endline "DEGRADED (partial model; answers are sound, possibly incomplete)";
    List.iter print_endline lines
  | Ok (Pathlog.Protocol.Busy (retry_ms, msg)) ->
    Printf.printf "BUSY (retry after %dms) %s\n" retry_ms msg
  | Ok (Pathlog.Protocol.Err (code, msg)) ->
    Printf.printf "ERR %s %s\n" (Pathlog.Protocol.code_to_string code) msg
  | Error `Eof ->
    print_endline "error: server closed the connection";
    exit 1
  | Error (`Malformed msg) ->
    Printf.printf "error: malformed reply: %s\n" msg;
    exit 1

let is_raw_request line =
  match String.index_opt (line ^ " ") ' ' with
  | None -> false
  | Some i -> (
    match String.uppercase_ascii (String.sub line 0 i) with
    | "PING" | "STATS" | "QUERY" | "WHY" | "ASSERT" | "RETRACT"
    | "SUBSCRIBE" | "QUIT" ->
      true
    | _ -> false)

(* Drain DELTA frames pushed to this session's subscriptions. Called
   between REPL turns; non-blocking beyond [timeout_s]. *)
let drain_deltas c =
  let rec go () =
    match Pathlog.Client.next_delta ~timeout_s:0.05 c with
    | None -> ()
    | Some d ->
      List.iter
        (fun r -> Printf.printf "DELTA %d + %s\n" d.Pathlog.Protocol.sub_id r)
        d.Pathlog.Protocol.appeared;
      List.iter
        (fun r -> Printf.printf "DELTA %d - %s\n" d.Pathlog.Protocol.sub_id r)
        d.Pathlog.Protocol.vanished;
      go ()
  in
  go ()

let connect_cmd host port unix_sock queries =
  let addr = server_address ~host ~port ~unix_sock in
  let c =
    match Pathlog.Client.connect addr with
    | c -> c
    | exception Unix.Unix_error (e, _, _) ->
      Format.eprintf "error: cannot connect to %a: %s@."
        Pathlog.Server.pp_address addr (Unix.error_message e);
      exit 1
  in
  Fun.protect
    ~finally:(fun () -> Pathlog.Client.close c)
    (fun () ->
      if queries <> [] then
        List.iter
          (fun q ->
            print_reply
              (Pathlog.Client.request_with_retry c ("QUERY " ^ q)))
          queries
      else begin
        Format.printf
          "connected to %a; enter queries, or PING / STATS / WHY <fact> / \
           ASSERT <facts> / RETRACT <facts> / SUBSCRIBE <query> / QUIT. \
           Ctrl-D exits.@."
          Pathlog.Server.pp_address addr;
        let rec loop () =
          drain_deltas c;
          print_string "> ";
          match read_line () with
          | exception End_of_file -> ()
          | "" -> loop ()
          | line ->
            let line =
              if is_raw_request line then line else "QUERY " ^ line
            in
            print_reply (Pathlog.Client.request_with_retry c line);
            if String.uppercase_ascii (String.trim line) <> "QUIT" then
              loop ()
        in
        loop ()
      end)

(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let queries_arg =
  Arg.(
    value & opt_all string []
    & info [ "q"; "query" ] ~docv:"QUERY" ~doc:"Run $(docv) after loading.")

let dump_arg =
  Arg.(value & flag & info [ "dump" ] ~doc:"Dump the computed model.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print evaluation statistics.")

let naive_arg =
  Arg.(
    value & flag
    & info [ "naive" ] ~doc:"Use naive instead of semi-naive evaluation.")

let hilog_arg =
  Arg.(
    value & flag
    & info [ "hilog-virtual" ]
        ~doc:
          "Enumerate virtual objects for variable method positions (may \
           diverge; see DESIGN.md).")

let max_rounds_arg =
  Arg.(
    value & opt int 10_000
    & info [ "max-rounds" ] ~doc:"Fixpoint round budget per stratum.")

let max_objects_arg =
  Arg.(
    value & opt int 1_000_000
    & info [ "max-objects" ] ~doc:"Universe size budget.")

let types_arg =
  Arg.(
    value & flag
    & info [ "types" ] ~doc:"Check the model against signature declarations.")

let prune_dead_arg =
  Arg.(
    value & flag
    & info [ "prune-dead" ]
        ~doc:
          "Skip rules unreachable from the program's queries (sound: \
           answers are unchanged; see pathlog check code PL032).")

(* A plain usage error on a bad count — not a PL diagnostic; there is no
   program to analyse yet when the flag is parsed. *)
let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ | None -> Error (`Msg "must be an integer >= 1")
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value & opt jobs_conv Pathlog.Fixpoint.default_config.jobs
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Evaluate fixpoint rounds on N domains in parallel (1 = the \
           sequential engine; default from \\$PATHLOG_JOBS).")

let run_deadline_arg =
  Arg.(
    value & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock evaluation budget. When it expires mid-evaluation \
           the run stops cooperatively, keeps the sound partial model \
           derived so far, prints a degraded notice, and exits 1.")

let demand_arg =
  Arg.(
    value & flag
    & info [ "demand" ]
        ~doc:
          "Demand-driven evaluation: skip full materialisation and answer \
           each query over only the fragment its bound receivers demand \
           (magic-sets transform; falls back to a full run on negation, \
           inclusion or hilog).")

let run_t =
  Term.(
    const run_cmd $ file_arg $ queries_arg $ dump_arg $ stats_arg $ naive_arg
    $ hilog_arg $ max_rounds_arg $ max_objects_arg $ types_arg
    $ prune_dead_arg $ jobs_arg $ run_deadline_arg $ demand_arg)

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the diagnostics as a JSON object.")

let deny_arg =
  let levels =
    Arg.enum
      [
        ("error", Pathlog.Diagnostic.Error);
        ("warning", Pathlog.Diagnostic.Warning);
        ("hint", Pathlog.Diagnostic.Hint);
      ]
  in
  Arg.(
    value
    & opt levels Pathlog.Diagnostic.Error
    & info [ "deny" ] ~docv:"LEVEL"
        ~doc:
          "Exit non-zero when a diagnostic at or above $(docv) is reported \
           (error, warning, or hint; default error).")

let estimates_arg =
  Arg.(
    value & flag
    & info [ "estimates" ]
        ~doc:
          "Print the abstract interpreter's predicted cardinalities: \
           per-relation bounds, per-rule firing bounds, and per-stratum \
           termination verdicts.")

let card_threshold_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "card-threshold" ] ~docv:"N"
        ~doc:
          "PL051 threshold: warn when the predicted derivation count \
           exceeds $(docv) (default 1000000).")

let check_t =
  Term.(
    const check_cmd $ file_arg $ json_arg $ deny_arg $ estimates_arg
    $ card_threshold_arg)

let repl_file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE")

let repl_t = Term.(const repl_cmd $ repl_file_arg)

let explain_demand_arg =
  Arg.(
    value & flag
    & info [ "demand" ]
        ~doc:
          "Print the adorned, magic-transformed program the demand-driven \
           evaluator would run for each query.")

let explain_t =
  Term.(
    const explain_cmd $ file_arg $ queries_arg $ explain_demand_arg
    $ estimates_arg)

let lint_t = Term.(const lint_cmd $ file_arg)

let why_t = Term.(const why_cmd $ file_arg $ queries_arg)

let strategy_arg =
  Arg.(
    value
    & opt string "full"
    & info [ "s"; "strategy" ] ~docv:"STRATEGY"
        ~doc:"Evaluation strategy: full, focused, or topdown.")

let query_t = Term.(const query_cmd $ file_arg $ strategy_arg $ queries_arg)

let normalize_arg =
  Arg.(
    value & flag
    & info [ "normalize" ]
        ~doc:
          "Also normalise references (drop redundant parentheses and self \
           steps, sort and deduplicate filter chains).")

let fmt_t = Term.(const fmt_cmd $ file_arg $ normalize_arg)

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"TCP host to bind/connect to.")

let port_arg =
  Arg.(
    value & opt int 7411
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:"TCP port (0 binds an ephemeral port).")

let unix_sock_arg =
  Arg.(
    value & opt (some string) None
    & info [ "unix" ] ~docv:"PATH"
        ~doc:"Serve on a unix-domain socket instead of TCP.")

let workers_arg =
  Arg.(
    value & opt int Pathlog.Server.default_config.workers
    & info [ "workers" ] ~docv:"N" ~doc:"Query worker threads.")

let queue_arg =
  Arg.(
    value & opt int Pathlog.Server.default_config.queue_capacity
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Admission queue capacity; requests beyond it are shed with \
           BUSY.")

let max_request_arg =
  Arg.(
    value & opt int Pathlog.Server.default_config.max_request_bytes
    & info [ "max-request" ] ~docv:"BYTES"
        ~doc:"Request line size limit (TOOLARGE beyond it).")

let deadline_arg =
  Arg.(
    value & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Per-request deadline; requests that wait longer in the \
           admission queue are answered ERR TIMEOUT.")

let serve_jobs_arg =
  Arg.(
    value & opt jobs_conv 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Back the query pool with N domains instead of threads (N > 1): \
           parallel query evaluation on the lock-free read path.")

let faults_arg =
  Arg.(
    value & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Arm deterministic fault injection, e.g. \
           'seed=42;wire_write:short@0.01;solver_step:delay@0.001:2'. \
           Same grammar as \\$PATHLOG_FAULTS; see lib/fault.")

let admit_cost_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "admit-cost" ] ~docv:"BOUND"
        ~doc:
          "Admission control: refuse queries whose statically predicted \
           derivation count exceeds $(docv) with ERR COST, before any \
           evaluation starts.")

let data_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "data" ] ~docv:"DIR"
        ~doc:
          "Durability: keep a write-ahead log and epoch snapshots under \
           $(docv) (created if missing). Every accepted ASSERT/RETRACT is \
           fsync'd before its OK; restarting with the same $(docv) \
           recovers every acknowledged batch (snapshot + WAL replay, torn \
           tail truncated). Clients are answered BUSY while the replay \
           runs.")

let snapshot_every_arg =
  Arg.(
    value & opt int 64
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:
          "With --data: cut a snapshot every $(docv) committed batches (0 \
           disables periodic snapshots; the WAL alone still recovers \
           everything).")

let serve_t =
  Term.(
    const serve_cmd $ file_arg $ host_arg $ port_arg $ unix_sock_arg
    $ workers_arg $ queue_arg $ max_request_arg $ deadline_arg
    $ serve_jobs_arg $ faults_arg $ demand_arg $ admit_cost_arg $ data_arg
    $ snapshot_every_arg)

let connect_t =
  Term.(const connect_cmd $ host_arg $ port_arg $ unix_sock_arg $ queries_arg)

let () =
  let info =
    Cmd.info "pathlog" ~version:"1.0.0"
      ~doc:"PathLog: access to objects by path expressions and rules"
  in
  let cmds =
    Cmd.group info
      [
        Cmd.v (Cmd.info "run" ~doc:"Evaluate a program and its queries") run_t;
        Cmd.v
          (Cmd.info "check"
             ~doc:
               "Run the full static analysis: well-formedness, \
                stratification, type lint, skolem-cycle, dead-rule and \
                scalar-conflict detection")
          check_t;
        Cmd.v (Cmd.info "repl" ~doc:"Interactive query shell") repl_t;
        Cmd.v
          (Cmd.info "explain" ~doc:"Show the evaluation plan for queries")
          explain_t;
        Cmd.v
          (Cmd.info "lint"
             ~doc:"Statically check rule heads against signatures")
          lint_t;
        Cmd.v
          (Cmd.info "why" ~doc:"Show the proof tree of a derived fact")
          why_t;
        Cmd.v
          (Cmd.info "query"
             ~doc:
               "Answer queries with a chosen evaluation strategy (full, \
                focused, topdown)")
          query_t;
        Cmd.v
          (Cmd.info "fmt"
             ~doc:"Reprint a program in canonical concrete syntax")
          fmt_t;
        Cmd.v
          (Cmd.info "serve"
             ~doc:
               "Materialise a program once and serve concurrent queries \
                over TCP or a unix socket")
          serve_t;
        Cmd.v
          (Cmd.info "connect"
             ~doc:"Connect to a running pathlog server (one-shot or REPL)")
          connect_t;
      ]
  in
  exit (Cmd.eval cmds)
