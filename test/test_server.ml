(* The query server: protocol framing, admission control, metrics,
   concurrent correctness, graceful shutdown. *)

open Helpers
module Protocol = Pathlog.Protocol
module Server = Pathlog.Server
module Client = Pathlog.Client

let test_program =
  {|
  automobile :: vehicle.
  manager :: employee.
  e1 : employee[age -> 30; city -> newYork].
  e2 : employee[age -> 45; city -> boston].
  m1 : manager[age -> 50; city -> newYork].
  e1[vehicles ->> {a1, v1}].
  a1 : automobile[cylinders -> 4; color -> red].
  v1 : vehicle[color -> blue].
  |}

(* The server's own framing of an answer (columns + tab-separated rows),
   recomputed locally to validate responses byte-for-byte. *)
let expected_payload p q =
  let a = Pathlog.Program.query_string p q in
  match a.columns with
  | [] -> [ (if a.rows = [] then "no" else "yes") ]
  | columns ->
    let u = Pathlog.Program.universe p in
    String.concat "\t" columns
    :: List.map
         (fun row ->
           String.concat "\t"
             (List.map (Pathlog.Universe.to_string u) row))
         a.rows

let with_server ?config ?(program = test_program) f =
  let p = load program in
  let srv = Server.create ?config ~program:p (Server.Tcp ("127.0.0.1", 0)) in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) (fun () -> f p srv)

let with_client srv f =
  let c = Client.connect (Server.address srv) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* ------------------------------------------------------------------ *)
(* Protocol unit tests (no sockets)                                    *)

let test_parse_request () =
  let ok r line =
    Alcotest.(check bool)
      line true
      (match Protocol.parse_request line with
      | Ok got -> got = r
      | Error _ -> false)
  in
  let err line =
    Alcotest.(check bool)
      line true
      (match Protocol.parse_request line with
      | Ok _ -> false
      | Error (Protocol.Badreq, _) -> true
      | Error _ -> false)
  in
  ok Protocol.Ping "PING";
  ok Protocol.Ping "  ping  ";
  ok Protocol.Stats "STATS";
  ok Protocol.Quit "quit";
  ok (Protocol.Query "X : employee") "QUERY X : employee";
  ok (Protocol.Query "X : employee") "query   X : employee";
  ok (Protocol.Why "e1 : employee") "WHY e1 : employee";
  err "";
  err "   ";
  err "FROBNICATE all the things";
  err "QUERY";
  err "WHY   "

let roundtrip reply =
  let rendered = Protocol.render_reply reply in
  let file = Filename.temp_file "plsrv" ".wire" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out_bin file in
      output_string oc rendered;
      close_out oc;
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Protocol.read_reply ic))

let test_reply_roundtrip () =
  let check name reply =
    Alcotest.(check bool) name true (roundtrip reply = Ok reply)
  in
  check "pong" Protocol.Pong;
  check "busy" (Protocol.Busy (50, "queue full"));
  check "busy zero hint" (Protocol.Busy (0, "later"));
  check "err" (Protocol.Err (Protocol.Parse, "unexpected token"));
  check "err timeout" (Protocol.Err (Protocol.Timeout, "deadline exceeded"));
  check "err cancelled" (Protocol.Err (Protocol.Cancelled, "shutting down"));
  check "ok empty" (Protocol.Ok []);
  check "ok payload" (Protocol.Ok [ "X\tZ"; "e1\tred"; "e2\tblue" ]);
  check "degraded empty" (Protocol.Degraded []);
  check "degraded payload" (Protocol.Degraded [ "X"; "p1" ]);
  (* a hint-less BUSY from an older peer parses leniently: hint 0, whole
     rest as the message *)
  Alcotest.(check bool)
    "legacy BUSY readable" true
    (let file = Filename.temp_file "plsrv" ".wire" in
     Fun.protect
       ~finally:(fun () -> Sys.remove file)
       (fun () ->
         let oc = open_out_bin file in
         output_string oc "BUSY queue full\n";
         close_out oc;
         let ic = open_in_bin file in
         Fun.protect
           ~finally:(fun () -> close_in_noerr ic)
           (fun () ->
             Protocol.read_reply ic = Ok (Protocol.Busy (0, "queue full")))));
  (* embedded newlines are split into extra payload lines, keeping the
     frame self-describing *)
  Alcotest.(check bool)
    "newline payload reframed" true
    (roundtrip (Protocol.Ok [ "a\nb" ]) = Ok (Protocol.Ok [ "a"; "b" ]))

let test_bounded_line () =
  let file = Filename.temp_file "plsrv" ".wire" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out_bin file in
      output_string oc (String.make 100 'x' ^ "\nPING\n");
      close_out oc;
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          Alcotest.(check bool)
            "oversized line detected" true
            (Protocol.input_line_bounded ic ~max:10 = Error `Toolarge);
          (* the rest of the long line was drained: the stream is still
             framed and the next request is readable *)
          Alcotest.(check bool)
            "stream stays framed" true
            (Protocol.input_line_bounded ic ~max:10 = Ok "PING");
          Alcotest.(check bool)
            "eof" true
            (Protocol.input_line_bounded ic ~max:10 = Error `Eof)))

let test_histogram () =
  let h = Pathlog.Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Pathlog.Histogram.count h);
  Alcotest.(check bool)
    "empty percentile" true
    (Pathlog.Histogram.percentile h 0.99 = 0.);
  (* 100 observations: 1ms .. 100ms *)
  for i = 1 to 100 do
    Pathlog.Histogram.observe h (float_of_int i /. 1000.)
  done;
  Alcotest.(check int) "count" 100 (Pathlog.Histogram.count h);
  Alcotest.(check bool) "min" true (Pathlog.Histogram.min_s h = 0.001);
  Alcotest.(check bool) "max" true (Pathlog.Histogram.max_s h = 0.1);
  let p99 = Pathlog.Histogram.percentile h 0.99 in
  (* the true p99 is 99ms; bucketed answer must be an upper bound within
     one bucket (<= 100ms) *)
  Alcotest.(check bool)
    (Printf.sprintf "p99 bound (%f)" p99)
    true
    (p99 >= 0.099 && p99 <= 0.1);
  let p50 = Pathlog.Histogram.percentile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 bound (%f)" p50)
    true
    (p50 >= 0.05 && p50 <= 0.1);
  Alcotest.(check bool)
    "mean" true
    (abs_float (Pathlog.Histogram.mean_s h -. 0.0505) < 1e-9);
  let total_bucketed =
    List.fold_left (fun acc (_, c) -> acc + c) 0 (Pathlog.Histogram.buckets h)
  in
  Alcotest.(check int) "buckets cover all" 100 total_bucketed

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let test_pool_sheds_and_drains () =
  let pool = Pathlog.Pool.create ~workers:1 ~capacity:2 () in
  let gate = Mutex.create () in
  let ran = Atomic.make 0 in
  Mutex.lock gate;
  (* the worker parks on the gate; everything else sits in the queue *)
  let blocker () =
    Mutex.lock gate;
    Mutex.unlock gate;
    Atomic.incr ran
  in
  Alcotest.(check bool)
    "first job admitted" true
    (Pathlog.Pool.submit pool blocker = `Accepted);
  (* give the worker a moment to pick it up, then fill the queue *)
  Thread.delay 0.05;
  let accepted = ref 0 and rejected = ref 0 in
  for _ = 1 to 10 do
    match Pathlog.Pool.submit pool (fun () -> Atomic.incr ran) with
    | `Accepted -> incr accepted
    | `Rejected -> incr rejected
  done;
  Alcotest.(check int) "capacity admits exactly 2" 2 !accepted;
  Alcotest.(check int) "the rest shed" 8 !rejected;
  Mutex.unlock gate;
  Pathlog.Pool.shutdown pool;
  Alcotest.(check int) "every admitted job ran" 3 (Atomic.get ran);
  Alcotest.(check bool)
    "submit after shutdown rejected" true
    (Pathlog.Pool.submit pool (fun () -> ()) = `Rejected)

(* ------------------------------------------------------------------ *)
(* End-to-end over TCP loopback                                        *)

let test_server_basics () =
  with_server (fun p srv ->
      with_client srv (fun c ->
          Alcotest.(check bool) "ping" true (Client.ping c);
          (* ground queries *)
          Alcotest.(check bool)
            "ground yes" true
            (Client.query c "e1 : employee" = Ok [ "yes" ]);
          Alcotest.(check bool)
            "ground no" true
            (Client.query c "e2 : manager" = Ok [ "no" ]);
          (* a variable query, validated against local evaluation *)
          let q = "X : employee..vehicles : automobile.color[Z]" in
          Alcotest.(check bool)
            "query payload matches local evaluation" true
            (Client.query c q = Ok (expected_payload p q));
          (* WHY gives a proof tree *)
          (match Client.why c "e1 : employee" with
          | Ok (first :: _) ->
            Alcotest.(check bool)
              "proof mentions the fact" true
              (contains ~sub:"e1 : employee" first)
          | Ok [] | Error _ -> Alcotest.fail "WHY failed");
          (match Client.why c "e2 : manager" with
          | Ok lines ->
            Alcotest.(check bool)
              "unknown fact" true
              (lines = [ "not in the model" ])
          | Error _ -> Alcotest.fail "WHY on absent fact failed");
          (* errors never kill the connection *)
          (match Client.request c "QUERY ][ not a query" with
          | Ok (Protocol.Err (Protocol.Parse, _)) -> ()
          | _ -> Alcotest.fail "expected ERR PARSE");
          (match Client.request c "frobnicate" with
          | Ok (Protocol.Err (Protocol.Badreq, _)) -> ()
          | _ -> Alcotest.fail "expected ERR BADREQ");
          Alcotest.(check bool) "alive after errors" true (Client.ping c);
          (* STATS reflects the traffic *)
          match Client.stats c with
          | Error e -> Alcotest.fail ("STATS failed: " ^ e)
          | Ok lines ->
            let has prefix =
              List.exists (String.starts_with ~prefix) lines
            in
            Alcotest.(check bool) "requests_total" true
              (has "requests_total");
            Alcotest.(check bool) "per-verb counters" true
              (has "requests QUERY ok");
            Alcotest.(check bool) "error counters" true
              (has "requests QUERY error");
            Alcotest.(check bool) "latency histogram" true
              (has "latency_p99_us" && has "latency_le");
            Alcotest.(check bool) "store stats" true
              (has "store_objects" && has "store_scalar_tuples")))

let test_server_oversized_request () =
  let config = { Server.default_config with max_request_bytes = 64 } in
  with_server ~config (fun _p srv ->
      with_client srv (fun c ->
          (match Client.request c ("QUERY " ^ String.make 500 'x') with
          | Ok (Protocol.Err (Protocol.Toolarge, _)) -> ()
          | _ -> Alcotest.fail "expected ERR TOOLARGE");
          (* the oversized line was drained; the session still works *)
          Alcotest.(check bool) "alive after TOOLARGE" true (Client.ping c);
          Alcotest.(check bool)
            "still answers" true
            (Client.query c "e1 : employee" = Ok [ "yes" ])))

let test_server_parallel_clients () =
  with_server (fun p srv ->
      let queries =
        [|
          "X : employee";
          "X : vehicle";
          "a1.color[Z]";
          "e1 : employee";
          "X : employee[city -> newYork]";
          "X : manager";
          "v1.color[Z]";
          "X : employee[age -> A]";
        |]
      in
      let expected = Array.map (expected_payload p) queries in
      let failures = Atomic.make 0 in
      let client_thread k =
        with_client srv (fun c ->
            for i = 0 to 49 do
              let qi = (k + i) mod Array.length queries in
              match Client.query c queries.(qi) with
              | Ok lines when lines = expected.(qi) -> ()
              | _ -> Atomic.incr failures
            done)
      in
      let threads = List.init 8 (fun k -> Thread.create client_thread k) in
      List.iter Thread.join threads;
      Alcotest.(check int)
        "8 clients x 50 requests, zero wrong or cross-wired answers" 0
        (Atomic.get failures))

let test_server_busy_shedding () =
  (* one worker, no queue, 300ms artificial service time: while the first
     query is being served, a second request must be shed with BUSY *)
  let config =
    {
      Server.default_config with
      workers = 1;
      queue_capacity = 0;
      work_delay_s = 0.3;
    }
  in
  with_server ~config (fun _p srv ->
      let slow_result = ref None in
      let slow =
        Thread.create
          (fun () ->
            with_client srv (fun c ->
                slow_result := Some (Client.query c "e1 : employee")))
          ()
      in
      Thread.delay 0.1;
      (* the worker is busy and the queue has no room *)
      with_client srv (fun c ->
          (match Client.request c "QUERY e1 : employee" with
          | Ok (Protocol.Busy _) -> ()
          | other ->
            Alcotest.failf "expected BUSY, got %s"
              (match other with
              | Ok (Protocol.Ok _) -> "OK"
              | Ok (Protocol.Degraded _) -> "DEGRADED"
              | Ok Protocol.Pong -> "PONG"
              | Ok (Protocol.Err (c, _)) -> Protocol.code_to_string c
              | Ok (Protocol.Busy _) -> "BUSY"
              | Error _ -> "transport error"));
          (* inline verbs stay responsive under saturation *)
          Alcotest.(check bool) "ping under load" true (Client.ping c));
      Thread.join slow;
      match !slow_result with
      | Some (Ok [ "yes" ]) -> ()
      | Some (Ok lines) ->
        Alcotest.failf "slow request: unexpected payload [%s]"
          (String.concat "; " lines)
      | Some (Error msg) -> Alcotest.failf "slow request failed: %s" msg
      | None -> Alcotest.fail "slow request produced no result")

let test_server_deadline () =
  (* one worker, queue of one, 250ms service time, 50ms deadline: the
     queued request exceeds its deadline while waiting and is answered
     ERR TIMEOUT without being evaluated *)
  let config =
    {
      Server.default_config with
      workers = 1;
      queue_capacity = 1;
      work_delay_s = 0.25;
      deadline_s = Some 0.05;
    }
  in
  with_server ~config (fun _p srv ->
      let first = ref None and second = ref None in
      let t1 =
        Thread.create
          (fun () ->
            with_client srv (fun c ->
                first := Some (Client.query c "e1 : employee")))
          ()
      in
      Thread.delay 0.1;
      let t2 =
        Thread.create
          (fun () ->
            with_client srv (fun c ->
                second := Some (Client.request c "QUERY e1 : employee")))
          ()
      in
      Thread.join t1;
      Thread.join t2;
      Alcotest.(check bool)
        "first request served" true
        (!first = Some (Ok [ "yes" ]));
      match !second with
      | Some (Ok (Protocol.Err (Protocol.Timeout, _))) -> ()
      | _ -> Alcotest.fail "expected ERR TIMEOUT for the queued request")

let test_server_clean_shutdown () =
  let srv_ref = ref None in
  with_server (fun _p srv ->
      srv_ref := Some srv;
      (* an idle connection parked in read, and normal traffic *)
      let idle = Client.connect (Server.address srv) in
      with_client srv (fun c ->
          Alcotest.(check bool) "served before shutdown" true (Client.ping c));
      Server.shutdown srv;
      (* idle session was woken and closed *)
      Alcotest.(check bool)
        "idle connection closed" true
        (match Client.request idle "PING" with
        | Error `Eof -> true
        | Ok _ | Error (`Malformed _) -> false);
      Client.close idle;
      (* the listener is gone *)
      Alcotest.(check bool)
        "connect refused after shutdown" true
        (match Client.connect (Server.address srv) with
        | c ->
          Client.close c;
          false
        | exception Unix.Unix_error _ -> true));
  (* with_server's finally calls shutdown again: idempotency exercised *)
  match !srv_ref with
  | Some srv -> Server.shutdown srv
  | None -> Alcotest.fail "server was not created"

let test_server_unix_socket () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pathlog-test-%d.sock" (Unix.getpid ()))
  in
  let p = load test_program in
  let srv = Server.create ~program:p (Server.Unix_path path) in
  Fun.protect
    ~finally:(fun () -> Server.shutdown srv)
    (fun () ->
      let c = Client.connect (Server.Unix_path path) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Alcotest.(check bool) "ping over unix socket" true (Client.ping c);
          Alcotest.(check bool)
            "query over unix socket" true
            (Client.query c "e1 : employee" = Ok [ "yes" ])));
  Alcotest.(check bool)
    "socket file unlinked on shutdown" false (Sys.file_exists path)

(* ------------------------------------------------------------------ *)
(* Budgets end to end: deadlines kill mid-evaluation, shutdown cancels
   in-flight work, degraded models are marked on the wire.              *)

(* Enough nodes that the triple cross-join enumerates tens of millions
   of solutions — minutes of work, so only the deadline can end it. *)
let slow_query_program =
  let b = Buffer.create (1 lsl 16) in
  for i = 0 to 299 do
    Buffer.add_string b (Printf.sprintf "n%d : node. " i)
  done;
  Buffer.contents b

let slow_query = "X : node, Y : node, Z : node"

let test_mid_eval_timeout ~domains () =
  let deadline = 0.1 in
  let config =
    {
      Server.default_config with
      workers = (if domains then 4 else 1);
      pool_domains = domains;
      deadline_s = Some deadline;
    }
  in
  with_server ~config ~program:slow_query_program (fun _p srv ->
      with_client srv (fun c ->
          let t0 = Unix.gettimeofday () in
          let reply = Client.request c ("QUERY " ^ slow_query) in
          let elapsed = Unix.gettimeofday () -. t0 in
          (match reply with
          | Ok (Protocol.Err (Protocol.Timeout, _)) -> ()
          | _ -> Alcotest.fail "expected ERR TIMEOUT mid-evaluation");
          Alcotest.(check bool)
            (Printf.sprintf "killed within ~2x the deadline (%.3fs)" elapsed)
            true
            (elapsed < 2. *. deadline);
          (* the server is fine: the next request is served *)
          Alcotest.(check bool) "alive after kill" true (Client.ping c)))

let test_shutdown_cancels_inflight () =
  let config = { Server.default_config with workers = 1 } in
  with_server ~config ~program:slow_query_program (fun _p srv ->
      let result = ref None in
      let th =
        Thread.create
          (fun () ->
            with_client srv (fun c ->
                result := Some (Client.request c ("QUERY " ^ slow_query))))
          ()
      in
      Thread.delay 0.15;
      (* the evaluation would run for minutes; shutdown must cancel it *)
      let t0 = Unix.gettimeofday () in
      Server.shutdown srv;
      let drain = Unix.gettimeofday () -. t0 in
      Thread.join th;
      Alcotest.(check bool)
        (Printf.sprintf "drain was prompt (%.3fs)" drain)
        true (drain < 5.);
      match !result with
      | Some (Ok (Protocol.Err (Protocol.Cancelled, _))) -> ()
      | Some (Error `Eof) ->
        (* also acceptable: the reply raced the socket teardown *)
        ()
      | _ -> Alcotest.fail "expected ERR CANCELLED for the in-flight query")

let test_degraded_marker () =
  (* a program whose materialisation was cut short by a budget: every OK
     answer over it must be marked DEGRADED on the wire, and the STATS
     counters must say so *)
  let config =
    {
      Pathlog.Fixpoint.default_config with
      max_rounds = 1_000_000;
      max_objects = 1_000_000_000;
    }
  in
  let p =
    Pathlog.Program.of_string ~config
      "p0 : pair. X.left : pair <- X : pair."
  in
  ignore
    (Pathlog.Program.run
       ~budget:(Pathlog.Budget.create ~max_derivations:20 ()) p);
  Alcotest.(check bool)
    "program is degraded" true
    (Pathlog.Program.degraded p <> None);
  let srv =
    Server.create
      ~config:{ Server.default_config with workers = 1 }
      ~program:p
      (Server.Tcp ("127.0.0.1", 0))
  in
  Fun.protect
    ~finally:(fun () -> Server.shutdown srv)
    (fun () ->
      with_client srv (fun c ->
          (match Client.query_marked c "p0 : pair" with
          | Ok { Client.lines = [ "yes" ]; degraded = true } -> ()
          | Ok { Client.degraded = false; _ } ->
            Alcotest.fail "payload not marked DEGRADED"
          | Ok _ -> Alcotest.fail "unexpected payload"
          | Error msg -> Alcotest.fail msg);
          (* plain [query] accepts the marked payload transparently *)
          Alcotest.(check bool)
            "query accepts DEGRADED" true
            (Client.query c "p0 : pair" = Ok [ "yes" ]);
          match Client.stats c with
          | Error msg -> Alcotest.fail msg
          | Ok lines ->
            let has prefix =
              List.exists (String.starts_with ~prefix) lines
            in
            Alcotest.(check bool)
              "degraded_total counted" true
              (List.exists
                 (fun l ->
                   String.starts_with ~prefix:"degraded_total " l
                   && l <> "degraded_total 0")
                 lines);
            Alcotest.(check bool)
              "cancelled_total present" true (has "cancelled_total ");
            Alcotest.(check bool)
              "injected_faults present" true (has "injected_faults ")))

(* ------------------------------------------------------------------ *)
(* Live mutation: ASSERT / RETRACT / SUBSCRIBE                         *)

let tc_program =
  {|
  a[edge ->> {b}]. b[edge ->> {c}].
  X[tc ->> {Y}] <- X[edge ->> {Y}].
  X[tc ->> {Y}] <- X[edge ->> {Z}] , Z[tc ->> {Y}].
  |}

let test_live_mutation () =
  with_server ~program:tc_program (fun _p srv ->
      with_client srv (fun c ->
          (* assert: new edges extend the closure (and the a->c edge
             makes a's reach of c doubly supported) *)
          (match Client.assert_facts c "c[edge ->> {d}]. a[edge ->> {c}]." with
          | Error e -> Alcotest.fail ("ASSERT failed: " ^ e)
          | Ok r ->
            Alcotest.(check string) "assert strategy" "counting" r.strategy;
            Alcotest.(check bool) "epoch advanced" true (r.epoch > 0));
          Alcotest.(check (result (list string) string))
            "closure extended"
            (Ok [ "yes" ])
            (Client.query c "a[tc ->> {d}]");
          (* retract one support of the recursively derived closure:
             over-delete kills a's reach of c, the re-derive pass restores
             it from the direct edge *)
          (match Client.retract_facts c "b[edge ->> {c}]." with
          | Error e -> Alcotest.fail ("RETRACT failed: " ^ e)
          | Ok r ->
            Alcotest.(check string) "retract strategy" "dred" r.strategy);
          Alcotest.(check (result (list string) string))
            "b's reach gone"
            (Ok [ "no" ])
            (Client.query c "b[tc ->> {d}]");
          Alcotest.(check (result (list string) string))
            "a's reach re-derived"
            (Ok [ "yes" ])
            (Client.query c "a[tc ->> {c}]");
          (* the analysis gate rejects a definite conflict atomically *)
          (match Client.assert_facts c "x[age -> 1]. x[age -> 2]." with
          | Ok _ -> Alcotest.fail "conflicting batch accepted"
          | Error e ->
            Alcotest.(check bool)
              ("ANALYSIS error: " ^ e)
              true
              (String.length e >= 8 && String.sub e 0 8 = "ANALYSIS"));
          Alcotest.(check (result (list string) string))
            "gate left no partial write"
            (Ok [ "no" ])
            (Client.query c "x[age -> 1]");
          (* retracting an absent extensional fact is refused *)
          (match Client.retract_facts c "a[edge ->> {zz}]." with
          | Ok _ -> Alcotest.fail "absent retraction accepted"
          | Error e ->
            Alcotest.(check bool)
              ("BADREQ error: " ^ e)
              true
              (String.length e >= 6 && String.sub e 0 6 = "BADREQ"));
          (* counters *)
          match Client.stats c with
          | Error e -> Alcotest.fail e
          | Ok lines ->
            let has l = List.mem l lines in
            Alcotest.(check bool) "asserts_total 1" true
              (has "asserts_total 1");
            Alcotest.(check bool) "retracts_total 1" true
              (has "retracts_total 1");
            Alcotest.(check bool) "subscriptions_active 0" true
              (has "subscriptions_active 0")))

let test_subscribe_push () =
  with_server ~program:tc_program (fun _p srv ->
      with_client srv (fun subscriber ->
          with_client srv (fun writer ->
              let sub =
                match Client.subscribe subscriber "a[tc ->> {Y}]" with
                | Ok s -> s
                | Error e -> Alcotest.fail ("SUBSCRIBE failed: " ^ e)
              in
              Alcotest.(check (list string))
                "baseline closure" [ "b"; "c" ] sub.Client.baseline;
              (* an assert batch extends the closure: DELTA + *)
              (match Client.assert_facts writer "c[edge ->> {d}]." with
              | Ok _ -> ()
              | Error e -> Alcotest.fail ("ASSERT failed: " ^ e));
              (match Client.next_delta ~timeout_s:5.0 subscriber with
              | None -> Alcotest.fail "no DELTA after assert"
              | Some d ->
                Alcotest.(check int) "sub id" sub.Client.sub_id
                  d.Protocol.sub_id;
                Alcotest.(check (list string))
                  "appeared" [ "d" ] d.Protocol.appeared;
                Alcotest.(check (list string))
                  "vanished" [] d.Protocol.vanished);
              (* retracting a support of the recursively derived facts:
                 DELTA - for everything that lost its derivation *)
              (match Client.retract_facts writer "b[edge ->> {c}]." with
              | Ok r ->
                Alcotest.(check bool) "model shrank" true (r.removed > 0)
              | Error e -> Alcotest.fail ("RETRACT failed: " ^ e));
              (match Client.next_delta ~timeout_s:5.0 subscriber with
              | None -> Alcotest.fail "no DELTA after retract"
              | Some d ->
                Alcotest.(check (list string))
                  "appeared" [] d.Protocol.appeared;
                Alcotest.(check (list string))
                  "vanished" [ "c"; "d" ] d.Protocol.vanished);
              (* an unrelated batch produces no frame *)
              (match Client.assert_facts writer "q[edge ->> {r}]." with
              | Ok _ -> ()
              | Error e -> Alcotest.fail ("ASSERT failed: " ^ e));
              (match Client.next_delta ~timeout_s:0.2 subscriber with
              | None -> ()
              | Some _ -> Alcotest.fail "spurious DELTA");
              (* a subscribing session can also mutate: its own DELTA
                 arrives before the ASSERT reply and is queued *)
              (match Client.assert_facts subscriber "a[edge ->> {e}]." with
              | Ok _ -> ()
              | Error e -> Alcotest.fail ("ASSERT failed: " ^ e));
              (match Client.next_delta ~timeout_s:5.0 subscriber with
              | None -> Alcotest.fail "no DELTA for own assert"
              | Some d ->
                Alcotest.(check (list string))
                  "appeared" [ "e" ] d.Protocol.appeared);
              (* live subscription gauge *)
              match Client.stats writer with
              | Error e -> Alcotest.fail e
              | Ok lines ->
                Alcotest.(check bool)
                  "subscriptions_active 1" true
                  (List.mem "subscriptions_active 1" lines))))

let test_subscribe_ground () =
  with_server ~program:tc_program (fun _p srv ->
      with_client srv (fun subscriber ->
          with_client srv (fun writer ->
              let sub =
                match Client.subscribe subscriber "a[tc ->> {d}]" with
                | Ok s -> s
                | Error e -> Alcotest.fail ("SUBSCRIBE failed: " ^ e)
              in
              Alcotest.(check (list string))
                "not yet entailed" [] sub.Client.baseline;
              (match Client.assert_facts writer "c[edge ->> {d}]." with
              | Ok _ -> ()
              | Error e -> Alcotest.fail ("ASSERT failed: " ^ e));
              (match Client.next_delta ~timeout_s:5.0 subscriber with
              | None -> Alcotest.fail "no DELTA"
              | Some d ->
                Alcotest.(check (list string))
                  "entailed" [ "true" ] d.Protocol.appeared);
              match Client.retract_facts writer "c[edge ->> {d}]." with
              | Error e -> Alcotest.fail ("RETRACT failed: " ^ e)
              | Ok _ -> (
                match Client.next_delta ~timeout_s:5.0 subscriber with
                | None -> Alcotest.fail "no DELTA"
                | Some d ->
                  Alcotest.(check (list string))
                    "no longer entailed" [ "true" ] d.Protocol.vanished))))

(* ------------------------------------------------------------------ *)
(* Demand mode: serve --demand                                         *)

(* Two disjoint boss chains with a transitive [up] closure; in demand
   mode, querying one chain must not materialise the other. *)
let demand_program =
  {|
  a0[boss -> a1]. a1[boss -> a2]. a2[boss -> a3].
  b0[boss -> b1]. b1[boss -> b2].
  X[up ->> {Y}] <- X[boss -> Y].
  X[up ->> {Y}] <- X[boss -> Z], Z[up ->> {Y}].
  |}

(* Demand servers start from a parsed, {e unevaluated} program. *)
let with_demand_server ~program f =
  let p = Pathlog.parse program in
  let config = { Server.default_config with demand = true } in
  let srv = Server.create ~config ~program:p (Server.Tcp ("127.0.0.1", 0)) in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) (fun () -> f p srv)

let stat_value lines key =
  List.find_map
    (fun line ->
      match String.index_opt line ' ' with
      | Some i when String.sub line 0 i = key ->
        int_of_string_opt
          (String.sub line (i + 1) (String.length line - i - 1))
      | _ -> None)
    lines

let test_demand_queries () =
  (* a fully materialised twin supplies the expected payloads *)
  let full = load demand_program in
  with_demand_server ~program:demand_program (fun _p srv ->
      with_client srv (fun c ->
          let check_q q =
            match Client.query c ("?- " ^ q ^ ".") with
            | Error e -> Alcotest.fail ("QUERY failed: " ^ e)
            | Ok lines ->
              Alcotest.(check (list string))
                ("demand answer agrees with full: " ^ q)
                (List.sort compare (expected_payload full ("?- " ^ q ^ ".")))
                (List.sort compare lines)
          in
          check_q "a0[up ->> {X}]";
          (* the repeat takes the ordinary read path (and the cache) *)
          check_q "a0[up ->> {X}]";
          check_q "b1[up ->> {X}]";
          match Client.stats c with
          | Error e -> Alcotest.fail ("STATS failed: " ^ e)
          | Ok lines ->
            Alcotest.(check bool) "two demanded queries" true
              (stat_value lines "demand_queries_total" = Some 2);
            Alcotest.(check bool) "no fallback" true
              (stat_value lines "demand_fallbacks_total" = Some 0);
            Alcotest.(check bool) "magic facts counted" true
              (match stat_value lines "magic_facts" with
              | Some n -> n > 0
              | None -> false)))

(* The rule-mutation-mid-subscription golden: a mutation arriving while
   only demanded fragments exist forces full materialisation (counted as
   a fallback), and the standing query still sees a correct DELTA. *)
let test_demand_mutation_fallback () =
  with_demand_server ~program:demand_program (fun _p srv ->
      with_client srv (fun subscriber ->
          with_client srv (fun writer ->
              let sub =
                match Client.subscribe subscriber "a0[up ->> {Y}]" with
                | Ok s -> s
                | Error e -> Alcotest.fail ("SUBSCRIBE failed: " ^ e)
              in
              Alcotest.(check (list string))
                "baseline from the demanded fragment"
                [ "a1"; "a2"; "a3" ] sub.Client.baseline;
              (match Client.assert_facts writer "a3[boss -> a4]." with
              | Ok _ -> ()
              | Error e -> Alcotest.fail ("ASSERT failed: " ^ e));
              (match Client.next_delta ~timeout_s:5.0 subscriber with
              | None -> Alcotest.fail "no DELTA after assert"
              | Some d ->
                Alcotest.(check (list string))
                  "appeared" [ "a4" ] d.Protocol.appeared;
                Alcotest.(check (list string))
                  "vanished" [] d.Protocol.vanished);
              (* the store is fully materialised now: the other chain
                 answers on the plain read path *)
              (match Client.query writer "?- b0[up ->> {X}]." with
              | Error e -> Alcotest.fail ("QUERY failed: " ^ e)
              | Ok lines ->
                Alcotest.(check (list string))
                  "post-fallback answer" [ "X"; "b1"; "b2" ]
                  (List.sort compare lines));
              match Client.stats writer with
              | Error e -> Alcotest.fail ("STATS failed: " ^ e)
              | Ok lines ->
                Alcotest.(check bool) "mutation counted as fallback" true
                  (match stat_value lines "demand_fallbacks_total" with
                  | Some n -> n >= 1
                  | None -> false))))

(* --admit-cost: a query whose statically predicted derivation count
   exceeds the bound is refused with ERR COST before any evaluation —
   the result cache never even sees a lookup — while cheap queries over
   the same program are answered normally. *)
let admit_program =
  {|
  n1 : node. n2 : node. n3 : node.
  n1[edge ->> {n2}]. n2[edge ->> {n3}].
  X[trace ->> {Y}] <- X[edge ->> {Y}].
  X[edge ->> {Y}] <- X[trace ->> {Y}].
  e1 : employee[age -> 30].
  |}

let test_admit_cost () =
  (* unit: a creation cycle is predicted infinite (never materialise
     this program — its minimal model does not exist) *)
  let p =
    Pathlog.Program.of_string "p0 : pair.\nX.left : pair <- X : pair."
  in
  let st = Pathlog.Program.store p in
  let rules = Pathlog.Program.rules p in
  let t = Pathlog.Absint.analyze st rules in
  (match
     Pathlog.Absint.query_cost t st rules
       (Pathlog.Program.parse_query "X : pair")
   with
  | `Infinite -> ()
  | `Bound est ->
    Alcotest.failf "creation cycle predicted finite (%d)" est);
  (* e2e over the wire *)
  let config = { Server.default_config with admit_cost = Some 10 } in
  with_server ~config ~program:admit_program (fun _p srv ->
      with_client srv (fun c ->
          (match Client.request c "QUERY X[trace ->> {Y}]" with
          | Ok (Protocol.Err (Protocol.Cost, msg)) ->
            Alcotest.(check bool)
              "message names the bound" true
              (contains ~sub:"admit-cost bound 10" msg)
          | Ok r ->
            Alcotest.failf "expected ERR COST, got %s"
              (Protocol.render_reply r)
          | Error `Eof -> Alcotest.fail "request failed: eof"
          | Error (`Malformed m) ->
            Alcotest.fail ("request failed: " ^ m));
          (* the rejection happened before evaluation: no cache lookup *)
          let cs = Server.cache_stats srv in
          Alcotest.(check int)
            "no evaluation behind the rejection" 0 (cs.hits + cs.misses);
          (* a cheap query on the same connection still evaluates *)
          match Client.query c "e1 : employee" with
          | Ok [ "yes" ] -> ()
          | Ok lines ->
            Alcotest.failf "cheap query answered oddly: %s"
              (String.concat "|" lines)
          | Error e -> Alcotest.fail ("cheap query failed: " ^ e)))

let suite =
  [
    Alcotest.test_case "protocol: parse requests" `Quick test_parse_request;
    Alcotest.test_case "protocol: reply round-trip" `Quick
      test_reply_roundtrip;
    Alcotest.test_case "protocol: bounded request lines" `Quick
      test_bounded_line;
    Alcotest.test_case "histogram: percentiles and bounds" `Quick
      test_histogram;
    Alcotest.test_case "pool: sheds at capacity, drains on shutdown" `Quick
      test_pool_sheds_and_drains;
    Alcotest.test_case "server: verbs, errors, stats" `Quick
      test_server_basics;
    Alcotest.test_case "server: oversized requests" `Quick
      test_server_oversized_request;
    Alcotest.test_case "server: 8 parallel clients, disjoint answers"
      `Quick test_server_parallel_clients;
    Alcotest.test_case "server: BUSY shedding under a tiny pool" `Quick
      test_server_busy_shedding;
    Alcotest.test_case "server: per-request deadlines" `Quick
      test_server_deadline;
    Alcotest.test_case "server: clean shutdown" `Quick
      test_server_clean_shutdown;
    Alcotest.test_case "server: unix-domain socket" `Quick
      test_server_unix_socket;
    Alcotest.test_case "server: mid-eval timeout, thread pool" `Quick
      (test_mid_eval_timeout ~domains:false);
    Alcotest.test_case "server: mid-eval timeout, domain pool" `Quick
      (test_mid_eval_timeout ~domains:true);
    Alcotest.test_case "server: shutdown cancels in-flight query" `Quick
      test_shutdown_cancels_inflight;
    Alcotest.test_case "server: DEGRADED marker and counters" `Quick
      test_degraded_marker;
    Alcotest.test_case "server: ASSERT/RETRACT with analysis gate" `Quick
      test_live_mutation;
    Alcotest.test_case "server: SUBSCRIBE pushes DELTA frames" `Quick
      test_subscribe_push;
    Alcotest.test_case "server: ground subscription true/false" `Quick
      test_subscribe_ground;
    Alcotest.test_case "server: demand-driven QUERY path" `Quick
      test_demand_queries;
    Alcotest.test_case "server: mutation mid-subscription falls back"
      `Quick test_demand_mutation_fallback;
    Alcotest.test_case "server: --admit-cost rejects with ERR COST" `Quick
      test_admit_cost;
  ]
