(* Lexer, parser, pretty-printer, scalarity and well-formedness tests. *)

open Helpers
module Ast = Pathlog.Ast
module Parser = Pathlog.Parser
module Pretty = Pathlog.Pretty
module Scalarity = Pathlog.Scalarity
module Wellformed = Pathlog.Wellformed

let reference = Parser.reference
let statement = Parser.statement

(* ------------------------------------------------------------------ *)
(* Lexer *)

let tokens src =
  List.map fst (Syntax.Lexer.tokenize src)

let test_lexer_dot_disambiguation () =
  (* path dot before identifiers; statement end before space/eof *)
  Alcotest.(check int) "a.b." 5 (List.length (tokens "a.b."));
  (match tokens "a.b." with
  | [ NAME "a"; DOT; NAME "b"; END; EOF ] -> ()
  | _ -> Alcotest.fail "expected NAME DOT NAME END EOF");
  (match tokens "a. b" with
  | [ NAME "a"; END; NAME "b"; EOF ] -> ()
  | _ -> Alcotest.fail "dot before space ends statement");
  (match tokens "3." with
  | [ INT 3; END; EOF ] -> ()
  | _ -> Alcotest.fail "int then end");
  match tokens "a.(m)" with
  | [ NAME "a"; DOT; LPAREN; NAME "m"; RPAREN; EOF ] -> ()
  | _ -> Alcotest.fail "dot before paren is a path dot" 

let test_lexer_tokens () =
  (match tokens "x..y" with
  | [ NAME "x"; DOTDOT; NAME "y"; EOF ] -> ()
  | _ -> Alcotest.fail "dotdot");
  (match tokens "a -> b ->> c => d =>> e" with
  | [ NAME "a"; ARROW; NAME "b"; DARROW; NAME "c"; SIG_ARROW; NAME "d";
      SIG_DARROW; NAME "e"; EOF ] -> ()
  | _ -> Alcotest.fail "arrows");
  (match tokens "X : c :: d" with
  | [ VAR "X"; COLON; NAME "c"; COLONCOLON; NAME "d"; EOF ] -> ()
  | _ -> Alcotest.fail "colons");
  (match tokens "?- not x <- y" with
  | [ QUERY; NOT; NAME "x"; IMPLIED; NAME "y"; EOF ] -> ()
  | _ -> Alcotest.fail "rule tokens");
  (match tokens "m@(1, -2)" with
  | [ NAME "m"; AT; LPAREN; INT 1; COMMA; INT (-2); RPAREN; EOF ] -> ()
  | _ -> Alcotest.fail "args and negative int");
  (match tokens {|"a\"b\n"|} with
  | [ STRING "a\"b\n"; EOF ] -> ()
  | _ -> Alcotest.fail "string escapes");
  match tokens "a % comment here\nb" with
  | [ NAME "a"; NAME "b"; EOF ] -> ()
  | _ -> Alcotest.fail "comments"

let test_lexer_errors () =
  let expect_error src =
    match Syntax.Lexer.tokenize src with
    | exception Syntax.Lexer.Error _ -> ()
    | _ -> Alcotest.fail ("lexer accepted " ^ src)
  in
  expect_error "\"unterminated";
  expect_error "a & b";
  expect_error "= x";
  expect_error "< y";
  expect_error "-x";
  (* '?' alone is the optional operator since regular paths landed *)
  match tokens "? z" with
  | [ QMARK; NAME "z"; EOF ] -> ()
  | _ -> Alcotest.fail "'?' should lex as the optional operator"

let test_lexer_positions () =
  match Syntax.Lexer.tokenize "a.\n  !" with
  | exception Syntax.Lexer.Error (pos, _) ->
    Alcotest.(check int) "line" 2 pos.line;
    Alcotest.(check int) "col" 3 pos.col
  | _ -> Alcotest.fail "expected error"

(* ------------------------------------------------------------------ *)
(* Parser: structures *)

let test_parse_paper_reference () =
  (* reference (2.1) of the paper *)
  let r =
    reference
      "X : employee[age -> 30; city -> newYork]..vehicles : \
       automobile[cylinders -> 4].color[Z]"
  in
  (* outermost is the selector filter [Z] -> [self -> Z] *)
  match r with
  | Ast.Filter { f_meth = Name "self"; f_rhs = Rscalar (Var "Z"); f_recv; _ }
    -> (
    match f_recv with
    | Ast.Path { p_sep = Dot; p_meth = Name "color"; _ } -> ()
    | _ -> Alcotest.fail "expected .color")
  | _ -> Alcotest.fail "expected selector filter"

let test_parse_left_assoc () =
  (* x : c.m parses as (x : c).m *)
  match reference "x : c.m" with
  | Ast.Path { p_recv = Ast.Isa _; p_meth = Name "m"; _ } -> ()
  | _ -> Alcotest.fail "expected (x : c).m"

let test_parse_paren_class () =
  (* L : (integer.list) keeps the parenthesised path as the class *)
  match reference "L : (integer.list)" with
  | Ast.Isa { cls = Ast.Paren (Ast.Path _); _ } -> ()
  | _ -> Alcotest.fail "expected paren class"

let test_parse_semicolon_filters () =
  let a = reference "m[x -> 1; y -> 2]" in
  let b = reference "m[x -> 1][y -> 2]" in
  Alcotest.(check bool) "sugar equal" true (Ast.equal_reference a b)

let test_parse_selector_sugar () =
  let a = reference "x.color[Z]" in
  let b = reference "x.color[self -> Z]" in
  Alcotest.(check bool) "selector = self filter" true (Ast.equal_reference a b)

let test_parse_args () =
  match reference "john.salary@(1994)" with
  | Ast.Path { p_args = [ Ast.Int_lit 1994 ]; _ } -> ()
  | _ -> Alcotest.fail "expected one int argument"

let test_parse_set_arg () =
  match reference "p1.paidFor@(p1..vehicles)" with
  | Ast.Path { p_args = [ Ast.Path { p_sep = Dotdot; _ } ]; _ } -> ()
  | _ -> Alcotest.fail "expected set-valued argument"

let test_parse_rule_and_query () =
  (match statement "h[x -> 1] <- b1, not b2." with
  | Ast.Rule { body = [ Pos _; Neg _ ]; _ } -> ()
  | _ -> Alcotest.fail "rule with negation");
  match statement "?- a, b." with
  | Ast.Query [ Pos _; Pos _ ] -> ()
  | _ -> Alcotest.fail "query"

let test_parse_explicit_set () =
  (match reference "p2[friends ->> {p3, p4}]" with
  | Ast.Filter { f_rhs = Rset_enum [ Ast.Name "p3"; Ast.Name "p4" ]; _ } -> ()
  | _ -> Alcotest.fail "set enum");
  match reference "p2[friends ->> p1..assistants]" with
  | Ast.Filter { f_rhs = Rset_ref (Ast.Path { p_sep = Dotdot; _ }); _ } -> ()
  | _ -> Alcotest.fail "set ref"

let test_parse_higher_order () =
  match reference "X[(M.tc) ->> {Y}]" with
  | Ast.Filter { f_meth = Ast.Paren (Ast.Path { p_meth = Name "tc"; _ }); _ }
    -> ()
  | _ -> Alcotest.fail "computed method position"

let test_parse_errors () =
  let expect_error src =
    match Parser.statement src with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.fail ("parser accepted " ^ src)
  in
  expect_error "x[y -> ].";
  expect_error "x[.";
  expect_error "x : .";
  expect_error "x..";
  expect_error "?- .";
  expect_error "x[a.b -> 1].";  (* non-simple method position *)
  expect_error "x[Y@(1)].";     (* selector with arguments *)
  expect_error "x. trailing";
  expect_error "x"              (* missing statement end *)

let test_parse_program () =
  let prog =
    Parser.program
      "a : b. % fact\n?- a : b.\nX[d ->> {Y}] <- X[k ->> {Y}].\n"
  in
  Alcotest.(check int) "three statements" 3 (List.length prog)

(* ------------------------------------------------------------------ *)
(* Pretty: round trip *)

let roundtrip_statement src =
  let stmt = statement src in
  let printed = Pretty.statement_to_string stmt in
  let again = statement printed in
  Alcotest.(check bool) ("roundtrip: " ^ src) true (Ast.equal_statement stmt again)

let test_roundtrip_catalogue () =
  List.iter roundtrip_statement
    [
      "X : employee[age -> 30; city -> newYork]..vehicles : \
       automobile[cylinders -> 4].color[Z].";
      "p2[friends ->> {p3, p4}].";
      "p2[friends ->> p1..assistants].";
      "john.salary@(1994).";
      "X[(M.tc) ->> {Y}] <- X..(M.tc)[M ->> {Y}].";
      "?- peter[(kids.tc) ->> {X}].";
      "automobile :: vehicle.";
      "employee[age => integer].";
      "employee[vehicles =>> vehicle].";
      "X.address[street -> X.street; city -> X.city] <- X : person.";
      "Z[worksFor -> D] <- X : employee[worksFor -> D].boss[Z].";
      "L : (integer.list).";
      "mary.spouse[boss -> mary[age -> 25]].age.";
      "x[m -> \"a string \\\"quoted\\\"\"].";
      "x[m -> -5].";
      "?- not p1[age -> 30], p1 : employee.";
      "p1.paidFor@(p1..vehicles, 3).";
    ]

let roundtrip_property =
  QCheck.Test.make ~name:"pretty/parse roundtrip on random references"
    ~count:500
    (arbitrary_reference ~allow_vars:true)
    (fun r ->
      let printed = Pretty.reference_to_string r in
      match Parser.reference printed with
      | r' -> Ast.equal_reference r r'
      | exception Parser.Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Scalarity: Definition 2 *)

let scal src = Scalarity.of_reference (reference src)

let test_scalarity () =
  let check_scal name src expected =
    Alcotest.(check bool) name true (scal src = expected)
  in
  check_scal "name" "p1" Scalar;
  check_scal "scalar path" "p1.age" Scalar;
  check_scal "set path" "p1..assistants" Set_valued;
  check_scal "scalar on set" "p1..assistants.salary" Set_valued;
  check_scal "set on set" "p1..assistants..projects" Set_valued;
  check_scal "molecule inherits recv" "p1..assistants[salary -> 1000]"
    Set_valued;
  check_scal "molecule scalar recv" "p2[friends ->> p1..assistants]" Scalar;
  check_scal "isa inherits recv" "p1..assistants : emp" Set_valued;
  check_scal "paren passthrough" "(p1..assistants)" Set_valued;
  check_scal "set arg makes path set" "p1.paidFor@(p1..vehicles)" Set_valued;
  check_scal "selector keeps scalarity" "X..vehicles.color[Z]" Set_valued

(* ------------------------------------------------------------------ *)
(* Well-formedness: Definition 3, heads, safety *)

let test_wellformed_accepts () =
  List.iter
    (fun src ->
      match Wellformed.check_reference (reference src) with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "rejected %s: %a" src Wellformed.pp_error e)
    [
      "p1..assistants[salary -> 1000]";
      "p2[friends ->> p1..assistants]";
      "p2[friends ->> {p3, p4}]";
      "p1..assistants.salary";
      "p1.paidFor@(p1..vehicles)";
      "L : (integer.list)";
    ]

let test_wellformed_rejects () =
  let expect_reject src =
    match Wellformed.check_reference (reference src) with
    | Error _ -> ()
    | Ok () -> Alcotest.fail ("accepted ill-formed " ^ src)
  in
  (* formula (4.5) of the paper: set-valued result of a scalar method *)
  expect_reject "p2[boss -> p1..assistants]";
  (* set-valued reference as a filter argument *)
  expect_reject "p2[m@(p1..assistants) -> x]";
  (* set-valued class *)
  expect_reject "L : (p1..assistants)";
  (* scalar rhs of ->> must be an explicit set *)
  expect_reject "p2[friends ->> p3]";
  (* signature arrows are not formulas *)
  expect_reject "x[m -> y[age => integer]]"

let test_head_conditions () =
  let expect_reject src =
    match Wellformed.check_rule (match statement src with
      | Ast.Rule r -> r
      | Ast.Query _ -> Alcotest.fail "expected rule") with
    | Error _ -> ()
    | Ok () -> Alcotest.fail ("accepted bad rule " ^ src)
  in
  (* set-valued head *)
  expect_reject "X..assistants[a -> 1] <- X : emp.";
  (* unsafe head variable *)
  expect_reject "X[a -> Y] <- X : emp.";
  (* negated variable unbound *)
  expect_reject "ok[a -> 1] <- not X : emp.";
  (* fine: bound head vars *)
  match
    Wellformed.check_rule
      (match statement "X[a -> Y] <- X : emp[b -> Y]." with
      | Ast.Rule r -> r
      | Ast.Query _ -> assert false)
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejected good rule: %a" Wellformed.pp_error e

let test_signature_extraction () =
  (match Wellformed.signature_of_statement (statement "c[m => r].") with
  | Some (_, _, [], _, Scalar) -> ()
  | _ -> Alcotest.fail "scalar signature");
  (match Wellformed.signature_of_statement (statement "c[m@(a) =>> r].") with
  | Some (_, _, [ _ ], _, Set_valued) -> ()
  | _ -> Alcotest.fail "set signature with arg");
  match Wellformed.signature_of_statement (statement "c[m -> r].") with
  | None -> ()
  | Some _ -> Alcotest.fail "plain fact is not a signature"

let wellformed_generated =
  QCheck.Test.make ~name:"generated references are well-formed" ~count:300
    (arbitrary_reference ~allow_vars:true)
    (fun r -> Wellformed.check_reference r = Ok ())

(* The lexer/parser never crash on arbitrary input: they either produce a
   program or raise their own documented exceptions. *)
let parser_total_on_garbage =
  QCheck.Test.make ~name:"parser is total (errors, never crashes)" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 60) Gen.printable)
    (fun src ->
      match Parser.program src with
      | _ -> true
      | exception Parser.Error _ -> true
      | exception _ -> false)

(* Fuzz with syntax-flavoured fragments, which reach deeper parser states
   than uniform printable noise. *)
let parser_total_on_fragments =
  let fragment =
    QCheck.Gen.oneofl
      [ "x"; "X"; "42"; "."; ".."; "["; "]"; "{"; "}"; "("; ")"; "->";
        "->>"; "=>"; ":"; "::"; "<-"; "?-"; ","; ";"; "@"; "not"; " ";
        "self"; "\"s\""; "%c\n" ]
  in
  QCheck.Test.make ~name:"parser is total on token soup" ~count:500
    (QCheck.make
       QCheck.Gen.(map (String.concat "") (list_size (int_range 0 25) fragment)))
    (fun src ->
      match Parser.program src with
      | _ -> true
      | exception Parser.Error _ -> true
      | exception _ -> false)

(* Whole-program round trip via the pretty-printer. *)
let program_roundtrip =
  QCheck.Test.make ~name:"program pretty/parse roundtrip" ~count:200
    QCheck.(
      make
        Gen.(
          list_size (int_range 1 6)
            (map
               (fun r -> Syntax.Ast.Rule { head = r; body = [] })
               (Helpers.gen_reference ~allow_vars:false))))
    (fun prog ->
      let printed = Syntax.Pretty.program_to_string prog in
      match Parser.program printed with
      | prog' -> List.for_all2 Ast.equal_statement prog prog'
      | exception Parser.Error _ -> false)

let vars_of_reference_order () =
  let r = reference "X[a -> Y].b[Z -> X]" in
  Alcotest.(check (list string))
    "first-occurrence order" [ "X"; "Y"; "Z" ]
    (Ast.vars_of_reference r)

let suite =
  [
    Alcotest.test_case "lexer dot disambiguation" `Quick
      test_lexer_dot_disambiguation;
    Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
    Alcotest.test_case "parse paper reference" `Quick test_parse_paper_reference;
    Alcotest.test_case "parse left assoc" `Quick test_parse_left_assoc;
    Alcotest.test_case "parse paren class" `Quick test_parse_paren_class;
    Alcotest.test_case "parse filter sugar" `Quick test_parse_semicolon_filters;
    Alcotest.test_case "parse selector sugar" `Quick test_parse_selector_sugar;
    Alcotest.test_case "parse args" `Quick test_parse_args;
    Alcotest.test_case "parse set arg" `Quick test_parse_set_arg;
    Alcotest.test_case "parse rule and query" `Quick test_parse_rule_and_query;
    Alcotest.test_case "parse explicit set" `Quick test_parse_explicit_set;
    Alcotest.test_case "parse higher order" `Quick test_parse_higher_order;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse program" `Quick test_parse_program;
    Alcotest.test_case "roundtrip catalogue" `Quick test_roundtrip_catalogue;
    qtest roundtrip_property;
    Alcotest.test_case "scalarity (Definition 2)" `Quick test_scalarity;
    Alcotest.test_case "wellformed accepts" `Quick test_wellformed_accepts;
    Alcotest.test_case "wellformed rejects (Definition 3)" `Quick
      test_wellformed_rejects;
    Alcotest.test_case "head conditions" `Quick test_head_conditions;
    Alcotest.test_case "signature extraction" `Quick test_signature_extraction;
    qtest wellformed_generated;
    qtest parser_total_on_garbage;
    qtest parser_total_on_fragments;
    qtest program_roundtrip;
    Alcotest.test_case "vars order" `Quick vars_of_reference_order;
  ]
