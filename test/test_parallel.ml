(* The multicore additions: domain-parallel fixpoint rounds must compute
   exactly the sequential minimal model, epoch snapshots must isolate
   readers from concurrent writers, and the server's epoch-keyed query
   cache must hit on repeats and invalidate itself on writes. *)

module Program = Pathlog.Program
module Fixpoint = Pathlog.Fixpoint
module Store = Pathlog.Store
module Qcache = Pathlog.Qcache
module Protocol = Pathlog.Protocol
module Server = Pathlog.Server
module Client = Pathlog.Client

let load_jobs ~jobs text =
  let config = { Fixpoint.default_config with jobs } in
  let p = Program.of_string ~config text in
  ignore (Program.run p);
  p

(* ------------------------------------------------------------------ *)
(* Parallel = sequential, property-tested over random rule programs    *)

(* Randprog programs can carry scalar conflicts; both engines must then
   fail. When both succeed the models must be literally identical. *)
let par_equals_seq ~jobs seed =
  let text =
    Pathlog.Randprog.generate { Pathlog.Randprog.seed; facts = 12; rules = 4 }
  in
  match load_jobs ~jobs:1 text with
  | exception _ -> (
    match load_jobs ~jobs text with
    | exception _ -> true
    | _ -> false (* sequential failed, parallel did not *))
  | p_seq -> (
    match load_jobs ~jobs text with
    | exception _ -> false
    | p_par ->
      Program.diff_models ~before:p_seq ~after:p_par = ([], []))

let qcheck_par_seq jobs =
  QCheck.Test.make
    ~name:(Printf.sprintf "jobs=%d model = sequential model" jobs)
    ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100_000))
    (par_equals_seq ~jobs)

(* ------------------------------------------------------------------ *)
(* Deterministic cross-checks                                          *)

(* Many independent rules in one stratum: the shape that actually fans
   out across domains. *)
let partitioned_closure () =
  let b = Buffer.create 4096 in
  for r = 0 to 7 do
    for i = 0 to 11 do
      Buffer.add_string b
        (Printf.sprintf "p%dn%d[to%d ->> {p%dn%d}]. " r i r r (i + 1))
    done;
    Buffer.add_string b
      (Printf.sprintf "X[reach ->> {Y}] <- X[to%d ->> {Y}]. " r);
    Buffer.add_string b
      (Printf.sprintf
         "X[reach ->> {Y}] <- X[to%d ->> {Z}], Z[reach ->> {Y}]. " r)
  done;
  Buffer.contents b

let test_partitioned_closure_jobs () =
  let text = partitioned_closure () in
  let p1 = load_jobs ~jobs:1 text in
  List.iter
    (fun jobs ->
      let pn = load_jobs ~jobs text in
      Alcotest.(check (pair (list string) (list string)))
        (Printf.sprintf "jobs=%d diff empty" jobs)
        ([], [])
        (Program.diff_models ~before:p1 ~after:pn))
    [ 2; 4 ]

(* Multiple strata (isa derivation feeds a set-method stratum), plus
   builtin value classes in rule bodies — the case that forced isa
   enumeration to agree with the membership test. *)
let test_multi_stratum_jobs () =
  let text =
    {|
    o0[next -> o1]. o1[next -> o2]. o2[next -> o3]. o3[next -> o4].
    o4 : reach.
    X : reach <- X[next -> Y], Y : reach.
    cell1[value -> 1]. cell2[value -> hello].
    X : tagged <- X[value -> V], V : integer.
    X[sees ->> {Y}] <- X : tagged, Y : reach.
    |}
  in
  let p1 = load_jobs ~jobs:1 text in
  let p4 = load_jobs ~jobs:4 text in
  Alcotest.(check (pair (list string) (list string)))
    "jobs=4 diff empty" ([], [])
    (Program.diff_models ~before:p1 ~after:p4);
  Alcotest.(check bool)
    "builtin class membership derived" true
    (Pathlog.holds p4 "cell1 : tagged")

(* ------------------------------------------------------------------ *)
(* Snapshot isolation                                                  *)

let test_snapshot_isolation () =
  let st = Store.create () in
  let c = Store.name st "c" in
  let add i = ignore (Store.add_isa st (Store.name st (Printf.sprintf "m%d" i)) c) in
  add 0;
  add 1;
  let snap = Store.freeze st in
  let e0 = Store.snapshot_epoch snap in
  Alcotest.(check int) "epoch pinned" (Store.epoch st) e0;
  Alcotest.(check bool) "fresh snapshot not stale" false
    (Store.snapshot_stale snap);
  let pinned = Store.snapshot_isa_len snap in
  add 2;
  add 3;
  (* the snapshot still sees exactly the frozen prefix *)
  Alcotest.(check int) "pinned isa length unchanged" pinned
    (Store.snapshot_isa_len snap);
  let seen = ref 0 in
  Store.snapshot_iter_isa snap (fun _ -> incr seen);
  Alcotest.(check int) "iteration bounded by the freeze" pinned !seen;
  (* the live store moved on: a fresh freeze pins the longer prefix *)
  Alcotest.(check int) "live store sees new tuples" (pinned + 2)
    (Store.snapshot_isa_len (Store.freeze st));
  Alcotest.(check bool) "epoch advanced" true (Store.epoch st > e0);
  Alcotest.(check bool) "snapshot now stale" true (Store.snapshot_stale snap)

let test_epoch_ignores_duplicates () =
  let st = Store.create () in
  let c = Store.name st "c" and o = Store.name st "o" in
  ignore (Store.add_isa st o c);
  let e = Store.epoch st in
  ignore (Store.add_isa st o c);
  Alcotest.(check int) "duplicate insert keeps the epoch" e (Store.epoch st)

(* ------------------------------------------------------------------ *)
(* The epoch-keyed query cache                                         *)

let reply lines = Protocol.Ok lines

let test_qcache_hit_and_invalidate () =
  let qc = Qcache.create ~capacity:8 in
  Alcotest.(check bool) "cold miss" true
    (Qcache.find qc ~epoch:1 "q" = None);
  Qcache.add qc ~epoch:1 "q" (reply [ "a" ]);
  Alcotest.(check bool) "hit at the same epoch" true
    (Qcache.find qc ~epoch:1 "q" = Some (reply [ "a" ]));
  (* a write moved the epoch: the stale entry must not be served *)
  Alcotest.(check bool) "miss at a newer epoch" true
    (Qcache.find qc ~epoch:2 "q" = None);
  (* and it was evicted, not kept around *)
  let s = Qcache.stats qc in
  Alcotest.(check int) "stale entry evicted" 0 s.Qcache.entries;
  Alcotest.(check int) "one hit counted" 1 s.Qcache.hits;
  Alcotest.(check int) "two misses counted" 2 s.Qcache.misses

let test_qcache_capacity_reset () =
  let qc = Qcache.create ~capacity:2 in
  Qcache.add qc ~epoch:1 "q1" (reply [ "a" ]);
  Qcache.add qc ~epoch:1 "q2" (reply [ "b" ]);
  (* at capacity: the next add wipes the table wholesale *)
  Qcache.add qc ~epoch:1 "q3" (reply [ "c" ]);
  let s = Qcache.stats qc in
  Alcotest.(check int) "reset down to the new entry" 1 s.Qcache.entries;
  Alcotest.(check bool) "survivor findable" true
    (Qcache.find qc ~epoch:1 "q3" <> None);
  Alcotest.(check bool) "victims gone" true
    (Qcache.find qc ~epoch:1 "q1" = None)

let test_qcache_rejects_bad_capacity () =
  Alcotest.(check bool) "capacity 0 rejected" true
    (match Qcache.create ~capacity:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Server end to end: cached reads, write invalidation                 *)

let server_program =
  {|
  e1 : employee[age -> 30]. e2 : employee[age -> 45].
  |}

let with_server ?config f =
  let p = Pathlog.load server_program in
  let srv = Server.create ?config ~program:p (Server.Tcp ("127.0.0.1", 0)) in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) (fun () -> f p srv)

let with_client srv f =
  let c = Client.connect (Server.address srv) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let query c q =
  match Client.request c ("QUERY " ^ q) with
  | Ok (Protocol.Ok lines) -> lines
  | Ok r -> Alcotest.failf "unexpected reply: %s" (Protocol.render_reply r)
  | Error `Eof -> Alcotest.fail "connection closed"
  | Error (`Malformed s) -> Alcotest.fail ("malformed reply: " ^ s)

let test_server_cache_and_invalidation () =
  with_server (fun p srv ->
      with_client srv (fun c ->
          let first = query c "X : employee" in
          let second = query c "X : employee" in
          Alcotest.(check (list string)) "repeat answers agree" first second;
          let s = Server.cache_stats srv in
          Alcotest.(check bool) "repeated query hits the cache" true
            (s.Qcache.hits >= 1);
          Alcotest.(check bool) "first evaluation missed" true
            (s.Qcache.misses >= 1);
          (* STATS exposes the counters *)
          (match Client.stats c with
          | Error e -> Alcotest.fail ("STATS failed: " ^ e)
          | Ok lines ->
            let has prefix =
              List.exists (String.starts_with ~prefix) lines
            in
            Alcotest.(check bool) "cache_hits exported" true
              (has "cache_hits");
            Alcotest.(check bool) "cache_misses exported" true
              (has "cache_misses"));
          (* a write bumps the store epoch: the next read must re-evaluate
             and see the new fact *)
          Server.with_store_write srv (fun () ->
              ignore (Program.add_fact_string p "e3 : employee.");
              ignore (Program.run p));
          let misses_before = (Server.cache_stats srv).Qcache.misses in
          let third = query c "X : employee" in
          Alcotest.(check bool) "new fact visible after write" true
            (List.exists (Helpers.contains ~sub:"e3") third);
          Alcotest.(check bool) "stale entry not served" true
            ((Server.cache_stats srv).Qcache.misses > misses_before)))

let test_server_domain_pool () =
  let config = { Server.default_config with workers = 2; pool_domains = true } in
  with_server ~config (fun _p srv ->
      with_client srv (fun c ->
          Alcotest.(check bool) "ping over domain workers" true
            (Client.ping c);
          let rows = query c "X : employee" in
          Alcotest.(check bool) "query over domain workers" true
            (rows <> [])))

let suite =
  [
    Helpers.qtest (qcheck_par_seq 2);
    Helpers.qtest (qcheck_par_seq 4);
    Alcotest.test_case "partitioned closure, jobs 2 and 4" `Quick
      test_partitioned_closure_jobs;
    Alcotest.test_case "multi-stratum + builtin classes, jobs 4" `Quick
      test_multi_stratum_jobs;
    Alcotest.test_case "snapshot isolation under appends" `Quick
      test_snapshot_isolation;
    Alcotest.test_case "duplicate inserts keep the epoch" `Quick
      test_epoch_ignores_duplicates;
    Alcotest.test_case "qcache: hit, epoch invalidation, eviction" `Quick
      test_qcache_hit_and_invalidate;
    Alcotest.test_case "qcache: wholesale reset at capacity" `Quick
      test_qcache_capacity_reset;
    Alcotest.test_case "qcache: capacity must be positive" `Quick
      test_qcache_rejects_bad_capacity;
    Alcotest.test_case "server: cached reads + write invalidation" `Quick
      test_server_cache_and_invalidation;
    Alcotest.test_case "server: domain-backed worker pool" `Quick
      test_server_domain_pool;
  ]
