(* PR 9: regular path expressions.

   The automaton-product join is property-tested against hand-expanded
   recursive rules: a random regex over a small edge vocabulary is
   translated into the recursive closure program it abbreviates, and
   both must return the same answers — with a bound receiver, with both
   endpoints free, at jobs 1 and 4, and through the demand-driven
   (magic-sets) path. Plus the parse/pretty round trip on canonical
   regexes, and deterministic anchors for the seed directions and the
   PL060 emptiness warning. *)

open Helpers
module Ast = Syntax.Ast
module Program = Pathlog.Program
module Fixpoint = Pathlog.Fixpoint

(* ------------------------------------------------------------------ *)
(* Generators.

   Canonical regexes only — shapes the parser itself can produce, so
   pretty-printing and reparsing is the identity: no empty or singleton
   [Rseq]/[Ralt], and the leading separator of a sequence head or an
   alternation branch equals the separator that leads into the group
   (the grammar threads that separator through [|] and into [( )]). *)

let scalar_meths = [ "boss"; "mentor" ]
let set_meths = [ "kids"; "likes" ]

let gen_sep = QCheck.Gen.oneofl [ Ast.Dot; Ast.Dotdot ]

let gen_lit ~sep =
  let meths = match sep with Ast.Dot -> scalar_meths | Ast.Dotdot -> set_meths in
  QCheck.Gen.map
    (fun m -> Ast.Rlit { l_sep = sep; l_meth = Ast.Name m; l_args = [] })
    (QCheck.Gen.oneofl meths)

let rec gen_regex ~sep n =
  let open QCheck.Gen in
  if n <= 0 then gen_lit ~sep
  else
    frequency
      [
        (3, gen_lit ~sep);
        (2, map (fun r -> Ast.Rstar r) (gen_regex ~sep (n - 1)));
        (2, map (fun r -> Ast.Rplus r) (gen_regex ~sep (n - 1)));
        (1, map (fun r -> Ast.Ropt r) (gen_regex ~sep (n - 1)));
        ( 2,
          let* first = gen_regex ~sep (n - 1) in
          let* rest =
            list_size (int_range 1 2)
              (let* s = gen_sep in
               gen_regex ~sep:s (n - 1))
          in
          return (Ast.Rseq (first :: rest)) );
        ( 2,
          let* branches = list_size (int_range 2 3) (gen_regex ~sep (n - 1)) in
          return (Ast.Ralt branches) );
      ]

(* A top-level regex must carry a regular operator or an alternation —
   an operator-free sequence like [a.b.c] is ordinary path syntax and
   never reaches the regex grammar. *)
let gen_top =
  let open QCheck.Gen in
  let* sep = gen_sep in
  let* re =
    oneof
      [
        map (fun r -> Ast.Rstar r) (gen_regex ~sep 2);
        map (fun r -> Ast.Rplus r) (gen_regex ~sep 2);
        map (fun r -> Ast.Ropt r) (gen_regex ~sep 2);
        (let* branches = list_size (int_range 2 3) (gen_regex ~sep 2) in
         return (Ast.Ralt branches));
      ]
  in
  return re

let regex_query_lit recv re =
  Ast.Pos
    (Ast.Filter
       {
         f_recv = Ast.Regex { x_recv = recv; x_re = re };
         f_meth = Ast.Name "self";
         f_args = [];
         f_rhs = Ast.Rscalar (Ast.Var "Y");
       })

let query_text lits = Syntax.Pretty.statement_to_string (Ast.Query lits)

let print_regex re = query_text [ regex_query_lit (Ast.Name "o1") re ]

let arb_top = QCheck.make ~print:print_regex gen_top

(* ------------------------------------------------------------------ *)
(* Random edge graphs over six objects. Scalar methods get at most one
   target per receiver (no functional conflicts); set methods are free.
   Every object is a [node], the class the hand expansion's identity
   rules range over. *)

let objs = [ "o1"; "o2"; "o3"; "o4"; "o5"; "o6" ]

let gen_graph =
  let open QCheck.Gen in
  let edge m o r = Printf.sprintf "%s[%s -> %s]. " o m r in
  let sedge m o r = Printf.sprintf "%s[%s ->> {%s}]. " o m r in
  let* scalar_facts =
    flatten_l
      (List.concat_map
         (fun m ->
           List.map
             (fun o ->
               frequency
                 [
                   (1, return "");
                   (2, map (fun r -> edge m o r) (oneofl objs));
                 ])
             objs)
         scalar_meths)
  in
  let* set_facts =
    list_size (int_range 0 12)
      (let* m = oneofl set_meths in
       let* o = oneofl objs in
       let* r = oneofl objs in
       return (sedge m o r))
  in
  let classes = List.map (fun o -> Printf.sprintf "%s : node. " o) objs in
  return (String.concat "" (classes @ scalar_facts @ set_facts))

let arb_case =
  QCheck.make
    ~print:(fun (g, re) -> g ^ "\n" ^ print_regex re)
    QCheck.Gen.(pair gen_graph gen_top)

(* ------------------------------------------------------------------ *)
(* Hand expansion: each regex node becomes a fresh set-valued relation
   computing exactly the pairs the sub-expression relates. *)

let translate re =
  let b = Buffer.create 256 in
  let k = ref 0 in
  let fresh () =
    incr k;
    Printf.sprintf "q%d" !k
  in
  let rule fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let rec go re =
    let r = fresh () in
    (match (re : Ast.regex) with
    | Rlit { l_sep = Dot; l_meth = Name m; _ } ->
      rule "X[%s ->> {Y}] <- X[%s -> Y]. " r m
    | Rlit { l_sep = Dotdot; l_meth = Name m; _ } ->
      rule "X[%s ->> {Y}] <- X[%s ->> {Y}]. " r m
    | Rlit _ -> invalid_arg "translate: non-name method"
    | Rseq rs ->
      let subs = List.map go rs in
      let n = List.length subs in
      let var i = if i = n then "Y" else Printf.sprintf "Z%d" i in
      let body =
        List.mapi
          (fun i s ->
            Printf.sprintf "%s[%s ->> {%s}]"
              (if i = 0 then "X" else var i)
              s
              (var (i + 1)))
          subs
      in
      rule "X[%s ->> {Y}] <- %s. " r (String.concat ", " body)
    | Ralt rs ->
      List.iter (fun s -> rule "X[%s ->> {Y}] <- X[%s ->> {Y}]. " r s) (List.map go rs)
    | Ropt s ->
      let s = go s in
      rule "X[%s ->> {Y}] <- X[%s ->> {Y}]. " r s;
      rule "X[%s ->> {X}] <- X : node. " r
    | Rstar s ->
      let s = go s in
      rule "X[%s ->> {X}] <- X : node. " r;
      rule "X[%s ->> {Y}] <- X[%s ->> {Z}], Z[%s ->> {Y}]. " r s r
    | Rplus s ->
      let s = go s in
      rule "X[%s ->> {Y}] <- X[%s ->> {Y}]. " r s;
      rule "X[%s ->> {Y}] <- X[%s ->> {Z}], Z[%s ->> {Y}]. " r s r);
    r
  in
  let top = go re in
  (Buffer.contents b, top)

(* ------------------------------------------------------------------ *)
(* Equivalence. *)

let rows p (a : Program.answer) =
  List.sort_uniq compare (List.map (Program.row_to_string p) a.Program.rows)

let load ?(jobs = 1) text =
  let config = { Fixpoint.default_config with jobs } in
  let p = Program.of_string ~config text in
  ignore (Program.run p);
  p

let unbound_lits re top =
  let guard = Ast.Pos (Ast.Isa { recv = Ast.Var "X"; cls = Ast.Name "node" }) in
  ( query_text [ guard; regex_query_lit (Ast.Var "X") re ],
    Printf.sprintf "X : node, X[%s ->> {Y}]" top )

let equiv ~jobs (graph, re) =
  let rules, top = translate re in
  let p_regex = load ~jobs graph in
  let p_rules = load ~jobs (graph ^ rules) in
  let agree q_regex q_rules =
    let a = rows p_regex (Program.query_string p_regex q_regex) in
    let b = rows p_rules (Program.query_string p_rules q_rules) in
    if a <> b then
      QCheck.Test.fail_reportf
        "disagreement on %s vs %s:\n  regex: [%s]\n  rules: [%s]" q_regex
        q_rules (String.concat "; " a) (String.concat "; " b)
    else true
  in
  List.for_all
    (fun o ->
      agree
        (query_text [ regex_query_lit (Ast.Name o) re ])
        (Printf.sprintf "%s[%s ->> {Y}]" o top))
    [ "o1"; "o4" ]
  &&
  let qx, rx = unbound_lits re top in
  agree qx rx

let equiv_1j =
  QCheck.Test.make ~count:60
    ~name:"regex = hand-expanded recursive rules (jobs=1)" arb_case
    (equiv ~jobs:1)

let equiv_4j =
  QCheck.Test.make ~count:20
    ~name:"regex = hand-expanded recursive rules (jobs=4)" arb_case
    (equiv ~jobs:4)

(* The demanded answer to a regex query must equal the answer over the
   fully materialised model; regex label relations are demanded at
   level F (full), so the transform must not fall back. *)
let equiv_demand =
  QCheck.Test.make ~count:30 ~name:"regex under --demand = regex full"
    arb_case (fun (graph, re) ->
      let q = query_text [ regex_query_lit (Ast.Name "o1") re ] in
      let p_full = load graph in
      let full = rows p_full (Program.query_string p_full q) in
      let p_demand = Program.of_string graph in
      let a, report = Program.query_demand_string p_demand q in
      (match report.Program.d_fallback with
      | Some fb ->
        QCheck.Test.fail_reportf "unexpected demand fallback: %s"
          (Pathlog.Demand.fallback_to_string fb)
      | None -> ());
      let demanded = rows p_demand a in
      if full <> demanded then
        QCheck.Test.fail_reportf
          "demand disagreement on %s:\n  full:   [%s]\n  demand: [%s]" q
          (String.concat "; " full)
          (String.concat "; " demanded)
      else true)

(* ------------------------------------------------------------------ *)
(* Pretty round trip: parse (pretty re) = re on canonical regexes. *)

let roundtrip =
  QCheck.Test.make ~count:300 ~name:"parse (pretty re) = re" arb_top
    (fun re ->
      let text = print_regex re in
      match Syntax.Parser.program text with
      | [ Ast.Query [ Ast.Pos (Ast.Filter { f_recv = Ast.Regex { x_re; _ }; _ }) ] ]
        ->
        if x_re = re then true
        else QCheck.Test.fail_reportf "reparsed differently: %s" text
      | _ -> QCheck.Test.fail_reportf "did not reparse as a regex query: %s" text)

(* ------------------------------------------------------------------ *)
(* Deterministic anchors. *)

let chain =
  "e1 : node. e2 : node. e3 : node. m1 : node. \
   e1[boss -> e2]. e2[boss -> e3]. e3[boss -> m1]. \
   e1[mentor -> e9]."

let test_forward () =
  let p = load chain in
  check_answers "boss+ forward" p "e1.boss+[Y]" [ "e2"; "e3"; "m1" ];
  check_answers "boss* includes the receiver" p "e1.boss*[Y]"
    [ "e1"; "e2"; "e3"; "m1" ];
  check_answers "optional then step" p "e1.boss?.boss[Y]" [ "e2"; "e3" ]

let test_backward () =
  let p = load chain in
  check_answers "boss+ backward from bound result" p "X.boss+[m1]"
    [ "e1"; "e2"; "e3" ]

let test_alternation () =
  let p = load chain in
  check_answers "alternation" p "e1.(boss|mentor)[Y]" [ "e2"; "e9" ]

let test_pl060 () =
  let t = Pathlog.Check.analyze "a : node. ?- a.gone+[Y]." in
  (match
     List.find_opt
       (fun (d : Pathlog.Diagnostic.t) -> d.code = "PL060")
       t.Pathlog.Check.diagnostics
   with
  | Some d ->
    Alcotest.(check string)
      "PL060 severity" "warning"
      (Pathlog.Diagnostic.severity_to_string d.severity)
  | None -> Alcotest.fail "expected PL060 on an unproducible regex label");
  let clean = Pathlog.Check.analyze "a : node. a[next -> a]. ?- a.next+[Y]." in
  List.iter
    (fun (d : Pathlog.Diagnostic.t) ->
      if d.code = "PL060" then Alcotest.fail "spurious PL060")
    clean.Pathlog.Check.diagnostics;
  (* nullable: the empty word survives, the expression degenerates to
     the identity but still matches — not flagged *)
  let nullable = Pathlog.Check.analyze "a : node. ?- a.gone*[Y]." in
  List.iter
    (fun (d : Pathlog.Diagnostic.t) ->
      if d.code = "PL060" then Alcotest.fail "PL060 on a nullable automaton")
    nullable.Pathlog.Check.diagnostics

let suite =
  [
    Alcotest.test_case "forward seeds" `Quick test_forward;
    Alcotest.test_case "backward seeds" `Quick test_backward;
    Alcotest.test_case "alternation" `Quick test_alternation;
    Alcotest.test_case "PL060 emptiness warning" `Quick test_pl060;
    qtest equiv_1j;
    qtest equiv_4j;
    qtest equiv_demand;
    qtest roundtrip;
  ]
