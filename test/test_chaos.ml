(* Fault injection, in process: the spec grammar, the determinism of the
   schedule, and the headline chaos property — a full evaluate-and-serve
   cycle under an armed registry never crashes, never corrupts the store,
   and every completed answer equals the fault-free run.

   The registry is process-global, so every test that arms it disarms in
   a [Fun.protect] finally. *)

module Program = Pathlog.Program
module Fault = Pathlog.Fault
module Store = Pathlog.Store
module Server = Pathlog.Server
module Client = Pathlog.Client
module Protocol = Pathlog.Protocol

let with_faults ~seed rules f =
  Fault.configure ~seed rules;
  Fun.protect ~finally:Fault.disable f

(* ------------------------------------------------------------------ *)
(* Spec grammar                                                        *)

let test_parse_ok () =
  match
    Fault.parse "seed=42;store_write:fail@0.01;solver_step:delay@0.5:2"
  with
  | Error msg -> Alcotest.fail msg
  | Ok (seed, rules) ->
    Alcotest.(check int) "seed" 42 seed;
    Alcotest.(check int) "rules" 2 (List.length rules);
    (match rules with
    | [ (Fault.Store_write, Fault.Fail, r1); (Fault.Solver_step, Fault.Delay d, r2) ] ->
      Alcotest.(check (float 1e-9)) "rate 1" 0.01 r1;
      Alcotest.(check (float 1e-9)) "rate 2" 0.5 r2;
      Alcotest.(check (float 1e-9)) "delay seconds" 0.002 d
    | _ -> Alcotest.fail "wrong rules")

let test_parse_errors () =
  List.iter
    (fun spec ->
      match Fault.parse spec with
      | Ok _ -> Alcotest.fail ("accepted bad spec " ^ spec)
      | Error _ -> ())
    [
      "bogus=1";
      "store_write";
      "store_write:fail";
      "store_write:fail@2.0";
      "store_write:fail@x";
      "nowhere:fail@0.1";
      "store_write:explode@0.1";
      "seed=x;store_write:fail@0.1";
    ]

let test_point_names_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Fault.point_to_string p) true
        (Fault.point_of_string (Fault.point_to_string p) = Some p))
    [
      Fault.Store_write;
      Fault.Solver_step;
      Fault.Wire_read;
      Fault.Wire_write;
      Fault.Pool_dispatch;
    ]

(* ------------------------------------------------------------------ *)
(* Schedule determinism                                                *)

let schedule ~seed n =
  with_faults ~seed [ (Fault.Wire_read, Fault.Fail, 0.3) ] (fun () ->
      List.init n (fun _ -> Fault.ask Fault.Wire_read <> None))

let test_deterministic_schedule () =
  let a = schedule ~seed:7 200 in
  let b = schedule ~seed:7 200 in
  Alcotest.(check bool) "same seed, same schedule" true (a = b);
  let c = schedule ~seed:8 200 in
  Alcotest.(check bool) "different seed, different schedule" true (a <> c);
  Alcotest.(check bool)
    "rate is roughly honoured" true
    (let fired = List.length (List.filter Fun.id a) in
     fired > 30 && fired < 90)

let test_disabled_is_free () =
  Fault.disable ();
  Alcotest.(check bool) "disarmed" false (Fault.enabled ());
  Alcotest.(check (option unit)) "ask is None" None
    (Option.map ignore (Fault.ask Fault.Store_write));
  Fault.hit Fault.Solver_step;
  Alcotest.(check int) "nothing counted" 0 (Fault.injected_total ())

(* ------------------------------------------------------------------ *)
(* Faults through the engine                                           *)

let program_text =
  "a : c. b : c. X : d <- X : c. X[next -> b] <- X : c. ?- X : d."

let model_of text =
  let p = Program.of_string text in
  ignore (Program.run p);
  p

(* Transient store-write failures are absorbed by the write path's
   bounded retry: the run completes and the model is untouched. *)
let test_store_write_faults_absorbed () =
  let clean = model_of program_text in
  with_faults ~seed:3 [ (Fault.Store_write, Fault.Fail, 0.3) ] (fun () ->
      let p = model_of program_text in
      Alcotest.(check (pair (list string) (list string)))
        "model unchanged under write faults" ([], [])
        (Program.diff_models ~before:clean ~after:p);
      Alcotest.(check bool) "faults did fire" true (Fault.injected_total () > 0);
      Alcotest.(check (list string))
        "store invariants hold" []
        (Store.check_invariants (Program.store p)))

(* A solver-step fail fault aborts evaluation with Injected (not a crash,
   not a wrong model): rerunning on the same monotone store converges. *)
let test_solver_step_faults_recoverable () =
  let clean = model_of program_text in
  with_faults ~seed:1 [ (Fault.Solver_step, Fault.Fail, 1.0) ] (fun () ->
      let p = Program.of_string program_text in
      let rec run attempts =
        match Program.run p with
        | _ -> ()
        | exception Fault.Injected Fault.Solver_step ->
          if attempts = 0 then Fault.disable ();
          run (attempts - 1)
      in
      run 3;
      Alcotest.(check (pair (list string) (list string)))
        "model converges across injected aborts" ([], [])
        (Program.diff_models ~before:clean ~after:p))

(* ------------------------------------------------------------------ *)
(* The headline chaos property, in miniature (bench/chaos.ml is the
   full storm): serve under wire + dispatch faults, clients reconnect
   and retry, completed answers match, invariants hold, shutdown clean. *)

let test_mini_chaos () =
  let clean = model_of program_text in
  let expected =
    List.sort compare
      (List.map (String.concat "\t") (Pathlog.answers clean "X : d"))
  in
  with_faults ~seed:5
    [
      (Fault.Wire_write, Fault.Short, 0.05);
      (Fault.Wire_read, Fault.Fail, 0.05);
      (Fault.Pool_dispatch, Fault.Fail, 0.1);
    ]
    (fun () ->
      let config =
        { Server.default_config with workers = 2; busy_retry_after_ms = 1 }
      in
      let srv =
        Server.create ~config ~program:clean (Server.Tcp ("127.0.0.1", 0))
      in
      Fun.protect
        ~finally:(fun () -> Server.shutdown srv)
        (fun () ->
          let addr = Server.address srv in
          let completed = ref 0 in
          let conn = ref (Client.connect addr) in
          for _ = 1 to 100 do
            let rec attempt tries =
              if tries > 10 then ()
              else
                match
                  Client.request_with_retry ~max_attempts:3
                    ~base_delay_s:0.001 !conn "QUERY X : d"
                with
                | Ok (Protocol.Ok (_header :: rows)) ->
                  incr completed;
                  Alcotest.(check (list string))
                    "answer equals fault-free run" expected
                    (List.sort compare rows)
                | Ok (Protocol.Ok []) ->
                  Alcotest.fail "empty OK payload"
                | Ok (Protocol.Degraded _) ->
                  Alcotest.fail "DEGRADED from a complete model"
                | Ok (Protocol.Busy _) -> ()
                | Ok (Protocol.Err _ | Protocol.Pong) ->
                  Alcotest.fail "unexpected reply"
                | Error (`Eof | `Malformed _) ->
                  Client.close !conn;
                  conn := Client.connect addr;
                  attempt (tries + 1)
            in
            attempt 0
          done;
          Client.close !conn;
          Alcotest.(check bool)
            (Printf.sprintf "most requests completed (%d)" !completed)
            true (!completed > 50);
          Alcotest.(check bool)
            "faults were injected" true
            (Fault.injected_total () > 0);
          Alcotest.(check (list string))
            "store invariants hold" []
            (Store.check_invariants (Program.store clean))))

(* ------------------------------------------------------------------ *)
(* Injected dispatch faults surface as BUSY with the retry-after hint.  *)

let test_dispatch_fault_is_busy () =
  let p = model_of program_text in
  with_faults ~seed:2 [ (Fault.Pool_dispatch, Fault.Fail, 1.0) ] (fun () ->
      let config =
        { Server.default_config with workers = 1; busy_retry_after_ms = 123 }
      in
      let srv = Server.create ~config ~program:p (Server.Tcp ("127.0.0.1", 0)) in
      Fun.protect
        ~finally:(fun () -> Server.shutdown srv)
        (fun () ->
          let c = Client.connect (Server.address srv) in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              match Client.request c "QUERY X : d" with
              | Ok (Protocol.Busy (ms, _)) ->
                Alcotest.(check int) "retry-after hint" 123 ms
              | _ -> Alcotest.fail "expected BUSY")))

let suite =
  [
    Alcotest.test_case "fault spec: parse" `Quick test_parse_ok;
    Alcotest.test_case "fault spec: rejects garbage" `Quick test_parse_errors;
    Alcotest.test_case "fault points: name round-trip" `Quick
      test_point_names_roundtrip;
    Alcotest.test_case "schedule is seed-deterministic" `Quick
      test_deterministic_schedule;
    Alcotest.test_case "disarmed registry is inert" `Quick
      test_disabled_is_free;
    Alcotest.test_case "store-write faults absorbed" `Quick
      test_store_write_faults_absorbed;
    Alcotest.test_case "solver-step faults recoverable" `Quick
      test_solver_step_faults_recoverable;
    Alcotest.test_case "mini chaos: serve under faults" `Quick
      test_mini_chaos;
    Alcotest.test_case "dispatch fault answers BUSY with hint" `Quick
      test_dispatch_fault_is_busy;
  ]
