(* Cooperative budgets: deadlines, caps and cancellation must stop an
   evaluation mid-flight, leave a sound partial model behind, and do all
   of that identically under the parallel engine. *)

module Program = Pathlog.Program
module Fixpoint = Pathlog.Fixpoint
module Budget = Pathlog.Budget
module Solve = Pathlog.Solve
module Flatten = Pathlog.Flatten

(* A divergent skolem generator: every `pair` spawns two fresh `pair`s,
   so only a budget (or the hard divergence guard) can stop it. The hard
   guards are pushed out of the way so the budget is what fires. *)
let runaway = "p0 : pair. X.left : pair <- X : pair. X.right : pair <- X : pair."

let runaway_config ~jobs =
  {
    Fixpoint.default_config with
    max_rounds = 1_000_000;
    max_objects = 1_000_000_000;
    jobs;
  }

(* ------------------------------------------------------------------ *)
(* Unit behaviour                                                      *)

let test_unlimited () =
  let b = Budget.create () in
  Budget.check b;
  Budget.check_caps b ~derivations:max_int ~objects:max_int;
  Alcotest.(check bool) "not cancelled" false (Budget.cancelled b)

let test_cancel_token () =
  let b = Budget.create () in
  Budget.cancel b;
  Alcotest.(check bool) "cancelled" true (Budget.cancelled b);
  Alcotest.check_raises "check raises" (Budget.Exhausted Budget.Cancelled)
    (fun () -> Budget.check b)

let test_shared_token () =
  let token = Atomic.make false in
  let b1 = Budget.create ~cancel:token () in
  let b2 = Budget.create ~cancel:token () in
  Budget.cancel b1;
  Alcotest.(check bool) "b2 sees it" true (Budget.cancelled b2)

let test_expired_deadline () =
  let b = Budget.create ~deadline_in:(-0.001) () in
  Alcotest.check_raises "timeout" (Budget.Exhausted Budget.Timeout)
    (fun () -> Budget.check b)

let test_caps () =
  let b = Budget.create ~max_derivations:10 ~max_objects:100 () in
  Budget.check_caps b ~derivations:10 ~objects:100;
  Alcotest.check_raises "derivations"
    (Budget.Exhausted Budget.Derivations)
    (fun () -> Budget.check_caps b ~derivations:11 ~objects:0);
  Alcotest.check_raises "objects" (Budget.Exhausted Budget.Objects)
    (fun () -> Budget.check_caps b ~derivations:0 ~objects:101)

let test_reason_labels () =
  Alcotest.(check (list string))
    "labels"
    [ "timeout"; "cancelled"; "derivations"; "objects" ]
    (List.map Budget.reason_label
       [ Budget.Timeout; Budget.Cancelled; Budget.Derivations; Budget.Objects ])

(* ------------------------------------------------------------------ *)
(* Degraded fixpoints                                                  *)

(* The deadline must stop the divergent run in wall-clock time on the
   same order as the deadline itself — generous factor for loaded CI. *)
let test_deadline_degrades ~jobs () =
  let p = Program.of_string ~config:(runaway_config ~jobs) runaway in
  let deadline = 0.1 in
  let t0 = Unix.gettimeofday () in
  let stats = Program.run ~budget:(Budget.create ~deadline_in:deadline ()) p in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    "degraded by timeout" true
    (stats.Fixpoint.degraded = Some Budget.Timeout);
  Alcotest.(check bool)
    "degraded sticks on the program" true
    (Program.degraded p = Some Budget.Timeout);
  Alcotest.(check bool)
    (Printf.sprintf "stopped in bounded time (%.3fs)" elapsed)
    true
    (elapsed < 10. *. deadline);
  (* the partial model is sound: the seed fact survives, and everything
     derived is a pair reachable from it *)
  Alcotest.(check bool) "seed fact present" true (Pathlog.holds p "p0 : pair")

let test_precancelled_run ~jobs () =
  let p = Program.of_string ~config:(runaway_config ~jobs) runaway in
  let b = Budget.create () in
  Budget.cancel b;
  let stats = Program.run ~budget:b p in
  Alcotest.(check bool)
    "degraded by cancellation" true
    (stats.Fixpoint.degraded = Some Budget.Cancelled)

let test_derivation_cap_degrades () =
  let p = Program.of_string ~config:(runaway_config ~jobs:1) runaway in
  let stats = Program.run ~budget:(Budget.create ~max_derivations:50 ()) p in
  Alcotest.(check bool)
    "degraded by derivation cap" true
    (stats.Fixpoint.degraded = Some Budget.Derivations)

let test_clean_run_not_degraded () =
  let p = Program.of_string "a : c. b : c. X : d <- X : c." in
  let stats = Program.run ~budget:(Budget.create ~deadline_in:30. ()) p in
  Alcotest.(check bool) "stats clean" true (stats.Fixpoint.degraded = None);
  Alcotest.(check bool) "program clean" true (Program.degraded p = None);
  Alcotest.(check bool) "model complete" true (Pathlog.holds p "b : d")

(* ------------------------------------------------------------------ *)
(* Budgeted answers are a subset of unbudgeted answers (soundness of
   degradation), on random programs, sequential and parallel.           *)

let budget_subset ~jobs seed =
  let text =
    Pathlog.Randprog.generate { Pathlog.Randprog.seed; facts = 12; rules = 4 }
  in
  let full =
    match
      let p = Program.of_string text in
      ignore (Program.run p);
      p
    with
    | p -> Some p
    | exception _ -> None (* randprog conflicts: nothing to compare *)
  in
  match full with
  | None -> true
  | Some full -> (
    let config = { Fixpoint.default_config with jobs } in
    match Program.of_string ~config text with
    | exception _ -> false
    | budgeted -> (
      (* a tiny derivation cap: most runs degrade midway *)
      match
        Program.run ~budget:(Budget.create ~max_derivations:3 ()) budgeted
      with
      | exception _ -> true (* the conflict fired before the cap *)
      | _stats ->
        let added, _removed =
          Program.diff_models ~before:full ~after:budgeted
        in
        (* nothing may exist in the budgeted model that full evaluation
           does not derive *)
        added = []))

let qcheck_budget_subset jobs =
  QCheck.Test.make
    ~name:(Printf.sprintf "budgeted model subset of full, jobs=%d" jobs)
    ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100_000))
    (budget_subset ~jobs)

(* ------------------------------------------------------------------ *)
(* Cancellation latency: after the token is set mid-enumeration, the
   solver may deliver at most one poll interval of further solutions.   *)

let test_cancellation_latency () =
  let n = 80 in
  let b = Buffer.create 1024 in
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "o%d : c. " i)
  done;
  let p = Program.of_string (Buffer.contents b) in
  ignore (Program.run p);
  let store = Program.store p in
  (* X : c, Y : c enumerates n^2 = 6400 solutions, several poll
     intervals' worth *)
  let q = Flatten.literals store (Pathlog.Parser.literals "X : c, Y : c") in
  let budget = Budget.create () in
  let interrupt =
    match Fixpoint.interrupt_of (Some budget) with
    | Some f -> f
    | None -> Alcotest.fail "budget produced no interrupt"
  in
  let seen = ref 0 in
  let after_cancel = ref 0 in
  let cancel_at = 10 in
  match
    Solve.iter ~interrupt store q ~f:(fun _ ->
        incr seen;
        if !seen = cancel_at then Budget.cancel budget
        else if !seen > cancel_at then incr after_cancel)
  with
  | () -> Alcotest.fail "enumeration was never cancelled"
  | exception Budget.Exhausted Budget.Cancelled ->
    Alcotest.(check bool)
      (Printf.sprintf "at most one poll interval after cancel (saw %d)"
         !after_cancel)
      true
      (!after_cancel <= Solve.poll_interval)
  | exception Budget.Exhausted r ->
    Alcotest.fail ("wrong exhaustion reason: " ^ Budget.reason_label r)

(* ------------------------------------------------------------------ *)
(* Query-time budgets (outside the fixpoint)                           *)

let test_query_budget () =
  let n = 120 in
  let b = Buffer.create 1024 in
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "o%d : c. " i)
  done;
  let p = Program.of_string (Buffer.contents b) in
  ignore (Program.run p);
  (* an already-expired deadline: the enumeration must die at its first
     poll instead of materialising 14400 rows *)
  match
    Program.query_string ~budget:(Budget.create ~deadline_in:(-1.) ()) p
      "X : c, Y : c"
  with
  | _ -> Alcotest.fail "expired budget did not stop the query"
  | exception Budget.Exhausted Budget.Timeout -> ()

let suite =
  [
    Alcotest.test_case "budget: unlimited" `Quick test_unlimited;
    Alcotest.test_case "budget: cancel token" `Quick test_cancel_token;
    Alcotest.test_case "budget: shared token" `Quick test_shared_token;
    Alcotest.test_case "budget: expired deadline" `Quick
      test_expired_deadline;
    Alcotest.test_case "budget: caps" `Quick test_caps;
    Alcotest.test_case "budget: reason labels" `Quick test_reason_labels;
    Alcotest.test_case "deadline degrades, jobs=1" `Quick
      (test_deadline_degrades ~jobs:1);
    Alcotest.test_case "deadline degrades, jobs=4" `Quick
      (test_deadline_degrades ~jobs:4);
    Alcotest.test_case "pre-cancelled run degrades, jobs=1" `Quick
      (test_precancelled_run ~jobs:1);
    Alcotest.test_case "pre-cancelled run degrades, jobs=4" `Quick
      (test_precancelled_run ~jobs:4);
    Alcotest.test_case "derivation cap degrades" `Quick
      test_derivation_cap_degrades;
    Alcotest.test_case "clean run under budget is not degraded" `Quick
      test_clean_run_not_degraded;
    QCheck_alcotest.to_alcotest (qcheck_budget_subset 1);
    QCheck_alcotest.to_alcotest (qcheck_budget_subset 4);
    Alcotest.test_case "cancellation latency is one poll interval" `Quick
      test_cancellation_latency;
    Alcotest.test_case "query-time budget" `Quick test_query_budget;
  ]
