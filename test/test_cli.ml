(* End-to-end tests of the command-line driver: run the real binary on the
   shipped programs and check its output and exit codes. *)

let find_file candidates =
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> Alcotest.failf "not found: %s" (String.concat ", " candidates)

let cli () =
  find_file
    [ "../bin/pathlog_cli.exe"; "_build/default/bin/pathlog_cli.exe" ]

let plg name =
  find_file
    [ "../examples/programs/" ^ name;
      "examples/programs/" ^ name;
      "_build/default/examples/programs/" ^ name ]

(* Run the CLI, return (exit code, combined output). *)
let run_cli args =
  let out = Filename.temp_file "pathlog_cli" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote (cli ()))
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in_bin out in
  let text =
    Fun.protect
      ~finally:(fun () ->
        close_in_noerr ic;
        Sys.remove out)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, text)

let contains = Helpers.contains

let test_run_genealogy () =
  let code, out = run_cli [ "run"; plg "genealogy.plg"; "--stats" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "stats line" true (contains ~sub:"% strata" out);
  Alcotest.(check bool) "embedded query answered" true
    (contains ~sub:"(5 answers)" out);
  Alcotest.(check bool) "sally in closure" true (contains ~sub:"sally" out)

let test_run_query_flag () =
  let code, out =
    run_cli [ "run"; plg "genealogy.plg"; "-q"; "tim[desc ->> {X}]" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "answer" true (contains ~sub:"sally" out)

let test_run_types_flag () =
  let code, out = run_cli [ "run"; plg "university.plg"; "--types" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "types ok" true (contains ~sub:"types: ok" out)

let test_run_dump () =
  let code, out = run_cli [ "run"; plg "addresses.plg"; "--dump" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "dump has skolem fact" true
    (contains ~sub:"alice.address[street -> mainSt]." out)

let test_check_shows_strata () =
  let code, out = run_cli [ "check"; plg "university.plg" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "strata header" true (contains ~sub:"2 strata" out);
  Alcotest.(check bool) "stratum 1 rule shown" true
    (contains ~sub:"stratum 1" out)

let test_explain () =
  let code, out =
    run_cli [ "explain"; plg "genealogy.plg"; "-q"; "peter[desc ->> {X}]" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "plan step" true (contains ~sub:"1." out);
  Alcotest.(check bool) "access path" true (contains ~sub:"lookup" out)

let test_why () =
  let code, out =
    run_cli [ "why"; plg "genealogy.plg"; "-q"; "peter[desc ->> {sally}]" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "proof leaf" true
    (contains ~sub:"tim[kids ->> {sally}]   (fact)" out)

let test_error_exit_code () =
  let bad = Filename.temp_file "bad" ".plg" in
  let oc = open_out bad in
  output_string oc "X[a -> 1] <- y.\n";
  (* unsafe head var *)
  close_out oc;
  let code, out = run_cli [ "run"; bad ] in
  Sys.remove bad;
  Alcotest.(check int) "exit 2 (load error)" 2 code;
  Alcotest.(check bool) "error message" true (contains ~sub:"error:" out)

let test_conflict_reported () =
  let bad = Filename.temp_file "bad" ".plg" in
  let oc = open_out bad in
  output_string oc "x[m -> a]. x[m -> b].\n";
  close_out oc;
  let code, out = run_cli [ "run"; bad ] in
  Sys.remove bad;
  Alcotest.(check int) "exit 1 (runtime error)" 1 code;
  Alcotest.(check bool) "conflict message" true
    (contains ~sub:"already yields" out)

let suite =
  [
    Alcotest.test_case "run genealogy" `Quick test_run_genealogy;
    Alcotest.test_case "run -q" `Quick test_run_query_flag;
    Alcotest.test_case "run --types" `Quick test_run_types_flag;
    Alcotest.test_case "run --dump" `Quick test_run_dump;
    Alcotest.test_case "check strata" `Quick test_check_shows_strata;
    Alcotest.test_case "explain" `Quick test_explain;
    Alcotest.test_case "why proof" `Quick test_why;
    Alcotest.test_case "error exit code" `Quick test_error_exit_code;
    Alcotest.test_case "conflict reported" `Quick test_conflict_reported;
  ]

(* appended: the query subcommand strategies *)

let test_query_strategies () =
  List.iter
    (fun strategy ->
      let code, out =
        run_cli
          [ "query"; plg "genealogy.plg"; "-s"; strategy; "-q";
            "tim[desc ->> {X}]" ]
      in
      Alcotest.(check int) (strategy ^ " exit") 0 code;
      Alcotest.(check bool) (strategy ^ " answer") true
        (contains ~sub:"sally" out))
    [ "full"; "focused"; "topdown" ]

let test_query_bad_strategy () =
  let code, _ =
    run_cli [ "query"; plg "genealogy.plg"; "-s"; "quantum"; "-q"; "x" ]
  in
  Alcotest.(check int) "exit 1" 1 code

let suite =
  suite
  @ [
      Alcotest.test_case "query strategies" `Quick test_query_strategies;
      Alcotest.test_case "query bad strategy" `Quick test_query_bad_strategy;
    ]

(* appended: fmt subcommand *)

let test_fmt_roundtrip () =
  let code, out = run_cli [ "fmt"; plg "university.plg" ] in
  Alcotest.(check int) "exit 0" 0 code;
  (* formatted output reparses to the same statements *)
  let original =
    Pathlog.Parser.program
      (let ic = open_in_bin (plg "university.plg") in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () -> really_input_string ic (in_channel_length ic)))
  in
  let reparsed = Pathlog.Parser.program out in
  Alcotest.(check int) "same statement count" (List.length original)
    (List.length reparsed);
  Alcotest.(check bool) "same statements" true
    (List.for_all2 Syntax.Ast.equal_statement original reparsed)

let test_fmt_normalize_idempotent () =
  let _, once = run_cli [ "fmt"; plg "company.plg"; "--normalize" ] in
  let tmp = Filename.temp_file "fmt" ".plg" in
  let oc = open_out tmp in
  output_string oc once;
  close_out oc;
  let _, twice = run_cli [ "fmt"; tmp; "--normalize" ] in
  Sys.remove tmp;
  Alcotest.(check string) "fmt --normalize is idempotent" once twice

let suite =
  suite
  @ [
      Alcotest.test_case "fmt roundtrip" `Quick test_fmt_roundtrip;
      Alcotest.test_case "fmt normalize idempotent" `Quick
        test_fmt_normalize_idempotent;
    ]

(* appended: the static-analysis side of the check subcommand *)

let with_program text f =
  let tmp = Filename.temp_file "check" ".plg" in
  let oc = open_out tmp in
  output_string oc text;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove tmp) (fun () -> f tmp)

let test_check_clean_examples () =
  List.iter
    (fun name ->
      let code, out = run_cli [ "check"; "--deny"; "warning"; plg name ] in
      Alcotest.(check int) (name ^ " exit") 0 code;
      Alcotest.(check bool) (name ^ " ok line") true (contains ~sub:"ok:" out))
    [
      "addresses.plg"; "company.plg"; "genealogy.plg"; "lists.plg";
      "university.plg";
    ]

let test_check_conflict_exit () =
  with_program "x[m -> a].\nx[m -> b].\n" (fun file ->
      let code, out = run_cli [ "check"; file ] in
      Alcotest.(check int) "exit 3 (analysis)" 3 code;
      Alcotest.(check bool) "PL040 reported" true (contains ~sub:"PL040" out);
      Alcotest.(check bool) "span shown" true
        (contains ~sub:"line 2, columns 1-10" out))

let test_check_deny_warning () =
  with_program "x : nat.\nX.succ : nat <- X : nat.\n" (fun file ->
      (* default deny level lets warnings through *)
      let code, out = run_cli [ "check"; file ] in
      Alcotest.(check int) "warning passes by default" 0 code;
      Alcotest.(check bool) "PL030 reported" true (contains ~sub:"PL030" out);
      let code, _ = run_cli [ "check"; "--deny"; "warning"; file ] in
      Alcotest.(check int) "denied at warning" 3 code)

let test_check_json () =
  with_program "x[m -> a].\nx[m -> b].\n" (fun file ->
      let code, out = run_cli [ "check"; "--json"; file ] in
      Alcotest.(check int) "exit 3" 3 code;
      Alcotest.(check bool) "ok field" true (contains ~sub:"\"ok\":false" out);
      Alcotest.(check bool) "code field" true
        (contains ~sub:"\"code\":\"PL040\"" out);
      Alcotest.(check bool) "span object" true
        (contains ~sub:"\"span\":{\"start\":{\"line\":2" out))

let test_check_parse_error () =
  with_program "x[m ->\n" (fun file ->
      let code, out = run_cli [ "check"; file ] in
      Alcotest.(check int) "exit 3" 3 code;
      Alcotest.(check bool) "PL001 reported" true (contains ~sub:"PL001" out))

let test_run_prune_dead () =
  with_program
    "a[edge ->> {b}].\nb[edge ->> {c}].\n\
     X[tc ->> {Y}] <- X[edge ->> {Y}].\n\
     X[tc ->> {Y}] <- X..tc[edge ->> {Y}].\n\
     p[other -> q] <- b[edge ->> {c}].\n\
     ?- a[tc ->> {X}].\n"
    (fun file ->
      let code, out = run_cli [ "run"; file; "--prune-dead" ] in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "prune note" true
        (contains ~sub:"1 dead rules skipped" out);
      Alcotest.(check bool) "answers unchanged" true
        (contains ~sub:"(2 answers)" out))

let broken_plg name =
  find_file
    [ "../examples/broken/" ^ name;
      "examples/broken/" ^ name;
      "_build/default/examples/broken/" ^ name ]

(* run --deadline on a divergent program: the budget must stop the run,
   print a partial-model notice, and exit with Err.exit_runtime — while
   the hard divergence guards are pushed out of the way so it is really
   the wall-clock budget that fires. *)
let test_run_deadline_degrades () =
  let code, out =
    run_cli
      [
        "run"; broken_plg "runaway_pairs.plg";
        "--deadline"; "0.1";
        "--max-rounds"; "1000000";
        "--max-objects"; "1000000000";
      ]
  in
  Alcotest.(check int) "exit_runtime" Pathlog.Err.exit_runtime code;
  Alcotest.(check bool) "degraded notice" true
    (contains ~sub:"degraded" out);
  Alcotest.(check bool) "partial-model wording" true
    (contains ~sub:"sound partial model" out);
  Alcotest.(check bool) "names the reason" true
    (contains ~sub:"timeout" out)

(* and without --deadline the same program trips the hard divergence
   guard instead: also exit 1, but as an error, not a degraded notice *)
let test_run_divergent_hard_guard () =
  let code, out =
    run_cli
      [ "run"; broken_plg "runaway_pairs.plg"; "--max-objects"; "5000" ]
  in
  Alcotest.(check int) "exit_runtime" Pathlog.Err.exit_runtime code;
  Alcotest.(check bool) "diverged error" true
    (contains ~sub:"error" out);
  Alcotest.(check bool) "no degraded notice" false
    (contains ~sub:"degraded" out)

let demand_chain_text =
  "a0[boss -> a1].\na1[boss -> a2].\nb0[boss -> b1].\n\
   X[up ->> {Y}] <- X[boss -> Y].\n\
   X[up ->> {Y}] <- X[boss -> Z], Z[up ->> {Y}].\n\
   ?- a0[up ->> {W}].\n"

let test_run_demand () =
  with_program demand_chain_text (fun file ->
      let code, out =
        run_cli
          [ "run"; file; "--demand"; "--stats"; "-q"; "b0[up ->> {X}]" ]
      in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "demand stats line" true
        (contains ~sub:"% demand:" out);
      Alcotest.(check bool) "guarded rules counted" true
        (contains ~sub:"2 guarded" out);
      Alcotest.(check bool) "embedded query answered" true
        (contains ~sub:"(2 answers)" out);
      Alcotest.(check bool) "flag query answered" true
        (contains ~sub:"(1 answers)" out))

let test_explain_demand () =
  with_program demand_chain_text (fun file ->
      let code, out =
        run_cli [ "explain"; file; "--demand"; "-q"; "a0[up ->> {X}]" ]
      in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "magic seeds" true
        (contains ~sub:"magic seeds" out);
      Alcotest.(check bool) "magic predicate" true
        (contains ~sub:"magic$set$up" out);
      Alcotest.(check bool) "adornment shown" true
        (contains ~sub:"bound-receiver" out))

let test_serve_bad_faults_spec () =
  let code, out =
    run_cli
      [
        "serve"; broken_plg "runaway_pairs.plg";
        "--faults"; "nowhere:explode@1.0";
      ]
  in
  Alcotest.(check int) "exit_load" Pathlog.Err.exit_load code;
  Alcotest.(check bool) "spec error reported" true
    (contains ~sub:"bad --faults spec" out)

let suite =
  suite
  @ [
      Alcotest.test_case "check clean examples" `Quick
        test_check_clean_examples;
      Alcotest.test_case "check conflict exit" `Quick test_check_conflict_exit;
      Alcotest.test_case "check --deny warning" `Quick test_check_deny_warning;
      Alcotest.test_case "check --json" `Quick test_check_json;
      Alcotest.test_case "check parse error" `Quick test_check_parse_error;
      Alcotest.test_case "run --prune-dead" `Quick test_run_prune_dead;
      Alcotest.test_case "run --deadline degrades divergent program" `Quick
        test_run_deadline_degrades;
      Alcotest.test_case "run without deadline trips the hard guard" `Quick
        test_run_divergent_hard_guard;
      Alcotest.test_case "serve rejects a bad --faults spec" `Quick
        test_serve_bad_faults_spec;
      Alcotest.test_case "run --demand" `Quick test_run_demand;
      Alcotest.test_case "explain --demand" `Quick test_explain_demand;
    ]
