(* Durability: WAL framing and recovery, snapshot fallback, the Live
   commit hook, crash-equivalence properties, and the server's
   BUSY-while-recovering window. Every test works in a throwaway data
   directory under the system temp root, removed on the way out. *)

open Helpers
module Durable = Pathlog.Durable
module Live = Pathlog.Live
module Program = Pathlog.Program
module Store = Pathlog.Store
module Server = Pathlog.Server
module Client = Pathlog.Client
module Fault = Pathlog.Fault

(* ------------------------------------------------------------------ *)
(* Temp data directories, always cleaned up *)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun n -> rm_rf (Filename.concat path n))
      (try Sys.readdir path with Sys_error _ -> [||]);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pldur-%d-%d" (Unix.getpid ()) !counter)

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Append raw bytes to the WAL file — the torn-write / bit-rot model. *)
let append_bytes path s =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

let flip_byte path pos =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.create 1 in
      ignore (Unix.lseek fd pos Unix.SEEK_SET : int);
      ignore (Unix.read fd b 0 1 : int);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
      ignore (Unix.lseek fd pos Unix.SEEK_SET : int);
      ignore (Unix.write fd b 0 1 : int))

let file_size path = (Unix.stat path).Unix.st_size

let texts recovery = List.map (fun r -> r.Durable.text) recovery.Durable.r_tail

(* ------------------------------------------------------------------ *)
(* WAL goldens *)

let fresh_dir_roundtrip () =
  with_dir (fun dir ->
      let d, r = Durable.open_dir dir in
      Alcotest.(check bool) "no snapshot" true (r.Durable.r_snapshot = None);
      Alcotest.(check int) "no tail" 0 (List.length r.Durable.r_tail);
      Alcotest.(check int) "no torn bytes" 0 r.Durable.r_torn_bytes;
      ignore (Durable.append d ~retract:false ~epoch:1 "a : c." : int);
      ignore (Durable.append d ~retract:false ~epoch:2 "b : c." : int);
      ignore (Durable.append d ~retract:true ~epoch:3 "a : c." : int);
      Durable.close d;
      let d2, r2 = Durable.open_dir dir in
      Durable.close d2;
      Alcotest.(check (list string))
        "records back in order"
        [ "a : c."; "b : c."; "a : c." ]
        (texts r2);
      Alcotest.(check (list int))
        "sequence numbers" [ 1; 2; 3 ]
        (List.map (fun r -> r.Durable.seq) r2.Durable.r_tail);
      Alcotest.(check (list bool))
        "verbs" [ false; false; true ]
        (List.map (fun r -> r.Durable.retract) r2.Durable.r_tail))

let torn_tail_truncated () =
  with_dir (fun dir ->
      let d, _ = Durable.open_dir dir in
      ignore (Durable.append d ~retract:false ~epoch:1 "a : c." : int);
      ignore (Durable.append d ~retract:false ~epoch:2 "b : c." : int);
      Durable.close d;
      let wal = Durable.wal_path dir in
      let clean = file_size wal in
      append_bytes wal "\x13\x37garbage half-frame";
      let d2, r2 = Durable.open_dir dir in
      Durable.close d2;
      Alcotest.(check (list string))
        "intact prefix survives" [ "a : c."; "b : c." ] (texts r2);
      Alcotest.(check bool) "torn bytes counted" true (r2.Durable.r_torn_bytes > 0);
      Alcotest.(check int) "file truncated back" clean (file_size wal);
      (* a third open sees a clean log: truncation was physical *)
      let d3, r3 = Durable.open_dir dir in
      Durable.close d3;
      Alcotest.(check int) "clean after truncation" 0 r3.Durable.r_torn_bytes)

let bit_flip_detected () =
  with_dir (fun dir ->
      let d, _ = Durable.open_dir dir in
      ignore (Durable.append d ~retract:false ~epoch:1 "a : c." : int);
      ignore (Durable.append d ~retract:false ~epoch:2 "b : c." : int);
      let before_last = Durable.wal_path dir |> file_size in
      ignore (Durable.append d ~retract:false ~epoch:3 "c : c." : int);
      Durable.close d;
      (* flip one byte inside the last record's payload: the CRC must
         refuse the record — never a silent wrong-text load *)
      flip_byte (Durable.wal_path dir) (before_last + 12);
      let d2, r2 = Durable.open_dir dir in
      Durable.close d2;
      Alcotest.(check (list string))
        "only the intact prefix" [ "a : c."; "b : c." ] (texts r2);
      Alcotest.(check bool) "corruption detected" true
        (r2.Durable.r_torn_bytes > 0))

let junk_wal_starts_fresh () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let oc = open_out_bin (Durable.wal_path dir) in
      output_string oc "this is not a WAL at all";
      close_out oc;
      let d, r = Durable.open_dir dir in
      Alcotest.(check int) "no records" 0 (List.length r.Durable.r_tail);
      Alcotest.(check bool) "junk counted as torn" true
        (r.Durable.r_torn_bytes > 0);
      (* and the rewritten log is usable *)
      ignore (Durable.append d ~retract:false ~epoch:1 "a : c." : int);
      Durable.close d;
      let d2, r2 = Durable.open_dir dir in
      Durable.close d2;
      Alcotest.(check (list string)) "usable after rewrite" [ "a : c." ]
        (texts r2))

(* ------------------------------------------------------------------ *)
(* Snapshot goldens *)

let snapshot_filters_tail () =
  with_dir (fun dir ->
      let d, _ = Durable.open_dir dir in
      ignore (Durable.append d ~retract:false ~epoch:1 "a : c." : int);
      ignore (Durable.append d ~retract:false ~epoch:2 "b : c." : int);
      Alcotest.(check bool) "snapshot written" true
        (Durable.snapshot_now d ~epoch:2 ~source:"a : c. b : c.");
      ignore (Durable.append d ~retract:false ~epoch:3 "c : c." : int);
      Durable.close d;
      let d2, r2 = Durable.open_dir dir in
      Durable.close d2;
      (match r2.Durable.r_snapshot with
      | Some (seq, epoch, src) ->
        Alcotest.(check int) "snapshot at seq 2" 2 seq;
        Alcotest.(check int) "snapshot epoch" 2 epoch;
        Alcotest.(check string) "snapshot source" "a : c. b : c." src
      | None -> Alcotest.fail "snapshot not recovered");
      Alcotest.(check (list string))
        "tail = records after the snapshot" [ "c : c." ] (texts r2))

let corrupt_snapshot_falls_back () =
  with_dir (fun dir ->
      let d, _ = Durable.open_dir dir in
      ignore (Durable.append d ~retract:false ~epoch:1 "a : c." : int);
      Alcotest.(check bool) "older snapshot" true
        (Durable.snapshot_now d ~epoch:1 ~source:"a : c.");
      ignore (Durable.append d ~retract:false ~epoch:2 "b : c." : int);
      Alcotest.(check bool) "newer snapshot" true
        (Durable.snapshot_now d ~epoch:2 ~source:"a : c. b : c.");
      ignore (Durable.append d ~retract:false ~epoch:3 "c : c." : int);
      Durable.close d;
      (* rot a byte in the newest snapshot: recovery must fall back to
         the older one and replay a LONGER WAL suffix — no data loss *)
      let snaps =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun n -> Filename.check_suffix n ".snap")
        |> List.sort compare
      in
      Alcotest.(check int) "two snapshots retained" 2 (List.length snaps);
      let newest = Filename.concat dir (List.nth snaps 1) in
      flip_byte newest (file_size newest - 3);
      let d2, r2 = Durable.open_dir dir in
      Durable.close d2;
      (match r2.Durable.r_snapshot with
      | Some (seq, _, src) ->
        Alcotest.(check int) "older snapshot wins" 1 seq;
        Alcotest.(check string) "older source" "a : c." src
      | None -> Alcotest.fail "no snapshot recovered");
      Alcotest.(check int) "one snapshot skipped" 1
        r2.Durable.r_snapshots_skipped;
      Alcotest.(check (list string))
        "longer suffix compensates" [ "b : c."; "c : c." ] (texts r2))

let missing_snapshot_wal_alone () =
  with_dir (fun dir ->
      let d, _ = Durable.open_dir dir in
      ignore (Durable.append d ~retract:false ~epoch:1 "a : c." : int);
      Alcotest.(check bool) "snapshot" true (Durable.snapshot_now d ~epoch:1 ~source:"a : c.");
      ignore (Durable.append d ~retract:false ~epoch:2 "b : c." : int);
      Durable.close d;
      Array.iter
        (fun n ->
          if Filename.check_suffix n ".snap" then
            Unix.unlink (Filename.concat dir n))
        (Sys.readdir dir);
      let d2, r2 = Durable.open_dir dir in
      Durable.close d2;
      Alcotest.(check bool) "no snapshot" true (r2.Durable.r_snapshot = None);
      Alcotest.(check (list string))
        "the whole WAL replays" [ "a : c."; "b : c." ] (texts r2))

(* ------------------------------------------------------------------ *)
(* The Live commit hook: a batch reaches the log iff it reaches the
   model — including under injected WAL faults. *)

let base_program =
  {|
    X[reach ->> {Y}] <- X[edge ->> {Y}].
    X[reach ->> {Y}] <- X[edge ->> {Z}] , Z[reach ->> {Y}].
    X : connected <- X[reach ->> {Y}].
  |}

let attach_logged ?(jobs = 1) dir =
  let config = { Pathlog.Fixpoint.default_config with jobs } in
  let p = Program.of_string ~config base_program in
  ignore (Program.run p);
  let live = Live.attach p in
  let d, recovery = Durable.open_dir dir in
  Live.set_commit_hook live
    (Some
       (fun ~retract ~epoch ~text ->
         ignore (Durable.append d ~retract ~epoch text : int)));
  (live, d, recovery)

(* Rebuild from disk exactly as the server does: newest valid snapshot
   source (or the base program), then the WAL suffix through Live. *)
let recover_model ?(jobs = 1) dir =
  let d, r = Durable.open_dir dir in
  Durable.close d;
  let config = { Pathlog.Fixpoint.default_config with jobs } in
  let src =
    match r.Durable.r_snapshot with
    | Some (_, _, src) -> src
    | None -> base_program
  in
  let p = Program.of_string ~config src in
  ignore (Program.run p);
  let live = Live.attach p in
  List.iter
    (fun (rec_ : Durable.record) ->
      let apply = if rec_.Durable.retract then Live.retract_batch else Live.assert_batch in
      ignore (apply live rec_.Durable.text : Live.batch_stats))
    r.Durable.r_tail;
  live

let check_recovered_equals live recovered =
  Alcotest.(check (pair (list string) (list string)))
    "recovered model = surviving model" ([], [])
    (Program.diff_models ~before:(Live.program live)
       ~after:(Live.program recovered));
  Alcotest.(check (list string))
    "store invariants" []
    (Store.check_invariants (Live.store recovered));
  Alcotest.(check (list string))
    "support index" [] (Live.check_support recovered)

let injected_wal_fault_rolls_back () =
  with_dir (fun dir ->
      let live, d, _ = attach_logged dir in
      ignore (Live.assert_batch live "n1[edge ->> {n2}]." : Live.batch_stats);
      let wal_before = Durable.wal_path dir |> file_size in
      (match Fault.configure_string "seed=7;wal_append:fail@1.0" with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      (match Live.assert_batch live "n2[edge ->> {n3}]." with
      | (_ : Live.batch_stats) -> Alcotest.fail "append fault swallowed"
      | exception Fault.Injected Fault.Wal_append -> ()
      | exception e -> Alcotest.fail (Printexc.to_string e));
      Fault.disable ();
      Durable.close d;
      (* the refused batch is in neither the model nor the log *)
      Alcotest.(check bool) "model rolled back" false
        (Pathlog.holds (Live.program live) "n2[edge ->> {n3}]");
      Alcotest.(check bool) "still consistent" true
        (Pathlog.holds (Live.program live) "n1[edge ->> {n2}]");
      Alcotest.(check int)
        "nothing reached the log" wal_before
        (Durable.wal_path dir |> file_size);
      let recovered = recover_model dir in
      check_recovered_equals live recovered)

let torn_append_self_truncates () =
  with_dir (fun dir ->
      let live, d, _ = attach_logged dir in
      ignore (Live.assert_batch live "n1[edge ->> {n2}]." : Live.batch_stats);
      let wal_before = Durable.wal_path dir |> file_size in
      (* Short writes half the frame before raising: the partial frame
         must be truncated away immediately, not left for recovery *)
      (match Fault.configure_string "seed=7;wal_append:short@1.0" with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      (match Live.assert_batch live "n2[edge ->> {n3}]." with
      | (_ : Live.batch_stats) -> Alcotest.fail "append fault swallowed"
      | exception Fault.Injected Fault.Wal_append -> ()
      | exception e -> Alcotest.fail (Printexc.to_string e));
      Fault.disable ();
      Alcotest.(check int)
        "partial frame truncated" wal_before
        (Durable.wal_path dir |> file_size);
      (* and the log still accepts the batch on retry *)
      ignore (Live.assert_batch live "n2[edge ->> {n3}]." : Live.batch_stats);
      Durable.close d;
      let recovered = recover_model dir in
      check_recovered_equals live recovered)

(* ------------------------------------------------------------------ *)
(* Property: recover (snapshot + WAL) = the in-memory model, over
   random batch interleavings with snapshots cut at random points. *)

let crash_equals_memory ~jobs seed =
  with_dir (fun dir ->
      let rng = Random.State.make [| seed |] in
      let live, d, _ = attach_logged ~jobs dir in
      let mirror = ref [] in
      let obj i = Printf.sprintf "n%d" i in
      let random_fact () =
        if Random.State.int rng 4 = 0 then
          Printf.sprintf "%s : grp%d." (obj (Random.State.int rng 8))
            (Random.State.int rng 3)
        else
          Printf.sprintf "%s[edge ->> {%s}]." (obj (Random.State.int rng 8))
            (obj (Random.State.int rng 8))
      in
      for _ = 1 to 8 do
        let retract = !mirror <> [] && Random.State.bool rng in
        let k = 1 + Random.State.int rng 3 in
        (if retract then begin
           let batch = ref [] in
           for _ = 1 to k do
             match !mirror with
             | [] -> ()
             | l ->
               let i = Random.State.int rng (List.length l) in
               batch := List.nth l i :: !batch;
               mirror := List.filteri (fun j _ -> j <> i) l
           done;
           if !batch <> [] then
             ignore
               (Live.retract_batch live (String.concat " " !batch)
                 : Live.batch_stats)
         end
         else begin
           let batch = List.init k (fun _ -> random_fact ()) in
           mirror := batch @ !mirror;
           ignore
             (Live.assert_batch live (String.concat " " batch)
               : Live.batch_stats)
         end);
        (* sometimes cut a snapshot mid-history: recovery must stitch
           snapshot + suffix, not just replay from genesis *)
        if Random.State.int rng 3 = 0 then
          ignore
            (Durable.snapshot_now d
               ~epoch:(Store.epoch (Live.store live))
               ~source:(Live.dump_source live)
              : bool)
      done;
      (* crash: the process dies; only the files survive *)
      Durable.close d;
      let recovered = recover_model ~jobs dir in
      Program.diff_models ~before:(Live.program live)
        ~after:(Live.program recovered)
      = ([], [])
      && Store.check_invariants (Live.store recovered) = []
      && Live.check_support recovered = [])

let qcheck_crash jobs =
  QCheck.Test.make
    ~name:(Printf.sprintf "recover (snapshot + WAL) = memory, jobs=%d" jobs)
    ~count:25
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100_000))
    (crash_equals_memory ~jobs)

(* ------------------------------------------------------------------ *)
(* Server integration: --data persistence and the BUSY window *)

let server_program = "seed1 : kept.\n"

let with_durable_server ?(config = Server.default_config) dir f =
  let p = load server_program in
  let config = { config with Server.data_dir = Some dir } in
  let srv = Server.create ~config ~program:p (Server.Tcp ("127.0.0.1", 0)) in
  Fun.protect ~finally:(fun () -> Server.shutdown srv) (fun () -> f srv)

let with_client srv f =
  let c = Client.connect (Server.address srv) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let server_survives_restart () =
  with_dir (fun dir ->
      with_durable_server dir (fun srv ->
          Server.await_ready srv;
          with_client srv (fun c ->
              (match Client.assert_facts c "x1 : kept. x2 : kept." with
              | Ok _ -> ()
              | Error msg -> Alcotest.fail msg);
              match Client.retract_facts c "x2 : kept." with
              | Ok _ -> ()
              | Error msg -> Alcotest.fail msg));
      (* "restart": a second server over the same data directory *)
      with_durable_server dir (fun srv ->
          Server.await_ready srv;
          Alcotest.(check bool) "recovery finished" false (Server.recovering srv);
          with_client srv (fun c ->
              (match Client.query c "x1 : kept" with
              | Ok lines -> Alcotest.(check (list string)) "x1 back" [ "yes" ] lines
              | Error msg -> Alcotest.fail msg);
              (match Client.query c "x2 : kept" with
              | Ok lines ->
                Alcotest.(check (list string)) "x2 stays retracted" [ "no" ] lines
              | Error msg -> Alcotest.fail msg);
              match Client.stats c with
              | Ok lines ->
                Alcotest.(check bool) "STATS reports the WAL" true
                  (List.exists
                     (fun l ->
                       String.length l > 17
                       && String.sub l 0 17 = "wal_appends_total")
                     lines)
              | Error msg -> Alcotest.fail msg)))

let busy_while_recovering () =
  with_dir (fun dir ->
      with_durable_server dir (fun srv ->
          Server.await_ready srv;
          with_client srv (fun c ->
              match Client.assert_facts c "x1 : kept." with
              | Ok _ -> ()
              | Error msg -> Alcotest.fail msg));
      (* slow the replay down so the BUSY window is observable *)
      let config = { Server.default_config with recovery_delay_s = 0.4 } in
      with_durable_server ~config dir (fun srv ->
          Alcotest.(check bool) "still recovering" true (Server.recovering srv);
          with_client srv (fun c ->
              (* raw request: the shed is immediate and explicit *)
              (match Client.request c "QUERY x1 : kept" with
              | Ok (Pathlog.Protocol.Busy (retry_ms, _)) ->
                Alcotest.(check bool) "retry-after hint" true (retry_ms > 0)
              | Ok r ->
                Alcotest.fail
                  ("expected BUSY, got " ^ Pathlog.Protocol.render_reply r)
              | Error _ -> Alcotest.fail "transport error");
              (* PING stays answered during replay *)
              Alcotest.(check bool) "ping during replay" true (Client.ping c);
              (* the retrying client rides the backoff past the window *)
              match Client.request_with_retry ~max_attempts:25 c "QUERY x1 : kept" with
              | Ok (Pathlog.Protocol.Ok lines) ->
                Alcotest.(check (list string)) "answered after replay" [ "yes" ] lines
              | Ok r ->
                Alcotest.fail
                  ("expected OK, got " ^ Pathlog.Protocol.render_reply r)
              | Error _ -> Alcotest.fail "transport error")))

(* ------------------------------------------------------------------ *)

let case name f = Alcotest.test_case name `Quick f

let suite =
  [
    case "fresh directory roundtrip" fresh_dir_roundtrip;
    case "torn tail truncated on open" torn_tail_truncated;
    case "bit flip is CRC-detected, never loaded" bit_flip_detected;
    case "junk WAL file starts fresh" junk_wal_starts_fresh;
    case "snapshot filters the replay tail" snapshot_filters_tail;
    case "corrupt snapshot falls back to older + longer suffix"
      corrupt_snapshot_falls_back;
    case "missing snapshots: WAL alone recovers" missing_snapshot_wal_alone;
    case "injected append fault rolls the batch back"
      injected_wal_fault_rolls_back;
    case "torn append self-truncates and retries" torn_append_self_truncates;
    case "regression: interleaving seed 29211 recovers" (fun () ->
        (* duplicate assert + mid-history snapshot: the snapshot must dump
           the fact once per extensional multiplicity or replaying the
           later retract over-deletes (fixed in Live.dump_source) *)
        Alcotest.(check bool) "recover = memory" true
          (crash_equals_memory ~jobs:1 29211));
    qtest (qcheck_crash 1);
    qtest (qcheck_crash 4);
    case "server: acknowledged batches survive restart" server_survives_restart;
    case "server: BUSY with retry-after while replaying" busy_while_recovering;
  ]
