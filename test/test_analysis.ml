(* The unified static-analysis subsystem: one golden program per
   diagnostic code, the JSON renderer, and two properties — [Check.analyze]
   is total on random programs, and dead-rule pruning never changes
   embedded-query answers. *)

module Check = Pathlog.Check
module Diagnostic = Pathlog.Diagnostic
module Program = Pathlog.Program

let contains = Helpers.contains

let codes (t : Check.t) =
  List.map (fun (d : Diagnostic.t) -> d.code) t.diagnostics

let start_line (sp : Pathlog.Token.span) = sp.s_start.line

let find code (t : Check.t) =
  match
    List.find_opt (fun (d : Diagnostic.t) -> d.code = code) t.diagnostics
  with
  | Some d -> d
  | None ->
    Alcotest.failf "expected %s, got [%s]" code (String.concat "; " (codes t))

let check_code ?(clean_rest = true) ~code ~severity ~line text =
  let t = Check.analyze text in
  let d = find code t in
  Alcotest.(check string)
    (code ^ " severity") severity
    (Diagnostic.severity_to_string d.severity);
  (match d.span with
  | None -> Alcotest.failf "%s carries no span" code
  | Some sp ->
    Alcotest.(check int) (code ^ " line") line (start_line sp));
  if clean_rest then
    List.iter
      (fun c ->
        if c <> code then
          Alcotest.failf "unexpected extra diagnostic %s for %s" c code)
      (codes t)

(* PL001 — parse error *)
let test_parse_error () =
  check_code ~code:"PL001" ~severity:"error" ~line:1 "x[m ->"

(* PL010–PL017 — the eight well-formedness conditions, in variant order *)
let test_wellformed_codes () =
  List.iter
    (fun (code, text) ->
      check_code ~code ~severity:"error" ~line:1 text)
    [
      ("PL010", "x[a -> _].");
      ("PL011", "x : c <- not y[a -> _].");
      ("PL012", "x[m -> y..kids].");
      ("PL013", "x[m ->> y].");
      ("PL014", "x[m => c] <- x : d.");
      ("PL015", "x..kids.");
      ("PL016", "x[a -> Y] <- x : c.");
      ("PL017", "x : c <- x : d, not y[a -> Z].");
    ]

(* PL018 — non-ground signature declaration *)
let test_bad_signature () =
  check_code ~code:"PL018" ~severity:"error" ~line:1 "X[age => integer]."

(* PL020 — unstratifiable negation *)
let test_unstratifiable () =
  let t = Check.analyze "x[m ->> {y}] <- not x[m ->> {y}]." in
  let d = find "PL020" t in
  Alcotest.(check string)
    "severity" "error"
    (Diagnostic.severity_to_string d.severity);
  Alcotest.(check bool)
    "mentions completion" true
    (contains ~sub:"completion" d.message)

(* PL021 — signature type lint *)
let test_type_lint () =
  let t =
    Check.analyze
      "employee[boss => employee].\nd1 : dept.\n\
       e1 : employee[managedBy -> d1].\n\
       X[boss -> Y] <- X : employee, Y : dept, X[managedBy -> Y]."
  in
  let d = find "PL021" t in
  Alcotest.(check string)
    "severity" "warning"
    (Diagnostic.severity_to_string d.severity)

(* PL030 — skolem-creation cycle *)
let test_skolem_cycle () =
  check_code ~code:"PL030" ~severity:"warning" ~line:2
    "x : nat.\nX.succ : nat <- X : nat."

(* ... also through an intermediate rule *)
let test_skolem_cycle_indirect () =
  let t =
    Check.analyze "x : odd.\nX.succ : even <- X : odd.\nY : odd <- Y : even."
  in
  ignore (find "PL030" t)

(* ... but not for the paper's generic closure rules or constructors:
   virtual objects at method/class/result positions are not enumerated *)
let test_skolem_no_false_positives () =
  List.iter
    (fun text ->
      let t = Check.analyze text in
      List.iter
        (fun c ->
          if c = "PL030" then
            Alcotest.failf "spurious PL030 for %S" text)
        (codes t))
    [
      (* generic transitive closure: skolem in method position *)
      "peter[kids ->> {tim}].\nX[(M.tc) ->> {Y}] <- X[M ->> {Y}].\n\
       X[(M.tc) ->> {Y}] <- X..(M.tc)[M ->> {Y}].";
      (* list type constructor: skolem in class position *)
      "integer : type.\nnil : (C.list) <- C : type.\n\
       L : (C.list) <- L[hd -> H], H : C.";
      (* skolem receiver whose relations nothing reads back *)
      "alice : person.\nX.address : address <- X : person.";
    ]

(* PL030 hint — skolems at variable method positions *)
let test_skolem_hint () =
  let t = Check.analyze "a[m -> b].\nX.(M.k) : c <- X[M -> Y]." in
  let d = find "PL030" t in
  Alcotest.(check string)
    "severity" "hint"
    (Diagnostic.severity_to_string d.severity)

(* PL031 — rule that can never fire *)
let test_never_fires () =
  check_code ~clean_rest:false ~code:"PL031" ~severity:"warning" ~line:1
    "x : c <- x[m -> y]."

(* PL032 — unreachable from the embedded queries *)
let test_unreachable () =
  let t =
    Check.analyze
      "a[m -> b].\na[k -> c].\nX[p -> Y] <- X[k -> Y].\n?- a[m -> Z]."
  in
  let d = find "PL032" t in
  Alcotest.(check string)
    "severity" "hint"
    (Diagnostic.severity_to_string d.severity);
  (match d.span with
  | Some sp -> Alcotest.(check int) "on the dead rule" 3 (start_line sp)
  | None -> Alcotest.fail "PL032 carries no span")

(* PL040 — definite conflict between ground facts *)
let test_definite_conflict () =
  check_code ~code:"PL040" ~severity:"error" ~line:2 "x[m -> a].\nx[m -> b]."

(* PL041 — potential conflict through rules *)
let test_potential_conflict () =
  let t =
    Check.analyze
      "X[m -> a] <- X : c.\nX[m -> b] <- X : d.\nx : c.\ny : d."
  in
  let d = find "PL041" t in
  Alcotest.(check string)
    "severity" "warning"
    (Diagnostic.severity_to_string d.severity)

(* ... molecule facts on distinct receivers are not conflicts *)
let test_no_conflict_distinct_receivers () =
  let t =
    Check.analyze "e1 : employee[age -> 30].\ne2 : employee[age -> 45]."
  in
  Alcotest.(check (list string)) "clean" [] (codes t)

let test_clean_program_ok () =
  let t =
    Check.analyze
      "peter[kids ->> {tim, mary}].\nX[desc ->> {Y}] <- X[kids ->> {Y}].\n\
       ?- peter[desc ->> {X}]."
  in
  Alcotest.(check bool) "ok" true (Check.ok t);
  Alcotest.(check (list string)) "no diagnostics" [] (codes t);
  Alcotest.(check int) "rules" 2 t.n_rules;
  Alcotest.(check int) "queries" 1 t.n_queries;
  Alcotest.(check bool) "worst is none" true (Check.worst t = None)

let test_multiple_diagnostics_sorted () =
  (* one error (conflict), one warning (never fires) — sorted by line *)
  let t =
    Check.analyze "p : q <- p[zz -> w].\nx[m -> a].\nx[m -> b]."
  in
  Alcotest.(check (list string)) "both, in source order"
    [ "PL031"; "PL040" ] (codes t);
  Alcotest.(check bool) "not ok" false (Check.ok t);
  Alcotest.(check bool) "worst is error" true
    (Check.worst t = Some Diagnostic.Error)

let test_json_rendering () =
  let t = Check.analyze "x[m -> a].\nx[m -> b]." in
  let json = Check.to_json t in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("json has " ^ sub) true (contains ~sub json))
    [
      Printf.sprintf {|"schema_version":%d|} Check.schema_version;
      {|"ok":false|};
      {|"rules":2|};
      {|"code":"PL040"|};
      {|"severity":"error"|};
      {|"span":{"start":{"line":2,"col":1,"offset":11},"end":{"line":2,"col":10,"offset":20}}|};
      {|"context":"x[m -> b]."|};
    ]

let test_json_escaping () =
  let t = Check.analyze "x[m -> \"a\\\"b\"].\nx[m -> \"c\"]." in
  let json = Check.to_json t in
  (* the embedded quote must be escaped, keeping the document well formed *)
  Alcotest.(check bool) "escaped quote" true (contains ~sub:{|\"|} json)

let test_gate () =
  (match Check.gate "x[m -> a].\nx[m -> b]." with
  | Ok _ -> Alcotest.fail "gate let a conflicting program through"
  | Error msg ->
    Alcotest.(check bool) "message names code" true
      (contains ~sub:"PL040" msg));
  (match Check.gate "x : nat.\nX.succ : nat <- X : nat." with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "default gate rejects warnings");
  match
    Check.gate ~deny:Diagnostic.Warning "x : nat.\nX.succ : nat <- X : nat."
  with
  | Ok _ -> Alcotest.fail "deny=warning let PL030 through"
  | Error _ -> ()

(* PL050 — provably unbounded creation reachable from a query *)
let test_unbounded_creation () =
  let t =
    Check.analyze "p0 : pair.\nX.left : pair <- X : pair.\n?- X : pair."
  in
  let d = find "PL050" t in
  Alcotest.(check string)
    "PL050 severity" "error"
    (Diagnostic.severity_to_string d.severity);
  (match d.span with
  | Some sp -> Alcotest.(check int) "PL050 line" 2 (start_line sp)
  | None -> Alcotest.fail "PL050 carries no span");
  (* the same cycle without a query is PL030 territory only: nothing
     demands the unbounded relation *)
  let t' = Check.analyze "p0 : pair.\nX.left : pair <- X : pair." in
  Alcotest.(check bool)
    "no PL050 without a query" false
    (List.mem "PL050" (codes t'))

(* PL051 — predicted fixpoint size exceeds the threshold *)
let test_fixpoint_blowup () =
  let text =
    "n1 : node. n2 : node. n3 : node.\n\
     n1[e ->> {n2}]. n2[e ->> {n3}].\n\
     X[t ->> {Y}] <- X[e ->> {Y}].\n\
     X[e ->> {Y}] <- X[t ->> {Y}]."
  in
  let t = Check.analyze ~card_threshold:10 text in
  let d = find "PL051" t in
  Alcotest.(check string)
    "PL051 severity" "warning"
    (Diagnostic.severity_to_string d.severity);
  Alcotest.(check bool)
    "message names the threshold" true
    (contains ~sub:"threshold (10)" d.message);
  (match d.span with
  | None -> Alcotest.fail "PL051 carries no span"
  | Some _ -> ());
  (* at the default threshold this tiny program is quiet *)
  Alcotest.(check bool)
    "quiet at the default threshold" false
    (List.mem "PL051" (codes (Check.analyze text)))

(* PL052 — cross-product join *)
let test_cross_product () =
  let t =
    Check.analyze
      "a1 : a.\nb1 : b.\nX[p ->> {Y}] <- X : a, Y : b.\n?- X[p ->> {Z}]."
  in
  let d = find "PL052" t in
  Alcotest.(check string)
    "PL052 severity" "hint"
    (Diagnostic.severity_to_string d.severity);
  (match d.span with
  | Some sp -> Alcotest.(check int) "PL052 line" 3 (start_line sp)
  | None -> Alcotest.fail "PL052 carries no span");
  (* a shared variable connects the body: no cross product *)
  let t' =
    Check.analyze
      "n1[e -> n2].\nn2[e -> n3].\nX[p -> Y] <- X[e -> Z], Z[e -> Y]."
  in
  Alcotest.(check bool)
    "connected body is quiet" false
    (List.mem "PL052" (codes t'))

let test_severity_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Diagnostic.severity_to_string s ^ " roundtrips")
        true
        (Diagnostic.severity_of_string (Diagnostic.severity_to_string s)
        = Some s))
    [ Diagnostic.Hint; Diagnostic.Warning; Diagnostic.Error ]

(* --- properties ------------------------------------------------------ *)

let randprog seed =
  Pathlog.Randprog.generate { Pathlog.Randprog.default with seed }

(* analyze is total: any random program yields a report, never an
   exception *)
let analyze_total =
  QCheck.Test.make ~name:"check is total on random programs" ~count:100
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let text = randprog seed ^ "\n?- X[r ->> {Y}]." in
      let t = Check.analyze text in
      List.length t.diagnostics >= 0)

(* dead-rule pruning preserves embedded-query answers *)
let pruning_preserves_answers =
  QCheck.Test.make ~name:"run_live answers = run answers" ~count:60
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let text = randprog seed ^ "\n?- X[r ->> {Y}].\n?- X : ca." in
      (* rows rendered through each program's own universe: the stores may
         intern objects in different orders *)
      let answers p =
        List.map
          (fun (_, (a : Program.answer)) ->
            List.sort_uniq compare
              (List.map (Program.row_to_string p) a.rows))
          (Program.run_queries p)
      in
      match
        let p1 = Program.of_string text in
        ignore (Program.run p1);
        let p2 = Program.of_string text in
        ignore (Program.run_live p2);
        (answers p1, answers p2)
      with
      | a1, a2 -> a1 = a2
      | exception _ -> QCheck.assume_fail () (* e.g. scalar conflict *))

(* the abstract interpreter's cardinality bounds, evaluated at the final
   universe size, over-approximate the actual number of fixpoint
   insertions — under both sequential and parallel evaluation *)
let absint_sound jobs =
  let sat_add a b = if a > max_int - b then max_int else a + b in
  QCheck.Test.make
    ~name:
      (Printf.sprintf "absint bounds fixpoint size (jobs=%d)" jobs)
    ~count:40
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let text = randprog seed in
      match
        let config = { Pathlog.Fixpoint.default_config with jobs } in
        let p = Program.of_string ~config text in
        (* analyse the un-run program — what check/serve see *)
        let t =
          Pathlog.Absint.analyze (Program.store p) (Program.rules p)
        in
        let stats = Program.run p in
        let n =
          max 1 (Pathlog.Universe.cardinality (Program.universe p))
        in
        let bound =
          List.fold_left
            (fun acc (_, c) ->
              sat_add acc (Pathlog.Absint.eval_card ~n c))
            0
            (Pathlog.Absint.rel_cards t)
        in
        (bound, stats.Pathlog.Fixpoint.insertions)
      with
      | bound, actual -> bound >= actual
      | exception _ -> QCheck.assume_fail () (* e.g. scalar conflict *))

(* estimates-driven planning changes join orders only, never answers *)
let estimates_preserve_answers =
  QCheck.Test.make ~name:"estimate-planned answers = heuristic answers"
    ~count:40
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let text = randprog seed ^ "\n?- X[r ->> {Y}].\n?- X : ca." in
      let answers ~estimates =
        let p = Program.of_string text in
        if estimates then begin
          let st = Program.store p in
          let t = Pathlog.Absint.analyze st (Program.rules p) in
          Program.set_estimates p (Some (Pathlog.Absint.estimator t st))
        end;
        ignore (Program.run p);
        List.map
          (fun (_, (a : Program.answer)) ->
            List.sort_uniq compare
              (List.map (Program.row_to_string p) a.rows))
          (Program.run_queries p)
      in
      match (answers ~estimates:false, answers ~estimates:true) with
      | a1, a2 -> a1 = a2
      | exception _ -> QCheck.assume_fail ())

let suite =
  [
    Alcotest.test_case "PL001 parse error" `Quick test_parse_error;
    Alcotest.test_case "PL010-PL017 wellformed" `Quick test_wellformed_codes;
    Alcotest.test_case "PL018 bad signature" `Quick test_bad_signature;
    Alcotest.test_case "PL020 unstratifiable" `Quick test_unstratifiable;
    Alcotest.test_case "PL021 type lint" `Quick test_type_lint;
    Alcotest.test_case "PL030 skolem cycle" `Quick test_skolem_cycle;
    Alcotest.test_case "PL030 indirect cycle" `Quick
      test_skolem_cycle_indirect;
    Alcotest.test_case "PL030 no false positives" `Quick
      test_skolem_no_false_positives;
    Alcotest.test_case "PL030 hilog hint" `Quick test_skolem_hint;
    Alcotest.test_case "PL031 never fires" `Quick test_never_fires;
    Alcotest.test_case "PL032 unreachable" `Quick test_unreachable;
    Alcotest.test_case "PL040 definite conflict" `Quick
      test_definite_conflict;
    Alcotest.test_case "PL041 potential conflict" `Quick
      test_potential_conflict;
    Alcotest.test_case "distinct receivers clean" `Quick
      test_no_conflict_distinct_receivers;
    Alcotest.test_case "clean program" `Quick test_clean_program_ok;
    Alcotest.test_case "sorted diagnostics" `Quick
      test_multiple_diagnostics_sorted;
    Alcotest.test_case "PL050 unbounded creation" `Quick
      test_unbounded_creation;
    Alcotest.test_case "PL051 fixpoint blowup" `Quick test_fixpoint_blowup;
    Alcotest.test_case "PL052 cross product" `Quick test_cross_product;
    Alcotest.test_case "json rendering" `Quick test_json_rendering;
    Alcotest.test_case "json escaping" `Quick test_json_escaping;
    Alcotest.test_case "gate" `Quick test_gate;
    Alcotest.test_case "severity roundtrip" `Quick test_severity_roundtrip;
    QCheck_alcotest.to_alcotest analyze_total;
    QCheck_alcotest.to_alcotest pruning_preserves_answers;
    QCheck_alcotest.to_alcotest (absint_sound 1);
    QCheck_alcotest.to_alcotest (absint_sound 4);
    QCheck_alcotest.to_alcotest estimates_preserve_answers;
  ]
