let () =
  Alcotest.run "pathlog"
    [
      ("oodb", Test_oodb.suite);
      ("syntax", Test_syntax.suite);
      ("semantics", Test_semantics.suite);
      ("engine", Test_engine.suite);
      ("baseline", Test_baseline.suite);
      ("paper", Test_paper.suite);
      ("extensions", Test_extensions.suite);
      ("provenance", Test_provenance.suite);
      ("focused", Test_focused.suite);
      ("topdown", Test_topdown.suite);
      ("more", Test_more.suite);
      ("programs", Test_programs.suite);
      ("cli", Test_cli.suite);
      ("analysis", Test_analysis.suite);
      ("internals", Test_internals.suite);
      ("differential", Test_differential.suite);
      ("normalize", Test_normalize.suite);
      ("coverage", Test_coverage.suite);
      ("planner", Test_planner.suite);
      ("server", Test_server.suite);
      ("parallel", Test_parallel.suite);
      ("budget", Test_budget.suite);
      ("chaos", Test_chaos.suite);
      ("incremental", Test_incremental.suite);
      ("durable", Test_durable.suite);
      ("demand", Test_demand.suite);
      ("regex", Test_regex.suite);
    ]
