(* Incremental view maintenance: counting for non-recursive strata, DRed
   over-delete/re-derive for recursive ones, honest recompute behind
   negation — always bit-for-bit equal to a from-scratch fixpoint on the
   final extensional state. *)

module Program = Pathlog.Program
module Fixpoint = Pathlog.Fixpoint
module Store = Pathlog.Store
module Live = Pathlog.Live

let attach ?(jobs = 1) text =
  let config = { Fixpoint.default_config with jobs } in
  Live.attach (Program.of_string ~config text)

let holds live q = Pathlog.holds (Live.program live) q

(* The live model must equal the model of a fresh program loaded from the
   live source (current extensional facts + current rules). *)
let check_equiv ?(jobs = 1) live =
  let config = { Fixpoint.default_config with jobs } in
  let reference = Program.of_string ~config (Live.dump_source live) in
  ignore (Program.run reference);
  let added, removed =
    Program.diff_models ~before:reference ~after:(Live.program live)
  in
  Alcotest.(check (pair (list string) (list string)))
    "live model = from-scratch model" ([], []) (added, removed)

let check_clean live =
  Alcotest.(check (list string))
    "store invariants" []
    (Store.check_invariants (Live.store live));
  Alcotest.(check (list string)) "support index" [] (Live.check_support live)

(* ------------------------------------------------------------------ *)
(* Counting: non-recursive strata *)

(* diamond: a reaches c both directly and through b, so retracting the
   b-c edge over-deletes a's closure and the re-derive pass must restore
   what the direct edge still supports *)
let tc_text =
  {|
    a[edge ->> {b}]. b[edge ->> {c}]. c[edge ->> {d}]. a[edge ->> {c}].
    X[tc ->> {Y}] <- X[edge ->> {Y}].
    X[tc ->> {Y}] <- X[edge ->> {Z}] , Z[tc ->> {Y}].
  |}

let counting_assert () =
  let live = attach {|
    x[p -> v]. y[p -> v].
    X[m -> Y] <- X[p -> Y].
  |} in
  Alcotest.(check bool) "derived" true (holds live "x[m -> v]");
  let st = Live.assert_batch live "z[p -> v]. x[q -> w]." in
  Alcotest.(check string) "strategy" "counting"
    (Live.strategy_name st.Live.strategy);
  Alcotest.(check bool) "new derivation" true (holds live "z[m -> v]");
  check_equiv live;
  check_clean live

let counting_retract_multi_support () =
  (* a fact derived by two rules survives losing one support *)
  let live = attach {|
    x[p -> v]. x[q -> v].
    X[m -> Y] <- X[p -> Y].
    X[m -> Y] <- X[q -> Y].
  |} in
  let st = Live.retract_batch live "x[p -> v]." in
  Alcotest.(check string) "strategy" "counting"
    (Live.strategy_name st.Live.strategy);
  Alcotest.(check bool) "still derived via q" true (holds live "x[m -> v]");
  Alcotest.(check bool) "p gone" false (holds live "x[p -> v]");
  let _ = Live.retract_batch live "x[q -> v]." in
  Alcotest.(check bool) "now gone" false (holds live "x[m -> v]");
  check_equiv live;
  check_clean live

let revalidation_alternative_chain () =
  (* the recorded derivation rests on one isa chain; retracting it must
     re-validate against the alternative chain, not delete the head *)
  let live = attach {|
    mid1 :: top. mid2 :: top.
    o : mid1. o : mid2.
    X[t -> yes] <- X : top.
  |} in
  Alcotest.(check bool) "derived" true (holds live "o[t -> yes]");
  let st = Live.retract_batch live "o : mid1." in
  Alcotest.(check string) "strategy" "counting"
    (Live.strategy_name st.Live.strategy);
  Alcotest.(check bool) "survives via mid2" true (holds live "o[t -> yes]");
  let _ = Live.retract_batch live "o : mid2." in
  Alcotest.(check bool) "gone" false (holds live "o[t -> yes]");
  check_equiv live;
  check_clean live

(* ------------------------------------------------------------------ *)
(* DRed: recursive strata *)

let dred_retract_support () =
  let live = attach tc_text in
  Alcotest.(check bool) "closure" true (holds live "a[tc ->> {d}]");
  (* retract a support of the recursively derived a-tc-d *)
  let st = Live.retract_batch live "b[edge ->> {c}]." in
  Alcotest.(check string) "strategy" "dred"
    (Live.strategy_name st.Live.strategy);
  Alcotest.(check bool) "b no longer reaches d" false
    (holds live "b[tc ->> {d}]");
  Alcotest.(check bool) "a re-derived via the direct edge" true
    (holds live "a[tc ->> {c}]");
  Alcotest.(check bool) "a still reaches d" true (holds live "a[tc ->> {d}]");
  Alcotest.(check bool) "c still reaches d" true (holds live "c[tc ->> {d}]");
  check_equiv live;
  check_clean live;
  (* re-assert: the delta rounds rebuild the closure *)
  let st = Live.assert_batch live "b[edge ->> {c}]." in
  Alcotest.(check string) "assert strategy" "counting"
    (Live.strategy_name st.Live.strategy);
  Alcotest.(check bool) "closure restored" true (holds live "b[tc ->> {d}]");
  check_equiv live;
  check_clean live

let dred_cycle () =
  (* a cycle sustains itself through counting; DRed must still delete it *)
  let live =
    attach
      {|
        a[edge ->> {b}]. b[edge ->> {a}]. x[edge ->> {a}].
        X[tc ->> {Y}] <- X[edge ->> {Y}].
        X[tc ->> {Y}] <- X[edge ->> {Z}] , Z[tc ->> {Y}].
      |}
  in
  Alcotest.(check bool) "a reaches a through the cycle" true
    (holds live "a[tc ->> {a}]");
  let st = Live.retract_batch live "b[edge ->> {a}]." in
  Alcotest.(check string) "strategy" "dred"
    (Live.strategy_name st.Live.strategy);
  Alcotest.(check bool) "cycle broken" false (holds live "a[tc ->> {a}]");
  Alcotest.(check bool) "a still reaches b" true (holds live "a[tc ->> {b}]");
  Alcotest.(check bool) "x still reaches b" true (holds live "x[tc ->> {b}]");
  check_equiv live;
  check_clean live

(* ------------------------------------------------------------------ *)
(* Fallbacks and atomicity *)

let negation_gate () =
  let live =
    attach
      {|
        a[passed ->> {c1}].
        X : ready <- X[passed ->> {c1}] , not X[passed ->> {c2}].
      |}
  in
  Alcotest.(check bool) "a ready" true (holds live "a : ready");
  (* asserting into a negated relation must recompute, and the derived
     fact must disappear — additions delete through negation *)
  let st = Live.assert_batch live "a[passed ->> {c2}]." in
  Alcotest.(check string) "strategy" "recompute"
    (Live.strategy_name st.Live.strategy);
  Alcotest.(check bool) "no longer ready" false (holds live "a : ready");
  let st = Live.retract_batch live "a[passed ->> {c2}]." in
  Alcotest.(check string) "retract strategy" "recompute"
    (Live.strategy_name st.Live.strategy);
  Alcotest.(check bool) "ready again" true (holds live "a : ready");
  check_equiv live;
  check_clean live

let rule_assert_and_retract () =
  let live = attach "a[edge ->> {b}]. b[edge ->> {c}]." in
  let st = Live.assert_batch live "X[r ->> {Y}] <- X[edge ->> {Y}]." in
  Alcotest.(check string) "rule assert strategy" "recompute"
    (Live.strategy_name st.Live.strategy);
  Alcotest.(check bool) "rule fired" true (holds live "a[r ->> {b}]");
  let _ = Live.retract_batch live "X[r ->> {Y}] <- X[edge ->> {Y}]." in
  Alcotest.(check bool) "derivations gone" false (holds live "a[r ->> {b}]");
  Alcotest.(check bool) "edb untouched" true (holds live "a[edge ->> {b}]");
  check_equiv live;
  check_clean live

let reject_atomic () =
  let live = attach "x[age -> 30]." in
  let before = Live.dump_source live in
  (* scalar conflict: the whole batch must be rolled back, including the
     harmless first statement *)
  (try
     ignore (Live.assert_batch live "y[age -> 1]. x[age -> 31]." : Live.batch_stats);
     Alcotest.fail "conflicting batch accepted"
   with Live.Rejected _ -> ());
  Alcotest.(check bool) "y insert rolled back" false (holds live "y[age -> 1]");
  Alcotest.(check string) "source unchanged" before (Live.dump_source live);
  check_equiv live;
  check_clean live;
  (* retracting a derived-only or absent fact is refused *)
  (try
     ignore (Live.retract_batch live "x[age -> 99]." : Live.batch_stats);
     Alcotest.fail "absent retraction accepted"
   with Live.Rejected _ -> ());
  Alcotest.(check bool) "still there" true (holds live "x[age -> 30]")

let unstratifiable_rule_rejected () =
  let live = attach "a[p ->> {b}]." in
  (try
     ignore
       (Live.assert_batch live
          "X[p ->> {Y}] <- Y[q ->> {X}] , not X[p ->> {Y}]."
         : Live.batch_stats);
     Alcotest.fail "unstratifiable rule accepted"
   with Live.Rejected _ -> ());
  check_equiv live;
  check_clean live

(* ------------------------------------------------------------------ *)
(* Property: random assert/retract interleavings = from-scratch *)

let base_program =
  {|
    X[reach ->> {Y}] <- X[edge ->> {Y}].
    X[reach ->> {Y}] <- X[edge ->> {Z}] , Z[reach ->> {Y}].
    X : connected <- X[reach ->> {Y}].
    X[deg -> one] <- X : connected.
  |}

let interleaving_equals_scratch ~jobs seed =
  let rng = Random.State.make [| seed |] in
  let live = attach ~jobs base_program in
  (* mirror of the extensional state, for picking valid retractions *)
  let mirror = ref [] in
  let obj i = Printf.sprintf "n%d" i in
  let random_fact () =
    if Random.State.int rng 4 = 0 then
      Printf.sprintf "%s : grp%d." (obj (Random.State.int rng 8))
        (Random.State.int rng 3)
    else
      Printf.sprintf "%s[edge ->> {%s}]." (obj (Random.State.int rng 8))
        (obj (Random.State.int rng 8))
  in
  let steps = 8 in
  for _ = 1 to steps do
    let retract = !mirror <> [] && Random.State.bool rng in
    let k = 1 + Random.State.int rng 3 in
    if retract then begin
      let batch = ref [] in
      for _ = 1 to k do
        match !mirror with
        | [] -> ()
        | l ->
          let i = Random.State.int rng (List.length l) in
          let f = List.nth l i in
          batch := f :: !batch;
          mirror := List.filteri (fun j _ -> j <> i) l
      done;
      if !batch <> [] then
        ignore
          (Live.retract_batch live (String.concat " " !batch)
            : Live.batch_stats)
    end
    else begin
      let batch = List.init k (fun _ -> random_fact ()) in
      mirror := batch @ !mirror;
      ignore (Live.assert_batch live (String.concat " " batch) : Live.batch_stats)
    end
  done;
  (* final state: live model must equal a from-scratch fixpoint on the
     final extensional facts, and all invariants must hold *)
  let config = { Fixpoint.default_config with jobs } in
  let reference = Program.of_string ~config (Live.dump_source live) in
  ignore (Program.run reference);
  Program.diff_models ~before:reference ~after:(Live.program live) = ([], [])
  && Store.check_invariants (Live.store live) = []
  && Live.check_support live = []

let qcheck_interleaving jobs =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "random assert/retract = from-scratch, jobs=%d" jobs)
    ~count:40
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100_000))
    (interleaving_equals_scratch ~jobs)

(* ------------------------------------------------------------------ *)

let case name f = Alcotest.test_case name `Quick f

let suite =
  [
    case "counting: assert delta" counting_assert;
    case "counting: retract with multiple supports"
      counting_retract_multi_support;
    case "counting: re-validation over alternative isa chain"
      revalidation_alternative_chain;
    case "dred: retract support of recursive derivation" dred_retract_support;
    case "dred: cyclic support deleted" dred_cycle;
    case "negation gate falls back to recompute" negation_gate;
    case "rule assert and retract" rule_assert_and_retract;
    case "rejected batches are atomic" reject_atomic;
    case "unstratifiable rule rejected" unstratifiable_rule_rejected;
    QCheck_alcotest.to_alcotest (qcheck_interleaving 1);
    QCheck_alcotest.to_alcotest (qcheck_interleaving 4);
  ]
