(* Demand-driven evaluation: magic-sets transform, query-seeded fixpoints,
   fallback golden cases, and the demand-equals-full equivalence QCheck at
   jobs 1 and 4. *)

module Program = Pathlog.Program
module Demand = Pathlog.Demand

let lits = Pathlog.Parser.literals

let render p rows =
  List.sort compare (List.map (Program.row_to_string p) rows)

(* Answers of a demand-driven query vs full materialisation, on fresh
   program instances (object ids are store-specific). Returns the demand
   report for further assertions. *)
let check_demand_equals_full ?(config = Pathlog.Fixpoint.default_config)
    text q =
  let pd = Program.of_string ~config text in
  let demand_ans, report = Program.query_demand pd (lits q) in
  let pf = Program.of_string ~config text in
  ignore (Program.run pf);
  let full_ans = Program.query_string pf q in
  Alcotest.(check (list string))
    ("demand agrees with full: " ^ q)
    (render pf full_ans.rows) (render pd demand_ans.rows);
  (pd, report)

(* Disjoint transitive-closure chains over a scalar [boss] edge; a
   receiver-bound query on one chain must not materialise the others. *)
let chains prefixes n =
  let b = Buffer.create 1024 in
  List.iter
    (fun prefix ->
      for i = 0 to n - 1 do
        Buffer.add_string b
          (Printf.sprintf "%s%d[boss -> %s%d].\n" prefix i prefix (i + 1))
      done)
    prefixes;
  Buffer.add_string b "X[up ->> {Y}] <- X[boss -> Y].\n";
  Buffer.add_string b "X[up ->> {Y}] <- X[boss -> Z], Z[up ->> {Y}].\n";
  Buffer.contents b

let two_chains n = chains [ "a"; "b" ] n

let test_bound_tc () =
  let text = chains [ "a"; "b"; "c"; "d" ] 30 in
  let p, report = check_demand_equals_full text "a0[up ->> {X}]" in
  Alcotest.(check bool) "no fallback" true (report.Program.d_fallback = None);
  Alcotest.(check bool) "guarded the up rules" true
    (report.Program.d_guarded = 2);
  Alcotest.(check bool) "seeded from the constant" true
    (report.Program.d_seeds >= 1);
  Alcotest.(check bool) "magic facts present" true
    (report.Program.d_magic_facts > 0);
  (* the other chain's closure was never derived *)
  Alcotest.(check int) "b-chain closure not materialised" 0
    (List.length (Program.query_string p "b0[up ->> {X}]").rows);
  (* demand derived far fewer tuples than the full closure: one chain's
     closure plus its magic set, against four chains' closures *)
  let full = Program.of_string (chains [ "a"; "b"; "c"; "d" ] 30) in
  let full_stats = Program.run full in
  Alcotest.(check bool) "derived fewer tuples than full" true
    (report.Program.d_stats.Pathlog.Fixpoint.insertions
    < full_stats.Pathlog.Fixpoint.insertions / 2)

let test_demand_chained_query () =
  (* the second literal's receiver is bound sideways by the first *)
  let text = two_chains 10 in
  let _, report =
    check_demand_equals_full text "a0[boss -> X], X[up ->> {Y}]"
  in
  Alcotest.(check bool) "no fallback" true (report.Program.d_fallback = None)

let test_free_query_falls_back_to_full_rules () =
  (* a free-receiver query demands everything: answers still agree *)
  let text = two_chains 5 in
  let _, report = check_demand_equals_full text "X[up ->> {Y}]" in
  Alcotest.(check bool) "no fallback" true (report.Program.d_fallback = None);
  Alcotest.(check int) "nothing guarded" 0 report.Program.d_guarded;
  Alcotest.(check int) "rules kept unguarded" 2 report.Program.d_unguarded

let test_demand_composes () =
  (* two demand queries against the same program instance: the second
     fragment accumulates monotonically over the first *)
  let p = Program.of_string (two_chains 10) in
  let a1, r1 = Program.query_demand_string p "a3[up ->> {X}]" in
  let a2, r2 = Program.query_demand_string p "b3[up ->> {X}]" in
  Alcotest.(check (pair bool bool))
    "no fallback" (true, true)
    (r1.Program.d_fallback = None, r2.Program.d_fallback = None);
  let full = Program.of_string (two_chains 10) in
  ignore (Program.run full);
  Alcotest.(check (list string))
    "first query right" (render full (Program.query_string full "a3[up ->> {X}]").rows)
    (render p a1.rows);
  Alcotest.(check (list string))
    "second query right" (render full (Program.query_string full "b3[up ->> {X}]").rows)
    (render p a2.rows);
  Alcotest.(check bool) "magic sets grew" true
    (r2.Program.d_magic_facts > r1.Program.d_magic_facts)

let test_isa_query () =
  (* class membership is conservatively free-adorned *)
  let text =
    {|
    a0[boss -> a1]. a1[boss -> a2].
    X : managed <- X[boss -> Y].
    |}
  in
  let _, report = check_demand_equals_full text "X : managed" in
  Alcotest.(check bool) "no fallback" true (report.Program.d_fallback = None)

let test_skolem_head_unguarded () =
  (* a skolemising path head defines two relations: never guarded, but
     still demand-evaluable *)
  let text =
    {|
    e1[salary -> s50]. e2[salary -> s60].
    X.review[grade -> good] <- X[salary -> Y].
    |}
  in
  let _, report = check_demand_equals_full text "e1.review[grade -> G]" in
  Alcotest.(check bool) "no fallback" true (report.Program.d_fallback = None);
  Alcotest.(check int) "not guarded" 0 report.Program.d_guarded

(* ------------------------------------------------------------------ *)
(* Golden fallback cases: the transform must decline and full
   materialisation must answer, identically. *)

let test_fallback_negation () =
  let text =
    {|
    a : ca. b : cb. a[f -> b]. b[f -> a].
    X[g -> Y] <- X[f -> Y], not Y : cb.
    |}
  in
  let _, report = check_demand_equals_full text "b[g -> Y]" in
  Alcotest.(check bool) "negation fallback" true
    (report.Program.d_fallback = Some Demand.Negation)

let test_fallback_inclusion () =
  let text =
    {|
    boss[pals ->> {b, c}]. a[pals ->> {b, c, d}]. e[pals ->> {b}].
    X : sociable <- X[pals ->> boss..pals].
    |}
  in
  let _, report = check_demand_equals_full text "X : sociable" in
  Alcotest.(check bool) "inclusion fallback" true
    (report.Program.d_fallback = Some Demand.Inclusion)

let test_fallback_hilog () =
  let text = {|
    a[f -> b]. a[g -> c].
    |} in
  let _, report = check_demand_equals_full text "a[M -> Y]" in
  Alcotest.(check bool) "hilog fallback" true
    (report.Program.d_fallback = Some Demand.Hilog)

let test_fallback_only_when_relevant () =
  (* a negated rule in an unrelated family must not force the fallback *)
  let text =
    two_chains 5
    ^ {|
    p : person. q : person.
    X : lonely <- X : person, not X[pals ->> {q}].
    |}
  in
  let _, report = check_demand_equals_full text "a0[up ->> {X}]" in
  Alcotest.(check bool) "no fallback for unrelated negation" true
    (report.Program.d_fallback = None)

(* ------------------------------------------------------------------ *)
(* explain --demand *)

let has_sub line needle =
  let ll = String.length line and nl = String.length needle in
  let rec scan i =
    i + nl <= ll && (String.sub line i nl = needle || scan (i + 1))
  in
  scan 0

let test_explain_demand_listing () =
  let p = Program.of_string (two_chains 5) in
  let listing = Program.explain_demand_string p "a0[up ->> {X}]" in
  let has needle = List.exists (fun line -> has_sub line needle) listing in
  Alcotest.(check bool) "shows magic predicates" true (has "magic$");
  Alcotest.(check bool) "shows guarded section" true (has "guarded rules (2)");
  Alcotest.(check bool) "shows seeds" true (has "$demand");
  Alcotest.(check bool) "shows adornments" true (has "bound-receiver");
  let fb = Program.explain_demand_string p "X[M ->> {Y}]" in
  Alcotest.(check bool) "fallback explained" true
    (match fb with [ line ] -> has_sub line "unavailable" | _ -> false)

(* ------------------------------------------------------------------ *)
(* QCheck: demand answers = full-materialisation answers on randprog
   workloads, at jobs 1 and 4. *)

let queries =
  [
    "o1[r ->> {X}]";
    "o2[s ->> {X}]";
    "o3[t ->> {X}]";
    "o1[r ->> {X}], X[s ->> {Y}]";
    "o4[f -> X]";
  ]

let qcheck_demand_equals_full jobs =
  QCheck.Test.make
    ~name:(Printf.sprintf "demand = full on randprog (jobs %d)" jobs)
    ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let text =
        Pathlog.Randprog.generate
          { Pathlog.Randprog.seed; facts = 24; rules = 8 }
      in
      let config = { Pathlog.Fixpoint.default_config with jobs } in
      match
        let pf = Program.of_string ~config text in
        ignore (Program.run pf);
        (pf, Program.of_string ~config text)
      with
      | exception _ -> QCheck.assume_fail () (* e.g. scalar conflict *)
      | pf, pd ->
        List.for_all
          (fun q ->
            match Program.query_demand_string pd q with
            | exception _ -> QCheck.assume_fail ()
            | ans, _ ->
              render pd ans.rows = render pf (Program.query_string pf q).rows)
          queries)

let suite =
  [
    Alcotest.test_case "bound tc" `Quick test_bound_tc;
    Alcotest.test_case "chained query" `Quick test_demand_chained_query;
    Alcotest.test_case "free query" `Quick test_free_query_falls_back_to_full_rules;
    Alcotest.test_case "demand composes" `Quick test_demand_composes;
    Alcotest.test_case "isa query" `Quick test_isa_query;
    Alcotest.test_case "skolem head" `Quick test_skolem_head_unguarded;
    Alcotest.test_case "fallback: negation" `Quick test_fallback_negation;
    Alcotest.test_case "fallback: inclusion" `Quick test_fallback_inclusion;
    Alcotest.test_case "fallback: hilog" `Quick test_fallback_hilog;
    Alcotest.test_case "fallback scoped to relevant rules" `Quick
      test_fallback_only_when_relevant;
    Alcotest.test_case "explain --demand" `Quick test_explain_demand_listing;
    QCheck_alcotest.to_alcotest (qcheck_demand_equals_full 1);
    QCheck_alcotest.to_alcotest (qcheck_demand_equals_full 4);
  ]
