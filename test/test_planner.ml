(* The compiled query planner, receiver-keyed store indexes, incremental
   hierarchy closure and the sealed shared empty bucket. *)

open Helpers
module Program = Pathlog.Program
module Fixpoint = Pathlog.Fixpoint
module Solve = Pathlog.Solve
module Store = Pathlog.Store
module Flatten = Pathlog.Flatten
module Ir = Pathlog.Ir
module Vec = Pathlog.Vec

let store_of = Program.store

(* ------------------------------------------------------------------ *)
(* Planner equivalence: Naive, Seminaive-adaptive and Seminaive-compiled
   must produce identical models and identical query answers on random
   rule programs. *)

let model_facts p =
  Format.asprintf "%a" Store.pp (Program.store p)
  |> String.split_on_char '\n'
  |> List.sort_uniq compare

let load_with mode order text =
  let config = { Fixpoint.default_config with mode; order } in
  let p = Program.of_string ~config text in
  ignore (Program.run p);
  p

(* Covers every relation Randprog emits, scalar and set, plus membership. *)
let equivalence_queries =
  [ "X[r ->> {Y}]"; "X[s ->> {Y}]"; "X[t ->> {Y}]"; "X[f -> Y]"; "X : ca" ]

let rows p q =
  List.sort_uniq compare
    (List.map (Program.row_to_string p) (Program.query_string p q).rows)

let orders_agree =
  QCheck.Test.make ~name:"naive = adaptive = compiled on random programs"
    ~count:60
    (QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 10_000))
    (fun seed ->
      let text =
        Pathlog.Randprog.generate
          { Pathlog.Randprog.seed; facts = 12; rules = 4 }
      in
      match load_with Fixpoint.Naive Solve.Greedy text with
      | exception _ -> QCheck.assume_fail () (* e.g. scalar conflict *)
      | p_naive ->
        let p_greedy = load_with Fixpoint.Seminaive Solve.Greedy text in
        let p_comp = load_with Fixpoint.Seminaive Solve.Compiled text in
        model_facts p_naive = model_facts p_greedy
        && model_facts p_naive = model_facts p_comp
        && List.for_all
             (fun q ->
               rows p_greedy q = rows p_comp q
               && rows p_naive q = rows p_comp q)
             equivalence_queries)

(* Recursive program deriving isa edges round by round: exercises the
   seeded A_isa delta path against the incrementally maintained closure. *)
let test_derived_isa_fixpoint () =
  let text =
    {|
    o1[next -> o2]. o2[next -> o3]. o3[next -> o4]. o4[next -> o5].
    o5 : reach.
    X : reach <- X[next -> Y], Y : reach.
    |}
  in
  let p = load_with Fixpoint.Seminaive Solve.Compiled text in
  List.iter
    (fun o -> check_holds (o ^ " reachable") p (o ^ " : reach"))
    [ "o1"; "o2"; "o3"; "o4" ];
  let p_greedy = load_with Fixpoint.Seminaive Solve.Greedy text in
  Alcotest.(check (list string))
    "same model as adaptive" (model_facts p_greedy) (model_facts p);
  Alcotest.(check (list string))
    "invariants" []
    (Store.check_invariants (store_of p))

(* ------------------------------------------------------------------ *)
(* Compiled plan structure *)

let test_compile_plan_structure () =
  let p = load "a : ca. a[f -> b]. a[r ->> {b}]. b[r ->> {c}]." in
  let store = store_of p in
  let q =
    Flatten.literals store
      (Pathlog.Parser.literals "X : ca, X[f -> Y], X[r ->> {Z}]")
  in
  let n = List.length q.atoms in
  let plan = Solve.compile_plan store q in
  Alcotest.(check int) "unseeded" (-1) plan.Solve.plan_seed;
  Alcotest.(check int) "covers all atoms" n (Array.length plan.Solve.plan_perm);
  Alcotest.(check (list int))
    "a permutation" (List.init n Fun.id)
    (List.sort compare (Array.to_list plan.Solve.plan_perm));
  let sp = Solve.compile_plan ~seed_atom:1 store q in
  Alcotest.(check int) "seed recorded" 1 sp.Solve.plan_seed;
  Alcotest.(check int) "rest only" (n - 1) (Array.length sp.Solve.plan_perm);
  Alcotest.(check bool)
    "seed not repeated" false
    (Array.exists (Int.equal 1) sp.Solve.plan_perm)

let test_plan_mismatch_rejected () =
  let p = load "a[f -> b]. a[g -> c]." in
  let store = store_of p in
  let q =
    Flatten.literals store (Pathlog.Parser.literals "X[f -> Y], X[g -> Z]")
  in
  let seeded = Solve.compile_plan ~seed_atom:0 store q in
  Alcotest.check_raises "seeded plan without a seed"
    (Invalid_argument "Solve.iter: plan does not match query/seed")
    (fun () -> Solve.iter ~plan:seeded store q ~f:ignore)

let test_plan_stale () =
  let p = load "a[f -> b]." in
  let store = store_of p in
  let q = Flatten.literals store (Pathlog.Parser.literals "X[f -> Y]") in
  let plan = Solve.compile_plan store q in
  Alcotest.(check bool) "fresh" false (Solve.plan_stale store plan);
  let meth = Store.name store "f" in
  let res = Store.name store "b" in
  for i = 0 to 99 do
    ignore
      (Store.add_scalar store ~meth
         ~recv:(Store.name store (Printf.sprintf "n%d" i))
         ~args:[] ~res)
  done;
  Alcotest.(check bool) "stale after 2x growth" true
    (Solve.plan_stale store plan)

let test_explain_compiled_is_greedy_simulation () =
  let p =
    load "m1 : manager. m1[vehicles ->> {v1}]. v1[color -> red]."
  in
  let store = store_of p in
  let q =
    Flatten.literals store
      (Pathlog.Parser.literals "X : manager..vehicles[color -> red]")
  in
  Alcotest.(check (list string))
    "one static plan" (Solve.explain store q)
    (Solve.explain ~order:Solve.Compiled store q)

let test_explain_receiver_index_path () =
  let p = load "bob[salary@(1994) -> 100]. bob[salary@(1995) -> 120]." in
  let store = store_of p in
  let q =
    Flatten.literals store (Pathlog.Parser.literals "bob[salary@(Y) -> S]")
  in
  let lines = Solve.explain ~order:Solve.Compiled store q in
  Alcotest.(check bool) "receiver index access path" true
    (List.exists (contains ~sub:"receiver index scan on salary") lines)

(* ------------------------------------------------------------------ *)
(* Receiver-keyed secondary indexes *)

let test_recv_index_scalar () =
  let st = Store.create () in
  let m = Store.name st "attr" in
  for r = 0 to 49 do
    let recv = Store.name st (Printf.sprintf "r%d" r) in
    for a = 0 to 3 do
      ignore
        (Store.add_scalar st ~meth:m ~recv ~args:[ Store.int st a ]
           ~res:(Store.int st (r + a)))
    done
  done;
  let recv7 = Store.name st "r7" in
  Alcotest.(check int) "this receiver's tuples" 4
    (Vec.length (Store.scalar_recv_index st ~meth:m ~recv:recv7));
  Alcotest.(check int) "distinct receivers" 50 (Store.scalar_recv_keys st m);
  Alcotest.(check int) "missing receiver is empty" 0
    (Vec.length
       (Store.scalar_recv_index st ~meth:m ~recv:(Store.name st "zz")));
  Alcotest.(check int) "unknown method is empty" 0
    (Store.scalar_recv_keys st (Store.name st "nope"));
  Alcotest.(check (list string)) "invariants" [] (Store.check_invariants st)

let test_recv_index_set_query () =
  let st = Store.create () in
  let m = Store.name st "items" in
  for r = 0 to 19 do
    let recv = Store.name st (Printf.sprintf "p%d" r) in
    for a = 0 to 4 do
      ignore
        (Store.add_set st ~meth:m ~recv ~args:[ Store.int st a ]
           ~res:(Store.int st ((100 * r) + a)))
    done
  done;
  (* bound receiver, open argument and result: the receiver index must
     return exactly this receiver's tuples *)
  let q =
    {
      Ir.atoms =
        [
          Ir.A_member
            {
              meth = Ir.Const m;
              recv = Ir.Const (Store.name st "p3");
              args = [ Ir.V 0 ];
              res = Ir.V 1;
            };
        ];
      nvars = 2;
      named = [ ("A", 0); ("X", 1) ];
    }
  in
  Alcotest.(check int) "five rows (compiled)" 5
    (List.length (Solve.named_solutions ~order:Solve.Compiled st q));
  Alcotest.(check int) "five rows (greedy)" 5
    (List.length (Solve.named_solutions ~order:Solve.Greedy st q));
  Alcotest.(check int) "distinct set receivers" 20 (Store.set_recv_keys st m);
  Alcotest.(check (list string)) "invariants" [] (Store.check_invariants st)

(* 0-ary methods keep the packed fast path consistent with everything *)
let test_zero_ary_fast_path () =
  let st = Store.create () in
  let m = Store.name st "color" in
  let a = Store.name st "a" and red = Store.name st "red" in
  Alcotest.(check bool) "added" true
    (Store.add_scalar st ~meth:m ~recv:a ~args:[] ~res:red = Store.Added);
  Alcotest.(check bool) "duplicate" true
    (Store.add_scalar st ~meth:m ~recv:a ~args:[] ~res:red = Store.Duplicate);
  (match Store.add_scalar st ~meth:m ~recv:a ~args:[] ~res:a with
  | Store.Conflict existing ->
    Alcotest.(check int) "conflict reports holder" red existing
  | Store.Added | Store.Duplicate -> Alcotest.fail "conflict not detected");
  Alcotest.(check (option int))
    "lookup" (Some red)
    (Store.scalar_lookup st ~meth:m ~recv:a ~args:[]);
  Alcotest.(check (list string)) "invariants" [] (Store.check_invariants st)

(* ------------------------------------------------------------------ *)
(* Incremental hierarchy closure *)

let test_incremental_closure_matches_fresh () =
  let st = Store.create () in
  let obj i = Store.name st (Printf.sprintf "c%d" i) in
  let edges = ref [] in
  let add o c =
    ignore (Store.add_isa st (obj o) (obj c));
    edges := (o, c) :: !edges
  in
  (* binary-tree shape, warming the closure caches as it grows *)
  for i = 1 to 40 do
    add i (i / 2);
    if i mod 3 = 0 then
      ignore (Pathlog.Obj_id.Set.cardinal (Store.classes_of st (obj i)));
    if i mod 4 = 0 then
      ignore (Pathlog.Obj_id.Set.cardinal (Store.members st (obj 0)))
  done;
  (* cross edges after the caches are warm *)
  add 33 2;
  add 12 5;
  (* an equivalent store built without any interleaved queries *)
  let fresh = Store.create () in
  let fobj i = Store.name fresh (Printf.sprintf "c%d" i) in
  List.iter
    (fun (o, c) -> ignore (Store.add_isa fresh (fobj o) (fobj c)))
    (List.rev !edges);
  for i = 0 to 40 do
    Alcotest.(check int)
      (Printf.sprintf "ancestors of c%d" i)
      (Pathlog.Obj_id.Set.cardinal (Store.classes_of fresh (fobj i)))
      (Pathlog.Obj_id.Set.cardinal (Store.classes_of st (obj i)));
    Alcotest.(check int)
      (Printf.sprintf "descendants of c%d" i)
      (Pathlog.Obj_id.Set.cardinal (Store.members fresh (fobj i)))
      (Pathlog.Obj_id.Set.cardinal (Store.members st (obj i)))
  done;
  (* cycle rejection still sees the updated closure *)
  Alcotest.(check bool) "cycle rejected" true
    (Store.add_isa st (obj 0) (obj 40) = Store.ICycle);
  (* the invariant audit recomputes every cached closure from scratch *)
  Alcotest.(check (list string)) "invariants" [] (Store.check_invariants st)

(* ------------------------------------------------------------------ *)
(* Sealed shared empty bucket *)

let test_sealed_empty_bucket () =
  let st = Store.create () in
  let missing = Store.scalar_bucket st (Store.name st "nope") in
  Alcotest.(check int) "empty" 0 (Vec.length missing);
  Alcotest.check_raises "push on the shared empty bucket raises"
    (Invalid_argument "Vec.push: sealed vector") (fun () ->
      Vec.push missing { Store.recv = 0; args = []; res = 0; dead = max_int });
  Alcotest.check_raises "clear on the shared empty bucket raises"
    (Invalid_argument "Vec.clear: sealed vector") (fun () ->
      Vec.clear missing);
  (* other miss results are unaffected *)
  Alcotest.(check int) "set-side miss still empty" 0
    (Vec.length (Store.set_bucket st (Store.name st "other")))

let suite =
  [
    qtest orders_agree;
    Alcotest.test_case "derived isa fixpoint (compiled)" `Quick
      test_derived_isa_fixpoint;
    Alcotest.test_case "compile_plan structure" `Quick
      test_compile_plan_structure;
    Alcotest.test_case "plan mismatch rejected" `Quick
      test_plan_mismatch_rejected;
    Alcotest.test_case "plan staleness" `Quick test_plan_stale;
    Alcotest.test_case "explain: compiled = greedy simulation" `Quick
      test_explain_compiled_is_greedy_simulation;
    Alcotest.test_case "explain: receiver index path" `Quick
      test_explain_receiver_index_path;
    Alcotest.test_case "receiver index: scalar" `Quick test_recv_index_scalar;
    Alcotest.test_case "receiver index: set query" `Quick
      test_recv_index_set_query;
    Alcotest.test_case "0-ary fast path" `Quick test_zero_ary_fast_path;
    Alcotest.test_case "incremental closure = fresh closure" `Quick
      test_incremental_closure_matches_fresh;
    Alcotest.test_case "sealed empty bucket" `Quick test_sealed_empty_bucket;
  ]
