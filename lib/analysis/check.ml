module Ast = Syntax.Ast

type t = {
  diagnostics : Diagnostic.t list;
  n_rules : int;
  n_queries : int;
  n_strata : int;
}

let ok t =
  List.for_all
    (fun (d : Diagnostic.t) -> d.severity <> Diagnostic.Error)
    t.diagnostics

let worst t =
  List.fold_left
    (fun acc (d : Diagnostic.t) ->
      match acc with
      | Some s when Diagnostic.severity_rank s >= Diagnostic.severity_rank d.severity
        ->
        acc
      | _ -> Some d.severity)
    None t.diagnostics

let code_of_wellformed (e : Syntax.Wellformed.error) =
  match e with
  | Anonymous_variable_in_head -> "PL010"
  | Anonymous_variable_in_negation -> "PL011"
  | Set_valued_at_scalar_position _ -> "PL012"
  | Scalar_at_set_position _ -> "PL013"
  | Signature_in_formula _ -> "PL014"
  | Set_valued_head _ -> "PL015"
  | Unsafe_head_variable _ -> "PL016"
  | Unsafe_negated_variable _ -> "PL017"
  | Regex_in_head _ -> "PL019"

let analyze ?card_threshold text =
  match Syntax.Parser.program_spanned text with
  | exception Syntax.Parser.Error (pos, msg) ->
    let span = { Syntax.Token.s_start = pos; s_end = pos } in
    {
      diagnostics =
        [
          Diagnostic.make ~span ~code:"PL001" ~severity:Diagnostic.Error
            "%s" msg;
        ];
      n_rules = 0;
      n_queries = 0;
      n_strata = 0;
    }
  | spanned ->
    let store = Oodb.Store.create () in
    let signatures = Oodb.Signature.create () in
    let diags = ref [] in
    let emit d = diags := d :: !diags in
    let rules = ref [] in
    let queries = ref [] in
    List.iter
      (fun (stmt, span) ->
        match Syntax.Wellformed.signature_of_statement stmt with
        | Some decl -> (
          try Engine.Program.load_signature store signatures decl
          with Engine.Program.Invalid msg ->
            emit
              (Diagnostic.make ~span
                 ~context:(Syntax.Pretty.statement_to_string stmt)
                 ~code:"PL018" ~severity:Diagnostic.Error "%s" msg))
        | None -> (
          match stmt with
          | Ast.Rule r -> (
            match Syntax.Wellformed.check_rule r with
            | Ok () -> rules := Engine.Rule.compile ~span store r :: !rules
            | Error e ->
              emit
                (Diagnostic.make ~span
                   ~context:(Format.asprintf "%a" Syntax.Pretty.pp_rule r)
                   ~code:(code_of_wellformed e) ~severity:Diagnostic.Error
                   "%a" Syntax.Wellformed.pp_error e))
          | Ast.Query lits -> (
            match Syntax.Wellformed.check_query lits with
            | Ok () -> queries := lits :: !queries
            | Error e ->
              emit
                (Diagnostic.make ~span
                   ~context:(Syntax.Pretty.statement_to_string stmt)
                   ~code:(code_of_wellformed e) ~severity:Diagnostic.Error
                   "%a" Syntax.Wellformed.pp_error e))))
      spanned;
    let rules = List.rev !rules in
    let queries = List.rev !queries in
    let strat =
      match Engine.Stratify.compute store rules with
      | strat -> Some strat
      | exception Engine.Err.Unstratifiable u ->
        let span, context =
          match u.u_rule with
          | None -> (None, None)
          | Some src ->
            let compiled =
              List.find_opt (fun (r : Engine.Rule.t) -> r.source == src) rules
            in
            ( Option.bind compiled (fun r -> r.span),
              Some (Format.asprintf "%a" Syntax.Pretty.pp_rule src) )
        in
        emit
          (Diagnostic.make ?span ?context ~code:"PL020"
             ~severity:Diagnostic.Error "program is not stratifiable: %s"
             u.u_message);
        None
    in
    let n_strata =
      match strat with
      | Some s -> Array.length s.Engine.Stratify.strata
      | None -> 0
    in
    List.iter
      (fun (w : Engine.Typecheck.warning) ->
        emit
          (Diagnostic.make ?span:w.w_span
             ~context:(Format.asprintf "%a" Syntax.Pretty.pp_rule w.w_rule)
             ~code:"PL021" ~severity:Diagnostic.Warning "%s" w.w_message))
      (Engine.Typecheck.check_rules store signatures rules);
    List.iter emit (Analyses.skolem_cycles store rules);
    List.iter emit (Analyses.dead_rules store rules ~queries);
    List.iter emit (Analyses.regex_dead store rules ~queries);
    List.iter emit (Analyses.scalar_conflicts rules);
    List.iter emit
      (Absint.check ?strat ?threshold:card_threshold store rules ~queries);
    {
      diagnostics = List.stable_sort Diagnostic.compare (List.rev !diags);
      n_rules = List.length rules;
      n_queries = List.length queries;
      n_strata;
    }

(* Bump when the JSON shape changes (fields, span encoding, ordering
   contract). 2: added schema_version itself and byte offsets in spans. *)
let schema_version = 2

let to_json t =
  Printf.sprintf
    "{\"schema_version\":%d,\"ok\":%b,\"rules\":%d,\"queries\":%d,\"strata\":%d,\"diagnostics\":%s}"
    schema_version (ok t) t.n_rules t.n_queries t.n_strata
    (Diagnostic.json_of_list t.diagnostics)

(* The compiled program a successfully parsed text denotes, for callers
   that need the rules themselves (check --estimates, admission
   control) rather than diagnostics. Malformed statements are skipped —
   the diagnostics pipeline reports them. *)
let program_of text =
  match Syntax.Parser.program_spanned text with
  | exception Syntax.Parser.Error _ -> None
  | spanned ->
    let store = Oodb.Store.create () in
    let rules = ref [] in
    let queries = ref [] in
    List.iter
      (fun (stmt, span) ->
        match Syntax.Wellformed.signature_of_statement stmt with
        | Some _ -> ()
        | None -> (
          match stmt with
          | Ast.Rule r ->
            if Syntax.Wellformed.check_rule r = Ok () then
              rules := Engine.Rule.compile ~span store r :: !rules
          | Ast.Query lits ->
            if Syntax.Wellformed.check_query lits = Ok () then
              queries := lits :: !queries))
      spanned;
    Some (store, List.rev !rules, List.rev !queries)

let gate ?(deny = Diagnostic.Error) ?card_threshold text =
  let t = analyze ?card_threshold text in
  match
    List.filter
      (fun (d : Diagnostic.t) ->
        Diagnostic.severity_rank d.severity >= Diagnostic.severity_rank deny)
      t.diagnostics
  with
  | [] -> Ok t
  | offenders ->
    Error (String.concat "\n" (List.map Diagnostic.to_string offenders))
