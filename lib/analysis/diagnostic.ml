type severity = Hint | Warning | Error

let severity_rank = function Hint -> 0 | Warning -> 1 | Error -> 2

let severity_to_string = function
  | Hint -> "hint"
  | Warning -> "warning"
  | Error -> "error"

let severity_of_string = function
  | "hint" -> Some Hint
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

type t = {
  code : string;
  severity : severity;
  message : string;
  span : Syntax.Token.span option;
  context : string option;
}

let make ?span ?context ~code ~severity fmt =
  Format.kasprintf
    (fun message -> { code; severity; message; span; context })
    fmt

(* Source order first, keyed on the byte offset so the sort is total and
   deterministic (span-less diagnostics last), then code, then severity
   descending: the order a reader fixes things in, stable under re-runs
   for CI diffing. *)
let compare a b =
  let offset_of d =
    match d.span with
    | Some sp -> sp.Syntax.Token.s_start.offset
    | None -> max_int
  in
  match Stdlib.compare (offset_of a) (offset_of b) with
  | 0 -> (
    match Stdlib.compare a.code b.code with
    | 0 -> (
      match
        Stdlib.compare (severity_rank b.severity) (severity_rank a.severity)
      with
      | 0 -> Stdlib.compare a.message b.message
      | c -> c)
    | c -> c)
  | c -> c

let pp ?file ppf d =
  (match file with
  | Some f -> Format.fprintf ppf "%s: " f
  | None -> ());
  (match d.span with
  | Some sp -> Format.fprintf ppf "%a: " Syntax.Token.pp_span sp
  | None -> ());
  Format.fprintf ppf "%s %s: %s"
    (severity_to_string d.severity)
    d.code d.message;
  match d.context with
  | Some c -> Format.fprintf ppf "\n  | %s" c
  | None -> ()

let to_string ?file d = Format.asprintf "%a" (pp ?file) d

(* ------------------------------------------------------------------ *)
(* Hand-rolled JSON: the diagnostic stream must be machine-readable and
   the toolchain has no JSON library; the shape is flat enough that
   emitting it directly is simpler than depending on one. *)

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_json b d =
  Buffer.add_string b "{\"code\":";
  add_json_string b d.code;
  Buffer.add_string b ",\"severity\":";
  add_json_string b (severity_to_string d.severity);
  Buffer.add_string b ",\"message\":";
  add_json_string b d.message;
  Buffer.add_string b ",\"span\":";
  (match d.span with
  | None -> Buffer.add_string b "null"
  | Some { Syntax.Token.s_start; s_end } ->
    Buffer.add_string b
      (Printf.sprintf
         "{\"start\":{\"line\":%d,\"col\":%d,\"offset\":%d},\"end\":{\"line\":%d,\"col\":%d,\"offset\":%d}}"
         s_start.line s_start.col s_start.offset s_end.line s_end.col
         s_end.offset));
  Buffer.add_string b ",\"context\":";
  (match d.context with
  | None -> Buffer.add_string b "null"
  | Some c -> add_json_string b c);
  Buffer.add_char b '}'

let to_json d =
  let b = Buffer.create 128 in
  add_json b d;
  Buffer.contents b

let json_of_list ds =
  let b = Buffer.create 256 in
  Buffer.add_char b '[';
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      add_json b d)
    ds;
  Buffer.add_char b ']';
  Buffer.contents b
