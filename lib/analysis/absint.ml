open Syntax.Ast
module Ir = Semantics.Ir
module Rule = Engine.Rule
module Stratify = Engine.Stratify
module Obj_set = Oodb.Obj_id.Set

module Rel_map = Map.Make (struct
  type t = Ir.rel

  let compare = Ir.compare_rel
end)

(* ------------------------------------------------------------------ *)
(* The abstract domain: an upper bound on a tuple count, parameterised by
   the universe cardinality [n]. [Exact] counts ground contributions,
   [Poly (c, k)] bounds a derived relation by c·n^k, and [Inf] marks
   relations fed by a skolem-creation cycle — their growth enlarges the
   universe itself, so no store-size-parameterised bound is sound. *)

type card = Exact of int | Poly of int * int | Inf

(* Saturating arithmetic: counts never overflow into negatives, they pin
   at [sat_cap] (still "finite but huge" for every comparison we make). *)
let sat_cap = max_int / 4

let sat v = if v < 0 || v > sat_cap then sat_cap else v

let sat_add a b = sat (a + b)

let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a > sat_cap / b then sat_cap else a * b

let eval_card ~n c =
  let n = max n 1 in
  match c with
  | Exact c -> c
  | Poly (c, k) ->
    let rec pow acc i = if i <= 0 then acc else pow (sat_mul acc n) (i - 1) in
    sat_mul c (pow 1 k)
  | Inf -> max_int

(* Least upper bound. [Exact c <= Poly (max c c', k)] because n >= 1. *)
let card_join a b =
  match (a, b) with
  | Inf, _ | _, Inf -> Inf
  | Exact x, Exact y -> Exact (max x y)
  | Exact c, Poly (c', k) | Poly (c', k), Exact c -> Poly (max c c', k)
  | Poly (c1, k1), Poly (c2, k2) -> Poly (max c1 c2, max k1 k2)

let card_sum a b =
  match (a, b) with
  | Inf, _ | _, Inf -> Inf
  | Exact x, Exact y -> Exact (sat_add x y)
  | Exact c, Poly (c', k) | Poly (c', k), Exact c -> Poly (sat_add c c', k)
  | Poly (c1, k1), Poly (c2, k2) -> Poly (sat_add c1 c2, max k1 k2)

let card_mul a b =
  match (a, b) with
  | Exact 0, _ | _, Exact 0 -> Exact 0
  | Inf, _ | _, Inf -> Inf
  | Exact x, Exact y -> Exact (sat_mul x y)
  | Exact c, Poly (c', k) | Poly (c', k), Exact c -> Poly (sat_mul c c', k)
  | Poly (c1, k1), Poly (c2, k2) -> Poly (sat_mul c1 c2, sat_add k1 k2)

(* Both arguments are sound upper bounds, so returning either is sound;
   prefer the lower degree, then the lower coefficient. *)
let pick_tighter a b =
  let deg = function Exact _ -> 0 | Poly (_, k) -> k | Inf -> max_int in
  let coeff = function Exact c | Poly (c, _) -> c | Inf -> max_int in
  if deg a < deg b then a
  else if deg b < deg a then b
  else if coeff a <= coeff b then a
  else b

(* Cut a finite bound by the structural cap. [Inf] is deliberately NOT
   cut: a creation cycle grows the universe, which invalidates any cap
   stated in terms of the initial [n]. *)
let apply_cap cap c = match c with Inf -> Inf | c -> pick_tighter cap c

let pp_card ppf = function
  | Exact c -> Format.fprintf ppf "%d" c
  | Poly (c, 0) -> Format.fprintf ppf "%d" c
  | Poly (1, 1) -> Format.fprintf ppf "O(n)"
  | Poly (c, 1) -> Format.fprintf ppf "O(%d·n)" c
  | Poly (1, k) -> Format.fprintf ppf "O(n^%d)" k
  | Poly (c, k) -> Format.fprintf ppf "O(%d·n^%d)" c k
  | Inf -> Format.pp_print_string ppf "∞"

let card_to_string c = Format.asprintf "%a" pp_card c

(* ------------------------------------------------------------------ *)
(* Structural caps: a relation over a universe of [n] objects holds at
   most n^width distinct tuples. Scalar methods are functional in
   (receiver, args) — {!Engine.Err.Functional_conflict} enforces it — so
   their width drops the result dimension. *)

let const_obj store : reference -> Oodb.Obj_id.t option = function
  | Name n -> Some (Oodb.Store.name store n)
  | Int_lit n -> Some (Oodb.Store.int store n)
  | Str_lit s -> Some (Oodb.Store.str store s)
  | Var _ | Paren _ | Path _ | Regex _ | Filter _ | Isa _ -> None

let meth_rel store ~set m : Ir.rel =
  match const_obj store m with
  | Some m -> if set then Ir.R_set m else Ir.R_scalar m
  | None -> Ir.R_any

let isa_rel store cls : Ir.rel =
  match const_obj store cls with Some c -> Ir.R_isa_c c | None -> Ir.R_isa

type widths = {
  arities : (Ir.rel, int) Hashtbl.t;  (** max args per method relation *)
  mutable any_exp : int;  (** cap exponent of [R_any] *)
}

let note_arity w rel a =
  match (rel : Ir.rel) with
  | R_scalar _ | R_set _ ->
    let cur = Option.value ~default:0 (Hashtbl.find_opt w.arities rel) in
    if a > cur then Hashtbl.replace w.arities rel a
  | R_isa | R_isa_c _ -> ()
  | R_any -> w.any_exp <- max w.any_exp (a + 2)

let rec note_atom w (a : Ir.atom) =
  match a with
  | A_isa _ | A_eq _ -> ()
  | A_scalar { meth; args; _ } ->
    let rel =
      match meth with Const m -> Ir.R_scalar m | Ir.V _ -> Ir.R_any
    in
    note_arity w rel (List.length args)
  | A_member { meth; args; _ } ->
    let rel = match meth with Const m -> Ir.R_set m | Ir.V _ -> Ir.R_any in
    note_arity w rel (List.length args)
  | A_subset s ->
    let rel =
      match s.s_meth with Const m -> Ir.R_set m | Ir.V _ -> Ir.R_any
    in
    note_arity w rel (List.length s.s_args);
    List.iter (note_atom w) s.sub_atoms
  | A_neg n -> List.iter (note_atom w) n.n_atoms
  | A_regex x ->
    Array.iter
      (fun out ->
        Array.iter
          (fun ((l : Ir.label), _) ->
            note_arity w (Ir.label_rel l) (List.length l.Ir.lbl_args))
          out)
      x.x_auto.Ir.a_trans

let note_head store w head =
  let add () = function
    | Path { p_sep = Dot; p_meth = Name "self"; p_args = []; _ } -> ()
    | Path { p_sep; p_meth; p_args; _ } ->
      note_arity w
        (meth_rel store ~set:(p_sep = Dotdot) p_meth)
        (List.length p_args)
    | Filter { f_meth; f_args; f_rhs; _ } -> (
      match f_rhs with
      | Rscalar _ ->
        note_arity w (meth_rel store ~set:false f_meth) (List.length f_args)
      | Rset_ref _ | Rset_enum _ ->
        note_arity w (meth_rel store ~set:true f_meth) (List.length f_args)
      | Rsig_scalar _ | Rsig_set _ -> ())
    | Name _ | Int_lit _ | Str_lit _ | Var _ | Paren _ | Regex _ | Isa _ ->
      ()
  in
  fold_reference add () head

let collect_widths store (rules : Rule.t list) =
  let w = { arities = Hashtbl.create 32; any_exp = 2 } in
  List.iter
    (fun (r : Rule.t) ->
      List.iter (note_atom w) r.body.atoms;
      note_head store w r.source.head)
    rules;
  let exp rel arity =
    match (rel : Ir.rel) with
    | R_scalar _ -> 1 + arity  (* functional in recv+args *)
    | R_set _ -> 2 + arity
    | R_isa_c _ -> 1
    | R_isa -> 2
    | R_any -> w.any_exp
  in
  Hashtbl.iter
    (fun rel a -> w.any_exp <- max w.any_exp (exp rel a))
    w.arities;
  fun rel ->
    let a = Option.value ~default:0 (Hashtbl.find_opt w.arities rel) in
    Poly (1, exp rel a)

(* ------------------------------------------------------------------ *)
(* Head define occurrences, with multiplicity (a head asserting the same
   relation twice contributes two tuples per firing, unlike
   {!Rule.t.defines} which dedups). *)

let head_occs store head : Ir.rel list =
  let add acc = function
    | Path { p_sep = Dot; p_meth = Name "self"; p_args = []; _ } -> acc
    | Path { p_sep = Dot; p_meth; _ } -> meth_rel store ~set:false p_meth :: acc
    | Path { p_sep = Dotdot; _ } -> acc
    | Isa { cls; _ } -> isa_rel store cls :: acc
    | Filter { f_meth; f_rhs; _ } -> (
      match f_rhs with
      | Rscalar _ -> meth_rel store ~set:false f_meth :: acc
      | Rset_ref _ | Rset_enum _ -> meth_rel store ~set:true f_meth :: acc
      | Rsig_scalar _ | Rsig_set _ -> acc)
    | Name _ | Int_lit _ | Str_lit _ | Var _ | Paren _ | Regex _ -> acc
  in
  List.rev (fold_reference add [] head)

(* ------------------------------------------------------------------ *)
(* Rule-level dependency: does inserting into [d] (already expanded
   through the class hierarchy) possibly grow a relation [reader]
   reads? Mirrors {!Stratify}'s expand_define/expand_read, restricted to
   what the worklist needs. *)

let affects (d : Ir.rel) (reader : Rule.t) =
  let reads r = List.exists (Ir.equal_rel r) reader.reads in
  match d with
  | R_scalar _ | R_set _ -> reader.reads_any || reads d
  | R_any ->
    reader.reads_any
    || List.exists
         (function Ir.R_scalar _ | Ir.R_set _ -> true | _ -> false)
         reader.reads
  | R_isa_c _ -> reads d || reads Ir.R_isa
  | R_isa ->
    reads Ir.R_isa
    || List.exists (function Ir.R_isa_c _ -> true | _ -> false) reader.reads

(* Tarjan over the rule-level graph; a rule is recursive when its SCC has
   more than one member or it reaches itself. *)
let recursion_flags (rules : Rule.t array) (expanded_defs : Ir.rel list array)
    =
  let n = Array.length rules in
  let succ =
    Array.init n (fun i ->
        let out = ref [] in
        for j = 0 to n - 1 do
          if List.exists (fun d -> affects d rules.(j)) expanded_defs.(i) then
            out := j :: !out
        done;
        !out)
  in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp_of = Array.make n (-1) in
  let comp_size = Hashtbl.create 16 in
  let stack = ref [] in
  let next = ref 0 in
  let ncomp = ref 0 in
  let rec strongconnect v =
    index.(v) <- !next;
    lowlink.(v) <- !next;
    incr next;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      succ.(v);
    if lowlink.(v) = index.(v) then begin
      let c = !ncomp in
      incr ncomp;
      let size = ref 0 in
      let rec pop () =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          comp_of.(w) <- c;
          incr size;
          if w <> v then pop ()
        | [] -> assert false
      in
      pop ();
      Hashtbl.replace comp_size c !size
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  let recursive =
    Array.init n (fun i ->
        Hashtbl.find comp_size comp_of.(i) > 1 || List.mem i succ.(i))
  in
  (recursive, succ)

(* ------------------------------------------------------------------ *)
(* Per-rule firing bound: the product of the read cardinalities of the
   enumerating body atoms, times n for every slot no atom covers (the
   solver falls back to enumerating the universe for those). [A_eq]
   propagates boundness instead of enumerating; negation, set-inclusion
   and their locals never multiply solutions. *)

let slot_cover (q : Ir.query) =
  let covered = Array.make (max q.nvars 1) false in
  let cover t = match (t : Ir.term) with Ir.V v -> covered.(v) <- true | Const _ -> () in
  let rec locals_of acc (a : Ir.atom) =
    match a with
    | A_subset s ->
      let acc = List.rev_append s.s_locals acc in
      List.fold_left locals_of acc s.sub_atoms
    | A_neg n ->
      let acc = List.rev_append n.n_locals acc in
      List.fold_left locals_of acc n.n_atoms
    | A_isa _ | A_scalar _ | A_member _ | A_eq _ | A_regex _ -> acc
  in
  List.iter
    (fun (a : Ir.atom) ->
      match a with
      | A_isa (recv, cls) ->
        cover recv;
        cover cls
      | A_scalar { meth; recv; args; res } | A_member { meth; recv; args; res }
        ->
        cover meth;
        cover recv;
        List.iter cover args;
        cover res
      | A_regex { x_recv; x_res; _ } ->
        cover x_recv;
        cover x_res
      | A_eq _ | A_subset _ | A_neg _ -> ())
    q.atoms;
  (* unification propagates boundness; iterate to a (tiny) fixpoint *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (a : Ir.atom) ->
        match a with
        | A_eq (t1, t2) ->
          let bound = function
            | Ir.Const _ -> true
            | Ir.V v -> covered.(v)
          in
          if bound t1 && not (bound t2) then begin
            cover t2;
            changed := true
          end
          else if bound t2 && not (bound t1) then begin
            cover t1;
            changed := true
          end
        | A_isa _ | A_scalar _ | A_member _ | A_subset _ | A_neg _
        | A_regex _ ->
          ())
      q.atoms
  done;
  let locals = List.fold_left locals_of [] q.atoms in
  List.iter (fun v -> covered.(v) <- true) locals;
  let uncovered = ref 0 in
  for v = 0 to q.nvars - 1 do
    if not covered.(v) then incr uncovered
  done;
  !uncovered

let atom_read_rel (a : Ir.atom) : Ir.rel option =
  match a with
  | A_isa (_, Const c) -> Some (Ir.R_isa_c c)
  | A_isa (_, V _) -> Some Ir.R_isa
  | A_scalar { meth = Const m; _ } -> Some (Ir.R_scalar m)
  | A_member { meth = Const m; _ } -> Some (Ir.R_set m)
  | A_scalar { meth = V _; _ } | A_member { meth = V _; _ } -> Some Ir.R_any
  | A_eq _ | A_subset _ | A_neg _ | A_regex _ -> None

let firings_of read_card ~uncovered (r : Rule.t) =
  let f =
    List.fold_left
      (fun acc (a : Ir.atom) ->
        match (a : Ir.atom) with
        (* the product BFS expands at most |states|·n pairs per receiver
           seed; that is the atom's enumeration bound *)
        | A_regex x when Ir.atom_vars a <> [] ->
          card_mul acc (Poly (x.x_auto.Ir.a_nstates, 1))
        | _ -> (
          match atom_read_rel a with
          | Some rel when Ir.atom_vars a <> [] ->
            card_mul acc (read_card rel)
          | Some _ | None -> acc))
      (Exact 1) r.body.atoms
  in
  if uncovered > 0 then card_mul f (Poly (1, uncovered)) else f

(* ------------------------------------------------------------------ *)
(* Analysis result. *)

type verdict = Finite | Bounded_by_budget | Potentially_infinite

let verdict_to_string = function
  | Finite -> "finite"
  | Bounded_by_budget -> "bounded-by-budget"
  | Potentially_infinite -> "potentially-infinite"

type rule_card = {
  rc_rule : Rule.t;
  rc_firings : card;  (** bound on body solutions across the whole run *)
  rc_recursive : bool;
  rc_creation_cycle : Ir.rel option;
      (** the back-edge relation when the rule sits on a skolem-creation
          cycle ({!Analyses.creation_cycles}) *)
}

type t = {
  cards : card Rel_map.t;
  rules : rule_card list;
  verdicts : (int * verdict) list;
}

let rel_card t rel = Rel_map.find_opt rel t.cards

let rel_cards t = Rel_map.bindings t.cards

let rule_cards t = t.rules

let verdicts t = t.verdicts

(* ------------------------------------------------------------------ *)
(* The worklist fixpoint.

   State: per (rule, expanded define target) contribution. A relation's
   cardinality is min(structural cap, sum of the contributions that can
   reach it). Non-recursive rules contribute firings × head occurrences;
   recursive rules are widened straight to the target's cap (their
   contribution would otherwise ascend forever), and rules on a
   creation cycle contribute [Inf]. Contributions only ascend
   (join with the previous value), so the pass bound below is a safety
   net, not a correctness requirement. *)

let analyze ?strat store (rule_list : Rule.t list) : t =
  let rules = Array.of_list rule_list in
  let n = Array.length rules in
  let cap = collect_widths store rule_list in
  let anc = Stratify.static_ancestors rule_list in
  let expand d =
    match (d : Ir.rel) with
    | R_isa_c c ->
      d :: List.map (fun a -> Ir.R_isa_c a) (Obj_set.elements (anc c))
    | R_isa | R_scalar _ | R_set _ | R_any -> [ d ]
  in
  let expanded_defs =
    Array.map
      (fun (r : Rule.t) ->
        List.sort_uniq Ir.compare_rel (List.concat_map expand r.defines))
      rules
  in
  let recursive, succ = recursion_flags rules expanded_defs in
  let cyclic =
    let cycles = Analyses.creation_cycles store rule_list in
    Array.map
      (fun (r : Rule.t) ->
        Option.map snd (List.find_opt (fun (r', _) -> r' == r) cycles))
      rules
  in
  (* expanded head occurrences, grouped: (target, multiplicity) list *)
  let occs =
    Array.map
      (fun (r : Rule.t) ->
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun d ->
            List.iter
              (fun t ->
                let cur = Option.value ~default:0 (Hashtbl.find_opt tbl t) in
                Hashtbl.replace tbl t (cur + 1))
              (expand d))
          (head_occs store r.source.head);
        Hashtbl.fold (fun t c acc -> (t, c) :: acc) tbl [])
      rules
  in
  let uncovered = Array.map (fun (r : Rule.t) -> slot_cover r.body) rules in
  let contrib : (int * Ir.rel, card) Hashtbl.t = Hashtbl.create 64 in
  let sum_matching pred =
    Hashtbl.fold
      (fun (_, t) c acc -> if pred t then card_sum acc c else acc)
      contrib (Exact 0)
  in
  let read_card rel =
    let base =
      match (rel : Ir.rel) with
      | R_scalar _ | R_set _ ->
        sum_matching (fun t ->
            Ir.equal_rel t rel || Ir.equal_rel t Ir.R_any)
      | R_isa_c _ ->
        sum_matching (fun t ->
            Ir.equal_rel t rel || Ir.equal_rel t Ir.R_isa)
      | R_isa ->
        sum_matching (function
          | Ir.R_isa | Ir.R_isa_c _ -> true
          | Ir.R_scalar _ | Ir.R_set _ | Ir.R_any -> false)
      | R_any -> sum_matching (fun _ -> true)
    in
    apply_cap (cap rel) base
  in
  let queue = Queue.create () in
  let in_queue = Array.make (max n 1) false in
  for i = 0 to n - 1 do
    Queue.add i queue;
    in_queue.(i) <- true
  done;
  let passes = ref 0 in
  let pass_limit = 64 * (n + 1) in
  while (not (Queue.is_empty queue)) && !passes <= pass_limit do
    incr passes;
    let i = Queue.take queue in
    in_queue.(i) <- false;
    let r = rules.(i) in
    let firings = firings_of read_card ~uncovered:uncovered.(i) r in
    let changed = ref false in
    List.iter
      (fun (target, mult) ->
        let c =
          if cyclic.(i) <> None then Inf
          else if recursive.(i) then
            if firings = Inf then Inf else cap target
          else
            apply_cap (cap target) (card_mul firings (Exact mult))
        in
        let old =
          Option.value ~default:(Exact 0)
            (Hashtbl.find_opt contrib (i, target))
        in
        let nw = card_join old c in
        if nw <> old then begin
          Hashtbl.replace contrib (i, target) nw;
          changed := true
        end)
      occs.(i);
    if !changed then
      List.iter
        (fun j ->
          if not in_queue.(j) then begin
            Queue.add j queue;
            in_queue.(j) <- true
          end)
        succ.(i)
  done;
  (* Safety net: if the ascent did not settle within the pass budget,
     widen every remaining contribution to its cap (or Inf on a
     creation cycle) — trivially stable and still an upper bound. *)
  if not (Queue.is_empty queue) then
    Array.iteri
      (fun i (r : Rule.t) ->
        ignore r;
        List.iter
          (fun (target, _) ->
            let c = if cyclic.(i) <> None then Inf else cap target in
            Hashtbl.replace contrib (i, target) c)
          occs.(i))
      rules;
  (* final per-relation cards, over everything the program defines or
     reads *)
  let interesting =
    let add acc rel = if List.exists (Ir.equal_rel rel) acc then acc else rel :: acc in
    let acc =
      Array.fold_left
        (fun acc defs -> List.fold_left add acc defs)
        [] expanded_defs
    in
    Array.fold_left
      (fun acc (r : Rule.t) -> List.fold_left add acc r.reads)
      acc rules
  in
  let cards =
    List.fold_left
      (fun m rel -> Rel_map.add rel (read_card rel) m)
      Rel_map.empty interesting
  in
  let rule_cards =
    Array.to_list
      (Array.mapi
         (fun i (r : Rule.t) ->
           {
             rc_rule = r;
             rc_firings =
               (if cyclic.(i) <> None then Inf
                else firings_of read_card ~uncovered:uncovered.(i) r);
             rc_recursive = recursive.(i);
             rc_creation_cycle = cyclic.(i);
           })
         rules)
  in
  (* termination verdict per stratum *)
  let strat =
    match strat with
    | Some s -> Some s
    | None -> (
      try Some (Stratify.compute store rule_list)
      with Engine.Err.Unstratifiable _ -> None)
  in
  let verdicts =
    match strat with
    | None -> []
    | Some s ->
      let idx_of (r : Rule.t) =
        let rec go i = if rules.(i) == r then i else go (i + 1) in
        go 0
      in
      Array.to_list
        (Array.mapi
           (fun si members ->
             let v =
               if
                 List.exists
                   (fun r -> cyclic.(idx_of r) <> None)
                   members
               then Potentially_infinite
               else if
                 List.exists
                   (fun (r : Rule.t) ->
                     recursive.(idx_of r)
                     && r.body.atoms <> []
                     && Rule.skolem_defines store r.source.head <> [])
                   members
               then Bounded_by_budget
               else Finite
             in
             (si, v))
           s.Stratify.strata)
  in
  { cards; rules = rule_cards; verdicts }

(* ------------------------------------------------------------------ *)
(* Diagnostics: PL050/PL051/PL052. *)

let universe_size store = max 1 (Oodb.Universe.cardinality (Oodb.Store.universe store))

let total_firings ~n t =
  List.fold_left
    (fun acc rc ->
      match rc.rc_firings with
      | Inf -> acc
      | c -> sat_add acc (eval_card ~n c))
    0 t.rules

(* PL052: the body's enumerating atoms split into >1 variable-connected
   components — the join is a cross product no planner order or demand
   adornment can prune. *)
let cross_product (r : Rule.t) =
  let q = r.body in
  if q.nvars = 0 then false
  else begin
    let parent = Array.init q.nvars Fun.id in
    let rec find v = if parent.(v) = v then v else find parent.(v) in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then parent.(ra) <- rb
    in
    List.iter
      (fun a ->
        match Ir.atom_vars a with
        | [] -> ()
        | v :: rest -> List.iter (union v) rest)
      q.atoms;
    let enumerating =
      List.filter_map
        (fun a ->
          match (atom_read_rel a, Ir.atom_vars a) with
          | Some _, v :: _ -> Some (find v)
          | _, _ -> None)
        q.atoms
    in
    List.length (List.sort_uniq compare enumerating) > 1
  end

let default_threshold = 1_000_000

let check ?strat ?(threshold = default_threshold) store rule_list
    ~(queries : Syntax.Ast.literal list list) : Diagnostic.t list =
  let t = analyze ?strat store rule_list in
  let universe = Oodb.Store.universe store in
  let context (r : Rule.t) =
    Format.asprintf "%a" Syntax.Pretty.pp_rule
      (Option.value r.origin ~default:r.source)
  in
  (* PL050: unbounded creation reachable from a query *)
  let pl050 =
    if queries = [] then []
    else begin
      let goals =
        List.concat_map
          (fun lits ->
            match Semantics.Flatten.literals store lits with
            | q -> Ir.query_rels q.atoms
            | exception _ -> [])
          queries
      in
      let live = Stratify.live_rules rule_list ~goals in
      List.filter_map
        (fun rc ->
          match rc.rc_creation_cycle with
          | Some back when List.memq rc.rc_rule live ->
            let r = rc.rc_rule in
            Some
              (Diagnostic.make ?span:r.span ~context:(context r)
                 ~code:"PL050" ~severity:Diagnostic.Error
                 "provably unbounded object creation reachable from a \
                  query: each firing creates a fresh object that re-enters \
                  %a, so the fixpoint cannot terminate without a budget"
                 (Ir.pp_rel universe) back)
          | Some _ | None -> None)
        t.rules
    end
  in
  (* PL051: finite but too big. Skipped when some rule is already ∞ —
     PL050/PL030 cover that case. *)
  let pl051 =
    let any_inf = List.exists (fun rc -> rc.rc_firings = Inf) t.rules in
    let n = universe_size store in
    let total = total_firings ~n t in
    if any_inf || total <= threshold then []
    else begin
      let worst =
        List.fold_left
          (fun acc rc ->
            let v = match rc.rc_firings with Inf -> 0 | c -> eval_card ~n c in
            match acc with
            | Some (_, best) when best >= v -> acc
            | _ -> Some (rc, v))
          None t.rules
      in
      match worst with
      | None -> []
      | Some (rc, v) ->
        let r = rc.rc_rule in
        [
          Diagnostic.make ?span:r.span ~context:(context r) ~code:"PL051"
            ~severity:Diagnostic.Warning
            "worst-case fixpoint size ~%d derivations exceeds the \
             threshold (%d); this rule dominates with ~%d (bound %s at \
             n=%d)"
            total threshold v
            (card_to_string rc.rc_firings)
            n;
        ]
    end
  in
  (* PL052: cross-product join *)
  let pl052 =
    List.filter_map
      (fun rc ->
        let r = rc.rc_rule in
        if r.body.atoms <> [] && cross_product r then
          Some
            (Diagnostic.make ?span:r.span ~context:(context r) ~code:"PL052"
               ~severity:Diagnostic.Hint
               "cross-product join: the body splits into literals sharing \
                no variables, so no join order or demand adornment can \
                prune the enumeration")
        else None)
      t.rules
  in
  pl050 @ pl051 @ pl052

(* ------------------------------------------------------------------ *)
(* Bridges: the planner estimator and admission control. *)

let epoch_counter = ref 0

let estimator t store : Semantics.Solve.estimator =
  incr epoch_counter;
  let est_epoch = !epoch_counter in
  {
    Semantics.Solve.est_epoch;
    est_card =
      (fun rel ->
        match Rel_map.find_opt rel t.cards with
        | None | Some Inf -> None
        | Some c -> Some (eval_card ~n:(universe_size store) c));
  }

let query_cost t store rule_list (lits : Syntax.Ast.literal list) :
    [ `Bound of int | `Infinite ] =
  let goals =
    match Semantics.Flatten.literals store lits with
    | q -> Ir.query_rels q.atoms
    | exception _ -> []
  in
  let live = Stratify.live_rules rule_list ~goals in
  let n = universe_size store in
  let rec go acc = function
    | [] -> `Bound acc
    | rc :: rest ->
      if List.memq rc.rc_rule live then
        match rc.rc_firings with
        | Inf -> `Infinite
        | c -> go (sat_add acc (eval_card ~n c)) rest
      else go acc rest
  in
  go 0 t.rules

(* ------------------------------------------------------------------ *)
(* Human-readable report for [pathlog check --estimates]. *)

let describe store t : string list =
  let universe = Oodb.Store.universe store in
  let n = universe_size store in
  let pp_rel = Ir.pp_rel universe in
  let rels =
    List.map
      (fun (rel, c) ->
        match c with
        | Inf -> Format.asprintf "  %a: ∞" pp_rel rel
        | c ->
          Format.asprintf "  %a: %a (~%d at n=%d)" pp_rel rel pp_card c
            (eval_card ~n c) n)
      (rel_cards t)
  in
  let line_of (r : Rule.t) =
    match r.span with
    | Some sp -> Printf.sprintf "line %d" sp.Syntax.Token.s_start.line
    | None -> "<no span>"
  in
  let rules =
    List.map
      (fun rc ->
        let r = rc.rc_rule in
        Format.asprintf "  %s: ~%a firings%s%s" (line_of r) pp_card
          rc.rc_firings
          (if rc.rc_recursive then " [recursive]" else "")
          (match rc.rc_creation_cycle with
          | Some back -> Format.asprintf " [creation cycle via %a]" pp_rel back
          | None -> ""))
      t.rules
  in
  let verdict_lines =
    List.map
      (fun (si, v) ->
        Printf.sprintf "  stratum %d: %s" si (verdict_to_string v))
      t.verdicts
  in
  ("relation cardinality bounds:" :: rels)
  @ ("rule firing bounds:" :: rules)
  @ ("termination verdicts:" :: verdict_lines)
