(** The whole-program analyses over compiled rules: skolem-creation
    cycles (PL030), dead rules (PL031/PL032), static
    scalar-functionality conflicts (PL040/PL041) and unsatisfiable
    regular path expressions (PL060). See {!Diagnostic} for the code
    taxonomy and {!Check.analyze} for the driver that runs them as part
    of [pathlog check]. *)

val creation_cycles :
  Oodb.Store.t ->
  Engine.Rule.t list ->
  (Engine.Rule.t * Semantics.Ir.rel) list
(** The creation-cycle core shared by PL030 and {!Absint}: non-fact rules
    whose fresh skolem objects can flow back into a relation their own
    body reads, paired with the back-edge relation. Such a rule's model
    contribution is potentially infinite (each firing can enable another
    on a fresh receiver). *)

val skolem_cycles :
  Oodb.Store.t -> Engine.Rule.t list -> Diagnostic.t list
(** PL030: rules that create virtual objects ([X.m] in a head) and whose
    fresh objects can flow back into the rule's own reads — each firing
    can then enable another on a fresh receiver, so the minimal model is
    likely infinite. Skolemisation is functional, so the flow starts only
    from the relations the fresh object {e enters} in a matchable data
    position: class membership ([X.m : c] heads) and method assertions on
    the skolem as receiver ([X.m\[k -> v\]] heads). Result, method and
    class positions are excluded — variable method/class positions do not
    enumerate virtual objects under the default semantics
    (hilog_virtual=false) — so the paper's generic transitive-closure
    rules and the [c.list] constructor are not flagged while
    [X.succ : nat <- X : nat] is. An under-approximation: a warning means
    "very likely diverges", silence is not a termination proof. *)

val dead_rules :
  Oodb.Store.t ->
  Engine.Rule.t list ->
  queries:Syntax.Ast.literal list list ->
  Diagnostic.t list
(** PL031 (warning): rules whose body requires a relation no rule or fact
    can produce, by a producibility fixpoint over head definitions.
    PL032 (hint): with embedded queries, non-fact rules outside the
    backward-reachability closure of the queried relations
    ({!Engine.Stratify.live_rules}); {!Engine.Program.run_live} skips
    exactly these. *)

val regex_dead :
  Oodb.Store.t ->
  Engine.Rule.t list ->
  queries:Syntax.Ast.literal list list ->
  Diagnostic.t list
(** PL060 (warning): a regular path expression whose automaton accepts no
    word over the producible vocabulary — transitions reading a relation
    no rule or fact produces are erased and no accepting state stays
    reachable from the start state. Such an atom can never match and
    silently kills its rule or query. Nullable automata ([m*]) keep the
    empty word (the expression degenerates to the identity but still
    matches), so they are not flagged. *)

val scalar_conflicts : Engine.Rule.t list -> Diagnostic.t list
(** PL040 (error): two ground facts assign the same scalar method
    application two different results — {!Engine.Err.Functional_conflict}
    is certain. PL041 (warning): two head assignments with ground,
    distinct results and receivers not provably distinct may collide at
    runtime. Results that are variables or paths are not compared. *)
