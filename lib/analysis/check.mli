(** The static-analysis driver behind [pathlog check] and the server's
    load gate.

    [analyze] runs the whole pipeline over program text and collects every
    diagnostic instead of stopping at the first problem: parse (PL001),
    per-statement well-formedness (PL010–PL017), signature loading
    (PL018), stratification (PL020), the signature type lint (PL021), and
    the whole-program analyses of {!Analyses} (PL030–PL041, PL060).
    Statements that fail well-formedness are excluded from the later
    stages; a parse error short-circuits everything (there is no
    statement stream to continue with). *)

type t = {
  diagnostics : Diagnostic.t list;
      (** sorted by source position, then severity *)
  n_rules : int;  (** rules (facts included) that passed well-formedness *)
  n_queries : int;  (** embedded queries that passed well-formedness *)
  n_strata : int;  (** 0 when stratification failed *)
}

val analyze : ?card_threshold:int -> string -> t
(** [card_threshold] tunes PL051 ({!Absint.default_threshold} when
    omitted). *)

val ok : t -> bool
(** No error-severity diagnostics. *)

val worst : t -> Diagnostic.severity option
(** Highest severity present, [None] for a clean program. *)

val schema_version : int
(** Version of the JSON shape below; bumped on any change to fields,
    span encoding or ordering. *)

val to_json : t -> string
(** [{"schema_version":…,"ok":…,"rules":…,"queries":…,"strata":…,
    "diagnostics":[…]}]. Deterministic: diagnostics are sorted by
    (byte offset, code, severity, message), and spans carry both
    start and end byte offsets. *)

val program_of :
  string ->
  (Oodb.Store.t * Engine.Rule.t list * Syntax.Ast.literal list list) option
(** The compiled rules and embedded queries of a parseable program
    ([None] on a parse error; malformed statements are skipped). For
    callers that feed {!Absint} directly — [check --estimates],
    admission control. *)

val gate :
  ?deny:Diagnostic.severity -> ?card_threshold:int -> string ->
  (t, string) result
(** Refuse program text carrying diagnostics at or above [deny]
    (default [Error]); the error string is the rendered offending
    diagnostics, one per line. The server calls this before loading. *)
