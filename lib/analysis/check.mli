(** The static-analysis driver behind [pathlog check] and the server's
    load gate.

    [analyze] runs the whole pipeline over program text and collects every
    diagnostic instead of stopping at the first problem: parse (PL001),
    per-statement well-formedness (PL010–PL017), signature loading
    (PL018), stratification (PL020), the signature type lint (PL021), and
    the three whole-program analyses of {!Analyses} (PL030–PL041).
    Statements that fail well-formedness are excluded from the later
    stages; a parse error short-circuits everything (there is no
    statement stream to continue with). *)

type t = {
  diagnostics : Diagnostic.t list;
      (** sorted by source position, then severity *)
  n_rules : int;  (** rules (facts included) that passed well-formedness *)
  n_queries : int;  (** embedded queries that passed well-formedness *)
  n_strata : int;  (** 0 when stratification failed *)
}

val analyze : string -> t

val ok : t -> bool
(** No error-severity diagnostics. *)

val worst : t -> Diagnostic.severity option
(** Highest severity present, [None] for a clean program. *)

val to_json : t -> string
(** [{"ok":…,"rules":…,"queries":…,"strata":…,"diagnostics":[…]}] *)

val gate : ?deny:Diagnostic.severity -> string -> (t, string) result
(** Refuse program text carrying diagnostics at or above [deny]
    (default [Error]); the error string is the rendered offending
    diagnostics, one per line. The server calls this before loading. *)
