(** The unified diagnostic type every static check reports through.

    A diagnostic carries a stable code ([PL0xx] — grep-able, documented in
    DESIGN.md), a severity, a human message, and optionally the source span
    of the offending statement and its pretty-printed text. Codes:

    {ul
    {- [PL001] — lexing/parse error.}
    {- [PL010]–[PL017] — well-formedness (Definition 3, head and safety
       conditions): anonymous variable in head / under negation, set-valued
       reference at a scalar position, scalar at a set position, signature
       arrow inside a formula, set-valued head, unsafe head variable,
       unsafe negated variable.}
    {- [PL018] — non-ground signature declaration.}
    {- [PL020] — program is not stratifiable.}
    {- [PL021] — rule head contradicts a signature (static type lint).}
    {- [PL030] — skolem-creation cycle: a rule that creates virtual
       objects can re-trigger itself through what it defines (warning);
       as a hint, virtual-object creation at a variable method position.}
    {- [PL031] — the rule can never fire: a body relation is producible by
       no rule or fact.}
    {- [PL032] — the rule is unreachable from the program's queries
       (hint; only reported for programs with embedded queries).}
    {- [PL040] — definite scalar-functionality conflict between ground
       facts.}
    {- [PL041] — potential scalar-functionality conflict between rules.}} *)

type severity = Hint | Warning | Error

val severity_rank : severity -> int
(** [Hint] 0, [Warning] 1, [Error] 2. *)

val severity_to_string : severity -> string

val severity_of_string : string -> severity option

type t = {
  code : string;  (** stable [PL0xx] code *)
  severity : severity;
  message : string;
  span : Syntax.Token.span option;
      (** source extent of the offending statement, when known *)
  context : string option;
      (** pretty-printed offending statement, when available *)
}

val make :
  ?span:Syntax.Token.span ->
  ?context:string ->
  code:string ->
  severity:severity ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val compare : t -> t -> int
(** Source order, then severity (most severe first), then code. *)

val pp : ?file:string -> Format.formatter -> t -> unit
(** [file:span: severity code: message], context indented below. *)

val to_string : ?file:string -> t -> string

val to_json : t -> string

val json_of_list : t list -> string
(** JSON array of diagnostics, in list order. *)
