open Syntax.Ast
module Ir = Semantics.Ir
module Rule = Engine.Rule
module Stratify = Engine.Stratify
module Obj_set = Oodb.Obj_id.Set

module Rel_set = Set.Make (struct
  type t = Ir.rel

  let compare = Ir.compare_rel
end)

(* Diagnostics show the rule the user wrote: for transformed variants
   (demand guards, magic rules) that is the origin, not the synthesized
   form. *)
let rule_context (r : Rule.t) =
  Format.asprintf "%a" Syntax.Pretty.pp_rule
    (Option.value r.origin ~default:r.source)

(* ------------------------------------------------------------------ *)
(* PL030 — skolem-creation cycles.

   A scalar path [X.m] in a rule head creates a fresh virtual object
   whenever the method application is undefined. Skolemisation is
   functional — the same receiver, method and arguments always locate the
   same virtual object — so creation alone never diverges: the model
   grows without bound only when the fresh objects feed back into the
   domain the creating rule matches receivers against, as in
   [X.succ : nat <- X : nat].

   The analysis therefore starts not from everything the rule defines but
   from the relations the fresh object {e enters}: the class of an
   [o : c] head around a skolem path (the object becomes a member the
   body's [X : c] can match) and the method relations of [o\[k -> v\]]
   heads whose receiver is a skolem path (the object gains properties a
   body can match receivers through). A fresh object that only appears as
   the {e result} of its defining tuple, as a method, or as a class is
   not counted: under the default semantics (hilog_virtual=false)
   variable method and class positions do not enumerate virtual objects —
   this is exactly what makes the paper's generic [tc] rules and the
   [c.list] type constructor terminate, and counting those positions
   would flag them.

   From the entry relations we follow the program's read→define flow
   (growth in a read relation lets the reading rule grow what it
   defines; [R_any]/bare [R_isa] definitions are dropped for the same
   hilog reason, class definitions close upward); the rule is flagged
   when the flow reaches a relation its own body reads. *)

let rec strip_ref = function Paren r -> strip_ref r | r -> r

let is_skolem_path r =
  match strip_ref r with
  | Path { p_sep = Dot; p_meth = Name "self"; p_args = []; _ } -> false
  | Path { p_sep = Dot; _ } -> true
  | Name _ | Int_lit _ | Str_lit _ | Var _ | Paren _
  | Path { p_sep = Dotdot; _ }
  | Regex _ | Filter _ | Isa _ ->
    false

let const_obj store r =
  match strip_ref r with
  | Name n -> Some (Oodb.Store.name store n)
  | Int_lit n -> Some (Oodb.Store.int store n)
  | Str_lit s -> Some (Oodb.Store.str store s)
  | Var _ | Paren _ | Path _ | Regex _ | Filter _ | Isa _ -> None

(* Relations a fresh virtual object created by this head enters in a
   position rule bodies can match it back out of. *)
let skolem_entries store anc head =
  let add_isa acc c =
    Obj_set.fold
      (fun a acc -> Rel_set.add (Ir.R_isa_c a) acc)
      (anc c)
      (Rel_set.add (Ir.R_isa_c c) acc)
  in
  let add acc = function
    | Isa { recv; cls } when is_skolem_path recv -> (
      match const_obj store cls with
      | Some c -> add_isa acc c
      | None -> acc)
    | Filter { f_recv; f_meth; f_rhs; _ } when is_skolem_path f_recv -> (
      match (const_obj store f_meth, f_rhs) with
      | Some m, Rscalar _ -> Rel_set.add (Ir.R_scalar m) acc
      | Some m, (Rset_ref _ | Rset_enum _) -> Rel_set.add (Ir.R_set m) acc
      | Some _, (Rsig_scalar _ | Rsig_set _) | None, _ -> acc)
    | Path { p_recv; p_sep = Dot; p_meth; _ } when is_skolem_path p_recv -> (
      match const_obj store p_meth with
      | Some m -> Rel_set.add (Ir.R_scalar m) acc
      | None -> acc)
    | Name _ | Int_lit _ | Str_lit _ | Var _ | Paren _ | Path _ | Regex _
    | Filter _ | Isa _ ->
      acc
  in
  fold_reference add Rel_set.empty head

let flow_defines anc (r : Rule.t) =
  List.concat_map
    (fun d ->
      match (d : Ir.rel) with
      | R_any | R_isa -> []
      | R_isa_c c ->
        Ir.R_isa_c c
        :: List.map (fun a -> Ir.R_isa_c a) (Obj_set.elements (anc c))
      | R_scalar _ | R_set _ -> [ d ])
    r.defines

(* The creation-cycle core, shared between PL030 (warning, here) and the
   abstract interpreter's PL050/∞-cardinality verdicts ({!Absint}):
   non-fact rules whose fresh skolem objects can flow back into a
   relation their own body reads, paired with that back-edge relation. *)
let creation_cycles store rules =
  let anc = Stratify.static_ancestors rules in
  let nodes =
    List.fold_left
      (fun acc r ->
        List.fold_left
          (fun acc d -> Rel_set.add d acc)
          acc (flow_defines anc r))
      Rel_set.empty rules
  in
  let isa_nodes =
    Rel_set.filter (function Ir.R_isa_c _ -> true | _ -> false) nodes
  in
  (* a variable method position ([R_any]) matches method relations, never
     class membership *)
  let meth_nodes =
    Rel_set.filter
      (function Ir.R_scalar _ | Ir.R_set _ -> true | _ -> false)
      nodes
  in
  let flow_reads (r : Rule.t) =
    List.concat_map
      (fun rd ->
        match (rd : Ir.rel) with
        | R_any -> Rel_set.elements meth_nodes
        | R_isa -> Rel_set.elements isa_nodes
        | R_isa_c _ | R_scalar _ | R_set _ -> [ rd ])
      (r.reads @ r.completion_reads)
    |> List.sort_uniq Ir.compare_rel
  in
  (* successor lists: read -> defines of every rule reading it *)
  let succ = Hashtbl.create 32 in
  List.iter
    (fun r ->
      let ds = flow_defines anc r in
      List.iter
        (fun rd ->
          Hashtbl.replace succ rd
            (ds @ Option.value ~default:[] (Hashtbl.find_opt succ rd)))
        (flow_reads r))
    rules;
  let reachable_from starts =
    let seen = ref starts in
    let rec go = function
      | [] -> ()
      | n :: rest ->
        let next =
          List.filter
            (fun m -> not (Rel_set.mem m !seen))
            (Option.value ~default:[] (Hashtbl.find_opt succ n))
        in
        List.iter (fun m -> seen := Rel_set.add m !seen) next;
        go (next @ rest)
    in
    go (Rel_set.elements starts);
    !seen
  in
  List.filter_map
    (fun (r : Rule.t) ->
      if r.source.body = [] then None
      else
        let entries = skolem_entries store anc r.source.head in
        if Rel_set.is_empty entries then None
        else
          let reach = reachable_from entries in
          Option.map
            (fun back -> (r, back))
            (List.find_opt (fun rd -> Rel_set.mem rd reach) (flow_reads r)))
    rules

let skolem_cycles store rules =
  let cycles = creation_cycles store rules in
  let universe = Oodb.Store.universe store in
  List.concat_map
    (fun (r : Rule.t) ->
      if r.source.body = [] then []
      else begin
        let creates_any =
          List.mem Ir.R_any (Rule.skolem_defines store r.source.head)
        in
        (match List.find_opt (fun (r', _) -> r' == r) cycles with
        | Some (_, back) ->
          [
            Diagnostic.make ?span:r.span ~context:(rule_context r)
              ~code:"PL030" ~severity:Diagnostic.Warning
              "rule creates virtual objects that can re-trigger it through \
               %a; evaluation may not terminate"
              (Ir.pp_rel universe) back;
          ]
        | None -> [])
        @
        if creates_any then
          [
            Diagnostic.make ?span:r.span ~context:(rule_context r)
              ~code:"PL030" ~severity:Diagnostic.Hint
              "rule head creates virtual objects at a variable or computed \
               method position; cycle analysis does not apply (such objects \
               are only enumerated under hilog-virtual mode)";
          ]
        else []
      end)
    rules

(* ------------------------------------------------------------------ *)
(* PL031 / PL032 — dead rules.

   PL031: a rule can never fire when some top-level positive body atom
   reads a relation no rule or fact can ever populate. Computed as a
   producibility fixpoint: facts seed their head relations, a rule whose
   required reads are all producible contributes its defines (class
   definitions close upward through the static hierarchy; a variable
   class or method position in a head makes the corresponding family of
   relations unknown, i.e. producible). Negated and set-inclusion
   sub-queries are not required — an empty relation satisfies them.

   PL032: with embedded queries present, a rule outside the backward
   reachability closure of the query relations (see
   {!Stratify.live_rules}) cannot contribute to any answer. Reported as a
   hint: the rule is not wrong, just dead weight for these queries. *)

type required =
  | Req_isa_c of Oodb.Obj_id.t
  | Req_isa_any
  | Req_rel of Ir.rel

let required_reads (r : Rule.t) =
  List.filter_map
    (fun (a : Ir.atom) ->
      match a with
      | A_isa (_, Const c) -> Some (Req_isa_c c)
      | A_isa (_, V _) -> Some Req_isa_any
      | A_scalar { meth = Const m; _ } -> Some (Req_rel (Ir.R_scalar m))
      | A_member { meth = Const m; _ } -> Some (Req_rel (Ir.R_set m))
      | A_scalar { meth = V _; _ } | A_member { meth = V _; _ } -> None
      (* a regex atom may succeed with some label relations empty (a
         nullable or alternated automaton), so it imposes no conjunctive
         requirement here; unsatisfiable automata get their own warning
         (PL060, {!regex_dead}) *)
      | A_eq _ | A_subset _ | A_neg _ | A_regex _ -> None)
    r.body.atoms

(* The producibility fixpoint shared by PL031 and PL060: which relations
   can some chain of rule firings (seeded by facts) ever populate. *)
type producibility = {
  p_produced : Rel_set.t;
  p_any_isa : bool;
  p_unknown_isa : bool;
  p_unknown_meth : bool;
  p_fired : (int, unit) Hashtbl.t;
}

let req_satisfied p = function
  | Req_isa_c c -> p.p_unknown_isa || Rel_set.mem (Ir.R_isa_c c) p.p_produced
  | Req_isa_any -> p.p_any_isa
  | Req_rel r -> p.p_unknown_meth || Rel_set.mem r p.p_produced

let producibility rules =
  let anc = Stratify.static_ancestors rules in
  let produced = ref Rel_set.empty in
  let any_isa = ref false in
  let unknown_isa = ref false in
  let unknown_meth = ref false in
  let produce d =
    match (d : Ir.rel) with
    | R_isa_c c ->
      any_isa := true;
      produced := Rel_set.add d !produced;
      Obj_set.iter
        (fun a -> produced := Rel_set.add (Ir.R_isa_c a) !produced)
        (anc c)
    | R_isa ->
      any_isa := true;
      unknown_isa := true
    | R_any -> unknown_meth := true
    | R_scalar _ | R_set _ -> produced := Rel_set.add d !produced
  in
  let satisfied = function
    | Req_isa_c c -> !unknown_isa || Rel_set.mem (Ir.R_isa_c c) !produced
    | Req_isa_any -> !any_isa
    | Req_rel r -> !unknown_meth || Rel_set.mem r !produced
  in
  let fired = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Rule.t) ->
        if
          (not (Hashtbl.mem fired r.uid))
          && List.for_all satisfied (required_reads r)
        then begin
          Hashtbl.add fired r.uid ();
          List.iter produce r.defines;
          changed := true
        end)
      rules
  done;
  {
    p_produced = !produced;
    p_any_isa = !any_isa;
    p_unknown_isa = !unknown_isa;
    p_unknown_meth = !unknown_meth;
    p_fired = fired;
  }

let never_fires store rules =
  let p = producibility rules in
  let fired = p.p_fired in
  let satisfied = req_satisfied p in
  let universe = Oodb.Store.universe store in
  let pp_required ppf = function
    | Req_isa_c c ->
      Format.fprintf ppf "membership in class %s"
        (Oodb.Universe.to_string universe c)
    | Req_isa_any -> Format.fprintf ppf "any class membership"
    | Req_rel r -> Ir.pp_rel universe ppf r
  in
  List.filter_map
    (fun (r : Rule.t) ->
      if Hashtbl.mem fired r.uid then None
      else
        let missing =
          List.find_opt (fun q -> not (satisfied q)) (required_reads r)
        in
        Some
          (match missing with
          | Some q ->
            Diagnostic.make ?span:r.span ~context:(rule_context r)
              ~code:"PL031" ~severity:Diagnostic.Warning
              "rule can never fire: its body needs %a, which no rule or \
               fact produces"
              pp_required q
          | None ->
            Diagnostic.make ?span:r.span ~context:(rule_context r)
              ~code:"PL031" ~severity:Diagnostic.Warning
              "rule can never fire"))
    rules

let unreachable_rules store rules ~queries =
  match queries with
  | [] -> []
  | qs ->
    let goals =
      List.concat_map
        (fun lits ->
          Ir.query_rels (Semantics.Flatten.literals store lits).atoms)
        qs
    in
    let live = Stratify.live_rules rules ~goals in
    let live_uids = Hashtbl.create 16 in
    List.iter (fun (r : Rule.t) -> Hashtbl.add live_uids r.uid ()) live;
    List.filter_map
      (fun (r : Rule.t) ->
        if Hashtbl.mem live_uids r.uid || r.source.body = [] then None
        else
          Some
            (Diagnostic.make ?span:r.span ~context:(rule_context r)
               ~code:"PL032" ~severity:Diagnostic.Hint
               "rule is unreachable from the program's queries: nothing it \
                derives feeds a queried relation"))
      rules

let dead_rules store rules ~queries =
  never_fires store rules @ unreachable_rules store rules ~queries

(* ------------------------------------------------------------------ *)
(* PL060 — unsatisfiable regular path expressions.

   A regex atom matches when some word of the automaton's language is a
   chain of edges the model can contain. A transition whose label
   relation no rule or fact ever produces can never be taken, so we
   erase those transitions and ask whether an accepting state is still
   reachable from the start state. When it is not, the language over
   the producible vocabulary is empty and the expression cannot match
   any pair of objects — the atom silently kills its rule or query.
   Nullable automata ([boss*]) keep the empty word and degenerate to
   the identity instead, which still matches, so they are not flagged.

   Top-level positive atoms only, like PL031: a dead regex under
   negation makes the negation trivially true rather than the clause
   dead, which is a different (and much weaker) signal. *)

let automaton_satisfiable p (auto : Ir.automaton) =
  let reached = Array.make auto.Ir.a_nstates false in
  let rec go q =
    if not reached.(q) then begin
      reached.(q) <- true;
      Array.iter
        (fun ((l : Ir.label), q') ->
          if p.p_unknown_meth || Rel_set.mem (Ir.label_rel l) p.p_produced
          then go q')
        auto.Ir.a_trans.(q)
    end
  in
  go auto.Ir.a_start;
  let ok = ref false in
  Array.iteri
    (fun q acc -> if acc && reached.(q) then ok := true)
    auto.Ir.a_accept;
  !ok

let regex_dead store rules ~queries =
  let p = producibility rules in
  let universe = Oodb.Store.universe store in
  let check_atoms ?span ~context atoms =
    List.filter_map
      (fun (a : Ir.atom) ->
        match a with
        | Ir.A_regex x when not (automaton_satisfiable p x.x_auto) ->
          let dead =
            List.filter
              (fun rel -> not (Rel_set.mem rel p.p_produced))
              (Ir.automaton_rels x.x_auto)
          in
          Some
            (Diagnostic.make ?span ~context ~code:"PL060"
               ~severity:Diagnostic.Warning
               "regular path expression can never match: every path from \
                the start state to an accepting state needs %s, which no \
                rule or fact produces"
               (String.concat " or "
                  (List.map
                     (fun rel -> Format.asprintf "%a" (Ir.pp_rel universe) rel)
                     dead)))
        | _ -> None)
      atoms
  in
  List.concat_map
    (fun (r : Rule.t) ->
      check_atoms ?span:r.span ~context:(rule_context r) r.body.atoms)
    rules
  @ List.concat_map
      (fun lits ->
        let q = Semantics.Flatten.literals store lits in
        check_atoms
          ~context:(Syntax.Pretty.statement_to_string (Query lits))
          q.atoms)
      queries

(* ------------------------------------------------------------------ *)
(* PL040 / PL041 — scalar-functionality conflicts.

   Scalar methods interpret partial functions (section 3): two head
   assertions giving the same method application different results make
   the program inconsistent, which today surfaces only at runtime as
   {!Engine.Err.Functional_conflict}. Statically we compare every pair of
   scalar head assignments with the same constant method and ground,
   distinct results:

   - both are ground facts on the same receiver and arguments — the
     conflict is definite, PL040, error;
   - otherwise, if the receivers (and arguments) are not provably
     distinct ground objects, the rules may collide on some receiver at
     runtime — PL041, warning.

   Assignments whose result is a variable or path are skipped: their
   value is unknown statically and flagging them would drown real
   conflicts in noise. *)

type assignment = {
  a_meth : reference;
  a_recv : reference;
  a_args : reference list;
  a_res : reference;
  a_rule : Rule.t;
}

let rec strip = function Paren r -> strip r | r -> r

(* The object a molecule's assertions attach to: [e1 : employee[age ->
   30]\[city -> ny\]] nests the [city] filter around the [age] filter
   around the [Isa], so resolving the receiver means stripping those
   wrappers down to the underlying reference. *)
let rec recv_obj r =
  match r with
  | Paren r | Isa { recv = r; _ } | Filter { f_recv = r; _ } -> recv_obj r
  | Name _ | Int_lit _ | Str_lit _ | Var _ | Path _ | Regex _ -> r

let is_ground r =
  match strip r with
  | Name _ | Int_lit _ | Str_lit _ -> true
  | Var _ | Paren _ | Path _ | Regex _ | Filter _ | Isa _ -> false

let head_assignments (rule : Rule.t) =
  let add acc = function
    | Filter { f_recv; f_meth; f_args; f_rhs = Rscalar res } ->
      let a_meth = strip f_meth in
      if is_ground a_meth then
        {
          a_meth;
          a_recv = recv_obj f_recv;
          a_args = List.map strip f_args;
          a_res = recv_obj res;
          a_rule = rule;
        }
        :: acc
      else acc
    | Name _ | Int_lit _ | Str_lit _ | Var _ | Paren _ | Path _ | Regex _
    | Isa _ | Filter _ ->
      acc
  in
  List.rev (fold_reference add [] rule.source.head)

let scalar_conflicts rules =
  let assignments = List.concat_map head_assignments rules in
  let conflicts = ref [] in
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
      List.iter
        (fun b ->
          if
            a.a_meth = b.a_meth
            && List.length a.a_args = List.length b.a_args
            && is_ground a.a_res && is_ground b.a_res
            && a.a_res <> b.a_res
            (* receivers/arguments provably distinct => no collision *)
            && not (is_ground a.a_recv && is_ground b.a_recv
                    && a.a_recv <> b.a_recv)
            && not
                 (List.exists2
                    (fun x y -> is_ground x && is_ground y && x <> y)
                    a.a_args b.a_args)
          then conflicts := (a, b) :: !conflicts)
        rest;
      pairs rest
  in
  pairs assignments;
  List.rev_map
    (fun (a, b) ->
      let definite =
        a.a_rule.source.body = [] && b.a_rule.source.body = []
        && is_ground a.a_recv && a.a_recv = b.a_recv
        && List.for_all2 (fun x y -> x = y) a.a_args b.a_args
      in
      let other =
        match a.a_rule.span with
        | Some sp -> Format.asprintf " (first assigned at %a)" Syntax.Token.pp_span sp
        | None -> Format.asprintf " (also assigned by %s)" (rule_context a.a_rule)
      in
      if definite then
        Diagnostic.make ?span:b.a_rule.span ~context:(rule_context b.a_rule)
          ~code:"PL040" ~severity:Diagnostic.Error
          "scalar method %a of %a is assigned both %a and %a%s"
          Syntax.Pretty.pp_reference a.a_meth Syntax.Pretty.pp_reference
          a.a_recv Syntax.Pretty.pp_reference a.a_res
          Syntax.Pretty.pp_reference b.a_res other
      else
        Diagnostic.make ?span:b.a_rule.span ~context:(rule_context b.a_rule)
          ~code:"PL041" ~severity:Diagnostic.Warning
          "scalar method %a may be assigned conflicting results %a and \
           %a%s"
          Syntax.Pretty.pp_reference a.a_meth Syntax.Pretty.pp_reference
          a.a_res Syntax.Pretty.pp_reference b.a_res other)
    !conflicts
