(** Cardinality and termination abstract interpretation.

    A worklist fixpoint over the rule dependency graph infers, per
    relation and per rule, an upper bound on tuple counts / firings in
    the abstract domain {!card}: exact counts for ground contributions,
    store-size-parameterised polynomial bounds [c·n^k] for derived
    relations ([n] = universe cardinality), and [Inf] for relations fed
    by a skolem-creation cycle — those grow the universe itself, so no
    bound in terms of the initial [n] is sound.

    Soundness: every inferred bound over-approximates the true fixpoint
    size {e at the final store size} (property-tested). Structural caps
    bound every relation by n^width (scalar methods are functional in
    receiver and arguments, so their width drops the result dimension);
    recursive rules are widened straight to those caps, which also
    bounds the worklist ascent. The results drive three consumers: the
    planner ({!estimator} feeding {!Semantics.Solve.compile_plan}),
    admission control ({!query_cost} behind [serve --admit-cost]), and
    the PL05x diagnostics ({!check}). *)

type card =
  | Exact of int  (** exactly counted ground contribution *)
  | Poly of int * int  (** [Poly (c, k)]: at most c·n^k tuples *)
  | Inf  (** unbounded skolem creation *)

val card_join : card -> card -> card
val card_sum : card -> card -> card
val card_mul : card -> card -> card

val eval_card : n:int -> card -> int
(** Concretise at universe size [n] (saturating; [Inf] gives
    [max_int]). *)

val pp_card : Format.formatter -> card -> unit
val card_to_string : card -> string

type verdict =
  | Finite  (** polynomial in the (final) store size *)
  | Bounded_by_budget
      (** the stratum recursively creates objects without a proven
          feedback cycle: growth is data-dependent and only the engine's
          divergence budget is a guaranteed stop *)
  | Potentially_infinite  (** contains a proven creation cycle *)

val verdict_to_string : verdict -> string

type rule_card = {
  rc_rule : Engine.Rule.t;
  rc_firings : card;  (** bound on body solutions across the whole run *)
  rc_recursive : bool;
  rc_creation_cycle : Semantics.Ir.rel option;
      (** the back-edge relation when the rule sits on a skolem-creation
          cycle ({!Analyses.creation_cycles}) *)
}

type t

val analyze :
  ?strat:Engine.Stratify.t -> Oodb.Store.t -> Engine.Rule.t list -> t
(** Run the fixpoint. [strat] reuses an already-computed stratification
    for the termination verdicts; without it one is computed, and an
    unstratifiable program simply gets no verdicts (the cardinality
    pass itself does not need strata). *)

val rel_card : t -> Semantics.Ir.rel -> card option
val rel_cards : t -> (Semantics.Ir.rel * card) list
val rule_cards : t -> rule_card list

val verdicts : t -> (int * verdict) list
(** termination verdict per stratum, ascending *)

val default_threshold : int
(** PL051 default: 1_000_000 predicted derivations. *)

val check :
  ?strat:Engine.Stratify.t ->
  ?threshold:int ->
  Oodb.Store.t ->
  Engine.Rule.t list ->
  queries:Syntax.Ast.literal list list ->
  Diagnostic.t list
(** The PL05x diagnostics:

    - [PL050] (error): a rule on a skolem-creation cycle is live for one
      of the program's queries — provably unbounded object creation
      reachable from a query.
    - [PL051] (warning): the predicted derivation count at the current
      universe size exceeds [threshold]; attached to the dominating
      rule. Skipped when some rule is already [Inf] (PL050/PL030 cover
      that).
    - [PL052] (hint): the rule body's enumerating literals split into
      more than one variable-connected component — a cross-product join
      no planner order or demand adornment can prune.

    Diagnostics anchor on the rule's source span and pretty-print its
    origin (the user-written rule, for demand-transformed variants). *)

val estimator : t -> Oodb.Store.t -> Semantics.Solve.estimator
(** Bridge to the planner: predicted relation cardinalities evaluated at
    the store's universe size at call time. Each call gets a fresh
    positive epoch (0 is reserved for "no estimates" in the plan-cache
    key). [Inf] and unknown relations answer [None] (heuristic
    fallback). *)

val query_cost :
  t ->
  Oodb.Store.t ->
  Engine.Rule.t list ->
  Syntax.Ast.literal list ->
  [ `Bound of int | `Infinite ]
(** Predicted derivation count needed to answer a query: the summed
    firing bounds of the rules live for its goal relations, evaluated at
    the current universe size. [serve --admit-cost] rejects the query
    when this exceeds the bound (or is [`Infinite]) {e before} any
    evaluation starts. *)

val describe : Oodb.Store.t -> t -> string list
(** Human-readable report: per-relation bounds, per-rule firing bounds
    with recursion/cycle markers, and per-stratum verdicts — the body of
    [pathlog check --estimates]. *)
