(** Live mutation: incremental view maintenance over an evaluated program.

    A [Live.t] wraps an evaluated {!Engine.Program.t} and keeps a support
    index over its minimal model, so batches of asserted and retracted
    facts (and rules) maintain the model without recomputing it:

    - {b Asserts} re-enter the fixpoint as ordinary semi-naive delta
      rounds: relation watermarks are captured before the batch, the new
      extensional tuples are inserted, and only rules reading a grown
      relation re-evaluate, seeded at the watermark.
    - {b Retracts} cascade through the support index. Each derived fact
      carries a count of live derivations. In {e non-recursive} strata
      counting is exact (support cannot be cyclic), and a derivation that
      lost a body fact is first re-validated — replayed against the store
      under its recorded bindings — so an alternative support set (a
      different isa chain) keeps the fact alive. In {e recursive} strata
      counts cannot be trusted (cyclic derivations sustain each other), so
      affected facts are {e over-deleted} and a re-derivation pass (DRed)
      restores whatever still has well-founded support.
    - {b Negation / inclusion}: when the batch can transitively affect a
      relation some rule reads under completion semantics, incremental
      maintenance is unsound in both directions; the batch falls back to
      an honest recompute from the extensional store. Rule retraction
      takes the same path.

    Every committed batch leaves the store at a new epoch (each physical
    insert/tombstone bumps it), so snapshot readers and the epoch-keyed
    query cache invalidate exactly as they do for loads. *)

type t

exception Rejected of string
(** The batch was refused (parse error, ill-formed statement, unknown
    rule, non-extensional retraction, conflict, unstratifiable result) and
    the store was left exactly as before the call. *)

type strategy =
  | Counting  (** pure counting maintenance (delta rounds / cascade) *)
  | Dred  (** counting over-deleted; a re-derivation pass ran *)
  | Recompute  (** full recompute from the extensional store *)

val strategy_name : strategy -> string

type batch_stats = {
  epoch : int;  (** store epoch after the commit *)
  added : string list;  (** net model facts added (rendered, sorted) *)
  removed : string list;  (** net model facts removed (rendered, sorted) *)
  strategy : strategy;
  fixpoint : Engine.Fixpoint.stats option;
      (** the maintenance run, when one was needed *)
}

(** Evaluate the program (idempotent) and build the support index: the
    extensional multiplicities from its fact statements, and one recorded
    derivation per (rule, body solution) from a tracing fixpoint pass. *)
val attach : Engine.Program.t -> t

val program : t -> Engine.Program.t

val store : t -> Oodb.Store.t

(** The current proper (non-fact) rules. *)
val rules : t -> Engine.Rule.t list

(** Assert a batch of statements (facts, rules, signature declarations;
    parsed as ordinary PathLog text). Atomic: on [Rejected] — or any
    evaluation failure such as a scalar conflict — the model is restored
    to its pre-batch state.
    @raise Rejected *)
val assert_batch : t -> string -> batch_stats

(** Retract a batch of statements: fact statements must resolve to
    extensional facts (multiplicity-positive), rule statements must match
    a live rule structurally. Atomic as {!assert_batch}.
    @raise Rejected *)
val retract_batch : t -> string -> batch_stats

(** Install (or clear) the pre-commit log hook, the durability seam:
    called with the batch verb, the post-commit store epoch and the
    batch text after the maintenance run succeeds but {e before}
    {!assert_batch}/{!retract_batch} return. If the hook raises — an
    injected WAL fault, a real disk error — the batch is rolled back
    exactly like any other mid-batch failure and the exception
    propagates: a batch reaches the log iff it reaches the model. *)
val set_commit_hook :
  t -> (retract:bool -> epoch:int -> text:string -> unit) option -> unit

(** The live source: current extensional facts plus current rules, as a
    loadable PathLog program. [Program.of_string] on this text rebuilds an
    isomorphic model — the reference point for equivalence testing and
    chaos replay. A fact appears once per extensional multiplicity
    (asserting twice takes two retracts to undo), so {!attach} on the
    reloaded program restores the multiset exactly — snapshots would
    otherwise flatten the counts and recovery would over-retract. *)
val dump_source : t -> string

(** Support-index audit: every live derivation rests on live facts,
    counts agree with the live derivation multiset, every live stored
    fact has extensional or derived support. Returns violations (empty
    when consistent). *)
val check_support : t -> string list
