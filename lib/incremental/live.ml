(* Live mutation: counting-based incremental view maintenance over the
   tombstoning store, with a DRed (delete/re-derive) fallback for
   recursive strata and honest recomputation behind negation.

   A [Live.t] wraps an evaluated {!Engine.Program.t} and keeps a support
   index over its minimal model: one [deriv] record per (rule, body
   solution) the tracing fixpoint ever enumerated, a per-fact count of
   live derivations, and a per-fact extensional multiplicity. Batches of
   asserted facts re-enter the fixpoint as ordinary semi-naive delta
   rounds (watermarks captured before the batch); batches of retracted
   facts cascade through the support index, re-validating non-recursive
   derivations in place and over-deleting recursive ones. *)

module Ast = Syntax.Ast
module Store = Oodb.Store
module Vec = Oodb.Vec
module Ir = Semantics.Ir
module Program = Engine.Program
module Rule = Engine.Rule
module Stratify = Engine.Stratify
module Fixpoint = Engine.Fixpoint
module Fact = Engine.Fact
module Provenance = Engine.Provenance
module Head = Engine.Head
module Err = Engine.Err

exception Rejected of string

let rejected fmt = Format.kasprintf (fun m -> raise (Rejected m)) fmt

type strategy = Counting | Dred | Recompute

let strategy_name = function
  | Counting -> "counting"
  | Dred -> "dred"
  | Recompute -> "recompute"

type batch_stats = {
  epoch : int;  (** store epoch after the commit *)
  added : string list;  (** net model facts added, rendered, sorted *)
  removed : string list;  (** net model facts removed, rendered, sorted *)
  strategy : strategy;
  fixpoint : Fixpoint.stats option;
      (** the maintenance run, when one was needed *)
}

module Fact_tbl = Hashtbl.Make (struct
  type t = Fact.t

  let equal = Fact.equal
  let hash = Fact.hash
end)

(* One recorded body solution of a rule. [d_heads] are every fact the
   head asserted under it (sub-path skolem facts included); [d_body] the
   ground facts the solution rests on. Dead derivations stay in the
   [uses]/[heads_of] lists (filtered on read) but leave [dedup], so a
   later re-derivation of the same solution re-records. *)
type deriv = {
  d_rule : Rule.t;
  d_key : string;
  d_env : (int * Oodb.Obj_id.t) list;  (* named slots, for replay *)
  d_recursive : bool;
  d_heads : Fact.t list;
  mutable d_body : Fact.t list;
  mutable d_dead : bool;
}

type t = {
  p : Program.t;
  store : Store.t;
  mutable rules : Rule.t list;  (* proper rules only; facts live in [edb] *)
  mutable strat : Stratify.t;
  mutable stratum_of : (int, int) Hashtbl.t;  (* rule uid -> stratum *)
  mutable recursive_strata : bool array;
  mutable recursive_rels : (Ir.rel, unit) Hashtbl.t;
  mutable global_dred : bool;  (* R_any anywhere: per-rel tracking unsafe *)
  counts : int ref Fact_tbl.t;  (* live derivations per fact *)
  edb : int ref Fact_tbl.t;  (* extensional multiplicity per fact *)
  uses : deriv list ref Fact_tbl.t;  (* body fact -> derivations (over-approx) *)
  heads_of : deriv list ref Fact_tbl.t;  (* head fact -> derivations *)
  dedup : (string, deriv) Hashtbl.t;  (* live derivations by key *)
  mutable commit_hook :
    (retract:bool -> epoch:int -> text:string -> unit) option;
      (* durability: called after the maintenance run succeeds, before
         the batch is reported committed; a raise here rolls the batch
         back like any other mid-batch failure *)
}

(* Per-batch working state: the net model delta, the EDB bump log (for
   atomic undo), and the retraction worklist. *)
type ctx = {
  c_added : unit Fact_tbl.t;
  c_removed : unit Fact_tbl.t;
  mutable c_edb_log : (Fact.t * int) list;
  c_queue : Fact.t Queue.t;
  mutable c_rederive : bool;
}

let new_ctx () =
  {
    c_added = Fact_tbl.create 32;
    c_removed = Fact_tbl.create 32;
    c_edb_log = [];
    c_queue = Queue.create ();
    c_rederive = false;
  }

let note_insert ctx f =
  if Fact_tbl.mem ctx.c_removed f then Fact_tbl.remove ctx.c_removed f
  else Fact_tbl.replace ctx.c_added f ()

let note_remove ctx f =
  if Fact_tbl.mem ctx.c_added f then Fact_tbl.remove ctx.c_added f
  else Fact_tbl.replace ctx.c_removed f ()

(* ------------------------------------------------------------------ *)
(* Small table helpers *)

let get_count tbl f =
  match Fact_tbl.find_opt tbl f with Some r -> !r | None -> 0

let bump tbl f d =
  match Fact_tbl.find_opt tbl f with
  | Some r -> r := !r + d
  | None -> Fact_tbl.add tbl f (ref d)

let push_assoc tbl f d =
  match Fact_tbl.find_opt tbl f with
  | Some r -> r := d :: !r
  | None -> Fact_tbl.add tbl f (ref [ d ])

let rel_of = function
  | Fact.F_isa _ -> Ir.R_isa
  | Fact.F_scalar { meth; _ } -> Ir.R_scalar meth
  | Fact.F_set { meth; _ } -> Ir.R_set meth

let norm = Ir.norm_rel

(* ------------------------------------------------------------------ *)
(* Stratification metadata: which strata are recursive (a rule in the
   stratum reads a relation the stratum defines), hence which relations
   need DRed over-deletion instead of counting. R_any anywhere makes the
   per-relation bookkeeping unsound, so it flips a global DRed flag. *)

let recompute_strat_meta t =
  let strat = Stratify.compute t.store t.rules in
  t.strat <- strat;
  let stratum_of = Hashtbl.create 64 in
  List.iter
    (fun ((r : Rule.t), s) -> Hashtbl.replace stratum_of r.uid s)
    strat.rule_stratum;
  t.stratum_of <- stratum_of;
  let n = Array.length strat.strata in
  let recursive = Array.make n false in
  let global = ref false in
  Array.iteri
    (fun i rules ->
      let defines =
        List.concat_map (fun (r : Rule.t) -> List.map norm r.defines) rules
      in
      if List.mem Ir.R_any defines then global := true;
      List.iter
        (fun (r : Rule.t) ->
          if r.reads_any then global := true;
          if List.exists (fun rd -> List.mem (norm rd) defines) r.reads then
            recursive.(i) <- true)
        rules)
    strat.strata;
  t.recursive_strata <- recursive;
  t.global_dred <- !global;
  let rels = Hashtbl.create 16 in
  Array.iteri
    (fun i rules ->
      if recursive.(i) then
        List.iter
          (fun (r : Rule.t) ->
            List.iter (fun d -> Hashtbl.replace rels (norm d) ()) r.defines)
          rules)
    strat.strata;
  t.recursive_rels <- rels

let rel_recursive t r = t.global_dred || Hashtbl.mem t.recursive_rels (norm r)

let deriv_recursive t (rule : Rule.t) =
  t.global_dred
  ||
  match Hashtbl.find_opt t.stratum_of rule.uid with
  | Some s -> s < Array.length t.recursive_strata && t.recursive_strata.(s)
  | None -> true (* unknown rule: be conservative *)

(* ------------------------------------------------------------------ *)
(* Recording derivations (the fixpoint tracer) *)

let key_of (rule : Rule.t) binding =
  let b = Buffer.create 32 in
  Buffer.add_string b (string_of_int rule.uid);
  Array.iter
    (fun o ->
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int o))
    binding;
  Buffer.contents b

let record_deriv t (rule : Rule.t) binding heads =
  if rule.source.body <> [] && heads <> [] then begin
    let key = key_of rule binding in
    if not (Hashtbl.mem t.dedup key) then begin
      let body = Provenance.body_facts t.store rule.body binding in
      let d =
        {
          d_rule = rule;
          d_key = key;
          d_env =
            List.map (fun (_, slot) -> (slot, binding.(slot))) rule.body.named;
          d_recursive = deriv_recursive t rule;
          d_heads = heads;
          d_body = body;
          d_dead = false;
        }
      in
      Hashtbl.add t.dedup key d;
      List.iter
        (fun h ->
          bump t.counts h 1;
          push_assoc t.heads_of h d)
        heads;
      List.iter (fun bf -> push_assoc t.uses bf d) body
    end
  end

(* ------------------------------------------------------------------ *)
(* Store-side fact operations *)

let live_in_store t = function
  | Fact.F_isa (o, c) ->
    Vec.exists
      (fun (e : Store.ientry) ->
        Store.isa_live e
        && Oodb.Obj_id.equal e.i_sub o
        && Oodb.Obj_id.equal e.i_cls c)
      (Store.isa_log t.store)
  | Fact.F_scalar { meth; recv; args; res } -> (
    match Store.scalar_lookup t.store ~meth ~recv ~args with
    | Some r -> Oodb.Obj_id.equal r res
    | None -> false)
  | Fact.F_set { meth; recv; args; res } ->
    Oodb.Obj_id.Set.mem res (Store.set_lookup t.store ~meth ~recv ~args)

(* Tombstone a fact; queue it so the cascade visits its uses. *)
let tombstone t ctx f =
  let ok =
    match f with
    | Fact.F_isa (o, c) -> Store.remove_isa t.store o c
    | Fact.F_scalar { meth; recv; args; res } ->
      Store.remove_scalar t.store ~meth ~recv ~args ~res
    | Fact.F_set { meth; recv; args; res } ->
      Store.remove_set t.store ~meth ~recv ~args ~res
  in
  if ok then begin
    Provenance.forget (Program.provenance t.p) f;
    note_remove ctx f;
    Queue.push f ctx.c_queue
  end;
  ok

let reinsert t f =
  match f with
  | Fact.F_isa (o, c) -> ignore (Store.add_isa t.store o c : Store.isa_insert)
  | Fact.F_scalar { meth; recv; args; res } ->
    ignore (Store.add_scalar t.store ~meth ~recv ~args ~res : Store.scalar_insert)
  | Fact.F_set { meth; recv; args; res } ->
    ignore (Store.add_set t.store ~meth ~recv ~args ~res : Store.set_insert)

(* ------------------------------------------------------------------ *)
(* The deletion cascade.

   Killing a derivation decrements the counts of its heads. A head in a
   non-recursive stratum dies when its count reaches zero with no
   extensional support — counting is exact there, because support cannot
   be cyclic. A head in a recursive stratum is over-deleted outright
   (DRed): cyclic derivations keep each other's counts positive, so the
   count is not trusted; every remaining derivation of the head is killed
   too and the re-derivation phase restores whatever still has
   well-founded support. *)

let rec kill_deriv t ctx (d : deriv) =
  d.d_dead <- true;
  Hashtbl.remove t.dedup d.d_key;
  List.iter
    (fun h ->
      bump t.counts h (-1);
      if d.d_recursive || rel_recursive t (rel_of h) then over_delete t ctx h
      else if get_count t.counts h <= 0 && get_count t.edb h <= 0 then
        ignore (tombstone t ctx h : bool))
    d.d_heads

and over_delete t ctx f =
  if get_count t.edb f <= 0 && tombstone t ctx f then
    match Fact_tbl.find_opt t.heads_of f with
    | None -> ()
    | Some ds ->
      List.iter
        (fun d ->
          if not d.d_dead then begin
            (* deleting despite remaining support: must re-derive *)
            ctx.c_rederive <- true;
            kill_deriv t ctx d
          end)
        !ds

(* A non-recursive derivation that lost a body fact may still hold via an
   alternative support set (a different isa chain, a re-asserted tuple):
   replay the body under the recorded named bindings — any solution
   yields the same heads, because head variables are named — and adopt
   its support if one exists. *)
let revalidate t ctx (d : deriv) =
  let found = ref None in
  Semantics.Solve.iter ~bindings:d.d_env ~limit:1 t.store d.d_rule.body
    ~f:(fun binding ->
      found := Some (Provenance.body_facts t.store d.d_rule.body binding));
  match !found with
  | Some body ->
    d.d_body <- body;
    List.iter (fun bf -> push_assoc t.uses bf d) body
  | None -> kill_deriv t ctx d

let drain t ctx =
  while not (Queue.is_empty ctx.c_queue) do
    let f = Queue.pop ctx.c_queue in
    match Fact_tbl.find_opt t.uses f with
    | None -> ()
    | Some ds ->
      let affected =
        List.fold_left
          (fun acc d ->
            if
              (not d.d_dead)
              && List.exists (Fact.equal f) d.d_body
              && not (List.memq d acc)
            then d :: acc
            else acc)
          [] !ds
      in
      List.iter
        (fun d ->
          if not d.d_dead then
            if d.d_recursive then kill_deriv t ctx d else revalidate t ctx d)
        affected
  done

(* ------------------------------------------------------------------ *)
(* Fixpoint re-entry *)

let full_tracing_run t ctx =
  Fixpoint.run ~config:(Program.config t.p)
    ~provenance:(Program.provenance t.p)
    ~tracer:(fun r b h -> record_deriv t r b h)
    ~on_insert:(note_insert ctx) t.store t.strat

let delta_run t ctx baseline =
  Fixpoint.run ~config:(Program.config t.p)
    ~provenance:(Program.provenance t.p)
    ~tracer:(fun r b h -> record_deriv t r b h)
    ~on_insert:(note_insert ctx) ~from:baseline t.store t.strat

(* Relation watermarks before the batch: raw bucket/log lengths (dead
   entries included — lengths are append-monotone). A method first seen
   during the batch defaults to 0, i.e. its whole bucket is delta. *)
let capture_baseline t =
  let isa = Vec.length (Store.isa_log t.store) in
  let sc = Hashtbl.create 32 in
  let st = Hashtbl.create 32 in
  List.iter
    (fun m -> Hashtbl.replace sc m (Vec.length (Store.scalar_bucket t.store m)))
    (Store.scalar_meths t.store);
  List.iter
    (fun m -> Hashtbl.replace st m (Vec.length (Store.set_bucket t.store m)))
    (Store.set_meths t.store);
  fun (r : Ir.rel) ->
    match r with
    | Ir.R_isa | Ir.R_isa_c _ -> isa
    | Ir.R_scalar m -> Option.value ~default:0 (Hashtbl.find_opt sc m)
    | Ir.R_set m -> Option.value ~default:0 (Hashtbl.find_opt st m)
    | Ir.R_any -> 0

(* Full recompute: tombstone every live fact with no extensional support,
   drop the whole support index, and re-run the tracing fixpoint from the
   extensional store. The fallback whenever counting/DRed would be
   unsound (negation or inclusion over an affected relation, rule
   retraction) and the recovery path after a mid-batch failure. *)
let iter_live_facts t f =
  Store.iter_live_isa t.store (fun sub cls -> f (Fact.F_isa (sub, cls)));
  Store.iter_live_scalar t.store (fun m (e : Store.mentry) ->
      f (Fact.F_scalar { meth = m; recv = e.recv; args = e.args; res = e.res }));
  Store.iter_live_set t.store (fun m (e : Store.mentry) ->
      f (Fact.F_set { meth = m; recv = e.recv; args = e.args; res = e.res }))

let refresh t ctx =
  let garbage = ref [] in
  iter_live_facts t (fun f ->
      if get_count t.edb f <= 0 then garbage := f :: !garbage);
  List.iter (fun f -> ignore (tombstone t ctx f : bool)) !garbage;
  (* extensional facts tombstoned earlier in the batch (or by a failed
     one) but still multiplicity-positive come back *)
  Fact_tbl.iter
    (fun f r -> if !r > 0 && not (live_in_store t f) then reinsert t f)
    t.edb;
  Queue.clear ctx.c_queue;
  ctx.c_rederive <- false;
  Fact_tbl.reset t.counts;
  Fact_tbl.reset t.uses;
  Fact_tbl.reset t.heads_of;
  Hashtbl.reset t.dedup;
  full_tracing_run t ctx

(* ------------------------------------------------------------------ *)
(* The negation gate: find every relation the batch can transitively
   affect; if any rule's completion reads (negation, set inclusion)
   intersect that closure, incremental maintenance is unsound — additions
   can delete and deletions can add — so the batch falls back to
   [refresh]. *)

let gate_triggered ~rules ~seed_rels =
  let affected = Hashtbl.create 16 in
  let any = ref false in
  let add r =
    match norm r with
    | Ir.R_any -> if not !any then (any := true; true) else false
    | r ->
      if Hashtbl.mem affected r then false
      else (Hashtbl.replace affected r (); true)
  in
  List.iter (fun r -> ignore (add r : bool)) seed_rels;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Rule.t) ->
        let hit =
          r.reads_any || !any
          || List.exists (fun rd -> Hashtbl.mem affected (norm rd)) r.reads
        in
        if hit then
          List.iter (fun d -> if add d then changed := true) r.defines)
      rules
  done;
  List.exists
    (fun (r : Rule.t) ->
      r.completion_reads <> []
      && (!any
         || List.exists
              (fun cr -> Hashtbl.mem affected (norm cr))
              r.completion_reads))
    rules

(* ------------------------------------------------------------------ *)
(* Extensional operations *)

let edb_insert t ctx (head : Ast.reference) =
  let rule = Ast.fact head in
  let changes = ref 0 in
  let asserted = ref [] in
  ignore
    (Head.execute
       ~on_insert:(fun f ->
         Provenance.record (Program.provenance t.p) f Provenance.Extensional;
         note_insert ctx f)
       ~on_assert:(fun f -> asserted := f :: !asserted)
       t.store ~env:Semantics.Valuation.Env.empty ~rule ~changes head
      : Oodb.Obj_id.t);
  List.iter
    (fun f ->
      bump t.edb f 1;
      ctx.c_edb_log <- (f, 1) :: ctx.c_edb_log)
    !asserted

let edb_retract t ctx (head : Ast.reference) =
  match Fact.of_reference t.store head with
  | None ->
    rejected "cannot resolve fact %a against the store"
      Syntax.Pretty.pp_reference head
  | Some f ->
    if get_count t.edb f <= 0 then
      rejected "not an extensional fact: %a" Syntax.Pretty.pp_reference head
    else begin
      bump t.edb f (-1);
      ctx.c_edb_log <- (f, -1) :: ctx.c_edb_log;
      if get_count t.edb f = 0 then begin
        let c = get_count t.counts f in
        if c > 0 && not (rel_recursive t (rel_of f)) then
          () (* still derived: counting keeps it *)
        else if c > 0 then over_delete t ctx f
        else ignore (tombstone t ctx f : bool)
      end
    end

(* ------------------------------------------------------------------ *)
(* Batch plumbing *)

let render_facts t tbl =
  let u = Store.universe t.store in
  Fact_tbl.fold
    (fun f () acc -> Format.asprintf "%a" (Fact.pp u) f :: acc)
    tbl []
  |> List.sort compare

let finish t ctx strategy fp =
  {
    epoch = Store.epoch t.store;
    added = render_facts t ctx.c_added;
    removed = render_facts t ctx.c_removed;
    strategy;
    fixpoint = fp;
  }

type saved = { s_rules : Rule.t list; s_strat_dirty : bool }

(* Undo a failed batch: restore the rule set, roll the EDB multiplicities
   back, and recompute — the pre-batch model is the fixpoint of the
   pre-batch extensional store, so [refresh] restores it exactly. *)
let recover t ctx (saved : saved) =
  if saved.s_strat_dirty then begin
    t.rules <- saved.s_rules;
    recompute_strat_meta t
  end;
  List.iter (fun (f, d) -> bump t.edb f (-d)) ctx.c_edb_log;
  (* the restoring refresh must survive transient injected store faults:
     it re-runs from the extensional facts, so retrying from a partially
     refreshed state is safe (tombstoning and reinsertion are idempotent) *)
  let rec go attempts =
    let scrap = new_ctx () in
    match refresh t scrap with
    | (_ : Fixpoint.stats) -> ()
    | exception _ when attempts < 50 -> go (attempts + 1)
  in
  go 0

let fail_of_exn t = function
  | Rejected m -> Rejected m
  | Program.Invalid m -> Rejected m
  | e -> (
    match Err.message t.store e with
    | Some m -> Rejected m
    | None -> e)

let parse_batch src =
  match Syntax.Parser.program_spanned src with
  | spanned -> spanned
  | exception Syntax.Parser.Error (pos, msg) ->
    rejected "%a: %s" Syntax.Token.pp_pos pos msg

(* Split a batch into fact statements, proper rules and signature
   declarations; queries are rejected. *)
let split_batch spanned =
  let facts = ref [] and rules = ref [] and sigs = ref [] in
  List.iter
    (fun ((stmt, span) : Ast.statement * Syntax.Token.span) ->
      match Syntax.Wellformed.signature_of_statement stmt with
      | Some decl -> sigs := decl :: !sigs
      | None -> (
        match stmt with
        | Ast.Query _ -> rejected "queries cannot be asserted or retracted"
        | Ast.Rule r -> (
          match Syntax.Wellformed.check_rule r with
          | Error e ->
            rejected "ill-formed %a: %a" Syntax.Pretty.pp_rule r
              Syntax.Wellformed.pp_error e
          | Ok () ->
            if r.body = [] then facts := (r.head, span) :: !facts
            else rules := (r, span) :: !rules)))
    spanned;
  (List.rev !facts, List.rev !rules, List.rev !sigs)

(* ------------------------------------------------------------------ *)
(* Public API *)

let program t = t.p

let store t = t.store

let rules t = t.rules

let set_commit_hook t hook = t.commit_hook <- hook

(* The pre-commit log hook (durability): fires after the maintenance run
   has succeeded but before the batch is reported committed, inside the
   batch's exception scope — if the hook raises (injected WAL fault,
   disk error), [recover] rolls the whole batch back and the caller sees
   the failure, so a batch is on disk iff it is in the model. *)
let run_commit_hook t ~retract ~text =
  match t.commit_hook with
  | None -> ()
  | Some hook -> hook ~retract ~epoch:(Store.epoch t.store) ~text

let attach p =
  ignore (Program.run p : Fixpoint.stats);
  let t =
    {
      p;
      store = Program.store p;
      rules =
        List.filter (fun (r : Rule.t) -> r.source.body <> []) (Program.rules p);
      strat = { Stratify.strata = [||]; rule_stratum = [] };
      stratum_of = Hashtbl.create 16;
      recursive_strata = [||];
      recursive_rels = Hashtbl.create 16;
      global_dred = false;
      counts = Fact_tbl.create 256;
      edb = Fact_tbl.create 256;
      uses = Fact_tbl.create 256;
      heads_of = Fact_tbl.create 256;
      dedup = Hashtbl.create 256;
      commit_hook = None;
    }
  in
  recompute_strat_meta t;
  (* register the extensional multiplicities: re-execute the program's
     fact statements (idempotent; on_assert fires on duplicates too,
     sub-path skolem facts included) *)
  List.iter
    (fun (r : Rule.t) ->
      if r.source.body = [] then begin
        let changes = ref 0 in
        ignore
          (Head.execute
             ~on_assert:(fun f -> bump t.edb f 1)
             t.store ~env:Semantics.Valuation.Env.empty ~rule:r.source ~changes
             r.source.head
            : Oodb.Obj_id.t)
      end)
    (Program.rules p);
  (* one tracing pass at the fixpoint enumerates every body solution of
     every rule exactly once, populating the support index *)
  let ctx = new_ctx () in
  ignore (full_tracing_run t ctx : Fixpoint.stats);
  t

let assert_batch t src =
  let spanned = parse_batch src in
  let facts, new_rules, sigs = split_batch spanned in
  (* compile and re-stratify BEFORE any store write: an unstratifiable or
     invalid batch must leave no trace *)
  let compiled =
    try List.map (fun (r, span) -> Rule.compile ~span t.store r) new_rules
    with e -> raise (fail_of_exn t e)
  in
  let fact_rules =
    try
      List.map (fun (h, span) -> Rule.compile ~span t.store (Ast.fact h)) facts
    with e -> raise (fail_of_exn t e)
  in
  (if compiled <> [] then
     match Stratify.compute t.store (t.rules @ compiled) with
     | _ -> ()
     | exception e -> raise (fail_of_exn t e));
  List.iter
    (fun decl ->
      try Program.load_signature t.store (Program.signatures t.p) decl
      with e -> raise (fail_of_exn t e))
    sigs;
  let seed_rels =
    List.concat_map (fun (r : Rule.t) -> r.defines) (fact_rules @ compiled)
  in
  let gate = gate_triggered ~rules:(t.rules @ compiled) ~seed_rels in
  let ctx = new_ctx () in
  let saved = { s_rules = t.rules; s_strat_dirty = compiled <> [] } in
  let baseline = capture_baseline t in
  try
    List.iter (fun (h, _) -> edb_insert t ctx h) facts;
    if compiled <> [] then begin
      t.rules <- t.rules @ compiled;
      recompute_strat_meta t
    end;
    let strategy, fp =
      if facts = [] && compiled = [] then (Counting, None)
      else if gate then (Recompute, Some (refresh t ctx))
      else if compiled <> [] then
        (* a new rule needs a full first evaluation *)
        (Recompute, Some (full_tracing_run t ctx))
      else (Counting, Some (delta_run t ctx baseline))
    in
    run_commit_hook t ~retract:false ~text:src;
    finish t ctx strategy fp
  with e ->
    recover t ctx saved;
    raise (fail_of_exn t e)

let retract_batch t src =
  let spanned = parse_batch src in
  let facts, dropped_src, sigs = split_batch spanned in
  if sigs <> [] then
    rejected "signature declarations cannot be retracted";
  (* match retracted rules structurally against the live rule set *)
  let remaining = ref t.rules in
  let dropped = ref [] in
  List.iter
    (fun ((r : Ast.rule), _) ->
      match
        List.partition (fun (lr : Rule.t) -> lr.source = r) !remaining
      with
      | [], _ -> rejected "no such rule: %a" Syntax.Pretty.pp_rule r
      | matches, rest ->
        dropped := matches @ !dropped;
        remaining := rest)
    dropped_src;
  let seed_rels =
    List.concat_map (fun (r : Rule.t) -> r.defines) !dropped
    @ List.filter_map
        (fun (h, _) ->
          Option.map rel_of (Fact.of_reference t.store h))
        facts
  in
  let gate = gate_triggered ~rules:t.rules ~seed_rels in
  let use_refresh = gate || !dropped <> [] in
  let ctx = new_ctx () in
  let saved = { s_rules = t.rules; s_strat_dirty = !dropped <> [] } in
  try
    List.iter (fun (h, _) -> edb_retract t ctx h) facts;
    if !dropped <> [] then begin
      t.rules <- !remaining;
      recompute_strat_meta t
    end;
    let strategy, fp =
      if use_refresh then (Recompute, Some (refresh t ctx))
      else begin
        drain t ctx;
        if ctx.c_rederive then (Dred, Some (full_tracing_run t ctx))
        else (Counting, None)
      end
    in
    run_commit_hook t ~retract:true ~text:src;
    finish t ctx strategy fp
  with e ->
    recover t ctx saved;
    raise (fail_of_exn t e)

(* ------------------------------------------------------------------ *)
(* Introspection *)

(* The live source: extensional facts plus the current rules, as a
   loadable PathLog program. [Program.of_string] on this text rebuilds an
   isomorphic model — the reference point equivalence tests and the chaos
   replay check against. Skolem objects print as the paths that denote
   them and re-skolemise deterministically. *)
let dump_source t =
  let u = Store.universe t.store in
  let b = Buffer.create 1024 in
  Fact_tbl.fold
    (fun f r acc ->
      if !r > 0 then
        (* one statement per extensional multiplicity: [attach] bumps the
           edb count once per fact statement, so a reload preserves how
           many retracts the fact survives — a fact asserted twice and
           dumped once would vanish on the first post-reload retract *)
        let line = Format.asprintf "%a." (Fact.pp u) f in
        List.rev_append (List.init !r (fun _ -> line)) acc
      else acc)
    t.edb []
  |> List.sort compare
  |> List.iter (fun line ->
         Buffer.add_string b line;
         Buffer.add_char b '\n');
  List.iter
    (fun (r : Rule.t) ->
      Buffer.add_string b (Syntax.Pretty.rule_to_string r.source);
      Buffer.add_char b '\n')
    t.rules;
  Buffer.contents b

(* Support-index audit (chaos harness): every live derivation rests on
   live facts, counts agree with the live derivation multiset, and every
   live stored fact is extensional or counted. *)
let check_support t =
  let errs = ref [] in
  let u = Store.universe t.store in
  let say fmt = Format.kasprintf (fun m -> errs := m :: !errs) fmt in
  let recount = Fact_tbl.create 256 in
  Hashtbl.iter
    (fun _ (d : deriv) ->
      if d.d_dead then say "dead derivation still in dedup: %s" d.d_key
      else begin
        List.iter (fun h -> bump recount h 1) d.d_heads;
        List.iter
          (fun bf ->
            if not (live_in_store t bf) then
              say "derivation %s rests on dead fact %a" d.d_key (Fact.pp u) bf)
          d.d_body;
        List.iter
          (fun h ->
            if not (live_in_store t h) then
              say "derivation %s heads dead fact %a" d.d_key (Fact.pp u) h)
          d.d_heads
      end)
    t.dedup;
  Fact_tbl.iter
    (fun f r ->
      let rc = get_count recount f in
      if !r <> rc then
        say "count mismatch for %a: recorded %d, live derivations %d"
          (Fact.pp u) f !r rc)
    t.counts;
  Fact_tbl.iter
    (fun f _ ->
      if not (Fact_tbl.mem t.counts f) then
        say "derivation of %a missing from counts" (Fact.pp u) f)
    recount;
  iter_live_facts t (fun f ->
      if get_count t.edb f <= 0 && get_count t.counts f <= 0 then
        say "live fact %a has neither extensional nor derived support"
          (Fact.pp u) f);
  Fact_tbl.iter
    (fun f r ->
      if !r > 0 && not (live_in_store t f) then
        say "extensional fact %a is not live in the store" (Fact.pp u) f)
    t.edb;
  List.rev !errs
