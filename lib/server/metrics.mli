(** Live server metrics: request counters by verb and outcome, a latency
    histogram, and connection gauges. All operations are thread-safe (one
    internal lock) and cheap enough to sit on the request path. *)

type t

type outcome = Ok | Degraded | Error | Busy | Timeout | Cancelled

val outcome_to_string : outcome -> string

val create : unit -> t

(** Count one finished request and fold its wall-clock latency into the
    histogram. *)
val record : t -> verb:string -> outcome:outcome -> latency_s:float -> unit

val connection_opened : t -> unit

val connection_closed : t -> unit

(** Count one committed mutation batch ([retract] selects the counter). *)
val batch_committed : t -> retract:bool -> unit

val subscription_opened : t -> unit

val subscription_closed : t -> unit

(** Count one [DELTA] frame flushed to a subscriber. *)
val delta_pushed : t -> unit

(** Count one QUERY answered through the demand-driven (magic-sets)
    path. *)
val demand_query : t -> unit

(** Count one request where the demand transform declined (negation,
    inclusion, hilog, or a mutation) and full materialisation ran. *)
val demand_fallback : t -> unit

type snapshot = {
  uptime_s : float;
  connections_active : int;
  connections_total : int;
  requests_total : int;
  cancelled_total : int;  (** requests that ended [ERR CANCELLED] *)
  degraded_total : int;  (** requests answered from a partial model *)
  by_verb_outcome : (string * string * int) list;
      (** (verb, outcome, count), sorted *)
  asserts_total : int;  (** committed ASSERT batches *)
  retracts_total : int;  (** committed RETRACT batches *)
  subscriptions_active : int;  (** live standing queries *)
  deltas_pushed : int;  (** DELTA frames flushed to subscribers *)
  demand_queries_total : int;  (** QUERYs answered demand-driven *)
  demand_fallbacks_total : int;
      (** demand transforms that declined to full materialisation *)
  latency_count : int;
  latency_min_s : float;
  latency_mean_s : float;
  latency_max_s : float;
  latency_p50_s : float;
  latency_p99_s : float;
  latency_buckets : (int * int) list;  (** (upper_bound_us, count) *)
}

val snapshot : t -> snapshot

(** Render a snapshot plus the store statistics as [key value] lines —
    the payload of a [STATS] reply. [cache] adds the query-cache
    counters [(hits, misses, entries)]; [injected_faults] is the fault
    registry's running injection count (0 when disarmed); [magic_facts]
    is the store's live magic-tuple count (0 outside demand mode);
    [regex_plans] and [product_states] are the process-wide regular-path
    counters (automata compiled, (object, state) pairs popped by the
    product join — {!Semantics.Solve.regex_plans_total} and
    {!Semantics.Solve.product_states_expanded}); [durable] adds the
    write-ahead-log counters
    [(wal_appends_total, wal_bytes, snapshots_total, last_recovery_ms)]
    when the server runs with a data directory. *)
val render :
  ?cache:int * int * int -> ?injected_faults:int -> ?magic_facts:int ->
  ?regex_plans:int -> ?product_states:int ->
  ?durable:int * int * int * float ->
  snapshot -> store:Oodb.Store.stats -> string list
