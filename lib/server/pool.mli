(** A bounded worker pool with explicit admission control.

    Jobs go through a fixed-capacity queue served by a fixed set of worker
    threads. When the queue is full, {!submit} refuses immediately instead
    of queueing unboundedly — the caller turns that refusal into a [BUSY]
    reply, which is the server's load-shedding contract: memory use is
    bounded by [capacity] regardless of offered load.

    {!shutdown} drains gracefully: no new admissions, every already-queued
    job still runs, then the workers are joined. *)

type t

(** [Threads] workers share the OCaml runtime lock — right for the
    I/O-bound default, and threads are cheap. [Domains] workers run in
    parallel — right when query evaluation itself is the bottleneck and
    the read path takes no store lock. *)
type backend = Threads | Domains

(** [create ~workers ~capacity ()] starts [workers] workers serving a
    queue that admits at most [capacity] waiting jobs (jobs being
    executed do not count against [capacity]).
    @raise Invalid_argument if [workers < 1] or [capacity < 0] *)
val create : ?backend:backend -> workers:int -> capacity:int -> unit -> t

(** Admit a job, or refuse: [`Rejected] when the queue is at capacity or
    the pool is shutting down. Jobs must not raise — a raising job is
    caught and dropped (the pool survives), but the exception is lost. *)
val submit : t -> (unit -> unit) -> [ `Accepted | `Rejected ]

(** Jobs waiting in the queue right now (diagnostics). *)
val queued : t -> int

val workers : t -> int

val capacity : t -> int

val backend : t -> backend

(** Graceful drain: refuse new jobs, run everything already admitted, join
    the worker threads. Idempotent; safe to call from any thread except a
    pool worker. *)
val shutdown : t -> unit
