type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable pending_deltas : Protocol.delta list;  (* oldest first *)
}

(* Writing into a socket whose peer is gone must surface as EPIPE (mapped
   to [`Eof] below), not kill the process. Set once, lazily, from the
   first connect. *)
let ignore_sigpipe =
  lazy
    (if not Sys.win32 then
       try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
       with Invalid_argument _ | Sys_error _ -> ())

let rec retry_eintr f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let connect (addr : Server.address) =
  Lazy.force ignore_sigpipe;
  let domain, sockaddr =
    match addr with
    | Server.Tcp (host, port) ->
      let inet =
        match Unix.inet_addr_of_string host with
        | a -> a
        | exception Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
      in
      (Unix.PF_INET, Unix.ADDR_INET (inet, port))
    | Server.Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try retry_eintr (fun () -> Unix.connect fd sockaddr)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (* The write side gets its own descriptor: each channel then owns (and
     closes) exactly one fd, so {!close} never double-closes — a
     double-close races fd reuse in other threads and can shoot down an
     unrelated connection. *)
  let fd_out =
    match Unix.dup ~cloexec:true fd with
    | fd_out -> fd_out
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd_out;
    pending_deltas = [];
  }

let close t =
  close_out_noerr t.oc;
  close_in_noerr t.ic

(* Read frames until a reply arrives; DELTA frames pushed by the server
   in the meantime are queued for {!next_delta} instead of dropped. *)
let rec read_reply_queueing t =
  match Protocol.read_frame t.ic with
  | Ok (Protocol.Delta d) ->
    t.pending_deltas <- t.pending_deltas @ [ d ];
    read_reply_queueing t
  | Ok (Protocol.Reply r) -> Ok r
  | Error e -> Error e

(* The reply read sits inside the match too: a peer reset surfaces from
   [input_line] as [Sys_error], not just from the write side. *)
let request t line =
  match
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    read_reply_queueing t
  with
  | r -> r
  | exception (Sys_error _ | End_of_file) -> Error `Eof
  | exception Unix.Unix_error _ -> Error `Eof

(* Jittered exponential backoff against BUSY shedding. The floor of each
   sleep is the server's retry-after hint; on top of that the delay
   doubles per attempt and is scaled by a seeded multiplier in
   [0.5, 1.5), so a herd of rejected clients decorrelates instead of
   re-stampeding in lockstep. Only [BUSY] is retried — errors and
   transport failures are final. *)
let request_with_retry ?(max_attempts = 5) ?(base_delay_s = 0.01)
    ?(max_delay_s = 1.0) ?(seed = 0) t line =
  let state = ref (seed lxor 0x9e3779b9) in
  let jitter () =
    (* xorshift: cheap, deterministic under [seed] *)
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    state := x;
    0.5 +. (float_of_int (x land 0xffff) /. 65536.)
  in
  let rec go attempt =
    match request t line with
    | Ok (Protocol.Busy (retry_after_ms, _)) as r ->
      if attempt >= max_attempts then r
      else begin
        let hint = float_of_int retry_after_ms /. 1000. in
        let backoff =
          base_delay_s *. (2. ** float_of_int (attempt - 1))
        in
        let d = Float.min max_delay_s (Float.max hint backoff) *. jitter () in
        if d > 0. then Thread.delay d;
        go (attempt + 1)
      end
    | r -> r
  in
  go 1

let ping t =
  match request t "PING" with Ok Protocol.Pong -> true | _ -> false

let describe_failure = function
  | Ok (Protocol.Err (code, msg)) ->
    Printf.sprintf "%s: %s" (Protocol.code_to_string code) msg
  | Ok (Protocol.Busy (retry_after_ms, msg)) ->
    Printf.sprintf "BUSY (retry after %dms): %s" retry_after_ms msg
  | Ok Protocol.Pong -> "unexpected PONG"
  | Ok (Protocol.Ok _ | Protocol.Degraded _) -> assert false
  | Error `Eof -> "connection closed"
  | Error (`Malformed msg) -> "malformed reply: " ^ msg

type payload_result = {
  lines : string list;
  degraded : bool;
}

let payload_marked t line =
  match request_with_retry t line with
  | Ok (Protocol.Ok lines) -> Stdlib.Ok { lines; degraded = false }
  | Ok (Protocol.Degraded lines) -> Stdlib.Ok { lines; degraded = true }
  | other -> Stdlib.Error (describe_failure other)

let payload t line =
  Stdlib.Result.map (fun r -> r.lines) (payload_marked t line)

let query t q = payload t ("QUERY " ^ q)

let query_marked t q = payload_marked t ("QUERY " ^ q)

let why t f = payload t ("WHY " ^ f)

let stats t = payload t "STATS"

(* ------------------------------------------------------------------ *)
(* Live mutation and subscriptions                                     *)

type mutation_result = {
  epoch : int;
  strategy : string;
  added : int;
  removed : int;
}

(* requests are one line on the wire; fold a multi-line batch onto one *)
let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let mutation_of_lines lines =
  let int_field k =
    List.find_map
      (fun l ->
        match String.split_on_char ' ' l with
        | [ key; v ] when key = k -> int_of_string_opt v
        | _ -> None)
      lines
  in
  let strategy =
    List.find_map
      (fun l ->
        match String.split_on_char ' ' l with
        | [ "strategy"; s ] -> Some s
        | _ -> None)
      lines
  in
  match (int_field "epoch", strategy, int_field "added", int_field "removed")
  with
  | Some epoch, Some strategy, Some added, Some removed ->
    Stdlib.Ok { epoch; strategy; added; removed }
  | _ -> Stdlib.Error "malformed mutation reply"

let mutate verb t text =
  match payload t (verb ^ " " ^ one_line text) with
  | Stdlib.Ok lines -> mutation_of_lines lines
  | Stdlib.Error e -> Stdlib.Error e

let assert_facts t text = mutate "ASSERT" t text

let retract_facts t text = mutate "RETRACT" t text

type subscription = {
  sub_id : int;
  baseline : string list;
}

let subscribe t q =
  match payload t ("SUBSCRIBE " ^ one_line q) with
  | Stdlib.Error e -> Stdlib.Error e
  | Stdlib.Ok [] -> Stdlib.Error "empty SUBSCRIBE reply"
  | Stdlib.Ok (first :: baseline) -> (
    match String.split_on_char ' ' first with
    | [ "id"; n ] -> (
      match int_of_string_opt n with
      | Some id -> Stdlib.Ok { sub_id = id; baseline }
      | None -> Stdlib.Error ("malformed subscription id " ^ n))
    | _ -> Stdlib.Error ("malformed SUBSCRIBE reply " ^ first))

let next_delta ?timeout_s t =
  match t.pending_deltas with
  | d :: rest ->
    t.pending_deltas <- rest;
    Some d
  | [] -> (
    let ready =
      match timeout_s with
      | None -> true
      | Some s -> (
        match retry_eintr (fun () -> Unix.select [ t.fd ] [] [] s) with
        | [], _, _ -> false
        | _ -> true)
    in
    if not ready then None
    else
      match Protocol.read_frame t.ic with
      | Ok (Protocol.Delta d) -> Some d
      | Ok (Protocol.Reply _) -> None
      | Error _ -> None
      | exception (Sys_error _ | End_of_file) -> None
      | exception Unix.Unix_error _ -> None)
