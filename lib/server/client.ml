type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

let connect (addr : Server.address) =
  let domain, sockaddr =
    match addr with
    | Server.Tcp (host, port) ->
      let inet =
        match Unix.inet_addr_of_string host with
        | a -> a
        | exception Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
      in
      (Unix.PF_INET, Unix.ADDR_INET (inet, port))
    | Server.Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
  }

let close t =
  close_out_noerr t.oc;
  close_in_noerr t.ic

let request t line =
  match
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc
  with
  | () -> Protocol.read_reply t.ic
  | exception (Sys_error _ | End_of_file) -> Error `Eof
  | exception Unix.Unix_error _ -> Error `Eof

let ping t =
  match request t "PING" with Ok Protocol.Pong -> true | _ -> false

let describe_failure = function
  | Ok (Protocol.Err (code, msg)) ->
    Printf.sprintf "%s: %s" (Protocol.code_to_string code) msg
  | Ok (Protocol.Busy msg) -> "BUSY: " ^ msg
  | Ok Protocol.Pong -> "unexpected PONG"
  | Ok (Protocol.Ok _) -> assert false
  | Error `Eof -> "connection closed"
  | Error (`Malformed msg) -> "malformed reply: " ^ msg

let payload t line =
  match request t line with
  | Ok (Protocol.Ok lines) -> Stdlib.Ok lines
  | other -> Stdlib.Error (describe_failure other)

let query t q = payload t ("QUERY " ^ q)

let why t f = payload t ("WHY " ^ f)

let stats t = payload t "STATS"
