(** The wire protocol of the PathLog query server.

    Newline-delimited text, symmetrical and trivially scriptable (think
    redis/memcached): a client sends one request per line, the server
    answers with a one-line header optionally followed by a counted
    payload. Requests never kill the connection — every malformed,
    oversized or failed request gets an [ERR] (or [BUSY]) reply and the
    session continues.

    {2 Requests}

    {v
    PING                 liveness probe
    STATS                server counters + latency histogram
    QUERY <literals>     answer a PathLog query, e.g. QUERY X : employee.color[Z]
    WHY <fact>           proof tree of a ground fact, e.g. WHY e1 : employee
    ASSERT <statements>  add facts/rules, maintained incrementally
    RETRACT <statements> remove extensional facts or rules
    SUBSCRIBE <query>    standing query: push DELTA frames after commits
    QUIT                 polite close
    v}

    {2 Replies}

    {v
    PONG                          to PING
    OK <n>                        followed by exactly <n> payload lines
    DEGRADED <n>                  like OK, but computed against a partial
                                  model (budget-terminated evaluation):
                                  every line is sound, the set may be
                                  incomplete
    BUSY <retry-ms> <message>     load shed: retry after ~<retry-ms> ms
    ERR <CODE> <message>          the request failed; connection stays open
    v}

    Error codes: [PARSE] (query/fact does not parse or is ill-formed),
    [BADREQ] (unknown verb or empty request), [TOOLARGE] (request line
    exceeded the server's byte limit), [TIMEOUT] (the request exceeded
    its deadline — in the admission queue or mid-evaluation),
    [CANCELLED] (the request was cooperatively cancelled, e.g. by server
    shutdown), [ANALYSIS] (an ASSERT/RETRACT batch failed static checks
    at error severity and was rejected atomically), [INTERNAL]
    (unexpected server-side failure).

    {2 Push frames}

    A session that issued [SUBSCRIBE] also receives asynchronous frames:

    {v
    DELTA <id> <n>       followed by exactly <n> signed payload lines:
                         "+ <row>" — an answer that appeared,
                         "- <row>" — an answer that vanished
    v}

    [DELTA] frames are emitted after each committed ASSERT/RETRACT batch
    that changed the subscription's answer set, and may arrive between a
    request and its reply; subscribing clients must read {e frames} (see
    {!read_frame}) rather than bare replies.

    Payload lines are guaranteed single-line (embedded newlines are
    escaped during framing). *)

type request =
  | Ping
  | Stats
  | Query of string
  | Why of string
  | Assert of string
  | Retract of string
  | Subscribe of string
  | Quit

type error_code =
  | Parse
  | Badreq
  | Toolarge
  | Timeout
  | Cancelled
  | Analysis
  | Cost
      (** admission control: the statically predicted derivation count
          exceeds the server's [--admit-cost] bound; the message carries
          the estimate. Sent before any evaluation starts. *)
  | Internal

val code_to_string : error_code -> string

val code_of_string : string -> error_code option

(** Parse one request line (without its trailing newline). *)
val parse_request : string -> (request, error_code * string) result

(** The verb of a request, as it appears on the wire ("PING", "QUERY", ...);
    used as a metrics key. *)
val verb : request -> string

type reply =
  | Pong
  | Ok of string list  (** payload lines *)
  | Degraded of string list
      (** payload lines computed against a sound partial model *)
  | Busy of int * string  (** retry-after hint (milliseconds), message *)
  | Err of error_code * string

(** Render a reply to wire format, every line newline-terminated. Payload
    lines containing newlines are split into further payload lines, so the
    frame is always self-describing. *)
val render_reply : reply -> string

(** One subscription update: the answers that appeared and vanished for
    subscription [sub_id] in the batch that just committed. *)
type delta = {
  sub_id : int;
  appeared : string list;
  vanished : string list;
}

val render_delta : delta -> string

type frame = Reply of reply | Delta of delta

(** Read one frame — a reply or a pushed [DELTA] — from a channel.
    [Error `Eof] on a cleanly closed connection, [Error (`Malformed s)] if
    the peer violates the framing. *)
val read_frame :
  in_channel -> (frame, [ `Eof | `Malformed of string ]) result

(** Read one reply, silently discarding interleaved [DELTA] frames — for
    clients that never subscribe. *)
val read_reply :
  in_channel -> (reply, [ `Eof | `Malformed of string ]) result

(** Read one line of at most [max] bytes (excluding the newline) from a
    channel. On overflow the rest of the line is drained and discarded so
    the stream stays framed, and [`Toolarge] is returned. *)
val input_line_bounded :
  in_channel -> max:int -> (string, [ `Eof | `Toolarge ]) result
