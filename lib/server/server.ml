module Program = Engine.Program

type address =
  | Tcp of string * int
  | Unix_path of string

let pp_address ppf = function
  | Tcp (host, port) -> Format.fprintf ppf "%s:%d" host port
  | Unix_path p -> Format.fprintf ppf "unix:%s" p

type config = {
  workers : int;
  queue_capacity : int;
  max_request_bytes : int;
  deadline_s : float option;
  busy_retry_after_ms : int;
  work_delay_s : float;
  paranoid : bool;
  pool_domains : bool;
  cache_capacity : int;
  demand : bool;
  admit_cost : int option;
  data_dir : string option;
  snapshot_every : int;
  recovery_delay_s : float;
}

let default_config =
  {
    workers = 4;
    queue_capacity = 64;
    max_request_bytes = 64 * 1024;
    deadline_s = None;
    busy_retry_after_ms = 50;
    work_delay_s = 0.;
    paranoid = true;
    pool_domains = false;
    cache_capacity = 1024;
    demand = false;
    admit_cost = None;
    data_dir = None;
    snapshot_every = 64;
    recovery_delay_s = 0.;
  }

(* A one-shot mailbox: the session thread parks on it while a pool worker
   computes the reply, so every socket write stays in the session thread. *)
module Ivar = struct
  type 'a t = {
    m : Mutex.t;
    c : Condition.t;
    mutable v : 'a option;
  }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let fill t v =
    Mutex.lock t.m;
    t.v <- Some v;
    Condition.broadcast t.c;
    Mutex.unlock t.m

  let read t =
    Mutex.lock t.m;
    while t.v = None do
      Condition.wait t.c t.m
    done;
    let v = Option.get t.v in
    Mutex.unlock t.m;
    v
end

(* A standing query. [sub_wlock] is the owning session's write lock: the
   session serialises its own reply writes through it, and the writer
   thread that commits a mutation batch takes it to push DELTA frames —
   so frames never interleave mid-line on the wire. *)
type subscription = {
  sub_id : int;
  sub_query : string;
  sub_fd : Unix.file_descr;  (* owning session, keyed for teardown *)
  sub_oc : out_channel;
  sub_wlock : Mutex.t;
  mutable sub_rows : string list;  (* last pushed answer set, sorted *)
}

type t = {
  program : Program.t;
  config : config;
  admission : (int * Pathlog_analysis.Absint.t) option;
      (* cost bound and the abstract interpretation of the loaded
         program, precomputed at create time when [admit_cost] is set;
         estimates are evaluated at the current universe size per query *)
  listen_fd : Unix.file_descr;
  bound : address;
  pool : Pool.t;
  metrics : Metrics.t;
  qcache : Qcache.t;
  store_lock : Mutex.t;
      (* taken only by writers ({!with_store_write}, i.e. program
         (re)load and ASSERT/RETRACT); the query path pins an epoch
         snapshot instead *)
  write_seq : int Atomic.t;
      (* seqlock over the store: odd while a writer holds [store_lock],
         bumped again on release. Lets the lock-free read path tell a
         benign concurrent write (epoch moved because a writer ran) from
         a genuine read-only violation. *)
  mutable live : Incremental.Live.t option;
      (* incremental-maintenance state, attached lazily by the first
         mutation batch (eagerly by recovery); guarded by [store_lock] *)
  durable : Durable.t option;
      (* the write-ahead log + snapshot manager when [data_dir] is set;
         appends run inside the Live commit hook under [store_lock] *)
  recovering : bool Atomic.t;
      (* true while the WAL suffix is replaying after a restart: every
         request except PING/STATS/QUIT is shed with BUSY, because the
         half-replayed store must not answer queries *)
  demand_lock : Mutex.t;
  mutable demand_materialised : bool;
      (* demand mode only: the full model has been materialised (a
         fallback or a mutation forced it) — every query takes the
         ordinary lock-free read path from here on. Written only under
         [store_lock]; [demand_lock] covers the read-path check. *)
  demand_ready : (string, unit) Hashtbl.t;
      (* demand mode only: query strings whose demanded fragment has
         been fixpointed to completion; guarded by [demand_lock] *)
  subs_lock : Mutex.t;
  subs : (int, subscription) Hashtbl.t;
  mutable next_sub_id : int;
  cancel : bool Atomic.t;
      (* server-wide cancellation token, shared by every in-flight
         request's budget; set at shutdown so runaway evaluations stop at
         their next solver poll instead of pinning workers *)
  stop_m : Mutex.t;
  stop_c : Condition.t;
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
  conns_lock : Mutex.t;
  conns : (Unix.file_descr, Thread.t) Hashtbl.t;
  mutable closed : bool;
}

let address t = t.bound

let metrics t = t.metrics

let config t = t.config

let recovering t = Atomic.get t.recovering

(* Block until recovery (if any) has finished replaying; clients are
   answered BUSY until then. *)
let await_ready t =
  while Atomic.get t.recovering do
    Thread.delay 0.002
  done

let cache_stats t = Qcache.stats t.qcache

let request_stop t =
  Mutex.lock t.stop_m;
  t.stopping <- true;
  Condition.broadcast t.stop_c;
  Mutex.unlock t.stop_m

let await t =
  Mutex.lock t.stop_m;
  while not t.stopping do
    Condition.wait t.stop_c t.stop_m
  done;
  Mutex.unlock t.stop_m

let install_signal_handlers t =
  let handle = Sys.Signal_handle (fun _ -> request_stop t) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle

(* ------------------------------------------------------------------ *)
(* Request evaluation (runs in pool workers, lock-free).               *)

let render_answer t (a : Program.answer) =
  match a.columns with
  | [] -> [ (if a.rows = [] then "no" else "yes") ]
  | columns ->
    let u = Program.universe t.program in
    String.concat "\t" columns
    :: List.map
         (fun row ->
           String.concat "\t" (List.map (Oodb.Universe.to_string u) row))
         a.rows

(* Queries are read-only modulo interning: they may add objects to the
   universe (constants first seen in query text) but never isa edges or
   method tuples. The read path therefore takes no lock at all — it pins
   an epoch snapshot, evaluates against the (append-only) store, and uses
   the pinned epoch twice over: as the result-cache key, and as the
   read-only assertion (an epoch moved during evaluation means either the
   request mutated the store or a writer ran concurrently; both void the
   result for caching, and with [paranoid] the former is reported). Many
   sessions — threads or domains — evaluate in parallel; writers
   serialise through {!with_store_write}. *)
(* Map evaluation exceptions to protocol errors: the shared fault
   boundary of the read-only and demand paths. *)
let reply_of_eval t f =
  match f () with
  | reply -> reply
  | exception Program.Invalid msg -> Protocol.Err (Protocol.Parse, msg)
  | exception Engine.Budget.Exhausted reason ->
    (* killed mid-evaluation: the enumeration was abandoned, nothing
       was computed to completion — a hard per-request error, unlike
       the DEGRADED marker (sound answers over a partial model) *)
    (match reason with
    | Engine.Budget.Cancelled ->
      Protocol.Err (Protocol.Cancelled, "request cancelled")
    | Engine.Budget.Timeout ->
      Protocol.Err
        (Protocol.Timeout, "deadline exceeded during evaluation")
    | Engine.Budget.Derivations | Engine.Budget.Objects ->
      Protocol.Err
        ( Protocol.Timeout,
          "evaluation budget exhausted ("
          ^ Engine.Budget.reason_label reason
          ^ ")" ))
  | exception e -> (
    match Engine.Err.message (Program.store t.program) e with
    | Some msg -> Protocol.Err (Protocol.Parse, msg)
    | None -> Protocol.Err (Protocol.Internal, Printexc.to_string e))

let eval_readonly t ~cache_key f =
  let st = Program.store t.program in
  let seq0 = Atomic.get t.write_seq in
  let snap = Oodb.Store.freeze st in
  let epoch = Oodb.Store.snapshot_epoch snap in
  let cached =
    match cache_key with
    | Some key -> Qcache.find t.qcache ~epoch key
    | None -> None
  in
  match cached with
  | Some reply -> reply
  | None ->
    let reply = reply_of_eval t f in
    if Oodb.Store.snapshot_stale snap then
      (* the epoch moved during evaluation: if the seqlock shows a writer
         was active at any point, that is the benign explanation — the
         reply is still sound for its pinned snapshot, just not cacheable.
         Only a moved epoch with no writer in sight is the invariant
         violation paranoid mode reports. *)
      if seq0 land 1 = 1 || Atomic.get t.write_seq <> seq0 then reply
      else if t.config.paranoid then
        Protocol.Err
          ( Protocol.Internal,
            "invariant violation: the store changed under a read-only \
             request" )
      else reply
    else begin
      (match (cache_key, reply) with
      | Some key, Protocol.Ok _ -> Qcache.add t.qcache ~epoch key reply
      | _ -> ());
      reply
    end

(* A sound answer over a budget-terminated (partial) materialisation is
   surfaced as DEGRADED, not hidden behind OK: the client learns the set
   may be incomplete. Degraded replies are never cached — the marker
   depends on program state, and a reload to a complete model must not
   serve stale markers. *)
let mark_degraded t = function
  | Protocol.Ok lines when Program.degraded t.program <> None ->
    Protocol.Degraded lines
  | reply -> reply

(* Serialised write access to the program's store — program (re)load,
   mutation batches, and first-time demand materialisation. Queries in
   flight keep their pinned epochs; replies computed across a write are
   not cached (the epoch moved), and the cache's old epoch entries
   become unreachable at the next lookup. The seqlock brackets the
   critical section so concurrent readers can recognise the write (see
   {!eval_readonly}). *)
let with_store_write t f =
  Mutex.lock t.store_lock;
  Atomic.incr t.write_seq;
  Fun.protect
    ~finally:(fun () ->
      Atomic.incr t.write_seq;
      Mutex.unlock t.store_lock)
    f

(* ------------------------------------------------------------------ *)
(* Demand mode: first sight of a query materialises only its demanded
   fragment (magic-sets transform, see {!Engine.Demand}) under the
   store write lock; every later request takes the ordinary lock-free
   read path over the accumulated store. *)

let demand_done t q =
  Mutex.lock t.demand_lock;
  let r = t.demand_materialised || Hashtbl.mem t.demand_ready q in
  Mutex.unlock t.demand_lock;
  r

let demand_pending t q = t.config.demand && not (demand_done t q)

(* Transform and fixpoint the fragment [q] demands; called under
   [store_lock]. When the transform declines (negation, inclusion,
   hilog) the engine has fully materialised instead — remember that, so
   the demand path never runs again. A budget-degraded run is not
   marked ready: the next identical query re-demands and can complete
   the fragment. *)
let demand_materialise_locked ?budget t q =
  let ans, report = Program.query_demand_string ?budget t.program q in
  (match report.Program.d_fallback with
  | Some _ ->
    Metrics.demand_fallback t.metrics;
    if Program.degraded t.program = None then begin
      Mutex.lock t.demand_lock;
      t.demand_materialised <- true;
      Mutex.unlock t.demand_lock
    end
  | None ->
    Metrics.demand_query t.metrics;
    if Program.degraded t.program = None then begin
      Mutex.lock t.demand_lock;
      Hashtbl.replace t.demand_ready q ();
      Mutex.unlock t.demand_lock
    end);
  ans

(* A first-time demand query, in a pool worker. The double check under
   the lock covers the race where two sessions demand the same query:
   the loser answers from the store the winner just grew. *)
let eval_demand ?budget t q =
  with_store_write t (fun () ->
      reply_of_eval t (fun () ->
          let ans =
            if demand_done t q then Program.query_string ?budget t.program q
            else demand_materialise_locked ?budget t q
          in
          mark_degraded t (Protocol.Ok (render_answer t ans))))

let eval_request ?budget t req =
  match req with
  | Protocol.Query q when demand_pending t q -> eval_demand ?budget t q
  | Protocol.Query q ->
    eval_readonly t ~cache_key:(Some q) (fun () ->
        mark_degraded t
          (Protocol.Ok (render_answer t (Program.query_string ?budget t.program q))))
  | Protocol.Why q ->
    eval_readonly t ~cache_key:None (fun () ->
        match Program.why_string ?budget t.program q with
        | Some proof ->
          let u = Program.universe t.program in
          let text =
            Format.asprintf "%a" (Engine.Provenance.pp_proof u) proof
          in
          Protocol.Ok (String.split_on_char '\n' text)
        | None -> Protocol.Ok [ "not in the model" ])
  | Protocol.Ping | Protocol.Stats | Protocol.Quit | Protocol.Assert _
  | Protocol.Retract _ | Protocol.Subscribe _ ->
    (* handled inline by the session; unreachable here *)
    Protocol.Err (Protocol.Internal, "verb not pooled")

(* ------------------------------------------------------------------ *)
(* Live mutation and subscriptions                                     *)

let live_of t =
  (* called under [store_lock] only *)
  match t.live with
  | Some l -> l
  | None ->
    let l = Incremental.Live.attach t.program in
    t.live <- Some l;
    l

(* A subscription's answer set, as sorted single-line rows. A query with
   no variables renders as the single row "true" when entailed, so its
   delta stream reads "+ true" / "- true". *)
let subscription_rows t (a : Program.answer) =
  match a.columns with
  | [] -> if a.rows = [] then [] else [ "true" ]
  | _ ->
    let u = Program.universe t.program in
    List.sort compare
      (List.map
         (fun row ->
           String.concat "\t" (List.map (Oodb.Universe.to_string u) row))
         a.rows)

(* Difference of two sorted string lists: (appeared, vanished). *)
let diff_sorted before after =
  let rec go before after appeared vanished =
    match (before, after) with
    | [], [] -> (List.rev appeared, List.rev vanished)
    | [], a :: after -> go [] after (a :: appeared) vanished
    | b :: before, [] -> go before [] appeared (b :: vanished)
    | b :: before', a :: after' ->
      let c = compare b a in
      if c = 0 then go before' after' appeared vanished
      else if c < 0 then go before' after appeared (b :: vanished)
      else go before after' (a :: appeared) vanished
  in
  go before after [] []

let drop_subscription t s =
  Mutex.lock t.subs_lock;
  let present = Hashtbl.mem t.subs s.sub_id in
  Hashtbl.remove t.subs s.sub_id;
  Mutex.unlock t.subs_lock;
  if present then Metrics.subscription_closed t.metrics

(* Re-evaluate every standing query against the just-committed store and
   push a DELTA frame where the answer set changed. Runs inside
   [with_store_write], so the store is stable and frames are ordered
   consistently with commits. A subscriber whose socket is gone is
   dropped here; its session tears down on its own schedule. *)
let push_deltas t =
  let subs =
    Mutex.lock t.subs_lock;
    let l = Hashtbl.fold (fun _ s acc -> s :: acc) t.subs [] in
    Mutex.unlock t.subs_lock;
    List.sort (fun a b -> compare a.sub_id b.sub_id) l
  in
  List.iter
    (fun s ->
      match Program.query_string t.program s.sub_query with
      | exception _ -> ()
      | a ->
        let rows = subscription_rows t a in
        let appeared, vanished = diff_sorted s.sub_rows rows in
        if appeared <> [] || vanished <> [] then begin
          s.sub_rows <- rows;
          let frame =
            Protocol.render_delta
              { Protocol.sub_id = s.sub_id; appeared; vanished }
          in
          Mutex.lock s.sub_wlock;
          (match
             output_string s.sub_oc frame;
             flush s.sub_oc
           with
          | () -> Metrics.delta_pushed t.metrics
          | exception (Sys_error _ | Unix.Unix_error _) ->
            drop_subscription t s);
          Mutex.unlock s.sub_wlock
        end)
    subs

let render_batch_stats (st : Incremental.Live.batch_stats) =
  Protocol.Ok
    [
      Printf.sprintf "epoch %d" st.Incremental.Live.epoch;
      Printf.sprintf "strategy %s"
        (Incremental.Live.strategy_name st.Incremental.Live.strategy);
      Printf.sprintf "added %d" (List.length st.Incremental.Live.added);
      Printf.sprintf "removed %d" (List.length st.Incremental.Live.removed);
    ]

(* ASSERT / RETRACT, inline in the session thread. The batch first passes
   the same static-analysis gate as a program load — error-severity
   diagnostics reject it atomically with ERR ANALYSIS before any store
   write — then commits under the store lock, bumps the counters, and
   fans out DELTA frames while the store is still quiescent. *)
let handle_mutation t ~retract text =
  match Pathlog_analysis.Check.gate text with
  | Error msg -> Protocol.Err (Protocol.Analysis, msg)
  | Ok _ -> (
    with_store_write t (fun () ->
        (* incremental maintenance is defined against the full minimal
           model; with only demanded fragments materialised, a mutation
           first forces full materialisation (counted as a demand
           fallback) and proceeds on the ordinary Live path *)
        if t.config.demand && not t.demand_materialised then begin
          ignore (Program.run t.program);
          Mutex.lock t.demand_lock;
          t.demand_materialised <- true;
          Mutex.unlock t.demand_lock;
          Metrics.demand_fallback t.metrics
        end;
        let live = live_of t in
        let apply =
          if retract then Incremental.Live.retract_batch
          else Incremental.Live.assert_batch
        in
        match apply live text with
        | exception Incremental.Live.Rejected msg ->
          Protocol.Err (Protocol.Badreq, msg)
        | exception Program.Invalid msg -> Protocol.Err (Protocol.Parse, msg)
        | exception Fault.Injected _ ->
          (* an injected store or WAL fault escaped the engine's bounded
             retry; the batch was rolled back (and any partial log frame
             truncated) — shed it like a full queue *)
          Protocol.Busy
            ( t.config.busy_retry_after_ms,
              "transient fault during mutation; retry" )
        | exception Unix.Unix_error (e, fn, _) ->
          (* a real I/O failure in the WAL append: the batch was rolled
             back, nothing reached the log — the client must not see OK *)
          Protocol.Err
            ( Protocol.Internal,
              Printf.sprintf "durable log write failed: %s (%s)"
                (Unix.error_message e) fn )
        | st ->
          Metrics.batch_committed t.metrics ~retract;
          (* snapshot cadence: every [snapshot_every] committed batches,
             cut a snapshot at this epoch boundary while the store is
             quiescent (we still hold the write lock). Failure is
             contained — the WAL has everything *)
          (match t.durable with
          | Some d ->
            ignore
              (Durable.maybe_snapshot d ~every:t.config.snapshot_every
                 ~epoch:st.Incremental.Live.epoch
                 ~source:(fun () -> Incremental.Live.dump_source (live_of t))
                : bool)
          | None -> ());
          push_deltas t;
          render_batch_stats st))

(* SUBSCRIBE, inline in the session thread. Registration runs under the
   store lock so the baseline answer set is atomic with respect to
   commits: every later batch either predates the baseline or produces a
   DELTA. The reply carries the id and the baseline rows. *)
let handle_subscribe t ~fd ~oc ~wlock query =
  with_store_write t (fun () ->
      (* a standing query's fragment must exist before the baseline is
         taken; errors surface through the baseline query below *)
      (if t.config.demand && not (demand_done t query) then
         try ignore (demand_materialise_locked t query) with _ -> ());
      match Program.query_string t.program query with
      | exception Program.Invalid msg -> Protocol.Err (Protocol.Parse, msg)
      | exception e -> (
        match Engine.Err.message (Program.store t.program) e with
        | Some msg -> Protocol.Err (Protocol.Parse, msg)
        | None -> Protocol.Err (Protocol.Internal, Printexc.to_string e))
      | a ->
        let rows = subscription_rows t a in
        Mutex.lock t.subs_lock;
        let id = t.next_sub_id in
        t.next_sub_id <- id + 1;
        Hashtbl.replace t.subs id
          {
            sub_id = id;
            sub_query = query;
            sub_fd = fd;
            sub_oc = oc;
            sub_wlock = wlock;
            sub_rows = rows;
          };
        Mutex.unlock t.subs_lock;
        Metrics.subscription_opened t.metrics;
        Protocol.Ok (Printf.sprintf "id %d" id :: rows))

let unsubscribe_session t fd =
  Mutex.lock t.subs_lock;
  let mine =
    Hashtbl.fold
      (fun id s acc -> if s.sub_fd = fd then id :: acc else acc)
      t.subs []
  in
  List.iter (Hashtbl.remove t.subs) mine;
  Mutex.unlock t.subs_lock;
  List.iter (fun _ -> Metrics.subscription_closed t.metrics) mine

let stats_reply t =
  let c = Qcache.stats t.qcache in
  let durable =
    match t.durable with
    | None -> None
    | Some d ->
      let s = Durable.stats d in
      Some
        ( s.Durable.wal_appends_total,
          s.Durable.wal_bytes,
          s.Durable.snapshots_total,
          s.Durable.last_recovery_ms )
  in
  Protocol.Ok
    (Metrics.render
       (Metrics.snapshot t.metrics)
       ~store:(Oodb.Store.stats (Program.store t.program))
       ~cache:(c.Qcache.hits, c.Qcache.misses, c.Qcache.entries)
       ~injected_faults:(Fault.injected_total ())
       ~magic_facts:
         (Engine.Demand.magic_fact_total (Program.store t.program))
       ~regex_plans:(Atomic.get Semantics.Solve.regex_plans_total)
       ~product_states:(Atomic.get Semantics.Solve.product_states_expanded)
       ?durable)

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)

let outcome_of_reply = function
  | Protocol.Ok _ | Protocol.Pong -> Metrics.Ok
  | Protocol.Degraded _ -> Metrics.Degraded
  | Protocol.Busy _ -> Metrics.Busy
  | Protocol.Err (Protocol.Timeout, _) -> Metrics.Timeout
  | Protocol.Err (Protocol.Cancelled, _) -> Metrics.Cancelled
  | Protocol.Err _ -> Metrics.Error

(* The wire-write fault boundary: [Short] flushes a truncated frame
   before raising, so the peer observes a short read mid-payload, not a
   clean close between frames. The raise tears down this session only —
   the outer handler closes the socket and the server lives on. *)
let write_reply oc reply =
  let s = Protocol.render_reply reply in
  match Fault.ask Fault.Wire_write with
  | None ->
    output_string oc s;
    flush oc
  | Some (Fault.Delay d) ->
    if d > 0. then Thread.delay d;
    output_string oc s;
    flush oc
  | Some Fault.Fail -> raise (Fault.Injected Fault.Wire_write)
  | Some Fault.Short ->
    output_substring oc s 0 (max 1 (String.length s / 2));
    flush oc;
    raise (Fault.Injected Fault.Wire_write)

let busy t msg = Protocol.Busy (t.config.busy_retry_after_ms, msg)

(* Admission control ([--admit-cost]): reject a query whose statically
   predicted derivation count exceeds the bound — before the pool, the
   engine, or any evaluation sees it. A query that fails to parse is let
   through: the normal evaluation path owns the parse error reply. The
   estimate composes with per-request budgets: admission refuses work
   that is predictably too large, budgets stop work that turns out too
   large. *)
let admission_reject t req =
  match (t.admission, req) with
  | Some (bound, absint), Protocol.Query q -> (
    match Program.parse_query q with
    | exception Program.Invalid _ -> None
    | lits -> (
      let store = Program.store t.program in
      match
        Pathlog_analysis.Absint.query_cost absint store
          (Program.rules t.program) lits
      with
      | `Infinite ->
        Some
          (Protocol.Err
             ( Protocol.Cost,
               Printf.sprintf
                 "unbounded: predicted derivations are infinite \
                  (admit-cost bound %d)"
                 bound ))
      | `Bound est when est > bound ->
        Some
          (Protocol.Err
             ( Protocol.Cost,
               Printf.sprintf
                 "%d predicted derivations exceed the admit-cost bound %d"
                 est bound ))
      | `Bound _ -> None))
  | _, _ -> None

let handle_pooled_admitted t req =
  let admitted_at = Unix.gettimeofday () in
  let deadline =
    Option.map (fun d -> admitted_at +. d) t.config.deadline_s
  in
  (* the pool-dispatch fault boundary: an injected failure here models a
     dispatch layer shedding load — the client gets BUSY plus the
     retry-after hint, exactly like a full queue *)
  let dispatch_fault =
    match Fault.ask Fault.Pool_dispatch with
    | None -> false
    | Some (Fault.Delay d) ->
      if d > 0. then Thread.delay d;
      false
    | Some (Fault.Fail | Fault.Short) -> true
  in
  if dispatch_fault then busy t "injected dispatch fault"
  else
    let ivar = Ivar.create () in
    let job () =
      let reply =
        (* the deadline is re-checked after dequeue: a request can expire
           while waiting even though it was admitted in time... *)
        match deadline with
        | Some d when Unix.gettimeofday () > d ->
          Protocol.Err (Protocol.Timeout, "deadline exceeded in queue")
        | _ ->
          if t.config.work_delay_s > 0. then
            Thread.delay t.config.work_delay_s;
          (* ...and enforced during evaluation: the remaining deadline
             becomes an engine budget polled from the solver's
             enumeration loops, together with the server-wide
             cancellation token *)
          let budget =
            Engine.Budget.create ?deadline_at:deadline ~cancel:t.cancel ()
          in
          eval_request ~budget t req
      in
      Ivar.fill ivar reply
    in
    match Pool.submit t.pool job with
    | `Accepted -> Ivar.read ivar
    | `Rejected ->
      busy t
        (Printf.sprintf "admission queue full (%d workers, queue capacity %d)"
           (Pool.workers t.pool) (Pool.capacity t.pool))

let handle_pooled t req =
  match admission_reject t req with
  | Some reply -> reply
  | None -> handle_pooled_admitted t req

let session t fd =
  (* Like the client, the write side runs on a dup of the socket so each
     channel owns one descriptor and teardown closes each exactly once —
     a double-close of a shared fd races descriptor reuse across threads
     and can tear down an unrelated connection. *)
  match Unix.dup ~cloexec:true fd with
  | exception Unix.Unix_error _ ->
    Mutex.lock t.conns_lock;
    Hashtbl.remove t.conns fd;
    Mutex.unlock t.conns_lock;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | fd_out ->
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd_out in
  Metrics.connection_opened t.metrics;
  (* serialises this session's reply writes with DELTA pushes from
     writer threads (see {!subscription}) *)
  let wlock = Mutex.create () in
  let write_reply oc reply =
    Mutex.lock wlock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock wlock)
      (fun () -> write_reply oc reply)
  in
  let finish () =
    unsubscribe_session t fd;
    Metrics.connection_closed t.metrics;
    Mutex.lock t.conns_lock;
    Hashtbl.remove t.conns fd;
    Mutex.unlock t.conns_lock;
    (* a writer thread may be pushing a DELTA right now; wait it out so
       the channel is not closed mid-write *)
    Mutex.lock wlock;
    close_out_noerr oc;
    close_in_noerr ic;
    Mutex.unlock wlock
  in
  let record verb reply started =
    Metrics.record t.metrics ~verb ~outcome:(outcome_of_reply reply)
      ~latency_s:(Unix.gettimeofday () -. started)
  in
  let rec loop () =
    (* the wire-read fault boundary; an injected failure drops this
       connection (caught below), never the server *)
    Fault.hit Fault.Wire_read;
    match Protocol.input_line_bounded ic ~max:t.config.max_request_bytes with
    | Error `Eof -> ()
    | Error `Toolarge ->
      let started = Unix.gettimeofday () in
      let reply =
        Protocol.Err
          ( Protocol.Toolarge,
            Printf.sprintf "request exceeds %d bytes"
              t.config.max_request_bytes )
      in
      write_reply oc reply;
      record "?" reply started;
      loop ()
    | Ok line -> (
      let started = Unix.gettimeofday () in
      match Protocol.parse_request line with
      | Error (code, msg) ->
        let reply = Protocol.Err (code, msg) in
        write_reply oc reply;
        record "?" reply started;
        loop ()
      | Ok req -> (
        let verb = Protocol.verb req in
        match req with
        | Protocol.Quit ->
          write_reply oc (Protocol.Ok []);
          record verb (Protocol.Ok []) started
        | Protocol.Ping ->
          write_reply oc Protocol.Pong;
          record verb Protocol.Pong started;
          loop ()
        | Protocol.Stats ->
          let reply = stats_reply t in
          write_reply oc reply;
          record verb reply started;
          loop ()
        | Protocol.Assert _ | Protocol.Retract _ | Protocol.Subscribe _
        | Protocol.Query _ | Protocol.Why _
          when Atomic.get t.recovering ->
          (* the store is half-replayed: answering from it would expose
             a state that never existed. Shed with the retry-after hint
             — Client.request_with_retry backs off and lands after the
             replay finishes *)
          let reply = busy t "recovering: replaying the write-ahead log" in
          write_reply oc reply;
          record verb reply started;
          loop ()
        | Protocol.Assert text ->
          let reply = handle_mutation t ~retract:false text in
          write_reply oc reply;
          record verb reply started;
          if not t.stopping then loop ()
        | Protocol.Retract text ->
          let reply = handle_mutation t ~retract:true text in
          write_reply oc reply;
          record verb reply started;
          if not t.stopping then loop ()
        | Protocol.Subscribe q ->
          let reply = handle_subscribe t ~fd ~oc ~wlock q in
          write_reply oc reply;
          record verb reply started;
          if not t.stopping then loop ()
        | Protocol.Query _ | Protocol.Why _ ->
          let reply = handle_pooled t req in
          write_reply oc reply;
          record verb reply started;
          if not t.stopping then loop ()))
  in
  (try loop () with
  | Sys_error _ | End_of_file -> ()
  | Unix.Unix_error _ -> ()
  | Fault.Injected _ -> ());
  finish ()

(* ------------------------------------------------------------------ *)
(* Accept loop                                                         *)

let accept_loop t () =
  let rec loop () =
    if t.stopping then ()
    else
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.listen_fd with
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _)
          ->
          loop ()
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
        | fd, _peer ->
          if t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
          else begin
            (* register under the lock, before the session can run: a
               session that dies instantly must find its entry to remove,
               or shutdown would miss (or double-see) the fd *)
            Mutex.lock t.conns_lock;
            let th = Thread.create (session t) fd in
            Hashtbl.replace t.conns fd th;
            Mutex.unlock t.conns_lock;
            loop ()
          end)
  in
  loop ()

(* ------------------------------------------------------------------ *)

let inet_addr_of host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
      failwith ("cannot resolve host " ^ host)
    | { Unix.h_addr_list; _ } -> h_addr_list.(0))

(* Replay the WAL suffix into the freshly attached Live state, then
   install the commit hook so every later batch is logged before its OK.
   Runs under the store write lock in a dedicated thread: the listening
   socket is already up, and sessions shed everything but PING/STATS
   with BUSY until [recovering] clears. *)
let run_recovery t d (recovery : Durable.recovery) =
  let t0 = Unix.gettimeofday () in
  with_store_write t (fun () ->
      if t.config.recovery_delay_s > 0. then
        Thread.delay t.config.recovery_delay_s;
      let live = live_of t in
      if t.config.demand then begin
        (* attaching Live materialised the full model *)
        Mutex.lock t.demand_lock;
        t.demand_materialised <- true;
        Mutex.unlock t.demand_lock
      end;
      List.iter
        (fun (r : Durable.record) ->
          (* each record was gated when first accepted; re-validate with
             the same static-analysis gate so a log doctored (or rotted)
             into something provably broken is refused, not replayed *)
          match Pathlog_analysis.Check.gate r.Durable.text with
          | Error msg ->
            Printf.eprintf
              "pathlog: recovery: WAL record %d refused by the analysis \
               gate, skipped:\n%s\n%!"
              r.Durable.seq msg
          | Ok _ -> (
            let apply =
              if r.Durable.retract then Incremental.Live.retract_batch
              else Incremental.Live.assert_batch
            in
            match apply live r.Durable.text with
            | (_ : Incremental.Live.batch_stats) -> ()
            | exception e ->
              Printf.eprintf
                "pathlog: recovery: WAL record %d failed to replay, \
                 skipped: %s\n%!"
                r.Durable.seq (Printexc.to_string e)))
        recovery.Durable.r_tail;
      Incremental.Live.set_commit_hook live
        (Some
           (fun ~retract ~epoch ~text ->
             ignore (Durable.append d ~retract ~epoch text : int))));
  Durable.set_recovery_ms d ((Unix.gettimeofday () -. t0) *. 1000.);
  Atomic.set t.recovering false

let create ?(config = default_config) ~program addr =
  if Sys.os_type <> "Win32" then
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Durability: open the data directory first — recovery may replace
     the program wholesale with the newest valid snapshot's source
     (re-gated by the static analysis), and the WAL suffix beyond it
     replays through Live once the socket is listening. *)
  let durable, recovery, program =
    match config.data_dir with
    | None -> (None, None, program)
    | Some dir ->
      let d, r = Durable.open_dir dir in
      if r.Durable.r_torn_bytes > 0 then
        Printf.eprintf
          "pathlog: recovery: truncated %d torn byte(s) from the \
           write-ahead log tail\n%!"
          r.Durable.r_torn_bytes;
      let program =
        match r.Durable.r_snapshot with
        | None -> program
        | Some (seq, _epoch, src) -> (
          match Pathlog_analysis.Check.gate src with
          | Ok _ -> Program.of_string ~config:(Program.config program) src
          | Error msg ->
            Durable.close d;
            failwith
              (Printf.sprintf
                 "recovery: snapshot %d refused by the static-analysis \
                  gate:\n%s"
                 seq msg))
      in
      (Some d, Some r, program)
  in
  let listen_fd, bound =
    match addr with
    | Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (inet_addr_of host, port));
         Unix.listen fd 128
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> port
      in
      (fd, Tcp (host, port))
    | Unix_path path ->
      (try if Sys.file_exists path then Unix.unlink path
       with Unix.Unix_error _ | Sys_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 128
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      (fd, Unix_path path)
  in
  let t =
    {
      program;
      config;
      admission =
        (match config.admit_cost with
        | None -> None
        | Some bound ->
          Some
            ( bound,
              Pathlog_analysis.Absint.analyze (Program.store program)
                (Program.rules program) ));
      listen_fd;
      bound;
      pool =
        Pool.create
          ~backend:(if config.pool_domains then Pool.Domains else Pool.Threads)
          ~workers:config.workers ~capacity:config.queue_capacity ();
      metrics = Metrics.create ();
      qcache = Qcache.create ~capacity:config.cache_capacity;
      store_lock = Mutex.create ();
      write_seq = Atomic.make 0;
      live = None;
      durable;
      recovering = Atomic.make (durable <> None);
      demand_lock = Mutex.create ();
      demand_materialised = false;
      demand_ready = Hashtbl.create 16;
      subs_lock = Mutex.create ();
      subs = Hashtbl.create 8;
      next_sub_id = 1;
      cancel = Atomic.make false;
      stop_m = Mutex.create ();
      stop_c = Condition.create ();
      stopping = false;
      accept_thread = None;
      conns_lock = Mutex.create ();
      conns = Hashtbl.create 32;
      closed = false;
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  (match (durable, recovery) with
  | Some d, Some r ->
    (* replay runs behind the listening socket: clients connect at once
       and are shed with BUSY until the tail is in the model *)
    ignore (Thread.create (fun () -> run_recovery t d r) () : Thread.t)
  | _ -> ());
  t

let shutdown t =
  request_stop t;
  let first =
    Mutex.lock t.conns_lock;
    let f = not t.closed in
    t.closed <- true;
    Mutex.unlock t.conns_lock;
    f
  in
  if first then begin
    (* 1. stop accepting *)
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (* 2. cancel in-flight evaluations: every request budget shares this
       token, so runaway queries stop at their next solver poll and are
       answered ERR CANCELLED instead of pinning the drain *)
    Atomic.set t.cancel true;
    (* 3. every admitted request finishes (evaluated or cancelled);
       replies reach their sessions *)
    Pool.shutdown t.pool;
    (* 4. wake sessions parked in read and let them exit *)
    let sessions =
      Mutex.lock t.conns_lock;
      let l = Hashtbl.fold (fun fd th acc -> (fd, th) :: acc) t.conns [] in
      Mutex.unlock t.conns_lock;
      l
    in
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      sessions;
    List.iter (fun (_, th) -> Thread.join th) sessions;
    (* 5. release the listener *)
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* 6. close the durable log — every acknowledged batch was already
       fsync'd at commit time, so this is bookkeeping, not a flush *)
    (match t.durable with
    | Some d -> ( try Durable.close d with Unix.Unix_error _ -> ())
    | None -> ());
    match t.bound with
    | Unix_path path -> (
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Tcp _ -> ()
  end

let serve t =
  await t;
  shutdown t
