module Program = Engine.Program

type address =
  | Tcp of string * int
  | Unix_path of string

let pp_address ppf = function
  | Tcp (host, port) -> Format.fprintf ppf "%s:%d" host port
  | Unix_path p -> Format.fprintf ppf "unix:%s" p

type config = {
  workers : int;
  queue_capacity : int;
  max_request_bytes : int;
  deadline_s : float option;
  busy_retry_after_ms : int;
  work_delay_s : float;
  paranoid : bool;
  pool_domains : bool;
  cache_capacity : int;
}

let default_config =
  {
    workers = 4;
    queue_capacity = 64;
    max_request_bytes = 64 * 1024;
    deadline_s = None;
    busy_retry_after_ms = 50;
    work_delay_s = 0.;
    paranoid = true;
    pool_domains = false;
    cache_capacity = 1024;
  }

(* A one-shot mailbox: the session thread parks on it while a pool worker
   computes the reply, so every socket write stays in the session thread. *)
module Ivar = struct
  type 'a t = {
    m : Mutex.t;
    c : Condition.t;
    mutable v : 'a option;
  }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let fill t v =
    Mutex.lock t.m;
    t.v <- Some v;
    Condition.broadcast t.c;
    Mutex.unlock t.m

  let read t =
    Mutex.lock t.m;
    while t.v = None do
      Condition.wait t.c t.m
    done;
    let v = Option.get t.v in
    Mutex.unlock t.m;
    v
end

type t = {
  program : Program.t;
  config : config;
  listen_fd : Unix.file_descr;
  bound : address;
  pool : Pool.t;
  metrics : Metrics.t;
  qcache : Qcache.t;
  store_lock : Mutex.t;
      (* taken only by writers ({!with_store_write}, i.e. program
         (re)load); the query path pins an epoch snapshot instead *)
  cancel : bool Atomic.t;
      (* server-wide cancellation token, shared by every in-flight
         request's budget; set at shutdown so runaway evaluations stop at
         their next solver poll instead of pinning workers *)
  stop_m : Mutex.t;
  stop_c : Condition.t;
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
  conns_lock : Mutex.t;
  conns : (Unix.file_descr, Thread.t) Hashtbl.t;
  mutable closed : bool;
}

let address t = t.bound

let metrics t = t.metrics

let config t = t.config

let cache_stats t = Qcache.stats t.qcache

let request_stop t =
  Mutex.lock t.stop_m;
  t.stopping <- true;
  Condition.broadcast t.stop_c;
  Mutex.unlock t.stop_m

let await t =
  Mutex.lock t.stop_m;
  while not t.stopping do
    Condition.wait t.stop_c t.stop_m
  done;
  Mutex.unlock t.stop_m

let install_signal_handlers t =
  let handle = Sys.Signal_handle (fun _ -> request_stop t) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle

(* ------------------------------------------------------------------ *)
(* Request evaluation (runs in pool workers, lock-free).               *)

let render_answer t (a : Program.answer) =
  match a.columns with
  | [] -> [ (if a.rows = [] then "no" else "yes") ]
  | columns ->
    let u = Program.universe t.program in
    String.concat "\t" columns
    :: List.map
         (fun row ->
           String.concat "\t" (List.map (Oodb.Universe.to_string u) row))
         a.rows

(* Queries are read-only modulo interning: they may add objects to the
   universe (constants first seen in query text) but never isa edges or
   method tuples. The read path therefore takes no lock at all — it pins
   an epoch snapshot, evaluates against the (append-only) store, and uses
   the pinned epoch twice over: as the result-cache key, and as the
   read-only assertion (an epoch moved during evaluation means either the
   request mutated the store or a writer ran concurrently; both void the
   result for caching, and with [paranoid] the former is reported). Many
   sessions — threads or domains — evaluate in parallel; writers
   serialise through {!with_store_write}. *)
let eval_readonly t ~cache_key f =
  let st = Program.store t.program in
  let snap = Oodb.Store.freeze st in
  let epoch = Oodb.Store.snapshot_epoch snap in
  let cached =
    match cache_key with
    | Some key -> Qcache.find t.qcache ~epoch key
    | None -> None
  in
  match cached with
  | Some reply -> reply
  | None ->
    let reply =
      match f () with
      | reply -> reply
      | exception Program.Invalid msg -> Protocol.Err (Protocol.Parse, msg)
      | exception Engine.Budget.Exhausted reason ->
        (* killed mid-evaluation: the enumeration was abandoned, nothing
           was computed to completion — a hard per-request error, unlike
           the DEGRADED marker (sound answers over a partial model) *)
        (match reason with
        | Engine.Budget.Cancelled ->
          Protocol.Err (Protocol.Cancelled, "request cancelled")
        | Engine.Budget.Timeout ->
          Protocol.Err
            (Protocol.Timeout, "deadline exceeded during evaluation")
        | Engine.Budget.Derivations | Engine.Budget.Objects ->
          Protocol.Err
            ( Protocol.Timeout,
              "evaluation budget exhausted ("
              ^ Engine.Budget.reason_label reason
              ^ ")" ))
      | exception e -> (
        match Engine.Err.message st e with
        | Some msg -> Protocol.Err (Protocol.Parse, msg)
        | None -> Protocol.Err (Protocol.Internal, Printexc.to_string e))
    in
    if Oodb.Store.snapshot_stale snap then
      if t.config.paranoid then
        Protocol.Err
          ( Protocol.Internal,
            "invariant violation: the store changed under a read-only \
             request" )
      else reply
    else begin
      (match (cache_key, reply) with
      | Some key, Protocol.Ok _ -> Qcache.add t.qcache ~epoch key reply
      | _ -> ());
      reply
    end

(* A sound answer over a budget-terminated (partial) materialisation is
   surfaced as DEGRADED, not hidden behind OK: the client learns the set
   may be incomplete. Degraded replies are never cached — the marker
   depends on program state, and a reload to a complete model must not
   serve stale markers. *)
let mark_degraded t = function
  | Protocol.Ok lines when Program.degraded t.program <> None ->
    Protocol.Degraded lines
  | reply -> reply

let eval_request ?budget t req =
  match req with
  | Protocol.Query q ->
    eval_readonly t ~cache_key:(Some q) (fun () ->
        mark_degraded t
          (Protocol.Ok (render_answer t (Program.query_string ?budget t.program q))))
  | Protocol.Why q ->
    eval_readonly t ~cache_key:None (fun () ->
        match Program.why_string ?budget t.program q with
        | Some proof ->
          let u = Program.universe t.program in
          let text =
            Format.asprintf "%a" (Engine.Provenance.pp_proof u) proof
          in
          Protocol.Ok (String.split_on_char '\n' text)
        | None -> Protocol.Ok [ "not in the model" ])
  | Protocol.Ping | Protocol.Stats | Protocol.Quit ->
    (* handled inline by the session; unreachable here *)
    Protocol.Err (Protocol.Internal, "verb not pooled")

(* Serialised write access to the program's store — program (re)load and
   fact assertion. Queries in flight keep their pinned epochs; replies
   computed across a write are not cached (the epoch moved), and the
   cache's old epoch entries become unreachable at the next lookup. *)
let with_store_write t f =
  Mutex.lock t.store_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.store_lock) f

let stats_reply t =
  let c = Qcache.stats t.qcache in
  Protocol.Ok
    (Metrics.render
       (Metrics.snapshot t.metrics)
       ~store:(Oodb.Store.stats (Program.store t.program))
       ~cache:(c.Qcache.hits, c.Qcache.misses, c.Qcache.entries)
       ~injected_faults:(Fault.injected_total ()))

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)

let outcome_of_reply = function
  | Protocol.Ok _ | Protocol.Pong -> Metrics.Ok
  | Protocol.Degraded _ -> Metrics.Degraded
  | Protocol.Busy _ -> Metrics.Busy
  | Protocol.Err (Protocol.Timeout, _) -> Metrics.Timeout
  | Protocol.Err (Protocol.Cancelled, _) -> Metrics.Cancelled
  | Protocol.Err _ -> Metrics.Error

(* The wire-write fault boundary: [Short] flushes a truncated frame
   before raising, so the peer observes a short read mid-payload, not a
   clean close between frames. The raise tears down this session only —
   the outer handler closes the socket and the server lives on. *)
let write_reply oc reply =
  let s = Protocol.render_reply reply in
  match Fault.ask Fault.Wire_write with
  | None ->
    output_string oc s;
    flush oc
  | Some (Fault.Delay d) ->
    if d > 0. then Thread.delay d;
    output_string oc s;
    flush oc
  | Some Fault.Fail -> raise (Fault.Injected Fault.Wire_write)
  | Some Fault.Short ->
    output_substring oc s 0 (max 1 (String.length s / 2));
    flush oc;
    raise (Fault.Injected Fault.Wire_write)

let busy t msg = Protocol.Busy (t.config.busy_retry_after_ms, msg)

let handle_pooled t req =
  let admitted_at = Unix.gettimeofday () in
  let deadline =
    Option.map (fun d -> admitted_at +. d) t.config.deadline_s
  in
  (* the pool-dispatch fault boundary: an injected failure here models a
     dispatch layer shedding load — the client gets BUSY plus the
     retry-after hint, exactly like a full queue *)
  let dispatch_fault =
    match Fault.ask Fault.Pool_dispatch with
    | None -> false
    | Some (Fault.Delay d) ->
      if d > 0. then Thread.delay d;
      false
    | Some (Fault.Fail | Fault.Short) -> true
  in
  if dispatch_fault then busy t "injected dispatch fault"
  else
    let ivar = Ivar.create () in
    let job () =
      let reply =
        (* the deadline is re-checked after dequeue: a request can expire
           while waiting even though it was admitted in time... *)
        match deadline with
        | Some d when Unix.gettimeofday () > d ->
          Protocol.Err (Protocol.Timeout, "deadline exceeded in queue")
        | _ ->
          if t.config.work_delay_s > 0. then
            Thread.delay t.config.work_delay_s;
          (* ...and enforced during evaluation: the remaining deadline
             becomes an engine budget polled from the solver's
             enumeration loops, together with the server-wide
             cancellation token *)
          let budget =
            Engine.Budget.create ?deadline_at:deadline ~cancel:t.cancel ()
          in
          eval_request ~budget t req
      in
      Ivar.fill ivar reply
    in
    match Pool.submit t.pool job with
    | `Accepted -> Ivar.read ivar
    | `Rejected ->
      busy t
        (Printf.sprintf "admission queue full (%d workers, queue capacity %d)"
           (Pool.workers t.pool) (Pool.capacity t.pool))

let session t fd =
  (* Like the client, the write side runs on a dup of the socket so each
     channel owns one descriptor and teardown closes each exactly once —
     a double-close of a shared fd races descriptor reuse across threads
     and can tear down an unrelated connection. *)
  match Unix.dup ~cloexec:true fd with
  | exception Unix.Unix_error _ ->
    Mutex.lock t.conns_lock;
    Hashtbl.remove t.conns fd;
    Mutex.unlock t.conns_lock;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | fd_out ->
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd_out in
  Metrics.connection_opened t.metrics;
  let finish () =
    Metrics.connection_closed t.metrics;
    Mutex.lock t.conns_lock;
    Hashtbl.remove t.conns fd;
    Mutex.unlock t.conns_lock;
    close_out_noerr oc;
    close_in_noerr ic
  in
  let record verb reply started =
    Metrics.record t.metrics ~verb ~outcome:(outcome_of_reply reply)
      ~latency_s:(Unix.gettimeofday () -. started)
  in
  let rec loop () =
    (* the wire-read fault boundary; an injected failure drops this
       connection (caught below), never the server *)
    Fault.hit Fault.Wire_read;
    match Protocol.input_line_bounded ic ~max:t.config.max_request_bytes with
    | Error `Eof -> ()
    | Error `Toolarge ->
      let started = Unix.gettimeofday () in
      let reply =
        Protocol.Err
          ( Protocol.Toolarge,
            Printf.sprintf "request exceeds %d bytes"
              t.config.max_request_bytes )
      in
      write_reply oc reply;
      record "?" reply started;
      loop ()
    | Ok line -> (
      let started = Unix.gettimeofday () in
      match Protocol.parse_request line with
      | Error (code, msg) ->
        let reply = Protocol.Err (code, msg) in
        write_reply oc reply;
        record "?" reply started;
        loop ()
      | Ok req -> (
        let verb = Protocol.verb req in
        match req with
        | Protocol.Quit ->
          write_reply oc (Protocol.Ok []);
          record verb (Protocol.Ok []) started
        | Protocol.Ping ->
          write_reply oc Protocol.Pong;
          record verb Protocol.Pong started;
          loop ()
        | Protocol.Stats ->
          let reply = stats_reply t in
          write_reply oc reply;
          record verb reply started;
          loop ()
        | Protocol.Query _ | Protocol.Why _ ->
          let reply = handle_pooled t req in
          write_reply oc reply;
          record verb reply started;
          if not t.stopping then loop ()))
  in
  (try loop () with
  | Sys_error _ | End_of_file -> ()
  | Unix.Unix_error _ -> ()
  | Fault.Injected _ -> ());
  finish ()

(* ------------------------------------------------------------------ *)
(* Accept loop                                                         *)

let accept_loop t () =
  let rec loop () =
    if t.stopping then ()
    else
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.listen_fd with
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _)
          ->
          loop ()
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
        | fd, _peer ->
          if t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
          else begin
            (* register under the lock, before the session can run: a
               session that dies instantly must find its entry to remove,
               or shutdown would miss (or double-see) the fd *)
            Mutex.lock t.conns_lock;
            let th = Thread.create (session t) fd in
            Hashtbl.replace t.conns fd th;
            Mutex.unlock t.conns_lock;
            loop ()
          end)
  in
  loop ()

(* ------------------------------------------------------------------ *)

let inet_addr_of host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
      failwith ("cannot resolve host " ^ host)
    | { Unix.h_addr_list; _ } -> h_addr_list.(0))

let create ?(config = default_config) ~program addr =
  if Sys.os_type <> "Win32" then
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd, bound =
    match addr with
    | Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (inet_addr_of host, port));
         Unix.listen fd 128
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> port
      in
      (fd, Tcp (host, port))
    | Unix_path path ->
      (try if Sys.file_exists path then Unix.unlink path
       with Unix.Unix_error _ | Sys_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 128
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      (fd, Unix_path path)
  in
  let t =
    {
      program;
      config;
      listen_fd;
      bound;
      pool =
        Pool.create
          ~backend:(if config.pool_domains then Pool.Domains else Pool.Threads)
          ~workers:config.workers ~capacity:config.queue_capacity ();
      metrics = Metrics.create ();
      qcache = Qcache.create ~capacity:config.cache_capacity;
      store_lock = Mutex.create ();
      cancel = Atomic.make false;
      stop_m = Mutex.create ();
      stop_c = Condition.create ();
      stopping = false;
      accept_thread = None;
      conns_lock = Mutex.create ();
      conns = Hashtbl.create 32;
      closed = false;
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let shutdown t =
  request_stop t;
  let first =
    Mutex.lock t.conns_lock;
    let f = not t.closed in
    t.closed <- true;
    Mutex.unlock t.conns_lock;
    f
  in
  if first then begin
    (* 1. stop accepting *)
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (* 2. cancel in-flight evaluations: every request budget shares this
       token, so runaway queries stop at their next solver poll and are
       answered ERR CANCELLED instead of pinning the drain *)
    Atomic.set t.cancel true;
    (* 3. every admitted request finishes (evaluated or cancelled);
       replies reach their sessions *)
    Pool.shutdown t.pool;
    (* 4. wake sessions parked in read and let them exit *)
    let sessions =
      Mutex.lock t.conns_lock;
      let l = Hashtbl.fold (fun fd th acc -> (fd, th) :: acc) t.conns [] in
      Mutex.unlock t.conns_lock;
      l
    in
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      sessions;
    List.iter (fun (_, th) -> Thread.join th) sessions;
    (* 5. release the listener *)
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    match t.bound with
    | Unix_path path -> (
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Tcp _ -> ()
  end

let serve t =
  await t;
  shutdown t
