type outcome = Ok | Degraded | Error | Busy | Timeout | Cancelled

let outcome_to_string = function
  | Ok -> "ok"
  | Degraded -> "degraded"
  | Error -> "error"
  | Busy -> "busy"
  | Timeout -> "timeout"
  | Cancelled -> "cancelled"

type t = {
  lock : Mutex.t;
  started_at : float;
  counters : (string * string, int ref) Hashtbl.t;
  latency : Histogram.t;
  mutable requests_total : int;
  mutable cancelled_total : int;
  mutable degraded_total : int;
  mutable connections_active : int;
  mutable connections_total : int;
  mutable asserts_total : int;
  mutable retracts_total : int;
  mutable subscriptions_active : int;
  mutable deltas_pushed : int;
  mutable demand_queries_total : int;
  mutable demand_fallbacks_total : int;
}

let create () =
  {
    lock = Mutex.create ();
    started_at = Unix.gettimeofday ();
    counters = Hashtbl.create 16;
    latency = Histogram.create ();
    requests_total = 0;
    cancelled_total = 0;
    degraded_total = 0;
    connections_active = 0;
    connections_total = 0;
    asserts_total = 0;
    retracts_total = 0;
    subscriptions_active = 0;
    deltas_pushed = 0;
    demand_queries_total = 0;
    demand_fallbacks_total = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record t ~verb ~outcome ~latency_s =
  with_lock t (fun () ->
      let key = (verb, outcome_to_string outcome) in
      (match Hashtbl.find_opt t.counters key with
      | Some r -> incr r
      | None -> Hashtbl.add t.counters key (ref 1));
      t.requests_total <- t.requests_total + 1;
      (match outcome with
      | Cancelled -> t.cancelled_total <- t.cancelled_total + 1
      | Degraded -> t.degraded_total <- t.degraded_total + 1
      | Ok | Error | Busy | Timeout -> ());
      Histogram.observe t.latency latency_s)

let connection_opened t =
  with_lock t (fun () ->
      t.connections_active <- t.connections_active + 1;
      t.connections_total <- t.connections_total + 1)

let connection_closed t =
  with_lock t (fun () -> t.connections_active <- t.connections_active - 1)

let batch_committed t ~retract =
  with_lock t (fun () ->
      if retract then t.retracts_total <- t.retracts_total + 1
      else t.asserts_total <- t.asserts_total + 1)

let subscription_opened t =
  with_lock t (fun () ->
      t.subscriptions_active <- t.subscriptions_active + 1)

let subscription_closed t =
  with_lock t (fun () ->
      t.subscriptions_active <- t.subscriptions_active - 1)

let delta_pushed t =
  with_lock t (fun () -> t.deltas_pushed <- t.deltas_pushed + 1)

let demand_query t =
  with_lock t (fun () ->
      t.demand_queries_total <- t.demand_queries_total + 1)

let demand_fallback t =
  with_lock t (fun () ->
      t.demand_fallbacks_total <- t.demand_fallbacks_total + 1)

type snapshot = {
  uptime_s : float;
  connections_active : int;
  connections_total : int;
  requests_total : int;
  cancelled_total : int;
  degraded_total : int;
  by_verb_outcome : (string * string * int) list;
  asserts_total : int;
  retracts_total : int;
  subscriptions_active : int;
  deltas_pushed : int;
  demand_queries_total : int;
  demand_fallbacks_total : int;
  latency_count : int;
  latency_min_s : float;
  latency_mean_s : float;
  latency_max_s : float;
  latency_p50_s : float;
  latency_p99_s : float;
  latency_buckets : (int * int) list;
}

let snapshot t =
  with_lock t (fun () ->
      {
        uptime_s = Unix.gettimeofday () -. t.started_at;
        connections_active = t.connections_active;
        connections_total = t.connections_total;
        requests_total = t.requests_total;
        cancelled_total = t.cancelled_total;
        degraded_total = t.degraded_total;
        by_verb_outcome =
          Hashtbl.fold
            (fun (v, o) r acc -> (v, o, !r) :: acc)
            t.counters []
          |> List.sort compare;
        asserts_total = t.asserts_total;
        retracts_total = t.retracts_total;
        subscriptions_active = t.subscriptions_active;
        deltas_pushed = t.deltas_pushed;
        demand_queries_total = t.demand_queries_total;
        demand_fallbacks_total = t.demand_fallbacks_total;
        latency_count = Histogram.count t.latency;
        latency_min_s = Histogram.min_s t.latency;
        latency_mean_s = Histogram.mean_s t.latency;
        latency_max_s = Histogram.max_s t.latency;
        latency_p50_s = Histogram.percentile t.latency 0.5;
        latency_p99_s = Histogram.percentile t.latency 0.99;
        latency_buckets = Histogram.buckets t.latency;
      })

let us s = int_of_float (ceil (s *. 1e6))

let render ?cache ?(injected_faults = 0) ?(magic_facts = 0)
    ?(regex_plans = 0) ?(product_states = 0) ?durable snap ~store =
  let { Oodb.Store.objects; isa_edges; scalar_tuples; set_tuples } = store in
  [
    Printf.sprintf "uptime_s %.3f" snap.uptime_s;
    Printf.sprintf "connections_active %d" snap.connections_active;
    Printf.sprintf "connections_total %d" snap.connections_total;
    Printf.sprintf "requests_total %d" snap.requests_total;
    Printf.sprintf "cancelled_total %d" snap.cancelled_total;
    Printf.sprintf "degraded_total %d" snap.degraded_total;
    Printf.sprintf "injected_faults %d" injected_faults;
    Printf.sprintf "asserts_total %d" snap.asserts_total;
    Printf.sprintf "retracts_total %d" snap.retracts_total;
    Printf.sprintf "subscriptions_active %d" snap.subscriptions_active;
    Printf.sprintf "deltas_pushed %d" snap.deltas_pushed;
    Printf.sprintf "demand_queries_total %d" snap.demand_queries_total;
    Printf.sprintf "demand_fallbacks_total %d" snap.demand_fallbacks_total;
    Printf.sprintf "magic_facts %d" magic_facts;
    Printf.sprintf "regex_plans_total %d" regex_plans;
    Printf.sprintf "product_states_expanded %d" product_states;
  ]
  @ List.map
      (fun (v, o, n) -> Printf.sprintf "requests %s %s %d" v o n)
      snap.by_verb_outcome
  @ [
      Printf.sprintf "latency_count %d" snap.latency_count;
      Printf.sprintf "latency_min_us %d" (us snap.latency_min_s);
      Printf.sprintf "latency_mean_us %d" (us snap.latency_mean_s);
      Printf.sprintf "latency_max_us %d" (us snap.latency_max_s);
      Printf.sprintf "latency_p50_us %d" (us snap.latency_p50_s);
      Printf.sprintf "latency_p99_us %d" (us snap.latency_p99_s);
    ]
  @ List.map
      (fun (bound, n) ->
        if bound = max_int then Printf.sprintf "latency_le inf %d" n
        else Printf.sprintf "latency_le %dus %d" bound n)
      snap.latency_buckets
  @ [
      Printf.sprintf "store_objects %d" objects;
      Printf.sprintf "store_isa_edges %d" isa_edges;
      Printf.sprintf "store_scalar_tuples %d" scalar_tuples;
      Printf.sprintf "store_set_tuples %d" set_tuples;
    ]
  @ (match cache with
    | None -> []
    | Some (hits, misses, entries) ->
      [
        Printf.sprintf "cache_hits %d" hits;
        Printf.sprintf "cache_misses %d" misses;
        Printf.sprintf "cache_entries %d" entries;
      ])
  @
  match durable with
  | None -> []
  | Some (appends, bytes, snapshots, recovery_ms) ->
    [
      Printf.sprintf "wal_appends_total %d" appends;
      Printf.sprintf "wal_bytes %d" bytes;
      Printf.sprintf "snapshots_total %d" snapshots;
      Printf.sprintf "last_recovery_ms %.3f" recovery_ms;
    ]
