type entry = { epoch : int; reply : Protocol.reply }

type t = {
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Qcache.create: capacity < 1";
  { lock = Mutex.create (); table = Hashtbl.create 64; capacity; hits = 0;
    misses = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t ~epoch key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e when e.epoch = epoch ->
        t.hits <- t.hits + 1;
        Some e.reply
      | Some _ ->
        Hashtbl.remove t.table key;
        t.misses <- t.misses + 1;
        None
      | None ->
        t.misses <- t.misses + 1;
        None)

let add t ~epoch key reply =
  with_lock t (fun () ->
      if Hashtbl.length t.table >= t.capacity then Hashtbl.reset t.table;
      Hashtbl.replace t.table key { epoch; reply })

type stats = { hits : int; misses : int; entries : int }

let stats t =
  with_lock t (fun () ->
      { hits = t.hits; misses = t.misses; entries = Hashtbl.length t.table })
