type request =
  | Ping
  | Stats
  | Query of string
  | Why of string
  | Assert of string
  | Retract of string
  | Subscribe of string
  | Quit

type error_code =
  | Parse
  | Badreq
  | Toolarge
  | Timeout
  | Cancelled
  | Analysis
  | Cost
  | Internal

let code_to_string = function
  | Parse -> "PARSE"
  | Badreq -> "BADREQ"
  | Toolarge -> "TOOLARGE"
  | Timeout -> "TIMEOUT"
  | Cancelled -> "CANCELLED"
  | Analysis -> "ANALYSIS"
  | Cost -> "COST"
  | Internal -> "INTERNAL"

let code_of_string = function
  | "PARSE" -> Some Parse
  | "BADREQ" -> Some Badreq
  | "TOOLARGE" -> Some Toolarge
  | "TIMEOUT" -> Some Timeout
  | "CANCELLED" -> Some Cancelled
  | "ANALYSIS" -> Some Analysis
  | "COST" -> Some Cost
  | "INTERNAL" -> Some Internal
  | _ -> None

let verb = function
  | Ping -> "PING"
  | Stats -> "STATS"
  | Query _ -> "QUERY"
  | Why _ -> "WHY"
  | Assert _ -> "ASSERT"
  | Retract _ -> "RETRACT"
  | Subscribe _ -> "SUBSCRIBE"
  | Quit -> "QUIT"

(* Split "VERB rest" on the first run of blanks; the verb is
   case-insensitive, the argument is passed through verbatim. *)
let split_verb line =
  let n = String.length line in
  let rec scan i = if i < n && line.[i] <> ' ' && line.[i] <> '\t' then scan (i + 1) else i in
  let stop = scan 0 in
  let rec skip i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then skip (i + 1) else i in
  let rest_at = skip stop in
  (String.uppercase_ascii (String.sub line 0 stop),
   String.sub line rest_at (n - rest_at))

let parse_request line =
  let line = String.trim line in
  if line = "" then Stdlib.Error (Badreq, "empty request")
  else
    let v, arg = split_verb line in
    match v with
    | "PING" -> Stdlib.Ok Ping
    | "STATS" -> Stdlib.Ok Stats
    | "QUIT" -> Stdlib.Ok Quit
    | "QUERY" ->
      if arg = "" then Stdlib.Error (Badreq, "QUERY needs a query")
      else Stdlib.Ok (Query arg)
    | "WHY" ->
      if arg = "" then Stdlib.Error (Badreq, "WHY needs a fact")
      else Stdlib.Ok (Why arg)
    | "ASSERT" ->
      if arg = "" then Stdlib.Error (Badreq, "ASSERT needs statements")
      else Stdlib.Ok (Assert arg)
    | "RETRACT" ->
      if arg = "" then Stdlib.Error (Badreq, "RETRACT needs statements")
      else Stdlib.Ok (Retract arg)
    | "SUBSCRIBE" ->
      if arg = "" then Stdlib.Error (Badreq, "SUBSCRIBE needs a query")
      else Stdlib.Ok (Subscribe arg)
    | other -> Stdlib.Error (Badreq, "unknown verb " ^ other)

type reply =
  | Pong
  | Ok of string list
  | Degraded of string list
  | Busy of int * string
  | Err of error_code * string

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

(* Payload lines with embedded newlines become several frame lines, keeping
   the OK count honest. *)
let flatten_payload lines =
  List.concat_map
    (fun l ->
      match String.split_on_char '\n' l with
      | [] -> [ "" ]
      | parts -> List.map (String.map (function '\r' -> ' ' | c -> c)) parts)
    lines

let render_reply reply =
  let b = Buffer.create 128 in
  let counted header lines =
    let lines = flatten_payload lines in
    Buffer.add_string b (Printf.sprintf "%s %d\n" header (List.length lines));
    List.iter
      (fun l ->
        Buffer.add_string b l;
        Buffer.add_char b '\n')
      lines
  in
  (match reply with
  | Pong -> Buffer.add_string b "PONG\n"
  | Busy (retry_after_ms, msg) ->
    Buffer.add_string b
      (Printf.sprintf "BUSY %d %s\n" (max 0 retry_after_ms) (one_line msg))
  | Err (code, msg) ->
    Buffer.add_string b ("ERR " ^ code_to_string code ^ " " ^ one_line msg ^ "\n")
  | Ok lines -> counted "OK" lines
  | Degraded lines -> counted "DEGRADED" lines);
  Buffer.contents b

(* A DELTA frame is pushed by the server to subscribers after a committed
   mutation batch: "DELTA <id> <n>" followed by exactly <n> signed lines
   ("+ <row>" for answers that appeared, "- <row>" for answers that
   vanished). It can arrive between a request and its reply, so clients
   read frames, not replies. *)
type delta = {
  sub_id : int;
  appeared : string list;
  vanished : string list;
}

let render_delta d =
  let b = Buffer.create 128 in
  let signed sign rows = List.map (fun r -> sign ^ " " ^ one_line r) rows in
  let lines = signed "+" d.appeared @ signed "-" d.vanished in
  Buffer.add_string b
    (Printf.sprintf "DELTA %d %d\n" d.sub_id (List.length lines));
  List.iter
    (fun l ->
      Buffer.add_string b l;
      Buffer.add_char b '\n')
    lines;
  Buffer.contents b

type frame = Reply of reply | Delta of delta

let collect_payload ic n wrap =
  let rec collect acc k =
    if k = 0 then Stdlib.Ok (wrap (List.rev acc))
    else
      match input_line ic with
      | exception End_of_file -> Stdlib.Error (`Malformed "truncated payload")
      | l -> collect (l :: acc) (k - 1)
  in
  collect [] n

let read_frame ic =
  match input_line ic with
  | exception End_of_file -> Stdlib.Error `Eof
  | header -> (
    let header = String.trim header in
    let v, rest = split_verb header in
    let counted wrap =
      match int_of_string_opt (String.trim rest) with
      | None -> Stdlib.Error (`Malformed ("bad payload count " ^ rest))
      | Some n when n < 0 -> Stdlib.Error (`Malformed "negative payload count")
      | Some n -> collect_payload ic n wrap
    in
    match v with
    | "PONG" -> Stdlib.Ok (Reply Pong)
    | "BUSY" -> (
      (* BUSY <retry-after-ms> <message>; a missing or non-numeric hint
         degrades to 0 (retry whenever), keeping old peers readable *)
      let first, msg = split_verb rest in
      match int_of_string_opt first with
      | Some ms -> Stdlib.Ok (Reply (Busy (max 0 ms, msg)))
      | None -> Stdlib.Ok (Reply (Busy (0, rest))))
    | "ERR" -> (
      let c, msg = split_verb rest in
      match code_of_string c with
      | Some code -> Stdlib.Ok (Reply (Err (code, msg)))
      | None -> Stdlib.Error (`Malformed ("unknown error code " ^ c)))
    | "OK" -> counted (fun lines -> Reply (Ok lines))
    | "DEGRADED" -> counted (fun lines -> Reply (Degraded lines))
    | "DELTA" -> (
      let id_s, count_s = split_verb rest in
      match (int_of_string_opt id_s, int_of_string_opt (String.trim count_s)) with
      | Some id, Some n when n >= 0 ->
        collect_payload ic n (fun lines ->
            let appeared, vanished =
              List.fold_left
                (fun (app, van) l ->
                  let sign, row = split_verb l in
                  match sign with
                  | "+" -> (row :: app, van)
                  | "-" -> (app, row :: van)
                  | _ -> (app, van))
                ([], []) lines
            in
            Delta
              {
                sub_id = id;
                appeared = List.rev appeared;
                vanished = List.rev vanished;
              })
      | _ -> Stdlib.Error (`Malformed ("bad DELTA header " ^ rest)))
    | other -> Stdlib.Error (`Malformed ("unknown reply " ^ other)))

(* Read one reply, discarding any DELTA frames that arrive in between —
   the convenience entry point for clients that never subscribe. *)
let read_reply ic =
  let rec go () =
    match read_frame ic with
    | Stdlib.Ok (Reply r) -> Stdlib.Ok r
    | Stdlib.Ok (Delta _) -> go ()
    | Stdlib.Error e -> Stdlib.Error e
  in
  go ()

let input_line_bounded ic ~max =
  let b = Buffer.create 256 in
  let rec go () =
    match input_char ic with
    | exception End_of_file ->
      if Buffer.length b = 0 then Stdlib.Error `Eof
      else Stdlib.Ok (Buffer.contents b)
    | '\n' -> Stdlib.Ok (Buffer.contents b)
    | c ->
      if Buffer.length b >= max then begin
        (* drain the rest of the oversized line to stay framed *)
        let rec drain () =
          match input_char ic with
          | exception End_of_file -> ()
          | '\n' -> ()
          | _ -> drain ()
        in
        drain ();
        Stdlib.Error `Toolarge
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
  in
  go ()
