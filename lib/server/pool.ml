type backend = Threads | Domains

(* A worker is a thread or a domain; both block on the same mutex +
   condition, so the queue logic is backend-agnostic. Domains buy real
   parallelism for CPU-bound query evaluation (threads share the runtime
   lock); threads stay the default because domains are a scarcer resource
   (the runtime caps them near the core count). *)
type worker = Thread_w of Thread.t | Domain_w of unit Domain.t

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  jobs : (unit -> unit) Queue.t;
  capacity : int;
  backend : backend;
  mutable workers : worker array;
  mutable active : int;  (* queued + running, bounded by workers + capacity *)
  mutable stopping : bool;
  mutable joined : bool;
}

let worker_loop t () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.jobs && not t.stopping do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.jobs then begin
      (* stopping and drained *)
      Mutex.unlock t.lock;
      ()
    end
    else begin
      let job = Queue.pop t.jobs in
      Mutex.unlock t.lock;
      (try job () with _ -> ());
      Mutex.lock t.lock;
      t.active <- t.active - 1;
      Mutex.unlock t.lock;
      loop ()
    end
  in
  loop ()

let create ?(backend = Threads) ~workers ~capacity () =
  if workers < 1 then invalid_arg "Pool.create: workers < 1";
  if capacity < 0 then invalid_arg "Pool.create: capacity < 0";
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      capacity;
      backend;
      workers = [||];
      active = 0;
      stopping = false;
      joined = false;
    }
  in
  let spawn () =
    match backend with
    | Threads -> Thread_w (Thread.create (worker_loop t) ())
    | Domains -> Domain_w (Domain.spawn (worker_loop t))
  in
  t.workers <- Array.init workers (fun _ -> spawn ());
  t

let submit t job =
  Mutex.lock t.lock;
  let decision =
    (* [active] counts queued + running jobs: an idle worker admits even
       with [capacity = 0], and at most [capacity] jobs ever wait. *)
    if t.stopping || t.active >= Array.length t.workers + t.capacity then
      `Rejected
    else begin
      t.active <- t.active + 1;
      Queue.push job t.jobs;
      Condition.signal t.nonempty;
      `Accepted
    end
  in
  Mutex.unlock t.lock;
  decision

let queued t =
  Mutex.lock t.lock;
  let n = Queue.length t.jobs in
  Mutex.unlock t.lock;
  n

let workers t = Array.length t.workers

let capacity t = t.capacity

let backend t = t.backend

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  let join = not t.joined in
  t.joined <- true;
  Mutex.unlock t.lock;
  if join then
    Array.iter
      (function
        | Thread_w th -> Thread.join th
        | Domain_w d -> Domain.join d)
      t.workers
