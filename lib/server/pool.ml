type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  jobs : (unit -> unit) Queue.t;
  capacity : int;
  mutable workers : Thread.t array;
  mutable active : int;  (* queued + running, bounded by workers + capacity *)
  mutable stopping : bool;
  mutable joined : bool;
}

let worker_loop t () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.jobs && not t.stopping do
      Condition.wait t.nonempty t.lock
    done;
    if Queue.is_empty t.jobs then begin
      (* stopping and drained *)
      Mutex.unlock t.lock;
      ()
    end
    else begin
      let job = Queue.pop t.jobs in
      Mutex.unlock t.lock;
      (try job () with _ -> ());
      Mutex.lock t.lock;
      t.active <- t.active - 1;
      Mutex.unlock t.lock;
      loop ()
    end
  in
  loop ()

let create ~workers ~capacity =
  if workers < 1 then invalid_arg "Pool.create: workers < 1";
  if capacity < 0 then invalid_arg "Pool.create: capacity < 0";
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      capacity;
      workers = [||];
      active = 0;
      stopping = false;
      joined = false;
    }
  in
  t.workers <- Array.init workers (fun _ -> Thread.create (worker_loop t) ());
  t

let submit t job =
  Mutex.lock t.lock;
  let decision =
    (* [active] counts queued + running jobs: an idle worker admits even
       with [capacity = 0], and at most [capacity] jobs ever wait. *)
    if t.stopping || t.active >= Array.length t.workers + t.capacity then
      `Rejected
    else begin
      t.active <- t.active + 1;
      Queue.push job t.jobs;
      Condition.signal t.nonempty;
      `Accepted
    end
  in
  Mutex.unlock t.lock;
  decision

let queued t =
  Mutex.lock t.lock;
  let n = Queue.length t.jobs in
  Mutex.unlock t.lock;
  n

let workers t = Array.length t.workers

let capacity t = t.capacity

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  let join = not t.joined in
  t.joined <- true;
  Mutex.unlock t.lock;
  if join then Array.iter Thread.join t.workers
