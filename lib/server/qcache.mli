(** Server-side query result cache, keyed by (request text, store epoch).

    The store's epoch ({!Oodb.Store.epoch}) changes exactly when a fact is
    inserted, so a reply computed at epoch [e] stays valid as long as the
    store still reports [e] — no invalidation protocol is needed, stale
    entries are simply unreachable and evicted lazily when the same
    request text is seen again at a newer epoch. Only successful replies
    are worth caching; the caller decides what to [store].

    All operations take one internal lock and are safe to call from
    concurrent session threads or domains. *)

type t

(** [create ~capacity] bounds the number of live entries; at capacity the
    whole table is dropped (epoch churn invalidates wholesale anyway, and
    a full reset keeps the hot path free of LRU bookkeeping).
    @raise Invalid_argument if [capacity < 1] *)
val create : capacity:int -> t

(** [find t ~epoch key] returns the cached reply computed for [key] at
    exactly [epoch], counting a hit or a miss. An entry from an older
    epoch is removed on the way. *)
val find : t -> epoch:int -> string -> Protocol.reply option

(** [add t ~epoch key reply] records [reply] as the answer to [key] at
    [epoch], evicting (wholesale) if the cache is full. *)
val add : t -> epoch:int -> string -> Protocol.reply -> unit

type stats = { hits : int; misses : int; entries : int }

val stats : t -> stats
