(** A long-running concurrent query server over one materialised
    {!Engine.Program}.

    The program is loaded and evaluated once; after that every request is
    read-only with respect to the model — queries only {e intern} new
    constants appearing in query text into the universe, they never add
    isa edges or method tuples. That invariant is what makes one shared
    store safe for many sessions, and the server asserts it around every
    request (see {!config.paranoid}): a request that grows the tuple
    counts is answered with [ERR INTERNAL] and reported, instead of
    silently corrupting the model.

    Architecture: one accept thread, one lightweight session thread per
    connection (blocking reads), and a bounded {!Pool} of query workers
    behind an admission queue. [PING]/[STATS]/[QUIT] are answered inline
    by the session thread so health checks and metrics stay responsive
    under full load; [QUERY]/[WHY] go through the pool and are shed with
    [BUSY] when the queue is full.

    The read path is lock-free: each request pins an epoch snapshot
    ({!Oodb.Store.freeze}) and evaluates against the append-only store —
    interning and the hierarchy closure caches carry their own internal
    locks, so any number of workers evaluate in parallel. The store lock
    survives only for writers ({!with_store_write}, program (re)load);
    with [pool_domains] the workers are {!Domain}s and CPU-bound query
    loads actually scale across cores. Successful [QUERY] replies land in
    an epoch-keyed result cache ({!Qcache}): a repeated query at an
    unchanged store is answered without evaluation, and any insertion
    invalidates wholesale by moving the epoch (counters in [STATS]).

    Failure model: each pooled request evaluates under an
    {!Engine.Budget} combining the remaining per-request deadline with a
    server-wide cancellation token set at shutdown, so runaway
    evaluations end in [ERR TIMEOUT] / [ERR CANCELLED] instead of
    pinning workers. Answers computed over a budget-degraded (partial)
    model are marked [DEGRADED] rather than [OK]. When the {!Fault}
    registry is armed, the server exercises its wire-read, wire-write
    and pool-dispatch injection points: injected wire failures tear down
    the one session, injected dispatch failures shed the one request
    with [BUSY] — the server itself never crashes.

    Shutdown ({!shutdown}, or SIGINT/SIGTERM after
    {!install_signal_handlers}) drains gracefully: stop accepting,
    cancel in-flight evaluations via the shared token, finish every
    admitted request, push out the replies, then close all sockets and
    join all threads. *)

type address =
  | Tcp of string * int  (** host, port; port 0 binds an ephemeral port *)
  | Unix_path of string  (** path of a unix-domain socket *)

val pp_address : Format.formatter -> address -> unit

type config = {
  workers : int;  (** query worker threads *)
  queue_capacity : int;  (** admission queue bound; beyond it: [BUSY] *)
  max_request_bytes : int;  (** request-line limit; beyond it: [TOOLARGE] *)
  deadline_s : float option;
      (** per-request deadline, measured from admission. Enforced twice:
          a request that reaches a worker after its deadline is answered
          [ERR TIMEOUT] without being evaluated, and a request whose
          evaluation is still running at the deadline is killed
          cooperatively mid-enumeration (the remaining time becomes an
          {!Engine.Budget} polled from the solver) and answered
          [ERR TIMEOUT] as well *)
  busy_retry_after_ms : int;
      (** the retry-after hint carried by every [BUSY] reply (queue full,
          injected dispatch fault); clients back off at least this long *)
  work_delay_s : float;
      (** artificial service time added in the worker before evaluation;
          0 in production — tests and the load generator use it to make
          saturation and deadline behaviour deterministic *)
  paranoid : bool;
      (** assert the read-only invariant around every request (cheap: the
          pinned epoch must not move during evaluation); on by default *)
  pool_domains : bool;
      (** back the worker pool with {!Domain}s instead of threads:
          parallel query evaluation on the lock-free read path. Off by
          default — domains are a scarce resource. *)
  cache_capacity : int;
      (** entry bound of the epoch-keyed query result cache *)
  demand : bool;
      (** demand-driven evaluation: serve from a program that was parsed
          but {e not} materialised. The first sight of each query runs
          the magic-sets transform ({!Engine.Demand}) under the store
          write lock and fixpoints only the demanded fragment; repeats
          and other queries over the grown store take the ordinary
          lock-free read path. When the transform is unsound for the
          program (negation, inclusion strata, hilog) — or on the first
          [ASSERT]/[RETRACT], whose incremental maintenance is defined
          against the full model — the server falls back to full
          materialisation once and behaves as without this flag
          ([demand_fallbacks_total] in [STATS] counts these). Off by
          default. *)
  admit_cost : int option;
      (** admission control by predicted cost: when set, the program is
          abstractly interpreted once at server creation
          ({!Pathlog_analysis.Absint}), and every [QUERY] whose
          statically predicted derivation count (evaluated at the
          current universe size) exceeds the bound is refused with
          [ERR COST <estimate>] {e before} it reaches the worker pool or
          the engine. Composes with [deadline_s]: admission refuses work
          that is predictably too large, budgets stop work that turns
          out too large. [None] (default) admits everything. *)
  data_dir : string option;
      (** durability: when set, the server keeps a write-ahead log and
          epoch snapshots under this directory ({!Durable}). Every
          accepted [ASSERT]/[RETRACT] batch is appended and fsync'd
          {e before} the client sees [OK], and startup recovers the
          state a previous process had acknowledged: load the newest
          valid snapshot (its source re-validated by the static-analysis
          gate), replay the WAL suffix beyond it, truncate any torn
          tail. While the suffix replays, mutating and querying requests
          are shed with [BUSY] plus the retry-after hint —
          [PING]/[STATS]/[QUIT] stay answered. [None] (default): fully
          in-memory, as before. *)
  snapshot_every : int;
      (** cut a snapshot every this many committed batches (at the epoch
          boundary, while the store is quiescent under the write lock);
          [0] disables periodic snapshots. Only meaningful with
          [data_dir]. *)
  recovery_delay_s : float;
      (** artificial delay at the start of WAL replay; 0 in production —
          tests use it to observe the [BUSY]-while-recovering window
          deterministically *)
}

val default_config : config

type t

(** Bind, listen, and start the accept thread. The listening socket is
    ready (and for [Tcp _ 0] the real port is known) when [create]
    returns. With [data_dir] set, recovery runs {e behind} the socket:
    the newest valid snapshot has replaced the program when [create]
    returns, and a background thread replays the WAL suffix while
    sessions shed requests with [BUSY] (see {!recovering}).
    @raise Unix.Unix_error if the address cannot be bound
    @raise Failure if a recovered snapshot fails the static-analysis
    gate *)
val create : ?config:config -> program:Engine.Program.t -> address -> t

(** Is startup recovery still replaying the WAL suffix? Requests other
    than [PING]/[STATS]/[QUIT] are answered [BUSY] until this clears.
    Always [false] without [data_dir]. *)
val recovering : t -> bool

(** Block (polling) until {!recovering} is false — test and embedding
    convenience; network clients get the same effect from
    {!Client.request_with_retry} backing off on [BUSY]. *)
val await_ready : t -> unit

(** The bound address, with the actual port filled in. *)
val address : t -> address

val metrics : t -> Metrics.t

val config : t -> config

(** Query-result cache counters (also rendered into [STATS]). *)
val cache_stats : t -> Qcache.stats

(** [with_store_write t f] runs [f] holding the store write lock — the
    path for program (re)load or fact assertion while the server runs.
    In-flight queries keep evaluating against their pinned epochs and
    their replies are not cached (the epoch moves); cached replies from
    older epochs become unreachable. *)
val with_store_write : t -> (unit -> 'a) -> 'a

(** Ask the server to stop. Cheap and async-signal-safe in spirit: sets a
    flag and wakes the accept loop; does not block, does not join.
    {!await} / {!shutdown} complete the drain. *)
val request_stop : t -> unit

(** Block until {!request_stop} (e.g. from a signal handler) is called. *)
val await : t -> unit

(** Graceful drain: {!request_stop}, finish admitted requests, close every
    socket, join every thread, unlink the unix socket path if any.
    Idempotent. *)
val shutdown : t -> unit

(** Route SIGINT and SIGTERM to {!request_stop} on this server. *)
val install_signal_handlers : t -> unit

(** [serve t] = {!await} then {!shutdown} — the body of
    [pathlog serve]. *)
val serve : t -> unit
