(** A fixed-bucket latency histogram.

    Buckets are log-spaced upper bounds in microseconds from 1us to ~100s
    (4 per decade), plus a final overflow bucket, so recording is O(log
    buckets), memory is constant, and any percentile is answerable from
    the cumulative counts with bounded relative error (~ one bucket
    width, i.e. under 2x). Not thread-safe on its own — {!Metrics} wraps
    observations in its lock. *)

type t

val create : unit -> t

(** Record one observation, in seconds. *)
val observe : t -> float -> unit

val count : t -> int

(** Minimum / mean / maximum of the exact observations (not bucketed), in
    seconds; 0 when empty. *)
val min_s : t -> float

val mean_s : t -> float

val max_s : t -> float

(** [percentile t 0.99] is an upper bound (the bucket boundary) for the
    given quantile, in seconds; 0 when empty. *)
val percentile : t -> float -> float

(** Non-empty buckets as [(upper_bound_us, count)] in increasing bound
    order; the overflow bucket reports [max_int] as its bound. *)
val buckets : t -> (int * int) list
