(** A blocking client for the PathLog query server — the other end of
    {!Protocol}. One request in flight per connection; not thread-safe
    (give each thread its own connection, as the bench load generator
    does). The first [connect] ignores [SIGPIPE] process-wide so a dead
    peer surfaces as an error, not a crash. *)

type t

(** Connect (retrying [EINTR]), or raise [Unix.Unix_error] if the server
    is not there. *)
val connect : Server.address -> t

val close : t -> unit

(** Send one raw request line and read the reply frame. No retry. *)
val request :
  t -> string -> (Protocol.reply, [ `Eof | `Malformed of string ]) result

(** Like {!request}, but a [BUSY] reply is retried up to [max_attempts]
    times with jittered exponential backoff. Each sleep is at least the
    server's retry-after hint and at least
    [base_delay_s * 2 ^ (attempt - 1)], capped at [max_delay_s], then
    scaled by a seeded multiplier in [0.5, 1.5) so concurrent rejected
    clients decorrelate. Errors and transport failures are returned
    immediately; a still-[BUSY] reply after the last attempt is returned
    as such. *)
val request_with_retry :
  ?max_attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?seed:int ->
  t ->
  string ->
  (Protocol.reply, [ `Eof | `Malformed of string ]) result

(** [PING] round-trip; [false] on any non-[PONG] outcome. *)
val ping : t -> bool

(** A counted payload plus whether the server marked it [DEGRADED]
    (sound answers over a budget-terminated partial model). *)
type payload_result = {
  lines : string list;
  degraded : bool;
}

(** [QUERY q]: payload lines on success ([["yes"]] / [["no"]] for ground
    queries, otherwise a tab-separated header line followed by rows).
    [BUSY] is retried with backoff ({!request_with_retry} defaults);
    [Error _] carries a one-line description of ERR/BUSY/transport
    failures. A [DEGRADED] payload is accepted transparently — use
    {!query_marked} to observe the marker. *)
val query : t -> string -> (string list, string) result

(** Like {!query}, keeping the [DEGRADED] marker. *)
val query_marked : t -> string -> (payload_result, string) result

(** [WHY f]: the proof-tree lines. *)
val why : t -> string -> (string list, string) result

(** [STATS]: the [key value] lines. *)
val stats : t -> (string list, string) result

(** The server's summary of a committed mutation batch. *)
type mutation_result = {
  epoch : int;  (** store epoch after the commit *)
  strategy : string;  (** "counting", "dred" or "recompute" *)
  added : int;  (** net model facts added *)
  removed : int;  (** net model facts removed *)
}

(** [ASSERT <batch>]: submit facts/rules for incremental addition.
    Multi-line batch text is folded onto the single request line (the
    statement syntax does not need the newlines). [Error _] carries a
    one-line description — including [ANALYSIS: ...] when the batch was
    rejected by the static-analysis gate and [BADREQ: ...] when it was
    refused (conflict, unknown rule, non-extensional retraction). *)
val assert_facts : t -> string -> (mutation_result, string) result

(** [RETRACT <batch>]: submit facts/rules for incremental removal. *)
val retract_facts : t -> string -> (mutation_result, string) result

type subscription = {
  sub_id : int;  (** identifies this subscription's DELTA frames *)
  baseline : string list;  (** the answer set at registration, sorted *)
}

(** [SUBSCRIBE <query>]: register a standing query. After every committed
    ASSERT/RETRACT batch that changes its answer set, the server pushes a
    [DELTA] frame; read them with {!next_delta}. *)
val subscribe : t -> string -> (subscription, string) result

(** The next pushed [DELTA]: first from the queue of frames that arrived
    interleaved with earlier replies, then from the wire. With
    [timeout_s], waits at most that long for the socket to become
    readable and returns [None] on expiry; without it, blocks until a
    frame (or EOF, returning [None]) arrives. *)
val next_delta : ?timeout_s:float -> t -> Protocol.delta option
