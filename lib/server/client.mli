(** A blocking client for the PathLog query server — the other end of
    {!Protocol}. One request in flight per connection; not thread-safe
    (give each thread its own connection, as the bench load generator
    does). *)

type t

(** Connect, or raise [Unix.Unix_error] if the server is not there. *)
val connect : Server.address -> t

val close : t -> unit

(** Send one raw request line and read the reply frame. *)
val request :
  t -> string -> (Protocol.reply, [ `Eof | `Malformed of string ]) result

(** [PING] round-trip; [false] on any non-[PONG] outcome. *)
val ping : t -> bool

(** [QUERY q]: payload lines on success ([["yes"]] / [["no"]] for ground
    queries, otherwise a tab-separated header line followed by rows).
    [Error _] carries a one-line description of ERR/BUSY/transport
    failures. *)
val query : t -> string -> (string list, string) result

(** [WHY f]: the proof-tree lines. *)
val why : t -> string -> (string list, string) result

(** [STATS]: the [key value] lines. *)
val stats : t -> (string list, string) result
