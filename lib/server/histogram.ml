(* Upper bounds in microseconds: 1, 2, 5, 10, 20, 50, ... per decade up to
   1e8 us (100 s), then one overflow bucket. *)
let bounds =
  let steps = [ 1; 2; 5 ] in
  let rec decades acc mult =
    if mult > 100_000_000 then List.rev acc
    else
      decades
        (List.rev_append (List.map (fun s -> s * mult) steps) acc)
        (mult * 10)
  in
  Array.of_list (decades [] 1)

type t = {
  counts : int array;  (* length (Array.length bounds) + 1; last = overflow *)
  mutable n : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  {
    counts = Array.make (Array.length bounds + 1) 0;
    n = 0;
    sum = 0.;
    min = infinity;
    max = neg_infinity;
  }

let bucket_index us =
  (* first bound >= us, by binary search *)
  let lo = ref 0 and hi = ref (Array.length bounds) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if bounds.(mid) >= us then hi := mid else lo := mid + 1
  done;
  !lo

let observe t seconds =
  let seconds = if seconds < 0. then 0. else seconds in
  let us = int_of_float (ceil (seconds *. 1e6)) in
  let i = bucket_index us in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. seconds;
  if seconds < t.min then t.min <- seconds;
  if seconds > t.max then t.max <- seconds

let count t = t.n

let min_s t = if t.n = 0 then 0. else t.min

let max_s t = if t.n = 0 then 0. else t.max

let mean_s t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

let percentile t q =
  if t.n = 0 then 0.
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = int_of_float (ceil (q *. float_of_int t.n)) in
    let rank = if rank < 1 then 1 else rank in
    let acc = ref 0 and idx = ref (Array.length t.counts - 1) in
    (try
       Array.iteri
         (fun i c ->
           acc := !acc + c;
           if !acc >= rank then begin
             idx := i;
             raise Exit
           end)
         t.counts
     with Exit -> ());
    if !idx >= Array.length bounds then max_s t
    else float_of_int bounds.(!idx) /. 1e6
  end

let buckets t =
  let out = ref [] in
  Array.iteri
    (fun i c ->
      if c > 0 then
        let bound =
          if i >= Array.length bounds then max_int else bounds.(i)
        in
        out := (bound, c) :: !out)
    t.counts;
  List.rev !out
