type descriptor =
  | Name of string
  | Int of int
  | Str of string
  | Skolem of skolem

and skolem = {
  meth : Obj_id.t;
  recv : Obj_id.t;
  args : Obj_id.t list;
  ordinal : int;
}

type key =
  | Kname of string
  | Kint of int
  | Kstr of string
  | Kskolem of Obj_id.t * Obj_id.t * Obj_id.t list

type t = {
  (* [lock] guards interning: concurrent readers (server query workers,
     parallel fixpoint domains) may intern constants first seen in query
     text, and the key table must not be mutated racily. Descriptor
     lookups of already-published ids stay lock-free: the backing vectors
     are append-only, so an id handed out through any synchronised
     channel denotes a slot that never changes. *)
  lock : Mutex.t;
  by_key : (key, Obj_id.t) Hashtbl.t;
  descriptors : descriptor Vec.t;
  skolem_ids : Obj_id.t Vec.t;
}

let create () =
  {
    lock = Mutex.create ();
    by_key = Hashtbl.create 256;
    descriptors = Vec.create ();
    skolem_ids = Vec.create ();
  }

let cardinality u = Vec.length u.descriptors

let with_lock u f =
  Mutex.lock u.lock;
  match f () with
  | v ->
    Mutex.unlock u.lock;
    v
  | exception e ->
    Mutex.unlock u.lock;
    raise e

let intern_unlocked u key desc =
  match Hashtbl.find_opt u.by_key key with
  | Some id -> id
  | None ->
    let id = Vec.length u.descriptors in
    Vec.push u.descriptors desc;
    Hashtbl.add u.by_key key id;
    id

let intern u key desc = with_lock u (fun () -> intern_unlocked u key desc)

let name u s = intern u (Kname s) (Name s)
let int u n = intern u (Kint n) (Int n)
let str u s = intern u (Kstr s) (Str s)
let find_name u s = with_lock u (fun () -> Hashtbl.find_opt u.by_key (Kname s))

let skolem u ~meth ~recv ~args =
  let key = Kskolem (meth, recv, args) in
  with_lock u (fun () ->
      match Hashtbl.find_opt u.by_key key with
      | Some id -> id
      | None ->
        let ordinal = Vec.length u.skolem_ids in
        let id = intern_unlocked u key (Skolem { meth; recv; args; ordinal }) in
        Vec.push u.skolem_ids id;
        id)

let skolems u = Vec.to_list u.skolem_ids
let descriptor u id = Vec.get u.descriptors id

let is_skolem u id =
  match descriptor u id with Skolem _ -> true | Name _ | Int _ | Str _ -> false

let rec pp_obj u ppf id =
  match descriptor u id with
  | Name s -> Format.pp_print_string ppf s
  | Int n -> Format.pp_print_int ppf n
  | Str s -> Format.fprintf ppf "%S" s
  | Skolem { meth; recv; args; _ } ->
    Format.fprintf ppf "%a.%a" (pp_obj u) recv (pp_obj u) meth;
    (match args with
    | [] -> ()
    | _ ->
      Format.fprintf ppf "@(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           (pp_obj u))
        args)

let to_string u id = Format.asprintf "%a" (pp_obj u) id

let iter u f =
  for id = 0 to cardinality u - 1 do
    f id (descriptor u id)
  done
