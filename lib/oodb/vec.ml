type 'a t = { mutable data : 'a array; mutable len : int; mutable sealed : bool }

let create ?(capacity = 8) () = { data = [||]; len = 0; sealed = false } |> fun v ->
  ignore capacity;
  v

let seal v =
  v.sealed <- true;
  v

let length v = v.len

(* Concurrent readers (snapshot iteration, the server's lock-free query
   path) may observe [len] and [data] from different moments of a racing
   [push]: clamping every access to the array actually loaded turns that
   window into a stale read instead of an out-of-bounds crash. Elements
   below a pinned length are immutable once written, so reads there are
   exact. *)
let get v i =
  let data = v.data in
  if i < 0 || i >= v.len || i >= Array.length data then invalid_arg "Vec.get";
  data.(i)

let ensure v n =
  let cap = Array.length v.data in
  if n > cap then begin
    let cap' = max n (max 8 (2 * cap)) in
    (* The dummy slots beyond [len] hold copies of an existing element (or
       the pushed one); they are never observed. *)
    let data' = Array.make cap' v.data.(0) in
    Array.blit v.data 0 data' 0 v.len;
    v.data <- data'
  end

let push v x =
  if v.sealed then invalid_arg "Vec.push: sealed vector";
  if Array.length v.data = 0 then begin
    v.data <- Array.make 8 x
  end else ensure v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let iter f v =
  let data = v.data in
  let n = min v.len (Array.length data) in
  for i = 0 to n - 1 do
    f data.(i)
  done

let iter_from f v start =
  let data = v.data in
  let n = min v.len (Array.length data) in
  for i = max 0 start to n - 1 do
    f data.(i)
  done

let fold f acc v =
  let data = v.data in
  let n = min v.len (Array.length data) in
  let acc = ref acc in
  for i = 0 to n - 1 do
    acc := f !acc data.(i)
  done;
  !acc

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0

let to_list v = List.init v.len (fun i -> v.data.(i))

let of_list xs =
  let v = create () in
  List.iter (push v) xs;
  v

let clear v =
  if v.sealed then invalid_arg "Vec.clear: sealed vector";
  v.len <- 0
