type scalarity = Scalar | Set_valued

type entry = {
  cls : Obj_id.t;
  meth : Obj_id.t;
  arg_classes : Obj_id.t list;
  result_class : Obj_id.t;
  scalarity : scalarity;
}

type t = { mutable entries : entry list }

let create () = { entries = [] }
let add t e = t.entries <- e :: t.entries
let entries t = List.rev t.entries

let applicable store t ~meth ~recv ~arity ~scalarity =
  let matches e =
    Obj_id.equal e.meth meth
    && e.scalarity = scalarity
    && List.length e.arg_classes = arity
    && Store.is_member store recv e.cls
  in
  List.filter matches (entries t)

type violation = {
  entry : entry;
  v_recv : Obj_id.t;
  v_args : Obj_id.t list;
  v_res : Obj_id.t;
  reason : string;
}

let no_signature_entry meth =
  {
    cls = meth;
    meth;
    arg_classes = [];
    result_class = meth;
    scalarity = Scalar;
  }

(* A tuple satisfies a signature when the signature's argument classes match
   and both the arguments and the result are members of the declared
   classes. A tuple violates the discipline when some applicable signature
   has a class the result (or an argument) does not belong to. *)
let check_tuple store t ~scalarity ~meth (e : Store.mentry) acc =
  let applicable =
    applicable store t ~meth ~recv:e.recv ~arity:(List.length e.args)
      ~scalarity
  in
  match applicable with
  | [] -> `No_signature, acc
  | _ ->
    let check_one acc entry =
      let arg_ok c a = Store.is_member store a c in
      if not (List.for_all2 arg_ok entry.arg_classes e.args) then
        (* argument classes do not match: the signature does not constrain
           this tuple (another overload may) *)
        acc
      else if Store.is_member store e.res entry.result_class then acc
      else
        {
          entry;
          v_recv = e.recv;
          v_args = e.args;
          v_res = e.res;
          reason = "result not a member of the declared result class";
        }
        :: acc
    in
    `Covered, List.fold_left check_one acc applicable

let check store t ~mode =
  let acc = ref [] in
  let handle scalarity meth (e : Store.mentry) =
    if Store.live e then begin
      let coverage, acc' = check_tuple store t ~scalarity ~meth e !acc in
      acc := acc';
      match coverage, mode with
      | `No_signature, `Strict ->
        acc :=
          {
            entry = no_signature_entry meth;
            v_recv = e.recv;
            v_args = e.args;
            v_res = e.res;
            reason = "no signature covers this method application";
          }
          :: !acc
      | (`No_signature | `Covered), _ -> ()
    end
  in
  List.iter
    (fun m -> Vec.iter (handle Scalar m) (Store.scalar_bucket store m))
    (Store.scalar_meths store);
  List.iter
    (fun m -> Vec.iter (handle Set_valued m) (Store.set_bucket store m))
    (Store.set_meths store);
  List.rev !acc

let pp_violation store ppf v =
  let obj = Universe.pp_obj (Store.universe store) in
  Format.fprintf ppf "%a[%a -> %a]: %s" obj v.v_recv obj v.entry.meth obj
    v.v_res v.reason
