(** Growable arrays with stable indices.

    Method buckets in the store are append-only: the fixpoint engine
    remembers watermark indices into them to obtain semi-naive deltas, so
    elements are never moved once pushed. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int

val get : 'a t -> int -> 'a

val push : 'a t -> 'a -> unit

val iter : ('a -> unit) -> 'a t -> unit

(** [iter_from f v i] applies [f] to elements [i], [i+1], ... in order;
    used to scan a semi-naive delta suffix. *)
val iter_from : ('a -> unit) -> 'a t -> int -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val clear : 'a t -> unit

(** [seal v] makes [v] permanently immutable: any later [push] or [clear]
    raises [Invalid_argument]. Used for the shared empty bucket the store
    hands out for missing methods, so an accidental write fails loudly
    instead of corrupting unrelated lookups. *)
val seal : 'a t -> 'a t
