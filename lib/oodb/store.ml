(* [dead] is max_int while the tuple is live; a removal stamps it with the
   epoch the removal produced. One record is physically shared between the
   method bucket, the inverse index and the receiver index, so the single
   field write hides the tuple everywhere at once while every index keeps
   its append-only shape (watermark-based semi-naive deltas and epoch
   snapshots stay valid). *)
type mentry = {
  recv : Obj_id.t;
  args : Obj_id.t list;
  res : Obj_id.t;
  mutable dead : int;
}

type ientry = { i_sub : Obj_id.t; i_cls : Obj_id.t; mutable i_dead : int }

let live e = e.dead = max_int
let isa_live e = e.i_dead = max_int

type scalar_insert = Added | Duplicate | Conflict of Obj_id.t
type set_insert = SAdded | SDuplicate
type isa_insert = IAdded | IDuplicate | ICycle

type mkey = Obj_id.t * Obj_id.t * Obj_id.t list (* meth, recv, args *)

(* Almost every method in practice takes no extra arguments, so the hot
   (meth, recv) pair packs into a single immediate int — no tuple or list
   allocation per lookup. Object ids are dense, allocated from 0, and stay
   far below 2^31 even in soak runs, so the two halves never collide. *)
let pack a b = (a lsl 31) lor b

type t = {
  universe : Universe.t;
  (* class hierarchy: direct edges of the partial order, both directions.
     [hier_lock] guards the adjacency tables and the closure caches: the
     caches memoize lazily, so even logically read-only traffic
     (classes_of / members) mutates them, and concurrent snapshot readers
     (server query domains, parallel fixpoint workers) would otherwise
     race on the underlying hash tables. The critical sections are short
     and uncontended in single-threaded use. *)
  hier_lock : Mutex.t;
  parents : Obj_id.Set.t Obj_id.Tbl.t;
  children : Obj_id.Set.t Obj_id.Tbl.t;
  isa_log : ientry Vec.t;
  mutable class_list : Obj_id.t list;
  class_seen : unit Obj_id.Tbl.t;
  (* memoized closures, maintained incrementally as edges are added *)
  up_cache : Obj_id.Set.t Obj_id.Tbl.t;
  down_cache : Obj_id.Set.t Obj_id.Tbl.t;
  (* scalar methods: 0-ary tuples (the common case) live in [scalar0]
     under a packed (meth, recv) int key; tuples with extra arguments in
     [scalar] under the full mkey *)
  scalar0 : (int, Obj_id.t) Hashtbl.t;
  scalar : (mkey, Obj_id.t) Hashtbl.t;
  scalar_buckets : mentry Vec.t Obj_id.Tbl.t;
  scalar_inv : ((Obj_id.t * Obj_id.t), mentry Vec.t) Hashtbl.t;
  scalar_recv : (int, mentry Vec.t) Hashtbl.t;
  scalar_recv_counts : int Obj_id.Tbl.t;
      (* distinct receivers per method, for planner selectivity *)
  mutable scalar_meth_list : Obj_id.t list;
  (* set-valued methods, same layout *)
  set0 : (int, Obj_id.Set.t ref) Hashtbl.t;
  set_members : (mkey, Obj_id.Set.t ref) Hashtbl.t;
  set_buckets : mentry Vec.t Obj_id.Tbl.t;
  set_inv : ((Obj_id.t * Obj_id.t), mentry Vec.t) Hashtbl.t;
  set_recv : (int, mentry Vec.t) Hashtbl.t;
  set_recv_counts : int Obj_id.Tbl.t;
  mutable set_meth_list : Obj_id.t list;
  mutable tuple_count : int;  (* isa edges + scalar + set tuples *)
  mutable epoch : int;
      (* monotonic data version: bumped on every actual insertion (never
         on duplicates), so readers can pin a version and caches can be
         keyed by it. Currently always equal to [tuple_count]; kept as a
         separate field because it is part of the concurrency contract,
         not a statistic. *)
}

let create () =
  {
    universe = Universe.create ();
    hier_lock = Mutex.create ();
    parents = Obj_id.Tbl.create 64;
    children = Obj_id.Tbl.create 64;
    isa_log = Vec.create ();
    class_list = [];
    class_seen = Obj_id.Tbl.create 16;
    up_cache = Obj_id.Tbl.create 64;
    down_cache = Obj_id.Tbl.create 64;
    scalar0 = Hashtbl.create 256;
    scalar = Hashtbl.create 64;
    scalar_buckets = Obj_id.Tbl.create 32;
    scalar_inv = Hashtbl.create 256;
    scalar_recv = Hashtbl.create 256;
    scalar_recv_counts = Obj_id.Tbl.create 32;
    scalar_meth_list = [];
    set0 = Hashtbl.create 256;
    set_members = Hashtbl.create 64;
    set_buckets = Obj_id.Tbl.create 32;
    set_inv = Hashtbl.create 256;
    set_recv = Hashtbl.create 256;
    set_recv_counts = Obj_id.Tbl.create 32;
    set_meth_list = [];
    tuple_count = 0;
    epoch = 0;
  }

let universe st = st.universe
let name st s = Universe.name st.universe s
let int st n = Universe.int st.universe n
let str st s = Universe.str st.universe s
let size st = st.tuple_count
let epoch st = st.epoch

(* ------------------------------------------------------------------ *)
(* Class hierarchy                                                     *)

let direct tbl o =
  match Obj_id.Tbl.find_opt tbl o with Some s -> s | None -> Obj_id.Set.empty

(* Reachability along [tbl] (parents for ancestors, children for
   descendants), excluding the start object itself unless reachable via a
   cycle — which add_isa prevents. *)
let closure_raw tbl o =
  let visited = ref Obj_id.Set.empty in
  let rec go x =
    Obj_id.Set.iter
      (fun n ->
        if not (Obj_id.Set.mem n !visited) then begin
          visited := Obj_id.Set.add n !visited;
          go n
        end)
      (direct tbl x)
  in
  go o;
  !visited

(* Callers must hold [hier_lock]. *)
let closure cache tbl o =
  match Obj_id.Tbl.find_opt cache o with
  | Some s -> s
  | None ->
    let s = closure_raw tbl o in
    Obj_id.Tbl.add cache o s;
    s

let with_hier st f =
  Mutex.lock st.hier_lock;
  match f () with
  | v ->
    Mutex.unlock st.hier_lock;
    v
  | exception e ->
    Mutex.unlock st.hier_lock;
    raise e

let classes_of st o = with_hier st (fun () -> closure st.up_cache st.parents o)
let members st c = with_hier st (fun () -> closure st.down_cache st.children c)

(* The value classes [integer] and [string] are built in: every integer
   value-object is a member of [integer], every string value-object of
   [string]. They hold for membership tests but are not enumerable. *)
let builtin_member st o c =
  match Universe.descriptor st.universe c with
  | Name "integer" -> (
    match Universe.descriptor st.universe o with
    | Int _ -> true
    | Name _ | Str _ | Skolem _ -> false)
  | Name "string" -> (
    match Universe.descriptor st.universe o with
    | Str _ -> true
    | Name _ | Int _ | Skolem _ -> false)
  | Name _ | Int _ | Str _ | Skolem _ -> false

(* Strict: an object is not a member of itself. The paper's single
   hierarchy relation is formally a partial order (hence reflexive), but
   reflexive membership carries no information and would make every class
   a member of itself in query answers; we implement the strict part
   uniformly for tests and enumeration (see DESIGN.md). *)
let is_member st o c =
  builtin_member st o c || Obj_id.Set.mem c (classes_of st o)

let add_isa st o c =
  if Obj_id.equal o c then IDuplicate
  else if Obj_id.Set.mem c (direct st.parents o) then IDuplicate
  else if
    builtin_member st c o
    || Obj_id.Set.mem o (with_hier st (fun () -> closure st.up_cache st.parents c))
  then ICycle
  else begin
    Mutex.lock st.hier_lock;
    (* Incremental closure maintenance. The new edge o -> c makes
       anc = {c} ∪ ancestors(c) ancestors of every x ∈ desc = {o} ∪
       descendants(o), and symmetrically desc descendants of every
       y ∈ anc. Nothing else changes: c's own ancestors and o's own
       descendants are untouched by the edge (acyclicity guarantees o is
       not above c), so both closures are computed safely before the
       adjacency is mutated. Only keys already cached are patched;
       uncached keys recompute lazily from the updated adjacency. *)
    let anc = Obj_id.Set.add c (closure st.up_cache st.parents c) in
    let desc = Obj_id.Set.add o (closure st.down_cache st.children o) in
    Obj_id.Tbl.replace st.parents o (Obj_id.Set.add c (direct st.parents o));
    Obj_id.Tbl.replace st.children c (Obj_id.Set.add o (direct st.children c));
    Vec.push st.isa_log { i_sub = o; i_cls = c; i_dead = max_int };
    st.tuple_count <- st.tuple_count + 1;
    st.epoch <- st.epoch + 1;
    if not (Obj_id.Tbl.mem st.class_seen c) then begin
      Obj_id.Tbl.add st.class_seen c ();
      st.class_list <- c :: st.class_list
    end;
    Obj_id.Set.iter
      (fun x ->
        match Obj_id.Tbl.find_opt st.up_cache x with
        | Some ups -> Obj_id.Tbl.replace st.up_cache x (Obj_id.Set.union ups anc)
        | None -> ())
      desc;
    Obj_id.Set.iter
      (fun y ->
        match Obj_id.Tbl.find_opt st.down_cache y with
        | Some downs ->
          Obj_id.Tbl.replace st.down_cache y (Obj_id.Set.union downs desc)
        | None -> ())
      anc;
    Mutex.unlock st.hier_lock;
    IAdded
  end

let isa_log st = st.isa_log
let known_classes st = List.rev st.class_list

(* ------------------------------------------------------------------ *)
(* Method tables                                                       *)

(* Shared frozen empty bucket, returned for every missing method or
   receiver. Sealed so an accidental push fails loudly instead of
   corrupting every other miss. *)
let empty_bucket = Vec.seal (Vec.create ())

let bucket tbl meth =
  match Obj_id.Tbl.find_opt tbl meth with
  | Some v -> v
  | None ->
    let v = Vec.create () in
    Obj_id.Tbl.add tbl meth v;
    v

let inv_bucket tbl key =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = Vec.create () in
    Hashtbl.add tbl key v;
    v

(* Push into the (meth, recv) secondary index, counting distinct receivers
   per method the first time a pair appears. *)
let recv_push tbl counts ~meth ~recv entry =
  let key = pack meth recv in
  match Hashtbl.find_opt tbl key with
  | Some v -> Vec.push v entry
  | None ->
    let v = Vec.create () in
    Vec.push v entry;
    Hashtbl.add tbl key v;
    Obj_id.Tbl.replace counts meth
      (1
      + (match Obj_id.Tbl.find_opt counts meth with Some n -> n | None -> 0))

let add_scalar st ~meth ~recv ~args ~res =
  let existing =
    match args with
    | [] -> Hashtbl.find_opt st.scalar0 (pack meth recv)
    | _ -> Hashtbl.find_opt st.scalar (meth, recv, args)
  in
  match existing with
  | Some existing ->
    if Obj_id.equal existing res then Duplicate else Conflict existing
  | None ->
    (match args with
    | [] -> Hashtbl.add st.scalar0 (pack meth recv) res
    | _ -> Hashtbl.add st.scalar (meth, recv, args) res);
    let entry = { recv; args; res; dead = max_int } in
    let b = bucket st.scalar_buckets meth in
    if Vec.length b = 0 then st.scalar_meth_list <- meth :: st.scalar_meth_list;
    Vec.push b entry;
    Vec.push (inv_bucket st.scalar_inv (meth, res)) entry;
    recv_push st.scalar_recv st.scalar_recv_counts ~meth ~recv entry;
    st.tuple_count <- st.tuple_count + 1;
    st.epoch <- st.epoch + 1;
    Added

let scalar_lookup st ~meth ~recv ~args =
  match args with
  | [] -> Hashtbl.find_opt st.scalar0 (pack meth recv)
  | _ -> Hashtbl.find_opt st.scalar (meth, recv, args)

let scalar_bucket st meth =
  match Obj_id.Tbl.find_opt st.scalar_buckets meth with
  | Some v -> v
  | None -> empty_bucket

let scalar_inverse st ~meth ~res =
  match Hashtbl.find_opt st.scalar_inv (meth, res) with
  | Some v -> v
  | None -> empty_bucket

let scalar_recv_index st ~meth ~recv =
  match Hashtbl.find_opt st.scalar_recv (pack meth recv) with
  | Some v -> v
  | None -> empty_bucket

let scalar_recv_keys st meth =
  match Obj_id.Tbl.find_opt st.scalar_recv_counts meth with
  | Some n -> n
  | None -> 0

let scalar_meths st = List.rev st.scalar_meth_list

let add_set st ~meth ~recv ~args ~res =
  let set =
    match args with
    | [] -> (
      let key = pack meth recv in
      match Hashtbl.find_opt st.set0 key with
      | Some r -> r
      | None ->
        let r = ref Obj_id.Set.empty in
        Hashtbl.add st.set0 key r;
        r)
    | _ -> (
      let key = (meth, recv, args) in
      match Hashtbl.find_opt st.set_members key with
      | Some r -> r
      | None ->
        let r = ref Obj_id.Set.empty in
        Hashtbl.add st.set_members key r;
        r)
  in
  if Obj_id.Set.mem res !set then SDuplicate
  else begin
    set := Obj_id.Set.add res !set;
    let entry = { recv; args; res; dead = max_int } in
    let b = bucket st.set_buckets meth in
    if Vec.length b = 0 then st.set_meth_list <- meth :: st.set_meth_list;
    Vec.push b entry;
    Vec.push (inv_bucket st.set_inv (meth, res)) entry;
    recv_push st.set_recv st.set_recv_counts ~meth ~recv entry;
    st.tuple_count <- st.tuple_count + 1;
    st.epoch <- st.epoch + 1;
    SAdded
  end

let set_lookup st ~meth ~recv ~args =
  let found =
    match args with
    | [] -> Hashtbl.find_opt st.set0 (pack meth recv)
    | _ -> Hashtbl.find_opt st.set_members (meth, recv, args)
  in
  match found with Some r -> !r | None -> Obj_id.Set.empty

let set_bucket st meth =
  match Obj_id.Tbl.find_opt st.set_buckets meth with
  | Some v -> v
  | None -> empty_bucket

let set_inverse st ~meth ~res =
  match Hashtbl.find_opt st.set_inv (meth, res) with
  | Some v -> v
  | None -> empty_bucket

let set_recv_index st ~meth ~recv =
  match Hashtbl.find_opt st.set_recv (pack meth recv) with
  | Some v -> v
  | None -> empty_bucket

let set_recv_keys st meth =
  match Obj_id.Tbl.find_opt st.set_recv_counts meth with
  | Some n -> n
  | None -> 0

let set_meths st = List.rev st.set_meth_list

(* ------------------------------------------------------------------ *)
(* Removal (tombstoning)                                               *)

(* A removal updates the primary tables physically (lookups answer the
   live state immediately) and tombstones the shared index record by
   stamping [dead] with the post-bump epoch: a snapshot frozen at epoch E
   still sees entries with [dead > E], later snapshots do not. Buckets
   never shrink, so watermarks held by in-flight semi-naive evaluations
   stay monotone; a re-assertion after a removal appends a fresh entry. *)

let stamp st (e : mentry) =
  st.epoch <- st.epoch + 1;
  e.dead <- st.epoch;
  st.tuple_count <- st.tuple_count - 1

let find_live v ~args ~res =
  let n = Vec.length v in
  let rec go i =
    if i >= n then None
    else
      let e = Vec.get v i in
      if live e && e.args = args && Obj_id.equal e.res res then Some e
      else go (i + 1)
  in
  go 0

let remove_scalar st ~meth ~recv ~args ~res =
  match scalar_lookup st ~meth ~recv ~args with
  | Some existing when Obj_id.equal existing res -> (
    match find_live (scalar_recv_index st ~meth ~recv) ~args ~res with
    | None -> false
    | Some e ->
      (match args with
      | [] -> Hashtbl.remove st.scalar0 (pack meth recv)
      | _ -> Hashtbl.remove st.scalar (meth, recv, args));
      stamp st e;
      true)
  | Some _ | None -> false

let remove_set st ~meth ~recv ~args ~res =
  let set =
    match args with
    | [] -> Hashtbl.find_opt st.set0 (pack meth recv)
    | _ -> Hashtbl.find_opt st.set_members (meth, recv, args)
  in
  match set with
  | Some r when Obj_id.Set.mem res !r -> (
    match find_live (set_recv_index st ~meth ~recv) ~args ~res with
    | None -> false
    | Some e ->
      r := Obj_id.Set.remove res !r;
      stamp st e;
      true)
  | Some _ | None -> false

let remove_isa st o c =
  if not (Obj_id.Set.mem c (direct st.parents o)) then false
  else begin
    Mutex.lock st.hier_lock;
    Obj_id.Tbl.replace st.parents o (Obj_id.Set.remove c (direct st.parents o));
    Obj_id.Tbl.replace st.children c
      (Obj_id.Set.remove o (direct st.children c));
    (* additions patch the closure caches incrementally; removals
       invalidate wholesale and let the caches rebuild lazily from the
       updated adjacency *)
    Obj_id.Tbl.reset st.up_cache;
    Obj_id.Tbl.reset st.down_cache;
    (try
       Vec.iter
         (fun e ->
           if isa_live e && Obj_id.equal e.i_sub o && Obj_id.equal e.i_cls c
           then begin
             st.epoch <- st.epoch + 1;
             e.i_dead <- st.epoch;
             raise Exit
           end)
         st.isa_log
     with Exit -> ());
    st.tuple_count <- st.tuple_count - 1;
    Mutex.unlock st.hier_lock;
    true
  end

(* ------------------------------------------------------------------ *)
(* Epoch snapshots                                                     *)

(* A snapshot pins the epoch and the length of every append-only bucket
   that existed at freeze time. Because buckets never shrink and entries
   never move, a reader iterating only up to its pinned lengths sees
   exactly the store as of the freeze, no matter how many tuples writers
   append afterwards. Freezing is O(#methods), not O(#tuples). *)
type snapshot = {
  s_store : t;
  s_epoch : int;
  s_objects : int;
  s_isa_len : int;
  s_scalar_lens : int Obj_id.Tbl.t;
  s_set_lens : int Obj_id.Tbl.t;
}

let freeze st =
  let lens buckets =
    let out = Obj_id.Tbl.create 32 in
    Obj_id.Tbl.iter (fun m v -> Obj_id.Tbl.add out m (Vec.length v)) buckets;
    out
  in
  {
    s_store = st;
    s_epoch = st.epoch;
    s_objects = Universe.cardinality st.universe;
    s_isa_len = Vec.length st.isa_log;
    s_scalar_lens = lens st.scalar_buckets;
    s_set_lens = lens st.set_buckets;
  }

let snapshot_store s = s.s_store
let snapshot_epoch s = s.s_epoch
let snapshot_stale s = s.s_store.epoch <> s.s_epoch
let snapshot_isa_len s = s.s_isa_len

let pinned tbl m =
  match Obj_id.Tbl.find_opt tbl m with Some n -> n | None -> 0

let snapshot_scalar_len s m = pinned s.s_scalar_lens m
let snapshot_set_len s m = pinned s.s_set_lens m

let iter_upto f v n =
  let n = min n (Vec.length v) in
  for i = 0 to n - 1 do
    f (Vec.get v i)
  done

(* A tuple is visible to a snapshot iff it was appended before the freeze
   (index below the pinned length) and not yet removed at the freeze
   ([dead > s_epoch]: removals stamp the post-bump epoch). *)
let snapshot_iter_isa s f =
  iter_upto
    (fun e -> if e.i_dead > s.s_epoch then f (e.i_sub, e.i_cls))
    s.s_store.isa_log s.s_isa_len

let snapshot_iter_scalar s m f =
  iter_upto
    (fun e -> if e.dead > s.s_epoch then f e)
    (scalar_bucket s.s_store m)
    (pinned s.s_scalar_lens m)

let snapshot_iter_set s m f =
  iter_upto
    (fun e -> if e.dead > s.s_epoch then f e)
    (set_bucket s.s_store m)
    (pinned s.s_set_lens m)

(* ------------------------------------------------------------------ *)
(* Live iteration — the basis of model dumps, support-index audits and
   durable snapshots: every live tuple, dead entries filtered. *)

let iter_live_isa st f =
  Vec.iter (fun e -> if isa_live e then f e.i_sub e.i_cls) st.isa_log

let iter_live_scalar st f =
  List.iter
    (fun m -> Vec.iter (fun e -> if live e then f m e) (scalar_bucket st m))
    (scalar_meths st)

let iter_live_set st f =
  List.iter
    (fun m -> Vec.iter (fun e -> if live e then f m e) (set_bucket st m))
    (set_meths st)

(* ------------------------------------------------------------------ *)
(* Statistics and printing                                             *)

type stats = {
  objects : int;
  isa_edges : int;
  scalar_tuples : int;
  set_tuples : int;
}

let live_count v = Vec.fold (fun acc e -> if live e then acc + 1 else acc) 0 v

let stats st =
  let count_buckets tbl =
    Obj_id.Tbl.fold (fun _ v acc -> acc + live_count v) tbl 0
  in
  {
    objects = Universe.cardinality st.universe;
    isa_edges =
      Vec.fold (fun acc e -> if isa_live e then acc + 1 else acc) 0 st.isa_log;
    scalar_tuples = count_buckets st.scalar_buckets;
    set_tuples = count_buckets st.set_buckets;
  }

let snapshot_stats s =
  let visible buckets lens =
    Obj_id.Tbl.fold
      (fun m pinned_len acc ->
        let n = ref 0 in
        (match Obj_id.Tbl.find_opt buckets m with
        | None -> ()
        | Some v ->
          iter_upto
            (fun (e : mentry) -> if e.dead > s.s_epoch then incr n)
            v pinned_len);
        acc + !n)
      lens 0
  in
  let isa =
    let n = ref 0 in
    iter_upto
      (fun e -> if e.i_dead > s.s_epoch then incr n)
      s.s_store.isa_log s.s_isa_len;
    !n
  in
  {
    objects = s.s_objects;
    isa_edges = isa;
    scalar_tuples = visible s.s_store.scalar_buckets s.s_scalar_lens;
    set_tuples = visible s.s_store.set_buckets s.s_set_lens;
  }

let check_invariants st =
  let problems = ref [] in
  let problem fmt =
    Format.kasprintf (fun m -> problems := m :: !problems) fmt
  in
  let obj = Universe.to_string st.universe in
  (* index records are physically shared with the bucket records *)
  let entry_mem v e = Vec.exists (fun e' -> e' == e) v in
  (* scalar: primary tables vs live bucket entries, both directions,
     inverse and receiver indexes. Tombstoned entries stay in every index
     (they are the same record), so membership is checked for all entries
     but the primary tables must agree with the live ones only. *)
  let scalar_bucket_count = ref 0 in
  let scalar_raw_count = ref 0 in
  List.iter
    (fun m ->
      Vec.iter
        (fun ({ recv; args; res; dead = _ } as e) ->
          incr scalar_raw_count;
          if live e then begin
            incr scalar_bucket_count;
            match scalar_lookup st ~meth:m ~recv ~args with
            | Some res' when Obj_id.equal res res' -> ()
            | Some _ ->
              problem "scalar bucket entry disagrees with primary: %s.%s"
                (obj recv) (obj m)
            | None ->
              problem "scalar bucket entry missing from primary: %s.%s"
                (obj recv) (obj m)
          end;
          if not (entry_mem (scalar_inverse st ~meth:m ~res) e) then
            problem "scalar entry missing from inverse index: %s.%s"
              (obj recv) (obj m);
          if not (entry_mem (scalar_recv_index st ~meth:m ~recv) e) then
            problem "scalar entry missing from receiver index: %s.%s"
              (obj recv) (obj m))
        (scalar_bucket st m))
    (scalar_meths st);
  let scalar_primary_count =
    Hashtbl.length st.scalar0 + Hashtbl.length st.scalar
  in
  if scalar_primary_count <> !scalar_bucket_count then
    problem "scalar primary has %d entries but buckets have %d live"
      scalar_primary_count !scalar_bucket_count;
  (* set methods: buckets vs member sets and receiver indexes *)
  let set_bucket_count = ref 0 in
  let set_raw_count = ref 0 in
  List.iter
    (fun m ->
      Vec.iter
        (fun ({ recv; args; res; dead = _ } as e) ->
          incr set_raw_count;
          if live e then begin
            incr set_bucket_count;
            if not (Obj_id.Set.mem res (set_lookup st ~meth:m ~recv ~args))
            then
              problem "set bucket entry missing from member set: %s..%s"
                (obj recv) (obj m)
          end;
          if not (entry_mem (set_recv_index st ~meth:m ~recv) e) then
            problem "set entry missing from receiver index: %s..%s"
              (obj recv) (obj m))
        (set_bucket st m))
    (set_meths st);
  let member_total =
    Hashtbl.fold (fun _ s acc -> acc + Obj_id.Set.cardinal !s) st.set0 0
    + Hashtbl.fold
        (fun _ s acc -> acc + Obj_id.Set.cardinal !s)
        st.set_members 0
  in
  if member_total <> !set_bucket_count then
    problem "set member sets hold %d elements but buckets have %d live"
      member_total !set_bucket_count;
  (* receiver indexes: no stale extras, and the distinct-receiver counters
     agree with the actual key populations *)
  let check_recv what recv_tbl counts bucket_count =
    let index_total = ref 0 in
    let per_meth = Obj_id.Tbl.create 16 in
    Hashtbl.iter
      (fun key v ->
        index_total := !index_total + Vec.length v;
        let m = key lsr 31 in
        Obj_id.Tbl.replace per_meth m
          (1
          + (match Obj_id.Tbl.find_opt per_meth m with
            | Some n -> n
            | None -> 0)))
      recv_tbl;
    if !index_total <> bucket_count then
      problem "%s receiver index holds %d entries but buckets have %d" what
        !index_total bucket_count;
    Obj_id.Tbl.iter
      (fun m n ->
        let counted =
          match Obj_id.Tbl.find_opt counts m with Some c -> c | None -> 0
        in
        if counted <> n then
          problem "%s receiver counter for %s says %d, index has %d keys"
            what (obj m) counted n)
      per_meth
  in
  check_recv "scalar" st.scalar_recv st.scalar_recv_counts !scalar_raw_count;
  check_recv "set" st.set_recv st.set_recv_counts !set_raw_count;
  (* hierarchy: live log edges vs adjacency (both directions), acyclicity *)
  let live_isa = ref 0 in
  Vec.iter
    (fun e ->
      if isa_live e then begin
        incr live_isa;
        let o = e.i_sub and c = e.i_cls in
        if not (Obj_id.Set.mem c (direct st.parents o)) then
          problem "isa log edge missing from parents: %s : %s" (obj o)
            (obj c);
        if not (Obj_id.Set.mem o (direct st.children c)) then
          problem "isa log edge missing from children: %s : %s" (obj o)
            (obj c)
      end)
    st.isa_log;
  let edge_count =
    Obj_id.Tbl.fold
      (fun _ s acc -> acc + Obj_id.Set.cardinal s)
      st.parents 0
  in
  if edge_count <> !live_isa then
    problem "parents adjacency has %d edges but the log has %d live"
      edge_count !live_isa;
  Obj_id.Tbl.iter
    (fun o _ ->
      if Obj_id.Set.mem o (classes_of st o) then
        problem "hierarchy cycle through %s" (obj o))
    st.parents;
  (* incrementally maintained closure caches agree with a fresh traversal *)
  let check_cache what cache tbl =
    Obj_id.Tbl.iter
      (fun o cached ->
        let fresh = closure_raw tbl o in
        if not (Obj_id.Set.equal cached fresh) then
          problem "%s cache for %s is stale (%d cached, %d actual)" what
            (obj o)
            (Obj_id.Set.cardinal cached)
            (Obj_id.Set.cardinal fresh))
      cache
  in
  check_cache "ancestor" st.up_cache st.parents;
  check_cache "descendant" st.down_cache st.children;
  (* global tuple counter counts live tuples only *)
  let total = !live_isa + !scalar_bucket_count + !set_bucket_count in
  if st.tuple_count <> total then
    problem "tuple counter says %d but store holds %d live" st.tuple_count
      total;
  List.rev !problems

let pp ppf st =
  let u = st.universe in
  let obj = Universe.pp_obj u in
  Vec.iter
    (fun e ->
      if isa_live e then
        Format.fprintf ppf "%a : %a.@." obj e.i_sub obj e.i_cls)
    st.isa_log;
  let pp_args ppf = function
    | [] -> ()
    | args ->
      Format.fprintf ppf "@(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           obj)
        args
  in
  List.iter
    (fun m ->
      Vec.iter
        (fun e ->
          if live e then
            Format.fprintf ppf "%a[%a%a -> %a].@." obj e.recv obj m pp_args
              e.args obj e.res)
        (scalar_bucket st m))
    (scalar_meths st);
  List.iter
    (fun m ->
      Vec.iter
        (fun e ->
          if live e then
            Format.fprintf ppf "%a[%a%a ->> {%a}].@." obj e.recv obj m
              pp_args e.args obj e.res)
        (set_bucket st m))
    (set_meths st)
