(** The extensional (and, during evaluation, intensional) state of a
    semantic structure [I = (U, <=_U, I_N, I_->, I_->>)].

    The paper (section 3) folds classes and methods into the universe of
    objects and keeps a single partial order [<=_U] relating objects to
    classes; we store its generating edges and answer queries through the
    transitive closure. [I_->] and [I_->>] interpret scalar and set-valued
    methods with [k-1 >= 0] extra arguments.

    All method buckets are append-only ({!Vec}), so the fixpoint engine can
    take watermarks and scan only the delta suffixes (semi-naive
    evaluation). Removal never shrinks a bucket: it tombstones the shared
    index record by stamping {!field-mentry.dead}, keeping every watermark
    and snapshot valid (see {!remove_scalar}). *)

type t

(** [dead] is [max_int] while the tuple is live; a removal stamps it with
    the epoch the removal produced, so a snapshot frozen at epoch [E] sees
    exactly the entries with [dead > E]. The same record is shared between
    the method bucket, the inverse index and the receiver index. *)
type mentry = {
  recv : Obj_id.t;
  args : Obj_id.t list;
  res : Obj_id.t;
  mutable dead : int;
}

(** An isa edge in the append-only log, tombstoned the same way. *)
type ientry = { i_sub : Obj_id.t; i_cls : Obj_id.t; mutable i_dead : int }

val live : mentry -> bool

val isa_live : ientry -> bool

type scalar_insert = Added | Duplicate | Conflict of Obj_id.t
type set_insert = SAdded | SDuplicate
type isa_insert = IAdded | IDuplicate | ICycle

val create : unit -> t

val universe : t -> Universe.t

(** Shorthands for interning through the store's universe. *)

val name : t -> string -> Obj_id.t

val int : t -> int -> Obj_id.t

val str : t -> string -> Obj_id.t

(** {1 Class hierarchy / membership}

    One relation, as in the paper: [o : c] and [c :: c'] both assert an edge
    of the partial order [<=_U]. Queries go through the transitive closure,
    implemented {e strictly}: an object is not a member of itself, neither
    for tests nor for enumeration (the reflexive pairs of the formal
    partial order carry no information). Inserting an edge that would
    close a cycle is rejected ([ICycle]) to preserve antisymmetry. *)

val add_isa : t -> Obj_id.t -> Obj_id.t -> isa_insert

(** Membership test through the transitive closure, plus the built-in value
    classes: every integer value-object is a member of the class named
    [integer] and every string value-object of [string]. Built-in
    memberships hold for tests but are not enumerated by {!members} (the
    extensions are infinite in spirit). *)
val is_member : t -> Obj_id.t -> Obj_id.t -> bool

(** All strict ancestors of [o] (classes it belongs to, transitively). *)
val classes_of : t -> Obj_id.t -> Obj_id.Set.t

(** All strict descendants of [c] (its members, transitively). *)
val members : t -> Obj_id.t -> Obj_id.Set.t

(** Append-only log of directly asserted [o : c] edges, including
    tombstoned ones — filter with {!isa_live}. *)
val isa_log : t -> ientry Vec.t

(** Objects that appear as the target of an isa edge, i.e. in class
    position; used to enumerate candidate classes. *)
val known_classes : t -> Obj_id.t list

(** {1 Scalar methods [I_->]} *)

val add_scalar :
  t -> meth:Obj_id.t -> recv:Obj_id.t -> args:Obj_id.t list -> res:Obj_id.t ->
  scalar_insert

val scalar_lookup :
  t -> meth:Obj_id.t -> recv:Obj_id.t -> args:Obj_id.t list -> Obj_id.t option

(** All tuples of a given method, in insertion order. *)
val scalar_bucket : t -> Obj_id.t -> mentry Vec.t

(** Tuples of [meth] whose result is [res] (inverse navigation). *)
val scalar_inverse : t -> meth:Obj_id.t -> res:Obj_id.t -> mentry Vec.t

(** Tuples of [meth] on receiver [recv] (any arguments); the bound-receiver
    secondary index, so such lookups never scan the whole method bucket. *)
val scalar_recv_index : t -> meth:Obj_id.t -> recv:Obj_id.t -> mentry Vec.t

(** Number of distinct receivers with at least one [meth] tuple; the
    planner's selectivity estimate for bound-receiver access. *)
val scalar_recv_keys : t -> Obj_id.t -> int

(** Methods that have at least one scalar tuple. *)
val scalar_meths : t -> Obj_id.t list

(** {1 Set-valued methods [I_->>]} *)

val add_set :
  t -> meth:Obj_id.t -> recv:Obj_id.t -> args:Obj_id.t list -> res:Obj_id.t ->
  set_insert

val set_lookup :
  t -> meth:Obj_id.t -> recv:Obj_id.t -> args:Obj_id.t list -> Obj_id.Set.t

val set_bucket : t -> Obj_id.t -> mentry Vec.t

val set_inverse : t -> meth:Obj_id.t -> res:Obj_id.t -> mentry Vec.t

val set_recv_index : t -> meth:Obj_id.t -> recv:Obj_id.t -> mentry Vec.t

val set_recv_keys : t -> Obj_id.t -> int

val set_meths : t -> Obj_id.t list

(** {1 Removal}

    Removal is tombstoning: the primary tables (lookup maps, member sets,
    hierarchy adjacency) are updated physically, while the shared bucket /
    index record is stamped dead with the epoch the removal produced.
    Buckets never shrink, so watermarks held by in-flight semi-naive
    evaluations stay monotone and snapshots frozen before the removal
    still see the tuple. Each successful removal bumps the epoch and
    decrements {!size}; re-asserting a removed tuple appends a fresh
    record. All three return whether the tuple was present (and live). *)

val remove_scalar :
  t -> meth:Obj_id.t -> recv:Obj_id.t -> args:Obj_id.t list -> res:Obj_id.t ->
  bool

val remove_set :
  t -> meth:Obj_id.t -> recv:Obj_id.t -> args:Obj_id.t list -> res:Obj_id.t ->
  bool

(** Removing an isa edge resets the memoized closure caches wholesale
    (additions patch them incrementally; deletions rebuild lazily). *)
val remove_isa : t -> Obj_id.t -> Obj_id.t -> bool

(** {1 Live iteration}

    Visit every {e live} tuple of the store — tombstoned entries
    filtered, buckets in method order. These are the building blocks of
    model dumps, the incremental layer's support-index audit, and the
    durability layer's snapshot content. *)

val iter_live_isa : t -> (Obj_id.t -> Obj_id.t -> unit) -> unit

(** The callback receives the method and the (live) bucket entry. *)
val iter_live_scalar : t -> (Obj_id.t -> mentry -> unit) -> unit

val iter_live_set : t -> (Obj_id.t -> mentry -> unit) -> unit

(** {1 Statistics} *)

type stats = {
  objects : int;
  isa_edges : int;
  scalar_tuples : int;
  set_tuples : int;
}

val stats : t -> stats

(** Live facts stored (isa edges + scalar + set tuples), O(1). Compiled
    query plans use it to decide when enough has changed to re-plan. *)
val size : t -> int

(** {1 Epochs and snapshots}

    Buckets are append-only, so a data version is just a counter: {!epoch}
    is bumped on every actual insertion and removal (never on duplicates
    or misses). {!freeze} pins the epoch together with the current length
    of every bucket — O(#methods), not O(#tuples) — and the [snapshot_*]
    accessors iterate only up to the pinned lengths, skipping entries
    whose tombstone epoch is at or below the pinned one. A reader holding
    a snapshot therefore sees exactly the store as of the freeze while
    writers keep appending (or tombstoning): the basis of the server's
    lock-free read path and of the epoch-keyed query cache, and the
    isolation contract the parallel fixpoint relies on between merge
    phases.

    Thread-safety contract: buckets are append-only and never moved, and
    the lazily-memoized hierarchy closure caches are guarded by an
    internal lock, so any number of snapshot readers may run concurrently
    with each other. Writers are {e not} synchronised against readers
    beyond that — evaluation phases (the fixpoint's merge step, program
    load) must keep single-writer discipline, which all engine entry
    points do. *)

(** The store's current data version; monotonically increasing. *)
val epoch : t -> int

type snapshot

(** Pin the current epoch and bucket lengths. Cheap: O(#methods). *)
val freeze : t -> snapshot

val snapshot_store : snapshot -> t

val snapshot_epoch : snapshot -> int

(** Has the store been written to since the freeze? *)
val snapshot_stale : snapshot -> bool

val snapshot_isa_len : snapshot -> int

val snapshot_scalar_len : snapshot -> Obj_id.t -> int

val snapshot_set_len : snapshot -> Obj_id.t -> int

(** Iterate the pinned prefix of the isa edge log / a method bucket:
    tuples appended after the freeze are invisible. *)
val snapshot_iter_isa : snapshot -> ((Obj_id.t * Obj_id.t) -> unit) -> unit

val snapshot_iter_scalar : snapshot -> Obj_id.t -> (mentry -> unit) -> unit

val snapshot_iter_set : snapshot -> Obj_id.t -> (mentry -> unit) -> unit

(** Counts as of the snapshot's freeze, regardless of later appends. *)
val snapshot_stats : snapshot -> stats

(** Dump the whole store as facts, one per line, in program syntax; used by
    the CLI's [--dump] and by golden tests. Skolem objects print as the
    paths denoting them. *)
val pp : Format.formatter -> t -> unit

(** Internal-consistency audit: primary tables agree with their buckets and
    inverse indexes, set memberships agree with the per-key sets, the
    hierarchy adjacency agrees with the edge log and stays acyclic.
    Returns human-readable descriptions of any violations (empty = sound);
    fuzz-tested after every random workload in the test suite. *)
val check_invariants : t -> string list
