module Store = Oodb.Store
module Set = Oodb.Obj_id.Set

type order = Greedy | Source | Compiled

type seed = { seed_atom : int; seed_from : int }

exception Stopped

let infinity_cost = max_int / 2

type ctx = {
  store : Store.t;
  self_id : Oodb.Obj_id.t;
  binding : Oodb.Obj_id.t option array;
  total_scalar : int;
  total_set : int;
  hilog_virtual : bool;
      (* enumerate skolem objects for variable method positions; off by
         default because it makes programs like the generic tc of section 6
         have an infinite minimal model *)
  mutable steps : int;
  interrupt : unit -> unit;
      (* cooperative cancellation hook, polled every [poll_interval]
         unification steps; raises to abort the enumeration *)
}

(* Every solution costs at least one [bind], so an interrupt raised from
   the poll fires within [poll_interval] unifications — the bound the
   cancellation-latency property test relies on. A power of two keeps the
   poll a single [land]. *)
let poll_interval = 1024

let poll_mask = poll_interval - 1

(* STATS counters, process-wide: regex plan nodes compiled (bumped by
   {!Flatten.compile_regex}) and (object, state) product pairs expanded
   by the automaton join. *)
let regex_plans_total = Atomic.make 0

let product_states_expanded = Atomic.make 0

(* Expansion steps between binds (the automaton-product BFS) count
   against the same budget poll as unifications. *)
let tick ctx =
  let s = ctx.steps + 1 in
  ctx.steps <- s;
  if s land poll_mask = 0 then ctx.interrupt ()

let deref ctx = function
  | Ir.Const o -> Some o
  | Ir.V i -> ctx.binding.(i)

(* [bind ctx t v k] unifies term [t] with object [v], runs [k], undoes. *)
let bind ctx t v k =
  let s = ctx.steps + 1 in
  ctx.steps <- s;
  if s land poll_mask = 0 then ctx.interrupt ();
  match t with
  | Ir.Const c -> if Oodb.Obj_id.equal c v then k ()
  | Ir.V i -> (
    match ctx.binding.(i) with
    | Some x -> if Oodb.Obj_id.equal x v then k ()
    | None ->
      ctx.binding.(i) <- Some v;
      Fun.protect ~finally:(fun () -> ctx.binding.(i) <- None) k)

let rec bind_list ctx ts vs k =
  match (ts, vs) with
  | [], [] -> k ()
  | t :: ts', v :: vs' -> bind ctx t v (fun () -> bind_list ctx ts' vs' k)
  | [], _ :: _ | _ :: _, [] -> ()

and bind_entry ctx (app : Ir.app) (e : Store.mentry) k =
  (* the single funnel for index-record access: tombstoned tuples are
     invisible to every enumeration *)
  if Store.live e && List.length app.args = List.length e.args then
    bind ctx app.recv e.recv (fun () ->
        bind_list ctx app.args e.args (fun () -> bind ctx app.res e.res k))

(* Enumerate the whole universe for term [t] (if unbound). *)
let enum_universe ctx t k =
  match deref ctx t with
  | Some _ -> k ()
  | None ->
    let card = Oodb.Universe.cardinality (Store.universe ctx.store) in
    for o = 0 to card - 1 do
      bind ctx t o k
    done

let rec force_bound ctx slots k =
  match slots with
  | [] -> k ()
  | s :: rest -> enum_universe ctx (Ir.V s) (fun () -> force_bound ctx rest k)

(* ------------------------------------------------------------------ *)
(* Cost estimation                                                     *)

let cost_app ctx which (app : Ir.app) =
  let bucket_len m =
    match which with
    | `Scalar -> Oodb.Vec.length (Store.scalar_bucket ctx.store m)
    | `Set -> Oodb.Vec.length (Store.set_bucket ctx.store m)
  in
  let inverse_len m res =
    match which with
    | `Scalar -> Oodb.Vec.length (Store.scalar_inverse ctx.store ~meth:m ~res)
    | `Set -> Oodb.Vec.length (Store.set_inverse ctx.store ~meth:m ~res)
  in
  let recv_len m recv =
    match which with
    | `Scalar ->
      Oodb.Vec.length (Store.scalar_recv_index ctx.store ~meth:m ~recv)
    | `Set -> Oodb.Vec.length (Store.set_recv_index ctx.store ~meth:m ~recv)
  in
  match deref ctx app.meth with
  | None -> (
    (* variable method: scan every method's bucket *)
    match which with
    | `Scalar -> ctx.total_scalar + 16
    | `Set -> ctx.total_set + 16)
  | Some m ->
    if Oodb.Obj_id.equal m ctx.self_id && app.args = [] then
      match (deref ctx app.recv, deref ctx app.res) with
      | Some _, _ | _, Some _ -> 1
      | None, None -> infinity_cost
    else begin
      let args_bound = List.for_all (fun a -> deref ctx a <> None) app.args in
      match deref ctx app.recv with
      | Some recv when args_bound -> (
        match which with `Scalar -> 1 | `Set -> 1 + recv_len m recv)
      | Some recv -> (
        let r = recv_len m recv in
        match deref ctx app.res with
        | Some res -> 1 + min r (inverse_len m res)
        | None -> 1 + r)
      | None -> (
        match deref ctx app.res with
        | Some res -> 1 + inverse_len m res
        | None -> 1 + bucket_len m)
    end

let cost_isa ctx (o, c) =
  let log_len = Oodb.Vec.length (Store.isa_log ctx.store) in
  match (deref ctx o, deref ctx c) with
  | Some _, Some _ -> 1
  | Some _, None -> 4
  | None, Some _ -> 2 + log_len
  | None, None -> 4 + (log_len * 4)

let cost ctx = function
  | Ir.A_eq (a, b) -> (
    match (deref ctx a, deref ctx b) with
    | Some _, _ | _, Some _ -> 0
    | None, None -> infinity_cost)
  | Ir.A_scalar app -> cost_app ctx `Scalar app
  | Ir.A_member app -> cost_app ctx `Set app
  | Ir.A_isa (o, c) -> cost_isa ctx (o, c)
  | Ir.A_subset s ->
    if List.for_all (fun v -> ctx.binding.(v) <> None) s.s_outer then 64
    else infinity_cost
  | Ir.A_neg n ->
    if List.for_all (fun v -> ctx.binding.(v) <> None) n.n_outer then 32
    else infinity_cost
  | Ir.A_regex x -> (
    (* the product BFS visits at most |states|·|reachable objects| pairs;
       with a bound endpoint the reachable set is usually tiny, unbound it
       can touch every edge of every label relation *)
    let n = x.x_auto.Ir.a_nstates in
    match (deref ctx x.x_recv, deref ctx x.x_res) with
    | Some _, _ | _, Some _ -> 16 * n
    | None, None -> n * (16 + ctx.total_scalar + ctx.total_set))

(* ------------------------------------------------------------------ *)
(* Compiled plans                                                      *)

type plan = {
  plan_seed : int;  (* atom executed first, from its delta; -1 = none *)
  plan_perm : int array;  (* the remaining atoms, in execution order *)
  plan_size : int;  (* Store.size when compiled, for staleness checks *)
}

(* Statically predicted final relation cardinalities, supplied by the
   abstract-interpretation pass (lib/analysis). When available they
   replace the store's {e current} bucket lengths in the cost model —
   at plan-compile time a derived relation may still be empty, while its
   predicted fixpoint size ranks joins the way they will actually run.
   [est_epoch] versions the estimates for plan-cache keys: plans
   compiled under different estimates must not be confused. Plans remain
   sound under any estimates (every permutation computes the same
   answers); only ranking quality changes. *)
type estimator = {
  est_epoch : int;
  est_card : Ir.rel -> int option;
}

(* Cost of an atom under {e simulated} boundness, from the store's current
   index statistics. This is the planner's model, shared with [explain];
   the runtime estimator above refines it with the actual bound values
   (exact receiver-index and inverse-index lengths). *)
let static_cost ?estimator store ~self_id ~is_bound (a : Ir.atom) =
  let est rel =
    match estimator with None -> None | Some e -> e.est_card rel
  in
  let app_cost which (app : Ir.app) =
    let bucket_len m =
      match
        est (match which with `Scalar -> Ir.R_scalar m | `Set -> Ir.R_set m)
      with
      | Some c -> c
      | None -> (
        match which with
        | `Scalar -> Oodb.Vec.length (Store.scalar_bucket store m)
        | `Set -> Oodb.Vec.length (Store.set_bucket store m))
    in
    (* average tuples per receiver: the expected receiver-index hit *)
    let per_recv m =
      let keys =
        match which with
        | `Scalar -> Store.scalar_recv_keys store m
        | `Set -> Store.set_recv_keys store m
      in
      bucket_len m / max 1 keys
    in
    match app.meth with
    | Ir.V i when not (is_bound (Ir.V i)) -> 100_000
    | meth ->
      let m = match meth with Ir.Const m -> Some m | Ir.V _ -> None in
      let is_self =
        match meth with
        | Ir.Const c -> Oodb.Obj_id.equal c self_id && app.args = []
        | Ir.V _ -> false
      in
      if is_self then
        if is_bound app.recv || is_bound app.res then 1 else 100_000
      else if is_bound app.recv then
        if List.for_all is_bound app.args then
          match (which, m) with
          | `Scalar, _ -> 1
          | `Set, Some m -> 1 + per_recv m
          | `Set, None -> 4
        else (match m with Some m -> 1 + per_recv m | None -> 16)
      else if is_bound app.res then
        4 + (match m with Some m -> bucket_len m / 4 | None -> 64)
      else 1 + (match m with Some m -> bucket_len m | None -> 1024)
  in
  match a with
  | Ir.A_eq (x, y) -> if is_bound x || is_bound y then 0 else 100_000
  | Ir.A_scalar app -> app_cost `Scalar app
  | Ir.A_member app -> app_cost `Set app
  | Ir.A_isa (o, c) -> (
    let log_len =
      match est Ir.R_isa with
      | Some c -> c
      | None -> Oodb.Vec.length (Store.isa_log store)
    in
    match (is_bound o, is_bound c) with
    | true, true -> 1
    | true, false -> 4
    | false, true -> 16 + (log_len / 8)
    | false, false -> 1024 + (log_len * 4))
  | Ir.A_subset s ->
    if List.for_all (fun v -> is_bound (Ir.V v)) s.s_outer then 64
    else 100_000
  | Ir.A_neg n ->
    if List.for_all (fun v -> is_bound (Ir.V v)) n.n_outer then 32
    else 100_000
  | Ir.A_regex x ->
    (* |states| · Σ label-relation cardinalities bounds the product BFS;
       a bound endpoint prunes it to the reachable slice *)
    let n = x.x_auto.Ir.a_nstates in
    let label_total =
      List.fold_left
        (fun acc rel ->
          acc
          +
          match est rel with
          | Some c -> c
          | None -> (
            match rel with
            | Ir.R_scalar m -> Oodb.Vec.length (Store.scalar_bucket store m)
            | Ir.R_set m -> Oodb.Vec.length (Store.set_bucket store m)
            | Ir.R_isa | Ir.R_isa_c _ | Ir.R_any -> 0))
        0
        (Ir.automaton_rels x.x_auto)
    in
    if is_bound x.x_recv || is_bound x.x_res then 16 + (n * label_total / 8)
    else 1024 + (n * label_total)

(* Compile a join order once from the static cost model: repeatedly pick
   the cheapest remaining atom under the boundness reached so far. Any
   permutation is sound — every atom executes correctly under any
   boundness — so the plan can be cached and reused across rounds and
   bindings; only its quality decays as the store grows. *)
let compile_plan ?estimator ?(bindings = []) ?seed_atom store (q : Ir.query)
    =
  let self_id = Store.name store "self" in
  let bound = Array.make (max q.nvars 1) false in
  List.iter (fun (slot, _) -> bound.(slot) <- true) bindings;
  let is_bound = function Ir.Const _ -> true | Ir.V i -> bound.(i) in
  let atoms = Array.of_list q.atoms in
  let n = Array.length atoms in
  let used = Array.make n false in
  let mark i =
    List.iter (fun v -> bound.(v) <- true) (Ir.atom_vars atoms.(i))
  in
  let plan_seed =
    match seed_atom with
    | Some i when i >= 0 && i < n -> i
    | Some i -> invalid_arg (Printf.sprintf "Solve.compile_plan: seed %d" i)
    | None -> -1
  in
  let remaining =
    if plan_seed >= 0 then begin
      used.(plan_seed) <- true;
      mark plan_seed;
      n - 1
    end
    else n
  in
  let perm = Array.make remaining (-1) in
  for slot = 0 to remaining - 1 do
    let best = ref (-1) in
    let best_cost = ref max_int in
    for i = 0 to n - 1 do
      if not used.(i) then begin
        let c = static_cost ?estimator store ~self_id ~is_bound atoms.(i) in
        if c < !best_cost then begin
          best_cost := c;
          best := i
        end
      end
    done;
    let i = !best in
    used.(i) <- true;
    mark i;
    perm.(slot) <- i
  done;
  { plan_seed; plan_perm = perm; plan_size = Store.size store }

(* A plan compiled against a much smaller store may rank accesses badly;
   re-plan once the store has roughly doubled. *)
let plan_stale store plan = Store.size store > 16 + (2 * plan.plan_size)

(* ------------------------------------------------------------------ *)
(* Atom execution                                                      *)

let exec_app ctx which (app : Ir.app) k =
  let lookup m recv args k =
    match which with
    | `Scalar -> (
      match Store.scalar_lookup ctx.store ~meth:m ~recv ~args with
      | Some res -> bind ctx app.res res k
      | None -> ())
    | `Set ->
      Set.iter
        (fun res -> bind ctx app.res res k)
        (Store.set_lookup ctx.store ~meth:m ~recv ~args)
  in
  let scan_bucket m k =
    let bucket =
      match which with
      | `Scalar -> Store.scalar_bucket ctx.store m
      | `Set -> Store.set_bucket ctx.store m
    in
    Oodb.Vec.iter (fun e -> bind_entry ctx app e k) bucket
  in
  let with_method m k =
    if Oodb.Obj_id.equal m ctx.self_id && app.args = [] then begin
      (* built-in identity for method application; no set-valued
         extension (see DESIGN.md) *)
      match which with
      | `Set -> ()
      | `Scalar -> (
        match (deref ctx app.recv, deref ctx app.res) with
        | Some r, _ -> bind ctx app.res r k
        | None, Some r -> bind ctx app.recv r k
        | None, None ->
          enum_universe ctx app.recv (fun () ->
              match deref ctx app.recv with
              | Some r -> bind ctx app.res r k
              | None -> assert false))
    end
    else begin
      let args_bound = List.for_all (fun a -> deref ctx a <> None) app.args in
      match deref ctx app.recv with
      | Some recv when args_bound ->
        let args = List.map (fun a -> Option.get (deref ctx a)) app.args in
        lookup m recv args k
      | Some recv ->
        (* bound receiver, open arguments: the receiver-keyed secondary
           index holds exactly this receiver's tuples — when the result is
           bound too, take whichever of the two indexes is smaller *)
        let ridx =
          match which with
          | `Scalar -> Store.scalar_recv_index ctx.store ~meth:m ~recv
          | `Set -> Store.set_recv_index ctx.store ~meth:m ~recv
        in
        let v =
          match deref ctx app.res with
          | Some res ->
            let inv =
              match which with
              | `Scalar -> Store.scalar_inverse ctx.store ~meth:m ~res
              | `Set -> Store.set_inverse ctx.store ~meth:m ~res
            in
            if Oodb.Vec.length inv < Oodb.Vec.length ridx then inv else ridx
          | None -> ridx
        in
        Oodb.Vec.iter (fun e -> bind_entry ctx app e k) v
      | None -> (
        match deref ctx app.res with
        | Some res ->
          let inv =
            match which with
            | `Scalar -> Store.scalar_inverse ctx.store ~meth:m ~res
            | `Set -> Store.set_inverse ctx.store ~meth:m ~res
          in
          Oodb.Vec.iter (fun e -> bind_entry ctx app e k) inv
        | None -> scan_bucket m k)
    end
  in
  match deref ctx app.meth with
  | Some m -> with_method m k
  | None ->
    let meths =
      match which with
      | `Scalar -> Store.scalar_meths ctx.store
      | `Set -> Store.set_meths ctx.store
    in
    let u = Store.universe ctx.store in
    List.iter
      (fun m ->
        if ctx.hilog_virtual || not (Oodb.Universe.is_skolem u m) then
          bind ctx app.meth m (fun () -> with_method m k))
      meths

(* The built-in value-class memberships ([1 : integer], ["a" : string])
   hold for tests but have no hierarchy edges, so [Store.classes_of]
   alone under-enumerates: a join order that generates the class variable
   from an isa atom would silently miss solutions another order finds via
   the bound test — enumeration must agree with {!Store.is_member} for
   the solver's answers to be independent of the plan (the parallel
   fixpoint's Jacobi schedule relies on that). The ancestor set of a
   value object is still finite: its explicit ancestors plus its value
   class (when interned). Class extensions stay non-enumerable the other
   way round (members of [integer] are infinite in spirit). *)
let ancestors_of ctx uo =
  let explicit = Store.classes_of ctx.store uo in
  let u = Store.universe ctx.store in
  let builtin =
    match Oodb.Universe.descriptor u uo with
    | Oodb.Universe.Int _ -> Oodb.Universe.find_name u "integer"
    | Oodb.Universe.Str _ -> Oodb.Universe.find_name u "string"
    | Oodb.Universe.Name _ | Oodb.Universe.Skolem _ -> None
  in
  match builtin with
  | Some c -> Set.add c explicit
  | None -> explicit

let exec_isa ctx o c k =
  match (deref ctx o, deref ctx c) with
  | Some uo, Some uc -> if Store.is_member ctx.store uo uc then k ()
  | Some uo, None ->
    Set.iter (fun uc -> bind ctx c uc k) (ancestors_of ctx uo)
  | None, Some uc ->
    Set.iter (fun uo -> bind ctx o uo k) (Store.members ctx.store uc)
  | None, None ->
    (* every object with at least one ancestor, paired with each ancestor;
       value objects count via their built-in class *)
    let sources = ref Set.empty in
    Oodb.Vec.iter
      (fun (e : Store.ientry) ->
        if Store.isa_live e then sources := Set.add e.i_sub !sources)
      (Store.isa_log ctx.store);
    let u = Store.universe ctx.store in
    (match
       (Oodb.Universe.find_name u "integer", Oodb.Universe.find_name u "string")
     with
    | None, None -> ()
    | _ ->
      Oodb.Universe.iter u (fun uo d ->
          match d with
          | Oodb.Universe.Int _ | Oodb.Universe.Str _ ->
            sources := Set.add uo !sources
          | Oodb.Universe.Name _ | Oodb.Universe.Skolem _ -> ()));
    Set.iter
      (fun uo ->
        bind ctx o uo (fun () ->
            Set.iter (fun uc -> bind ctx c uc k) (ancestors_of ctx uo)))
      !sources

let exec_eq ctx a b k =
  match (deref ctx a, deref ctx b) with
  | Some x, Some y -> if Oodb.Obj_id.equal x y then k ()
  | Some x, None -> bind ctx b x k
  | None, Some y -> bind ctx a y k
  | None, None ->
    enum_universe ctx a (fun () ->
        match deref ctx a with
        | Some x -> bind ctx b x k
        | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Automaton-product join: BFS over (object, state) pairs. The direction
   follows the bound endpoint — forward from a bound receiver along
   [a_trans], backward from a bound result along [a_rtrans] and the
   inverse indexes; with neither bound the receiver ranges over the
   universe. Each popped pair costs one budget-poll tick and one
   [product_states_expanded]. *)

let regex_step ctx (lbl : Ir.label) obj f =
  if lbl.Ir.lbl_set then
    Set.iter f
      (Store.set_lookup ctx.store ~meth:lbl.Ir.lbl_meth ~recv:obj
         ~args:lbl.Ir.lbl_args)
  else
    match
      Store.scalar_lookup ctx.store ~meth:lbl.Ir.lbl_meth ~recv:obj
        ~args:lbl.Ir.lbl_args
    with
    | Some v -> f v
    | None -> ()

let regex_rstep ctx (lbl : Ir.label) obj f =
  let inv =
    if lbl.Ir.lbl_set then
      Store.set_inverse ctx.store ~meth:lbl.Ir.lbl_meth ~res:obj
    else Store.scalar_inverse ctx.store ~meth:lbl.Ir.lbl_meth ~res:obj
  in
  Oodb.Vec.iter
    (fun (e : Store.mentry) ->
      if Store.live e && e.args = lbl.Ir.lbl_args then f e.recv)
    inv

(* [emit] runs the solution continuation, so arbitrary nested enumeration
   (and interrupt exceptions) fire while the queue still holds unexpanded
   pairs — queue and visited set are per-call, which keeps that safe.
   Objects are deduplicated on emission: a pair may be reached through
   many accepting states but each endpoint object is one solution. *)
let regex_bfs ctx ~init ~next ~emits emit =
  let visited = Hashtbl.create 64 in
  let emitted = Hashtbl.create 16 in
  let queue = Queue.create () in
  let push obj q =
    if not (Hashtbl.mem visited (obj, q)) then begin
      Hashtbl.add visited (obj, q) ();
      Queue.add (obj, q) queue
    end
  in
  List.iter (fun (obj, q) -> push obj q) init;
  while not (Queue.is_empty queue) do
    let obj, q = Queue.pop queue in
    Atomic.incr product_states_expanded;
    tick ctx;
    if emits q && not (Hashtbl.mem emitted obj) then begin
      Hashtbl.add emitted obj ();
      emit obj
    end;
    next obj q push
  done

let regex_forward ctx (auto : Ir.automaton) r0 emit =
  regex_bfs ctx
    ~init:[ (r0, auto.Ir.a_start) ]
    ~next:(fun obj q push ->
      Array.iter
        (fun (lbl, q') -> regex_step ctx lbl obj (fun v -> push v q'))
        auto.Ir.a_trans.(q))
    ~emits:(fun q -> auto.Ir.a_accept.(q))
    emit

(* Backward: a pair (obj, q) means "obj steps to the bound result along a
   word taking q to an accepting state"; seeded with the result at every
   accepting state (the empty word), answers pop at the start state. *)
let regex_backward ctx (auto : Ir.automaton) res emit =
  let init = ref [] in
  Array.iteri
    (fun q acc -> if acc then init := (res, q) :: !init)
    auto.Ir.a_accept;
  regex_bfs ctx ~init:!init
    ~next:(fun obj q push ->
      Array.iter
        (fun (lbl, q0) -> regex_rstep ctx lbl obj (fun v -> push v q0))
        auto.Ir.a_rtrans.(q))
    ~emits:(fun q -> q = auto.Ir.a_start)
    emit

let exec_regex ctx (x : Ir.regex_app) k =
  let auto = x.x_auto in
  match deref ctx x.x_recv with
  | Some r0 -> regex_forward ctx auto r0 (fun v -> bind ctx x.x_res v k)
  | None -> (
    match deref ctx x.x_res with
    | Some res ->
      regex_backward ctx auto res (fun v -> bind ctx x.x_recv v k)
    | None ->
      enum_universe ctx x.x_recv (fun () ->
          match deref ctx x.x_recv with
          | Some r0 ->
            regex_forward ctx auto r0 (fun v -> bind ctx x.x_res v k)
          | None -> assert false))

(* Nested enumeration of a sub-query's atoms against the shared binding
   array; used for A_subset members and A_neg. *)
let rec solve_atoms ctx order atoms k =
  match atoms with
  | [] -> k ()
  | _ ->
    let arr = Array.of_list atoms in
    let used = Array.make (Array.length arr) false in
    run_atoms ctx order arr used (Array.length arr) k

and run_atoms ctx order arr used remaining k =
  if remaining = 0 then k ()
  else begin
    let best = ref (-1) in
    let best_cost = ref max_int in
    (match order with
    | Source ->
      let rec first i =
        if i >= Array.length arr then ()
        else if used.(i) then first (i + 1)
        else best := i
      in
      first 0
    | Greedy | Compiled ->
      (* nested sub-queries under a compiled outer plan still schedule
         adaptively: they are small and their boundness is fully known *)
      Array.iteri
        (fun i a ->
          if not used.(i) then begin
            let c = cost ctx a in
            if c < !best_cost then begin
              best_cost := c;
              best := i
            end
          end)
        arr);
    let i = !best in
    used.(i) <- true;
    Fun.protect
      ~finally:(fun () -> used.(i) <- false)
      (fun () ->
        exec_atom ctx order arr.(i) (fun () ->
            run_atoms ctx order arr used (remaining - 1) k))
  end

and exec_atom ctx order atom k =
  match atom with
  | Ir.A_eq (a, b) -> exec_eq ctx a b k
  | Ir.A_isa (o, c) -> exec_isa ctx o c k
  | Ir.A_scalar app -> exec_app ctx `Scalar app k
  | Ir.A_member app -> exec_app ctx `Set app k
  | Ir.A_subset s -> exec_subset ctx order s k
  | Ir.A_neg n -> exec_neg ctx order n k
  | Ir.A_regex x -> exec_regex ctx x k

and exec_subset ctx order s k =
  force_bound ctx s.s_outer (fun () ->
      enum_universe ctx s.s_meth (fun () ->
          enum_universe ctx s.s_recv (fun () ->
              let rec bind_args = function
                | [] -> check ()
                | a :: rest -> enum_universe ctx a (fun () -> bind_args rest)
              and check () =
                let m = Option.get (deref ctx s.s_meth) in
                let recv = Option.get (deref ctx s.s_recv) in
                let args =
                  List.map (fun a -> Option.get (deref ctx a)) s.s_args
                in
                let have =
                  if Oodb.Obj_id.equal m ctx.self_id && args = [] then
                    Set.empty
                  else Store.set_lookup ctx.store ~meth:m ~recv ~args
                in
                (* every member of the included set must be in [have] *)
                let ok = ref true in
                (try
                   solve_atoms ctx order s.sub_atoms (fun () ->
                       match deref ctx s.member with
                       | Some u ->
                         if not (Set.mem u have) then begin
                           ok := false;
                           raise Stopped
                         end
                       | None ->
                         (* member unconstrained: included set is the whole
                            universe; only an equal [have] would do *)
                         ok := false;
                         raise Stopped)
                 with Stopped -> ());
                if !ok then k ()
              in
              bind_args s.s_args)))

and exec_neg ctx order n k =
  force_bound ctx n.n_outer (fun () ->
      let found = ref false in
      (try
         solve_atoms ctx order n.n_atoms (fun () ->
             found := true;
             raise Stopped)
       with Stopped -> ());
      if not !found then k ())

(* ------------------------------------------------------------------ *)
(* Seeded (delta) execution                                            *)

let exec_seeded ctx order atom from k =
  match atom with
  | Ir.A_scalar app -> (
    match deref ctx app.meth with
    | Some m ->
      Oodb.Vec.iter_from
        (fun e -> bind_entry ctx app e k)
        (Store.scalar_bucket ctx.store m)
        from
    | None -> exec_atom ctx order atom k)
  | Ir.A_member app -> (
    match deref ctx app.meth with
    | Some m ->
      Oodb.Vec.iter_from
        (fun e -> bind_entry ctx app e k)
        (Store.set_bucket ctx.store m)
        from
    | None -> exec_atom ctx order atom k)
  | Ir.A_isa (o, c) ->
    (* each new direct edge (src, dst) contributes the derived pairs
       (x, y) with x <= src and dst <= y *)
    Oodb.Vec.iter_from
      (fun (e : Store.ientry) ->
        if Store.isa_live e then begin
          let src = e.i_sub and dst = e.i_cls in
          let xs = Set.add src (Store.members ctx.store src) in
          let ys = Set.add dst (Store.classes_of ctx.store dst) in
          Set.iter
            (fun x ->
              bind ctx o x (fun () -> Set.iter (fun y -> bind ctx c y k) ys))
            xs
        end)
      (Store.isa_log ctx.store)
      from
  (* a regex atom has no single delta relation: when any label relation
     grows, [Rule.seedable] keeps the atom out of the seed set and the
     whole rule re-evaluates, so a plain [exec_atom] here is sound *)
  | Ir.A_eq _ | Ir.A_subset _ | Ir.A_neg _ | Ir.A_regex _ ->
    exec_atom ctx order atom k

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let no_interrupt () = ()

let make_ctx ~hilog_virtual ~interrupt store (q : Ir.query) =
  let total which meths =
    List.fold_left (fun acc m -> acc + Oodb.Vec.length (which m)) 0 meths
  in
  {
    store;
    self_id = Store.name store "self";
    binding = Array.make q.nvars None;
    total_scalar = total (Store.scalar_bucket store) (Store.scalar_meths store);
    total_set = total (Store.set_bucket store) (Store.set_meths store);
    hilog_virtual;
    steps = 0;
    interrupt;
  }

let iter ?(order = Greedy) ?(hilog_virtual = false)
    ?(interrupt = no_interrupt) ?estimator ?(bindings = []) ?seed ?plan
    ?limit store (q : Ir.query) ~f =
  let ctx = make_ctx ~hilog_virtual ~interrupt store q in
  List.iter (fun (slot, obj) -> ctx.binding.(slot) <- Some obj) bindings;
  let produced = ref 0 in
  let finish () =
    (* any still-unbound slot ranges over the whole universe *)
    let rec complete i =
      if i >= q.nvars then begin
        f (Array.map Option.get ctx.binding);
        incr produced;
        match limit with
        | Some l when !produced >= l -> raise Stopped
        | Some _ | None -> ()
      end
      else if ctx.binding.(i) <> None then complete (i + 1)
      else enum_universe ctx (Ir.V i) (fun () -> complete (i + 1))
    in
    complete 0
  in
  let atoms = Array.of_list q.atoms in
  let seed_idx = match seed with Some s -> s.seed_atom | None -> -1 in
  let plan =
    match plan with
    | Some p ->
      if
        p.plan_seed <> seed_idx
        || Array.length p.plan_perm + (if seed_idx >= 0 then 1 else 0)
           <> Array.length atoms
      then invalid_arg "Solve.iter: plan does not match query/seed";
      Some p
    | None -> (
      match order with
      | Compiled ->
        Some
          (compile_plan ?estimator ~bindings
             ?seed_atom:(if seed_idx >= 0 then Some seed_idx else None)
             store q)
      | Greedy | Source -> None)
  in
  let body () =
    match plan with
    | Some p ->
      let perm = p.plan_perm in
      let rec go i =
        if i >= Array.length perm then finish ()
        else exec_atom ctx order atoms.(perm.(i)) (fun () -> go (i + 1))
      in
      (match seed with
      | None -> go 0
      | Some { seed_atom; seed_from } ->
        exec_seeded ctx order atoms.(seed_atom) seed_from (fun () -> go 0))
    | None -> (
      let used = Array.make (Array.length atoms) false in
      match seed with
      | None -> run_atoms ctx order atoms used (Array.length atoms) finish
      | Some { seed_atom; seed_from } ->
        used.(seed_atom) <- true;
        exec_seeded ctx order atoms.(seed_atom) seed_from (fun () ->
            run_atoms ctx order atoms used (Array.length atoms - 1) finish))
  in
  try body () with Stopped -> ()

let named_solutions ?(order = Greedy) ?interrupt ?limit store (q : Ir.query)
    =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  iter ~order ?interrupt ?limit store q ~f:(fun binding ->
      let row = List.map (fun (_, i) -> binding.(i)) q.named in
      if not (Hashtbl.mem seen row) then begin
        Hashtbl.add seen row ();
        acc := row :: !acc
      end);
  List.rev !acc

let satisfiable ?(order = Greedy) ?interrupt store q =
  let sat = ref false in
  iter ~order ?interrupt ~limit:1 store q ~f:(fun _ -> sat := true);
  !sat

let count ?(order = Greedy) ?interrupt store (q : Ir.query) =
  match q.named with
  | [] -> if satisfiable ~order ?interrupt store q then 1 else 0
  | _ -> List.length (named_solutions ~order ?interrupt store q)

(* ------------------------------------------------------------------ *)
(* Plan explanation                                                    *)

(* The atom order comes from {!compile_plan} — the exact plan [Compiled]
   executes, and the same static simulation [Greedy] starts from (the
   runtime order can diverge when intermediate bindings change the cost
   ranking). Access paths are described under the boundness reached at
   each step, mirroring [exec_app]'s dispatch. *)
let explain ?(order = Greedy) ?estimator ?(bindings = []) store (q : Ir.query)
    =
  let u = Store.universe store in
  let bound = Array.make (max q.nvars 1) false in
  List.iter (fun (slot, _) -> bound.(slot) <- true) bindings;
  let is_bound = function Ir.Const _ -> true | Ir.V i -> bound.(i) in
  let self_id = Store.name store "self" in
  let describe (a : Ir.atom) =
    let app_path which (app : Ir.app) =
      let kind = match which with `Scalar -> "scalar" | `Set -> "set" in
      match app.meth with
      | Ir.V i when not bound.(i) ->
        Printf.sprintf "scan every %s method" kind
      | meth ->
        let mname =
          match meth with
          | Ir.Const m -> Format.asprintf "%a" (Oodb.Universe.pp_obj u) m
          | Ir.V i -> Printf.sprintf "_%d" i
        in
        if
          (match meth with
          | Ir.Const m -> Oodb.Obj_id.equal m self_id && app.args = []
          | Ir.V _ -> false)
        then "identity (self)"
        else if is_bound app.recv && List.for_all is_bound app.args then
          Printf.sprintf "keyed %s lookup on %s" kind mname
        else if is_bound app.recv then
          Printf.sprintf "receiver index scan on %s" mname
        else if is_bound app.res then
          Printf.sprintf "inverse index scan on %s" mname
        else Printf.sprintf "bucket scan on %s" mname
    in
    let path =
      match a with
      | Ir.A_eq _ -> "unification"
      | Ir.A_scalar app -> app_path `Scalar app
      | Ir.A_member app -> app_path `Set app
      | Ir.A_isa (o, c) -> (
        match (is_bound o, is_bound c) with
        | true, true -> "membership check"
        | true, false -> "ancestors of receiver"
        | false, true -> "members of class"
        | false, false -> "scan class hierarchy")
      | Ir.A_subset _ -> "nested set-inclusion subquery"
      | Ir.A_neg _ -> "nested negation subquery"
      | Ir.A_regex x ->
        if is_bound x.x_recv then
          "automaton product, forward BFS from receiver"
        else if is_bound x.x_res then
          "automaton product, backward BFS from result"
        else "automaton product, forward BFS over the universe"
    in
    (* per-plan-node predicted cardinality, when the static estimator
       supplied one for the atom's relation; a regex node is bounded by
       |states| · Σ label-relation cardinalities *)
    let predicted =
      match (estimator, a) with
      | Some e, Ir.A_regex x ->
        let total =
          List.fold_left
            (fun acc rel ->
              match e.est_card rel with Some c -> acc + c | None -> acc)
            0
            (Ir.automaton_rels x.x_auto)
        in
        if total > 0 then
          Printf.sprintf "  ~%d product pairs"
            (x.x_auto.Ir.a_nstates * total)
        else ""
      | Some e, a -> (
        match Ir.atom_rel a with
        | Some rel -> (
          match e.est_card rel with
          | Some n -> Printf.sprintf "  ~%d tuples" n
          | None -> "")
        | None -> "")
      | None, _ -> ""
    in
    (* the compiled automaton itself: states, transitions, seed set *)
    let detail =
      match a with
      | Ir.A_regex x ->
        let auto = x.x_auto in
        let b = Buffer.create 128 in
        let accepting =
          List.filter
            (fun q -> auto.Ir.a_accept.(q))
            (List.init auto.Ir.a_nstates Fun.id)
        in
        Printf.bprintf b
          "\n      automaton: %d states, start %d, accepting {%s}"
          auto.Ir.a_nstates auto.Ir.a_start
          (String.concat ", " (List.map string_of_int accepting));
        Array.iteri
          (fun q out ->
            Array.iter
              (fun ((lbl : Ir.label), q') ->
                Printf.bprintf b "\n        %d %s%s%s-> %d" q
                  (if lbl.Ir.lbl_set then "-.." else "-.")
                  (Format.asprintf "%a" (Oodb.Universe.pp_obj u)
                     lbl.Ir.lbl_meth)
                  (match lbl.Ir.lbl_args with
                  | [] -> ""
                  | args ->
                    Format.asprintf "@@(%a)"
                      (Format.pp_print_list
                         ~pp_sep:(fun ppf () ->
                           Format.pp_print_string ppf ", ")
                         (Oodb.Universe.pp_obj u))
                      args)
                  q')
              out)
          auto.Ir.a_trans;
        let seed =
          if is_bound x.x_recv then
            Printf.sprintf "{(receiver, %d)}" auto.Ir.a_start
          else if is_bound x.x_res then "{(result, q) | q accepting}"
          else "universe × {start}"
        in
        Printf.bprintf b "\n      seed set: %s" seed;
        Buffer.contents b
      | Ir.A_isa _ | Ir.A_scalar _ | Ir.A_member _ | Ir.A_eq _
      | Ir.A_subset _ | Ir.A_neg _ ->
        ""
    in
    Format.asprintf "%a  [%s]%s%s" (Ir.pp_atom u) a path predicted detail
  in
  let atoms = Array.of_list q.atoms in
  let perm =
    match order with
    | Source -> Array.init (Array.length atoms) (fun i -> i)
    | Greedy | Compiled ->
      (compile_plan ?estimator ~bindings store q).plan_perm
  in
  Array.to_list
    (Array.map
       (fun i ->
         let line = describe atoms.(i) in
         List.iter (fun v -> bound.(v) <- true) (Ir.atom_vars atoms.(i));
         line)
       perm)
