(** Flattening references to conjunctions of core atoms.

    This realises, constructively, the paper's central observation: the
    two-dimensional path

    {v X : employee[age -> 30]..vehicles : automobile[cylinders -> 4].color[Z] v}

    is the conjunction

    {v isa(X, employee) & scalar(age; X) = 30 & member(V) in set(vehicles; X)
       & isa(V, automobile) & scalar(cylinders; V) = 4
       & scalar(color; V) = Z v}

    over a fresh intermediate variable [V] — which is exactly the
    "conjunction of several one-dimensional paths" (query 1.4) that XSQL
    needs. Names are interned into the store's universe during flattening.

    The built-in method [self] is compiled away: [t.self] and [t..self]
    flatten to [t], and [t\[self -> r\]] to an equality atom, implementing
    "for every object the method self yields the object itself".

    Signature arrows are not formulas; flattening one raises
    [Invalid_argument]. Callers are expected to have run {!Syntax.Wellformed}
    first. *)

(** [reference store t] is the query whose solutions (projected on the
    result term) are exactly [nu_I(t)]; the result term denotes the
    object(s) the reference evaluates to. *)
val reference : Oodb.Store.t -> Syntax.Ast.reference -> Ir.query * Ir.term

(** Flatten a conjunction of body or query literals; shared variables keep
    shared slots. *)
val literals : Oodb.Store.t -> Syntax.Ast.literal list -> Ir.query

(** Compile a regular path to its epsilon-free NFA (Thompson construction,
    epsilon closures folded in, unreachable states pruned); label methods
    and arguments are interned into the store's universe. Raises
    [Invalid_argument] on non-ground literals. *)
val compile_regex : Oodb.Store.t -> Syntax.Ast.regex -> Ir.automaton
