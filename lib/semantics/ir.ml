type term = Const of Oodb.Obj_id.t | V of int

(* One transition label of a path automaton: a ground method application.
   [lbl_set] selects the set-valued ('..') edge relation over the scalar
   ('.') one. *)
type label = {
  lbl_set : bool;
  lbl_meth : Oodb.Obj_id.t;
  lbl_args : Oodb.Obj_id.t list;
}

(* An epsilon-free NFA over ground labels (Thompson construction with
   epsilon closures folded in, unreachable states pruned). [a_trans] is
   the forward transition table, [a_rtrans] its reverse — the
   automaton-product join walks whichever direction the bound side
   dictates. *)
type automaton = {
  a_nstates : int;
  a_start : int;
  a_accept : bool array;
  a_trans : (label * int) array array;
  a_rtrans : (label * int) array array;
}

type atom =
  | A_isa of term * term
  | A_scalar of app
  | A_member of app
  | A_eq of term * term
  | A_subset of subset
  | A_neg of negation
  | A_regex of regex_app

and app = { meth : term; recv : term; args : term list; res : term }

and regex_app = { x_auto : automaton; x_recv : term; x_res : term }

and subset = {
  s_meth : term;
  s_recv : term;
  s_args : term list;
  sub_atoms : atom list;
  member : term;
  s_outer : int list;
  s_locals : int list;
}

and negation = {
  n_atoms : atom list;
  n_outer : int list;
  n_locals : int list;
}

type rel =
  | R_isa
  | R_isa_c of Oodb.Obj_id.t
  | R_scalar of Oodb.Obj_id.t
  | R_set of Oodb.Obj_id.t
  | R_any

let equal_rel (a : rel) b = a = b
let compare_rel (a : rel) b = Stdlib.compare a b

type query = {
  atoms : atom list;
  nvars : int;
  named : (string * int) list;
}

let pp_term u ppf = function
  | Const o -> Oodb.Universe.pp_obj u ppf o
  | V i -> Format.fprintf ppf "_%d" i

let pp_terms u ppf ts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (pp_term u) ppf ts

let pp_app u kind ppf { meth; recv; args; res } =
  Format.fprintf ppf "%s(%a; %a" kind (pp_term u) meth (pp_term u) recv;
  if args <> [] then Format.fprintf ppf " @@ %a" (pp_terms u) args;
  Format.fprintf ppf ") = %a" (pp_term u) res

let rec pp_atom u ppf = function
  | A_isa (o, c) ->
    Format.fprintf ppf "isa(%a, %a)" (pp_term u) o (pp_term u) c
  | A_scalar app -> pp_app u "scalar" ppf app
  | A_member app -> pp_app u "member" ppf app
  | A_eq (a, b) -> Format.fprintf ppf "%a = %a" (pp_term u) a (pp_term u) b
  | A_subset s ->
    Format.fprintf ppf "set(%a; %a) >= { %a | %a }" (pp_term u) s.s_meth
      (pp_term u) s.s_recv (pp_term u) s.member
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
         (pp_atom u))
      s.sub_atoms
  | A_neg n ->
    Format.fprintf ppf "not (%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
         (pp_atom u))
      n.n_atoms
  | A_regex x ->
    Format.fprintf ppf "regex(%a ~%d states~> %a)" (pp_term u) x.x_recv
      x.x_auto.a_nstates (pp_term u) x.x_res

let pp_query u ppf q =
  Format.fprintf ppf "@[<v>vars: %d, named: %a@,%a@]" q.nvars
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (n, i) -> Format.fprintf ppf "%s=_%d" n i))
    q.named
    (Format.pp_print_list (pp_atom u))
    q.atoms

let pp_rel u ppf = function
  | R_isa -> Format.pp_print_string ppf "isa"
  | R_isa_c c -> Format.fprintf ppf "isa %a" (Oodb.Universe.pp_obj u) c
  | R_scalar m -> Format.fprintf ppf "scalar %a" (Oodb.Universe.pp_obj u) m
  | R_set m -> Format.fprintf ppf "set %a" (Oodb.Universe.pp_obj u) m
  | R_any -> Format.pp_print_string ppf "<any>"

let term_vars acc = function Const _ -> acc | V i -> i :: acc

let atom_vars = function
  | A_isa (a, b) | A_eq (a, b) -> term_vars (term_vars [] b) a
  | A_scalar { meth; recv; args; res } | A_member { meth; recv; args; res }
    ->
    List.fold_left term_vars [] (meth :: recv :: res :: args)
  | A_subset s ->
    List.fold_left term_vars s.s_outer (s.s_meth :: s.s_recv :: s.s_args)
  | A_neg n -> n.n_outer
  | A_regex x -> term_vars (term_vars [] x.x_res) x.x_recv

let label_rel l = if l.lbl_set then R_set l.lbl_meth else R_scalar l.lbl_meth

(* Distinct relations an automaton's transitions read. *)
let automaton_rels a =
  let acc = ref [] in
  Array.iter
    (fun out -> Array.iter (fun (l, _) -> acc := label_rel l :: !acc) out)
    a.a_trans;
  List.sort_uniq Stdlib.compare !acc

(* The store keeps one isa edge log for all classes; per-class refinement
   only matters to the stratifier, so runtime consumers normalise
   [R_isa_c] to [R_isa]. *)
let norm_rel = function
  | R_isa_c _ -> R_isa
  | (R_isa | R_scalar _ | R_set _ | R_any) as r -> r

let atom_rel = function
  | A_isa (_, Const c) -> Some (R_isa_c c)
  | A_isa (_, V _) -> Some R_isa
  | A_scalar { meth = Const m; _ } -> Some (R_scalar m)
  | A_member { meth = Const m; _ } -> Some (R_set m)
  | A_scalar { meth = V _; _ } | A_member { meth = V _; _ } -> Some R_any
  | A_eq _ -> None
  | A_subset { s_meth = Const m; _ } -> Some (R_set m)
  | A_subset { s_meth = V _; _ } -> Some R_any
  | A_neg _ -> None
  (* reads one relation per transition label; single-relation consumers
     (the runtime estimator) see none, multi-relation ones use
     [automaton_rels] via [query_rels] and [Rule.compile] *)
  | A_regex _ -> None

let query_rels atoms =
  let rec go acc a =
    let acc =
      match atom_rel a with Some r -> norm_rel r :: acc | None -> acc
    in
    match a with
    | A_subset s -> List.fold_left go acc s.sub_atoms
    | A_neg n -> List.fold_left go acc n.n_atoms
    | A_regex x -> List.rev_append (automaton_rels x.x_auto) acc
    | A_isa _ | A_scalar _ | A_member _ | A_eq _ -> acc
  in
  List.sort_uniq compare_rel (List.fold_left go [] atoms)
