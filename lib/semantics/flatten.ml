open Syntax.Ast

type builder = {
  store : Oodb.Store.t;
  mutable nvars : int;
  mutable named : (string * int) list;
  mutable atoms : Ir.atom list;  (* reversed *)
}

let fresh b =
  let i = b.nvars in
  b.nvars <- b.nvars + 1;
  i

let slot b x =
  if x = "_" then fresh b  (* anonymous: fresh, unnamed slot *)
  else
    match List.assoc_opt x b.named with
    | Some i -> i
    | None ->
      let i = fresh b in
      b.named <- b.named @ [ (x, i) ];
      i

let emit b a = b.atoms <- a :: b.atoms

(* Capture the atoms emitted by [f] separately from the enclosing
   conjunction, together with the slots created while running it; used for
   the sub-queries of A_subset and A_neg. *)
let captured b f =
  let outer_atoms = b.atoms in
  let first_new = b.nvars in
  b.atoms <- [];
  let result = f () in
  let sub_atoms = List.rev b.atoms in
  b.atoms <- outer_atoms;
  let created = List.init (b.nvars - first_new) (fun i -> first_new + i) in
  let named_slots = List.map snd b.named in
  let locals = List.filter (fun i -> not (List.mem i named_slots)) created in
  let outer =
    List.concat_map Ir.atom_vars sub_atoms
    |> List.filter (fun i -> not (List.mem i locals))
    |> List.sort_uniq Int.compare
  in
  (result, sub_atoms, outer, locals)

let is_self meth args =
  match meth with Name "self" -> args = [] | _ -> false

(* ------------------------------------------------------------------ *)
(* Regular paths: Thompson construction into an epsilon-NFA, epsilon
   closures folded away, states unreachable from the start pruned. The
   result is the plan-node payload Solve's automaton-product join runs
   directly, so compilation happens once per flattened reference and the
   automaton travels with the query through the plan cache. *)

let compile_regex store (re : Syntax.Ast.regex) : Ir.automaton =
  let nstates = ref 0 in
  let eps : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let steps : (int, (Ir.label * int) list) Hashtbl.t = Hashtbl.create 16 in
  let fresh () =
    let i = !nstates in
    incr nstates;
    i
  in
  let find tbl q = Option.value ~default:[] (Hashtbl.find_opt tbl q) in
  let add_eps a b = Hashtbl.replace eps a (b :: find eps a) in
  let add_step a l b = Hashtbl.replace steps a ((l, b) :: find steps a) in
  let const_id : Syntax.Ast.reference -> Oodb.Obj_id.t = function
    | Name n -> Oodb.Store.name store n
    | Int_lit n -> Oodb.Store.int store n
    | Str_lit s -> Oodb.Store.str store s
    | Var _ | Paren _ | Path _ | Regex _ | Filter _ | Isa _ ->
      invalid_arg "Flatten: regular path literals must be ground"
  in
  (* each fragment has one start and one accept state *)
  let rec frag (re : Syntax.Ast.regex) : int * int =
    match re with
    | Rlit { l_sep; l_meth; l_args } ->
      let i = fresh () and f = fresh () in
      let lbl =
        {
          Ir.lbl_set = (l_sep = Syntax.Ast.Dotdot);
          lbl_meth = const_id l_meth;
          lbl_args = List.map const_id l_args;
        }
      in
      add_step i lbl f;
      (i, f)
    | Rseq [] ->
      let i = fresh () in
      (i, i)
    | Rseq (r :: rest) ->
      let i, f = frag r in
      let f =
        List.fold_left
          (fun f r ->
            let i', f' = frag r in
            add_eps f i';
            f')
          f rest
      in
      (i, f)
    | Ralt rs ->
      let i = fresh () and f = fresh () in
      List.iter
        (fun r ->
          let ri, rf = frag r in
          add_eps i ri;
          add_eps rf f)
        rs;
      (i, f)
    | Rstar r ->
      let i = fresh () and f = fresh () in
      let ri, rf = frag r in
      add_eps i ri;
      add_eps i f;
      add_eps rf ri;
      add_eps rf f;
      (i, f)
    | Rplus r ->
      let i = fresh () and f = fresh () in
      let ri, rf = frag r in
      add_eps i ri;
      add_eps rf ri;
      add_eps rf f;
      (i, f)
    | Ropt r ->
      let i = fresh () and f = fresh () in
      let ri, rf = frag r in
      add_eps i ri;
      add_eps i f;
      add_eps rf f;
      (i, f)
  in
  let start, accept = frag re in
  let n = !nstates in
  let closure_of q =
    let seen = Array.make n false in
    let rec go s =
      if not seen.(s) then begin
        seen.(s) <- true;
        List.iter go (find eps s)
      end
    in
    go q;
    seen
  in
  let closures = Array.init n closure_of in
  let accepts q = closures.(q).(accept) in
  let out q =
    let acc = ref [] in
    Array.iteri
      (fun s in_closure -> if in_closure then acc := find steps s @ !acc)
      closures.(q);
    List.sort_uniq Stdlib.compare !acc
  in
  let trans = Array.init n out in
  (* keep only states reachable from the start, renumbered by discovery *)
  let renum = Array.make n (-1) in
  let order = ref [] in
  let count = ref 0 in
  let rec reach q =
    if renum.(q) < 0 then begin
      renum.(q) <- !count;
      incr count;
      order := q :: !order;
      List.iter (fun (_, q') -> reach q') trans.(q)
    end
  in
  reach start;
  let old_of = Array.make !count 0 in
  List.iter (fun q -> old_of.(renum.(q)) <- q) !order;
  let m = !count in
  let a_trans =
    Array.init m (fun q ->
        Array.of_list
          (List.map (fun (l, q') -> (l, renum.(q'))) trans.(old_of.(q))))
  in
  let a_rtrans_l = Array.make m [] in
  Array.iteri
    (fun q out ->
      Array.iter
        (fun (l, q') -> a_rtrans_l.(q') <- (l, q) :: a_rtrans_l.(q'))
        out)
    a_trans;
  Atomic.incr Solve.regex_plans_total;
  {
    Ir.a_nstates = m;
    a_start = renum.(start);
    a_accept = Array.init m (fun q -> accepts old_of.(q));
    a_trans;
    a_rtrans = Array.map Array.of_list a_rtrans_l;
  }

let rec flatten b (t : reference) : Ir.term =
  match t with
  | Name n -> Const (Oodb.Store.name b.store n)
  | Int_lit n -> Const (Oodb.Store.int b.store n)
  | Str_lit s -> Const (Oodb.Store.str b.store s)
  | Var x -> V (slot b x)
  | Paren t' -> flatten b t'
  | Path { p_recv; p_sep; p_meth; p_args } ->
    let recv = flatten b p_recv in
    if is_self p_meth p_args then recv
    else begin
      let meth = flatten b p_meth in
      let args = List.map (flatten b) p_args in
      let res = Ir.V (fresh b) in
      let app = { Ir.meth; recv; args; res } in
      emit b
        (match p_sep with Dot -> A_scalar app | Dotdot -> A_member app);
      res
    end
  | Regex { x_recv; x_re } ->
    let recv = flatten b x_recv in
    let auto = compile_regex b.store x_re in
    let res = Ir.V (fresh b) in
    emit b (A_regex { x_auto = auto; x_recv = recv; x_res = res });
    res
  | Isa { recv; cls } ->
    let r = flatten b recv in
    let c = flatten b cls in
    emit b (A_isa (r, c));
    r
  | Filter { f_recv; f_meth; f_args; f_rhs } ->
    let recv = flatten b f_recv in
    (match f_rhs with
    | Rscalar rhs when is_self f_meth f_args ->
      let v = flatten b rhs in
      emit b (A_eq (recv, v))
    | Rscalar rhs ->
      let meth = flatten b f_meth in
      let args = List.map (flatten b) f_args in
      let res = flatten b rhs in
      emit b (A_scalar { meth; recv; args; res })
    | Rset_enum elems ->
      let meth = flatten b f_meth in
      let args = List.map (flatten b) f_args in
      List.iter
        (fun e ->
          let res = flatten b e in
          emit b (A_member { meth; recv; args; res }))
        elems
    | Rset_ref s ->
      let meth = flatten b f_meth in
      let args = List.map (flatten b) f_args in
      let member, sub_atoms, outer, locals =
        captured b (fun () -> flatten b s)
      in
      (* the member slot itself is quantified inside the set *)
      let locals =
        match member with
        | Ir.V i when not (List.mem i locals) -> i :: locals
        | Ir.V _ | Ir.Const _ -> locals
      in
      let outer =
        List.filter
          (fun i -> match member with Ir.V m -> i <> m | Const _ -> true)
          outer
      in
      emit b
        (A_subset
           {
             s_meth = meth;
             s_recv = recv;
             s_args = args;
             sub_atoms;
             member;
             s_outer = outer;
             s_locals = locals;
           })
    | Rsig_scalar _ | Rsig_set _ ->
      invalid_arg "Flatten: signature declaration used as a formula");
    recv

let literal b = function
  | Pos t -> ignore (flatten b t)
  | Neg t ->
    let (), sub_atoms, outer, locals = captured b (fun () -> ignore (flatten b t)) in
    emit b (A_neg { n_atoms = sub_atoms; n_outer = outer; n_locals = locals })

let make_builder store = { store; nvars = 0; named = []; atoms = [] }

let finish b : Ir.query =
  { atoms = List.rev b.atoms; nvars = b.nvars; named = b.named }

let reference store t =
  let b = make_builder store in
  let result = flatten b t in
  (finish b, result)

let literals store lits =
  let b = make_builder store in
  List.iter (literal b) lits;
  finish b
