open Syntax.Ast
module Set = Oodb.Obj_id.Set
module Env = Map.Make (String)

type env = Oodb.Obj_id.t Env.t

exception Unbound_variable of string

let env_of_list l = List.fold_left (fun m (k, v) -> Env.add k v m) Env.empty l

(* All tuples drawn from a list of candidate sets (the cartesian product of
   argument denotations in clauses 3-8). *)
let rec product = function
  | [] -> [ [] ]
  | s :: rest ->
    let tails = product rest in
    Set.fold (fun x acc -> List.map (fun t -> x :: t) tails @ acc) s []

let rec eval store env (t : reference) : Set.t =
  let self_id = Oodb.Store.name store "self" in
  match t with
  | Name n -> Set.singleton (Oodb.Store.name store n)
  | Int_lit n -> Set.singleton (Oodb.Store.int store n)
  | Str_lit s -> Set.singleton (Oodb.Store.str store s)
  | Var x -> (
    match Env.find_opt x env with
    | Some o -> Set.singleton o
    | None -> raise (Unbound_variable x))
  | Paren t' -> eval store env t'
  | Path { p_recv; p_sep; p_meth; p_args } ->
    let recvs = eval store env p_recv in
    let meths = eval store env p_meth in
    let argss = List.map (eval store env) p_args in
    let acc = ref Set.empty in
    Set.iter
      (fun m ->
        Set.iter
          (fun recv ->
            List.iter
              (fun args ->
                if Oodb.Obj_id.equal m self_id && args = [] then
                  acc := Set.add recv !acc
                else
                  match p_sep with
                  | Dot -> (
                    match
                      Oodb.Store.scalar_lookup store ~meth:m ~recv ~args
                    with
                    | Some res -> acc := Set.add res !acc
                    | None -> ())
                  | Dotdot ->
                    acc :=
                      Set.union !acc
                        (Oodb.Store.set_lookup store ~meth:m ~recv ~args))
              (product argss))
          recvs)
      meths;
    !acc
  | Regex { x_recv; x_re } ->
    eval_regex store env x_re (eval store env x_recv)
  | Isa { recv; cls } ->
    let recvs = eval store env recv in
    let clss = eval store env cls in
    Set.filter
      (fun o -> Set.exists (fun c -> Oodb.Store.is_member store o c) clss)
      recvs
  | Filter { f_recv; f_meth; f_args; f_rhs } ->
    let recvs = eval store env f_recv in
    let meths = eval store env f_meth in
    let argss = product (List.map (eval store env) f_args) in
    let satisfied recv =
      Set.exists
        (fun m ->
          List.exists
            (fun args ->
              let is_self = Oodb.Obj_id.equal m self_id && args = [] in
              match f_rhs with
              | Rscalar rhs ->
                let targets = eval store env rhs in
                if is_self then Set.mem recv targets
                else (
                  match
                    Oodb.Store.scalar_lookup store ~meth:m ~recv ~args
                  with
                  | Some res -> Set.mem res targets
                  | None -> false)
              | Rset_ref s ->
                let wanted = eval store env s in
                (* the built-in self is an identity for method application
                   but has no set-valued extension (see DESIGN.md) *)
                let have =
                  if is_self then Set.empty
                  else Oodb.Store.set_lookup store ~meth:m ~recv ~args
                in
                Set.subset wanted have
              | Rset_enum elems ->
                (* Element-wise existential reading: each enumerated element
                   must denote an object that is a member. Definition 8
                   taken literally would make the molecule vacuously true
                   when an element denotes nothing, contradicting the
                   paper's own discussion in section 5 ("X is assigned such
                   an assistant"); see DESIGN.md. *)
                let have =
                  if is_self then Set.empty
                  else Oodb.Store.set_lookup store ~meth:m ~recv ~args
                in
                List.for_all
                  (fun e ->
                    let s = eval store env e in
                    (not (Set.is_empty s)) && Set.subset s have)
                  elems
              | Rsig_scalar _ | Rsig_set _ ->
                invalid_arg "Valuation: signature declaration in a formula")
            argss)
        meths
    in
    Set.filter satisfied recvs

(* The denotation of a regular path at a set of receivers: the objects
   reachable along some word of its language. Every clause is additive in
   [from], so the star closure's frontier iteration is exact. Labels are
   plain store relations (no built-in [self] identity), matching the
   automaton-product join in {!Solve}. *)
and eval_regex store env (re : regex) (from : Set.t) : Set.t =
  let lit_step l_sep m args from =
    Set.fold
      (fun recv acc ->
        match l_sep with
        | Dot -> (
          match Oodb.Store.scalar_lookup store ~meth:m ~recv ~args with
          | Some res -> Set.add res acc
          | None -> acc)
        | Dotdot ->
          Set.union acc (Oodb.Store.set_lookup store ~meth:m ~recv ~args))
      from Set.empty
  in
  let closure step from =
    let rec go acc frontier =
      if Set.is_empty frontier then acc
      else
        let next = Set.diff (step frontier) acc in
        go (Set.union acc next) next
    in
    go from from
  in
  match re with
  | Rlit { l_sep; l_meth; l_args } ->
    let m = Set.choose (eval store env l_meth) in
    let args = List.map (fun a -> Set.choose (eval store env a)) l_args in
    lit_step l_sep m args from
  | Rseq rs -> List.fold_left (fun s r -> eval_regex store env r s) from rs
  | Ralt rs ->
    List.fold_left
      (fun acc r -> Set.union acc (eval_regex store env r from))
      Set.empty rs
  | Ropt r -> Set.union from (eval_regex store env r from)
  | Rstar r -> closure (eval_regex store env r) from
  | Rplus r -> closure (eval_regex store env r) (eval_regex store env r from)
