(** Enumeration of the variable valuations satisfying a flattened query.

    Where {!Valuation} checks one given valuation, this module {e finds} all
    of them, driving the search from the store's indexes. It is the
    workhorse of both query answering and rule bodies in the fixpoint
    engine.

    Atom scheduling has three modes. [Compiled] compiles a join order
    {e once} per (query, seed) from the static cost model ({!compile_plan})
    and follows it for every partial binding — the fixpoint engine's
    default, with the plan cached across rounds. [Greedy] re-ranks the
    remaining atoms at every depth by estimated matches under the current
    partial binding (1 for a fully keyed lookup, the receiver-index length
    for a bound-receiver scan, the bucket length for a method scan, and so
    on) — adaptive, but O(atoms²) cost scans per solution prefix.
    [`Source] order — execute atoms left-to-right as written — is kept for
    the join-order ablation experiment (E10).

    Set-inclusion atoms ([A_subset]) and negation run as nested
    sub-enumerations once their outer variables are bound; any still-unbound
    variable (including an output variable constrained by no atom, as in the
    query [?- X.]) falls back to enumerating the whole universe, which keeps
    the solver total on well-formed input. *)

type order = Greedy | Source | Compiled

(** Restrict one atom of the query to the delta suffix of its relation's
    bucket (tuples with index [>= from]); used by the semi-naive fixpoint.
    The seeded atom is executed first. For [A_isa] atoms the delta is the
    suffix of the direct-edge log, expanded through the hierarchy closure. *)
type seed = { seed_atom : int; seed_from : int }

(** A compiled join order: the seeded atom (or [-1]), the remaining atoms
    in execution order, and the store size at compile time. Every
    permutation is {e sound} — each atom executes correctly under any
    boundness — so plans can be cached and reused across rounds and
    bindings; only their quality decays as the store grows (see
    {!plan_stale}). *)
type plan = {
  plan_seed : int;
  plan_perm : int array;
  plan_size : int;
}

(** Statically predicted final relation cardinalities (from the
    abstract-interpretation pass). When supplied, {!compile_plan}
    replaces the store's current bucket lengths with [est_card]'s
    predictions — at plan time a derived relation may still be empty
    while its predicted fixpoint size ranks joins the way they will run.
    [est_card] returning [None] for a relation falls back to the store
    heuristic for that relation. [est_epoch] versions the estimates so
    plan caches can key on it. Estimates never change {e answers}: every
    permutation of a query is sound; only ranking quality varies. *)
type estimator = {
  est_epoch : int;
  est_card : Ir.rel -> int option;
}

(** Compile a join order for [q] from the static cost model: repeatedly
    pick the cheapest remaining atom under the boundness reached so far,
    using the store's current bucket sizes and receiver-index
    selectivities — or, when [estimator] is given, the statically
    predicted relation cardinalities.

    @param bindings slots known to be bound before the search starts
    @param seed_atom atom index executed first from its delta (semi-naive
    seeding); its variables are bound when the rest is ordered. *)
val compile_plan :
  ?estimator:estimator ->
  ?bindings:(int * Oodb.Obj_id.t) list ->
  ?seed_atom:int ->
  Oodb.Store.t ->
  Ir.query ->
  plan

(** Has the store grown enough (roughly 2x) since [plan] was compiled that
    re-planning is worthwhile? *)
val plan_stale : Oodb.Store.t -> plan -> bool

exception Stopped

(** The enumeration calls [interrupt] (when given) at least once every
    {!poll_interval} unification steps — the solver's cooperative
    cancellation point. An exception raised by it (e.g.
    [Engine.Budget.Exhausted]) aborts the search and propagates to the
    caller of {!iter}; every solution costs at least one step, so an
    interrupt observes its condition within a bounded amount of further
    work (property-tested). *)
val poll_interval : int

(** Process-wide STATS counters for the automaton-product join: regular
    path plans compiled ({!Flatten.compile_regex}) and (object, state)
    product pairs expanded by the BFS. *)
val regex_plans_total : int Atomic.t

val product_states_expanded : int Atomic.t

(** [iter store q ~f] calls [f] once per satisfying assignment, with a
    binding array of length [q.nvars] (fully bound). Raise {!Stopped} from
    [f] to stop early; [iter] catches it.

    @param limit stop after this many solutions.
    @param interrupt polled every {!poll_interval} steps; see above. *)
val iter :
  ?order:order ->
  ?hilog_virtual:bool ->
  ?interrupt:(unit -> unit) ->
  ?estimator:estimator ->
  ?bindings:(int * Oodb.Obj_id.t) list ->
  ?seed:seed ->
  ?plan:plan ->
  ?limit:int ->
  Oodb.Store.t ->
  Ir.query ->
  f:(Oodb.Obj_id.t array -> unit) ->
  unit
(** [bindings] pre-binds slots before the search starts (used to replay a
    rule body under a known variable valuation, e.g. for provenance).

    [plan] executes atoms in a precompiled order (it must have been
    compiled for this query with a [seed_atom] matching [seed], else
    [Invalid_argument]); without it, [~order:Compiled] compiles one on the
    fly. Nested sub-queries always schedule adaptively.

    [hilog_virtual] (default [false]): when a {e method-position} variable
    is enumerated (HiLog-style higher-order atoms such as [X\[M ->> {Y}\]]),
    include virtual (skolem) objects among the candidate methods. Off by
    default: with it on, the generic transitive-closure program of section
    6 has an infinite minimal model — [tc] applies to [kids.tc], yielding
    [(kids.tc).tc], and so on — and bottom-up evaluation only stops at the
    divergence budget. All the paper's examples work with the restricted
    enumeration. Explicitly named virtual methods (e.g. the query
    [peter\[(kids.tc) ->> {X}\]]) are unaffected. *)

(** Distinct bindings of the query's named variables, in the order of
    [q.named]; answers are deduplicated. *)
val named_solutions :
  ?order:order -> ?interrupt:(unit -> unit) -> ?limit:int -> Oodb.Store.t ->
  Ir.query -> Oodb.Obj_id.t list list

(** Is the query satisfiable? *)
val satisfiable :
  ?order:order -> ?interrupt:(unit -> unit) -> Oodb.Store.t -> Ir.query ->
  bool

(** Number of distinct named-variable bindings (or of full bindings when the
    query names no variable, capped at 1 for a ground query). *)
val count :
  ?order:order -> ?interrupt:(unit -> unit) -> Oodb.Store.t -> Ir.query ->
  int

(** The plan the solver follows: the atom execution order and the access
    path chosen for each atom (keyed lookup, receiver index, inverse
    index, bucket scan, ...), one line per atom. For [Compiled] this is
    {e exactly} the executed plan (both come from {!compile_plan}); for
    [Greedy] it is the same static simulation, which the runtime order can
    leave when intermediate bindings change the cost ranking.

    [bindings] marks slots as bound before the plan is compiled and the
    access paths are described — the {e adorned} plan a magic-guarded rule
    body follows once demand seeding has bound those slots (the values are
    ignored; only the slots matter).

    With [estimator], each plan node is additionally annotated with the
    statically predicted cardinality of the relation it reads
    ([~N tuples]), and the join order is ranked from those estimates. *)
val explain :
  ?order:order ->
  ?estimator:estimator ->
  ?bindings:(int * Oodb.Obj_id.t) list ->
  Oodb.Store.t ->
  Ir.query ->
  string list
