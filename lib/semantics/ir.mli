(** Internal representation: references flattened to conjunctions of core
    atoms.

    This is the formal counterpart of the paper's key observation that a
    two-dimensional path expression replaces a {e conjunction} of
    one-dimensional paths: {!Flatten} turns any well-formed reference into
    the equivalent conjunction over fresh intermediate variables, and both
    the query solver and the relational baseline consume this form. *)

type term =
  | Const of Oodb.Obj_id.t
  | V of int  (** variable slot *)

type label = {
  lbl_set : bool;  (** set-valued ([..]) vs scalar ([.]) edge relation *)
  lbl_meth : Oodb.Obj_id.t;
  lbl_args : Oodb.Obj_id.t list;
}
(** One transition label of a path automaton: a ground method
    application. *)

type automaton = {
  a_nstates : int;
  a_start : int;
  a_accept : bool array;
  a_trans : (label * int) array array;  (** forward transitions per state *)
  a_rtrans : (label * int) array array;  (** reverse transitions per state *)
}
(** An epsilon-free NFA over ground labels, compiled from a regular path
    by {!Flatten} (Thompson construction, epsilon closures folded in,
    unreachable states pruned). *)

type atom =
  | A_isa of term * term  (** [recv <=_U cls] *)
  | A_scalar of app  (** [I_->(meth)(recv, args) = res] *)
  | A_member of app  (** [res ∈ I_->>(meth)(recv, args)] *)
  | A_eq of term * term  (** unification; the built-in method [self] *)
  | A_subset of subset
      (** [I_->>(meth)(recv, args) ⊇ {member | sub_atoms}] — the
          set-inclusion filter [t0\[m ->> s\]] with a set-valued reference
          [s]; requires stratification when [s] is intensional. *)
  | A_neg of negation
      (** no extension of the current binding satisfies [n_atoms]
          (stratified-negation extension) *)
  | A_regex of regex_app
      (** [x_res] reachable from [x_recv] along a word of the automaton's
          language — evaluated as an automaton-product join in {!Solve} *)

and app = { meth : term; recv : term; args : term list; res : term }

and regex_app = { x_auto : automaton; x_recv : term; x_res : term }

and subset = {
  s_meth : term;
  s_recv : term;
  s_args : term list;
  sub_atoms : atom list;
  member : term;  (** ranges over the members of the included set *)
  s_outer : int list;  (** slots that must be bound before evaluation *)
  s_locals : int list;  (** slots quantified inside the set reference *)
}

and negation = {
  n_atoms : atom list;
  n_outer : int list;
  n_locals : int list;
}

(** The relation a (positive, constant-method) atom reads or writes; used
    for dependency analysis, stratification and semi-naive deltas. [R_any]
    stands for "could be any relation" (variable or computed method
    position, as in the generic [kids.tc] program of section 6). *)
type rel =
  | R_isa  (** class membership with a non-constant class position *)
  | R_isa_c of Oodb.Obj_id.t  (** class membership of one named class *)
  | R_scalar of Oodb.Obj_id.t
  | R_set of Oodb.Obj_id.t
  | R_any

val equal_rel : rel -> rel -> bool

val compare_rel : rel -> rel -> int

type query = {
  atoms : atom list;
  nvars : int;  (** slots are numbered [0 .. nvars-1] *)
  named : (string * int) list;  (** source-variable name -> slot *)
}

val pp_term : Oodb.Universe.t -> Format.formatter -> term -> unit

val pp_atom : Oodb.Universe.t -> Format.formatter -> atom -> unit

val pp_query : Oodb.Universe.t -> Format.formatter -> query -> unit

val pp_rel : Oodb.Universe.t -> Format.formatter -> rel -> unit

(** Variable slots occurring in an atom, outermost level only (the locals of
    [A_subset]/[A_neg] sub-queries are not included, their outer slots
    are). *)
val atom_vars : atom -> int list

(** The relation an atom reads. [A_eq] reads nothing ([None]); so does
    [A_regex], whose multi-relation reads are exposed by
    {!automaton_rels} and {!query_rels} instead. *)
val atom_rel : atom -> rel option

(** The relation one transition label reads. *)
val label_rel : label -> rel

(** Distinct relations an automaton's transitions read. *)
val automaton_rels : automaton -> rel list

(** Collapse per-class membership relations ([R_isa_c]) to the shared isa
    edge log ([R_isa]) — the runtime store does not refine memberships per
    class, only the stratifier does. *)
val norm_rel : rel -> rel

(** All relations a query reads, normalised with {!norm_rel}, including
    those inside set-inclusion and negation sub-queries. *)
val query_rels : atom list -> rel list
