(** PathLog — access to objects by path expressions and rules.

    One-stop facade: parse a program, evaluate it bottom-up to its minimal
    model, and query it. Reproduces Frohn, Lausen & Uphoff, "Access to
    Objects by Path Expressions and Rules" (VLDB 1994).

    {[
      let p = Pathlog.load {|
        automobile :: vehicle.
        e1 : employee[age -> 30; city -> newYork].
        e1[vehicles ->> {a1}].
        a1 : automobile[cylinders -> 4; color -> red].
      |} in
      Pathlog.answers p "X : employee..vehicles : automobile.color[Z]"
    ]} *)

module Ast = Syntax.Ast
module Parser = Syntax.Parser
module Token = Syntax.Token
module Pretty = Syntax.Pretty
module Scalarity = Syntax.Scalarity
module Wellformed = Syntax.Wellformed
module Normalize = Syntax.Normalize
module Universe = Oodb.Universe
module Obj_id = Oodb.Obj_id
module Vec = Oodb.Vec
module Store = Oodb.Store
module Signature = Oodb.Signature
module Ir = Semantics.Ir
module Flatten = Semantics.Flatten
module Valuation = Semantics.Valuation
module Entail = Semantics.Entail
module Solve = Semantics.Solve
module Err = Engine.Err
module Rule = Engine.Rule
module Stratify = Engine.Stratify
module Fixpoint = Engine.Fixpoint
module Budget = Engine.Budget
module Fault = Fault
module Program = Engine.Program
module Production = Engine.Production
module Fact = Engine.Fact
module Provenance = Engine.Provenance
module Topdown = Engine.Topdown
module Demand = Engine.Demand
module Live = Incremental.Live
module Durable = Durable
module Typecheck = Engine.Typecheck
module Diagnostic = Pathlog_analysis.Diagnostic
module Analyses = Pathlog_analysis.Analyses
module Absint = Pathlog_analysis.Absint
module Check = Pathlog_analysis.Check
module Build = Syntax.Build
module Conjunctive = Baseline.Conjunctive
module O2sql = Baseline.O2sql
module Xsql = Baseline.Xsql
module Translate = Baseline.Translate
module Calculus = Baseline.Calculus
module Protocol = Plserver.Protocol
module Histogram = Plserver.Histogram
module Metrics = Plserver.Metrics
module Pool = Plserver.Pool
module Qcache = Plserver.Qcache
module Client = Plserver.Client
module Company = Workload.Company
module Genealogy = Workload.Genealogy
module Parts = Workload.Parts
module Randprog = Workload.Randprog
module Graph = Workload.Graph
module Server = Plserver.Server

type program = Program.t

(** Parse and evaluate a program to its minimal model. *)
let load ?config text =
  let p = Program.of_string ?config text in
  ignore (Program.run p);
  p

(** Parse a program without evaluating it. *)
let parse ?config text = Program.of_string ?config text

(** Answer a query, rows rendered as strings. Accepts ["?- q."] or just
    ["q"]. *)
let answers program text =
  let a = Program.query_string program text in
  List.map
    (fun row ->
      List.map (Universe.to_string (Program.universe program)) row)
    a.rows

(** Is a ground (or existentially read) query entailed? *)
let holds program text =
  (Program.query_string program text).rows <> []
