type point =
  | Store_write
  | Solver_step
  | Wire_read
  | Wire_write
  | Pool_dispatch
  | Wal_append
  | Wal_fsync
  | Snapshot_write

type action =
  | Delay of float
  | Fail
  | Short

exception Injected of point

let point_to_string = function
  | Store_write -> "store_write"
  | Solver_step -> "solver_step"
  | Wire_read -> "wire_read"
  | Wire_write -> "wire_write"
  | Pool_dispatch -> "pool_dispatch"
  | Wal_append -> "wal_append"
  | Wal_fsync -> "wal_fsync"
  | Snapshot_write -> "snapshot_write"

let point_of_string = function
  | "store_write" -> Some Store_write
  | "solver_step" -> Some Solver_step
  | "wire_read" -> Some Wire_read
  | "wire_write" -> Some Wire_write
  | "pool_dispatch" -> Some Pool_dispatch
  | "wal_append" -> Some Wal_append
  | "wal_fsync" -> Some Wal_fsync
  | "snapshot_write" -> Some Snapshot_write
  | _ -> None

let point_index = function
  | Store_write -> 0
  | Solver_step -> 1
  | Wire_read -> 2
  | Wire_write -> 3
  | Pool_dispatch -> 4
  | Wal_append -> 5
  | Wal_fsync -> 6
  | Snapshot_write -> 7

let n_points = 8

type registry = {
  seed : int;
  rules : (action * float) array array;  (* by point index *)
  hits : int Atomic.t array;  (* draws per point *)
  injected : int Atomic.t array;  (* faults fired per point *)
}

(* The armed registry is immutable once published; [None] is the fast
   path. The [Atomic.t] makes arming visible across domains. *)
let state : registry option Atomic.t = Atomic.make None

(* PATHLOG_FAULTS arms every process (CLI, tests, bench) without a flag;
   read once, before any explicit [configure]. *)
let env_loaded = ref false

let install reg =
  env_loaded := true;
  Atomic.set state reg

let configure ~seed rules =
  let by_point = Array.make n_points [] in
  List.iter
    (fun (p, action, rate) ->
      let i = point_index p in
      by_point.(i) <- (action, rate) :: by_point.(i))
    rules;
  install
    (Some
       {
         seed;
         rules = Array.map (fun l -> Array.of_list (List.rev l)) by_point;
         hits = Array.init n_points (fun _ -> Atomic.make 0);
         injected = Array.init n_points (fun _ -> Atomic.make 0);
       })

let disable () = install None

(* ------------------------------------------------------------------ *)
(* Spec parsing: seed=N;point:action@rate[:millis];...                  *)

let parse_action s =
  (* "fail" | "short" | "delay" | "delay:MILLIS" handled by the caller
     splitting on ':' — here [s] is already the action name. *)
  match s with
  | "fail" -> Some Fail
  | "short" -> Some Short
  | "delay" -> Some (Delay 0.001)
  | _ -> None

let parse spec =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let segments =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go seed acc = function
    | [] -> Ok (seed, List.rev acc)
    | seg :: rest -> (
      match String.index_opt seg '=' with
      | Some _ -> (
        match String.split_on_char '=' seg with
        | [ "seed"; v ] -> (
          match int_of_string_opt (String.trim v) with
          | Some s -> go s acc rest
          | None -> err "fault spec: bad seed %S" v)
        | _ -> err "fault spec: bad segment %S" seg)
      | None -> (
        match String.split_on_char ':' seg with
        | point :: action :: tail -> (
          match point_of_string (String.trim point) with
          | None -> err "fault spec: unknown point %S" point
          | Some p -> (
            match String.split_on_char '@' (String.trim action) with
            | [ name; rate ] -> (
              match
                (parse_action (String.trim name),
                 float_of_string_opt (String.trim rate))
              with
              | Some a, Some r when r >= 0. && r <= 1. -> (
                match (a, tail) with
                | _, [] -> go seed ((p, a, r) :: acc) rest
                | Delay _, ms :: _ -> (
                  match float_of_string_opt (String.trim ms) with
                  | Some ms when ms >= 0. ->
                    go seed ((p, Delay (ms /. 1000.), r) :: acc) rest
                  | _ -> err "fault spec: bad delay duration %S" ms)
                | (Fail | Short), _ :: _ ->
                  err "fault spec: only delay takes a duration (%S)" seg)
              | None, _ -> err "fault spec: unknown action %S" name
              | _, None -> err "fault spec: bad rate in %S" seg
              | Some _, Some _ -> err "fault spec: rate out of [0,1] in %S" seg)
            | _ -> err "fault spec: expected ACTION@RATE in %S" seg))
        | _ -> err "fault spec: bad segment %S (want point:action@rate)" seg))
  in
  go 0 [] segments

let configure_string spec =
  match parse spec with
  | Ok (seed, rules) ->
    configure ~seed rules;
    Ok ()
  | Error _ as e -> e

let load_env () =
  env_loaded := true;
  match Sys.getenv_opt "PATHLOG_FAULTS" with
  | None | Some "" -> ()
  | Some spec -> (
    match configure_string spec with
    | Ok () -> ()
    | Error msg -> prerr_endline ("warning: PATHLOG_FAULTS ignored: " ^ msg))

let current () =
  if not !env_loaded then load_env ();
  Atomic.get state

let enabled () = current () <> None

(* ------------------------------------------------------------------ *)
(* Sampling: splitmix64 keyed on (seed, point, rule, hit counter) — a
   fixed seed reproduces the decision stream per point. *)

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform ~seed ~stream ~n =
  let z =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int seed) 0x9e3779b97f4a7c15L)
         (Int64.add
            (Int64.mul (Int64.of_int stream) 0xd1b54a32d192ed03L)
            (Int64.of_int n)))
  in
  (* 53 uniform bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.

let ask point =
  match current () with
  | None -> None
  | Some reg ->
    let i = point_index point in
    let rules = reg.rules.(i) in
    if Array.length rules = 0 then None
    else begin
      let n = Atomic.fetch_and_add reg.hits.(i) 1 in
      let fired = ref None in
      Array.iteri
        (fun j (action, rate) ->
          if
            !fired = None
            && uniform ~seed:reg.seed ~stream:((i * 97) + j) ~n < rate
          then fired := Some action)
        rules;
      (match !fired with
      | Some _ -> Atomic.incr reg.injected.(i)
      | None -> ());
      !fired
    end

let hit point =
  match ask point with
  | None -> ()
  | Some (Delay d) ->
    (* a signal cutting the nap short is fine — the injected delay is a
       perturbation, not a guarantee; never let EINTR escape a fault *)
    if d > 0. then ( try Unix.sleepf d with Unix.Unix_error (Unix.EINTR, _, _) -> ())
  | Some (Fail | Short) -> raise (Injected point)

let injected_total () =
  match Atomic.get state with
  | None -> 0
  | Some reg -> Array.fold_left (fun acc c -> acc + Atomic.get c) 0 reg.injected

let counts () =
  match Atomic.get state with
  | None -> []
  | Some reg ->
    List.filter_map
      (fun p ->
        let n = Atomic.get reg.injected.(point_index p) in
        if Array.length reg.rules.(point_index p) = 0 then None
        else Some (p, n))
      [
        Store_write;
        Solver_step;
        Wire_read;
        Wire_write;
        Pool_dispatch;
        Wal_append;
        Wal_fsync;
        Snapshot_write;
      ]
