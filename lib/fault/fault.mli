(** Deterministic, seed-driven fault injection.

    A process-wide registry of named injection points sitting on the
    hot-path boundaries of the system: store writes, solver steps, wire
    reads/writes, worker-pool dispatch. Each point can be armed — via
    {!configure}, [serve --faults SPEC] or the [PATHLOG_FAULTS]
    environment variable — with one or more probabilistic actions:

    - [delay] — sleep for a fixed duration before proceeding;
    - [fail] — raise {!Injected}, modelling a transient error;
    - [short] — like [fail], but the caller is expected to perform a
      {e partial} effect first (e.g. write a truncated wire frame), so
      the peer observes a short read/write rather than a clean error.

    Decisions are drawn from a splitmix64 stream keyed on
    [(seed, point, per-point hit counter)], so a fixed seed yields a
    reproducible fault {e rate} and, under a deterministic workload, a
    reproducible fault sequence. The disarmed fast path is one atomic
    load, cheap enough for every store write and solver poll.

    {2 Spec grammar}

    Semicolon-separated segments; the first may set the seed:

    {v
    seed=42;store_write:fail@0.01;wire_write:short@0.02;solver_step:delay@0.001:2
    v}

    Each fault segment is [POINT:ACTION\@RATE] where [POINT] is one of
    [store_write], [solver_step], [wire_read], [wire_write],
    [pool_dispatch], [wal_append], [wal_fsync], [snapshot_write];
    [ACTION] is [fail], [short], or [delay] (with an optional [:MILLIS]
    duration suffix, default 1ms); and [RATE] is a probability in
    [0, 1]. *)

type point =
  | Store_write  (** {!Engine.Head.execute}, retried as transient *)
  | Solver_step  (** the solver's cooperative poll (see {!Semantics.Solve}) *)
  | Wire_read  (** server reading a request line *)
  | Wire_write  (** server writing a reply frame *)
  | Pool_dispatch  (** admission into the server worker pool *)
  | Wal_append  (** the durable log's record write (see {!Durable}) *)
  | Wal_fsync  (** the fsync that makes an appended record durable *)
  | Snapshot_write  (** cutting a snapshot file *)

type action =
  | Delay of float  (** seconds *)
  | Fail
  | Short

(** Raised by an armed point on a [fail]/[short] decision. *)
exception Injected of point

val point_to_string : point -> string

val point_of_string : string -> point option

(** Parse a fault spec (see the grammar above). *)
val parse : string -> ((int * (point * action * float) list), string) result

(** Arm the registry with a seed and a list of [(point, action, rate)]
    rules, replacing any previous configuration and resetting counters. *)
val configure : seed:int -> (point * action * float) list -> unit

(** {!parse} + {!configure}. *)
val configure_string : string -> (unit, string) result

(** Disarm every point and reset counters. *)
val disable : unit -> unit

(** Is any point armed? One atomic load. *)
val enabled : unit -> bool

(** Sample the armed actions at [point] and return the first that fires,
    bumping the injection counters; [None] when disarmed or nothing
    fires. The caller applies the action (lets [hit] sleep for it, or
    performs a partial write for [Short]). *)
val ask : point -> action option

(** Sample and {e apply}: sleep on [Delay], raise {!Injected} on [Fail]
    or [Short]. The one-liner for call sites with no partial-effect
    semantics. *)
val hit : point -> unit

(** Faults injected since the last {!configure}/{!disable} (delays
    included). *)
val injected_total : unit -> int

(** Per-point injection counts, armed points only. *)
val counts : unit -> (point * int) list
