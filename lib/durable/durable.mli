(** Durability: an append-only binary write-ahead log plus epoch
    snapshots over a data directory.

    The unit of durability is the accepted mutation batch: one
    CRC32-framed record per committed [ASSERT]/[RETRACT], fsync'd before
    the client sees [OK]. A record carries a monotone sequence number,
    the store epoch after the commit (the {!Oodb.Store.freeze} counter —
    the snapshot watermark), the batch verb, and the batch text
    verbatim. Replaying the records through {!Incremental.Live} in
    sequence order rebuilds the exact model, because each batch was
    validated and committed against the model the preceding records
    produce.

    Snapshots are cut at epoch boundaries: a snapshot file captures the
    live source ({!Incremental.Live.dump_source} — extensional facts
    plus rules) together with the sequence number and epoch of the last
    record it covers. Recovery loads the newest snapshot that validates
    (CRC again), then replays only the WAL suffix with [seq >] the
    snapshot's. The log itself stays append-only — records covered by a
    snapshot are skipped by the sequence filter, never rewritten — so a
    bit-rotten snapshot degrades to an older snapshot (or genesis) plus
    a longer replay, not to data loss.

    Torn tails: a crash mid-append leaves a short or CRC-corrupt frame
    at the end of the log. {!open_dir} scans the log, stops at the first
    frame that fails validation, reports the torn byte count, and
    truncates the file back to the last valid frame boundary — a corrupt
    record is never silently loaded, and the next append continues at a
    clean boundary.

    Fault injection: {!append} exercises {!Fault.Wal_append} and
    {!Fault.Wal_fsync}; {!maybe_snapshot} exercises
    {!Fault.Snapshot_write}. An injected append/fsync failure truncates
    any partial frame before re-raising, so the disk agrees with the
    caller's in-memory rollback. *)

type record = {
  seq : int;  (** monotone, starting at 1 *)
  retract : bool;  (** the batch verb: RETRACT when true, ASSERT otherwise *)
  epoch : int;  (** store epoch after the commit *)
  text : string;  (** the batch, verbatim PathLog text *)
}

type recovery = {
  r_snapshot : (int * int * string) option;
      (** newest valid snapshot: [seq, epoch, source] *)
  r_tail : record list;
      (** valid WAL records with [seq] beyond the snapshot, in order *)
  r_wal_records : int;  (** valid records scanned (prefix included) *)
  r_torn_bytes : int;  (** bytes truncated from the log's torn tail *)
  r_snapshots_skipped : int;
      (** snapshot files that failed CRC/framing and were passed over *)
}

type stats = {
  wal_appends_total : int;  (** records appended since {!open_dir} *)
  wal_bytes : int;  (** current byte length of the log file *)
  snapshots_total : int;  (** snapshots cut since {!open_dir} *)
  last_recovery_ms : float;  (** set by the server via {!set_recovery_ms} *)
}

type t

val wal_path : string -> string
(** The log file inside a data directory: [DIR/pathlog.wal]. *)

(** [open_dir dir] creates [dir] if missing, scans its snapshots and
    write-ahead log, truncates any torn tail, and returns the manager
    (log held open for appends) plus what recovery must do.
    @raise Unix.Unix_error when the directory or log cannot be opened *)
val open_dir : string -> t * recovery

(** Append one committed-batch record and fsync it. The record is
    durable when [append] returns; on any failure (injected or real) the
    partial frame is truncated away before the exception escapes, so
    callers roll back their in-memory commit and the two states agree.
    Returns the record's sequence number.
    @raise Fault.Injected on an armed [wal_append]/[wal_fsync] point
    @raise Unix.Unix_error on a real I/O failure *)
val append : t -> retract:bool -> epoch:int -> string -> int

(** [maybe_snapshot t ~every ~epoch ~source] cuts a snapshot when
    [every] records have been appended since the last one (or since
    {!open_dir}). [source] is forced only when a snapshot is actually
    cut. The file is written to a temp name, fsync'd and renamed, so a
    crash mid-write leaves no half snapshot. Failures (injected
    [snapshot_write] or real I/O) are contained: the WAL still has
    everything, so the cut is skipped and [false] is returned. *)
val maybe_snapshot :
  t -> every:int -> epoch:int -> source:(unit -> string) -> bool

(** Cut a snapshot unconditionally. Same containment as
    {!maybe_snapshot}. *)
val snapshot_now : t -> epoch:int -> source:string -> bool

val stats : t -> stats

val set_recovery_ms : t -> float -> unit

(** Close the log fd. The manager must not be used afterwards. *)
val close : t -> unit
