(* Append-only binary write-ahead log + epoch snapshots.

   Record frame:   [u32 payload_len | u32 crc32(payload) | payload]
   Record payload: [u8 verb | u64 seq | u64 epoch | batch text]
   Log file:       8-byte magic "PLWAL001", then frames, nothing else.
   Snapshot file:  8-byte magic "PLSNP001", then one frame whose payload
                   is [u64 seq | u64 epoch | source text].

   All integers little-endian. The log is append-only: snapshots never
   rewrite it — recovery filters replay by sequence number instead — so
   the only mutation the log file ever sees is truncation of a torn
   tail back to the last valid frame boundary. *)

type record = {
  seq : int;
  retract : bool;
  epoch : int;
  text : string;
}

type recovery = {
  r_snapshot : (int * int * string) option;
  r_tail : record list;
  r_wal_records : int;
  r_torn_bytes : int;
  r_snapshots_skipped : int;
}

type stats = {
  wal_appends_total : int;
  wal_bytes : int;
  snapshots_total : int;
  last_recovery_ms : float;
}

type t = {
  dir : string;
  fd : Unix.file_descr;  (* the log, positioned at its valid end *)
  mutable wal_len : int;  (* valid bytes in the log file *)
  mutable next_seq : int;
  mutable appends : int;
  mutable since_snapshot : int;  (* records since the last snapshot cut *)
  mutable snapshots : int;
  mutable last_snap_seq : int;
  mutable last_recovery_ms : float;
}

let wal_magic = "PLWAL001"

let snap_magic = "PLSNP001"

let wal_path dir = Filename.concat dir "pathlog.wal"

(* Refuse to allocate for a length field that is plainly garbage: a torn
   tail can leave any four bytes where a length should be. *)
let max_payload = 64 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3), table-driven.                                  *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s pos len =
  let t = Lazy.force crc_table in
  let c = ref 0xffffffff in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
         lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

(* ------------------------------------------------------------------ *)
(* Binary plumbing                                                      *)

let u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let u64 b off v = Bytes.set_int64_le b off (Int64.of_int v)

let get_u32 s off =
  Int32.to_int (String.get_int32_le s off) land 0xffffffff

let get_u64 s off = Int64.to_int (String.get_int64_le s off)

let rec write_all fd b off len =
  if len > 0 then begin
    let n =
      match Unix.write fd b off len with
      | n -> n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (off + n) (len - n)
  end

let read_whole_file path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> None
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let len = (Unix.fstat fd).Unix.st_size in
        let b = Bytes.create len in
        let rec go off =
          if off < len then
            match Unix.read fd b off (len - off) with
            | 0 -> off
            | n -> go (off + n)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
          else off
        in
        let got = go 0 in
        Some (Bytes.sub_string b 0 got))

(* A frame at [off] in [s]: [Ok (payload_pos, payload_len, next_off)] or
   [Error] when the frame is short or fails its CRC — the torn tail. *)
let parse_frame s off =
  let len = String.length s in
  if off + 8 > len then Error `Torn
  else
    let plen = get_u32 s off in
    let crc = get_u32 s (off + 4) in
    if plen > max_payload || off + 8 + plen > len then Error `Torn
    else if crc32 s (off + 8) plen <> crc then Error `Torn
    else Ok (off + 8, plen, off + 8 + plen)

let frame payload =
  let plen = String.length payload in
  let b = Bytes.create (8 + plen) in
  u32 b 0 plen;
  u32 b 4 (crc32 payload 0 plen);
  Bytes.blit_string payload 0 b 8 plen;
  b

(* ------------------------------------------------------------------ *)
(* Record payloads                                                      *)

let record_payload ~seq ~retract ~epoch text =
  let tlen = String.length text in
  let b = Bytes.create (17 + tlen) in
  Bytes.set b 0 (if retract then '\001' else '\000');
  u64 b 1 seq;
  u64 b 9 epoch;
  Bytes.blit_string text 0 b 17 tlen;
  Bytes.unsafe_to_string b

let parse_record s pos plen =
  if plen < 17 then None
  else
    let verb = String.get s pos in
    if verb <> '\000' && verb <> '\001' then None
    else
      Some
        {
          seq = get_u64 s (pos + 1);
          retract = verb = '\001';
          epoch = get_u64 s (pos + 9);
          text = String.sub s (pos + 17) (plen - 17);
        }

(* ------------------------------------------------------------------ *)
(* Snapshot files                                                       *)

let snap_name seq = Printf.sprintf "snap-%012d.snap" seq

let is_snap_name n =
  String.length n > 10
  && Filename.check_suffix n ".snap"
  && String.sub n 0 5 = "snap-"

let load_snapshot path =
  match read_whole_file path with
  | None -> None
  | Some s ->
    if String.length s < 8 || String.sub s 0 8 <> snap_magic then None
    else (
      match parse_frame s 8 with
      | Error `Torn -> None
      | Ok (pos, plen, _) ->
        if plen < 16 then None
        else
          Some
            ( get_u64 s pos,
              get_u64 s (pos + 8),
              String.sub s (pos + 16) (plen - 16) ))

(* Newest snapshot that validates wins; corrupt files newer than it are
   skipped (and counted), so bit rot in one snapshot costs replay time,
   never data. *)
let scan_snapshots dir =
  let names =
    (try Array.to_list (Sys.readdir dir) with Sys_error _ -> [])
    |> List.filter is_snap_name
    |> List.sort (fun a b -> compare b a)
  in
  let skipped = ref 0 in
  let found =
    List.find_map
      (fun n ->
        match load_snapshot (Filename.concat dir n) with
        | Some s -> Some s
        | None ->
          incr skipped;
          None)
      names
  in
  (found, !skipped)

(* ------------------------------------------------------------------ *)
(* Opening a data directory                                             *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Scan the log: every valid frame in order, the offset of the valid
   end, and the highest sequence number seen. A frame that parses but
   holds no record (impossible unless written by a different tool) ends
   the scan like a torn frame — nothing after it can be trusted. *)
let scan_wal s =
  let records = ref [] in
  let last_seq = ref 0 in
  let rec go off =
    if off >= String.length s then off
    else
      match parse_frame s off with
      | Error `Torn -> off
      | Ok (pos, plen, next) -> (
        match parse_record s pos plen with
        | None -> off
        | Some r ->
          records := r :: !records;
          last_seq := max !last_seq r.seq;
          go next)
  in
  let valid_end = go (String.length wal_magic) in
  (List.rev !records, valid_end, !last_seq)

let open_dir dir =
  mkdir_p dir;
  let path = wal_path dir in
  let contents = Option.value ~default:"" (read_whole_file path) in
  let mlen = String.length wal_magic in
  let fresh = String.length contents < mlen
              || String.sub contents 0 mlen <> wal_magic in
  let records, valid_end, last_seq =
    if fresh then ([], mlen, 0) else scan_wal contents
  in
  let torn =
    if fresh then String.length contents
    else max 0 (String.length contents - valid_end)
  in
  let fd =
    Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644
  in
  (* make the file a clean prefix of valid frames again: rewrite the
     magic when the header itself was torn or missing, drop the tail *)
  if fresh then begin
    Unix.ftruncate fd 0;
    write_all fd (Bytes.of_string wal_magic) 0 mlen
  end
  else if torn > 0 then Unix.ftruncate fd valid_end;
  ignore (Unix.lseek fd 0 Unix.SEEK_END : int);
  if torn > 0 then Unix.fsync fd;
  let snapshot, snapshots_skipped = scan_snapshots dir in
  let snap_seq = match snapshot with Some (s, _, _) -> s | None -> 0 in
  let tail = List.filter (fun r -> r.seq > snap_seq) records in
  let t =
    {
      dir;
      fd;
      wal_len = (if fresh then mlen else valid_end);
      next_seq = max last_seq snap_seq + 1;
      appends = 0;
      since_snapshot = 0;
      snapshots = 0;
      last_snap_seq = snap_seq;
      last_recovery_ms = 0.;
    }
  in
  ( t,
    {
      r_snapshot = snapshot;
      r_tail = tail;
      r_wal_records = List.length records;
      r_torn_bytes = torn;
      r_snapshots_skipped = snapshots_skipped;
    } )

(* ------------------------------------------------------------------ *)
(* Appending                                                            *)

(* The fsync-before-ack contract: when [append] returns, the record is
   on stable storage; the server replies OK only after that. On any
   failure the partial frame is cut away so the log ends at a frame
   boundary — the caller's rollback and the disk then tell the same
   story. *)
let append t ~retract ~epoch text =
  let seq = t.next_seq in
  let b = frame (record_payload ~seq ~retract ~epoch text) in
  let saved = t.wal_len in
  try
    (match Fault.ask Fault.Wal_append with
    | None -> ()
    | Some (Fault.Delay d) -> if d > 0. then Unix.sleepf d
    | Some Fault.Fail -> raise (Fault.Injected Fault.Wal_append)
    | Some Fault.Short ->
      (* model a torn write: half the frame reaches the file before the
         failure, and the recovery contract must cut it away *)
      write_all t.fd b 0 (max 1 (Bytes.length b / 2));
      raise (Fault.Injected Fault.Wal_append));
    write_all t.fd b 0 (Bytes.length b);
    Fault.hit Fault.Wal_fsync;
    Unix.fsync t.fd;
    t.wal_len <- saved + Bytes.length b;
    t.next_seq <- seq + 1;
    t.appends <- t.appends + 1;
    t.since_snapshot <- t.since_snapshot + 1;
    seq
  with e ->
    (try
       Unix.ftruncate t.fd saved;
       ignore (Unix.lseek t.fd 0 Unix.SEEK_END : int)
     with Unix.Unix_error _ -> ());
    raise e

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)

let write_snapshot t ~epoch source =
  let seq = t.next_seq - 1 in
  let plen = 16 + String.length source in
  let payload = Bytes.create plen in
  u64 payload 0 seq;
  u64 payload 8 epoch;
  Bytes.blit_string source 0 payload 16 (String.length source);
  let b = frame (Bytes.unsafe_to_string payload) in
  let final = Filename.concat t.dir (snap_name seq) in
  let tmp = final ^ ".tmp" in
  let fd =
    Unix.openfile tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  in
  (try
     Fault.hit Fault.Snapshot_write;
     write_all fd (Bytes.of_string snap_magic) 0 (String.length snap_magic);
     write_all fd b 0 (Bytes.length b);
     Unix.fsync fd;
     Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (* the rename publishes the snapshot atomically: readers see the old
     set of snapshots or the new one, never a half-written file *)
  Unix.rename tmp final;
  t.snapshots <- t.snapshots + 1;
  t.since_snapshot <- 0;
  t.last_snap_seq <- seq;
  (* retain the two newest snapshots: the previous one is the fallback
     if the new file bit-rots, and the untruncated log covers the rest *)
  (try
     Sys.readdir t.dir |> Array.to_list
     |> List.filter is_snap_name
     |> List.sort (fun a b -> compare b a)
     |> List.iteri (fun i n ->
            if i >= 2 then
              try Sys.remove (Filename.concat t.dir n) with Sys_error _ -> ())
   with Sys_error _ -> ())

(* Snapshot failure is contained by design: every record is still in
   the log, so a failed cut only means a longer replay next time. *)
let snapshot_now t ~epoch ~source =
  match write_snapshot t ~epoch source with
  | () -> true
  | exception (Fault.Injected _ | Unix.Unix_error _ | Sys_error _) -> false

let maybe_snapshot t ~every ~epoch ~source =
  if every > 0 && t.since_snapshot >= every && t.next_seq > 1 then
    snapshot_now t ~epoch ~source:(source ())
  else false

(* ------------------------------------------------------------------ *)

let stats t =
  {
    wal_appends_total = t.appends;
    wal_bytes = t.wal_len;
    snapshots_total = t.snapshots;
    last_recovery_ms = t.last_recovery_ms;
  }

let set_recovery_ms t ms = t.last_recovery_ms <- ms

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
