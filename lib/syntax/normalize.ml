open Ast

(* A restriction applied to a base reference: a filter spec or a class
   membership. Restrictions intersect the base's denotation, hence they
   commute and duplicate ones are redundant. *)
type restriction =
  | Rfilter of reference * reference list * filter_rhs
  | Risa of reference

let is_self_meth meth args =
  match meth with Name "self" -> args = [] | _ -> false

let rec normalize (t : reference) : reference =
  match t with
  | Name _ | Int_lit _ | Str_lit _ | Var _ -> t
  | Paren inner -> normalize inner
  | Path { p_recv; p_sep; p_meth; p_args }
    when is_self_meth p_meth p_args && p_sep = Dot ->
    normalize p_recv
  | Path { p_recv; p_sep; p_meth; p_args }
    when is_self_meth p_meth p_args && p_sep = Dotdot ->
    normalize p_recv
  | Path { p_recv; p_sep; p_meth; p_args } ->
    Path
      {
        p_recv = normalize p_recv;
        p_sep;
        p_meth = normalize_simple p_meth;
        p_args = List.map normalize p_args;
      }
  | Regex { x_recv; x_re } ->
    (* literals hold ground constants; only the receiver can change *)
    Regex { x_recv = normalize x_recv; x_re }
  | Filter _ | Isa _ ->
    (* decompose the maximal restriction chain over its base *)
    let base, restrictions = collect t [] in
    let base = normalize base in
    let restrictions =
      List.map normalize_restriction restrictions
      |> List.sort_uniq compare
    in
    List.fold_left
      (fun acc r ->
        match r with
        | Rfilter (meth, args, rhs) ->
          Filter { f_recv = acc; f_meth = meth; f_args = args; f_rhs = rhs }
        | Risa cls -> Isa { recv = acc; cls })
      base restrictions

(* method/class positions: normalise but keep simple (re-wrap when the
   normalised form is no longer simple — cannot happen today since
   normalisation never turns a simple reference complex, but Paren
   unwrapping can: (M.tc) becomes M.tc, which pretty re-parenthesises) *)
and normalize_simple m =
  match m with
  | Paren inner ->
    let inner' = normalize inner in
    if is_simple inner' then inner' else Paren inner'
  | _ -> normalize m

and collect (t : reference) acc =
  match t with
  | Filter { f_recv; f_meth; f_args; f_rhs } ->
    collect f_recv (Rfilter (f_meth, f_args, f_rhs) :: acc)
  | Isa { recv; cls } -> collect recv (Risa cls :: acc)
  | Name _ | Int_lit _ | Str_lit _ | Var _ | Paren _ | Path _ | Regex _ ->
    (t, acc)

and normalize_restriction = function
  | Rfilter (meth, args, rhs) ->
    let rhs =
      match rhs with
      | Rscalar r -> Rscalar (normalize r)
      | Rset_ref r -> Rset_ref (normalize r)
      | Rset_enum rs ->
        Rset_enum (List.sort_uniq compare (List.map normalize rs))
      | Rsig_scalar r -> Rsig_scalar (normalize r)
      | Rsig_set r -> Rsig_set (normalize r)
    in
    Rfilter (normalize_simple meth, List.map normalize args, rhs)
  | Risa cls -> Risa (normalize_simple cls)

(* One pass can expose new opportunities (unwrapping a parenthesised base
   merges two restriction chains that then need joint sorting); iterate to
   the syntactic fixpoint. Each productive step shrinks or reorders a
   finite structure, so this terminates. *)
let rec reference t =
  let t' = normalize t in
  if Ast.equal_reference t' t then t else reference t'

let literal = function
  | Pos t -> Pos (reference t)
  | Neg t -> Neg (reference t)

let rule (r : Ast.rule) =
  { head = reference r.head; body = List.map literal r.body }

let equal a b = Ast.equal_reference (reference a) (reference b)
