type scal = Dot | Dotdot

type reference =
  | Name of string
  | Int_lit of int
  | Str_lit of string
  | Var of string
  | Paren of reference
  | Path of path
  | Regex of { x_recv : reference; x_re : regex }
  | Filter of filter
  | Isa of { recv : reference; cls : reference }

and regex =
  | Rlit of { l_sep : scal; l_meth : reference; l_args : reference list }
  | Rseq of regex list
  | Ralt of regex list
  | Rstar of regex
  | Rplus of regex
  | Ropt of regex

and path = {
  p_recv : reference;
  p_sep : scal;
  p_meth : reference;
  p_args : reference list;
}

and filter = {
  f_recv : reference;
  f_meth : reference;
  f_args : reference list;
  f_rhs : filter_rhs;
}

and filter_rhs =
  | Rscalar of reference
  | Rset_ref of reference
  | Rset_enum of reference list
  | Rsig_scalar of reference
  | Rsig_set of reference

type literal = Pos of reference | Neg of reference

type rule = { head : reference; body : literal list }

type statement = Rule of rule | Query of literal list

type program = statement list

let equal_reference (a : reference) b = a = b
let compare_reference (a : reference) b = Stdlib.compare a b
let equal_literal (a : literal) b = a = b
let equal_statement (a : statement) b = a = b

let is_simple = function
  | Name _ | Int_lit _ | Str_lit _ | Var _ | Paren _ -> true
  | Path _ | Regex _ | Filter _ | Isa _ -> false

(* Leading separator of the leftmost literal: the one the printer emits
   before the whole regular step and the parser threads back in. *)
let rec regex_lead_sep = function
  | Rlit { l_sep; _ } -> l_sep
  | Rseq (r :: _) | Ralt (r :: _) -> regex_lead_sep r
  | Rseq [] | Ralt [] -> Dot
  | Rstar r | Rplus r | Ropt r -> regex_lead_sep r

let rec fold_regex f acc = function
  | Rlit { l_meth; l_args; _ } ->
    let acc = f acc l_meth in
    List.fold_left f acc l_args
  | Rseq rs | Ralt rs -> List.fold_left (fold_regex f) acc rs
  | Rstar r | Rplus r | Ropt r -> fold_regex f acc r

(* Does the regex accept the empty word? (The closure step for [*] and
   [?]; [Rseq []] is the empty word itself.) *)
let rec regex_nullable = function
  | Rlit _ -> false
  | Rseq rs -> List.for_all regex_nullable rs
  | Ralt rs -> List.exists regex_nullable rs
  | Rstar _ | Ropt _ -> true
  | Rplus r -> regex_nullable r

let fact head = { head; body = [] }

let rec fold_reference f acc t =
  let acc = f acc t in
  match t with
  | Name _ | Int_lit _ | Str_lit _ | Var _ -> acc
  | Paren t' -> fold_reference f acc t'
  | Path { p_recv; p_meth; p_args; _ } ->
    let acc = fold_reference f acc p_recv in
    let acc = fold_reference f acc p_meth in
    List.fold_left (fold_reference f) acc p_args
  | Regex { x_recv; x_re } ->
    let acc = fold_reference f acc x_recv in
    fold_regex (fold_reference f) acc x_re
  | Filter { f_recv; f_meth; f_args; f_rhs } ->
    let acc = fold_reference f acc f_recv in
    let acc = fold_reference f acc f_meth in
    let acc = List.fold_left (fold_reference f) acc f_args in
    (match f_rhs with
    | Rscalar t' | Rset_ref t' | Rsig_scalar t' | Rsig_set t' ->
      fold_reference f acc t'
    | Rset_enum ts -> List.fold_left (fold_reference f) acc ts)
  | Isa { recv; cls } ->
    let acc = fold_reference f acc recv in
    fold_reference f acc cls

let vars_of_reference t =
  let add acc = function
    | Var "_" -> acc  (* anonymous: fresh at every occurrence *)
    | Var v -> if List.mem v acc then acc else v :: acc
    | Name _ | Int_lit _ | Str_lit _ | Paren _ | Path _ | Regex _ | Filter _
    | Isa _ ->
      acc
  in
  List.rev (fold_reference add [] t)

let vars_of_literal = function
  | Pos t | Neg t -> vars_of_reference t

let vars_of_literals lits =
  let add acc l =
    List.fold_left
      (fun acc v -> if List.mem v acc then acc else v :: acc)
      acc (vars_of_literal l)
  in
  List.rev (List.fold_left add [] lits)

let vars_of_rule { head; body } =
  vars_of_literals (Pos head :: body)
