open Ast

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp_reference ppf = function
  | Name s -> Format.pp_print_string ppf s
  | Int_lit n -> Format.pp_print_int ppf n
  | Str_lit s -> Format.fprintf ppf "\"%s\"" (escape_string s)
  | Var v -> Format.pp_print_string ppf v
  | Paren t -> Format.fprintf ppf "(%a)" pp_reference t
  | Path { p_recv; p_sep; p_meth; p_args } ->
    let sep = match p_sep with Dot -> "." | Dotdot -> ".." in
    Format.fprintf ppf "%a%s%a%a" pp_reference p_recv sep pp_simple p_meth
      pp_args p_args
  | Regex { x_recv; x_re } ->
    let sep = match regex_lead_sep x_re with Dot -> "." | Dotdot -> ".." in
    Format.fprintf ppf "%a%s%a" pp_reference x_recv sep (pp_regex 2) x_re
  | Filter { f_recv; f_meth; f_args; f_rhs } ->
    Format.fprintf ppf "%a[%a%a%a]" pp_reference f_recv pp_simple f_meth
      pp_args f_args pp_rhs f_rhs
  | Isa { recv; cls } ->
    Format.fprintf ppf "%a : %a" pp_reference recv pp_simple cls

(* method/class positions must be simple; parenthesise defensively *)
and pp_simple ppf t =
  if is_simple t then pp_reference ppf t
  else Format.fprintf ppf "(%a)" pp_reference t

(* Minimal parentheses via precedence levels: 0 admits alternation,
   1 admits concatenation, 2 only star-like steps. Leading separators of
   alternation branches and of the leftmost literal are implied by
   position and not printed; every other literal prints its own. *)
and pp_regex level ppf (re : Ast.regex) =
  match re with
  | Rlit { l_meth; l_args; _ } ->
    Format.fprintf ppf "%a%a" pp_simple l_meth pp_args l_args
  | Rstar r -> Format.fprintf ppf "%a*" (pp_regex 2) r
  | Rplus r -> Format.fprintf ppf "%a+" (pp_regex 2) r
  | Ropt r -> Format.fprintf ppf "%a?" (pp_regex 2) r
  | Rseq rs ->
    let items ppf rs =
      List.iteri
        (fun i r ->
          if i > 0 then
            Format.pp_print_string ppf
              (match regex_lead_sep r with Dot -> "." | Dotdot -> "..");
          pp_regex 2 ppf r)
        rs
    in
    if level > 1 then Format.fprintf ppf "(%a)" items rs else items ppf rs
  | Ralt rs ->
    (* alternation is only valid inside parentheses *)
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "|")
         (pp_regex 1))
      rs

and pp_args ppf = function
  | [] -> ()
  | args ->
    Format.fprintf ppf "@@(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_reference)
      args

and pp_rhs ppf = function
  | Rscalar t -> Format.fprintf ppf " -> %a" pp_reference t
  | Rset_ref t -> Format.fprintf ppf " ->> %a" pp_reference t
  | Rset_enum ts ->
    Format.fprintf ppf " ->> {%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_reference)
      ts
  | Rsig_scalar t -> Format.fprintf ppf " => %a" pp_simple t
  | Rsig_set t -> Format.fprintf ppf " =>> %a" pp_simple t

let pp_literal ppf = function
  | Pos t -> pp_reference ppf t
  | Neg t -> Format.fprintf ppf "not %a" pp_reference t

let pp_literals ppf lits =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_literal ppf lits

let pp_rule ppf { head; body } =
  match body with
  | [] -> Format.fprintf ppf "%a." pp_reference head
  | _ -> Format.fprintf ppf "%a <- %a." pp_reference head pp_literals body

let pp_statement ppf = function
  | Rule r -> pp_rule ppf r
  | Query lits -> Format.fprintf ppf "?- %a." pp_literals lits

let pp_program ppf prog =
  List.iter (fun s -> Format.fprintf ppf "%a@." pp_statement s) prog

let reference_to_string t = Format.asprintf "%a" pp_reference t
let rule_to_string r = Format.asprintf "%a" pp_rule r
let statement_to_string s = Format.asprintf "%a" pp_statement s
let program_to_string p = Format.asprintf "%a" pp_program p
