type t =
  | NAME of string
  | VAR of string
  | INT of int
  | STRING of string
  | DOT
  | DOTDOT
  | END
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COLON
  | COLONCOLON
  | ARROW
  | DARROW
  | SIG_ARROW
  | SIG_DARROW
  | AT
  | COMMA
  | SEMI
  | IMPLIED
  | QUERY
  | NOT
  | STAR
  | PLUS
  | QMARK
  | PIPE
  | EOF

type pos = { line : int; col : int; offset : int }

type span = { s_start : pos; s_end : pos }

let pp ppf = function
  | NAME s -> Format.fprintf ppf "name %s" s
  | VAR s -> Format.fprintf ppf "variable %s" s
  | INT n -> Format.fprintf ppf "integer %d" n
  | STRING s -> Format.fprintf ppf "string %S" s
  | DOT -> Format.pp_print_string ppf "'.'"
  | DOTDOT -> Format.pp_print_string ppf "'..'"
  | END -> Format.pp_print_string ppf "'.' (end of statement)"
  | LBRACKET -> Format.pp_print_string ppf "'['"
  | RBRACKET -> Format.pp_print_string ppf "']'"
  | LBRACE -> Format.pp_print_string ppf "'{'"
  | RBRACE -> Format.pp_print_string ppf "'}'"
  | LPAREN -> Format.pp_print_string ppf "'('"
  | RPAREN -> Format.pp_print_string ppf "')'"
  | COLON -> Format.pp_print_string ppf "':'"
  | COLONCOLON -> Format.pp_print_string ppf "'::'"
  | ARROW -> Format.pp_print_string ppf "'->'"
  | DARROW -> Format.pp_print_string ppf "'->>'"
  | SIG_ARROW -> Format.pp_print_string ppf "'=>'"
  | SIG_DARROW -> Format.pp_print_string ppf "'=>>'"
  | AT -> Format.pp_print_string ppf "'@'"
  | COMMA -> Format.pp_print_string ppf "','"
  | SEMI -> Format.pp_print_string ppf "';'"
  | IMPLIED -> Format.pp_print_string ppf "'<-'"
  | QUERY -> Format.pp_print_string ppf "'?-'"
  | NOT -> Format.pp_print_string ppf "'not'"
  | STAR -> Format.pp_print_string ppf "'*'"
  | PLUS -> Format.pp_print_string ppf "'+'"
  | QMARK -> Format.pp_print_string ppf "'?'"
  | PIPE -> Format.pp_print_string ppf "'|'"
  | EOF -> Format.pp_print_string ppf "end of input"

let pp_pos ppf { line; col; offset = _ } =
  Format.fprintf ppf "line %d, column %d" line col

let pp_span ppf { s_start; s_end } =
  if s_start.line = s_end.line then
    Format.fprintf ppf "line %d, columns %d-%d" s_start.line s_start.col
      s_end.col
  else
    Format.fprintf ppf "lines %d-%d" s_start.line s_end.line
