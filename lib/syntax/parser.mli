(** Recursive-descent parser for PathLog programs, statements, references
    and queries.

    Grammar (references are postfix chains, left associative):

    {v
      program    ::= { statement }
      statement  ::= rule END | QUERY literals END
      rule       ::= reference [ IMPLIED literals ]
      literals   ::= literal { COMMA literal }
      literal    ::= [ NOT ] reference
      reference  ::= primary { postfix }
      primary    ::= NAME | VAR | INT | STRING | LPAREN reference RPAREN
      postfix    ::= DOT simple [ args ] | DOTDOT simple [ args ]
                   | COLON simple | COLONCOLON simple
                   | LBRACKET item { SEMI item } RBRACKET
      simple     ::= NAME | VAR | INT | STRING | LPAREN reference RPAREN
      args       ::= AT LPAREN [ reference { COMMA reference } ] RPAREN
      item       ::= simple [ args ] ARROW reference
                   | simple [ args ] DARROW ( reference | LBRACE refs RBRACE )
                   | simple [ args ] SIG_ARROW simple
                   | simple [ args ] SIG_DARROW simple
                   | reference              (selector, sugar for self -> r)
    v}

    XSQL-style selectors [\[Y\]] are desugared to [\[self -> Y\]] during
    parsing, as section 4.1 of the paper specifies. [::] is parsed as the
    same hierarchy relation as [:] (the paper folds both into one partial
    order). *)

exception Error of Token.pos * string

val program : string -> Ast.program

(** Like {!program}, with the source span of every statement (first token
    through the terminating ['.']) — the positions diagnostics anchor on. *)
val program_spanned : string -> (Ast.statement * Token.span) list

val statement : string -> Ast.statement

(** Parse a single reference (no trailing [.]). *)
val reference : string -> Ast.reference

(** Parse a comma-separated literal list (no [?-], no trailing [.]). *)
val literals : string -> Ast.literal list
