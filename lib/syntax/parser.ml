exception Error of Token.pos * string

type state = { mutable toks : (Token.t * Token.pos) list }

let peek st =
  match st.toks with
  | (t, p) :: _ -> (t, p)
  | [] -> (Token.EOF, { Token.line = 0; col = 0; offset = 0 })

let advance st =
  match st.toks with (_ :: rest) -> st.toks <- rest | [] -> ()

let error_at pos fmt =
  Format.kasprintf (fun msg -> raise (Error (pos, msg))) fmt

let expect st tok =
  let t, p = peek st in
  if t = tok then advance st
  else error_at p "expected %a but found %a" Token.pp tok Token.pp t

let self_name = "self"

(* --------------------------------------------------------------- *)

let rec primary st : Ast.reference =
  let t, p = peek st in
  match t with
  | NAME s -> advance st; Name s
  | VAR s -> advance st; Var s
  | INT n -> advance st; Int_lit n
  | STRING s -> advance st; Str_lit s
  | LPAREN ->
    advance st;
    let r = reference st in
    expect st RPAREN;
    Paren r
  | _ -> error_at p "expected a reference but found %a" Token.pp t

and simple st : Ast.reference =
  let r = primary st in
  r

and args_opt st : Ast.reference list =
  match peek st with
  | AT, _ ->
    advance st;
    expect st LPAREN;
    let rec go acc =
      let r = reference st in
      match peek st with
      | COMMA, _ ->
        advance st;
        go (r :: acc)
      | _ -> List.rev (r :: acc)
    in
    let args = (match peek st with RPAREN, _ -> [] | _ -> go []) in
    expect st RPAREN;
    args
  | _ -> []

and filter_item st (recv : Ast.reference) : Ast.reference =
  (* Either a method specification [m@(args) (->|->>|=>|=>>) rhs] or a bare
     selector reference, which desugars to [self -> r]. We parse a full
     reference first; if an arrow follows, it must have been a simple
     method (possibly with arguments). *)
  let _, start_pos = peek st in
  let meth = reference st in
  let args = args_opt st in
  let check_simple_meth () =
    if not (Ast.is_simple meth) then
      error_at start_pos
        "the method position of a filter must be a simple reference \
         (use parentheses)"
  in
  match peek st with
  | ARROW, _ ->
    advance st;
    check_simple_meth ();
    let rhs = reference st in
    Filter { f_recv = recv; f_meth = meth; f_args = args; f_rhs = Rscalar rhs }
  | DARROW, _ ->
    advance st;
    check_simple_meth ();
    let rhs : Ast.filter_rhs =
      match peek st with
      | LBRACE, _ ->
        advance st;
        let rec go acc =
          let r = reference st in
          match peek st with
          | COMMA, _ ->
            advance st;
            go (r :: acc)
          | _ -> List.rev (r :: acc)
        in
        let elems = (match peek st with RBRACE, _ -> [] | _ -> go []) in
        expect st RBRACE;
        Rset_enum elems
      | _ -> Rset_ref (reference st)
    in
    Filter { f_recv = recv; f_meth = meth; f_args = args; f_rhs = rhs }
  | SIG_ARROW, _ ->
    advance st;
    check_simple_meth ();
    let cls = simple st in
    Filter
      { f_recv = recv; f_meth = meth; f_args = args; f_rhs = Rsig_scalar cls }
  | SIG_DARROW, _ ->
    advance st;
    check_simple_meth ();
    let cls = simple st in
    Filter
      { f_recv = recv; f_meth = meth; f_args = args; f_rhs = Rsig_set cls }
  | _ ->
    (* selector: [r] abbreviates [self -> r] *)
    if args <> [] then
      error_at start_pos "selector references cannot take arguments";
    Filter
      {
        f_recv = recv;
        f_meth = Name self_name;
        f_args = [];
        f_rhs = Rscalar meth;
      }

and postfixes st (r : Ast.reference) : Ast.reference =
  match peek st with
  | DOT, _ ->
    advance st;
    let m = simple st in
    let args = args_opt st in
    postfixes st
      (Path { p_recv = r; p_sep = Dot; p_meth = m; p_args = args })
  | DOTDOT, _ ->
    advance st;
    let m = simple st in
    let args = args_opt st in
    postfixes st
      (Path { p_recv = r; p_sep = Dotdot; p_meth = m; p_args = args })
  | (COLON | COLONCOLON), _ ->
    advance st;
    let c = simple st in
    postfixes st (Isa { recv = r; cls = c })
  | LBRACKET, _ ->
    advance st;
    let rec items acc =
      let acc = filter_item st acc in
      match peek st with
      | SEMI, _ ->
        advance st;
        items acc
      | _ -> acc
    in
    let r = items r in
    expect st RBRACKET;
    postfixes st r
  | _ -> r

and reference st : Ast.reference = postfixes st (primary st)

let literal st : Ast.literal =
  match peek st with
  | NOT, _ ->
    advance st;
    Neg (reference st)
  | _ -> Pos (reference st)

let literal_list st : Ast.literal list =
  let rec go acc =
    let l = literal st in
    match peek st with
    | COMMA, _ ->
      advance st;
      go (l :: acc)
    | _ -> List.rev (l :: acc)
  in
  go []

let spanned_statement st : Ast.statement * Token.span =
  let _, start = peek st in
  let stmt =
    match peek st with
    | QUERY, _ ->
      advance st;
      let lits = literal_list st in
      Ast.Query lits
    | _ ->
      let head = reference st in
      let body =
        match peek st with
        | IMPLIED, _ ->
          advance st;
          literal_list st
        | _ -> []
      in
      Ast.Rule { head; body }
  in
  let _, stop = peek st in
  (* position of the terminating '.' *)
  expect st END;
  (stmt, { Token.s_start = start; s_end = stop })

let statement_st st : Ast.statement = fst (spanned_statement st)

(* --------------------------------------------------------------- *)
(* Entry points *)

let with_input src f =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error (pos, msg) -> raise (Error (pos, msg))
  in
  let st = { toks } in
  let result = f st in
  (match peek st with
  | EOF, _ -> ()
  | t, p -> error_at p "trailing input: %a" Token.pp t);
  result

let program_spanned src =
  with_input src (fun st ->
      let rec go acc =
        match peek st with
        | EOF, _ -> List.rev acc
        | _ -> go (spanned_statement st :: acc)
      in
      go [])

let program src = List.map fst (program_spanned src)

let statement src = with_input src statement_st
let reference src = with_input src reference
let literals src = with_input src literal_list
