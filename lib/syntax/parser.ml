exception Error of Token.pos * string

type state = { mutable toks : (Token.t * Token.pos) list }

let peek st =
  match st.toks with
  | (t, p) :: _ -> (t, p)
  | [] -> (Token.EOF, { Token.line = 0; col = 0; offset = 0 })

let advance st =
  match st.toks with (_ :: rest) -> st.toks <- rest | [] -> ()

let error_at pos fmt =
  Format.kasprintf (fun msg -> raise (Error (pos, msg))) fmt

let expect st tok =
  let t, p = peek st in
  if t = tok then advance st
  else error_at p "expected %a but found %a" Token.pp tok Token.pp t

let self_name = "self"

(* --------------------------------------------------------------- *)

let rec primary st : Ast.reference =
  let t, p = peek st in
  match t with
  | NAME s -> advance st; Name s
  | VAR s -> advance st; Var s
  | INT n -> advance st; Int_lit n
  | STRING s -> advance st; Str_lit s
  | LPAREN ->
    advance st;
    let r = reference st in
    expect st RPAREN;
    Paren r
  | _ -> error_at p "expected a reference but found %a" Token.pp t

and simple st : Ast.reference =
  let r = primary st in
  r

and args_opt st : Ast.reference list =
  match peek st with
  | AT, _ ->
    advance st;
    expect st LPAREN;
    let rec go acc =
      let r = reference st in
      match peek st with
      | COMMA, _ ->
        advance st;
        go (r :: acc)
      | _ -> List.rev (r :: acc)
    in
    let args = (match peek st with RPAREN, _ -> [] | _ -> go []) in
    expect st RPAREN;
    args
  | _ -> []

and filter_item st (recv : Ast.reference) : Ast.reference =
  (* Either a method specification [m@(args) (->|->>|=>|=>>) rhs] or a bare
     selector reference, which desugars to [self -> r]. We parse a full
     reference first; if an arrow follows, it must have been a simple
     method (possibly with arguments). *)
  let _, start_pos = peek st in
  let meth = reference st in
  let args = args_opt st in
  let check_simple_meth () =
    if not (Ast.is_simple meth) then
      error_at start_pos
        "the method position of a filter must be a simple reference \
         (use parentheses)"
  in
  match peek st with
  | ARROW, _ ->
    advance st;
    check_simple_meth ();
    let rhs = reference st in
    Filter { f_recv = recv; f_meth = meth; f_args = args; f_rhs = Rscalar rhs }
  | DARROW, _ ->
    advance st;
    check_simple_meth ();
    let rhs : Ast.filter_rhs =
      match peek st with
      | LBRACE, _ ->
        advance st;
        let rec go acc =
          let r = reference st in
          match peek st with
          | COMMA, _ ->
            advance st;
            go (r :: acc)
          | _ -> List.rev (r :: acc)
        in
        let elems = (match peek st with RBRACE, _ -> [] | _ -> go []) in
        expect st RBRACE;
        Rset_enum elems
      | _ -> Rset_ref (reference st)
    in
    Filter { f_recv = recv; f_meth = meth; f_args = args; f_rhs = rhs }
  | SIG_ARROW, _ ->
    advance st;
    check_simple_meth ();
    let cls = simple st in
    Filter
      { f_recv = recv; f_meth = meth; f_args = args; f_rhs = Rsig_scalar cls }
  | SIG_DARROW, _ ->
    advance st;
    check_simple_meth ();
    let cls = simple st in
    Filter
      { f_recv = recv; f_meth = meth; f_args = args; f_rhs = Rsig_set cls }
  | _ ->
    (* selector: [r] abbreviates [self -> r] *)
    if args <> [] then
      error_at start_pos "selector references cannot take arguments";
    Filter
      {
        f_recv = recv;
        f_meth = Name self_name;
        f_args = [];
        f_rhs = Rscalar meth;
      }

and check_regex_args pos (args : Ast.reference list) =
  List.iter
    (fun (a : Ast.reference) ->
      match a with
      | Name _ | Int_lit _ | Str_lit _ -> ()
      | Var _ | Paren _ | Path _ | Regex _ | Filter _ | Isa _ ->
        error_at pos
          "arguments of a regular path step must be constants (names, \
           integers or strings)")
    args

(* One step after '.' or '..': a plain path step (back-compat), or a
   regular step when repetition operators or grouped alternation appear.
   Grammar (X2Traverse): Or = Concat {'|' Concat};
   Concat = StarLike {('.'|'..') StarLike};
   StarLike = (name args | '(' Or ')') {'*'|'+'|'?'}.
   Alternation is only valid inside parentheses; '(r)' without any
   regular operator keeps its existing meaning (a parenthesised method
   reference). *)
and regex_ops st (r : Ast.regex) : Ast.regex =
  match peek st with
  | STAR, _ ->
    advance st;
    regex_ops st (Rstar r)
  | PLUS, _ ->
    advance st;
    regex_ops st (Rplus r)
  | QMARK, _ ->
    advance st;
    regex_ops st (Ropt r)
  | _ -> r

and regex_atom st ~(sep : Ast.scal) : Ast.regex =
  match peek st with
  | LPAREN, _ ->
    advance st;
    let r = regex_or st ~sep in
    expect st RPAREN;
    r
  | NAME n, p ->
    advance st;
    let args = args_opt st in
    check_regex_args p args;
    Rlit { l_sep = sep; l_meth = Name n; l_args = args }
  | t, p ->
    error_at p "expected a method name or '(' in a regular path but found %a"
      Token.pp t

and regex_starlike st ~sep : Ast.regex = regex_ops st (regex_atom st ~sep)

and regex_concat st ~sep : Ast.regex =
  let first = regex_starlike st ~sep in
  let rec go acc =
    match peek st with
    | DOT, _ ->
      advance st;
      go (regex_starlike st ~sep:Dot :: acc)
    | DOTDOT, _ ->
      advance st;
      go (regex_starlike st ~sep:Dotdot :: acc)
    | _ -> List.rev acc
  in
  match go [ first ] with [ r ] -> r | rs -> Rseq rs

and regex_or st ~sep : Ast.regex =
  let first = regex_concat st ~sep in
  let rec go acc =
    match peek st with
    | PIPE, _ ->
      advance st;
      go (regex_concat st ~sep :: acc)
    | _ -> List.rev acc
  in
  match go [ first ] with [ r ] -> r | rs -> Ralt rs

and path_step st (r : Ast.reference) (sep : Ast.scal) : Ast.reference =
  match peek st with
  | LPAREN, _ -> (
    (* Try the established parenthesised-method parse first; fall back to
       a regular group when it fails ('|' inside) or is followed by a
       repetition operator. *)
    let saved = st.toks in
    match
      let m = simple st in
      let args = args_opt st in
      match peek st with
      | (STAR | PLUS | QMARK), _ -> None
      | _ -> Some (m, args)
    with
    | Some (m, args) ->
      Path { p_recv = r; p_sep = sep; p_meth = m; p_args = args }
    | None | (exception Error _) ->
      st.toks <- saved;
      Regex { x_recv = r; x_re = regex_starlike st ~sep })
  | NAME _, p -> (
    let m = simple st in
    let args = args_opt st in
    match peek st with
    | (STAR | PLUS | QMARK), _ ->
      check_regex_args p args;
      Regex
        {
          x_recv = r;
          x_re =
            regex_ops st (Rlit { l_sep = sep; l_meth = m; l_args = args });
        }
    | _ -> Path { p_recv = r; p_sep = sep; p_meth = m; p_args = args })
  | _, p -> (
    let m = simple st in
    let args = args_opt st in
    match peek st with
    | (STAR | PLUS | QMARK), _ ->
      error_at p "regular path steps must use named methods"
    | _ -> Path { p_recv = r; p_sep = sep; p_meth = m; p_args = args })

and postfixes st (r : Ast.reference) : Ast.reference =
  match peek st with
  | DOT, _ ->
    advance st;
    postfixes st (path_step st r Dot)
  | DOTDOT, _ ->
    advance st;
    postfixes st (path_step st r Dotdot)
  | (COLON | COLONCOLON), _ ->
    advance st;
    let c = simple st in
    postfixes st (Isa { recv = r; cls = c })
  | LBRACKET, _ ->
    advance st;
    let rec items acc =
      let acc = filter_item st acc in
      match peek st with
      | SEMI, _ ->
        advance st;
        items acc
      | _ -> acc
    in
    let r = items r in
    expect st RBRACKET;
    postfixes st r
  | _ -> r

and reference st : Ast.reference = postfixes st (primary st)

let literal st : Ast.literal =
  match peek st with
  | NOT, _ ->
    advance st;
    Neg (reference st)
  | _ -> Pos (reference st)

let literal_list st : Ast.literal list =
  let rec go acc =
    let l = literal st in
    match peek st with
    | COMMA, _ ->
      advance st;
      go (l :: acc)
    | _ -> List.rev (l :: acc)
  in
  go []

let spanned_statement st : Ast.statement * Token.span =
  let _, start = peek st in
  let stmt =
    match peek st with
    | QUERY, _ ->
      advance st;
      let lits = literal_list st in
      Ast.Query lits
    | _ ->
      let head = reference st in
      let body =
        match peek st with
        | IMPLIED, _ ->
          advance st;
          literal_list st
        | _ -> []
      in
      Ast.Rule { head; body }
  in
  let _, stop = peek st in
  (* position of the terminating '.' *)
  expect st END;
  (stmt, { Token.s_start = start; s_end = stop })

let statement_st st : Ast.statement = fst (spanned_statement st)

(* --------------------------------------------------------------- *)
(* Entry points *)

let with_input src f =
  let toks =
    try Lexer.tokenize src
    with Lexer.Error (pos, msg) -> raise (Error (pos, msg))
  in
  let st = { toks } in
  let result = f st in
  (match peek st with
  | EOF, _ -> ()
  | t, p -> error_at p "trailing input: %a" Token.pp t);
  result

let program_spanned src =
  with_input src (fun st ->
      let rec go acc =
        match peek st with
        | EOF, _ -> List.rev acc
        | _ -> go (spanned_statement st :: acc)
      in
      go [])

let program src = List.map fst (program_spanned src)

let statement src = with_input src statement_st
let reference src = with_input src reference
let literals src = with_input src literal_list
