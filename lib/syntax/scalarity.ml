type t = Scalar | Set_valued

let equal (a : t) b = a = b

let pp ppf = function
  | Scalar -> Format.pp_print_string ppf "scalar"
  | Set_valued -> Format.pp_print_string ppf "set valued"

let rec of_reference : Ast.reference -> t = function
  | Name _ | Int_lit _ | Str_lit _ | Var _ -> Scalar
  | Paren t -> of_reference t
  | Path { p_sep = Dotdot; _ } -> Set_valued
  | Path { p_sep = Dot; p_recv; p_meth; p_args } ->
    if
      of_reference p_recv = Set_valued
      || of_reference p_meth = Set_valued
      || List.exists (fun a -> of_reference a = Set_valued) p_args
    then Set_valued
    else Scalar
  | Regex _ -> Set_valued  (* a regular step denotes a set of objects *)
  | Filter { f_recv; _ } -> of_reference f_recv
  | Isa { recv; _ } -> of_reference recv

let is_scalar t = of_reference t = Scalar
let is_set_valued t = of_reference t = Set_valued
