(** Abstract syntax of PathLog (Definition 1 of the paper).

    References subsume paths and molecules and are mutually nested in the
    liberal way the paper allows: anywhere a sub-molecule may appear a path
    may appear, and vice versa. Parenthesised references are a distinct
    constructor, exactly as in Definition 1 — they matter for the class
    position ([L : (integer.list)] vs [L : integer.list]). *)

type scal =
  | Dot  (** [.] — scalar method application *)
  | Dotdot  (** [..] — set-valued method application *)

type reference =
  | Name of string  (** lowercase identifier; also classes and methods *)
  | Int_lit of int
  | Str_lit of string
  | Var of string  (** capitalised identifier *)
  | Paren of reference  (** [(t)] *)
  | Path of path  (** [t.m@(t1,...,tk)] or [t..m@(t1,...,tk)] *)
  | Regex of { x_recv : reference; x_re : regex }
      (** [t.m*], [t.(a|b)+], ... — a regular path step (X2Traverse-style
          Or/Concat/StarLike over path literals); denotes the set of
          objects reachable from [x_recv] along any word of [x_re] *)
  | Filter of filter  (** [t[m@(args) -> r]] and the other molecule forms *)
  | Isa of { recv : reference; cls : reference }  (** [t : c] *)

and regex =
  | Rlit of { l_sep : scal; l_meth : reference; l_args : reference list }
      (** one step: a named method with constant arguments; [l_sep]
          selects the scalar ([.]) or set-valued ([..]) edge relation *)
  | Rseq of regex list  (** concatenation, flattened (length >= 2) *)
  | Ralt of regex list  (** alternation [a|b], flattened (length >= 2) *)
  | Rstar of regex
  | Rplus of regex
  | Ropt of regex

and path = {
  p_recv : reference;
  p_sep : scal;
  p_meth : reference;  (** a simple reference (parser-enforced) *)
  p_args : reference list;
}

and filter = {
  f_recv : reference;
  f_meth : reference;  (** a simple reference (parser-enforced) *)
  f_args : reference list;
  f_rhs : filter_rhs;
}

and filter_rhs =
  | Rscalar of reference  (** [m -> t] *)
  | Rset_ref of reference  (** [m ->> s], [s] a set-valued reference *)
  | Rset_enum of reference list  (** [m ->> {t1,...,tl}] *)
  | Rsig_scalar of reference  (** [m => c] — signature, statement level only *)
  | Rsig_set of reference  (** [m =>> c] — signature, statement level only *)

type literal =
  | Pos of reference
  | Neg of reference  (** [not t] — stratified-negation extension *)

type rule = { head : reference; body : literal list }
(** A fact is a rule with an empty body. *)

type statement =
  | Rule of rule
  | Query of literal list  (** [?- l1, ..., ln.] *)

type program = statement list

val equal_reference : reference -> reference -> bool

val compare_reference : reference -> reference -> int

val equal_literal : literal -> literal -> bool

val equal_statement : statement -> statement -> bool

(** [is_simple t] — simple references per Definition 1: names, variables,
    literals and parenthesised references. *)
val is_simple : reference -> bool

(** Free variables, left-to-right first occurrence order, no duplicates.
    The anonymous variable [_] is excluded: each of its occurrences stands
    for a fresh existential variable. *)
val vars_of_reference : reference -> string list

val vars_of_literal : literal -> string list

val vars_of_literals : literal list -> string list

val vars_of_rule : rule -> string list

(** [fact r] is the rule [r <- .] *)
val fact : reference -> rule

(** Fold over every sub-reference (pre-order, including the root and the
    method/argument references of regular path literals). *)
val fold_reference : ('a -> reference -> 'a) -> 'a -> reference -> 'a

(** Fold over the method and argument references of every literal. *)
val fold_regex : ('a -> reference -> 'a) -> 'a -> regex -> 'a

(** Separator of the leftmost literal — the separator printed before the
    whole regular step. All heads of an alternation share it. *)
val regex_lead_sep : regex -> scal

(** Whether the regex accepts the empty word (the step then relates every
    receiver to itself). *)
val regex_nullable : regex -> bool
