(** Well-formedness — Definition 3 — plus the head and safety conditions of
    section 6, and the scoping of signature declarations.

    A reference is well-formed iff every sub-reference is and:
    - in [t0\[m@(t1..tk) -> tr\]], the method, arguments and result are
      scalar;
    - in [t0\[m@(t1..tk) ->> s\]], the method and arguments are scalar and
      [s] is a set-valued reference or an explicit set of scalar references;
    - in [t0 : c], the class [c] is scalar.

    Signature arrows ([=>], [=>>]) are only legal as the outermost filter of
    a top-level fact (they are schema declarations, not formulas). *)

type error =
  | Anonymous_variable_in_head
      (** [_] in a rule head (each occurrence is fresh, hence unbound) *)
  | Anonymous_variable_in_negation
      (** [_] under [not] (fresh, hence unbound) *)
  | Set_valued_at_scalar_position of Ast.reference
      (** a set-valued reference where Definition 3 requires a scalar one *)
  | Scalar_at_set_position of Ast.reference
      (** [m ->> s] with scalar, non-enumerated [s]: write [{s}] instead *)
  | Signature_in_formula of Ast.reference
      (** [=>]/[=>>] nested inside a formula *)
  | Set_valued_head of Ast.reference
      (** rule head is a set-valued reference (section 6 forbids this) *)
  | Unsafe_head_variable of string
      (** head variable not bound by any positive body literal *)
  | Unsafe_negated_variable of string
      (** variable occurring only under [not] *)
  | Regex_in_head of Ast.reference
      (** a regular path step in a rule head (evaluation-only construct) *)

exception Ill_formed of error

val pp_error : Format.formatter -> error -> unit

(** Check Definition 3 on one reference. *)
val check_reference : Ast.reference -> (unit, error) result

(** Check a rule: body references well-formed; head well-formed, scalar and
    signature-free; range restriction (head variables bound positively;
    negated variables bound positively). Facts are rules with empty
    bodies — their "range restriction" is groundness of the head. *)
val check_rule : Ast.rule -> (unit, error) result

val check_query : Ast.literal list -> (unit, error) result

(** [signature_of_statement stmt] extracts a schema declaration when [stmt]
    is a fact of the shape [c\[m@(args) => r\]] or [c\[m@(args) =>> r\]]. *)
val signature_of_statement :
  Ast.statement ->
  (Ast.reference * Ast.reference * Ast.reference list * Ast.reference
  * Scalarity.t)
  option
