exception Error of Token.pos * string

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let current_pos st : Token.pos =
  { line = st.line; col = st.pos - st.bol + 1; offset = st.pos }

let error st msg = raise (Error (current_pos st, msg))

let peek st k =
  let i = st.pos + k in
  if i < String.length st.src then Some st.src.[i] else None

let advance st n =
  for _ = 1 to n do
    (match peek st 0 with
    | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
    | Some _ | None -> ());
    st.pos <- st.pos + 1
  done

let is_digit c = c >= '0' && c <= '9'
let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_lower c || is_upper c || is_digit c

let rec skip_trivia st =
  match peek st 0 with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st 1;
    skip_trivia st
  | Some '%' ->
    let rec to_eol () =
      match peek st 0 with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st 1;
        to_eol ()
    in
    to_eol ();
    skip_trivia st
  | Some _ | None -> ()

let lex_ident st =
  let start = st.pos in
  while (match peek st 0 with Some c -> is_ident c | None -> false) do
    advance st 1
  done;
  String.sub st.src start (st.pos - start)

let lex_int st =
  let start = st.pos in
  if peek st 0 = Some '-' then advance st 1;
  while (match peek st 0 with Some c -> is_digit c | None -> false) do
    advance st 1
  done;
  int_of_string (String.sub st.src start (st.pos - start))

let lex_string st =
  advance st 1;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st 0 with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st 1
    | Some '\\' ->
      (match peek st 1 with
      | Some ('"' as c) | Some ('\\' as c) ->
        Buffer.add_char buf c;
        advance st 2
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance st 2
      | Some c -> error st (Printf.sprintf "bad escape '\\%c'" c)
      | None -> error st "unterminated string literal");
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st 1;
      go ()
  in
  go ();
  Buffer.contents buf

(* A '.' continues a path iff what follows can start a simple reference. *)
let dot_is_separator st =
  match peek st 1 with
  | Some c -> is_ident c || c = '(' || c = '"'
  | None -> false

let next_token st : Token.t =
  match peek st 0 with
  | None -> EOF
  | Some c -> (
    match c with
    | '[' -> advance st 1; LBRACKET
    | ']' -> advance st 1; RBRACKET
    | '{' -> advance st 1; LBRACE
    | '}' -> advance st 1; RBRACE
    | '(' -> advance st 1; LPAREN
    | ')' -> advance st 1; RPAREN
    | ',' -> advance st 1; COMMA
    | ';' -> advance st 1; SEMI
    | '@' -> advance st 1; AT
    | '"' -> STRING (lex_string st)
    | ':' ->
      if peek st 1 = Some ':' then (advance st 2; COLONCOLON)
      else (advance st 1; COLON)
    | '.' ->
      if peek st 1 = Some '.' then (advance st 2; DOTDOT)
      else if dot_is_separator st then (advance st 1; DOT)
      else (advance st 1; END)
    | '-' ->
      if peek st 1 = Some '>' then
        if peek st 2 = Some '>' then (advance st 3; DARROW)
        else (advance st 2; ARROW)
      else if (match peek st 1 with Some c -> is_digit c | None -> false)
      then INT (lex_int st)
      else error st "expected '->' or a negative integer after '-'"
    | '=' ->
      if peek st 1 = Some '>' then
        if peek st 2 = Some '>' then (advance st 3; SIG_DARROW)
        else (advance st 2; SIG_ARROW)
      else error st "expected '=>' after '='"
    | '<' ->
      if peek st 1 = Some '-' then (advance st 2; IMPLIED)
      else error st "expected '<-' after '<'"
    | '*' -> advance st 1; STAR
    | '+' -> advance st 1; PLUS
    | '|' -> advance st 1; PIPE
    | '?' ->
      if peek st 1 = Some '-' then (advance st 2; QUERY)
      else (advance st 1; QMARK)
    | c when is_digit c -> INT (lex_int st)
    | c when is_lower c ->
      let id = lex_ident st in
      if id = "not" then NOT else NAME id
    | c when is_upper c -> VAR (lex_ident st)
    | c -> error st (Printf.sprintf "unexpected character %C" c))

let tokenize src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let rec go acc =
    skip_trivia st;
    let pos = current_pos st in
    let tok = next_token st in
    let acc = (tok, pos) :: acc in
    match tok with Token.EOF -> List.rev acc | _ -> go acc
  in
  go []
