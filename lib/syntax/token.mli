(** Tokens of the concrete PathLog syntax. *)

type t =
  | NAME of string
  | VAR of string
  | INT of int
  | STRING of string
  | DOT  (** [.] as path separator *)
  | DOTDOT  (** [..] *)
  | END  (** [.] as statement terminator *)
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COLON
  | COLONCOLON
  | ARROW  (** [->] *)
  | DARROW  (** [->>] *)
  | SIG_ARROW  (** [=>] *)
  | SIG_DARROW  (** [=>>] *)
  | AT
  | COMMA
  | SEMI
  | IMPLIED  (** [<-] *)
  | QUERY  (** [?-] *)
  | NOT
  | STAR  (** [*] — regular path repetition *)
  | PLUS  (** [+] — regular path repetition, one or more *)
  | QMARK  (** [?] — regular path option *)
  | PIPE  (** [|] — regular path alternation *)
  | EOF

type pos = { line : int; col : int; offset : int }
(** [offset] is the 0-based byte offset of the position in the source
    text, so spans are stable for tooling regardless of line endings. *)

(** Source extent of a statement: position of its first token through the
    position of its terminating ['.'] token (inclusive). *)
type span = { s_start : pos; s_end : pos }

val pp : Format.formatter -> t -> unit

val pp_pos : Format.formatter -> pos -> unit

val pp_span : Format.formatter -> span -> unit
