open Ast

type error =
  | Anonymous_variable_in_head
  | Anonymous_variable_in_negation
  | Set_valued_at_scalar_position of Ast.reference
  | Scalar_at_set_position of Ast.reference
  | Signature_in_formula of Ast.reference
  | Set_valued_head of Ast.reference
  | Unsafe_head_variable of string
  | Unsafe_negated_variable of string
  | Regex_in_head of Ast.reference

exception Ill_formed of error

let pp_error ppf = function
  | Anonymous_variable_in_head ->
    Format.pp_print_string ppf
      "the anonymous variable _ cannot appear in a rule head"
  | Anonymous_variable_in_negation ->
    Format.pp_print_string ppf
      "the anonymous variable _ cannot appear under 'not' (each _ is a \
       fresh variable and would be unbound)"
  | Set_valued_at_scalar_position t ->
    Format.fprintf ppf
      "set-valued reference %a used where a scalar one is required"
      Pretty.pp_reference t
  | Scalar_at_set_position t ->
    Format.fprintf ppf
      "scalar reference %a used as the result of a set-valued method (write \
       {%a})"
      Pretty.pp_reference t Pretty.pp_reference t
  | Signature_in_formula t ->
    Format.fprintf ppf
      "signature declaration %a may only appear as a top-level fact"
      Pretty.pp_reference t
  | Set_valued_head t ->
    Format.fprintf ppf
      "rule head %a is set valued; set-valued references are forbidden in \
       rule heads"
      Pretty.pp_reference t
  | Unsafe_head_variable v ->
    Format.fprintf ppf
      "head variable %s is not bound by any positive body literal" v
  | Unsafe_negated_variable v ->
    Format.fprintf ppf
      "variable %s occurs only under 'not' and is never bound positively" v
  | Regex_in_head t ->
    Format.fprintf ppf
      "rule head %a contains a regular path; regular paths may only appear \
       in rule bodies and queries"
      Pretty.pp_reference t

let require_scalar t =
  if Scalarity.is_set_valued t then
    raise (Ill_formed (Set_valued_at_scalar_position t))

(* Definition 3, applied recursively; signature arrows are rejected unless
   [sig_ok] (outermost filter of a top-level fact). *)
let rec check ?(sig_ok = false) t =
  match t with
  | Name _ | Int_lit _ | Str_lit _ | Var _ -> ()
  | Paren t' -> check t'
  | Path { p_recv; p_meth; p_args; _ } ->
    check p_recv;
    check p_meth;
    List.iter check p_args
  | Regex { x_recv; x_re } ->
    check x_recv;
    fold_regex
      (fun () r ->
        check r;
        require_scalar r)
      () x_re
  | Isa { recv; cls } ->
    check recv;
    check cls;
    require_scalar cls
  | Filter { f_recv; f_meth; f_args; f_rhs } ->
    check f_recv;
    check f_meth;
    require_scalar f_meth;
    List.iter
      (fun a ->
        check a;
        require_scalar a)
      f_args;
    (match f_rhs with
    | Rscalar r ->
      check r;
      require_scalar r
    | Rset_ref r ->
      check r;
      if Scalarity.is_scalar r then
        raise (Ill_formed (Scalar_at_set_position r))
    | Rset_enum rs ->
      List.iter
        (fun r ->
          check r;
          require_scalar r)
        rs
    | Rsig_scalar r | Rsig_set r ->
      if not sig_ok then raise (Ill_formed (Signature_in_formula t));
      check r;
      require_scalar r)

let check_reference t =
  match check t with () -> Ok () | exception Ill_formed e -> Error e

let check_literal = function
  | Pos t | Neg t -> check t

(* Variables bound by the positive body part. Every variable occurring in a
   positive literal is bound: the solver enumerates candidates for any
   position from the store's indexes (including, in the worst case, the
   whole universe). Safety in the Datalog sense thus only requires head
   variables and negated variables to occur positively. *)
let positive_vars body =
  List.concat_map
    (function Pos t -> vars_of_reference t | Neg _ -> [])
    body

let has_anonymous t =
  fold_reference
    (fun acc sub -> acc || (match sub with Var "_" -> true | _ -> false))
    false t

let has_regex t =
  fold_reference
    (fun acc sub -> acc || (match sub with Regex _ -> true | _ -> false))
    false t

let check_rule_exn { head; body } =
  check ~sig_ok:(body = []) head;
  if has_anonymous head then raise (Ill_formed Anonymous_variable_in_head);
  if has_regex head then raise (Ill_formed (Regex_in_head head));
  List.iter
    (function
      | Pos _ -> ()
      | Neg t ->
        if has_anonymous t then
          raise (Ill_formed Anonymous_variable_in_negation))
    body;
  if Scalarity.is_set_valued head then raise (Ill_formed (Set_valued_head head));
  List.iter check_literal body;
  let bound = positive_vars body in
  List.iter
    (fun v ->
      if not (List.mem v bound) then
        raise (Ill_formed (Unsafe_head_variable v)))
    (vars_of_reference head);
  List.iter
    (function
      | Pos _ -> ()
      | Neg t ->
        List.iter
          (fun v ->
            if not (List.mem v bound) then
              raise (Ill_formed (Unsafe_negated_variable v)))
          (vars_of_reference t))
    body

let check_rule r =
  match check_rule_exn r with
  | () -> Ok ()
  | exception Ill_formed e -> Error e

let check_query lits =
  match
    List.iter check_literal lits;
    List.iter
      (function
        | Pos _ -> ()
        | Neg t ->
          if has_anonymous t then
            raise (Ill_formed Anonymous_variable_in_negation))
      lits;
    let bound = positive_vars lits in
    List.iter
      (function
        | Pos _ -> ()
        | Neg t ->
          List.iter
            (fun v ->
              if not (List.mem v bound) then
                raise (Ill_formed (Unsafe_negated_variable v)))
            (vars_of_reference t))
      lits
  with
  | () -> Ok ()
  | exception Ill_formed e -> Error e

let signature_of_statement = function
  | Rule
      {
        head =
          Filter { f_recv; f_meth; f_args; f_rhs = Rsig_scalar result };
        body = [];
      } ->
    Some (f_recv, f_meth, f_args, result, Scalarity.Scalar)
  | Rule
      { head = Filter { f_recv; f_meth; f_args; f_rhs = Rsig_set result };
        body = [];
      } ->
    Some (f_recv, f_meth, f_args, result, Scalarity.Set_valued)
  | Rule _ | Query _ -> None
