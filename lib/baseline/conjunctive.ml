module Ir = Semantics.Ir
module Store = Oodb.Store
module Set = Oodb.Obj_id.Set

type env = Oodb.Obj_id.t option array

let deref (env : env) = function
  | Ir.Const o -> Some o
  | Ir.V i -> env.(i)

(* Try to unify term [t] with [v]; return the updated environment (the
   array is copied on write — simple, allocation-heavy, naive on
   purpose). *)
let unify env t v =
  match t with
  | Ir.Const c -> if Oodb.Obj_id.equal c v then Some env else None
  | Ir.V i -> (
    match env.(i) with
    | Some x -> if Oodb.Obj_id.equal x v then Some env else None
    | None ->
      let env' = Array.copy env in
      env'.(i) <- Some v;
      Some env')

let unify_list env ts vs =
  let rec go env ts vs =
    match (ts, vs) with
    | [], [] -> Some env
    | t :: ts', v :: vs' -> (
      match unify env t v with Some env' -> go env' ts' vs' | None -> None)
    | [], _ :: _ | _ :: _, [] -> None
  in
  go env ts vs

let universe_objects store =
  List.init (Oodb.Universe.cardinality (Store.universe store)) Fun.id

(* All (method, entry) tuples of a relation kind, scanning every bucket when
   the method term is unbound. *)
let scan_tuples store which env meth =
  let buckets m =
    match which with
    | `Scalar -> Store.scalar_bucket store m
    | `Set -> Store.set_bucket store m
  in
  let meths =
    match deref env meth with
    | Some m -> [ m ]
    | None -> (
      match which with
      | `Scalar -> Store.scalar_meths store
      | `Set -> Store.set_meths store)
  in
  List.concat_map
    (fun m ->
      List.filter_map
        (fun e -> if Store.live e then Some (m, e) else None)
        (Oodb.Vec.to_list (buckets m)))
    meths

let isa_pairs store =
  let sources = ref Set.empty in
  Oodb.Vec.iter
    (fun (e : Store.ientry) ->
      if Store.isa_live e then sources := Set.add e.i_sub !sources)
    (Store.isa_log store);
  Set.fold
    (fun o acc ->
      Set.fold (fun c acc -> (o, c) :: acc) (Store.classes_of store o) acc)
    !sources []

let self_id store = Store.name store "self"

(* Objects reachable from [r0] along some word of the automaton's
   language — a naive depth-first product walk, mirroring the
   automaton-product BFS in {!Semantics.Solve}. *)
let regex_reachable store (auto : Ir.automaton) r0 =
  let visited = Hashtbl.create 16 in
  let emitted = Hashtbl.create 16 in
  let out = ref [] in
  let rec go obj q =
    if not (Hashtbl.mem visited (obj, q)) then begin
      Hashtbl.add visited (obj, q) ();
      if auto.Ir.a_accept.(q) && not (Hashtbl.mem emitted obj) then begin
        Hashtbl.add emitted obj ();
        out := obj :: !out
      end;
      Array.iter
        (fun ((lbl : Ir.label), q') ->
          if lbl.Ir.lbl_set then
            Set.iter
              (fun v -> go v q')
              (Store.set_lookup store ~meth:lbl.Ir.lbl_meth ~recv:obj
                 ~args:lbl.Ir.lbl_args)
          else
            match
              Store.scalar_lookup store ~meth:lbl.Ir.lbl_meth ~recv:obj
                ~args:lbl.Ir.lbl_args
            with
            | Some v -> go v q'
            | None -> ())
        auto.Ir.a_trans.(q)
    end
  in
  go r0 auto.Ir.a_start;
  List.rev !out

let rec eval_atom store env (atom : Ir.atom) : env list =
  match atom with
  | A_eq (a, b) -> (
    match (deref env a, deref env b) with
    | Some x, Some y -> if Oodb.Obj_id.equal x y then [ env ] else []
    | Some x, None -> Option.to_list (unify env b x)
    | None, Some y -> Option.to_list (unify env a y)
    | None, None ->
      List.filter_map
        (fun o ->
          match unify env a o with
          | Some env' -> unify env' b o
          | None -> None)
        (universe_objects store))
  | A_isa (o, c) -> (
    match (deref env o, deref env c) with
    | Some uo, Some uc ->
      if Store.is_member store uo uc then [ env ] else []
    | _ ->
      List.filter_map
        (fun (uo, uc) ->
          match unify env o uo with
          | Some env' -> unify env' c uc
          | None -> None)
        (isa_pairs store))
  | A_scalar app -> eval_app store env `Scalar app
  | A_member app -> eval_app store env `Set app
  | A_subset s -> eval_subset store env s
  | A_neg n ->
    let envs = bind_all store env n.n_outer in
    List.filter (fun env' -> eval_atoms store env' n.n_atoms = []) envs
  | A_regex x ->
    let recvs =
      match deref env x.x_recv with
      | Some r -> [ r ]
      | None -> universe_objects store
    in
    List.concat_map
      (fun r ->
        match unify env x.x_recv r with
        | None -> []
        | Some env1 ->
          List.filter_map
            (fun v -> unify env1 x.x_res v)
            (regex_reachable store x.x_auto r))
      recvs


and eval_app store env which (app : Ir.app) : env list =
  let self = self_id store in
  let self_envs =
    (* the built-in identity method applies to scalar application only *)
    if app.args <> [] || which = `Set then []
    else
      match deref env app.meth with
      | Some m when Oodb.Obj_id.equal m self -> (
        match (deref env app.recv, deref env app.res) with
        | Some r, _ -> (
          match unify env app.res r with Some e -> [ e ] | None -> [])
        | None, Some r -> (
          match unify env app.recv r with Some e -> [ e ] | None -> [])
        | None, None ->
          List.filter_map
            (fun o ->
              match unify env app.recv o with
              | Some env' -> unify env' app.res o
              | None -> None)
            (universe_objects store))
      | Some _ | None -> []
  in
  let tuple_envs =
    List.filter_map
      (fun (m, (e : Store.mentry)) ->
        match unify env app.meth m with
        | None -> None
        | Some env1 -> (
          match unify env1 app.recv e.recv with
          | None -> None
          | Some env2 -> (
            match unify_list env2 app.args e.args with
            | None -> None
            | Some env3 -> unify env3 app.res e.res)))
      (scan_tuples store which env app.meth)
  in
  self_envs @ tuple_envs

and eval_subset store env (s : Ir.subset) : env list =
  (* atom_vars covers the outer slots plus any variables in the method,
     receiver and argument positions *)
  let envs = bind_all store env (Ir.atom_vars (A_subset s)) in
  List.filter
    (fun env' ->
      let m = Option.get (deref env' s.s_meth) in
      let recv = Option.get (deref env' s.s_recv) in
      let args = List.map (fun a -> Option.get (deref env' a)) s.s_args in
      let have =
        if Oodb.Obj_id.equal m (self_id store) && args = [] then Set.empty
        else Store.set_lookup store ~meth:m ~recv ~args
      in
      List.for_all
        (fun sub_env ->
          match deref sub_env s.member with
          | Some u -> Set.mem u have
          | None -> false)
        (eval_atoms store env' s.sub_atoms))
    envs

(* Bind the given slots (and any unbound terms they stand for) over the
   whole universe; needed when a negation or inclusion mentions variables
   constrained nowhere else. *)
and bind_all store env slots : env list =
  List.fold_left
    (fun envs slot ->
      List.concat_map
        (fun (env' : env) ->
          match env'.(slot) with
          | Some _ -> [ env' ]
          | None ->
            List.filter_map
              (fun o -> unify env' (Ir.V slot) o)
              (universe_objects store))
        envs)
    [ env ] slots

and eval_atoms store env atoms : env list =
  List.fold_left
    (fun envs atom ->
      List.concat_map (fun env' -> eval_atom store env' atom) envs)
    [ env ] atoms

let solutions store (q : Ir.query) =
  let start : env = Array.make q.nvars None in
  let finished = eval_atoms store start q.atoms in
  (* complete unconstrained slots over the universe *)
  let complete env =
    let rec go i (envs : env list) =
      if i >= q.nvars then envs
      else
        go (i + 1)
          (List.concat_map
             (fun (env' : env) ->
               match env'.(i) with
               | Some _ -> [ env' ]
               | None ->
                 List.filter_map
                   (fun o -> unify env' (Ir.V i) o)
                   (universe_objects store))
             envs)
    in
    go 0 [ env ]
  in
  List.concat_map complete finished
  |> List.map (fun (env : env) -> Array.map Option.get env)

let named_solutions store (q : Ir.query) =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun binding ->
      let row = List.map (fun (_, i) -> binding.(i)) q.named in
      if Hashtbl.mem seen row then None
      else begin
        Hashtbl.add seen row ();
        Some row
      end)
    (solutions store q)

let satisfiable store q = solutions store q <> []
