module Ir = Semantics.Ir

let flatten store reference = Semantics.Flatten.reference store reference

let rec atom_count (a : Ir.atom) =
  match a with
  | A_isa _ | A_scalar _ | A_member _ | A_eq _ -> 1
  | A_subset s -> 1 + List.fold_left (fun n a -> n + atom_count a) 0 s.sub_atoms
  | A_neg n -> 1 + List.fold_left (fun n a -> n + atom_count a) 0 n.n_atoms
  | A_regex _ -> 1

let conjunct_count store reference =
  let q, _ = flatten store reference in
  List.fold_left (fun n a -> n + atom_count a) 0 q.atoms

let term_name u (q : Ir.query) = function
  | Ir.Const o -> Oodb.Universe.to_string u o
  | Ir.V i -> (
    match List.find_opt (fun (_, slot) -> slot = i) q.named with
    | Some (name, _) -> name
    | None -> Printf.sprintf "_%d" i)

let rec atom_text u q (a : Ir.atom) =
  let t = term_name u q in
  match a with
  | A_isa (o, c) -> Printf.sprintf "%s IN %s" (t o) (t c)
  | A_scalar { meth; recv; args; res } | A_member { meth; recv; args; res }
    ->
    let args_text =
      match args with
      | [] -> ""
      | _ -> "@(" ^ String.concat ", " (List.map t args) ^ ")"
    in
    Printf.sprintf "%s.%s%s[%s]" (t recv) (t meth) args_text (t res)
  | A_eq (a', b) -> Printf.sprintf "%s = %s" (t a') (t b)
  | A_subset s ->
    Printf.sprintf "%s.%s CONTAINS { %s | %s }" (t s.s_recv) (t s.s_meth)
      (t s.member)
      (String.concat " AND " (List.map (atom_text u q) s.sub_atoms))
  | A_neg n ->
    Printf.sprintf "NOT (%s)"
      (String.concat " AND " (List.map (atom_text u q) n.n_atoms))
  | A_regex x ->
    Printf.sprintf "%s REACHES %s VIA %d-STATE AUTOMATON" (t x.x_recv)
      (t x.x_res) x.x_auto.Ir.a_nstates

let to_xsql_text store ~select reference =
  let q, _ = flatten store reference in
  let u = Oodb.Store.universe store in
  let conds = List.map (atom_text u q) q.atoms in
  Printf.sprintf "SELECT %s\nWHERE %s"
    (String.concat ", " select)
    (String.concat "\nAND   " conds)
