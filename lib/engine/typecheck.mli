(** Static rule typing against signature declarations — a lint.

    The paper (section 2) motivates method-based virtual objects partly by
    the fact that signatures "make type checking techniques applicable" in
    the sense of [KLW93]. {!Oodb.Signature.check} is the dynamic half
    (validate the computed model); this module is the static half: without
    running the program, infer classes for rule variables from the body's
    membership literals and flag head method assertions that contradict an
    applicable signature.

    It is an approximation in both directions and is reported as warnings:
    variables whose class cannot be inferred are not checked, and
    hierarchy information is limited to the constant class edges visible in
    the program (same approximation as the stratifier). *)

type warning = {
  w_rule : Syntax.Ast.rule;
  w_span : Syntax.Token.span option;
      (** source extent of the rule's statement, when parsed from text *)
  w_message : string;
}

val pp_warning : Format.formatter -> warning -> unit

(** Check every rule of a compiled program against declared signatures. *)
val check_rules :
  Oodb.Store.t -> Oodb.Signature.t -> Rule.t list -> warning list
