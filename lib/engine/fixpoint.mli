(** Bottom-up evaluation to the minimal model, stratum by stratum.

    Within a stratum the engine iterates rule application until saturation.
    Two modes:

    - [Naive]: every rule re-evaluated from scratch every round; the
      baseline the classic semi-naive optimisation is measured against
      (experiment E7/E10).
    - [Seminaive]: a rule is re-evaluated only when a relation it reads
      grew in the previous round, and each matching top-level body atom is
      {e seeded} with the delta suffix of that relation's bucket, so joins
      start from the new tuples. Rules whose trigger is not seedable — a
      variable method position, a changed relation appearing only inside a
      set-inclusion filter or a head right-hand side — fall back to full
      re-evaluation for that round. Relevance and delta checks run on
      interned relation ids over plain arrays; no per-round map snapshots.

    With the default [Compiled] join order, each (rule, seed adornment)
    pair gets a join order compiled once from the static cost model and
    cached across rounds and strata (keyed by {!Rule.t.uid}), recompiled
    only when the store has roughly doubled since compilation; [Greedy]
    keeps the adaptive per-binding ordering as a fallback.

    With [jobs > 1] each round runs domain-parallel: the round's (rule,
    seed) evaluation tasks solve their bodies concurrently against the
    quiescent store into private production buffers, then a
    single-threaded merge executes heads in task order, then discovery
    order — a deterministic schedule. The final model is identical to
    [jobs = 1] (evaluation is monotone and skolems are keyed by their
    defining path, so the derived fact set is confluent; property-tested),
    but per-round counters differ: rules no longer see derivations made
    earlier in the {e same} round, so saturation can take more rounds. *)

(** Skolemisation can make the minimal model infinite; [max_rounds] and
    [max_objects] bound the evaluation and {!Err.Diverged} reports the
    budget exceeded. *)

type mode = Naive | Seminaive

type config = {
  mode : mode;
  order : Semantics.Solve.order;
      (** join order inside rule bodies; default [Compiled] *)
  hilog_virtual : bool;
      (** enumerate virtual (skolem) objects for variable method positions;
          see {!Semantics.Solve.iter}. Default [false]: the literal
          semantics makes programs like the generic [tc] diverge. *)
  max_rounds : int;  (** per stratum *)
  max_objects : int;  (** universe cardinality budget *)
  rule_filter : (Rule.t -> bool) option;
      (** when set, only rules satisfying the predicate run; the caller is
          responsible for soundness (e.g. {!Stratify.live_rules}) *)
  jobs : int;
      (** degree of parallelism: rule-body evaluations per round run on
          this many domains (the calling domain included). [1] is the
          historical sequential engine, bit for bit. Must be [>= 1]. *)
  budget : Budget.t option;
      (** soft evaluation budget: deadline, cancellation token, work
          caps. Checked at round boundaries, between parallel task
          claims, and from the solver's cooperative poll. Exhaustion does
          {e not} raise out of {!run}: the run stops, the store keeps the
          sound partial model derived so far, and {!stats.degraded}
          records the reason. Default [None]. *)
  plan_variant : int;
      (** evaluation-mode component of the compiled-plan cache key. Runs
          that evaluate the same rule uids against differently shaped
          stores — full materialisation ([0]), pruned/live-filtered runs
          ([1]), demand-transformed runs ([2]) — must use distinct
          variants so a shared cache (see {!run}'s [plans]) never serves a
          plan compiled under the other mode's store statistics. *)
  estimates : Semantics.Solve.estimator option;
      (** statically predicted relation cardinalities (from the
          abstract-interpretation pass) replacing the heuristic bucket
          lengths in {!Semantics.Solve.compile_plan}. The estimator's
          [est_epoch] joins the plan-cache key, so plans compiled under
          different estimates (or none — epoch [0] is reserved for that)
          never alias; recompiles on store growth stay sound. Estimates
          affect join order only, never answers. Default [None]. *)
}

(** [jobs] defaults to [1], or to [$PATHLOG_JOBS] when that environment
    variable holds an integer [>= 1] — the hook CI uses to run the whole
    test corpus through the parallel evaluator. *)
val default_config : config

type stats = {
  mutable rounds : int;  (** total evaluation rounds across strata *)
  mutable rule_evaluations : int;  (** rule-evaluation passes *)
  mutable firings : int;  (** body solutions found *)
  mutable insertions : int;  (** new tuples/edges inserted *)
  strata : int;  (** number of strata *)
  mutable degraded : Budget.reason option;
      (** [Some r] when the run was cut short by its budget: the model is
          a sound subset of the minimal model (evaluation is monotone, so
          every derived fact is entailed — only completeness is lost) *)
}

val pp_stats : Format.formatter -> stats -> unit

(** The solver interrupt for a budget: polls cancellation + deadline, and
    the {!Fault.Solver_step} injection point when the fault registry is
    armed; [None] when there is nothing to poll. Exposed for query-time
    evaluation ({!Program.query}), which runs outside the fixpoint. *)
val interrupt_of : Budget.t option -> (unit -> unit) option

(** Compiled-plan cache, keyed by (rule uid, seed adornment,
    {!config.plan_variant}, estimates epoch). {!run} creates a private
    one when none is
    passed; callers that evaluate the same program repeatedly
    ({!Program.t} does) pass one shared cache so plans survive across
    runs. Plans are recompiled in place when the store outgrows them, so
    sharing is always sound — the variant key only exists to keep the
    {e cost rankings} of different evaluation modes apart. *)
type plan_cache

val plan_cache : unit -> plan_cache

(** Evaluate the stratified program against the store.
    @raise Err.Functional_conflict
    @raise Err.Isa_cycle
    @raise Err.Reserved_self
    @raise Err.Diverged *)
val run :
  ?config:config ->
  ?provenance:Provenance.t ->
  ?tracer:(Rule.t -> Oodb.Obj_id.t array -> Fact.t list -> unit) ->
  ?on_insert:(Fact.t -> unit) ->
  ?from:(Semantics.Ir.rel -> int) ->
  ?plans:plan_cache ->
  Oodb.Store.t ->
  Stratify.t ->
  stats
(** [provenance] records the first derivation of every inserted tuple.

    [on_insert] is called once per tuple actually inserted, after
    provenance recording — the hook incremental maintenance uses to track
    the net model delta of a run.

    [tracer rule binding heads] is called once per rule firing with the
    body solution and every fact the head asserted — inserted {e or}
    already present — in assertion order. Incremental maintenance records
    these as derivations. Called from the merge phase under [jobs > 1], so
    it runs single-threaded either way.

    [from] gives a per-relation watermark (a bucket/log length captured
    earlier). When set, every stratum skips its full first round and goes
    straight to semi-naive delta rounds seeded at the watermark: only
    rules reading a relation that grew past its watermark re-evaluate.
    This is how a committed batch of new facts propagates without
    re-running the whole program. The watermarks must come from a moment
    no later than the insertions to propagate (raw lengths are
    append-monotone; tombstoned entries still count). *)
