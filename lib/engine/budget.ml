type reason = Timeout | Cancelled | Derivations | Objects

exception Exhausted of reason

type t = {
  deadline : float;  (* absolute; infinity = no deadline *)
  cancel_flag : bool Atomic.t;
  max_derivations : int;
  max_objects : int;
}

let create ?deadline_at ?deadline_in ?cancel ?(max_derivations = max_int)
    ?(max_objects = max_int) () =
  let deadline =
    match (deadline_at, deadline_in) with
    | Some at, _ -> at
    | None, Some d -> Unix.gettimeofday () +. d
    | None, None -> infinity
  in
  {
    deadline;
    cancel_flag = (match cancel with Some c -> c | None -> Atomic.make false);
    max_derivations;
    max_objects;
  }

let cancel t = Atomic.set t.cancel_flag true

let cancelled t = Atomic.get t.cancel_flag

let token t = t.cancel_flag

let check t =
  if Atomic.get t.cancel_flag then raise (Exhausted Cancelled);
  if t.deadline < infinity && Unix.gettimeofday () > t.deadline then
    raise (Exhausted Timeout)

let check_caps t ~derivations ~objects =
  check t;
  if derivations > t.max_derivations then raise (Exhausted Derivations);
  if objects > t.max_objects then raise (Exhausted Objects)

let remaining_s t =
  if t.deadline = infinity then None
  else Some (t.deadline -. Unix.gettimeofday ())

let reason_label = function
  | Timeout -> "timeout"
  | Cancelled -> "cancelled"
  | Derivations -> "derivations"
  | Objects -> "objects"

let pp_reason ppf r = Format.pp_print_string ppf (reason_label r)
