module Ir = Semantics.Ir
module Store = Oodb.Store

type mode = Naive | Seminaive

type config = {
  mode : mode;
  order : Semantics.Solve.order;
  hilog_virtual : bool;
  max_rounds : int;
  max_objects : int;
  rule_filter : (Rule.t -> bool) option;
  jobs : int;
  budget : Budget.t option;
  plan_variant : int;
  estimates : Semantics.Solve.estimator option;
      (* absint cardinality predictions driving compile_plan; the
         estimator's epoch is part of the plan-cache key so plans compiled
         under different (or no) estimates never alias *)
}

(* PATHLOG_JOBS flips the default degree of parallelism process-wide —
   how CI runs the whole test corpus through the parallel evaluator
   without touching every call site. *)
let default_jobs =
  match Sys.getenv_opt "PATHLOG_JOBS" with
  | Some s -> (
    match int_of_string_opt s with Some n when n >= 1 -> n | Some _ | None -> 1)
  | None -> 1

let default_config =
  {
    mode = Seminaive;
    order = Semantics.Solve.Compiled;
    hilog_virtual = false;
    max_rounds = 10_000;
    max_objects = 1_000_000;
    rule_filter = None;
    jobs = default_jobs;
    budget = None;
    plan_variant = 0;
    estimates = None;
  }

type stats = {
  mutable rounds : int;
  mutable rule_evaluations : int;
  mutable firings : int;
  mutable insertions : int;
  strata : int;
  mutable degraded : Budget.reason option;
      (* the budget that cut the run short, if any; the store then holds a
         sound partial model *)
}

let pp_stats ppf s =
  Format.fprintf ppf
    "strata: %d, rounds: %d, rule evaluations: %d, firings: %d, insertions: \
     %d"
    s.strata s.rounds s.rule_evaluations s.firings s.insertions;
  match s.degraded with
  | None -> ()
  | Some r -> Format.fprintf ppf ", DEGRADED (%a)" Budget.pp_reason r

(* All class memberships share the isa edge log; the per-class refinement
   only matters to the stratifier, so deltas normalise R_isa_c to R_isa. *)
let norm_rel = Ir.norm_rel

let rel_length store = function
  | Ir.R_isa | Ir.R_isa_c _ -> Oodb.Vec.length (Store.isa_log store)
  | Ir.R_scalar m -> Oodb.Vec.length (Store.scalar_bucket store m)
  | Ir.R_set m -> Oodb.Vec.length (Store.set_bucket store m)
  | Ir.R_any -> 0

(* ------------------------------------------------------------------ *)
(* Interned relations: relevance and delta checks run on dense int ids
   and plain arrays instead of per-round Rel_map snapshots and List.mem
   scans over structural relation values. *)

module Interner = struct
  type t = {
    ids : (Ir.rel, int) Hashtbl.t;
    mutable rels : Ir.rel array;  (* id -> rel *)
    mutable count : int;
  }

  let create () =
    { ids = Hashtbl.create 64; rels = Array.make 16 Ir.R_any; count = 0 }

  let intern t r =
    match Hashtbl.find_opt t.ids r with
    | Some id -> id
    | None ->
      let id = t.count in
      if id >= Array.length t.rels then begin
        let rels' = Array.make (2 * Array.length t.rels) Ir.R_any in
        Array.blit t.rels 0 rels' 0 id;
        t.rels <- rels'
      end;
      t.rels.(id) <- r;
      Hashtbl.add t.ids r id;
      t.count <- id + 1;
      id
end

(* Current length of every relation present in the store, indexed by
   interned id; relations first seen now (new methods appear as rules
   derive into them) get fresh ids, so the array grows monotonically. *)
let snapshot itn store =
  ignore (Interner.intern itn Ir.R_isa : int);
  List.iter
    (fun m -> ignore (Interner.intern itn (Ir.R_scalar m) : int))
    (Store.scalar_meths store);
  List.iter
    (fun m -> ignore (Interner.intern itn (Ir.R_set m) : int))
    (Store.set_meths store);
  let lens = Array.make itn.Interner.count 0 in
  for id = 0 to itn.Interner.count - 1 do
    lens.(id) <- rel_length store itn.Interner.rels.(id)
  done;
  lens

let len_at marks id = if id < Array.length marks then marks.(id) else 0

(* A rule with its relation sets pre-interned, computed once per stratum. *)
type crule = {
  rule : Rule.t;
  read_ids : int array;  (* normalised [reads] *)
  seed_ids : (int * int) array;  (* seedable (relation id, atom index) *)
  seed_rel_ids : int array;  (* distinct relation ids of [seed_ids] *)
}

let crule_of itn (rule : Rule.t) =
  let intern r = Interner.intern itn (norm_rel r) in
  let read_ids = Array.of_list (List.map intern rule.reads) in
  let seed_ids =
    Array.of_list (List.map (fun (r, i) -> (intern r, i)) rule.seedable)
  in
  let seed_rel_ids =
    Array.fold_left
      (fun acc (r, _) -> if List.mem r acc then acc else r :: acc)
      [] seed_ids
    |> Array.of_list
  in
  { rule; read_ids; seed_ids; seed_rel_ids }

(* ------------------------------------------------------------------ *)
(* Compiled-plan cache: one plan per (rule, seed adornment, evaluation
   variant), reused across rounds and strata — and, when the caller passes
   a shared cache, across whole runs; recompiled when the store has grown
   enough that the cost ranking is likely stale. The variant component
   keeps full, pruned (rule-filtered) and demand-transformed runs from
   sharing plans: the same rule uid evaluates against differently shaped
   stores in each mode. *)

type plan_cache = (int * int * int * int, Semantics.Solve.plan) Hashtbl.t

let plan_cache () : plan_cache = Hashtbl.create 64

(* epoch 0 is reserved for "no estimates": an estimator must carry a
   non-zero epoch to get distinct cache entries *)
let estimates_epoch config =
  match config.estimates with
  | None -> 0
  | Some e -> e.Semantics.Solve.est_epoch

let plan_for (cache : plan_cache) config store (rule : Rule.t) seed =
  match config.order with
  | Semantics.Solve.Greedy | Semantics.Solve.Source -> None
  | Semantics.Solve.Compiled ->
    let seed_idx =
      match seed with
      | Some s -> s.Semantics.Solve.seed_atom
      | None -> -1
    in
    let key =
      (rule.uid, seed_idx, config.plan_variant, estimates_epoch config)
    in
    (match Hashtbl.find_opt cache key with
    | Some p when not (Semantics.Solve.plan_stale store p) -> Some p
    | Some _ | None ->
      let p =
        Semantics.Solve.compile_plan ?estimator:config.estimates
          ?seed_atom:(if seed_idx >= 0 then Some seed_idx else None)
          store rule.body
      in
      Hashtbl.replace cache key p;
      Some p)

let env_of_binding (body : Ir.query) binding =
  List.fold_left
    (fun env (name, slot) ->
      Semantics.Valuation.Env.add name binding.(slot) env)
    Semantics.Valuation.Env.empty body.named

(* The solver-side cooperative hook: polls the budget (cancellation +
   deadline) and the fault registry's solver-step point. [None] when
   neither is armed, so the common case costs nothing per poll. *)
let interrupt_of budget =
  match (budget, Fault.enabled ()) with
  | None, false -> None
  | None, true -> Some (fun () -> Fault.hit Fault.Solver_step)
  | Some b, false -> Some (fun () -> Budget.check b)
  | Some b, true ->
    Some
      (fun () ->
        Fault.hit Fault.Solver_step;
        Budget.check b)

(* Execute the rule head under one body solution, recording provenance
   and counting insertions; shared by the sequential path and the
   parallel merge phase. *)
let fire ?provenance ?tracer ?(on_insert = fun _ -> ()) stats store
    (rule : Rule.t) binding changes =
  stats.firings <- stats.firings + 1;
  let env = env_of_binding rule.body binding in
  let record_prov =
    match provenance with
    | None -> fun _ -> ()
    | Some prov ->
      fun fact ->
        let source =
          if rule.source.body = [] then Provenance.Extensional
          else
            Provenance.Derived
              {
                rule = rule.source;
                env =
                  List.map
                    (fun (name, slot) -> (name, binding.(slot)))
                    rule.body.named;
              }
        in
        Provenance.record prov fact source
  in
  let on_insert fact =
    record_prov fact;
    on_insert fact
  in
  let before = !changes in
  (match tracer with
  | None ->
    ignore
      (Head.execute ~on_insert store ~env ~rule:rule.source ~changes
         rule.source.head)
  | Some tr ->
    let heads = ref [] in
    ignore
      (Head.execute ~on_insert
         ~on_assert:(fun f -> heads := f :: !heads)
         store ~env ~rule:rule.source ~changes rule.source.head);
    tr rule binding (List.rev !heads));
  stats.insertions <- stats.insertions + (!changes - before)

(* Evaluate one rule, optionally seeded, executing the head on every body
   solution. *)
let evaluate ?provenance ?tracer ?on_insert ?interrupt config plans stats
    store (rule : Rule.t) seed changes =
  stats.rule_evaluations <- stats.rule_evaluations + 1;
  let plan = plan_for plans config store rule seed in
  Semantics.Solve.iter ~order:config.order ~hilog_virtual:config.hilog_virtual
    ?interrupt ?seed ?plan store rule.body
    ~f:(fun binding ->
      fire ?provenance ?tracer ?on_insert stats store rule binding changes)

(* ------------------------------------------------------------------ *)
(* Domain-parallel rounds.

   A round's work is a list of (rule, seed) evaluation tasks, fixed up
   front from the delta marks. With [jobs = 1] the tasks run in order,
   each executing its head immediately, so derivations made by an earlier
   rule are visible to later rules within the same round (Gauss-Seidel) —
   bit-identical to the historical sequential engine. With [jobs > 1] the
   round runs in two phases: every task solves its body against the store
   {e as left by the previous merge} (the store is quiescent, so reads
   need no locks) into a private production buffer, then a single-threaded
   merge executes heads in task order, then discovery order — a
   deterministic schedule (Jacobi). Both schedules reach the same minimal
   model: evaluation is monotone and skolems are keyed by (method,
   receiver, args), so the derived fact set is confluent; only round
   counts and insertion interleavings differ. *)

type task = {
  t_rule : Rule.t;
  t_seed : Semantics.Solve.seed option;
  mutable t_plan : Semantics.Solve.plan option;
  t_out : Oodb.Obj_id.t array Oodb.Vec.t;  (* body solutions found *)
}

let task rule seed =
  { t_rule = rule; t_seed = seed; t_plan = None; t_out = Oodb.Vec.create () }

let run_tasks ?provenance ?tracer ?on_insert ?interrupt config plans pool
    stats store tasks changes =
  match (pool : Dpool.t option) with
  | None ->
    List.iter
      (fun t ->
        (match config.budget with Some b -> Budget.check b | None -> ());
        evaluate ?provenance ?tracer ?on_insert ?interrupt config plans stats
          store t.t_rule t.t_seed changes)
      tasks
  | Some pool ->
    let tasks = Array.of_list tasks in
    (* Plans come from the shared cache, so compile them before going
       parallel; the cache is not synchronised. *)
    Array.iter
      (fun t -> t.t_plan <- plan_for plans config store t.t_rule t.t_seed)
      tasks;
    stats.rule_evaluations <- stats.rule_evaluations + Array.length tasks;
    Dpool.run pool (Array.length tasks) (fun i ->
        (* each worker re-checks the budget between task claims, so a
           cancellation set on any domain stops the whole batch: the
           raising task records the failure and Dpool abandons the
           unclaimed remainder *)
        (match config.budget with Some b -> Budget.check b | None -> ());
        let t = tasks.(i) in
        Semantics.Solve.iter ~order:config.order
          ~hilog_virtual:config.hilog_virtual ?interrupt ?seed:t.t_seed
          ?plan:t.t_plan store t.t_rule.body
          ~f:(fun binding -> Oodb.Vec.push t.t_out binding));
    Array.iter
      (fun t ->
        Oodb.Vec.iter
          (fun binding ->
            fire ?provenance ?tracer ?on_insert stats store t.t_rule binding
              changes)
          t.t_out)
      tasks

let check_budget config stats store stratum_rounds =
  if stratum_rounds > config.max_rounds then
    raise
      (Err.Diverged
         (Printf.sprintf "stratum exceeded %d rounds" config.max_rounds));
  let card = Oodb.Universe.cardinality (Store.universe store) in
  if card > config.max_objects then
    raise
      (Err.Diverged
         (Printf.sprintf
            "universe grew past %d objects (likely unbounded virtual-object \
             creation)"
            config.max_objects));
  match config.budget with
  | None -> ()
  | Some b -> Budget.check_caps b ~derivations:stats.firings ~objects:card

let run_stratum ?provenance ?tracer ?on_insert ?from ?interrupt config plans
    pool stats store rules =
  let itn = Interner.create () in
  let crules = List.map (crule_of itn) rules in
  (* marks at the start of the previous round: the delta a seeded atom
     scans starts there. With a [from] baseline the marks start at the
     caller's watermarks instead of the current lengths, so the first
     round is an ordinary semi-naive delta round over everything inserted
     since the baseline — incremental maintenance re-enters the fixpoint
     here. *)
  let prev_marks =
    ref
      (match from with
      | None -> snapshot itn store
      | Some baseline ->
        ignore (snapshot itn store : int array);
        Array.init itn.Interner.count (fun id ->
            baseline itn.Interner.rels.(id)))
  in
  let prev_epoch = ref (match from with None -> Store.epoch store | Some _ -> -1) in
  let round = ref 0 in
  let continue = ref true in
  (* round 1: full evaluation of every rule *)
  let first_round () =
    incr round;
    stats.rounds <- stats.rounds + 1;
    let changes = ref 0 in
    run_tasks ?provenance ?tracer ?on_insert ?interrupt config plans pool
      stats store
      (List.map (fun r -> task r None) rules)
      changes;
    !changes > 0
  in
  let next_round () =
    incr round;
    stats.rounds <- stats.rounds + 1;
    check_budget config stats store !round;
    (* the epoch is bumped on every insertion, so an epoch unchanged since
       [prev_marks] was taken means no relation grew — skip the
       per-relation scan entirely *)
    let now_epoch = Store.epoch store in
    if now_epoch = !prev_epoch then false
    else begin
      let now = snapshot itn store in
      let any_changed = ref false in
      let changed =
        Array.init (Array.length now) (fun id ->
            let c = now.(id) > len_at !prev_marks id in
            if c then any_changed := true;
            c)
      in
      let is_changed id = id < Array.length changed && changed.(id) in
      if not !any_changed then false
      else begin
        let changes = ref 0 in
        let tasks =
          match config.mode with
          | Naive -> List.map (fun r -> task r None) rules
          | Seminaive ->
            List.concat_map
              (fun cr ->
                let rule = cr.rule in
                let relevant =
                  rule.reads_any || Array.exists is_changed cr.read_ids
                in
                if not relevant then []
                else begin
                  let unseedable_change =
                    rule.reads_any
                    || Array.exists
                         (fun r ->
                           is_changed r
                           && not (Array.exists (Int.equal r) cr.seed_rel_ids))
                         cr.read_ids
                  in
                  if unseedable_change then [ task rule None ]
                  else
                    Array.to_list cr.seed_ids
                    |> List.filter_map (fun (rel_id, idx) ->
                           if is_changed rel_id then
                             Some
                               (task rule
                                  (Some
                                     {
                                       Semantics.Solve.seed_atom = idx;
                                       seed_from = len_at !prev_marks rel_id;
                                     }))
                           else None)
                end)
              crules
        in
        run_tasks ?provenance ?tracer ?on_insert ?interrupt config plans
          pool stats store tasks changes;
        prev_marks := now;
        prev_epoch := now_epoch;
        !changes > 0
      end
    end
  in
  if rules <> [] then begin
    (* with a baseline the "first full round" already happened when the
       stratum was first evaluated; everything since is delta *)
    continue := (match from with None -> first_round () | Some _ -> true);
    while !continue do
      continue := next_round ()
    done
  end

let run ?(config = default_config) ?provenance ?tracer ?on_insert ?from
    ?plans store (strat : Stratify.t) =
  let stats =
    {
      rounds = 0;
      rule_evaluations = 0;
      firings = 0;
      insertions = 0;
      strata = Array.length strat.strata;
      degraded = None;
    }
  in
  let interrupt = interrupt_of config.budget in
  let plans =
    match plans with Some p -> p | None -> (plan_cache () : plan_cache)
  in
  let keep =
    match config.rule_filter with
    | None -> fun rules -> rules
    | Some f -> List.filter f
  in
  let pool = if config.jobs > 1 then Some (Dpool.create config.jobs) else None in
  Fun.protect
    ~finally:(fun () -> Option.iter Dpool.shutdown pool)
    (fun () ->
      (* A budget cutting the run short is degradation, not failure: the
         store holds the sound prefix of the minimal model derived so far
         (evaluation is monotone), flagged in [stats.degraded]. The hard
         divergence guards keep raising {!Err.Diverged}. *)
      try
        Array.iter
          (fun rules ->
            run_stratum ?provenance ?tracer ?on_insert ?from ?interrupt
              config plans pool stats store (keep rules))
          strat.strata
      with Budget.Exhausted reason -> stats.degraded <- Some reason);
  stats
