(** Derivation provenance and proof trees.

    When enabled (the default), the fixpoint records, for every tuple it
    inserts, the rule and variable valuation of the {e first} derivation.
    {!explain} then reconstructs a proof tree: the root fact, the rule that
    derived it, and recursively the body facts that rule matched — replayed
    through the solver with the recorded valuation pre-bound, so the
    sub-facts shown are a real support set for the derivation.

    Facts asserted by fact statements (or {!Program.add_fact}) are
    [Extensional] leaves; skolem-creating insertions point at the rule
    whose head invented the object. *)

type source =
  | Extensional  (** asserted by a fact statement *)
  | Derived of {
      rule : Syntax.Ast.rule;
      env : (string * Oodb.Obj_id.t) list;
    }

type proof = {
  fact : Fact.t;
  source : source;
  support : proof list;  (** body facts of the deriving rule; [] for leaves *)
}

type t

val create : unit -> t

(** Record the first derivation of a fact (later derivations keep the
    first). *)
val record : t -> Fact.t -> source -> unit

val lookup : t -> Fact.t -> source option

(** Drop the recorded derivation of a fact (retraction support: a
    tombstoned fact must stop explaining itself). *)
val forget : t -> Fact.t -> unit

val size : t -> int

(** The ground facts one solution of a rule body rests on: method atoms as
    facts, memberships expanded to a chain of direct class edges. Exposed
    for incremental maintenance, which records them as a derivation's
    support set. *)
val body_facts :
  Oodb.Store.t -> Semantics.Ir.query -> Oodb.Obj_id.t array -> Fact.t list

(** Build the proof tree of a recorded fact. [max_depth] truncates (cycles
    cannot occur — provenance records first derivations, which are
    well-founded — but deep chains can). Unknown facts yield [None]. *)
val explain :
  ?max_depth:int -> ?interrupt:(unit -> unit) -> Oodb.Store.t -> t ->
  Fact.t -> proof option
(** [interrupt] is the solver's cooperative cancellation hook (see
    {!Semantics.Solve.iter}); proof reconstruction replays rule bodies,
    so it too must be killable mid-flight. *)

val pp_proof : Oodb.Universe.t -> Format.formatter -> proof -> unit
